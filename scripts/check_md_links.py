#!/usr/bin/env python3
"""Check that in-repo markdown links resolve.

Scans every tracked *.md file for inline links/images
``[text](target)`` and verifies that relative targets exist on disk
(anchors are stripped; absolute URLs and mailto: are skipped). Pure
stdlib; exits nonzero listing every broken link.

Usage: python3 scripts/check_md_links.py [repo_root]
"""

import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def tracked_markdown(root: str) -> list[str]:
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        cwd=root,
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    return sorted(set(out.split()))


def check_file(root: str, relpath: str) -> list[str]:
    errors = []
    base = os.path.dirname(os.path.join(root, relpath))
    with open(os.path.join(root, relpath), encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = os.path.normpath(os.path.join(base, path))
                if not os.path.exists(resolved):
                    errors.append(
                        f"{relpath}:{lineno}: broken link -> {target}"
                    )
    return errors


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    files = tracked_markdown(root)
    errors = []
    for relpath in files:
        errors.extend(check_file(root, relpath))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} markdown files, "
          f"{len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
