#!/usr/bin/env python3
"""Roll per-PR bench dumps into the committed perf trajectory.

The bench binaries emit JSON Lines (one ``{"bench": ...}`` object per
line, several benches per file — see bench/bench_util.hh). CI uploads
them as ``BENCH_PR<N>.json`` artifacts; this script folds them into
one committed ``BENCH_TRAJECTORY.json`` and gates releases on the
headline metrics:

  merge --out BENCH_TRAJECTORY.json BENCH_PR*.json
      Rebuild the trajectory from the given dumps (deterministic
      output: no timestamps, sorted keys — regenerating from the same
      dumps is a no-op diff).

  check --baseline BENCH_TRAJECTORY.json BENCH_PR*.json
      Recompute the headline metrics from fresh dumps and compare
      against the committed baseline. Ratio-style headlines (hoist
      win, overlap speedup, launch reduction) fail on a >15% relative
      regression; overhead-style headlines are gated against their
      absolute budget (wall-clock noise on shared runners makes
      relative gating of near-zero overheads meaningless).

Stdlib only — runs on the bare CI python.
"""

import argparse
import json
import re
import sys

# Relative slack for ratio-style headline metrics.
TOLERANCE = 0.15

# name -> (bench, metric key, mode, budget)
#   mode "higher":  regression = new < old * (1 - TOLERANCE)
#   mode "ceiling": regression = new > budget (absolute, baseline-free)
#   mode "floor":   regression = new < budget (absolute, baseline-free)
# The special key "@moddown_reduction" is computed, not read.
HEADLINES = {
    "keyswitch_hoist_speedup": ("keyswitch_hoist", "@hoist_speedup", "higher", None),
    "keyswitch_moddown_reduction": ("keyswitch_hoist", "@moddown_reduction", "higher", None),
    "lstm_overlap_speedup": ("graph_schedule", "lstm_overlap_speedup", "higher", None),
    "lstm_launch_reduction": ("graph_schedule", "lstm_launch_reduction", "higher", None),
    "cnn_overlap_speedup": ("graph_schedule", "cnn_deep_overlap_speedup", "higher", None),
    "fault_paranoid_overhead": ("fault_overhead", "lstm_paranoid_overhead", "ceiling", 0.03),
    "trace_armed_overhead": ("trace_overhead", "armed_overhead", "ceiling", 0.05),
    "trace_disarmed_bound": ("trace_overhead", "disarmed_bound", "ceiling", 0.01),
    # SIMD backend wins (bench_simd_backends): best vector backend vs
    # the bit-identical scalar fallback. Floor-gated: the vectorized
    # forward NTT must stay >= 2x scalar and the key-switch
    # inner-product row >= 1.5x, independent of any baseline drift.
    "ntt_simd_speedup": ("simd_backends", "ntt_simd_speedup", "floor", 2.0),
    "ks_inner_product_simd_speedup": ("simd_backends", "ks_inner_product_speedup", "floor", 1.5),
    # Global planner win (bench_plan): modeled cost of the planned
    # schedule vs the greedy bootstrap splice on the better of the
    # two reference workloads (deep CNN / LSTM gate tower). Model
    # evaluation, fully deterministic, so floor-gated absolutely: the
    # planner must keep a >= 10% win.
    "planned_vs_greedy_cost_ratio": ("plan", "planned_vs_greedy_cost_ratio", "floor", 1.10),
}


def read_dump(path):
    """Parse one JSON-lines bench dump -> {bench_name: metrics}."""
    benches = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: bad JSON line: {e}")
            name = obj.pop("bench", None)
            if name is None:
                sys.exit(f"{path}:{lineno}: object without 'bench' key")
            # Later lines for the same bench win (reruns append).
            benches[name] = obj
    return benches


def pr_label(path):
    m = re.search(r"(PR\d+)", path)
    return m.group(1) if m else path


def derived(bench, metrics, key):
    if key == "@hoist_speedup":
        return metrics["naive_s_per_rot"] / metrics["hoisted_s_per_rot"]
    if key == "@moddown_reduction":
        return metrics["single_hoisted_mod_downs"] / metrics["mod_down_conversions"]
    return metrics[key]


def compute_headlines(all_benches):
    """Headline name -> value for every headline whose bench is present."""
    out = {}
    for name, (bench, key, _mode, _budget) in HEADLINES.items():
        metrics = all_benches.get(bench)
        if metrics is None:
            continue
        try:
            out[name] = derived(bench, metrics, key)
        except (KeyError, ZeroDivisionError) as e:
            sys.exit(f"headline {name}: cannot compute from bench "
                     f"'{bench}': {e}")
    return out


def fold(paths):
    """Merge many dumps; later files override same-named benches."""
    history = {}
    merged = {}
    for path in sorted(paths, key=pr_label):
        benches = read_dump(path)
        history[pr_label(path)] = benches
        merged.update(benches)
    return history, merged


def cmd_merge(args):
    history, merged = fold(args.dumps)
    trajectory = {
        "comment": "Committed perf trajectory. Regenerate with "
                   "scripts/roll_bench.py merge; CI gates releases "
                   "with scripts/roll_bench.py check.",
        "headlines": compute_headlines(merged),
        "history": history,
    }
    with open(args.out, "w") as f:
        json.dump(trajectory, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}: {len(history)} PR dump(s), "
          f"{len(trajectory['headlines'])} headline metric(s)")
    return 0


def cmd_check(args):
    with open(args.baseline) as f:
        baseline = json.load(f)
    base = baseline.get("headlines", {})
    _, merged = fold(args.dumps)
    fresh = compute_headlines(merged)

    failures = []
    print(f"{'headline':34} {'baseline':>12} {'current':>12}  verdict")
    for name, value in sorted(fresh.items()):
        bench, key, mode, budget = HEADLINES[name]
        old = base.get(name)
        if mode == "ceiling":
            ok = value <= budget
            verdict = f"<= budget {budget:g}" if ok else \
                f"OVER BUDGET {budget:g}"
        elif mode == "floor":
            ok = value >= budget
            verdict = f">= floor {budget:g}" if ok else \
                f"UNDER FLOOR {budget:g}"
        elif old is None:
            ok, verdict = True, "new metric (no baseline)"
        else:
            ok = value >= old * (1.0 - TOLERANCE)
            verdict = "ok" if ok else \
                f"REGRESSED >{TOLERANCE:.0%} vs baseline"
        shown_old = f"{old:.4f}" if old is not None else "-"
        print(f"{name:34} {shown_old:>12} {value:>12.4f}  {verdict}")
        if not ok:
            failures.append(name)

    missing = [n for n in base if n not in fresh]
    for name in sorted(missing):
        print(f"{name:34} {base[name]:>12.4f} {'-':>12}  "
              "not measured this run (skipped)")

    if failures:
        print(f"\nFAIL: {len(failures)} headline metric(s) regressed: "
              + ", ".join(failures))
        return 1
    print(f"\nOK: {len(fresh)} headline metric(s) within tolerance")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    mp = sub.add_parser("merge", help="rebuild the trajectory file")
    mp.add_argument("--out", required=True)
    mp.add_argument("dumps", nargs="+", metavar="BENCH_PR*.json")
    mp.set_defaults(fn=cmd_merge)

    cp = sub.add_parser("check", help="gate fresh dumps vs baseline")
    cp.add_argument("--baseline", required=True)
    cp.add_argument("dumps", nargs="+", metavar="BENCH_PR*.json")
    cp.set_defaults(fn=cmd_check)

    args = ap.parse_args()
    sys.exit(args.fn(args))


if __name__ == "__main__":
    main()
