/**
 * @file
 * Regenerates paper Table X: full-workload execution time for
 * ResNet-20, Logistic Regression, LSTM and Packed Bootstrapping —
 * model estimates at the Table V parameters beside the published
 * rows, with the paper's headline ratios (2.9x over F1+ on LR, up to
 * ~40x behind the big ASICs) recomputed from our model.
 */

#include <cstdio>

#include "bench_util.hh"
#include "perf/device_time.hh"
#include "perf/paper_data.hh"
#include "workloads/models.hh"

using namespace tensorfhe;
using namespace tensorfhe::workloads;

int
main()
{
    bench::banner("Table X - full FHE workloads (seconds)");

    std::printf("%-18s %10s %10s %10s %12s\n", "system", "ResNet-20",
                "LR", "LSTM", "PackedBoot");
    for (const auto &row : perf::paper::kTable10) {
        auto cell = [](double v) {
            return v < 0 ? std::string("-")
                         : bench::fmtSeconds(v);
        };
        std::printf("%-18.18s %10s %10s %10s %12s   [paper]\n",
                    row.system.data(), cell(row.resnet20).c_str(),
                    cell(row.lr).c_str(), cell(row.lstm).c_str(),
                    cell(row.packedBoot).c_str());
    }

    perf::DeviceTimeModel a100(gpu::DeviceModel::a100());
    WorkloadModel models[] = {resnet20Model(),
                              logisticRegressionModel(), lstmModel(),
                              packedBootstrappingModel()};
    double ours[4];
    std::printf("%-18s", "TensorFHE (model)");
    for (int i = 0; i < 4; ++i) {
        models[i].params.nttVariant = ntt::NttVariant::Tensor;
        ours[i] = workloadSeconds(models[i], a100);
        std::printf(" %10s", bench::fmtSeconds(ours[i]).c_str());
        if (i == 3)
            std::printf("  ");
    }
    std::printf("   [model]\n");

    bench::section("shape checks (from our model vs paper rows)");
    const auto &cpu = perf::paper::kTable10[0];
    const auto &f1 = perf::paper::kTable10[1];
    const auto &crater = perf::paper::kTable10[2];
    std::printf("LR: vs CPU %7.0fx (paper 1625.6x), vs F1+ %5.2fx "
                "(paper 2.9x), vs CraterLake 1/%.1fx\n",
                cpu.lr / ours[1], f1.lr / ours[1], ours[1] / crater.lr);
    std::printf("ResNet-20: vs CPU %5.0fx, vs F1+ %4.2fx "
                "(paper: F1+ still 1.8x ahead)\n",
                cpu.resnet20 / ours[0], f1.resnet20 / ours[0]);
    return 0;
}
