/**
 * @file
 * Regenerates paper Table X: full-workload execution time for
 * ResNet-20, Logistic Regression, LSTM and Packed Bootstrapping —
 * model estimates at the Table V parameters beside the published
 * rows, with the paper's headline ratios (2.9x over F1+ on LR, up to
 * ~40x behind the big ASICs) recomputed from our model.
 *
 * The measured sections run the *functional* scaled-down CNN,
 * LSTM-cell and DEEP bootstrap-in-the-loop CNN workloads on real
 * ciphertexts and print their executed operation counts
 * (EvalOpStats) next to the layer plans' modeled counts, flagging
 * any divergence above 10% — the consistency check tying the
 * analytic Table X machinery to code that actually computes.
 *
 * Usage: bench_table10_workloads [--json PATH]
 *   --json PATH appends one machine-readable object per measured
 *   workload (bootstrap count, conversion counts, timings, logit
 *   error) to PATH — the CI Release job collects BENCH_PR5.json
 *   this way.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hh"
#include "perf/device_time.hh"
#include "perf/paper_data.hh"
#include "workloads/cnn.hh"
#include "workloads/lstm.hh"
#include "workloads/models.hh"

using namespace tensorfhe;
using namespace tensorfhe::workloads;

namespace
{

/** Modeled-vs-executed rows with >10% divergence flags. */
void
compareOps(const char *workload, const OpCounts &modeled,
           const OpCounts &executed)
{
    struct Row
    {
        const char *op;
        double model;
        double exec;
    } rows[] = {
        {"HMULT", modeled.hmult, executed.hmult},
        {"CMULT", modeled.cmult, executed.cmult},
        {"HADD", modeled.hadd, executed.hadd},
        {"HROTATE", modeled.hrotate, executed.hrotate},
        {"RESCALE", modeled.rescale, executed.rescale},
        {"CONJ", modeled.conjugate, executed.conjugate},
    };
    std::printf("%-10s %-8s %10s %10s %10s\n", workload, "op",
                "modeled", "executed", "diverge");
    for (const auto &r : rows) {
        if (r.model == 0 && r.exec == 0)
            continue;
        double base = std::max(r.model, 1.0);
        double div = std::abs(r.exec - r.model) / base;
        std::printf("%-10s %-8s %10.0f %10.0f %9.1f%%%s\n", "", r.op,
                    r.model, r.exec, 100.0 * div,
                    div > 0.10 ? "  <-- DIVERGES >10%" : "");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];

    bench::banner("Table X - full FHE workloads (seconds)");

    std::printf("%-18s %10s %10s %10s %12s\n", "system", "ResNet-20",
                "LR", "LSTM", "PackedBoot");
    for (const auto &row : perf::paper::kTable10) {
        auto cell = [](double v) {
            return v < 0 ? std::string("-")
                         : bench::fmtSeconds(v);
        };
        std::printf("%-18.18s %10s %10s %10s %12s   [paper]\n",
                    row.system.data(), cell(row.resnet20).c_str(),
                    cell(row.lr).c_str(), cell(row.lstm).c_str(),
                    cell(row.packedBoot).c_str());
    }

    perf::DeviceTimeModel a100(gpu::DeviceModel::a100());
    WorkloadModel models[] = {resnet20Model(),
                              logisticRegressionModel(), lstmModel(),
                              packedBootstrappingModel()};
    double ours[4];
    std::printf("%-18s", "TensorFHE (model)");
    for (int i = 0; i < 4; ++i) {
        models[i].params.nttVariant = ntt::NttVariant::Tensor;
        ours[i] = workloadSeconds(models[i], a100);
        std::printf(" %10s", bench::fmtSeconds(ours[i]).c_str());
        if (i == 3)
            std::printf("  ");
    }
    std::printf("   [model]\n");

    bench::section("shape checks (from our model vs paper rows)");
    const auto &cpu = perf::paper::kTable10[0];
    const auto &f1 = perf::paper::kTable10[1];
    const auto &crater = perf::paper::kTable10[2];
    std::printf("LR: vs CPU %7.0fx (paper 1625.6x), vs F1+ %5.2fx "
                "(paper 2.9x), vs CraterLake 1/%.1fx\n",
                cpu.lr / ours[1], f1.lr / ours[1], ours[1] / crater.lr);
    std::printf("ResNet-20: vs CPU %5.0fx, vs F1+ %4.2fx "
                "(paper: F1+ still 1.8x ahead)\n",
                cpu.resnet20 / ours[0], f1.resnet20 / ours[0]);

    bench::section("functional workloads: modeled vs executed op "
                   "counts [measured]");
    {
        ckks::CkksContext ctx(
            EncryptedCnnClassifier::recommendedParams());
        EncryptedCnnClassifier cnn(ctx);
        Rng rng(42);
        auto sk = ctx.generateSecretKey(rng);
        auto keys =
            ctx.generateKeys(sk, rng, cnn.requiredRotations());
        ckks::Encryptor enc(ctx, keys.pk);
        ckks::Decryptor dec(ctx, sk);
        nn::NnEngine engine(ctx, keys);

        std::vector<std::vector<double>> images(
            1, std::vector<double>(cnn.config().inChannels
                                   * cnn.config().height
                                   * cnn.config().width));
        Rng data(43);
        for (auto &v : images[0])
            v = data.uniformReal();
        EvalOpStats::instance().reset();
        cnn.classifyEncrypted(engine, enc, dec, rng, images);
        compareOps("CNN",
                   cnn.modeledCounts(),
                   toOpCounts(EvalOpStats::instance().snapshot()));
    }
    {
        ckks::CkksContext ctx(EncryptedLstmCell::recommendedParams());
        EncryptedLstmCell cell(ctx);
        Rng rng(44);
        auto sk = ctx.generateSecretKey(rng);
        auto keys =
            ctx.generateKeys(sk, rng, cell.requiredRotations());
        ckks::Encryptor enc(ctx, keys.pk);
        ckks::Decryptor dec(ctx, sk);
        nn::NnEngine engine(ctx, keys);

        std::size_t d = cell.config().dim;
        std::vector<double> xv(d, 0.25), hv(d, -0.5), cv(d, 0.5);
        auto lc = cell.inputMeta().levelCount;
        EncryptedLstmCell::State state{
            nn::encryptTensor(ctx, enc, rng, hv, {{d}}, lc),
            nn::encryptTensor(ctx, enc, rng, cv, {{d}}, lc)};
        auto x = nn::encryptTensor(ctx, enc, rng, xv, {{d}}, lc);
        EvalOpStats::instance().reset();
        cell.step(engine, x, state);
        compareOps("LSTM-cell",
                   cell.modeledCounts(),
                   toOpCounts(EvalOpStats::instance().snapshot()));
    }

    bench::section("deep CNN with bootstrap-in-the-loop [measured]");
    {
        // The Table X ResNet scenario in miniature: a two-chunk
        // tensor through block-BSGS convs, the ledger going negative
        // mid-network, and >= 1 automatically inserted bootstrap
        // (fused C2S split riding the shared double-hoisted head).
        ckks::CkksContext ctx(
            EncryptedCnnClassifier::recommendedDeepParams());
        EncryptedCnnClassifier cnn(
            ctx, EncryptedCnnClassifier::deepConfig());
        Rng rng(45);
        auto sk = ctx.generateSecretKey(rng);
        auto keys = ctx.generateKeys(sk, rng, cnn.requiredRotations(),
                                     cnn.requiredConjRotations());
        ckks::Encryptor enc(ctx, keys.pk);
        ckks::Decryptor dec(ctx, sk);
        nn::NnEngine engine(ctx, keys);

        std::vector<std::vector<double>> images(
            1, std::vector<double>(cnn.config().inChannels
                                   * cnn.config().height
                                   * cnn.config().width));
        Rng data(46);
        for (auto &v : images[0])
            v = data.uniformReal();

        auto &ops = EvalOpStats::instance();
        ops.reset();
        std::vector<EncryptedCnnClassifier::Prediction> preds;
        double secs = bench::timeSeconds([&] {
            preds = cnn.classifyEncrypted(engine, enc, dec, rng,
                                          images);
        });
        auto snap = ops.snapshot();
        u64 mod_ups = ops.modUps();
        u64 mod_downs = ops.modDowns();
        auto plain = cnn.classifyPlain(images[0]);
        double worst_logit = 0;
        for (std::size_t j = 0; j < plain.logits.size(); ++j)
            worst_logit = std::max(
                worst_logit,
                std::abs(preds[0].logits[j] - plain.logits[j]));
        std::size_t boots = cnn.net().bootstrapCount();

        std::printf("  %zu-chunk input, %zu bootstraps inserted, "
                    "argmax %s, worst |logit err| %.2e\n",
                    cnn.inputMeta().chunkCount, boots,
                    preds[0].argmax == plain.argmax ? "agrees"
                                                    : "DISAGREES",
                    worst_logit);
        std::printf("  wall %s   ModUp %llu   ModDown %llu   "
                    "conjugate-composed steps %.0f\n",
                    bench::fmtSeconds(secs).c_str(),
                    static_cast<unsigned long long>(mod_ups),
                    static_cast<unsigned long long>(mod_downs),
                    snap.conjugate);
        compareOps("deep-CNN", toOpCounts(cnn.modeledOps()),
                   toOpCounts(snap));

        if (!json_path.empty()) {
            bench::JsonWriter json("table10_deep_cnn");
            json.add("bootstraps", static_cast<double>(boots))
                .add("input_chunks",
                     static_cast<double>(cnn.inputMeta().chunkCount))
                .add("seconds", secs)
                .add("mod_up_conversions",
                     static_cast<double>(mod_ups))
                .add("mod_down_conversions",
                     static_cast<double>(mod_downs))
                .add("conjugate_ops", snap.conjugate)
                .add("hrotate_ops", snap.hrotate)
                .add("ks_hoist_ops", snap.ksHoist)
                .add("ks_tail_ops", snap.ksTail)
                .add("worst_logit_err", worst_logit)
                .add("argmax_agrees",
                     preds[0].argmax == plain.argmax ? 1.0 : 0.0);
            if (!json.appendTo(json_path)) {
                std::fprintf(stderr, "cannot write %s\n",
                             json_path.c_str());
                return 1;
            }
            std::printf("  wrote %s\n", json_path.c_str());
        }
    }
    return 0;
}
