/**
 * @file
 * Regenerates paper Table X: full-workload execution time for
 * ResNet-20, Logistic Regression, LSTM and Packed Bootstrapping —
 * model estimates at the Table V parameters beside the published
 * rows, with the paper's headline ratios (2.9x over F1+ on LR, up to
 * ~40x behind the big ASICs) recomputed from our model.
 *
 * The last section runs the *functional* scaled-down CNN and
 * LSTM-cell workloads on real ciphertexts and prints their executed
 * operation counts (EvalOpStats) next to the layer plans' modeled
 * counts, flagging any divergence above 10% — the consistency check
 * tying the analytic Table X machinery to code that actually
 * computes.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "perf/device_time.hh"
#include "perf/paper_data.hh"
#include "workloads/cnn.hh"
#include "workloads/lstm.hh"
#include "workloads/models.hh"

using namespace tensorfhe;
using namespace tensorfhe::workloads;

namespace
{

/** Modeled-vs-executed rows with >10% divergence flags. */
void
compareOps(const char *workload, const OpCounts &modeled,
           const OpCounts &executed)
{
    struct Row
    {
        const char *op;
        double model;
        double exec;
    } rows[] = {
        {"HMULT", modeled.hmult, executed.hmult},
        {"CMULT", modeled.cmult, executed.cmult},
        {"HADD", modeled.hadd, executed.hadd},
        {"HROTATE", modeled.hrotate, executed.hrotate},
        {"RESCALE", modeled.rescale, executed.rescale},
        {"CONJ", modeled.conjugate, executed.conjugate},
    };
    std::printf("%-10s %-8s %10s %10s %10s\n", workload, "op",
                "modeled", "executed", "diverge");
    for (const auto &r : rows) {
        if (r.model == 0 && r.exec == 0)
            continue;
        double base = std::max(r.model, 1.0);
        double div = std::abs(r.exec - r.model) / base;
        std::printf("%-10s %-8s %10.0f %10.0f %9.1f%%%s\n", "", r.op,
                    r.model, r.exec, 100.0 * div,
                    div > 0.10 ? "  <-- DIVERGES >10%" : "");
    }
}

} // namespace

int
main()
{
    bench::banner("Table X - full FHE workloads (seconds)");

    std::printf("%-18s %10s %10s %10s %12s\n", "system", "ResNet-20",
                "LR", "LSTM", "PackedBoot");
    for (const auto &row : perf::paper::kTable10) {
        auto cell = [](double v) {
            return v < 0 ? std::string("-")
                         : bench::fmtSeconds(v);
        };
        std::printf("%-18.18s %10s %10s %10s %12s   [paper]\n",
                    row.system.data(), cell(row.resnet20).c_str(),
                    cell(row.lr).c_str(), cell(row.lstm).c_str(),
                    cell(row.packedBoot).c_str());
    }

    perf::DeviceTimeModel a100(gpu::DeviceModel::a100());
    WorkloadModel models[] = {resnet20Model(),
                              logisticRegressionModel(), lstmModel(),
                              packedBootstrappingModel()};
    double ours[4];
    std::printf("%-18s", "TensorFHE (model)");
    for (int i = 0; i < 4; ++i) {
        models[i].params.nttVariant = ntt::NttVariant::Tensor;
        ours[i] = workloadSeconds(models[i], a100);
        std::printf(" %10s", bench::fmtSeconds(ours[i]).c_str());
        if (i == 3)
            std::printf("  ");
    }
    std::printf("   [model]\n");

    bench::section("shape checks (from our model vs paper rows)");
    const auto &cpu = perf::paper::kTable10[0];
    const auto &f1 = perf::paper::kTable10[1];
    const auto &crater = perf::paper::kTable10[2];
    std::printf("LR: vs CPU %7.0fx (paper 1625.6x), vs F1+ %5.2fx "
                "(paper 2.9x), vs CraterLake 1/%.1fx\n",
                cpu.lr / ours[1], f1.lr / ours[1], ours[1] / crater.lr);
    std::printf("ResNet-20: vs CPU %5.0fx, vs F1+ %4.2fx "
                "(paper: F1+ still 1.8x ahead)\n",
                cpu.resnet20 / ours[0], f1.resnet20 / ours[0]);

    bench::section("functional workloads: modeled vs executed op "
                   "counts [measured]");
    {
        ckks::CkksContext ctx(
            EncryptedCnnClassifier::recommendedParams());
        EncryptedCnnClassifier cnn(ctx);
        Rng rng(42);
        auto sk = ctx.generateSecretKey(rng);
        auto keys =
            ctx.generateKeys(sk, rng, cnn.requiredRotations());
        ckks::Encryptor enc(ctx, keys.pk);
        ckks::Decryptor dec(ctx, sk);
        nn::NnEngine engine(ctx, keys);

        std::vector<std::vector<double>> images(
            1, std::vector<double>(cnn.config().inChannels
                                   * cnn.config().height
                                   * cnn.config().width));
        Rng data(43);
        for (auto &v : images[0])
            v = data.uniformReal();
        EvalOpStats::instance().reset();
        cnn.classifyEncrypted(engine, enc, dec, rng, images);
        compareOps("CNN",
                   cnn.modeledCounts(),
                   toOpCounts(EvalOpStats::instance().snapshot()));
    }
    {
        ckks::CkksContext ctx(EncryptedLstmCell::recommendedParams());
        EncryptedLstmCell cell(ctx);
        Rng rng(44);
        auto sk = ctx.generateSecretKey(rng);
        auto keys =
            ctx.generateKeys(sk, rng, cell.requiredRotations());
        ckks::Encryptor enc(ctx, keys.pk);
        ckks::Decryptor dec(ctx, sk);
        nn::NnEngine engine(ctx, keys);

        std::size_t d = cell.config().dim;
        std::vector<double> xv(d, 0.25), hv(d, -0.5), cv(d, 0.5);
        auto lc = cell.inputMeta().levelCount;
        EncryptedLstmCell::State state{
            nn::encryptTensor(ctx, enc, rng, hv, {{d}}, lc),
            nn::encryptTensor(ctx, enc, rng, cv, {{d}}, lc)};
        auto x = nn::encryptTensor(ctx, enc, rng, xv, {{d}}, lc);
        EvalOpStats::instance().reset();
        cell.step(engine, x, state);
        compareOps("LSTM-cell",
                   cell.modeledCounts(),
                   toOpCounts(EvalOpStats::instance().snapshot()));
    }
    return 0;
}
