/**
 * @file
 * Regenerates paper Fig. 14: impact of the batch size on kernel
 * execution time — model at the paper's batch range {32..1024} plus
 * measured batched kernels on this machine at a scaled range.
 */

#include <cstdio>
#include <vector>

#include "batch/executor.hh"
#include "bench_util.hh"
#include "ckks/crypto.hh"
#include "perf/device_time.hh"

using namespace tensorfhe;
using namespace tensorfhe::perf;

int
main()
{
    bench::banner("Fig. 14 - batch size sensitivity");

    DeviceTimeModel a100(gpu::DeviceModel::a100());
    auto p = ckks::Presets::paperDefault();
    p.nttVariant = ntt::NttVariant::Tensor;

    bench::section("model: normalized per-op kernel time vs batch "
                   "(paper range)");
    struct K
    {
        const char *name;
        KernelCost cost;
    };
    K kernels[] = {
        {"Hada-Mult", hadaMultCost(p.n, 45)},
        {"NTT", nttCost(p.n, 45, p.nttVariant)},
        {"Ele-Add", eleAddCost(p.n, 45)},
        {"Conv", convCost(p.n, 45, 1)},
        {"ForbeniusMap", frobeniusCost(p.n, 45)},
    };
    std::vector<std::size_t> batches = {32, 64, 128, 256, 512, 1024};
    std::printf("%-14s", "kernel");
    for (auto b : batches)
        std::printf(" %8zu", b);
    std::printf("\n");
    for (const auto &k : kernels) {
        double base =
            a100.seconds(k.cost, 128) / 128.0; // normalize to default
        std::printf("%-14s", k.name);
        for (auto b : batches) {
            double t = a100.seconds(k.cost, b) / double(b);
            std::printf(" %8.3f", t / base);
        }
        std::printf("\n");
    }

    bench::section("measured: batched HADD / CMULT / HMULT per-op "
                   "time vs batch (N=2^12, L=6)");
    ckks::CkksContext ctx(ckks::Presets::small());
    Rng rng(9);
    auto sk = ctx.generateSecretKey(rng);
    auto keys = ctx.generateKeys(sk, rng, {});
    ckks::Encryptor enc(ctx, keys.pk);
    batch::BatchedEvaluator evalb(ctx, keys);
    std::size_t lc = ctx.tower().numQ();
    auto pt = ctx.encoder().encodeConstant(ckks::Complex(0.3, 0),
                                           ctx.params().scale(), lc);
    auto one = enc.encrypt(pt, rng);

    std::printf("%-14s %8s %8s %8s\n", "batch", "HADD", "CMULT",
                "HMULT");
    for (std::size_t b : {1, 2, 4, 8}) {
        std::vector<ckks::Ciphertext> cts(b, one);
        double t_add = bench::timeMean(3, [&] {
            auto r = evalb.add(cts, cts);
        }) / double(b);
        double t_cmult = bench::timeMean(3, [&] {
            auto r = evalb.multiplyPlain(cts, pt);
        }) / double(b);
        double t_hmult = bench::timeMean(1, [&] {
            auto r = evalb.multiply(cts, cts);
        }) / double(b);
        std::printf("%-14zu %8s %8s %8s\n", b,
                    bench::fmtSeconds(t_add).c_str(),
                    bench::fmtSeconds(t_cmult).c_str(),
                    bench::fmtSeconds(t_hmult).c_str());
    }
    std::printf("\npaper: larger batches amortize twiddle reuse and "
                "launches until VRAM binds;\n"
                "BS = 128 balances all kernels (ForbeniusMap gains "
                "31.4%% at BS = 1024).\n");
    return 0;
}
