/**
 * @file
 * Regenerates paper Fig. 14: impact of the batch size on kernel
 * execution time — model at the paper's batch range {32..1024} plus
 * measured batched kernels on this machine at a scaled range, with a
 * serial-vs-parallel comparison of the batched execution engine.
 *
 * Usage: bench_fig14_batch_size [threads]
 *   threads  lanes of the engine's worker pool (default: all cores)
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "batch/executor.hh"
#include "bench_util.hh"
#include "ckks/crypto.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "perf/device_time.hh"

using namespace tensorfhe;
using namespace tensorfhe::perf;

int
main(int argc, char **argv)
{
    bench::banner("Fig. 14 - batch size sensitivity");

    DeviceTimeModel a100(gpu::DeviceModel::a100());
    auto p = ckks::Presets::paperDefault();
    p.nttVariant = ntt::NttVariant::Tensor;

    bench::section("model: normalized per-op kernel time vs batch "
                   "(paper range)");
    struct K
    {
        const char *name;
        KernelCost cost;
    };
    K kernels[] = {
        {"Hada-Mult", hadaMultCost(p.n, 45)},
        {"NTT", nttCost(p.n, 45, p.nttVariant)},
        {"Ele-Add", eleAddCost(p.n, 45)},
        {"Conv", convCost(p.n, 45, 1)},
        {"FrobeniusMap", frobeniusCost(p.n, 45)},
    };
    std::vector<std::size_t> batches = {32, 64, 128, 256, 512, 1024};
    std::printf("%-14s", "kernel");
    for (auto b : batches)
        std::printf(" %8zu", b);
    std::printf("\n");
    for (const auto &k : kernels) {
        double base =
            a100.seconds(k.cost, 128) / 128.0; // normalize to default
        std::printf("%-14s", k.name);
        for (auto b : batches) {
            double t = a100.seconds(k.cost, b) / double(b);
            std::printf(" %8.3f", t / base);
        }
        std::printf("\n");
    }

    unsigned hw = std::thread::hardware_concurrency();
    long threads = hw > 0 ? long(hw) : 1;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else
            threads = std::atol(argv[i]);
    }
    if (threads < 1)
        threads = 1;
    // lanes = workers + caller, so [threads] lanes = threads-1 workers
    // (threads=1 gives a genuinely serial 1-lane pool).
    ThreadPool engine_pool(static_cast<std::size_t>(threads) - 1);

    bench::section("measured: serial (1-lane) vs parallel batched "
                   "engine, per-op time vs batch (N=2^12, L=6)");
    std::printf("engine pool: %zu lanes (pass [threads] to override); "
                "serial columns run the same engine on a 1-lane pool\n",
                engine_pool.lanes());
    ckks::CkksContext ctx(ckks::Presets::small());
    Rng rng(9);
    auto sk = ctx.generateSecretKey(rng);
    auto keys = ctx.generateKeys(sk, rng, {});
    ckks::Encryptor enc(ctx, keys.pk);
    // The serial baseline is the identical code path pinned to one
    // lane (the scalar Evaluator would not do: its kernels dispatch
    // on the process-global pool, so it is not serial).
    ThreadPool serial_pool(0);
    batch::BatchedEvaluator evals(ctx, keys, &serial_pool);
    batch::BatchedEvaluator evalb(ctx, keys, &engine_pool);
    std::size_t lc = ctx.tower().numQ();
    auto pt = ctx.encoder().encodeConstant(ckks::Complex(0.3, 0),
                                           ctx.params().scale(), lc);
    auto one = enc.encrypt(pt, rng);

    std::printf("%-6s %9s %9s %9s %9s %9s %9s %8s\n", "batch",
                "HADD-ser", "HADD-par", "CMULT-ser", "CMULT-par",
                "HMULT-ser", "HMULT-par", "speedup");
    for (std::size_t b : {1, 2, 4, 8, 12, 16}) {
        std::vector<ckks::Ciphertext> cts(b, one);
        double s_add = bench::timeMean(3, [&] {
            auto r = evals.add(cts, cts);
        }) / double(b);
        double s_cmult = bench::timeMean(3, [&] {
            auto r = evals.multiplyPlain(cts, pt);
        }) / double(b);
        double s_hmult = bench::timeMean(1, [&] {
            auto r = evals.multiply(cts, cts);
        }) / double(b);
        // Parallel batched engine: one (slot x tower) work-queue.
        double p_add = bench::timeMean(3, [&] {
            auto r = evalb.add(cts, cts);
        }) / double(b);
        double p_cmult = bench::timeMean(3, [&] {
            auto r = evalb.multiplyPlain(cts, pt);
        }) / double(b);
        double p_hmult = bench::timeMean(1, [&] {
            auto r = evalb.multiply(cts, cts);
        }) / double(b);
        std::printf("%-6zu %9s %9s %9s %9s %9s %9s %7.2fx\n", b,
                    bench::fmtSeconds(s_add).c_str(),
                    bench::fmtSeconds(p_add).c_str(),
                    bench::fmtSeconds(s_cmult).c_str(),
                    bench::fmtSeconds(p_cmult).c_str(),
                    bench::fmtSeconds(s_hmult).c_str(),
                    bench::fmtSeconds(p_hmult).c_str(),
                    s_hmult / p_hmult);
        if (!json_path.empty()) {
            // One executed-op-count + timing object per batch size.
            EvalOpStats::instance().reset();
            auto r = evalb.multiply(cts, cts);
            auto snap = EvalOpStats::instance().snapshot();
            bench::JsonWriter json("fig14_batch_size");
            json.add("batch", static_cast<double>(b))
                .add("threads", static_cast<double>(threads))
                .add("hadd_serial_s", s_add)
                .add("hadd_parallel_s", p_add)
                .add("cmult_serial_s", s_cmult)
                .add("cmult_parallel_s", p_cmult)
                .add("hmult_serial_s", s_hmult)
                .add("hmult_parallel_s", p_hmult)
                .add("hmult_speedup", s_hmult / p_hmult)
                .add("hmult_ops", snap.hmult)
                .add("ks_hoist_ops", snap.ksHoist)
                .add("ks_tail_ops", snap.ksTail)
                .add("mod_ups",
                     static_cast<double>(
                         EvalOpStats::instance().modUps()))
                .add("mod_downs",
                     static_cast<double>(
                         EvalOpStats::instance().modDowns()));
            if (!json.appendTo(json_path))
                std::fprintf(stderr, "cannot write %s\n",
                             json_path.c_str());
        }
    }
    std::printf("\npaper: larger batches amortize twiddle reuse and "
                "launches until VRAM binds;\n"
                "BS = 128 balances all kernels (FrobeniusMap gains "
                "31.4%% at BS = 1024).\n"
                "speedup column: serial HMULT / parallel batched HMULT "
                "at the same batch.\n");
    return 0;
}
