/**
 * @file
 * google-benchmark micro suite over the NTT engines.
 *
 * Backs the analysis behind Fig. 10 / Table VI: butterfly (NT) vs
 * GEMM (CO) vs tensor-core (TCU) NTT across polynomial lengths, plus
 * the modulo-deferral ablation called out in DESIGN.md.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "common/primes.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "ntt/ntt.hh"
#include "simd/simd.hh"

namespace
{

using namespace tensorfhe;
using namespace tensorfhe::ntt;

struct Fixture
{
    Fixture(std::size_t n)
        : q(generateNttPrimes(30, 1, 2 * n)[0]), ctx(n, q), data(n)
    {
        Rng rng(n);
        for (auto &c : data)
            c = rng.uniform(q);
    }

    u64 q;
    NttContext ctx;
    std::vector<u64> data;
};

void
runForward(benchmark::State &state, NttVariant v)
{
    std::size_t n = std::size_t(1) << state.range(0);
    Fixture f(n);
    std::vector<u64> work = f.data;
    for (auto _ : state) {
        work = f.data;
        f.ctx.forward(work.data(), v);
        benchmark::DoNotOptimize(work.data());
    }
    state.SetItemsProcessed(s64(state.iterations()) * s64(n));
    state.SetLabel(nttVariantName(v));
}

void BM_NttButterfly(benchmark::State &s) { runForward(s, NttVariant::Butterfly); }
void BM_NttGemm(benchmark::State &s) { runForward(s, NttVariant::Gemm); }
void BM_NttTensor(benchmark::State &s) { runForward(s, NttVariant::Tensor); }

BENCHMARK(BM_NttButterfly)->DenseRange(10, 14, 2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NttGemm)->DenseRange(10, 14, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NttTensor)->DenseRange(10, 12, 2)
    ->Unit(benchmark::kMicrosecond);

/**
 * Per-SIMD-backend butterfly column: the same forward transform with
 * the vector backend pinned (range(1) is the simd::Backend enum
 * value), so one run prints a scalar / avx2 / avx512 comparison
 * table. Unsupported backends report as skipped rather than lying
 * with fallback numbers.
 */
void
BM_NttButterflyBackend(benchmark::State &state)
{
    auto b = static_cast<simd::Backend>(state.range(1));
    if (!simd::backendSupported(b)) {
        state.SkipWithError("backend unsupported on this host");
        return;
    }
    simd::Backend saved = simd::activeBackend();
    simd::setBackend(b);
    runForward(state, NttVariant::Butterfly);
    simd::setBackend(saved);
    state.SetLabel(std::string("Butterfly/") + simd::backendName(b));
}

BENCHMARK(BM_NttButterflyBackend)
    ->ArgsProduct({benchmark::CreateDenseRange(10, 14, 2),
                   {static_cast<int>(simd::Backend::Scalar),
                    static_cast<int>(simd::Backend::Avx2),
                    static_cast<int>(simd::Backend::Avx512)}})
    ->Unit(benchmark::kMicrosecond);

/**
 * Modulo-deferral ablation: the paper's GEMM form performs one modulo
 * per output element; this baseline reduces after every MAC, showing
 * what the deferral buys.
 */
void
BM_GemmModuloPerMac(benchmark::State &state)
{
    std::size_t n = std::size_t(1) << state.range(0);
    Fixture f(n);
    const auto &gm = f.ctx.tables().gemm();
    const Modulus &mod = f.ctx.tables().modulus();
    std::size_t n1 = gm.n1, n2 = gm.n2;
    std::vector<u64> b(n);
    for (auto _ : state) {
        // First GEMM of the pipeline only, with eager reduction.
        for (std::size_t i = 0; i < n1; ++i) {
            for (std::size_t j = 0; j < n2; ++j) {
                u64 acc = 0;
                for (std::size_t k = 0; k < n1; ++k) {
                    acc = addMod(acc,
                        mod.mul(gm.w1[i * n1 + k], f.data[k * n2 + j]),
                        mod.value());
                }
                b[i * n2 + j] = acc;
            }
        }
        benchmark::DoNotOptimize(b.data());
    }
    state.SetLabel("eager-modulo GEMM stage");
}

void
BM_GemmModuloDeferred(benchmark::State &state)
{
    std::size_t n = std::size_t(1) << state.range(0);
    Fixture f(n);
    const auto &gm = f.ctx.tables().gemm();
    const Modulus &mod = f.ctx.tables().modulus();
    std::size_t n1 = gm.n1, n2 = gm.n2;
    std::vector<u64> b(n);
    for (auto _ : state) {
        for (std::size_t i = 0; i < n1; ++i) {
            for (std::size_t j = 0; j < n2; ++j) {
                u128 acc = 0;
                for (std::size_t k = 0; k < n1; ++k) {
                    acc += static_cast<u128>(gm.w1[i * n1 + k])
                        * f.data[k * n2 + j];
                }
                b[i * n2 + j] = mod.reduce(acc);
            }
        }
        benchmark::DoNotOptimize(b.data());
    }
    state.SetLabel("deferred-modulo GEMM stage (paper)");
}

BENCHMARK(BM_GemmModuloPerMac)->Arg(12)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GemmModuloDeferred)->Arg(12)->Unit(benchmark::kMicrosecond);

/**
 * Batched-transform comparison: `batch` polynomials through serial
 * forward() calls vs one forwardBatch() dispatch on the worker pool.
 * Run both to read the serial-vs-parallel speedup of the batched
 * execution engine at a given pool size.
 */
struct BatchFixture
{
    BatchFixture(std::size_t n, std::size_t batch) : base(n)
    {
        data.assign(batch * n, 0);
        ptrs.resize(batch);
        for (std::size_t b = 0; b < batch; ++b) {
            ptrs[b] = data.data() + b * n;
            std::copy(base.data.begin(), base.data.end(), ptrs[b]);
        }
    }

    void
    reset()
    {
        for (u64 *p : ptrs)
            std::copy(base.data.begin(), base.data.end(), p);
    }

    Fixture base;
    std::vector<u64> data;
    std::vector<u64 *> ptrs;
};

void
runBatch(benchmark::State &state, NttVariant v, bool parallel)
{
    std::size_t n = std::size_t(1) << state.range(0);
    std::size_t batch = std::size_t(state.range(1));
    BatchFixture f(n, batch);
    for (auto _ : state) {
        state.PauseTiming();
        f.reset();
        state.ResumeTiming();
        if (parallel) {
            f.base.ctx.forwardBatch(f.ptrs.data(), batch, v);
        } else {
            for (u64 *p : f.ptrs)
                f.base.ctx.forward(p, v);
        }
        benchmark::DoNotOptimize(f.data.data());
    }
    state.SetItemsProcessed(s64(state.iterations()) * s64(n) * s64(batch));
    state.SetLabel(std::string(nttVariantName(v))
                   + (parallel ? " batched" : " serial loop"));
}

void BM_NttBatchSerial(benchmark::State &s) { runBatch(s, NttVariant::Butterfly, false); }
void BM_NttBatchParallel(benchmark::State &s) { runBatch(s, NttVariant::Butterfly, true); }
void BM_NttBatchTensorSerial(benchmark::State &s) { runBatch(s, NttVariant::Tensor, false); }
void BM_NttBatchTensorFused(benchmark::State &s) { runBatch(s, NttVariant::Tensor, true); }

BENCHMARK(BM_NttBatchSerial)->Args({12, 8})->Args({12, 16})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NttBatchParallel)->Args({12, 8})->Args({12, 16})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NttBatchTensorSerial)->Args({10, 8})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NttBatchTensorFused)->Args({10, 8})
    ->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
