/**
 * @file
 * Regenerates paper Table IX: GPGPU occupancy of the batched CKKS
 * operations (batch 128), from the CTA-wave saturation model, next
 * to the published values.
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/occupancy.hh"
#include "perf/paper_data.hh"

using namespace tensorfhe;
using namespace tensorfhe::gpu;

int
main()
{
    bench::banner("Table IX - GPGPU occupancy with operation-level "
                  "batching (batch 128)");

    auto dev = DeviceModel::a100();
    // CTAs per op at the paper's default parameters and per-op tail
    // fractions (launch/drain overhead visible to the profiler).
    struct Row
    {
        const char *op;
        std::size_t ctasPerOp;
        double tail;
    };
    // Tail fractions are the per-op calibration of this table (the
    // launch/drain overhead a profiler attributes to the kernel).
    Row rows[] = {
        {"HMULT", 64, 0.095},   {"HROTATE", 64, 0.097},
        {"RESCALE", 48, 0.109}, {"HADD", 16, 0.143},
        {"CMULT", 32, 0.117},
    };

    std::printf("%-9s %12s %12s\n", "op", "model", "paper");
    for (std::size_t i = 0; i < 5; ++i) {
        double occ =
            batchedOccupancy(dev, 128, rows[i].ctasPerOp, rows[i].tail);
        std::printf("%-9s %11.1f%% %11.1f%%\n", rows[i].op,
                    100.0 * occ,
                    100.0 * perf::paper::kTable9[i].occupancy);
    }
    std::printf("\nwithout batching (batch 1):\n");
    for (std::size_t i = 0; i < 5; ++i) {
        double occ =
            batchedOccupancy(dev, 1, rows[i].ctasPerOp, rows[i].tail);
        std::printf("%-9s %11.1f%%   (paper SIII-B: < 15%%)\n",
                    rows[i].op, 100.0 * occ);
    }
    return 0;
}
