/**
 * @file
 * Regenerates paper Fig. 11: kernel-level execution-time breakdown
 * inside each CKKS operation — measured through the KernelStats
 * instrumentation of the real kernels on this machine, with the
 * model's NTT share printed beside it.
 */

#include <cstdio>

#include "bench_util.hh"
#include "ckks/crypto.hh"
#include "ckks/evaluator.hh"
#include "common/stats.hh"
#include "perf/cost.hh"

using namespace tensorfhe;

int
main()
{
    bench::banner("Fig. 11 - execution-time breakdown per operation "
                  "(measured, N=2^13, L=8)");

    ckks::CkksContext ctx(ckks::Presets::medium());
    Rng rng(3);
    auto sk = ctx.generateSecretKey(rng);
    auto keys = ctx.generateKeys(sk, rng, {1});
    ckks::Encryptor enc(ctx, keys.pk);
    ckks::Evaluator eval(ctx, keys);
    std::size_t lc = ctx.tower().numQ();
    auto pt = ctx.encoder().encodeConstant(ckks::Complex(0.4, 0),
                                           ctx.params().scale(), lc);
    auto ct = enc.encrypt(pt, rng);
    auto ct2 = enc.encrypt(pt, rng);

    struct OpRun
    {
        const char *name;
        std::function<void()> run;
        perf::OpKind kind;
    };
    OpRun runs[] = {
        {"HMULT", [&] { auto r = eval.multiply(ct, ct2); },
         perf::OpKind::HMult},
        {"HROTATE", [&] { auto r = eval.rotate(ct, 1); },
         perf::OpKind::HRotate},
        {"RESCALE", [&] { auto r = eval.rescale(ct); },
         perf::OpKind::Rescale},
        {"HADD", [&] { auto r = eval.add(ct, ct2); },
         perf::OpKind::HAdd},
        {"CMULT", [&] { auto r = eval.multiplyPlain(ct, pt); },
         perf::OpKind::CMult},
    };

    std::printf("%-9s", "op");
    KernelKind shown[] = {KernelKind::Ntt, KernelKind::Intt,
                          KernelKind::HadaMult, KernelKind::EleAdd,
                          KernelKind::EleSub, KernelKind::FrobeniusMap,
                          KernelKind::Conv};
    for (auto k : shown)
        std::printf(" %12s", kernelKindName(k));
    std::printf("   model NTT share\n");

    for (auto &r : runs) {
        auto &stats = KernelStats::instance();
        stats.reset();
        for (int i = 0; i < 3; ++i)
            r.run();
        u64 total = stats.totalNanos();
        std::printf("%-9s", r.name);
        for (auto k : shown) {
            double frac = total == 0
                ? 0.0
                : double(stats.counter(k).nanos.load()) / double(total);
            std::printf(" %11.1f%%", 100.0 * frac);
        }
        std::printf("   %13.1f%%\n",
                    100.0 * perf::nttShare(r.kind, ctx.params(), lc));
    }
    std::printf("\npaper: NTT dominates HMULT (92.1%%) and HROTATE "
                "(95.4%%); non-NTT kernels are minor.\n");
    return 0;
}
