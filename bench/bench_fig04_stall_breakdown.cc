/**
 * @file
 * Regenerates paper Fig. 4: GPGPU pipeline-stall breakdown of
 * butterfly NTT vs FFT vs DWT (GPGPUSim on a GTX 1080 Ti in the
 * paper; our scoreboarded SM simulator here), with the paper's block
 * sizes (NTT 128, FFT 192, DWT 256).
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/pipeline.hh"
#include "perf/paper_data.hh"

using namespace tensorfhe;
using namespace tensorfhe::gpu;

int
main()
{
    bench::banner("Fig. 4 - pipeline stall breakdown (butterfly NTT, "
                  "FFT, DWT)");
    std::printf("Simulated: 8-warp SM, trace-driven, GTX 1080 Ti-like "
                "latencies.\n");

    struct Row
    {
        const char *name;
        WarpTrace trace;
    };
    Row rows[] = {
        {"NTT", butterflyNttTrace(1 << 12, 128)},
        {"FFT", fftTrace(1 << 12, 192)},
        {"DWT", dwtTrace(1 << 12, 256)},
    };

    std::printf("\n%-6s %10s", "kernel", "stall%");
    for (int s = 0; s < int(Stall::NumKinds); ++s)
        std::printf(" %9.9s", stallName(Stall(s)));
    std::printf("\n");
    // The three kernel simulations drain through the worker pool.
    std::vector<SmJob> jobs;
    for (auto &row : rows)
        jobs.push_back({&row.trace, 8});
    auto bds = simulateSmBatch(jobs);
    for (std::size_t r = 0; r < jobs.size(); ++r) {
        const auto &bd = bds[r];
        std::printf("%-6s %9.1f%%", rows[r].name,
                    100.0 * bd.totalStallFraction());
        for (int s = 0; s < int(Stall::NumKinds); ++s)
            std::printf(" %8.1f%%", 100.0 * bd.stallFraction(Stall(s)));
        std::printf("\n");
    }

    std::printf("\npaper: NTT stalls %.1f%% of cycles, RAW alone %.1f%%"
                " (48.6%% of its stalls);\n"
                "       NTT stalls most, RAW is the top contributor.\n",
                100.0 * perf::paper::kFig4NttStallFraction,
                100.0 * perf::paper::kFig4NttRawFraction);
    return 0;
}
