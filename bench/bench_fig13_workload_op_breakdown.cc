/**
 * @file
 * Regenerates paper Fig. 13: operation-level execution-time breakdown
 * of the four full workloads.
 */

#include <cstdio>

#include "bench_util.hh"
#include "perf/device_time.hh"
#include "workloads/models.hh"

using namespace tensorfhe;
using namespace tensorfhe::workloads;

int
main()
{
    bench::banner("Fig. 13 - operation-level breakdown per workload");

    perf::DeviceTimeModel a100(gpu::DeviceModel::a100());
    std::printf("%-22s %8s %9s %9s %7s %7s\n", "workload", "HMULT",
                "HROTATE", "RESCALE", "HADD", "CMULT");
    for (const auto &w : {resnet20Model(), logisticRegressionModel(),
                          lstmModel(), packedBootstrappingModel()}) {
        auto s = workloadOpShares(w, a100);
        std::printf("%-22s %7.1f%% %8.1f%% %8.1f%% %6.1f%% %6.1f%%\n",
                    w.name.c_str(), 100 * s.hmult, 100 * s.hrotate,
                    100 * s.rescale, 100 * s.hadd, 100 * s.cmult);
    }
    std::printf("\npaper: HROTATE is the most time-consuming "
                "operation (frequent, NTT-heavy).\n");
    return 0;
}
