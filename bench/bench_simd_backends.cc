/**
 * @file
 * SIMD backend comparison bench: every backend the host supports runs
 * the same hot loops — the forward butterfly NTT, the span kernels of
 * the exec layer, and the lazy key-switch inner-product row — and the
 * table prints one column per backend with the speedup over the
 * bit-identical scalar fallback. The two headline metrics CI gates on
 * (scripts/roll_bench.py, BENCH_TRAJECTORY.json):
 *
 *   ntt_simd_speedup          scalar / best-backend forward NTT
 *                             (floor 2.0)
 *   ks_inner_product_speedup  scalar / best-backend lazy inner
 *                             product row (floor 1.5)
 *
 * Usage: bench_simd_backends [reps] [--json PATH]
 *                            [--trace PATH] [--metrics PATH]
 *   reps = timing repetitions (default 5; CI smoke runs fewer).
 *   --json PATH appends the machine-readable object — the CI Release
 *   job collects BENCH_PR9.json this way.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/modarith.hh"
#include "common/primes.hh"
#include "common/rng.hh"
#include "ntt/ntt.hh"
#include "simd/simd.hh"

namespace
{

using namespace tensorfhe;

/** The shapes of one production-sized tower operation. */
constexpr std::size_t kN = 4096;     // polynomial length
constexpr std::size_t kBatch = 8;    // polys per NTT dispatch
constexpr std::size_t kDigits = 4;   // key-switch digit rows
constexpr int kInnerIters = 32;      // kernel loops per timed rep

std::vector<u64>
randomSpan(Rng &rng, std::size_t n, u64 q)
{
    std::vector<u64> a(n);
    for (auto &c : a)
        c = rng.uniform(q);
    return a;
}

/** Per-backend seconds for one measurement, scalar first. */
struct Column
{
    std::string name;
    double seconds = 0;
};

double
speedupVsScalar(const std::vector<Column> &cols, std::size_t i)
{
    return cols[i].seconds > 0 ? cols[0].seconds / cols[i].seconds
                               : 0.0;
}

void
printColumns(const char *what, const std::vector<Column> &cols)
{
    std::printf("  %-26s", what);
    for (std::size_t i = 0; i < cols.size(); ++i)
        std::printf("  %10s (%4.2fx)",
                    bench::fmtSeconds(cols[i].seconds).c_str(),
                    speedupVsScalar(cols, i));
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    auto obs = bench::ObsFlags::parse(argc, argv);
    int reps = 5;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else
            reps = std::atoi(argv[i]);
    }
    if (reps < 1)
        reps = 1;

    auto backends = simd::supportedBackends();
    std::string names;
    for (simd::Backend b : backends)
        names += std::string(names.empty() ? "" : ", ")
            + simd::backendName(b);
    bench::banner("bench_simd_backends — vector backends vs scalar "
                  "(host: " + names + "; reps="
                  + std::to_string(reps) + ")");

    obs.armIfRequested();

    u64 q = generateNttPrimes(30, 1, 2 * kN)[0];
    Modulus mod(q);
    ntt::NttContext ctx(kN, q);
    Rng rng(9);
    auto base = randomSpan(rng, kN * kBatch, q);

    simd::Backend saved = simd::activeBackend();
    simd::Backend best = backends.back();

    // ------------------------------------------------------------ NTT
    bench::section("forward NTT (butterfly, n=4096, batch=8)");
    std::vector<Column> ntt_cols;
    {
        std::vector<u64> work(base);
        std::vector<u64 *> ptrs(kBatch);
        for (std::size_t s = 0; s < kBatch; ++s)
            ptrs[s] = work.data() + s * kN;
        for (simd::Backend b : backends) {
            simd::setBackend(b);
            double t = bench::timeMean(reps, [&] {
                std::copy(base.begin(), base.end(), work.begin());
                ctx.forwardBatch(ptrs.data(), kBatch,
                                 ntt::NttVariant::Butterfly);
            });
            ntt_cols.push_back({simd::backendName(b), t / kBatch});
        }
    }
    printColumns("fwd NTT / poly", ntt_cols);

    // ---------------------------------------------------- span kernels
    bench::section("span kernels (n=4096 spans, per-pass mean)");
    std::vector<Column> add_cols, mul_cols, acc_cols;
    {
        auto a0 = randomSpan(rng, kN, q);
        auto b0 = randomSpan(rng, kN, q);
        for (simd::Backend b : backends) {
            simd::setBackend(b);
            const simd::Ops &v = simd::ops();
            auto a = a0;
            double ta = bench::timeMean(reps, [&] {
                for (int i = 0; i < kInnerIters; ++i)
                    v.addSpan(a.data(), b0.data(), kN, q);
            });
            add_cols.push_back(
                {simd::backendName(b), ta / kInnerIters});
            a = a0;
            double tm = bench::timeMean(reps, [&] {
                for (int i = 0; i < kInnerIters; ++i)
                    v.mulSpan(a.data(), b0.data(), kN, mod);
            });
            mul_cols.push_back(
                {simd::backendName(b), tm / kInnerIters});
            a = a0;
            double tc = bench::timeMean(reps, [&] {
                for (int i = 0; i < kInnerIters; ++i)
                    v.mulAccum(a.data(), a0.data(), b0.data(), kN,
                               mod);
            });
            acc_cols.push_back(
                {simd::backendName(b), tc / kInnerIters});
        }
    }
    printColumns("addSpan", add_cols);
    printColumns("mulSpan (Barrett)", mul_cols);
    printColumns("mulAccum", acc_cols);

    // -------------------------------------------- key-switch inner row
    bench::section("key-switch inner product (lazy 2q rows, "
                   "dnum=" + std::to_string(kDigits) + ")");
    std::vector<Column> ks_cols;
    {
        std::vector<std::vector<u64>> u, kb, ka;
        for (std::size_t d = 0; d < kDigits; ++d) {
            u.push_back(randomSpan(rng, kN, q));
            kb.push_back(randomSpan(rng, kN, q));
            ka.push_back(randomSpan(rng, kN, q));
        }
        auto acc0 = randomSpan(rng, kN, q);
        auto acc1 = randomSpan(rng, kN, q);
        for (simd::Backend b : backends) {
            simd::setBackend(b);
            const simd::Ops &v = simd::ops();
            auto c0 = acc0, c1 = acc1;
            double t = bench::timeMean(reps, [&] {
                for (int i = 0; i < kInnerIters; ++i) {
                    std::copy(acc0.begin(), acc0.end(), c0.begin());
                    std::copy(acc1.begin(), acc1.end(), c1.begin());
                    for (std::size_t d = 0; d < kDigits; ++d)
                        v.ipAccumLazy(c0.data(), c1.data(),
                                      u[d].data(), kb[d].data(),
                                      ka[d].data(), kN, mod,
                                      d + 1 == kDigits);
                }
            });
            ks_cols.push_back({simd::backendName(b),
                               t / (kInnerIters * kDigits)});
        }
    }
    printColumns("ipAccumLazy / digit row", ks_cols);

    simd::setBackend(saved);

    // ------------------------------------------------------- headlines
    std::size_t best_i = backends.size() - 1;
    double ntt_speedup = speedupVsScalar(ntt_cols, best_i);
    double ks_speedup = speedupVsScalar(ks_cols, best_i);
    bench::section("headlines");
    std::printf("  best backend:              %s\n",
                simd::backendName(best));
    std::printf("  ntt_simd_speedup:          %.2fx (floor 2.0)\n",
                ntt_speedup);
    std::printf("  ks_inner_product_speedup:  %.2fx (floor 1.5)\n",
                ks_speedup);

    if (!json_path.empty()) {
        bench::JsonWriter json("simd_backends");
        json.add("reps", static_cast<double>(reps))
            .add("n", static_cast<double>(kN))
            .add("best_backend", simd::backendName(best))
            .add("ntt_simd_speedup", ntt_speedup)
            .add("ks_inner_product_speedup", ks_speedup);
        for (std::size_t i = 0; i < backends.size(); ++i) {
            std::string suffix =
                std::string("_s_") + ntt_cols[i].name;
            json.add("ntt_fwd" + suffix, ntt_cols[i].seconds)
                .add("add_span" + suffix, add_cols[i].seconds)
                .add("mul_span" + suffix, mul_cols[i].seconds)
                .add("mul_accum" + suffix, acc_cols[i].seconds)
                .add("ks_ip_row" + suffix, ks_cols[i].seconds);
        }
        if (!json.appendTo(json_path)) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("  wrote %s\n", json_path.c_str());
    }

    obs.finish();
    return 0;
}
