/**
 * @file
 * Regenerates paper Fig. 15: sensitivity of kernel execution time to
 * the polynomial length N (2^11 .. 2^16) — model at the paper range
 * plus measured kernels on this machine up to 2^14.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/primes.hh"
#include "common/rng.hh"
#include "ntt/ntt.hh"
#include "perf/device_time.hh"

using namespace tensorfhe;
using namespace tensorfhe::perf;

int
main()
{
    bench::banner("Fig. 15 - polynomial length sensitivity");

    DeviceTimeModel a100(gpu::DeviceModel::a100());
    std::vector<std::size_t> lens = {1u << 11, 1u << 12, 1u << 13,
                                     1u << 14, 1u << 15, 1u << 16};

    bench::section("model: normalized kernel time vs N (L=44, "
                   "batch 128, A100)");
    std::printf("%-14s", "kernel");
    for (auto n : lens)
        std::printf(" %8zu", n);
    std::printf("\n");
    auto row = [&](const char *name, auto costFn) {
        std::printf("%-14s", name);
        double base = -1;
        for (auto n : lens) {
            double t = a100.seconds(costFn(n), 128);
            if (base < 0)
                base = t;
            std::printf(" %8.2f", t / base);
        }
        std::printf("  (vs N=2^11)\n");
    };
    row("NTT", [](std::size_t n) {
        return nttCost(n, 45, ntt::NttVariant::Tensor);
    });
    row("Hada-Mult", [](std::size_t n) { return hadaMultCost(n, 45); });
    row("Ele-Add", [](std::size_t n) { return eleAddCost(n, 45); });
    row("Conv", [](std::size_t n) { return convCost(n, 45, 1); });
    row("FrobeniusMap",
        [](std::size_t n) { return frobeniusCost(n, 45); });

    bench::section("measured: butterfly vs GEMM vs TCU NTT on this "
                   "machine (single transform)");
    std::printf("%-8s %12s %12s %12s\n", "N", "Butterfly", "GEMM(CO)",
                "Tensor(TCU)");
    for (std::size_t n : {1u << 11, 1u << 12, 1u << 13, 1u << 14}) {
        u64 q = generateNttPrimes(30, 1, 2 * n)[0];
        ntt::NttContext ctx(n, q);
        Rng rng(n);
        std::vector<u64> data(n);
        for (auto &c : data)
            c = rng.uniform(q);
        auto measure = [&](ntt::NttVariant v, int iters) {
            return bench::timeMean(iters, [&] {
                auto work = data;
                ctx.forward(work.data(), v);
            });
        };
        std::printf("%-8zu %12s %12s %12s\n", n,
                    bench::fmtSeconds(
                        measure(ntt::NttVariant::Butterfly, 5))
                        .c_str(),
                    bench::fmtSeconds(measure(ntt::NttVariant::Gemm, 3))
                        .c_str(),
                    bench::fmtSeconds(
                        measure(ntt::NttVariant::Tensor, 1))
                        .c_str());
    }
    std::printf("\npaper: N = 2^16 is markedly slower than all "
                "smaller N (NTT gains 20.6x going\n"
                "to 2^11); the default stays 2^16 for the security "
                "level. Note the CPU measured\n"
                "columns favor the butterfly: without real tensor "
                "cores the GEMM forms pay\n"
                "their extra arithmetic, which is exactly the paper's "
                "motivation for TCUs.\n");
    return 0;
}
