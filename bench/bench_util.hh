/**
 * @file
 * Shared helpers for the paper-table bench binaries: wall-clock
 * timing and aligned table printing. Every bench prints three kinds
 * of rows, always labeled: paper-published values, model estimates
 * (A100 device model at paper parameters), and measurements (this
 * machine, scaled parameters).
 */

#ifndef TENSORFHE_BENCH_BENCH_UTIL_HH
#define TENSORFHE_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>

#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace tensorfhe::bench
{

/**
 * Observability flags shared by every bench: `--trace out.json`
 * captures the run as Chrome trace-event JSON (chrome://tracing or
 * ui.perfetto.dev), `--metrics out.json` dumps the unified
 * MetricsRegistry snapshot. parse() strips the flags from argv so the
 * bench's own positional arguments keep working.
 */
struct ObsFlags
{
    std::string tracePath;
    std::string metricsPath;

    static ObsFlags
    parse(int &argc, char **argv)
    {
        ObsFlags f;
        int w = 1;
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            if (a == "--trace" && i + 1 < argc)
                f.tracePath = argv[++i];
            else if (a == "--metrics" && i + 1 < argc)
                f.metricsPath = argv[++i];
            else
                argv[w++] = argv[i];
        }
        argc = w;
        return f;
    }

    bool wantTrace() const { return !tracePath.empty(); }
    bool wantMetrics() const { return !metricsPath.empty(); }

    /** Arm the tracer if --trace was given (call before the traced
        region, while the pool is quiescent). Benches capture whole
        workloads, so the ring is 4x the default capacity. */
    void
    armIfRequested() const
    {
        if (wantTrace())
            trace::Tracer::instance().arm(
                trace::Tracer::kDefaultCapacity * 4);
    }

    /** Disarm and write the requested artifacts; prints one line per
        file written. Extra GPU-model lanes render as their own
        process in the viewer. */
    void
    finish(const std::vector<trace::Tracer::ExternalSpan> &gpuLanes =
               {}) const
    {
        if (wantTrace()) {
            trace::Tracer::instance().disarm();
            if (trace::Tracer::instance().writeChromeJson(tracePath,
                                                          gpuLanes))
                std::printf("trace:   %s (%llu spans, %llu dropped)\n",
                            tracePath.c_str(),
                            static_cast<unsigned long long>(
                                trace::Tracer::instance()
                                    .recordedSpans()),
                            static_cast<unsigned long long>(
                                trace::Tracer::instance()
                                    .droppedSpans()));
            else
                std::printf("trace:   FAILED to write %s\n",
                            tracePath.c_str());
        }
        if (wantMetrics()) {
            if (trace::MetricsRegistry::instance().writeSnapshotJson(
                    metricsPath))
                std::printf("metrics: %s\n", metricsPath.c_str());
            else
                std::printf("metrics: FAILED to write %s\n",
                            metricsPath.c_str());
        }
    }
};

/**
 * Minimal JSON object builder for the machine-readable bench dumps
 * (BENCH_PR4.json): each bench appends one `{"k": v, ...}` object
 * per line (JSON Lines), so several benches can share one file and
 * CI can grep/parse it without a JSON library.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::string bench_name)
    {
        // Full double precision: op counts are exact integers that
        // must survive the round-trip (344064 != 3.44064e+05 at the
        // default 6 significant digits).
        out_.precision(17);
        out_ << "{\"bench\": \"" << bench_name << '"';
    }

    JsonWriter &
    add(const std::string &key, double value)
    {
        out_ << ", \"" << key << "\": " << value;
        return *this;
    }

    JsonWriter &
    add(const std::string &key, const std::string &value)
    {
        out_ << ", \"" << key << "\": \"" << value << '"';
        return *this;
    }

    /** Append the object as one line of `path` (creates the file). */
    bool
    appendTo(const std::string &path)
    {
        std::FILE *f = std::fopen(path.c_str(), "a");
        if (!f)
            return false;
        std::fprintf(f, "%s}\n", out_.str().c_str());
        std::fclose(f);
        return true;
    }

  private:
    std::ostringstream out_;
};

/** Seconds of wall clock consumed by fn(). */
inline double
timeSeconds(const std::function<void()> &fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

/** Run fn `iters` times, return mean seconds per run. */
inline double
timeMean(int iters, const std::function<void()> &fn)
{
    double total = timeSeconds([&] {
        for (int i = 0; i < iters; ++i)
            fn();
    });
    return total / iters;
}

inline void
banner(const std::string &title)
{
    std::printf("\n================================================"
                "====================\n%s\n"
                "================================================"
                "====================\n",
                title.c_str());
}

inline void
section(const std::string &name)
{
    std::printf("\n--- %s ---\n", name.c_str());
}

/** "1.23 ms" style human formatting. */
inline std::string
fmtSeconds(double s)
{
    char buf[64];
    if (s < 0)
        std::snprintf(buf, sizeof buf, "-");
    else if (s < 1e-6)
        std::snprintf(buf, sizeof buf, "%.1f ns", s * 1e9);
    else if (s < 1e-3)
        std::snprintf(buf, sizeof buf, "%.2f us", s * 1e6);
    else if (s < 1.0)
        std::snprintf(buf, sizeof buf, "%.2f ms", s * 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.2f s", s);
    return buf;
}

} // namespace tensorfhe::bench

#endif // TENSORFHE_BENCH_BENCH_UTIL_HH
