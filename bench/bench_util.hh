/**
 * @file
 * Shared helpers for the paper-table bench binaries: wall-clock
 * timing and aligned table printing. Every bench prints three kinds
 * of rows, always labeled: paper-published values, model estimates
 * (A100 device model at paper parameters), and measurements (this
 * machine, scaled parameters).
 */

#ifndef TENSORFHE_BENCH_BENCH_UTIL_HH
#define TENSORFHE_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace tensorfhe::bench
{

/** Seconds of wall clock consumed by fn(). */
inline double
timeSeconds(const std::function<void()> &fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

/** Run fn `iters` times, return mean seconds per run. */
inline double
timeMean(int iters, const std::function<void()> &fn)
{
    double total = timeSeconds([&] {
        for (int i = 0; i < iters; ++i)
            fn();
    });
    return total / iters;
}

inline void
banner(const std::string &title)
{
    std::printf("\n================================================"
                "====================\n%s\n"
                "================================================"
                "====================\n",
                title.c_str());
}

inline void
section(const std::string &name)
{
    std::printf("\n--- %s ---\n", name.c_str());
}

/** "1.23 ms" style human formatting. */
inline std::string
fmtSeconds(double s)
{
    char buf[64];
    if (s < 0)
        std::snprintf(buf, sizeof buf, "-");
    else if (s < 1e-6)
        std::snprintf(buf, sizeof buf, "%.1f ns", s * 1e9);
    else if (s < 1e-3)
        std::snprintf(buf, sizeof buf, "%.2f us", s * 1e6);
    else if (s < 1.0)
        std::snprintf(buf, sizeof buf, "%.2f ms", s * 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.2f s", s);
    return buf;
}

} // namespace tensorfhe::bench

#endif // TENSORFHE_BENCH_BENCH_UTIL_HH
