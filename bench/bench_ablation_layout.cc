/**
 * @file
 * Ablation of the paper's data-layout optimization (SIV-D, Fig. 9):
 * (B, L, N) vs (L, B, N) storage for batched operands. Measures the
 * level-slab gather that batched kernels perform — run count
 * (discontiguous transactions) and wall time on this machine.
 */

#include <cstdio>
#include <vector>

#include "batch/layout.hh"
#include "bench_util.hh"

using namespace tensorfhe;
using namespace tensorfhe::batch;

int
main()
{
    bench::banner("Ablation - (B,L,N) vs (L,B,N) batched data layout "
                  "(paper Fig. 9)");

    std::size_t batch = 128;
    std::size_t limbs = 16;
    std::size_t n = 1 << 13;

    std::printf("%-10s %18s %14s %14s\n", "layout", "gather runs/level",
                "gather time", "full sweep");
    for (Layout lay : {Layout::BLN, Layout::LBN}) {
        BatchStore store(batch, limbs, n, lay);
        // Touch everything once so both layouts are faulted in.
        for (std::size_t b = 0; b < batch; ++b)
            for (std::size_t l = 0; l < limbs; ++l)
                store.entry(b, l)[0] = b + l;

        std::vector<u64> slab(batch * n);
        std::size_t runs = store.gatherLevel(0, slab.data());
        double t_one = bench::timeMean(5, [&] {
            store.gatherLevel(limbs / 2, slab.data());
        });
        double t_sweep = bench::timeMean(2, [&] {
            for (std::size_t l = 0; l < limbs; ++l)
                store.gatherLevel(l, slab.data());
        });
        std::printf("%-10s %18zu %14s %14s\n", layoutName(lay), runs,
                    bench::fmtSeconds(t_one).c_str(),
                    bench::fmtSeconds(t_sweep).c_str());
    }

    // Repack cost: what converting an existing (B,L,N) store costs.
    BatchStore store(batch, limbs, n, Layout::BLN);
    double t_repack = bench::timeSeconds([&] {
        store.repack(Layout::LBN);
    });
    std::printf("\none-time repack (B,L,N)->(L,B,N): %s for %zu MB\n",
                bench::fmtSeconds(t_repack).c_str(),
                batch * limbs * n * sizeof(u64) >> 20);
    std::printf("paper: the (L,B,N) layout makes each level slab one "
                "contiguous block, maximizing\n"
                "bandwidth during data packing for batched kernels.\n");
    return 0;
}
