/**
 * @file
 * Regenerates paper Table VII: Bootstrap execution time (batch 128,
 * N = 2^16, L = 34, dnum = 5) — model estimates per NTT variant next
 * to the published rows, plus a measured run of this library's real
 * bootstrap at the functional parameter set.
 */

#include <cstdio>

#include "bench_util.hh"
#include "boot/bootstrap.hh"
#include "perf/device_time.hh"
#include "perf/paper_data.hh"
#include "workloads/models.hh"

using namespace tensorfhe;

int
main()
{
    bench::banner("Table VII - Bootstrap execution time "
                  "(batch 128, N=2^16, L=34, dnum=5)");

    for (const auto &row : perf::paper::kTable7)
        std::printf("%-24.24s %12.0f   [paper, ms]\n", row.system.data(),
                    row.seconds);

    // Model: bootstrap op counts at the Table VII configuration.
    ckks::CkksParams p = ckks::Presets::paperDefault();
    p.levels = 34;
    p.dnum = 5;
    p.special = static_cast<int>(p.alpha());
    perf::DeviceTimeModel a100(gpu::DeviceModel::a100());
    for (auto v : {ntt::NttVariant::Butterfly, ntt::NttVariant::Gemm,
                   ntt::NttVariant::Tensor}) {
        p.nttVariant = v;
        auto counts = workloads::bootstrapOpCounts(p.slots());
        auto lc = std::size_t(0.6 * (p.levels + 1));
        double per_op_batch = 0;
        per_op_batch += counts.hmult
            * a100.seconds(perf::opCost(perf::OpKind::HMult, p, lc), 128);
        per_op_batch += counts.cmult
            * a100.seconds(perf::opCost(perf::OpKind::CMult, p, lc), 128);
        per_op_batch += counts.hadd
            * a100.seconds(perf::opCost(perf::OpKind::HAdd, p, lc), 128);
        per_op_batch += (counts.hrotate + counts.conjugate)
            * a100.seconds(perf::opCost(perf::OpKind::HRotate, p, lc),
                           128);
        per_op_batch += counts.rescale
            * a100.seconds(perf::opCost(perf::OpKind::Rescale, p, lc),
                           128);
        std::printf("model %-18s %12.0f   [model, ms]\n",
                    ntt::nttVariantName(v), per_op_batch * 1e3);
    }

    // Measured: the real slim bootstrap pipeline, functional params.
    bench::section("measured functional bootstrap (N=2^8, L=17, "
                   "sparse key, this machine)");
    ckks::CkksContext ctx(ckks::Presets::bootTest());
    Rng rng(5);
    auto sk = ctx.generateSecretKey(rng);
    auto keys = ctx.generateKeys(
        sk, rng, boot::Bootstrapper::requiredRotations(ctx.slots()),
        boot::Bootstrapper::requiredConjRotations(ctx.slots()));
    ckks::Encryptor enc(ctx, keys.pk);
    ckks::Decryptor dec(ctx, sk);
    boot::Bootstrapper boots(ctx, keys);

    std::vector<ckks::Complex> z(ctx.slots(), ckks::Complex(0.25, 0));
    auto ct = enc.encrypt(
        ctx.encoder().encode(z, ctx.params().scale(), 2), rng);
    ckks::Ciphertext refreshed;
    double secs = bench::timeSeconds(
        [&] { refreshed = boots.bootstrap(ct); });
    auto got = dec.decryptAndDecode(refreshed);
    std::printf("bootstrap: %s, levels %zu -> %zu, slot error %.3g\n",
                bench::fmtSeconds(secs).c_str(), ct.levelCount(),
                refreshed.levelCount(),
                std::abs(got[0] - z[0]));
    return 0;
}
