/**
 * @file
 * Cost of the PR 7 resilience machinery on the graph-schedule
 * workloads (the same LSTM step and deep CNN bench_graph_schedule
 * times). Three configurations per workload:
 *
 *   - plain: fault points compiled in but disarmed (the default
 *     production path — one relaxed atomic load per site). Budget:
 *     within 1% of the pre-instrumentation graph run; since that
 *     binary no longer exists, the bench bounds the site cost from
 *     above by also timing the ENGAGED slow path (counting mode,
 *     nothing armed) and reporting the delta.
 *   - paranoid: validate + checksum every value at node boundaries,
 *     re-verify on consume. Budget: < 3% over plain.
 *   - paranoid + checkpoints: additionally snapshot the live set at
 *     scheduler cuts (checkpointEvery = 8).
 *
 * Every configuration's outputs are checked bit-identical to the
 * plain run — a guard that costs nothing must also change nothing.
 *
 * Usage: bench_fault_overhead [reps] [--json PATH]
 *   reps = wall-clock repetitions (default 5; CI smoke runs 1).
 *   --json PATH appends one result object (BENCH_PR7.json in CI).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "fault/fault.hh"
#include "graph/executor.hh"
#include "workloads/cnn.hh"
#include "workloads/lstm.hh"

namespace
{

using namespace tensorfhe;
using tensorfhe::bench::fmtSeconds;

bool
bitIdentical(const graph::Cts &a, const graph::Cts &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t s = 0; s < a.size(); ++s) {
        if (a[s].scale != b[s].scale
            || a[s].levelCount() != b[s].levelCount())
            return false;
        for (std::size_t l = 0; l < a[s].c0.numLimbs(); ++l)
            for (std::size_t k = 0; k < a[s].c0.n(); ++k)
                if (a[s].c0.limb(l)[k] != b[s].c0.limb(l)[k]
                    || a[s].c1.limb(l)[k] != b[s].c1.limb(l)[k])
                    return false;
    }
    return true;
}

struct Overheads
{
    double plainSeconds = 0;
    double engagedSeconds = 0;
    double paranoidSeconds = 0;
    double checkpointSeconds = 0;
    std::size_t checkpointsTaken = 0;
    bool identical = false;

    double
    over(double s) const
    {
        return plainSeconds == 0 ? 0.0 : s / plainSeconds - 1.0;
    }
};

Overheads
measure(const nn::NnEngine &engine, const graph::GraphExecutor &ex,
        const std::vector<graph::Cts> &inputs, int reps)
{
    Overheads o;
    // Warm plan caches and grab the reference bits.
    auto ref = ex.run(engine, inputs).outputs;

    graph::ExecOptions paranoid;
    paranoid.paranoid = true;

    std::vector<resilience::Checkpoint> log;
    graph::ExecOptions ckpt;
    ckpt.paranoid = true;
    ckpt.checkpointEvery = 8;
    ckpt.checkpointLog = &log;

    // Interleave the configurations round-robin and keep each one's
    // MINIMUM: scheduler and frequency noise on the multi-threaded
    // kernels dwarfs the guard cost, and the minimum over rounds is
    // robust where a mean of consecutive runs is not.
    auto minTime = [](double &slot, const std::function<void()> &fn) {
        double t = bench::timeSeconds(fn);
        if (slot == 0 || t < slot)
            slot = t;
    };
    for (int r = 0; r < reps; ++r) {
        minTime(o.plainSeconds,
                [&] { (void)ex.run(engine, inputs); });
        // Engaged-but-idle: counting mode takes the slow branch
        // (mutex + map bump) at every site hit without firing — a
        // hard upper bound on what the disarmed fast path can cost.
        fault::FaultPlan::instance().startCounting();
        minTime(o.engagedSeconds,
                [&] { (void)ex.run(engine, inputs); });
        fault::FaultPlan::instance().stopCounting();
        minTime(o.paranoidSeconds,
                [&] { (void)ex.run(engine, inputs, paranoid); });
        minTime(o.checkpointSeconds, [&] {
            log.clear();
            (void)ex.run(engine, inputs, ckpt);
        });
    }
    o.checkpointsTaken = log.size();

    auto guarded = ex.run(engine, inputs, ckpt);
    o.identical = guarded.outputs.size() == ref.size();
    for (std::size_t i = 0; o.identical && i < ref.size(); ++i)
        o.identical = bitIdentical(guarded.outputs[i], ref[i]);
    return o;
}

void
printOverheads(const char *name, const Overheads &o)
{
    bench::section(name);
    std::printf("  plain run (guards off): %s\n",
                fmtSeconds(o.plainSeconds).c_str());
    std::printf("  fault sites engaged (counting): %s  (%+.2f%%)\n",
                fmtSeconds(o.engagedSeconds).c_str(),
                100.0 * o.over(o.engagedSeconds));
    std::printf("  paranoid guards: %s  (%+.2f%%)\n",
                fmtSeconds(o.paranoidSeconds).c_str(),
                100.0 * o.over(o.paranoidSeconds));
    std::printf("  paranoid + %zu checkpoints: %s  (%+.2f%%)\n",
                o.checkpointsTaken,
                fmtSeconds(o.checkpointSeconds).c_str(),
                100.0 * o.over(o.checkpointSeconds));
    std::printf("  guarded outputs bit-identical: %s\n",
                o.identical ? "yes" : "NO (BUG)");
}

void
addJson(bench::JsonWriter &json, const std::string &prefix,
        const Overheads &o)
{
    json.add(prefix + "_plain_s", o.plainSeconds)
        .add(prefix + "_engaged_s", o.engagedSeconds)
        .add(prefix + "_engaged_overhead", o.over(o.engagedSeconds))
        .add(prefix + "_paranoid_s", o.paranoidSeconds)
        .add(prefix + "_paranoid_overhead",
             o.over(o.paranoidSeconds))
        .add(prefix + "_checkpoint_s", o.checkpointSeconds)
        .add(prefix + "_checkpoint_overhead",
             o.over(o.checkpointSeconds))
        .add(prefix + "_checkpoints",
             static_cast<double>(o.checkpointsTaken))
        .add(prefix + "_bit_identical", o.identical ? 1.0 : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    int reps = 5;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else
            reps = std::atoi(argv[i]);
    }
    if (reps < 1)
        reps = 1;

    bench::banner("bench_fault_overhead — resilience machinery cost "
                  "on graph runs (reps=" + std::to_string(reps)
                  + ")");

    // ---------------------------------------------------------------
    // LSTM cell step.
    Overheads lstm;
    {
        ckks::CkksContext ctx(
            workloads::EncryptedLstmCell::recommendedParams());
        workloads::EncryptedLstmCell cell(ctx);
        Rng rng(0x7a);
        auto sk = ctx.generateSecretKey(rng);
        auto keys =
            ctx.generateKeys(sk, rng, cell.requiredRotations());
        ckks::Encryptor enc(ctx, keys.pk);
        nn::NnEngine engine(ctx, keys);

        auto enc_state = [&](u64 seed) {
            Rng r(seed);
            std::vector<double> v(cell.config().dim);
            for (auto &x : v)
                x = 2 * r.uniformReal() - 1;
            return nn::encryptTensor(ctx, enc, rng, v,
                                     cell.inputMeta().shape,
                                     cell.inputMeta().levelCount);
        };
        auto x = enc_state(1);
        workloads::EncryptedLstmCell::State prev{enc_state(2),
                                                 enc_state(3)};

        auto g = cell.buildStepGraph(ctx);
        graph::GraphExecutor ex(g, graph::scheduleGraph(g));
        std::vector<graph::Cts> inputs{x.chunks(), prev.h.chunks(),
                                       prev.c.chunks()};
        lstm = measure(engine, ex, inputs, reps);
        printOverheads("LSTM cell step (dim=8, degree-3 gates)",
                       lstm);
    }

    // ---------------------------------------------------------------
    // Deep CNN with the auto-spliced bootstrap.
    Overheads cnn;
    {
        ckks::CkksContext ctx(
            workloads::EncryptedCnnClassifier::recommendedDeepParams());
        workloads::EncryptedCnnClassifier net(
            ctx, workloads::EncryptedCnnClassifier::deepConfig());
        Rng rng(0x7b);
        auto sk = ctx.generateSecretKey(rng);
        auto keys = ctx.generateKeys(sk, rng, net.requiredRotations(),
                                     net.requiredConjRotations());
        ckks::Encryptor enc(ctx, keys.pk);
        nn::NnEngine engine(ctx, keys);

        Rng ir(4);
        const auto &meta = net.inputMeta();
        std::vector<double> img(net.config().inChannels
                                * net.config().height
                                * net.config().width);
        for (auto &v : img)
            v = ir.uniformReal();
        auto t = nn::encryptTensor(ctx, enc, rng, img, meta.shape,
                                   meta.levelCount);

        auto g = graph::compileSequential(ctx, net.net());
        graph::GraphExecutor ex(g, graph::scheduleGraph(g));
        std::vector<graph::Cts> inputs{t.chunks()};
        cnn = measure(engine, ex, inputs, reps);
        printOverheads(
            "deep CNN (2-chunk block matvecs + bootstrap)", cnn);
    }

    if (!json_path.empty()) {
        bench::JsonWriter json("fault_overhead");
        json.add("reps", static_cast<double>(reps));
        addJson(json, "lstm", lstm);
        addJson(json, "cnn_deep", cnn);
        if (!json.appendTo(json_path)) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("  wrote %s\n", json_path.c_str());
    }
    return lstm.identical && cnn.identical ? 0 : 1;
}
