/**
 * @file
 * Regenerates paper Table VIII: NTT/s, INTT/s and HMULT/s against
 * HEAX's sets A/B/C — model throughput at the set parameters beside
 * the published rows, plus measured CPU throughput of the real
 * kernels at the exact set dimensions.
 */

#include <cstdio>

#include "bench_util.hh"
#include "ckks/crypto.hh"
#include "ckks/evaluator.hh"
#include "perf/device_time.hh"
#include "perf/paper_data.hh"

using namespace tensorfhe;
using namespace tensorfhe::perf;

int
main()
{
    bench::banner("Table VIII - throughput vs HEAX (sets A/B/C)");
    std::printf("Set A: N=2^12, K=2; Set B: N=2^13, K=4; Set C: "
                "N=2^14, K=8.\n\n");
    for (const auto &row : paper::kTable8) {
        std::printf("%-14.14s  CPU %8.0f  HEAX %8.0f  TensorFHE %8.0f"
                    "   [paper, ops/s]\n",
                    row.metric.data(), row.cpu, row.heax,
                    row.tensorfhe);
    }

    DeviceTimeModel a100(gpu::DeviceModel::a100());
    ckks::CkksParams sets[3] = {ckks::Presets::heaxSetA(),
                                ckks::Presets::heaxSetB(),
                                ckks::Presets::heaxSetC()};
    const char *names[3] = {"SetA", "SetB", "SetC"};

    bench::section("model (A100, TCU NTT, batch 128) + measured "
                   "(this machine, batch 1)");
    for (int i = 0; i < 3; ++i) {
        auto p = sets[i];
        p.nttVariant = ntt::NttVariant::Tensor;
        std::size_t lc = p.levels + 1;
        double ntt_s = a100.throughput(
            nttCost(p.n, lc, ntt::NttVariant::Tensor), 128);
        double hmult_s = a100.throughput(
            opCost(OpKind::HMult, p, lc), 128);

        // Measured: real kernels at the set's exact dimensions.
        ckks::CkksContext ctx(p);
        Rng rng(i);
        auto sk = ctx.generateSecretKey(rng);
        auto keys = ctx.generateKeys(sk, rng, {});
        ckks::Encryptor enc(ctx, keys.pk);
        ckks::Evaluator eval(ctx, keys);
        auto pt = ctx.encoder().encodeConstant(
            ckks::Complex(0.5, 0), p.scale(), lc);
        auto ct = enc.encrypt(pt, rng);
        auto poly = ct.c0;
        double t_ntt = bench::timeMean(3, [&] {
            auto q = poly;
            q.setDomain(rns::Domain::Coeff);
            q.toEval(ntt::NttVariant::Butterfly);
        });
        double t_intt = bench::timeMean(3, [&] {
            auto q = poly;
            q.setDomain(rns::Domain::Eval);
            q.toCoeff(ntt::NttVariant::Butterfly);
        });
        double t_hmult = bench::timeMean(2, [&] {
            auto r = eval.multiply(ct, ct);
        });
        std::printf("%-5s model:  NTT %9.0f/s  HMULT %8.0f/s   |  "
                    "measured:  NTT %7.0f/s  INTT %7.0f/s  HMULT "
                    "%6.0f/s\n",
                    names[i], ntt_s, hmult_s, 1.0 / t_ntt,
                    1.0 / t_intt, 1.0 / t_hmult);
    }
    std::printf("\npaper shape: TensorFHE beats HEAX ~4.9x on (i)NTT "
                "everywhere; on HMULT it\n"
                "wins at large N (Set C) but loses ~10%% at Set A "
                "where the workload is small.\n");
    return 0;
}
