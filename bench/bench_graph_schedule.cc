/**
 * @file
 * Graph-compiled execution bench: eager op-by-op dispatch vs the AOT
 * kernel DAG (src/graph) on the two workloads with exploitable
 * structure — the LSTM cell step (fusable masked gate combine + two
 * independent gate matvecs) and the deep two-chunk CNN (independent
 * per-(out,in)-chunk block-matvec programs around an auto-spliced
 * bootstrap). Reports, per workload:
 *
 *   - kernel launches: eager vs scheduled graph (fusion folds
 *     elementwise trees into single span passes);
 *   - GPU-model replay: serialized cycles vs the stream-overlapped
 *     makespan (gpu::replayScheduledQueue) and the simulated stall
 *     fraction;
 *   - workspace arena reuse on a COLD first run, with and without
 *     GraphExecutor::prestageWorkspace;
 *   - bit-identity of the graph outputs against the eager run.
 *
 * Usage: bench_graph_schedule [reps] [--json PATH]
 *                             [--trace PATH] [--metrics PATH]
 *   reps = wall-clock repetitions (default 3; CI smoke runs 1).
 *   --json PATH appends one machine-readable result object to PATH —
 *   the CI Release job collects BENCH_PR6.json this way.
 *   --trace PATH writes the whole run as Chrome trace-event JSON
 *   (nested workload -> graph node -> dispatcher op -> kernel spans,
 *   plus the GPU model's per-stream replay as its own process).
 *   --metrics PATH dumps the unified MetricsRegistry snapshot.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/stats.hh"
#include "graph/executor.hh"
#include "workloads/cnn.hh"
#include "workloads/lstm.hh"

namespace
{

using namespace tensorfhe;
using tensorfhe::bench::fmtSeconds;

bool
bitIdentical(const graph::Cts &a, const graph::Cts &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t s = 0; s < a.size(); ++s) {
        if (a[s].scale != b[s].scale
            || a[s].levelCount() != b[s].levelCount())
            return false;
        for (std::size_t l = 0; l < a[s].c0.numLimbs(); ++l)
            for (std::size_t k = 0; k < a[s].c0.n(); ++k)
                if (a[s].c0.limb(l)[k] != b[s].c0.limb(l)[k]
                    || a[s].c1.limb(l)[k] != b[s].c1.limb(l)[k])
                    return false;
    }
    return true;
}

/** One workload's eager-vs-graph comparison. */
struct Comparison
{
    std::size_t eagerLaunches = 0;
    std::size_t graphLaunches = 0;
    std::size_t fusedGroups = 0;
    std::size_t fusedMembers = 0;
    int streamsUsed = 0;
    u64 serialCycles = 0;
    u64 makespanCycles = 0;
    double eagerStallFraction = 0;
    double graphStallFraction = 0;
    double eagerSeconds = 0;
    double graphSeconds = 0;
    double coldReuseRate = 0;
    double prestagedReuseRate = 0;
    bool identical = false;
    /** Per-stream GPU-model replay lanes for the trace export. */
    std::vector<trace::Tracer::ExternalSpan> gpuLanes;

    double
    launchReduction() const
    {
        return eagerLaunches == 0
            ? 0.0
            : 1.0
                - static_cast<double>(graphLaunches)
                    / static_cast<double>(eagerLaunches);
    }

    double
    overlapSpeedup() const
    {
        return makespanCycles == 0
            ? 0.0
            : static_cast<double>(serialCycles)
                / static_cast<double>(makespanCycles);
    }
};

void
printComparison(const char *name, const Comparison &c)
{
    bench::section(name);
    std::printf("  launches: eager %zu -> graph %zu  (-%.1f%%; "
                "%zu member ops in %zu fused groups)\n",
                c.eagerLaunches, c.graphLaunches,
                100.0 * c.launchReduction(), c.fusedMembers,
                c.fusedGroups);
    std::printf("  GPU replay: serial %llu cyc -> makespan %llu cyc "
                "(%.2fx overlap, %d streams)\n",
                static_cast<unsigned long long>(c.serialCycles),
                static_cast<unsigned long long>(c.makespanCycles),
                c.overlapSpeedup(), c.streamsUsed);
    std::printf("  stall fraction: eager %.1f%% -> graph %.1f%%\n",
                100.0 * c.eagerStallFraction,
                100.0 * c.graphStallFraction);
    std::printf("  wall: eager %s -> graph %s per run\n",
                fmtSeconds(c.eagerSeconds).c_str(),
                fmtSeconds(c.graphSeconds).c_str());
    std::printf("  cold workspace reuse: %.1f%% bare -> %.1f%% "
                "prestaged\n",
                100.0 * c.coldReuseRate,
                100.0 * c.prestagedReuseRate);
    std::printf("  bit-identical to eager: %s\n",
                c.identical ? "yes" : "NO (BUG)");
}

void
addJson(bench::JsonWriter &json, const std::string &prefix,
        const Comparison &c)
{
    json.add(prefix + "_eager_launches",
             static_cast<double>(c.eagerLaunches))
        .add(prefix + "_graph_launches",
             static_cast<double>(c.graphLaunches))
        .add(prefix + "_launch_reduction", c.launchReduction())
        .add(prefix + "_fused_groups",
             static_cast<double>(c.fusedGroups))
        .add(prefix + "_fused_members",
             static_cast<double>(c.fusedMembers))
        .add(prefix + "_streams", static_cast<double>(c.streamsUsed))
        .add(prefix + "_serial_cycles",
             static_cast<double>(c.serialCycles))
        .add(prefix + "_makespan_cycles",
             static_cast<double>(c.makespanCycles))
        .add(prefix + "_overlap_speedup", c.overlapSpeedup())
        .add(prefix + "_eager_stall_fraction", c.eagerStallFraction)
        .add(prefix + "_graph_stall_fraction", c.graphStallFraction)
        .add(prefix + "_eager_s", c.eagerSeconds)
        .add(prefix + "_graph_s", c.graphSeconds)
        .add(prefix + "_cold_reuse_rate", c.coldReuseRate)
        .add(prefix + "_prestaged_reuse_rate", c.prestagedReuseRate)
        .add(prefix + "_bit_identical", c.identical ? 1.0 : 0.0);
}

/**
 * Run the comparison given closures for the eager run (returns the
 * flat output batch) and the prepared graph executor + inputs.
 */
Comparison
compareWorkload(const nn::NnEngine &engine, std::size_t n, int reps,
                const std::function<graph::Cts()> &eager,
                const graph::GraphExecutor &ex,
                const std::vector<graph::Cts> &inputs,
                const std::function<graph::Cts(graph::ExecResult &)>
                    &flattenOutputs)
{
    Comparison c;
    auto &stats = KernelStats::instance();

    // Warm the plan/diagonal caches on both paths so the captures
    // compare schedules, not first-run plan builds.
    (void)eager();
    (void)ex.run(engine, inputs);

    // Eager capture.
    stats.startQueue();
    auto eager_out = eager();
    auto eager_queue = stats.stopQueue();
    c.eagerLaunches = eager_queue.size();
    c.eagerStallFraction =
        gpu::sumBreakdowns(gpu::simulateKernelQueue(eager_queue, n))
            .totalStallFraction();

    // Graph capture + overlapped replay.
    graph::ExecOptions cap;
    cap.captureSchedule = true;
    auto res = ex.run(engine, inputs, cap);
    c.graphLaunches = res.launchCount;
    c.fusedGroups = ex.schedule().fusedGroups;
    c.fusedMembers = ex.schedule().fusedMembers;
    auto replay = gpu::replayScheduledQueue(res.schedule, n);
    c.streamsUsed = replay.streamsUsed;
    c.serialCycles = replay.serialCycles;
    c.makespanCycles = replay.makespanCycles;
    c.graphStallFraction = replay.totalStallFraction();
    c.identical = bitIdentical(flattenOutputs(res), eager_out);
    // One trace lane per model stream (1 cycle rendered as 1 ns).
    c.gpuLanes.reserve(res.schedule.size());
    for (std::size_t i = 0; i < res.schedule.size(); ++i) {
        c.gpuLanes.push_back(
            {kernelKindName(res.schedule[i].launch.kind),
             res.schedule[i].stream, replay.startCycle[i],
             replay.finishCycle[i] - replay.startCycle[i]});
    }

    // Wall clock.
    c.eagerSeconds = bench::timeMean(reps, [&] { (void)eager(); });
    c.graphSeconds =
        bench::timeMean(reps, [&] { (void)ex.run(engine, inputs); });

    // Cold-run workspace reuse, bare vs prestaged.
    auto &ws = engine.batched().dispatcher().workspace();
    ws.trim();
    ws.resetStats();
    (void)ex.run(engine, inputs);
    c.coldReuseRate = ws.stats().reuseRate();
    ws.trim();
    ex.prestageWorkspace(engine, inputs[0].size());
    ws.resetStats();
    (void)ex.run(engine, inputs);
    c.prestagedReuseRate = ws.stats().reuseRate();
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    auto obs = bench::ObsFlags::parse(argc, argv);
    int reps = 3;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else
            reps = std::atoi(argv[i]);
    }
    if (reps < 1)
        reps = 1;

    bench::banner("bench_graph_schedule — AOT kernel DAG vs eager "
                  "dispatch (reps=" + std::to_string(reps) + ")");

    obs.armIfRequested();

    // ---------------------------------------------------------------
    // LSTM cell step: fusable masked combine, two independent gate
    // matvec branches.
    Comparison lstm;
    {
        TFHE_TRACE_SPAN("workload", "lstm-cell");
        ckks::CkksContext ctx(
            workloads::EncryptedLstmCell::recommendedParams());
        workloads::EncryptedLstmCell cell(ctx);
        Rng rng(0x6a);
        auto sk = ctx.generateSecretKey(rng);
        auto keys =
            ctx.generateKeys(sk, rng, cell.requiredRotations());
        ckks::Encryptor enc(ctx, keys.pk);
        nn::NnEngine engine(ctx, keys);

        auto enc_state = [&](u64 seed) {
            Rng r(seed);
            std::vector<double> v(cell.config().dim);
            for (auto &x : v)
                x = 2 * r.uniformReal() - 1;
            return nn::encryptTensor(ctx, enc, rng, v,
                                     cell.inputMeta().shape,
                                     cell.inputMeta().levelCount);
        };
        auto x = enc_state(1);
        workloads::EncryptedLstmCell::State prev{enc_state(2),
                                                 enc_state(3)};

        auto g = cell.buildStepGraph(ctx);
        auto sched = graph::scheduleGraph(g);
        graph::GraphExecutor ex(g, sched);
        std::vector<graph::Cts> inputs{x.chunks(), prev.h.chunks(),
                                       prev.c.chunks()};

        lstm = compareWorkload(
            engine, ctx.params().n, reps,
            [&] {
                auto out = cell.step(engine, x, prev);
                graph::Cts flat = out.h.chunks();
                for (const auto &ct : out.c.chunks())
                    flat.push_back(ct);
                return flat;
            },
            ex, inputs,
            [](graph::ExecResult &r) {
                graph::Cts flat = std::move(r.outputs[0]);
                for (auto &ct : r.outputs[1])
                    flat.push_back(std::move(ct));
                return flat;
            });
        printComparison("LSTM cell step (dim=8, degree-3 gates)",
                        lstm);
    }

    // ---------------------------------------------------------------
    // Deep CNN: two-chunk block matvecs (independent per-chunk BSGS
    // programs) around an auto-spliced bootstrap.
    Comparison cnn;
    {
        TFHE_TRACE_SPAN("workload", "deep-cnn");
        ckks::CkksContext ctx(
            workloads::EncryptedCnnClassifier::recommendedDeepParams());
        workloads::EncryptedCnnClassifier net(
            ctx, workloads::EncryptedCnnClassifier::deepConfig());
        Rng rng(0x6b);
        auto sk = ctx.generateSecretKey(rng);
        auto keys = ctx.generateKeys(sk, rng, net.requiredRotations(),
                                     net.requiredConjRotations());
        ckks::Encryptor enc(ctx, keys.pk);
        nn::NnEngine engine(ctx, keys);

        Rng ir(4);
        const auto &meta = net.inputMeta();
        std::vector<double> img(net.config().inChannels
                                * net.config().height
                                * net.config().width);
        for (auto &v : img)
            v = ir.uniformReal();
        auto t = nn::encryptTensor(ctx, enc, rng, img, meta.shape,
                                   meta.levelCount);

        auto g = graph::compileSequential(ctx, net.net());
        auto sched = graph::scheduleGraph(g);
        graph::GraphExecutor ex(g, sched);
        std::vector<graph::Cts> inputs{t.chunks()};

        cnn = compareWorkload(
            engine, ctx.params().n, reps,
            [&] {
                auto out = net.net().run(engine, t);
                return out.chunks();
            },
            ex, inputs,
            [](graph::ExecResult &r) {
                return std::move(r.outputs[0]);
            });
        printComparison(
            "deep CNN (2-chunk block matvecs + bootstrap)", cnn);
    }

    if (!json_path.empty()) {
        bench::JsonWriter json("graph_schedule");
        json.add("reps", static_cast<double>(reps));
        addJson(json, "lstm", lstm);
        addJson(json, "cnn_deep", cnn);
        if (!json.appendTo(json_path)) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("  wrote %s\n", json_path.c_str());
    }

    // Export the deep-CNN replay lanes (the showcase timeline); the
    // LSTM's are a strict subset of the same structure.
    obs.finish(cnn.gpuLanes.empty() ? lstm.gpuLanes : cnn.gpuLanes);
    return lstm.identical && cnn.identical ? 0 : 1;
}
