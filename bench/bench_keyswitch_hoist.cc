/**
 * @file
 * Hoisted key-switching bench: the naive per-rotation keyswitch
 * (automorphism + full Dcomp/ModUp/NTT/inner-product/ModDown per
 * step) against Evaluator::rotateHoisted (one head, one tail per
 * step) and the BSGS boot::LinearTransformPlan, reporting the
 * NTT / ModUp(Conv) kernel work per rotation alongside wall clock.
 *
 * Usage: bench_keyswitch_hoist [reps] [--json PATH]
 *   reps = measurement repetitions (default 3; CI smoke runs 1).
 *   --json PATH appends one machine-readable result object (op
 *   counts + timings + conversion accounting) to PATH — the CI
 *   Release job collects BENCH_PR4.json this way.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "boot/linear.hh"
#include "ckks/crypto.hh"
#include "ckks/rotations.hh"
#include "common/stats.hh"
#include "gpu/pipeline.hh"

namespace
{

using namespace tensorfhe;
using tensorfhe::bench::fmtSeconds;

struct KernelSnapshot
{
    u64 nttElements = 0;
    u64 nttInvocations = 0;
    u64 convElements = 0;
    u64 convInvocations = 0;
};

KernelSnapshot
takeSnapshot()
{
    auto &s = KernelStats::instance();
    KernelSnapshot out;
    out.nttElements = s.counter(KernelKind::Ntt).elements
        + s.counter(KernelKind::Intt).elements;
    out.nttInvocations = s.counter(KernelKind::Ntt).invocations
        + s.counter(KernelKind::Intt).invocations;
    out.convElements = s.counter(KernelKind::Conv).elements;
    out.convInvocations = s.counter(KernelKind::Conv).invocations;
    return out;
}

void
printRow(const char *label, double seconds, std::size_t rotations,
         const KernelSnapshot &snap)
{
    std::printf("  %-28s %10s/rot   NTT %8.1fK elem/rot   "
                "Conv %7.1fK elem/rot (%5.1f disp/rot)\n",
                label,
                fmtSeconds(seconds / double(rotations)).c_str(),
                double(snap.nttElements) / double(rotations) / 1e3,
                double(snap.convElements) / double(rotations) / 1e3,
                double(snap.convInvocations) / double(rotations));
}

} // namespace

int
main(int argc, char **argv)
{
    int reps = 3;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else
            reps = std::atoi(argv[i]);
    }
    if (reps < 1)
        reps = 1;

    auto params = ckks::Presets::tiny();
    ckks::CkksContext ctx(params);
    std::size_t slots = ctx.slots();
    Rng rng(0xb0b);
    auto sk = ctx.generateSecretKey(rng);
    std::vector<s64> all_steps;
    for (std::size_t d = 1; d < slots; ++d)
        all_steps.push_back(static_cast<s64>(d));
    // Conjugate-composed keys for the fused sine-stage split plans.
    auto c2s_re = boot::LinearTransformPlan::coeffToSlotReal(ctx);
    auto c2s_im = boot::LinearTransformPlan::coeffToSlotImag(ctx);
    auto conj_steps = ckks::unionRotationSteps(
        {c2s_re.requiredConjRotations(),
         c2s_im.requiredConjRotations()});
    auto keys = ctx.generateKeys(sk, rng, all_steps, conj_steps);
    ckks::Encryptor enc(ctx, keys.pk);
    ckks::Evaluator eval(ctx, keys);

    std::size_t lc = ctx.tower().numQ();
    std::vector<ckks::Complex> z(slots, ckks::Complex(0.25, -0.5));
    auto ct = enc.encrypt(
        ctx.encoder().encode(z, params.scale(), lc), rng);

    std::vector<s64> steps;
    for (s64 s = 1; s <= 8; ++s)
        steps.push_back(s);

    bench::banner("bench_keyswitch_hoist — hoisted keyswitching + BSGS "
                  "(N=" + std::to_string(params.n)
                  + ", L=" + std::to_string(params.levels)
                  + ", dnum=" + std::to_string(params.effectiveDnum())
                  + ", " + std::to_string(steps.size())
                  + " rotations, reps=" + std::to_string(reps) + ")");

    // Naive: the pre-hoisting HROTATE composition — automorphism on
    // both components, then one full keyswitch per step.
    auto naive = [&] {
        for (s64 step : steps) {
            u64 galois = ctx.galoisForRotation(step);
            auto c0r = rns::applyAutomorphism(ct.c0, galois);
            auto c1r = rns::applyAutomorphism(ct.c1, galois);
            auto [ks0, ks1] = eval.keySwitch(c1r, keys.rot.at(step));
            rns::eleAddInPlace(ks0, c0r);
        }
    };
    auto hoisted = [&] { (void)eval.rotateHoisted(ct, steps); };

    bench::section("rotations (measured, this machine)");
    auto &stats = KernelStats::instance();
    stats.reset();
    naive();
    auto naive_snap = takeSnapshot();
    double naive_t = bench::timeMean(reps, naive);

    stats.reset();
    hoisted();
    auto hoisted_snap = takeSnapshot();
    double hoisted_t = bench::timeMean(reps, hoisted);
    stats.reset();

    printRow("naive per-rotation KS", naive_t, steps.size(),
             naive_snap);
    printRow("rotateHoisted", hoisted_t, steps.size(), hoisted_snap);
    std::printf("  speedup: %.2fx wall, %.2fx NTT elements, "
                "%.2fx Conv dispatches\n",
                naive_t / hoisted_t,
                double(naive_snap.nttElements)
                    / double(hoisted_snap.nttElements),
                double(naive_snap.convInvocations)
                    / double(hoisted_snap.convInvocations));
    // One decompose+ModUp per *input*: the hoisted path runs the
    // per-digit ModUp Conv once, plus the two ModDown Convs each tail
    // pays; the naive path repeats the ModUp head every rotation.
    std::size_t digits = (lc + params.alpha() - 1) / params.alpha();
    std::printf("  ModUp Conv dispatches: naive %zu (= %zu digits x "
                "%zu rotations), hoisted %zu (= %zu digits x 1 hoist)\n",
                digits * steps.size(), digits, steps.size(),
                digits, digits);

    // Bit-identity sanity: rotateHoisted must equal the serial rotate.
    auto hoisted_cts = eval.rotateHoisted(ct, steps);
    bool identical = true;
    for (std::size_t i = 0; i < steps.size() && identical; ++i) {
        auto serial = eval.rotate(ct, steps[i]);
        for (std::size_t l = 0;
             l < serial.c0.numLimbs() && identical; ++l) {
            for (std::size_t c = 0; c < serial.c0.n(); ++c) {
                if (serial.c0.limb(l)[c]
                        != hoisted_cts[i].c0.limb(l)[c]
                    || serial.c1.limb(l)[c]
                        != hoisted_cts[i].c1.limb(l)[c]) {
                    identical = false;
                    break;
                }
            }
        }
    }
    std::printf("  bit-identical to serial rotate: %s\n",
                identical ? "yes" : "NO (BUG)");

    bench::section("slots x slots linear transform (special FFT)");
    auto plan = boot::LinearTransformPlan::specialFft(ctx);
    auto ct3 = enc.encrypt(
        ctx.encoder().encode(z, params.scale(), 3), rng);

    // Naive diagonal method: one full rotation + fresh encode per
    // nonzero diagonal (the pre-BSGS applyLinear).
    auto naive_transform = [&] {
        const auto &m = plan.matrix();
        ckks::Ciphertext acc;
        bool first = true;
        for (std::size_t d = 0; d < slots; ++d) {
            std::vector<ckks::Complex> diag(slots);
            double mag = 0;
            for (std::size_t j = 0; j < slots; ++j) {
                diag[j] = m[j][(j + d) % slots];
                mag = std::max(mag, std::abs(diag[j]));
            }
            if (mag < 1e-12)
                continue;
            auto rotated =
                d == 0 ? ct3 : eval.rotate(ct3, static_cast<s64>(d));
            auto pt = ctx.encoder().encode(diag, params.scale(),
                                           rotated.levelCount());
            auto term = eval.multiplyPlain(rotated, pt);
            if (first) {
                acc = std::move(term);
                first = false;
            } else {
                acc = eval.add(acc, term);
            }
        }
        (void)eval.rescale(acc);
    };

    double naive_lt = bench::timeSeconds(naive_transform);
    double plan_cold = bench::timeSeconds(
        [&] { (void)plan.apply(eval, ct3); });
    double plan_warm = bench::timeMean(
        reps, [&] { (void)plan.apply(eval, ct3); });
    std::printf("  %-34s %10s  (%zu full keyswitches)\n",
                "naive diagonal method", fmtSeconds(naive_lt).c_str(),
                slots - 1);
    std::printf("  %-34s %10s  (%zu rotation keys: baby+giant)\n",
                "BSGS plan, cold cache", fmtSeconds(plan_cold).c_str(),
                plan.requiredRotations().size());
    std::printf("  %-34s %10s  (encoded diagonals cached)\n",
                "BSGS plan, warm cache", fmtSeconds(plan_warm).c_str());
    std::printf("  speedup: %.1fx cold, %.1fx warm\n",
                naive_lt / plan_cold, naive_lt / plan_warm);

    // Double-hoisting accounting: the deferred-ModDown schedule pays
    // ONE c1-only ModDown per giant step + a single final pair, where
    // the single-hoisted schedule paid two per keyswitch.
    bench::section("double-hoisted BSGS conversion accounting");
    auto &ops = EvalOpStats::instance();
    ops.reset();
    (void)plan.apply(eval, ct3);
    auto snap = ops.snapshot();
    double baby = static_cast<double>(plan.babyStepCount());
    double giant = static_cast<double>(plan.giantStepCount());
    double classic_moddowns = 2 * (baby + giant);
    std::printf("  baby %zu + giant %zu steps over %zu diagonals "
                "(stride g=%zu)\n",
                plan.babyStepCount(), plan.giantStepCount(),
                plan.diagonalCount(), plan.giantStride());
    std::printf("  KS heads (ModUp hoists): %.0f   KS tails: %.0f\n",
                snap.ksHoist, snap.ksTail);
    std::printf("  ModUp digit conversions: %llu\n",
                static_cast<unsigned long long>(ops.modUps()));
    std::printf("  ModDown conversions: %llu  (single-hoisted "
                "schedule: %.0f — %.1fx fewer)\n",
                static_cast<unsigned long long>(ops.modDowns()),
                classic_moddowns,
                classic_moddowns
                    / static_cast<double>(ops.modDowns()));
    u64 mod_downs = ops.modDowns();
    u64 mod_ups = ops.modUps();

    // ---------------------------------------------------------------
    // Sine-stage split (bootstrap CoeffToSlot): the unfused pipeline
    // pays C2S + a standalone conjugation keyswitch + two split
    // CMULT/RESCALE pairs (one extra level); the fused split plans
    // ride the conjugation as composed baby steps off the SAME
    // double-hoisted head — giant+2 conversions per transform, like
    // any other matvec.
    bench::section("sine-stage split: unfused C2S+conjugate vs fused "
                   "double-hoisted split plans");
    auto uinv = boot::LinearTransformPlan::specialFftInverse(ctx);
    ckks::Ciphertext old_u, old_v;
    auto old_split = [&] {
        auto w = uinv.apply(eval, ct3);
        auto wc = eval.conjugate(w);
        auto sum = eval.add(w, wc);
        auto diff = eval.sub(w, wc);
        double target = params.scale();
        old_u = eval.multiplyConstToScale(sum, 1.0, target);
        old_v = eval.multiplyConstToScale(diff, 1.0, target);
    };
    ckks::Ciphertext new_u, new_v;
    auto fused_split = [&] {
        // Both split plans read ONE shared head + raw-tail table
        // (sine-stage double hoisting).
        auto re_prog = c2s_re.program(ct3.levelCount());
        auto im_prog = c2s_im.program(ct3.levelCount());
        const exec::BsgsProgram *progs[] = {&re_prog, &im_prog};
        auto out =
            eval.dispatcher().applyBsgsFanout(progs, 2, &ct3, 1);
        new_u = std::move(out[0][0]);
        new_v = std::move(out[1][0]);
    };

    ops.reset();
    old_split();
    auto old_snap = ops.snapshot();
    u64 old_md = ops.modDowns();
    double old_t = bench::timeMean(reps, old_split);
    ops.reset();
    fused_split();
    auto new_snap = ops.snapshot();
    u64 new_md = ops.modDowns();
    double new_t = bench::timeMean(reps, fused_split);
    ops.reset();

    double fused_giants =
        static_cast<double>(c2s_re.giantStepCount())
        + static_cast<double>(c2s_im.giantStepCount());
    std::printf("  %-34s %10s  KS %3.0f  ModDown %llu  levels %zu\n",
                "unfused C2S + conj + split", fmtSeconds(old_t).c_str(),
                old_snap.ksTail,
                static_cast<unsigned long long>(old_md),
                ct3.levelCount() - old_u.levelCount());
    std::printf("  %-34s %10s  KS %3.0f  ModDown %llu  levels %zu\n",
                "fused split plans (giant+2 each)",
                fmtSeconds(new_t).c_str(), new_snap.ksTail,
                static_cast<unsigned long long>(new_md),
                ct3.levelCount() - new_u.levelCount());
    std::printf("  fused conversions = giants(%.0f) + 2 per output; "
                "single-hoisted schedule would pay 2*(baby+giant) = "
                "%.0f\n",
                fused_giants,
                2.0
                    * (static_cast<double>(c2s_re.babyStepCount()
                                           + c2s_re.conjStepCount()
                                           + c2s_re.giantStepCount())
                       + static_cast<double>(
                           c2s_im.babyStepCount()
                           + c2s_im.conjStepCount()
                           + c2s_im.giantStepCount())));

    // Kernel-queue replay: record one warm apply's dispatch schedule
    // and run it through the SM pipeline model.
    stats.reset();
    stats.startQueue();
    (void)plan.apply(eval, ct3);
    auto queue = stats.stopQueue();
    auto breakdowns = gpu::simulateKernelQueue(queue, params.n);
    auto total = gpu::sumBreakdowns(breakdowns);
    std::printf("  kernel queue: %zu launches, simulated stall "
                "fraction %.1f%%\n",
                queue.size(), 100.0 * total.totalStallFraction());

    if (!json_path.empty()) {
        bench::JsonWriter json("keyswitch_hoist");
        json.add("reps", static_cast<double>(reps))
            .add("rotations", static_cast<double>(steps.size()))
            .add("naive_s_per_rot", naive_t / double(steps.size()))
            .add("hoisted_s_per_rot", hoisted_t / double(steps.size()))
            .add("naive_ntt_elements",
                 static_cast<double>(naive_snap.nttElements))
            .add("hoisted_ntt_elements",
                 static_cast<double>(hoisted_snap.nttElements))
            .add("bit_identical", identical ? 1.0 : 0.0)
            .add("bsgs_naive_s", naive_lt)
            .add("bsgs_cold_s", plan_cold)
            .add("bsgs_warm_s", plan_warm)
            .add("bsgs_diagonals",
                 static_cast<double>(plan.diagonalCount()))
            .add("bsgs_baby_steps", baby)
            .add("bsgs_giant_steps", giant)
            .add("bsgs_giant_stride",
                 static_cast<double>(plan.giantStride()))
            .add("ks_hoist_ops", snap.ksHoist)
            .add("ks_tail_ops", snap.ksTail)
            .add("mod_up_conversions", static_cast<double>(mod_ups))
            .add("mod_down_conversions",
                 static_cast<double>(mod_downs))
            .add("single_hoisted_mod_downs", classic_moddowns)
            .add("kernel_queue_launches",
                 static_cast<double>(queue.size()))
            .add("sim_stall_fraction", total.totalStallFraction())
            .add("sine_split_old_s", old_t)
            .add("sine_split_fused_s", new_t)
            .add("sine_split_old_ks_tails", old_snap.ksTail)
            .add("sine_split_fused_ks_tails", new_snap.ksTail)
            .add("sine_split_old_mod_downs",
                 static_cast<double>(old_md))
            .add("sine_split_fused_mod_downs",
                 static_cast<double>(new_md))
            .add("sine_split_fused_giant_steps", fused_giants)
            .add("sine_split_old_levels",
                 static_cast<double>(ct3.levelCount()
                                     - old_u.levelCount()))
            .add("sine_split_fused_levels",
                 static_cast<double>(ct3.levelCount()
                                     - new_u.levelCount()));
        if (!json.appendTo(json_path)) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("  wrote %s\n", json_path.c_str());
    }
    return identical ? 0 : 1;
}
