/**
 * @file
 * Modeled-cost win of the global execution planner (src/plan) over
 * the greedy bootstrap splice, on the two reference workloads:
 *
 *   - deep_cnn: the bootstrap-in-the-loop CNN
 *     (EncryptedCnnClassifier::deepConfig, 4x8x8 over two chunks)
 *     compiled greedy vs planned. The planner drops the post-refresh
 *     tail to its cheapest feasible level and re-chooses BSGS
 *     strides per level.
 *   - lstm_gates: an unrolled LSTM-style gate tower (Dense +
 *     sigmoid/tanh approximants) handed a full 21-limb tower — the
 *     scenario where greedy burns the head layers at the tower top
 *     while the planner drops straight to the entry level the chain
 *     actually needs.
 *
 * Costs are compile-time model evaluations (perf::CostModel), not
 * wall clock: the ratio is deterministic and machine-independent.
 * The bench exits nonzero when the headline ratio (the better of the
 * two workloads, as the acceptance gate allows either) falls below
 * the committed 1.10 floor.
 *
 * Usage: bench_plan [--json PATH]
 *   --json PATH appends one result object (BENCH_PR10.json in CI).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hh"
#include "nn/sequential.hh"
#include "workloads/cnn.hh"

namespace
{

using namespace tensorfhe;

constexpr double kRatioFloor = 1.10;

struct WorkloadResult
{
    std::string name;
    double planned = 0;
    double greedy = 0;
    std::size_t bootstraps = 0;
    std::size_t drops = 0;

    double
    ratio() const
    {
        return planned > 0 ? greedy / planned : 0;
    }
};

WorkloadResult
summarize(const std::string &name, const nn::Sequential &net)
{
    WorkloadResult r;
    r.name = name;
    const auto &plan = net.executionPlan();
    r.planned = plan.plannedWork();
    r.greedy = plan.greedyWork();
    r.bootstraps = plan.bootstrapCount();
    for (const auto &st : plan.steps())
        if (st.kind == plan::PlanStep::Kind::LevelDrop)
            ++r.drops;
    return r;
}

WorkloadResult
runDeepCnn()
{
    ckks::CkksContext ctx(
        workloads::EncryptedCnnClassifier::recommendedDeepParams());
    auto cfg = workloads::EncryptedCnnClassifier::deepConfig();
    cfg.usePlanner = true;
    workloads::EncryptedCnnClassifier cnn(ctx, cfg);
    return summarize("deep_cnn", cnn.net());
}

WorkloadResult
runLstmGates()
{
    // Four stacked gate blocks (Dense projection + degree-3
    // sigmoid/tanh approximant), the per-step arithmetic of an LSTM
    // cell unrolled into a chain, encrypted at the FULL tower.
    auto params = ckks::Presets::bootTest();
    params.levels = 20;
    params.secretHamming = 8;
    ckks::CkksContext ctx(params);

    nn::Sequential net;
    Rng rng(0x157e);
    auto gateMatrix = [&](std::size_t dim) {
        std::vector<std::vector<double>> w(dim,
                                           std::vector<double>(dim));
        for (auto &row : w)
            for (auto &v : row)
                v = 0.15 * (2 * rng.uniformReal() - 1);
        return w;
    };
    constexpr std::size_t kDim = 16;
    for (int gate = 0; gate < 4; ++gate) {
        net.emplace<nn::Dense>(gateMatrix(kDim));
        net.emplace<nn::PolyActivation>(
            gate % 2 == 0 ? nn::sigmoidApprox(3)
                          : nn::tanhApprox(3));
    }
    net.enablePlanner();

    nn::TensorMeta in;
    in.shape = {{kDim}};
    in.layout = nn::SlotLayout::contiguous(in.shape);
    in.levelCount = ctx.tower().numQ();
    in.scale = ctx.params().scale();
    net.compile(ctx, in);
    return summarize("lstm_gates", net);
}

void
printRow(const WorkloadResult &r)
{
    std::printf("  %-10s planned %.3e  greedy %.3e  ratio %.3f  "
                "(%zu bootstraps, %zu drops)\n",
                r.name.c_str(), r.planned, r.greedy, r.ratio(),
                r.bootstraps, r.drops);
}

} // namespace

int
main(int argc, char **argv)
{
    auto obs = tensorfhe::bench::ObsFlags::parse(argc, argv);
    std::string json_path;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];

    tensorfhe::bench::banner(
        "bench_plan — global planner vs greedy splice, modeled cost");
    obs.armIfRequested();

    auto cnn = runDeepCnn();
    auto lstm = runLstmGates();
    printRow(cnn);
    printRow(lstm);

    // The acceptance gate allows either reference workload; the
    // headline is the better demonstrated win.
    const auto &headline =
        cnn.ratio() >= lstm.ratio() ? cnn : lstm;
    std::printf("  headline: %s ratio %.3f (floor %.2f)\n",
                headline.name.c_str(), headline.ratio(), kRatioFloor);

    if (!json_path.empty()) {
        tensorfhe::bench::JsonWriter json("plan");
        json.add("planned_vs_greedy_cost_ratio", headline.ratio())
            .add("headline_workload", headline.name)
            .add("deep_cnn_cost_ratio", cnn.ratio())
            .add("deep_cnn_planned_work", cnn.planned)
            .add("deep_cnn_greedy_work", cnn.greedy)
            .add("deep_cnn_bootstraps",
                 static_cast<double>(cnn.bootstraps))
            .add("lstm_gates_cost_ratio", lstm.ratio())
            .add("lstm_gates_planned_work", lstm.planned)
            .add("lstm_gates_greedy_work", lstm.greedy)
            .add("lstm_gates_level_drops",
                 static_cast<double>(lstm.drops));
        if (json.appendTo(json_path))
            std::printf("json:    %s\n", json_path.c_str());
    }
    obs.finish();

    if (headline.ratio() < kRatioFloor) {
        std::printf("FAIL: headline ratio %.3f below the %.2f "
                    "floor\n",
                    headline.ratio(), kRatioFloor);
        return 1;
    }
    return 0;
}
