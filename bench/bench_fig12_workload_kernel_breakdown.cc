/**
 * @file
 * Regenerates paper Fig. 12: kernel-level execution-time breakdown
 * of the four full workloads.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/models.hh"

using namespace tensorfhe;
using namespace tensorfhe::workloads;

int
main()
{
    bench::banner("Fig. 12 - kernel-level breakdown per workload");

    std::printf("%-22s %8s %10s %8s %13s %6s\n", "workload", "NTT",
                "Hada-Mult", "Ele-Add", "FrobeniusMap", "Conv");
    for (const auto &w : {resnet20Model(), logisticRegressionModel(),
                          lstmModel(), packedBootstrappingModel()}) {
        auto s = workloadKernelShares(w);
        std::printf("%-22s %7.1f%% %9.1f%% %7.1f%% %12.1f%% %5.1f%%\n",
                    w.name.c_str(), 100 * s.ntt, 100 * s.hadaMult,
                    100 * s.eleAdd, 100 * s.frobenius, 100 * s.conv);
    }
    std::printf("\npaper: NTT takes the largest share in every "
                "workload, up to 92.8%% in LR.\n");
    return 0;
}
