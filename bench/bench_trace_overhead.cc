/**
 * @file
 * Cost of the tracing layer (src/trace) on the LSTM graph workload —
 * the observability counterpart of bench_fault_overhead. Two budgets,
 * both enforced (the bench exits nonzero over budget):
 *
 *   - disarmed < 1%: every instrumented scope costs one relaxed
 *     atomic load when the tracer is off. The pre-instrumentation
 *     binary no longer exists, so the bound is taken from above: a
 *     microbenchmark times the disarmed TraceSpan construct/destroy
 *     path, multiplied by the span count an armed run actually
 *     records, divided by the plain wall time.
 *   - armed < 5%: measured directly, armed run vs disarmed run,
 *     interleaved round-robin keeping each configuration's MINIMUM
 *     (scheduler noise on the multi-threaded kernels dwarfs the
 *     recording cost; the minimum over rounds is robust).
 *
 * Usage: bench_trace_overhead [reps] [--json PATH]
 *   reps = rounds (default 5; CI smoke runs 1).
 *   --json PATH appends one result object (BENCH_PR8.json in CI).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "graph/executor.hh"
#include "workloads/lstm.hh"

namespace
{

using namespace tensorfhe;
using tensorfhe::bench::fmtSeconds;

struct Overheads
{
    double plainSeconds = 0;
    double armedSeconds = 0;
    double disarmedSpanNs = 0; ///< microbenched cost per inert span
    u64 spansPerRun = 0;
    u64 droppedPerRun = 0;

    double
    armedOverhead() const
    {
        return plainSeconds == 0
            ? 0.0
            : armedSeconds / plainSeconds - 1.0;
    }

    /** Upper bound on the disarmed fraction: per-span inert cost
        times the spans an armed run records, over the plain time. */
    double
    disarmedBound() const
    {
        return plainSeconds == 0
            ? 0.0
            : disarmedSpanNs * 1e-9 * static_cast<double>(spansPerRun)
                / plainSeconds;
    }
};

/** ns per construct/destroy of a TraceSpan while disarmed. */
double
microbenchDisarmedSpan()
{
    constexpr int kIters = 1 << 20;
    double best = 0;
    for (int round = 0; round < 3; ++round) {
        double t = bench::timeSeconds([&] {
            for (int i = 0; i < kIters; ++i) {
                trace::TraceSpan sp("bench", "inert");
                sp.arg("i", i);
            }
        });
        if (best == 0 || t < best)
            best = t;
    }
    return best * 1e9 / kIters;
}

Overheads
measure(const nn::NnEngine &engine, const graph::GraphExecutor &ex,
        const std::vector<graph::Cts> &inputs, int reps)
{
    Overheads o;
    // Warm plan/diagonal caches on both paths.
    (void)ex.run(engine, inputs);

    auto minTime = [](double &slot, const std::function<void()> &fn) {
        double t = bench::timeSeconds(fn);
        if (slot == 0 || t < slot)
            slot = t;
    };
    auto &tracer = trace::Tracer::instance();
    for (int r = 0; r < reps; ++r) {
        tracer.disarm();
        minTime(o.plainSeconds,
                [&] { (void)ex.run(engine, inputs); });
        // Fresh capture per round so every armed run records into an
        // empty ring (steady-state write cost, not drop cost).
        tracer.arm();
        minTime(o.armedSeconds,
                [&] { (void)ex.run(engine, inputs); });
        o.spansPerRun = tracer.recordedSpans();
        o.droppedPerRun = tracer.droppedSpans();
        tracer.disarm();
    }
    o.disarmedSpanNs = microbenchDisarmedSpan();
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    int reps = 5;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else
            reps = std::atoi(argv[i]);
    }
    if (reps < 1)
        reps = 1;

    bench::banner("bench_trace_overhead — tracing cost on the LSTM "
                  "graph run (reps=" + std::to_string(reps) + ")");

    ckks::CkksContext ctx(
        workloads::EncryptedLstmCell::recommendedParams());
    workloads::EncryptedLstmCell cell(ctx);
    Rng rng(0x8a);
    auto sk = ctx.generateSecretKey(rng);
    auto keys = ctx.generateKeys(sk, rng, cell.requiredRotations());
    ckks::Encryptor enc(ctx, keys.pk);
    nn::NnEngine engine(ctx, keys);

    auto enc_state = [&](u64 seed) {
        Rng r(seed);
        std::vector<double> v(cell.config().dim);
        for (auto &x : v)
            x = 2 * r.uniformReal() - 1;
        return nn::encryptTensor(ctx, enc, rng, v,
                                 cell.inputMeta().shape,
                                 cell.inputMeta().levelCount);
    };
    auto x = enc_state(1);
    workloads::EncryptedLstmCell::State prev{enc_state(2),
                                             enc_state(3)};

    auto g = cell.buildStepGraph(ctx);
    graph::GraphExecutor ex(g, graph::scheduleGraph(g));
    std::vector<graph::Cts> inputs{x.chunks(), prev.h.chunks(),
                                   prev.c.chunks()};

    auto o = measure(engine, ex, inputs, reps);

    bench::section("LSTM cell step (dim=8, degree-3 gates)");
    std::printf("  disarmed run: %s\n",
                fmtSeconds(o.plainSeconds).c_str());
    std::printf("  armed run:    %s  (%+.2f%%, %llu spans, "
                "%llu dropped)\n",
                fmtSeconds(o.armedSeconds).c_str(),
                100.0 * o.armedOverhead(),
                static_cast<unsigned long long>(o.spansPerRun),
                static_cast<unsigned long long>(o.droppedPerRun));
    std::printf("  inert span: %.2f ns -> disarmed bound %.4f%% of "
                "the run\n",
                o.disarmedSpanNs, 100.0 * o.disarmedBound());

    bool disarmed_ok = o.disarmedBound() < 0.01;
    bool armed_ok = o.armedOverhead() < 0.05;
    std::printf("  budget: disarmed < 1%%: %s, armed < 5%%: %s\n",
                disarmed_ok ? "PASS" : "FAIL",
                armed_ok ? "PASS" : "FAIL");

    if (!json_path.empty()) {
        bench::JsonWriter json("trace_overhead");
        json.add("reps", static_cast<double>(reps))
            .add("lstm_plain_s", o.plainSeconds)
            .add("lstm_armed_s", o.armedSeconds)
            .add("armed_overhead", o.armedOverhead())
            .add("disarmed_span_ns", o.disarmedSpanNs)
            .add("disarmed_bound", o.disarmedBound())
            .add("spans_per_run",
                 static_cast<double>(o.spansPerRun))
            .add("dropped_per_run",
                 static_cast<double>(o.droppedPerRun));
        if (!json.appendTo(json_path)) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("  wrote %s\n", json_path.c_str());
    }
    return disarmed_ok && armed_ok ? 0 : 1;
}
