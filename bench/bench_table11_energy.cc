/**
 * @file
 * Regenerates paper Table XI: energy efficiency — OPs/W per CKKS
 * operation and J/iteration per workload, using the paper's own
 * methodology (constant 264 W board power x modeled time).
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/energy.hh"
#include "perf/device_time.hh"
#include "perf/paper_data.hh"
#include "workloads/models.hh"

using namespace tensorfhe;
using namespace tensorfhe::perf;

int
main()
{
    bench::banner("Table XI - energy efficiency (264 W A100 board "
                  "power)");

    DeviceTimeModel a100(gpu::DeviceModel::a100());
    gpu::EnergyModel energy(gpu::DeviceModel::a100());
    auto p = ckks::Presets::paperDefault();
    p.nttVariant = ntt::NttVariant::Tensor;

    bench::section("OPs/W per CKKS operation (batch 128)");
    OpKind kinds[] = {OpKind::HMult, OpKind::HRotate, OpKind::Rescale,
                      OpKind::HAdd, OpKind::CMult};
    std::printf("%-9s %12s %12s\n", "op", "model", "paper");
    for (int i = 0; i < 5; ++i) {
        double thr = a100.throughput(opCost(kinds[i], p, 45), 128);
        std::printf("%-9s %12.2f %12.2f\n", opKindName(kinds[i]),
                    energy.opsPerWatt(thr),
                    paper::kTable11Ops[i].opsPerWatt);
    }

    bench::section("J/iteration per workload");
    for (const auto &row : paper::kTable11Workloads) {
        auto cell = [](double v) {
            char buf[32];
            if (v < 0)
                std::snprintf(buf, sizeof buf, "%8s", "-");
            else
                std::snprintf(buf, sizeof buf, "%8.1f", v);
            return std::string(buf);
        };
        std::printf("%-18.18s %s %s %s %s   [paper]\n",
                    row.system.data(), cell(row.resnet20).c_str(),
                    cell(row.lr).c_str(), cell(row.lstm).c_str(),
                    cell(row.packedBoot).c_str());
    }
    workloads::WorkloadModel models[] = {
        workloads::resnet20Model(),
        workloads::logisticRegressionModel(), workloads::lstmModel(),
        workloads::packedBootstrappingModel()};
    std::printf("%-18s", "TensorFHE (model)");
    for (auto &w : models) {
        w.params.nttVariant = ntt::NttVariant::Tensor;
        double secs = workloads::workloadSeconds(w, a100);
        // "J/iteration" in the paper is total energy per packed input
        // (the LR row decodes exactly: 14.1 s x 264 W / 64 = 58.2 J).
        std::printf(" %8.1f",
                    energy.joules(secs) / double(w.batch));
    }
    std::printf("   [model]\n");
    std::printf("\npaper shape: TensorFHE costs more J/iter than the "
                "ASICs (GPGPU board power),\n"
                "but stays within ~1.5x of CraterLake on LR.\n");
    return 0;
}
