/**
 * @file
 * Regenerates paper Fig. 5: GPGPU occupancy and normalized execution
 * time of un-batched CKKS operations as the total thread count grows
 * 8K -> 16K -> 32K (A100 device model).
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/occupancy.hh"

using namespace tensorfhe;
using namespace tensorfhe::gpu;

int
main()
{
    bench::banner("Fig. 5 - threading vs occupancy and execution time "
                  "(no batching)");

    auto dev = DeviceModel::a100();
    struct OpShape
    {
        const char *name;
        double bytesPerElement;
        double opsPerElement;
    };
    // Arithmetic intensities of the five CKKS operations at the
    // paper's default parameters (N = 2^16, L = 44).
    OpShape ops[] = {
        {"HMULT", 8.0, 46.0},  {"HROTATE", 8.0, 44.0},
        {"RESCALE", 6.0, 12.0}, {"HADD", 6.0, 1.5},
        {"CMULT", 6.0, 6.0},
    };
    std::size_t elements = (std::size_t(1) << 16) * 45;

    std::printf("\n%-8s |", "op");
    for (std::size_t t : {8192, 16384, 32768})
        std::printf("  %6zuK occ / norm.time |", t / 1024);
    std::printf("\n");
    for (const auto &op : ops) {
        std::printf("%-8s |", op.name);
        double best = 1e99;
        ThreadingPoint pts[3];
        int i = 0;
        for (std::size_t t : {8192, 16384, 32768}) {
            pts[i] = threadingModel(dev, t, elements,
                                    op.bytesPerElement,
                                    op.opsPerElement);
            best = std::min(best, pts[i].normalizedTime);
            ++i;
        }
        for (const auto &p : pts) {
            std::printf("      %5.1f%% / %8.3f |",
                        100.0 * p.occupancy, p.normalizedTime / best);
        }
        std::printf("\n");
    }
    std::printf("\npaper: occupancy grows 8K->16K then the 32K point "
                "runs slower (more\n"
                "       memory accesses per useful byte); peak "
                "occupancy stays < 15%%.\n");
    return 0;
}
