/**
 * @file
 * Regenerates paper Fig. 10: pipeline execution-time breakdown of
 * the butterfly NTT vs the GEMM-form NTT of TensorFHE-CO, on the
 * same simulated SM. The paper reports RAW stalls down 18.1pp, long
 * latency down 10.8pp, computation up 1.2%, overall NTT 32.3% faster.
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/pipeline.hh"
#include "perf/paper_data.hh"

using namespace tensorfhe;
using namespace tensorfhe::gpu;

int
main()
{
    bench::banner("Fig. 10 - butterfly NTT vs GEMM NTT (TensorFHE-CO) "
                  "stall breakdown");

    // Both kernel simulations run concurrently on the worker pool.
    auto bt_trace = butterflyNttTrace(1 << 12, 128);
    auto gm_trace = gemmNttTrace(1 << 12, 128);
    auto bds = simulateSmBatch({{&bt_trace, 8}, {&gm_trace, 8}});
    const auto &butterfly = bds[0];
    const auto &gemm = bds[1];

    auto print = [](const char *name, const StallBreakdown &bd) {
        std::printf("%-14s total cycles %9llu  computation %5.1f%%",
                    name,
                    static_cast<unsigned long long>(bd.totalCycles),
                    100.0 * double(bd.issuedCycles)
                        / double(bd.totalCycles));
        for (int s = 0; s < int(Stall::NumKinds); ++s)
            std::printf("  %s %.1f%%", stallName(Stall(s)),
                        100.0 * bd.stallFraction(Stall(s)));
        std::printf("\n");
    };
    print("butterfly NTT", butterfly);
    print("GEMM NTT (CO)", gemm);

    double raw_delta = butterfly.stallFraction(Stall::Raw)
        - gemm.stallFraction(Stall::Raw);
    double ll_delta = butterfly.stallFraction(Stall::LongLatency)
        - gemm.stallFraction(Stall::LongLatency);
    double overall = 1.0
        - double(gemm.totalCycles) / double(butterfly.totalCycles);
    std::printf("\nmeasured: RAW -%.1fpp, long-latency %+.1fpp, "
                "overall NTT cycles %+.1f%%\n",
                100.0 * raw_delta, -100.0 * ll_delta,
                -100.0 * overall);
    std::printf("paper:    RAW -%.1fpp, long-latency -%.1fpp, overall "
                "-%.1f%% (computation +1.2%%)\n",
                100.0 * perf::paper::kFig10RawReduction,
                100.0 * perf::paper::kFig10LongLatencyReduction,
                100.0 * perf::paper::kFig10OverallNttGain);
    return 0;
}
