/**
 * @file
 * Regenerates paper Table VI: operation delays for HMULT, HROTATE,
 * RESCALE, HADD, CMULT across TensorFHE-NT / -CO / TensorFHE on the
 * A100 and V100 device models at the paper's Default parameters
 * (batch 128), next to the published rows — plus measured CPU
 * wall-clock of this library's real kernels at scaled parameters.
 * A dnum-sensitivity ablation of key switching closes the table.
 */

#include <cstdio>

#include "bench_util.hh"
#include "ckks/crypto.hh"
#include "ckks/evaluator.hh"
#include "perf/device_time.hh"
#include "perf/paper_data.hh"

using namespace tensorfhe;
using namespace tensorfhe::perf;

namespace
{

void
modelRow(const char *name, const ckks::CkksParams &p,
         const DeviceTimeModel &model)
{
    std::printf("%-22s", name);
    for (OpKind op : {OpKind::HMult, OpKind::HRotate, OpKind::Rescale,
                      OpKind::HAdd, OpKind::CMult}) {
        double s = model.seconds(opCost(op, p, 45), 128);
        std::printf(" %11.1f", s * 1e3);
    }
    std::printf("   [model]\n");
}

} // namespace

int
main()
{
    bench::banner("Table VI - operation delay (ms per batch-128 group, "
                  "paper Default params)");

    std::printf("%-22s %11s %11s %11s %11s %11s\n", "system", "HMULT",
                "HROTATE", "RESCALE", "HADD", "CMULT");
    for (const auto &row : paper::kTable6) {
        std::printf("%-22.22s %11.1f %11.1f %11.1f %11.1f %11.1f   "
                    "[paper]\n",
                    row.system.data(), row.hmult, row.hrotate,
                    row.rescale, row.hadd, row.cmult);
    }
    std::printf("\n");

    DeviceTimeModel a100(gpu::DeviceModel::a100());
    DeviceTimeModel v100(gpu::DeviceModel::v100());
    auto p = ckks::Presets::paperDefault();
    p.nttVariant = ntt::NttVariant::Butterfly;
    modelRow("model NT (A100)", p, a100);
    p.nttVariant = ntt::NttVariant::Gemm;
    modelRow("model CO (A100)", p, a100);
    p.nttVariant = ntt::NttVariant::Tensor;
    modelRow("model TCU (V100)", p, v100);
    modelRow("model TCU (A100)", p, a100);

    // Measured: the real kernels at scaled parameters.
    bench::section("measured on this machine (N=2^12, L=6, batch 1, "
                   "CPU substrate)");
    ckks::CkksContext ctx(ckks::Presets::small());
    Rng rng(1);
    auto sk = ctx.generateSecretKey(rng);
    auto keys = ctx.generateKeys(sk, rng, {1});
    ckks::Encryptor enc(ctx, keys.pk);
    ckks::Evaluator eval(ctx, keys);
    std::size_t lc = ctx.tower().numQ();
    auto pt = ctx.encoder().encodeConstant(ckks::Complex(0.5, 0),
                                           ctx.params().scale(), lc);
    auto ct = enc.encrypt(pt, rng);
    auto ct2 = enc.encrypt(pt, rng);

    std::printf("%-22s", "TensorFHE (measured)");
    std::printf(" %11.3f", 1e3 * bench::timeMean(3, [&] {
        auto r = eval.multiply(ct, ct2);
    }));
    std::printf(" %11.3f", 1e3 * bench::timeMean(3, [&] {
        auto r = eval.rotate(ct, 1);
    }));
    std::printf(" %11.3f", 1e3 * bench::timeMean(3, [&] {
        auto r = eval.rescale(ct);
    }));
    std::printf(" %11.3f", 1e3 * bench::timeMean(10, [&] {
        auto r = eval.add(ct, ct2);
    }));
    std::printf(" %11.3f", 1e3 * bench::timeMean(10, [&] {
        auto r = eval.multiplyPlain(ct, pt);
    }));
    std::printf("   [measured, ms/op]\n");

    // dnum ablation (DESIGN.md SS7): key-switch cost vs dnum.
    bench::section("ablation: generalized key-switching cost vs dnum "
                   "(model, A100, level 45)");
    for (int dnum : {45, 15, 9, 5, 3}) {
        auto pd = ckks::Presets::paperDefault();
        pd.nttVariant = ntt::NttVariant::Tensor;
        pd.dnum = dnum;
        pd.special = static_cast<int>(pd.alpha()); // keep P > max Q_j
        double s = a100.seconds(keySwitchCost(pd, 45), 128);
        std::printf("dnum=%2d (alpha=%2zu, K=%d): %8.1f ms\n", dnum,
                    pd.alpha(), pd.special, s * 1e3);
    }
    return 0;
}
