/**
 * @file
 * Private analytics: a server computes mean, variance and a dot
 * product over a client's encrypted measurements without seeing them
 * — the information-retrieval style application the paper's intro
 * motivates. Uses rotate-and-add reductions (HROTATE) and HMULT.
 *
 * Build & run:  ./build/examples/encrypted_stats
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "ckks/crypto.hh"
#include "ckks/evaluator.hh"

using namespace tensorfhe;
using namespace tensorfhe::ckks;

int
main()
{
    CkksContext ctx(Presets::small());
    Rng rng(31);
    auto sk = ctx.generateSecretKey(rng);
    // Rotation keys for a full log2 reduction tree over the slots.
    std::vector<s64> steps;
    for (std::size_t s = 1; s < ctx.slots(); s *= 2)
        steps.push_back(static_cast<s64>(s));
    auto keys = ctx.generateKeys(sk, rng, steps);
    Encryptor enc(ctx, keys.pk);
    Decryptor dec(ctx, sk);
    Evaluator eval(ctx, keys);

    // Client data: 256 noisy sensor readings around 20 degrees.
    std::size_t count = 256;
    Rng data(5);
    std::vector<Complex> readings(ctx.slots(), Complex(0, 0));
    double true_sum = 0, true_sq = 0;
    for (std::size_t i = 0; i < count; ++i) {
        double v = 20.0 + 2.0 * data.gaussian();
        v /= 64.0; // pre-scale into the encoder's comfortable range
        readings[i] = Complex(v, 0);
        true_sum += v;
        true_sq += v * v;
    }

    double scale = ctx.params().scale();
    std::size_t lc = ctx.tower().numQ();
    auto ct = enc.encrypt(ctx.encoder().encode(readings, scale, lc),
                          rng);

    // Server side: sum via rotate-and-add tree (values outside the
    // first `count` slots are zero, so the tree sums exactly).
    auto sum_ct = ct;
    for (std::size_t s = 1; s < ctx.slots(); s *= 2)
        sum_ct = eval.add(sum_ct, eval.rotate(sum_ct, s64(s)));

    // Sum of squares: HMULT then the same reduction.
    auto sq_ct = eval.multiplyRescale(ct, ct);
    for (std::size_t s = 1; s < ctx.slots(); s *= 2)
        sq_ct = eval.add(sq_ct, eval.rotate(sq_ct, s64(s)));

    // Client decrypts the two scalars and finishes the statistics.
    double got_sum = dec.decryptAndDecode(sum_ct)[0].real();
    double got_sq = dec.decryptAndDecode(sq_ct)[0].real();
    double n = static_cast<double>(count);
    double mean = got_sum / n * 64.0;
    double var = (got_sq / n - (got_sum / n) * (got_sum / n)) * 64.0
        * 64.0;

    std::printf("Private analytics over %zu encrypted readings\n",
                count);
    std::printf("%-22s %12.4f (true %.4f)\n", "mean [deg]:", mean,
                true_sum / n * 64.0);
    std::printf("%-22s %12.4f (true %.4f)\n", "variance [deg^2]:", var,
                (true_sq / n - (true_sum / n) * (true_sum / n)) * 4096);

    // Encrypted dot product with a plaintext weight vector (CMULT):
    // e.g. a seasonal weighting the server applies privately.
    std::vector<Complex> weights(ctx.slots(), Complex(0, 0));
    double true_dot = 0;
    for (std::size_t i = 0; i < count; ++i) {
        weights[i] = Complex(std::sin(0.1 * double(i)) + 1.5, 0);
        true_dot += readings[i].real() * weights[i].real();
    }
    auto w_pt = ctx.encoder().encode(weights, scale, lc);
    auto dot_ct = eval.rescale(eval.multiplyPlain(ct, w_pt));
    for (std::size_t s = 1; s < ctx.slots(); s *= 2)
        dot_ct = eval.add(dot_ct, eval.rotate(dot_ct, s64(s)));
    double got_dot = dec.decryptAndDecode(dot_ct)[0].real();
    std::printf("%-22s %12.4f (true %.4f)\n", "weighted dot:", got_dot,
                true_dot);
    return 0;
}
