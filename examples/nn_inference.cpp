/**
 * @file
 * Encrypted neural-network inference demo: runs the functional CNN
 * classifier (conv -> polynomial ReLU -> avg-pool -> dense) and one
 * encrypted LSTM cell step on ciphertexts, verifies both against
 * their plaintext references, and prints the executed-operation
 * statistics next to the layer plans' predictions.
 *
 * Build & run:  ./build/nn_inference
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "nn/sequential.hh"
#include "workloads/cnn.hh"
#include "workloads/lstm.hh"

using namespace tensorfhe;

namespace
{

double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    double worst = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    return worst;
}

void
printOps(const char *label, const EvalOpCounts &c)
{
    std::printf("%-10s hmult %5.0f  cmult %5.0f  hadd %5.0f  "
                "hrot %5.0f  rescale %5.0f  ks-hoist %5.0f  "
                "ks-tail %5.0f\n",
                label, c.hmult, c.cmult, c.hadd, c.hrotate, c.rescale,
                c.ksHoist, c.ksTail);
}

} // namespace

int
main()
{
    // ---------------- CNN classifier ----------------
    ckks::CkksContext ctx(
        workloads::EncryptedCnnClassifier::recommendedParams());
    std::printf("CNN: N=%zu, slots=%zu, levels=%d\n", ctx.n(),
                ctx.slots(), ctx.params().levels);

    workloads::EncryptedCnnClassifier cnn(ctx);
    Rng rng(2026);
    auto sk = ctx.generateSecretKey(rng);
    auto keys = ctx.generateKeys(sk, rng, cnn.requiredRotations());
    ckks::Encryptor enc(ctx, keys.pk);
    ckks::Decryptor dec(ctx, sk);
    nn::NnEngine engine(ctx, keys);

    // Two synthetic images ride the batched work-queue together.
    std::size_t pixels = cnn.config().inChannels * cnn.config().height
        * cnn.config().width;
    std::vector<std::vector<double>> images(2,
                                            std::vector<double>(pixels));
    Rng data(7);
    for (auto &img : images)
        for (auto &v : img)
            v = data.uniformReal();

    EvalOpStats::instance().reset();
    auto preds = cnn.classifyEncrypted(engine, enc, dec, rng, images);
    auto executed = EvalOpStats::instance().snapshot();

    for (std::size_t i = 0; i < images.size(); ++i) {
        auto plain = cnn.classifyPlain(images[i]);
        std::printf("image %zu: encrypted argmax %zu, plain argmax "
                    "%zu, max |logit diff| %.2e\n",
                    i, preds[i].argmax, plain.argmax,
                    maxAbsDiff(preds[i].logits, plain.logits));
    }
    printOps("modeled",
             static_cast<double>(images.size()) * cnn.modeledOps());
    printOps("executed", executed);

    // ---------------- LSTM cell step ----------------
    ckks::CkksContext lctx(
        workloads::EncryptedLstmCell::recommendedParams());
    std::printf("\nLSTM cell: N=%zu, slots=%zu, levels=%d\n", lctx.n(),
                lctx.slots(), lctx.params().levels);

    workloads::EncryptedLstmCell cell(lctx);
    Rng lrng(2027);
    auto lsk = lctx.generateSecretKey(lrng);
    auto lkeys =
        lctx.generateKeys(lsk, lrng, cell.requiredRotations());
    ckks::Encryptor lenc(lctx, lkeys.pk);
    ckks::Decryptor ldec(lctx, lsk);
    nn::NnEngine lengine(lctx, lkeys);

    std::size_t d = cell.config().dim;
    std::vector<double> xv(d), hv(d), cv(d);
    Rng ldata(9);
    for (auto &v : xv)
        v = 2 * ldata.uniformReal() - 1;
    for (auto &v : hv)
        v = 2 * ldata.uniformReal() - 1;
    for (auto &v : cv)
        v = 2 * ldata.uniformReal() - 1;

    auto lc = cell.inputMeta().levelCount;
    workloads::EncryptedLstmCell::State state{
        nn::encryptTensor(lctx, lenc, lrng, hv, {{d}}, lc),
        nn::encryptTensor(lctx, lenc, lrng, cv, {{d}}, lc)};
    auto x = nn::encryptTensor(lctx, lenc, lrng, xv, {{d}}, lc);

    EvalOpStats::instance().reset();
    auto next = cell.step(lengine, x, state);
    auto lexec = EvalOpStats::instance().snapshot();
    auto plain = cell.stepPlain(xv, {hv, cv});

    auto h_dec = nn::decryptTensor(lctx, ldec, next.h);
    auto c_dec = nn::decryptTensor(lctx, ldec, next.c);
    std::printf("max |h diff| %.2e, max |c diff| %.2e\n",
                maxAbsDiff(h_dec, plain.h), maxAbsDiff(c_dec, plain.c));
    printOps("modeled", cell.modeledOps());
    printOps("executed", lexec);
    return 0;
}
