/**
 * @file
 * Bootstrapping demo: exhaust a ciphertext's level budget with
 * repeated multiplications, refresh it with the slim bootstrap of
 * paper Fig. 6 (SlotToCoeff -> ModRaise -> CoeffToSlot -> Sine
 * Evaluation), and keep computing.
 *
 * Build & run:  ./build/examples/bootstrap_demo
 */

#include <cmath>
#include <cstdio>

#include "boot/bootstrap.hh"

using namespace tensorfhe;
using namespace tensorfhe::ckks;

int
main()
{
    CkksContext ctx(Presets::bootTest());
    std::printf("Bootstrap demo: N=%zu, %zu-limb chain, sparse secret "
                "(h=%zu)\n",
                ctx.n(), ctx.tower().numQ(),
                ctx.params().secretHamming);

    Rng rng(17);
    auto sk = ctx.generateSecretKey(rng);
    auto keys = ctx.generateKeys(
        sk, rng, boot::Bootstrapper::requiredRotations(ctx.slots()),
        boot::Bootstrapper::requiredConjRotations(ctx.slots()));
    Encryptor enc(ctx, keys.pk);
    Decryptor dec(ctx, sk);
    Evaluator eval(ctx, keys);
    boot::Bootstrapper boots(ctx, keys);

    // A payload of modest magnitude.
    std::vector<Complex> z(ctx.slots());
    Rng data(3);
    for (auto &v : z)
        v = Complex(0.8 * (2 * data.uniformReal() - 1), 0);
    double expect0 = z[0].real();

    auto ct = enc.encrypt(
        ctx.encoder().encode(z, ctx.params().scale(), 4), rng);
    std::printf("\nfresh ciphertext: %zu limbs, slot0 = %.4f\n",
                ct.levelCount(), expect0);

    // Burn the budget.
    while (ct.levelCount() > 2) {
        ct = eval.multiplyRescale(ct, ct);
        expect0 = expect0 * expect0;
        std::printf("  squared: %zu limbs left, slot0 = %.4f "
                    "(expect %.4f)\n",
                    ct.levelCount(),
                    dec.decryptAndDecode(ct)[0].real(), expect0);
    }

    // Refresh.
    std::printf("\nbootstrapping...\n");
    auto refreshed = boots.bootstrap(ct);
    double got = dec.decryptAndDecode(refreshed)[0].real();
    std::printf("refreshed: %zu limbs, slot0 = %.4f (expect %.4f, "
                "error %.3g)\n",
                refreshed.levelCount(), got, expect0,
                std::abs(got - expect0));

    // And keep computing on the refreshed ciphertext.
    auto more = eval.multiplyRescale(refreshed, refreshed);
    std::printf("post-refresh square: %zu limbs, slot0 = %.4f "
                "(expect %.4f)\n",
                more.levelCount(),
                dec.decryptAndDecode(more)[0].real(),
                expect0 * expect0);
    std::printf("\nThis is the primitive behind the paper's Packed "
                "Bootstrapping workload\n(Table X) and the Bootstrap "
                "row of Table VII.\n");
    return 0;
}
