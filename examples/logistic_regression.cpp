/**
 * @file
 * Encrypted logistic regression — the scaled-down runnable version of
 * the paper's HELR workload (SV). A client encrypts its dataset; the
 * server computes predictions and gradients entirely on ciphertexts
 * (rotate-fold dot products, degree-3 sigmoid via HMULT); the client
 * decrypts only the 4-dimensional gradient each round.
 *
 * Build & run:  ./build/examples/logistic_regression
 */

#include <cmath>
#include <cstdio>

#include "workloads/lr.hh"

using namespace tensorfhe;
using namespace tensorfhe::workloads;

int
main()
{
    ckks::CkksParams params = ckks::Presets::small();
    params.levels = 8; // one full gradient pass per encryption
    ckks::CkksContext ctx(params);
    Rng rng(7);
    auto sk = ctx.generateSecretKey(rng);

    LrConfig cfg;
    cfg.features = 4; // 3 features + bias
    cfg.samples = 32;
    cfg.iterations = 4;
    cfg.learningRate = 2.0;
    auto keys = ctx.generateKeys(
        sk, rng, lrRequiredRotations(cfg, ctx.slots()));
    EncryptedLrTrainer trainer(ctx, sk, keys, cfg);

    // Synthetic task: y = 1 iff 0.8*x0 - 0.6*x1 + 0.2 > 0.
    Rng data(99);
    std::vector<std::vector<double>> x(cfg.samples,
                                       std::vector<double>(4));
    std::vector<double> y(cfg.samples);
    for (std::size_t s = 0; s < cfg.samples; ++s) {
        for (auto &v : x[s])
            v = 2 * data.uniformReal() - 1;
        x[s][3] = 1.0;
        y[s] = 0.8 * x[s][0] - 0.6 * x[s][1] + 0.2 > 0 ? 1.0 : 0.0;
    }

    std::printf("Encrypted logistic regression: %zu samples x %zu "
                "features, %d iterations\n",
                cfg.samples, cfg.features, cfg.iterations);
    auto res = trainer.train(x, y);

    std::printf("\n%-6s %12s\n", "iter", "loss(enc)");
    for (std::size_t i = 0; i < res.losses.size(); ++i)
        std::printf("%-6zu %12.4f\n", i + 1, res.losses[i]);

    std::printf("\n%-10s %12s %12s\n", "weight", "encrypted",
                "plaintext");
    for (std::size_t j = 0; j < cfg.features; ++j)
        std::printf("w[%zu]      %12.5f %12.5f\n", j, res.weights[j],
                    res.plainWeights[j]);

    int correct = 0;
    for (std::size_t s = 0; s < cfg.samples; ++s) {
        double z = 0;
        for (std::size_t j = 0; j < cfg.features; ++j)
            z += x[s][j] * res.weights[j];
        correct += (z > 0) == (y[s] > 0.5);
    }
    std::printf("\ntraining accuracy of the encrypted-path model: "
                "%d/%zu\n",
                correct, cfg.samples);
    return 0;
}
