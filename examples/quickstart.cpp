/**
 * @file
 * Quickstart: key generation, encoding, encryption, the five CKKS
 * operations of paper Table II, and decryption — everything a first
 * user needs to compute on encrypted data.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "ckks/crypto.hh"
#include "ckks/evaluator.hh"

using namespace tensorfhe;
using namespace tensorfhe::ckks;

int
main()
{
    // 1. Parameters: N = 2^12, 6 multiplicative levels, ~25-bit scale.
    CkksContext ctx(Presets::small());
    std::printf("TensorFHE quickstart: N=%zu, slots=%zu, levels=%d\n",
                ctx.n(), ctx.slots(), ctx.params().levels);

    // 2. Keys: secret, public, relinearization, one rotation step.
    Rng rng(/*seed=*/2024);
    auto sk = ctx.generateSecretKey(rng);
    auto keys = ctx.generateKeys(sk, rng, /*rotations=*/{1});
    Encryptor enc(ctx, keys.pk);
    Decryptor dec(ctx, sk);
    Evaluator eval(ctx, keys);

    // 3. Encode and encrypt two small vectors.
    std::vector<Complex> a = {{1.5, 0}, {2.0, 0}, {-0.5, 0}, {3.0, 0}};
    std::vector<Complex> b = {{0.5, 0}, {1.0, 0}, {4.0, 0}, {-1.0, 0}};
    double scale = ctx.params().scale();
    std::size_t level_count = ctx.tower().numQ();
    auto ct_a = enc.encrypt(ctx.encoder().encode(a, scale, level_count),
                            rng);
    auto ct_b = enc.encrypt(ctx.encoder().encode(b, scale, level_count),
                            rng);

    // 4. Compute on ciphertexts: (a + b), (a * b), rotate(a, 1).
    auto ct_sum = eval.add(ct_a, ct_b);                  // HADD
    auto ct_prod = eval.multiplyRescale(ct_a, ct_b);     // HMULT+RESCALE
    auto ct_rot = eval.rotate(ct_a, 1);                  // HROTATE

    // 5. Decrypt and inspect.
    auto sum = dec.decryptAndDecode(ct_sum);
    auto prod = dec.decryptAndDecode(ct_prod);
    auto rot = dec.decryptAndDecode(ct_rot);
    std::printf("\n%-6s %10s %10s %10s\n", "slot", "a+b", "a*b",
                "rot(a,1)");
    for (std::size_t i = 0; i < a.size(); ++i) {
        std::printf("%-6zu %10.4f %10.4f %10.4f\n", i, sum[i].real(),
                    prod[i].real(), rot[i].real());
    }
    std::printf("\nexpected: sums {2, 3, 3.5, 2}, products "
                "{0.75, 2, -2, -3}, rotation {2, -0.5, 3, ...}\n");

    // 6. Level budget: square a sub-unit value down the whole chain
    // (magnitudes must stay inside the message space, |m| * scale
    // < q0/2, so we use 0.9 rather than the vectors above).
    auto ct = enc.encrypt(
        ctx.encoder().encode({{0.9, 0}}, scale, level_count), rng);
    double expect = 0.9;
    std::printf("\nlevel budget: start with %zu limbs\n",
                ct.levelCount());
    while (ct.levelCount() >= 2) {
        ct = eval.multiplyRescale(ct, ct);
        expect *= expect;
        auto v = dec.decryptAndDecode(ct);
        std::printf("  after square: %zu limbs, slot0 = %.6f "
                    "(expect %.6f)\n",
                    ct.levelCount(), v[0].real(), expect);
    }
    std::printf("chain exhausted -- this is what bootstrapping "
                "refreshes (see bootstrap_demo).\n");
    return 0;
}
