#include "batch/executor.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace tensorfhe::batch
{

template <typename Fn>
BatchedEvaluator::Cts
BatchedEvaluator::mapBatch(std::size_t size, Fn &&fn) const
{
    Cts out(size);
    ThreadPool::global().parallelFor(0, size, [&](std::size_t i) {
        out[i] = fn(i);
    });
    return out;
}

BatchedEvaluator::Cts
BatchedEvaluator::add(const Cts &a, const Cts &b) const
{
    requireArg(a.size() == b.size(), "batch size mismatch");
    return mapBatch(a.size(),
                    [&](std::size_t i) { return eval_.add(a[i], b[i]); });
}

BatchedEvaluator::Cts
BatchedEvaluator::multiply(const Cts &a, const Cts &b) const
{
    requireArg(a.size() == b.size(), "batch size mismatch");
    return mapBatch(a.size(), [&](std::size_t i) {
        return eval_.multiply(a[i], b[i]);
    });
}

BatchedEvaluator::Cts
BatchedEvaluator::multiplyPlain(const Cts &a,
                                const ckks::Plaintext &p) const
{
    return mapBatch(a.size(), [&](std::size_t i) {
        return eval_.multiplyPlain(a[i], p);
    });
}

BatchedEvaluator::Cts
BatchedEvaluator::rescale(const Cts &a) const
{
    return mapBatch(a.size(),
                    [&](std::size_t i) { return eval_.rescale(a[i]); });
}

BatchedEvaluator::Cts
BatchedEvaluator::rotate(const Cts &a, s64 step) const
{
    return mapBatch(a.size(), [&](std::size_t i) {
        return eval_.rotate(a[i], step);
    });
}

double
workingSetBytesPerOp(const ckks::CkksParams &params)
{
    double n = static_cast<double>(params.n);
    double lc = static_cast<double>(params.levels) + 1;
    double k = static_cast<double>(params.special);
    double residue = 4.0; // 32-bit device residues
    // Two input ciphertexts (2 polys each), the three HMULT products,
    // and the key-switching scratch over the union basis (digits
    // stream through reused buffers: ModUp staging plus the two
    // inner-product accumulators and one spare).
    double cts = (4 + 3) * lc * n * residue;
    double ks = 4.0 * (lc + k) * n * residue;
    return cts + ks;
}

std::size_t
bestBatchSize(const ckks::CkksParams &params, const gpu::DeviceModel &dev,
              std::size_t requested)
{
    requireArg(requested >= 1, "requested batch must be positive");
    double usable = dev.vramBytes * 0.8; // leave headroom for keys
    auto cap = static_cast<std::size_t>(
        usable / workingSetBytesPerOp(params));
    if (cap == 0)
        cap = 1;
    return std::min(requested, cap);
}

} // namespace tensorfhe::batch
