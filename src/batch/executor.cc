#include "batch/executor.hh"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"

namespace tensorfhe::batch
{

BatchedEvaluator::BatchedEvaluator(const ckks::CkksContext &ctx,
                                   const ckks::KeyBundle &keys,
                                   ThreadPool *pool)
    : ctx_(ctx), keys_(keys), eval_(ctx, keys),
      pool_(pool ? pool : &ThreadPool::global())
{}

namespace
{

/** Pointers to both components of every ciphertext in the batch. */
std::vector<rns::RnsPolynomial *>
componentPtrs(BatchedEvaluator::Cts &cts)
{
    std::vector<rns::RnsPolynomial *> ps;
    ps.reserve(2 * cts.size());
    for (auto &ct : cts) {
        ps.push_back(&ct.c0);
        ps.push_back(&ct.c1);
    }
    return ps;
}

/**
 * Shared body of batched HADD/HSUB: validate, then apply op(mod, x, y)
 * to both components across the flattened (slot x tower) space.
 */
template <typename OpFn>
BatchedEvaluator::Cts
elementwisePair(const BatchedEvaluator::Cts &a,
                const BatchedEvaluator::Cts &b, KernelKind kind,
                ThreadPool &pool, OpFn &&op)
{
    requireArg(a.size() == b.size(), "batch size mismatch");
    if (a.empty())
        return {};
    BatchedEvaluator::Cts out = a;
    std::size_t limbs = a[0].levelCount();
    for (std::size_t s = 0; s < a.size(); ++s) {
        requireArg(a[s].levelCount() == limbs
                       && b[s].levelCount() == limbs,
                   "batched ops require a uniform level");
        requireArg(std::abs(a[s].scale - b[s].scale)
                       <= 1e-6 * std::max(a[s].scale, b[s].scale),
                   "ciphertext scales differ");
    }
    std::size_t n = a[0].c0.n();
    ScopedKernelTimer timer(kind, 2 * a.size() * limbs * n);
    pool.parallelFor2D(a.size(), limbs,
                       [&](std::size_t s, std::size_t i) {
        const Modulus &mod = out[s].c0.limbModulus(i);
        u64 *p0 = out[s].c0.limb(i);
        u64 *p1 = out[s].c1.limb(i);
        const u64 *q0 = b[s].c0.limb(i);
        const u64 *q1 = b[s].c1.limb(i);
        for (std::size_t c = 0; c < n; ++c) {
            p0[c] = op(mod, p0[c], q0[c]);
            p1[c] = op(mod, p1[c], q1[c]);
        }
    });
    return out;
}

} // namespace

BatchedEvaluator::Cts
BatchedEvaluator::add(const Cts &a, const Cts &b) const
{
    EvalOpStats::instance().record(EvalOpKind::HAdd, a.size());
    return elementwisePair(a, b, KernelKind::EleAdd, *pool_,
                           [](const Modulus &m, u64 x, u64 y) {
                               return m.add(x, y);
                           });
}

BatchedEvaluator::Cts
BatchedEvaluator::sub(const Cts &a, const Cts &b) const
{
    EvalOpStats::instance().record(EvalOpKind::HAdd, a.size());
    return elementwisePair(a, b, KernelKind::EleSub, *pool_,
                           [](const Modulus &m, u64 x, u64 y) {
                               return m.sub(x, y);
                           });
}

BatchedEvaluator::Cts
BatchedEvaluator::multiplyPlain(const Cts &a,
                                const ckks::Plaintext &p) const
{
    if (a.empty())
        return {};
    EvalOpStats::instance().record(EvalOpKind::CMult, a.size());
    Cts out = a;
    std::size_t limbs = a[0].levelCount();
    for (const auto &ct : a)
        requireArg(ct.levelCount() == p.levelCount()
                       && ct.levelCount() == limbs,
                   "plaintext level mismatch");
    std::size_t n = ctx_.n();
    ScopedKernelTimer timer(KernelKind::HadaMult,
                            2 * a.size() * limbs * n);
    pool_->parallelFor2D(a.size(), limbs,
                         [&](std::size_t s, std::size_t i) {
        const Modulus &mod = out[s].c0.limbModulus(i);
        u64 *p0 = out[s].c0.limb(i);
        u64 *p1 = out[s].c1.limb(i);
        const u64 *pp = p.poly.limb(i);
        for (std::size_t c = 0; c < n; ++c) {
            p0[c] = mod.mul(p0[c], pp[c]);
            p1[c] = mod.mul(p1[c], pp[c]);
        }
    });
    for (std::size_t s = 0; s < a.size(); ++s)
        out[s].scale = a[s].scale * p.scale;
    return out;
}

BatchedEvaluator::Cts
BatchedEvaluator::rescale(const Cts &a) const
{
    if (a.empty())
        return {};
    EvalOpStats::instance().record(EvalOpKind::Rescale, a.size());
    std::size_t limbs = a[0].levelCount();
    for (const auto &ct : a)
        requireArg(ct.levelCount() == limbs && limbs >= 2,
                   "cannot rescale at level 0");
    u64 q_last = ctx_.tower().prime(limbs - 1);
    auto v = ctx_.nttVariant();

    Cts out = a;
    auto comps = componentPtrs(out);
    rns::toCoeffBatch(comps, v, pool_);

    std::vector<const rns::RnsPolynomial *> inputs(comps.size());
    for (std::size_t i = 0; i < comps.size(); ++i)
        inputs[i] = comps[i];
    auto dropped = rns::rescaleByLastLimbBatch(inputs, pool_);
    for (std::size_t s = 0; s < out.size(); ++s) {
        out[s].c0 = std::move(dropped[2 * s]);
        out[s].c1 = std::move(dropped[2 * s + 1]);
    }
    comps = componentPtrs(out);
    rns::toEvalBatch(comps, v, pool_);
    for (std::size_t s = 0; s < out.size(); ++s)
        out[s].scale = a[s].scale / static_cast<double>(q_last);
    return out;
}

BatchedEvaluator::HoistedDigitsBatch
BatchedEvaluator::hoistBatch(std::vector<rns::RnsPolynomial> ds) const
{
    const auto &tower = ctx_.tower();
    auto v = ctx_.nttVariant();
    std::size_t batch = ds.size();
    std::size_t n = ctx_.n();
    std::size_t level_count = ds[0].numLimbs();
    EvalOpStats::instance().record(EvalOpKind::KsHoist, batch);

    // Dcomp: all (slot x tower) INTTs of the batch in one dispatch.
    std::vector<rns::RnsPolynomial *> d_ptrs(batch);
    for (std::size_t s = 0; s < batch; ++s)
        d_ptrs[s] = &ds[s];
    rns::toCoeffBatch(d_ptrs, v, pool_);

    std::vector<std::vector<rns::RnsPolynomial>> digits(batch);
    pool_->parallelFor(0, batch, [&](std::size_t s) {
        digits[s] = rns::decomposeDigits(ds[s], ctx_.params().alpha());
    });
    std::size_t num_digits = digits[0].size();

    HoistedDigitsBatch h;
    h.levelCount = level_count;
    h.digits.resize(num_digits);
    for (std::size_t j = 0; j < num_digits; ++j) {
        // Per-digit constants are slot-independent: Dcomp scalars
        // (with their Shoup precomputations) and the ModUp plan's
        // Conv factors, computed once per batch.
        std::size_t dl = digits[0][j].numLimbs();
        std::vector<u64> scalars(dl), scalars_shoup(dl);
        for (std::size_t i = 0; i < dl; ++i) {
            std::size_t limb = digits[0][j].limbIndex(i);
            scalars[i] = ctx_.dcompScalar(j, limb);
            scalars_shoup[i] = shoupPrecompute(
                scalars[i], tower.modulus(limb).value());
        }
        pool_->parallelFor2D(batch, dl,
                             [&](std::size_t s, std::size_t i) {
            const Modulus &mod = digits[s][j].limbModulus(i);
            u64 *p = digits[s][j].limb(i);
            for (std::size_t c = 0; c < n; ++c)
                p[c] = mulModShoup(p[c], scalars[i], scalars_shoup[i],
                                   mod.value());
        });

        // ModUp to the union basis (the context's memoized plan, so
        // the Conv factors are shared across calls as well as across
        // the batch), then one batched NTT dispatch over every
        // (slot, tower).
        std::vector<const rns::RnsPolynomial *> digit_ptrs(batch);
        for (std::size_t s = 0; s < batch; ++s)
            digit_ptrs[s] = &digits[s][j];
        auto ups =
            ctx_.modUpPlan(j, level_count).applyBatch(digit_ptrs, pool_);
        std::vector<rns::RnsPolynomial *> up_ptrs(batch);
        for (std::size_t s = 0; s < batch; ++s)
            up_ptrs[s] = &ups[s];
        rns::toEvalBatch(up_ptrs, v, pool_);
        h.digits[j] = std::move(ups);
    }
    return h;
}

std::pair<std::vector<rns::RnsPolynomial>,
          std::vector<rns::RnsPolynomial>>
BatchedEvaluator::keySwitchTailBatch(const HoistedDigitsBatch &h,
                                     const ckks::SwitchKey &key,
                                     const rns::ModDownPlan *down) const
{
    const auto &tower = ctx_.tower();
    auto v = ctx_.nttVariant();
    std::size_t num_digits = h.digits.size();
    std::size_t batch = h.digits[0].size();
    std::size_t n = ctx_.n();
    auto union_limbs = ctx_.unionLimbs(h.levelCount);
    std::size_t ul = union_limbs.size();
    requireArg(num_digits <= key.digits(),
               "switch key has too few digits");
    EvalOpStats::instance().record(EvalOpKind::KsTail, batch);

    // The key digits restricted to the union basis: memoized in the
    // context, shared across the batch and across calls.
    auto rk = ctx_.restrictedKey(key, h.levelCount);

    std::vector<rns::RnsPolynomial> acc0, acc1;
    acc0.reserve(batch);
    acc1.reserve(batch);
    for (std::size_t s = 0; s < batch; ++s) {
        acc0.emplace_back(tower, union_limbs, rns::Domain::Eval);
        acc1.emplace_back(tower, union_limbs, rns::Domain::Eval);
    }

    for (std::size_t j = 0; j < num_digits; ++j) {
        const rns::RnsPolynomial &keyb = rk->b[j];
        const rns::RnsPolynomial &keya = rk->a[j];

        // Inner product accumulate, flattened (slot x union-tower).
        ScopedKernelTimer timer(KernelKind::HadaMult,
                                2 * batch * ul * n);
        pool_->parallelFor2D(batch, ul,
                             [&](std::size_t s, std::size_t i) {
            const rns::RnsPolynomial &up = h.digits[j][s];
            const Modulus &mod = up.limbModulus(i);
            const u64 *pu = up.limb(i);
            const u64 *pb = keyb.limb(i);
            const u64 *pa = keya.limb(i);
            u64 *p0 = acc0[s].limb(i);
            u64 *p1 = acc1[s].limb(i);
            for (std::size_t c = 0; c < n; ++c) {
                p0[c] = mod.add(p0[c], mod.mul(pu[c], pb[c]));
                p1[c] = mod.add(p1[c], mod.mul(pu[c], pa[c]));
            }
        });
    }

    // ModDown by P: both accumulators of every slot share one batched
    // dispatch (identical limb sets), then back to Eval domain.
    std::vector<rns::RnsPolynomial *> acc_ptrs;
    acc_ptrs.reserve(2 * batch);
    for (auto &p : acc0)
        acc_ptrs.push_back(&p);
    for (auto &p : acc1)
        acc_ptrs.push_back(&p);
    rns::toCoeffBatch(acc_ptrs, v, pool_);

    std::vector<const rns::RnsPolynomial *> acc_in(acc_ptrs.size());
    for (std::size_t i = 0; i < acc_ptrs.size(); ++i)
        acc_in[i] = acc_ptrs[i];
    const rns::ModDownPlan &plan =
        down ? *down : ctx_.modDownPlan(h.levelCount);
    auto downs = plan.applyBatch(acc_in, pool_);

    std::vector<rns::RnsPolynomial> ks0(
        std::make_move_iterator(downs.begin()),
        std::make_move_iterator(downs.begin() + batch));
    std::vector<rns::RnsPolynomial> ks1(
        std::make_move_iterator(downs.begin() + batch),
        std::make_move_iterator(downs.end()));
    std::vector<rns::RnsPolynomial *> ks_ptrs;
    ks_ptrs.reserve(2 * batch);
    for (auto &p : ks0)
        ks_ptrs.push_back(&p);
    for (auto &p : ks1)
        ks_ptrs.push_back(&p);
    rns::toEvalBatch(ks_ptrs, v, pool_);
    return {std::move(ks0), std::move(ks1)};
}

std::pair<std::vector<rns::RnsPolynomial>,
          std::vector<rns::RnsPolynomial>>
BatchedEvaluator::keySwitchBatch(std::vector<rns::RnsPolynomial> ds,
                                 const ckks::SwitchKey &key) const
{
    return keySwitchTailBatch(hoistBatch(std::move(ds)), key);
}

BatchedEvaluator::Cts
BatchedEvaluator::multiply(const Cts &a, const Cts &b) const
{
    requireArg(a.size() == b.size(), "batch size mismatch");
    if (a.empty())
        return {};
    std::size_t batch = a.size();
    EvalOpStats::instance().record(EvalOpKind::HMult, batch);
    std::size_t limbs = a[0].levelCount();
    for (std::size_t s = 0; s < batch; ++s) {
        requireArg(a[s].levelCount() == limbs
                       && b[s].levelCount() == limbs,
                   "batched ops require a uniform level");
        requireArg(limbs >= 2, "no level budget left for multiplication");
    }
    std::size_t n = ctx_.n();

    // d0 = a0*b0, d1 = a0*b1 + a1*b0, d2 = a1*b1 (paper Alg. 2),
    // flattened over (slot x tower). Fresh zero polynomials of the
    // right shape — every coefficient is overwritten below, so
    // copying the inputs would be wasted traffic.
    const auto &limb_idx = a[0].c0.limbIndices();
    std::vector<rns::RnsPolynomial> d0s, d1s, d2s;
    d0s.reserve(batch);
    d1s.reserve(batch);
    d2s.reserve(batch);
    for (std::size_t s = 0; s < batch; ++s) {
        d0s.emplace_back(ctx_.tower(), limb_idx, rns::Domain::Eval);
        d1s.emplace_back(ctx_.tower(), limb_idx, rns::Domain::Eval);
        d2s.emplace_back(ctx_.tower(), limb_idx, rns::Domain::Eval);
    }
    {
        ScopedKernelTimer timer(KernelKind::HadaMult,
                                4 * batch * limbs * n);
        pool_->parallelFor2D(batch, limbs,
                             [&](std::size_t s, std::size_t i) {
            const Modulus &mod = d0s[s].limbModulus(i);
            u64 *p0 = d0s[s].limb(i);
            u64 *p1 = d1s[s].limb(i);
            u64 *p2 = d2s[s].limb(i);
            const u64 *a0 = a[s].c0.limb(i);
            const u64 *a1 = a[s].c1.limb(i);
            const u64 *b0 = b[s].c0.limb(i);
            const u64 *b1 = b[s].c1.limb(i);
            for (std::size_t c = 0; c < n; ++c) {
                p0[c] = mod.mul(a0[c], b0[c]);
                p1[c] = mod.add(mod.mul(a0[c], b1[c]),
                                mod.mul(a1[c], b0[c]));
                p2[c] = mod.mul(a1[c], b1[c]);
            }
        });
    }

    auto [ks0, ks1] = keySwitchBatch(std::move(d2s), keys_.relin);

    Cts out(batch);
    {
        ScopedKernelTimer timer(KernelKind::EleAdd,
                                2 * batch * limbs * n);
        pool_->parallelFor2D(batch, limbs,
                             [&](std::size_t s, std::size_t i) {
            const Modulus &mod = d0s[s].limbModulus(i);
            u64 *p0 = d0s[s].limb(i);
            u64 *p1 = d1s[s].limb(i);
            const u64 *k0 = ks0[s].limb(i);
            const u64 *k1 = ks1[s].limb(i);
            for (std::size_t c = 0; c < n; ++c) {
                p0[c] = mod.add(p0[c], k0[c]);
                p1[c] = mod.add(p1[c], k1[c]);
            }
        });
    }
    for (std::size_t s = 0; s < batch; ++s) {
        out[s].c0 = std::move(d0s[s]);
        out[s].c1 = std::move(d1s[s]);
        out[s].scale = a[s].scale * b[s].scale;
    }
    return out;
}

BatchedEvaluator::Cts
BatchedEvaluator::rotate(const Cts &a, s64 step) const
{
    auto out = rotateManyBatch(a, {step});
    return std::move(out[0]);
}

BatchedEvaluator::Cts
BatchedEvaluator::addPlain(const Cts &a, const ckks::Plaintext &p) const
{
    if (a.empty())
        return {};
    EvalOpStats::instance().record(EvalOpKind::HAdd, a.size());
    Cts out = a;
    std::size_t limbs = a[0].levelCount();
    for (const auto &ct : a)
        requireArg(ct.levelCount() == p.levelCount()
                       && ct.levelCount() == limbs
                       && std::abs(ct.scale - p.scale)
                           <= 1e-6 * ct.scale,
                   "plaintext incompatible with ciphertext");
    std::size_t n = ctx_.n();
    ScopedKernelTimer timer(KernelKind::EleAdd, a.size() * limbs * n);
    pool_->parallelFor2D(a.size(), limbs,
                         [&](std::size_t s, std::size_t i) {
        const Modulus &mod = out[s].c0.limbModulus(i);
        u64 *p0 = out[s].c0.limb(i);
        const u64 *pp = p.poly.limb(i);
        for (std::size_t c = 0; c < n; ++c)
            p0[c] = mod.add(p0[c], pp[c]);
    });
    return out;
}

BatchedEvaluator::Cts
BatchedEvaluator::multiplyConstToScale(const Cts &a, double c,
                                       double target_scale) const
{
    if (a.empty())
        return {};
    // Mirrors Evaluator::multiplyConstToScale: the plaintext scale
    // is chosen as target * q_last / a.scale so the rescale lands at
    // exactly the target.
    std::size_t lc = a[0].levelCount();
    requireArg(lc >= 2, "no level left for the rescale");
    for (const auto &ct : a)
        requireArg(ct.levelCount() == lc
                       && std::abs(ct.scale - a[0].scale)
                           <= 1e-6 * a[0].scale,
                   "batched ops require a uniform level and scale");
    u64 q_last = ctx_.tower().prime(lc - 1);
    double pt_scale =
        target_scale * static_cast<double>(q_last) / a[0].scale;
    requireArg(pt_scale >= 2.0, "target scale too small for level");
    auto pt = ctx_.encoder().encodeConstant(ckks::Complex(c, 0),
                                            pt_scale, lc);
    auto out = rescale(multiplyPlain(a, pt));
    for (auto &ct : out)
        ct.scale = target_scale; // exact by construction
    return out;
}

BatchedEvaluator::Cts
BatchedEvaluator::dropToLevelCount(const Cts &a,
                                   std::size_t level_count) const
{
    Cts out;
    out.reserve(a.size());
    for (const auto &ct : a)
        out.push_back(eval_.dropToLevelCount(ct, level_count));
    return out;
}

std::vector<BatchedEvaluator::Cts>
BatchedEvaluator::rotateManyBatch(const Cts &a,
                                  const std::vector<s64> &steps) const
{
    std::vector<Cts> out(steps.size());
    if (a.empty())
        return out;
    std::size_t slots = ctx_.slots();
    std::size_t batch = a.size();
    std::size_t limbs = a[0].levelCount();
    for (const auto &ct : a)
        requireArg(ct.levelCount() == limbs,
                   "batched ops require a uniform level");

    std::vector<s64> norms(steps.size());
    bool any_nonzero = false;
    for (std::size_t i = 0; i < steps.size(); ++i) {
        norms[i] = ((steps[i] % s64(slots)) + s64(slots)) % s64(slots);
        if (norms[i] == 0)
            continue;
        requireArg(keys_.rot.count(norms[i]) != 0,
                   "no rotation key for step ", norms[i]);
        any_nonzero = true;
    }
    if (!any_nonzero) {
        for (auto &cts : out)
            cts = a;
        return out;
    }

    // Hoist every slot's c1 once; the head and the tail's ModDown
    // plan are shared by all steps.
    std::vector<rns::RnsPolynomial> c1s;
    c1s.reserve(batch);
    for (const auto &ct : a)
        c1s.push_back(ct.c1);
    auto h = hoistBatch(std::move(c1s));
    std::size_t num_digits = h.digits.size();
    const rns::ModDownPlan &down = ctx_.modDownPlan(h.levelCount);

    // Flattened (digit x slot) pointer table for the per-step
    // FrobeniusMap (all hoisted digits share the union-basis shape).
    std::vector<const rns::RnsPolynomial *> digit_ptrs;
    digit_ptrs.reserve(num_digits * batch);
    for (std::size_t j = 0; j < num_digits; ++j)
        for (std::size_t s = 0; s < batch; ++s)
            digit_ptrs.push_back(&h.digits[j][s]);
    std::vector<const rns::RnsPolynomial *> c0_ptrs;
    c0_ptrs.reserve(batch);
    for (const auto &ct : a)
        c0_ptrs.push_back(&ct.c0);

    std::size_t n = ctx_.n();
    for (std::size_t r = 0; r < steps.size(); ++r) {
        if (norms[r] == 0) {
            out[r] = a;
            continue;
        }
        EvalOpStats::instance().record(EvalOpKind::HRotate, batch);
        u64 galois = ctx_.galoisForRotation(norms[r]);

        // One shared permutation over every (digit, slot) and over
        // the c0 components.
        auto rot_flat =
            rns::applyAutomorphismBatch(digit_ptrs, galois, pool_);
        HoistedDigitsBatch hr;
        hr.levelCount = h.levelCount;
        hr.digits.resize(num_digits);
        for (std::size_t j = 0; j < num_digits; ++j) {
            hr.digits[j].assign(
                std::make_move_iterator(rot_flat.begin()
                                        + static_cast<std::ptrdiff_t>(
                                            j * batch)),
                std::make_move_iterator(rot_flat.begin()
                                        + static_cast<std::ptrdiff_t>(
                                            (j + 1) * batch)));
        }
        auto [ks0, ks1] =
            keySwitchTailBatch(hr, keys_.rot.at(norms[r]), &down);
        auto c0r = rns::applyAutomorphismBatch(c0_ptrs, galois, pool_);

        {
            ScopedKernelTimer timer(KernelKind::EleAdd,
                                    batch * limbs * n);
            pool_->parallelFor2D(batch, limbs,
                                 [&](std::size_t s, std::size_t i) {
                const Modulus &mod = ks0[s].limbModulus(i);
                u64 *p0 = ks0[s].limb(i);
                const u64 *c0 = c0r[s].limb(i);
                for (std::size_t c = 0; c < n; ++c)
                    p0[c] = mod.add(p0[c], c0[c]);
            });
        }
        out[r].resize(batch);
        for (std::size_t s = 0; s < batch; ++s) {
            out[r][s].c0 = std::move(ks0[s]);
            out[r][s].c1 = std::move(ks1[s]);
            out[r][s].scale = a[s].scale;
        }
    }
    return out;
}

double
workingSetBytesPerOp(const ckks::CkksParams &params)
{
    double n = static_cast<double>(params.n);
    double lc = static_cast<double>(params.levels) + 1;
    double k = static_cast<double>(params.special);
    double residue = 4.0; // 32-bit device residues
    // Two input ciphertexts (2 polys each), the three HMULT products,
    // and the key-switching scratch over the union basis (digits
    // stream through reused buffers: ModUp staging plus the two
    // inner-product accumulators and one spare).
    double cts = (4 + 3) * lc * n * residue;
    double ks = 4.0 * (lc + k) * n * residue;
    return cts + ks;
}

std::size_t
bestBatchSize(const ckks::CkksParams &params, const gpu::DeviceModel &dev,
              std::size_t requested)
{
    requireArg(requested >= 1, "requested batch must be positive");
    double usable = dev.vramBytes * 0.8; // leave headroom for keys
    auto cap = static_cast<std::size_t>(
        usable / workingSetBytesPerOp(params));
    if (cap == 0)
        cap = 1;
    return std::min(requested, cap);
}

} // namespace tensorfhe::batch
