#include "batch/executor.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace tensorfhe::batch
{

BatchedEvaluator::BatchedEvaluator(const ckks::CkksContext &ctx,
                                   const ckks::KeyBundle &keys,
                                   ThreadPool *pool)
    : ctx_(ctx),
      disp_(std::make_shared<exec::Dispatcher>(ctx, keys, pool)),
      eval_(ctx, disp_)
{}

BatchedEvaluator::BatchedEvaluator(
    const ckks::CkksContext &ctx,
    std::shared_ptr<const ckks::KeyStore> store, ThreadPool *pool)
    : ctx_(ctx),
      disp_(std::make_shared<exec::Dispatcher>(ctx, std::move(store),
                                               pool)),
      eval_(ctx, disp_)
{}

std::size_t
BatchedEvaluator::requireUniformLevel(const Cts &a,
                                      std::size_t min_level) const
{
    std::size_t limbs = a[0].levelCount();
    for (const auto &ct : a)
        requireArg(ct.levelCount() == limbs,
                   "batched ops require a uniform level");
    requireArg(limbs >= min_level,
               min_level >= 2 ? "cannot rescale at level 0"
                              : "batched op needs at least one limb");
    return limbs;
}

void
BatchedEvaluator::requireCompatiblePair(const Cts &a, const Cts &b) const
{
    requireArg(a.size() == b.size(), "batch size mismatch");
    if (a.empty())
        return;
    std::size_t limbs = requireUniformLevel(a);
    for (std::size_t s = 0; s < a.size(); ++s) {
        requireArg(b[s].levelCount() == limbs,
                   "batched ops require a uniform level");
        requireArg(std::abs(a[s].scale - b[s].scale)
                       <= 1e-6 * std::max(a[s].scale, b[s].scale),
                   "ciphertext scales differ");
    }
}

BatchedEvaluator::Cts
BatchedEvaluator::add(const Cts &a, const Cts &b) const
{
    Cts out = a;
    addInPlace(out, b);
    return out;
}

void
BatchedEvaluator::addInPlace(Cts &a, const Cts &b) const
{
    requireCompatiblePair(a, b);
    disp_->addInPlace(a.data(), b.data(), a.size());
}

BatchedEvaluator::Cts
BatchedEvaluator::sub(const Cts &a, const Cts &b) const
{
    requireCompatiblePair(a, b);
    Cts out = a;
    disp_->subInPlace(out.data(), b.data(), out.size());
    return out;
}

BatchedEvaluator::Cts
BatchedEvaluator::multiplyPlain(const Cts &a,
                                const ckks::Plaintext &p) const
{
    if (a.empty())
        return {};
    std::size_t limbs = requireUniformLevel(a);
    requireArg(p.levelCount() == limbs, "plaintext level mismatch");
    Cts out = a;
    disp_->multiplyPlainInPlace(out.data(), p, out.size());
    return out;
}

BatchedEvaluator::Cts
BatchedEvaluator::addPlain(const Cts &a, const ckks::Plaintext &p) const
{
    if (a.empty())
        return {};
    std::size_t limbs = requireUniformLevel(a);
    for (const auto &ct : a)
        requireArg(ct.levelCount() == p.levelCount()
                       && ct.levelCount() == limbs
                       && std::abs(ct.scale - p.scale)
                           <= 1e-6 * ct.scale,
                   "plaintext incompatible with ciphertext");
    Cts out = a;
    disp_->addPlainInPlace(out.data(), p, out.size());
    return out;
}

BatchedEvaluator::Cts
BatchedEvaluator::multiplyPlainRescale(const Cts &a,
                                       const ckks::Plaintext &p) const
{
    if (a.empty())
        return {};
    std::size_t limbs = requireUniformLevel(a, 2);
    requireArg(p.levelCount() == limbs, "plaintext level mismatch");
    Cts out = a;
    disp_->multiplyPlainRescaleInPlace(out.data(), p, out.size());
    return out;
}

BatchedEvaluator::Cts
BatchedEvaluator::rescale(const Cts &a) const
{
    if (a.empty())
        return {};
    Cts out = a;
    rescaleInPlace(out);
    return out;
}

void
BatchedEvaluator::rescaleInPlace(Cts &a) const
{
    if (a.empty())
        return;
    requireUniformLevel(a, 2);
    disp_->rescaleInPlace(a.data(), a.size());
}

BatchedEvaluator::Cts
BatchedEvaluator::multiply(const Cts &a, const Cts &b) const
{
    requireArg(a.size() == b.size(), "batch size mismatch");
    if (a.empty())
        return {};
    std::size_t limbs = requireUniformLevel(a);
    for (std::size_t s = 0; s < a.size(); ++s)
        requireArg(b[s].levelCount() == limbs,
                   "batched ops require a uniform level");
    requireArg(limbs >= 2, "no level budget left for multiplication");
    Cts out = a;
    disp_->multiplyInPlace(out.data(), b.data(), out.size());
    return out;
}

BatchedEvaluator::Cts
BatchedEvaluator::rotate(const Cts &a, s64 step) const
{
    auto out = rotateManyBatch(a, {step});
    return std::move(out[0]);
}

BatchedEvaluator::Cts
BatchedEvaluator::multiplyConstToScale(const Cts &a, double c,
                                       double target_scale) const
{
    if (a.empty())
        return {};
    // Mirrors Evaluator::multiplyConstToScale: the plaintext scale
    // is chosen as target * q_last / a.scale so the rescale lands at
    // exactly the target.
    std::size_t lc = a[0].levelCount();
    requireArg(lc >= 2, "no level left for the rescale");
    for (const auto &ct : a)
        requireArg(ct.levelCount() == lc
                       && std::abs(ct.scale - a[0].scale)
                           <= 1e-6 * a[0].scale,
                   "batched ops require a uniform level and scale");
    u64 q_last = ctx_.tower().prime(lc - 1);
    double pt_scale =
        target_scale * static_cast<double>(q_last) / a[0].scale;
    requireArg(pt_scale >= 2.0, "target scale too small for level");
    auto pt = ctx_.encoder().encodeConstant(ckks::Complex(c, 0),
                                            pt_scale, lc);
    auto out = rescale(multiplyPlain(a, pt));
    for (auto &ct : out)
        ct.scale = target_scale; // exact by construction
    return out;
}

BatchedEvaluator::Cts
BatchedEvaluator::addConst(const Cts &a, double c) const
{
    if (a.empty())
        return {};
    std::size_t lc = requireUniformLevel(a);
    for (const auto &ct : a)
        requireArg(std::abs(ct.scale - a[0].scale) <= 1e-6 * a[0].scale,
                   "batched ops require a uniform scale");
    auto pt = ctx_.encoder().encodeConstant(ckks::Complex(c, 0),
                                            a[0].scale, lc);
    Cts out = a;
    disp_->addPlainInPlace(out.data(), pt, out.size());
    return out;
}

BatchedEvaluator::Cts
BatchedEvaluator::negate(const Cts &a) const
{
    Cts out = a;
    for (auto &ct : out) {
        rns::negateInPlace(ct.c0);
        rns::negateInPlace(ct.c1);
    }
    return out;
}

BatchedEvaluator::Cts
BatchedEvaluator::dropToLevelCount(const Cts &a,
                                   std::size_t level_count) const
{
    Cts out;
    out.reserve(a.size());
    for (const auto &ct : a)
        out.push_back(eval_.dropToLevelCount(ct, level_count));
    return out;
}

std::vector<BatchedEvaluator::Cts>
BatchedEvaluator::rotateManyBatch(const Cts &a,
                                  const std::vector<s64> &steps) const
{
    if (a.empty())
        return std::vector<Cts>(steps.size());
    requireUniformLevel(a);
    return disp_->rotateMany(a.data(), a.size(), steps);
}

double
workingSetBytesPerOp(const ckks::CkksParams &params)
{
    double n = static_cast<double>(params.n);
    double lc = static_cast<double>(params.levels) + 1;
    double k = static_cast<double>(params.special);
    double residue = 4.0; // 32-bit device residues
    // Two input ciphertexts (2 polys each), the three HMULT products,
    // and the key-switching scratch over the union basis (digits
    // stream through reused buffers: ModUp staging plus the two
    // inner-product accumulators and one spare).
    double cts = (4 + 3) * lc * n * residue;
    double ks = 4.0 * (lc + k) * n * residue;
    return cts + ks;
}

std::size_t
bestBatchSize(const ckks::CkksParams &params, const gpu::DeviceModel &dev,
              std::size_t requested)
{
    requireArg(requested >= 1, "requested batch must be positive");
    double usable = dev.vramBytes * 0.8; // leave headroom for keys
    auto cap = static_cast<std::size_t>(
        usable / workingSetBytesPerOp(params));
    if (cap == 0)
        cap = 1;
    return std::min(requested, cap);
}

} // namespace tensorfhe::batch
