/**
 * @file
 * Operation-level batching (paper SIV-D/E): the API layer receives
 * batches of identical FHE operation requests sharing the same level
 * L (so all reuse one twiddle table), picks a batch size from the
 * device VRAM budget, and dispatches the batched kernels across the
 * worker pool — the CPU stand-in for filling the GPGPU with CTAs.
 *
 * # Threading model
 *
 * The engine never parallelizes "one ciphertext at a time". Every
 * batched operation flattens its full iteration space — batch slot b
 * in [0, B) crossed with RNS tower (limb) i in [0, L') — into one
 * work-queue and drains it through a ThreadPool in a single dispatch
 * (ThreadPool::parallelFor2D). Lanes pull (slot, tower) index chunks
 * from a shared atomic cursor, so an expensive tower on one slot
 * cannot serialize the rest of the batch: this mirrors the paper's
 * CTA-level scheduling, where batched NTT/IOp kernels fill all SMs
 * regardless of which operation a CTA belongs to.
 *
 * Concretely, HMULT over a batch runs as:
 *   1. (B x L') Hada-Mult tasks forming d0/d1/d2;
 *   2. one batched INTT dispatch over every (slot, tower) of d2;
 *   3. per key-switch digit: (B x digit-limbs) Dcomp-scale tasks, a
 *      batched Conv whose CRT factors are computed once for the whole
 *      batch, one batched NTT dispatch, and (B x union-limbs)
 *      inner-product tasks;
 *   4. a batched ModDown (shared P^-1 constants) and final (B x L)
 *      Ele-Add tasks.
 *
 * Shared read-only state (twiddle tables, CRT factors, Galois
 * permutations, key digits restricted to the union basis) is computed
 * once per batch on the dispatching thread; tasks only write to the
 * limb they own, so no locks are taken inside kernels. Results are
 * bit-identical to running the scalar Evaluator per slot — the engine
 * reorders work, never arithmetic. Nested dispatches (a kernel that
 * itself calls parallelFor from inside a pool lane) degrade to serial
 * execution, so composing batched and scalar code paths is safe.
 *
 * The pool is injectable (constructor argument) so callers can pin a
 * thread budget — tests run the same engine on a 1-worker pool and on
 * the process-global pool and compare bits.
 */

#ifndef TENSORFHE_BATCH_EXECUTOR_HH
#define TENSORFHE_BATCH_EXECUTOR_HH

#include <vector>

#include "ckks/evaluator.hh"
#include "gpu/device.hh"

namespace tensorfhe
{
class ThreadPool;
}

namespace tensorfhe::batch
{

/** Batched counterpart of the Evaluator. */
class BatchedEvaluator
{
  public:
    /**
     * @param pool worker pool the (slot x tower) work-queues drain
     *             through; null = process-global pool.
     */
    BatchedEvaluator(const ckks::CkksContext &ctx,
                     const ckks::KeyBundle &keys,
                     ThreadPool *pool = nullptr);

    using Cts = std::vector<ckks::Ciphertext>;

    Cts add(const Cts &a, const Cts &b) const;
    Cts sub(const Cts &a, const Cts &b) const;
    Cts multiply(const Cts &a, const Cts &b) const;
    Cts multiplyPlain(const Cts &a, const ckks::Plaintext &p) const;
    Cts addPlain(const Cts &a, const ckks::Plaintext &p) const;
    /**
     * Batched counterpart of Evaluator::multiplyConstToScale: one
     * encoded constant shared by the batch, one CMULT + RESCALE per
     * slot, exact `target_scale` on every output.
     */
    Cts multiplyConstToScale(const Cts &a, double c,
                             double target_scale) const;
    Cts rescale(const Cts &a) const;
    Cts rotate(const Cts &a, s64 step) const;
    /** Level alignment across the batch (no arithmetic). */
    Cts dropToLevelCount(const Cts &a, std::size_t level_count) const;

    /**
     * Hoisted HROTATE across both the batch and the step dimension:
     * the decompose+ModUp+NTT key-switch head runs once per batch
     * slot (not once per (slot, step)), and every per-step stage —
     * the digit FrobeniusMap, the key inner product, ModDown — is
     * flattened over (batch-slot x rotation x tower) through the
     * work-queue. result[i] is the whole batch rotated by steps[i];
     * bit-identical to the scalar rotate() per (slot, step).
     */
    std::vector<Cts> rotateManyBatch(const Cts &a,
                                     const std::vector<s64> &steps) const;

    /** The scalar (per-ciphertext, serial-over-slots) reference path. */
    const ckks::Evaluator &scalar() const { return eval_; }

    ThreadPool &pool() const { return *pool_; }

  private:
    /**
     * The hoisted key-switch head of the whole batch (the batched
     * counterpart of ckks::HoistedDigits): digits[j][s] is digit j of
     * batch slot s, Dcomp-scaled, ModUp-extended to the union basis,
     * NTT domain. Shared by every rotation step of rotateManyBatch.
     */
    struct HoistedDigitsBatch
    {
        std::vector<std::vector<rns::RnsPolynomial>> digits;
        std::size_t levelCount = 0;
    };

    /**
     * Phase 1 of the batched KeySwitch: Dcomp -> scale -> ModUp ->
     * NTT, every stage flattened over (slot x tower) with all
     * slot-independent precomputation (Dcomp scalars, Conv factors)
     * shared across the batch.
     */
    HoistedDigitsBatch
    hoistBatch(std::vector<rns::RnsPolynomial> ds) const;

    /**
     * Phase 2: inner product with `key` (digits restricted to the
     * union basis once per batch) -> ModDown -> NTT.
     * @param down optional shared ModDown plan (rotateManyBatch
     *             reuses one across steps).
     */
    std::pair<std::vector<rns::RnsPolynomial>,
              std::vector<rns::RnsPolynomial>>
    keySwitchTailBatch(const HoistedDigitsBatch &h,
                       const ckks::SwitchKey &key,
                       const rns::ModDownPlan *down = nullptr) const;

    /**
     * Batched KeySwitch (paper Alg. 1) over one polynomial per slot
     * (uniform shape): keySwitchTailBatch(hoistBatch(ds), key), bit
     * for bit.
     */
    std::pair<std::vector<rns::RnsPolynomial>,
              std::vector<rns::RnsPolynomial>>
    keySwitchBatch(std::vector<rns::RnsPolynomial> ds,
                   const ckks::SwitchKey &key) const;

    const ckks::CkksContext &ctx_;
    const ckks::KeyBundle &keys_;
    ckks::Evaluator eval_;
    ThreadPool *pool_;
};

/**
 * The API layer's batch-size policy: the largest batch whose working
 * set fits the usable VRAM fraction (paper SVI-E: "the batch size of
 * TensorFHE is mainly determined by the VRAM capacity").
 */
std::size_t bestBatchSize(const ckks::CkksParams &params,
                          const gpu::DeviceModel &dev,
                          std::size_t requested);

/** Bytes of device memory one in-flight batched HMULT consumes. */
double workingSetBytesPerOp(const ckks::CkksParams &params);

} // namespace tensorfhe::batch

#endif // TENSORFHE_BATCH_EXECUTOR_HH
