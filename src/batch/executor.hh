/**
 * @file
 * Operation-level batching (paper SIV-D/E): the API layer receives
 * batches of identical FHE operation requests sharing the same level
 * L (so all reuse one twiddle table), picks a batch size from the
 * device VRAM budget, and dispatches the batched kernels across the
 * worker pool — the CPU stand-in for filling the GPGPU with CTAs.
 */

#ifndef TENSORFHE_BATCH_EXECUTOR_HH
#define TENSORFHE_BATCH_EXECUTOR_HH

#include <vector>

#include "ckks/evaluator.hh"
#include "gpu/device.hh"

namespace tensorfhe::batch
{

/** Batched counterpart of the Evaluator. */
class BatchedEvaluator
{
  public:
    BatchedEvaluator(const ckks::CkksContext &ctx,
                     const ckks::KeyBundle &keys)
        : ctx_(ctx), eval_(ctx, keys)
    {}

    using Cts = std::vector<ckks::Ciphertext>;

    Cts add(const Cts &a, const Cts &b) const;
    Cts multiply(const Cts &a, const Cts &b) const;
    Cts multiplyPlain(const Cts &a, const ckks::Plaintext &p) const;
    Cts rescale(const Cts &a) const;
    Cts rotate(const Cts &a, s64 step) const;

    const ckks::Evaluator &scalar() const { return eval_; }

  private:
    template <typename Fn>
    Cts mapBatch(std::size_t size, Fn &&fn) const;

    const ckks::CkksContext &ctx_;
    ckks::Evaluator eval_;
};

/**
 * The API layer's batch-size policy: the largest batch whose working
 * set fits the usable VRAM fraction (paper SVI-E: "the batch size of
 * TensorFHE is mainly determined by the VRAM capacity").
 */
std::size_t bestBatchSize(const ckks::CkksParams &params,
                          const gpu::DeviceModel &dev,
                          std::size_t requested);

/** Bytes of device memory one in-flight batched HMULT consumes. */
double workingSetBytesPerOp(const ckks::CkksParams &params);

} // namespace tensorfhe::batch

#endif // TENSORFHE_BATCH_EXECUTOR_HH
