/**
 * @file
 * Operation-level batching (paper SIV-D/E): the API layer receives
 * batches of identical FHE operation requests sharing the same level
 * L (so all reuse one twiddle table), picks a batch size from the
 * device VRAM budget, and dispatches the batched kernels across the
 * worker pool — the CPU stand-in for filling the GPGPU with CTAs.
 *
 * # Threading model
 *
 * The engine never parallelizes "one ciphertext at a time". Every
 * batched operation flattens its full iteration space — batch slot b
 * in [0, B) crossed with RNS tower (limb) i in [0, L') — into one
 * work-queue and drains it through a ThreadPool in a single dispatch
 * (ThreadPool::parallelFor2D). Lanes pull (slot, tower) index chunks
 * from a shared atomic cursor, so an expensive tower on one slot
 * cannot serialize the rest of the batch: this mirrors the paper's
 * CTA-level scheduling, where batched NTT/IOp kernels fill all SMs
 * regardless of which operation a CTA belongs to.
 *
 * Since the unified-dispatch refactor the kernels live in src/exec/
 * (exec::Dispatcher + exec/kernels.hh): this class validates batch
 * shape and delegates, and the serial ckks::Evaluator runs the SAME
 * path with batch = 1 — there is one implementation of every
 * operation, and batched results are bit-identical to the scalar
 * evaluator per slot by construction. Scratch polynomials come from
 * the dispatcher's exec::Workspace arena instead of the allocator.
 *
 * The pool is injectable (constructor argument) so callers can pin a
 * thread budget — tests run the same engine on a 1-worker pool and on
 * the process-global pool and compare bits.
 */

#ifndef TENSORFHE_BATCH_EXECUTOR_HH
#define TENSORFHE_BATCH_EXECUTOR_HH

#include <vector>

#include "ckks/evaluator.hh"
#include "exec/dispatch.hh"
#include "gpu/device.hh"

namespace tensorfhe
{
class ThreadPool;
}

namespace tensorfhe::batch
{

/** Batched counterpart of the Evaluator. */
class BatchedEvaluator
{
  public:
    /**
     * @param pool worker pool the (slot x tower) work-queues drain
     *             through; null = process-global pool.
     */
    BatchedEvaluator(const ckks::CkksContext &ctx,
                     const ckks::KeyBundle &keys,
                     ThreadPool *pool = nullptr);

    /** Batched evaluator over an explicit key store (e.g. an
        on-demand ckks::KeyStore for planner-built nets). */
    BatchedEvaluator(const ckks::CkksContext &ctx,
                     std::shared_ptr<const ckks::KeyStore> store,
                     ThreadPool *pool = nullptr);

    using Cts = std::vector<ckks::Ciphertext>;

    Cts add(const Cts &a, const Cts &b) const;
    Cts sub(const Cts &a, const Cts &b) const;
    Cts multiply(const Cts &a, const Cts &b) const;
    Cts multiplyPlain(const Cts &a, const ckks::Plaintext &p) const;
    Cts addPlain(const Cts &a, const ckks::Plaintext &p) const;

    /**
     * Fused CMULT + RESCALE: bit-identical to
     * rescale(multiplyPlain(a, p)) — same kernels-level arithmetic,
     * same EvalOpStats/KernelStats accounting, same output scale —
     * but the Hadamard product and the rescale's INTT share one
     * cache-hot pass (exec::Dispatcher::multiplyPlainRescaleInPlace).
     * The graph scheduler emits this for MulPlain -> Rescale chains.
     */
    Cts multiplyPlainRescale(const Cts &a, const ckks::Plaintext &p) const;

    /** In-place HADD: a[s] += b[s] without copying the batch. */
    void addInPlace(Cts &a, const Cts &b) const;

    /**
     * Batched counterpart of Evaluator::multiplyConstToScale: one
     * encoded constant shared by the batch, one CMULT + RESCALE per
     * slot, exact `target_scale` on every output.
     */
    Cts multiplyConstToScale(const Cts &a, double c,
                             double target_scale) const;
    /** Add a real constant to every slot (one shared plaintext). */
    Cts addConst(const Cts &a, double c) const;
    /** Negate all slots (no key material, no level). */
    Cts negate(const Cts &a) const;
    Cts rescale(const Cts &a) const;
    /** In-place RESCALE of the whole batch. */
    void rescaleInPlace(Cts &a) const;
    Cts rotate(const Cts &a, s64 step) const;
    /** Level alignment across the batch (no arithmetic). */
    Cts dropToLevelCount(const Cts &a, std::size_t level_count) const;

    /**
     * Hoisted HROTATE across both the batch and the step dimension:
     * the decompose+ModUp+NTT key-switch head runs once per batch
     * slot (not once per (slot, step)), and every per-step stage —
     * the digit FrobeniusMap, the key inner product, ModDown — is
     * flattened over (batch-slot x rotation x tower) through the
     * work-queue. result[i] is the whole batch rotated by steps[i];
     * bit-identical to the scalar rotate() per (slot, step).
     */
    std::vector<Cts> rotateManyBatch(const Cts &a,
                                     const std::vector<s64> &steps) const;

    /** The scalar (per-ciphertext) reference façade — the SAME
        dispatcher (pool + workspace arena), batch = 1. */
    const ckks::Evaluator &scalar() const { return eval_; }

    /** The unified execution layer this engine dispatches through. */
    const exec::Dispatcher &dispatcher() const { return *disp_; }

    ThreadPool &pool() const { return disp_->pool(); }

  private:
    /** Shared batch validation: uniform level (optionally >= floor). */
    std::size_t requireUniformLevel(const Cts &a,
                                    std::size_t min_level = 1) const;
    /** Pairwise validation shared by add/sub/addInPlace. */
    void requireCompatiblePair(const Cts &a, const Cts &b) const;

    const ckks::CkksContext &ctx_;
    std::shared_ptr<exec::Dispatcher> disp_;
    ckks::Evaluator eval_;
};

/**
 * The API layer's batch-size policy: the largest batch whose working
 * set fits the usable VRAM fraction (paper SVI-E: "the batch size of
 * TensorFHE is mainly determined by the VRAM capacity").
 */
std::size_t bestBatchSize(const ckks::CkksParams &params,
                          const gpu::DeviceModel &dev,
                          std::size_t requested);

/** Bytes of device memory one in-flight batched HMULT consumes. */
double workingSetBytesPerOp(const ckks::CkksParams &params);

} // namespace tensorfhe::batch

#endif // TENSORFHE_BATCH_EXECUTOR_HH
