#include "batch/layout.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tensorfhe::batch
{

const char *
layoutName(Layout l)
{
    return l == Layout::BLN ? "(B,L,N)" : "(L,B,N)";
}

BatchStore::BatchStore(std::size_t batch, std::size_t limbs,
                       std::size_t n, Layout layout)
    : b_(batch), l_(limbs), n_(n), layout_(layout),
      data_(batch * limbs * n, 0)
{
    TFHE_ASSERT(batch >= 1 && limbs >= 1 && n >= 1);
}

std::size_t
BatchStore::offset(std::size_t b, std::size_t l) const
{
    TFHE_ASSERT(b < b_ && l < l_);
    return layout_ == Layout::BLN ? (b * l_ + l) * n_
                                  : (l * b_ + b) * n_;
}

u64 *
BatchStore::entry(std::size_t b, std::size_t l)
{
    return data_.data() + offset(b, l);
}

const u64 *
BatchStore::entry(std::size_t b, std::size_t l) const
{
    return data_.data() + offset(b, l);
}

std::size_t
BatchStore::gatherLevel(std::size_t l, u64 *out) const
{
    if (layout_ == Layout::LBN) {
        // One contiguous block of B*N elements.
        const u64 *src = data_.data() + l * b_ * n_;
        std::copy(src, src + b_ * n_, out);
        return 1;
    }
    for (std::size_t b = 0; b < b_; ++b) {
        const u64 *src = entry(b, l);
        std::copy(src, src + n_, out + b * n_);
    }
    return b_; // one discontiguous run per batch entry
}

std::size_t
BatchStore::scatterLevel(std::size_t l, const u64 *in)
{
    if (layout_ == Layout::LBN) {
        u64 *dst = data_.data() + l * b_ * n_;
        std::copy(in, in + b_ * n_, dst);
        return 1;
    }
    for (std::size_t b = 0; b < b_; ++b)
        std::copy(in + b * n_, in + (b + 1) * n_, entry(b, l));
    return b_;
}

std::size_t
BatchStore::repack(Layout target)
{
    if (target == layout_)
        return 0;
    std::vector<u64> next(data_.size());
    for (std::size_t b = 0; b < b_; ++b) {
        for (std::size_t l = 0; l < l_; ++l) {
            std::size_t src = offset(b, l);
            std::size_t dst = target == Layout::BLN ? (b * l_ + l) * n_
                                                    : (l * b_ + b) * n_;
            std::copy(data_.begin() + src, data_.begin() + src + n_,
                      next.begin() + dst);
        }
    }
    data_ = std::move(next);
    layout_ = target;
    return data_.size();
}

} // namespace tensorfhe::batch
