/**
 * @file
 * Data-layout optimization for operation-level batching (paper SIV-D,
 * Fig. 9): batched operands stored (B, L, N) — one group per
 * operation — force a strided gather when kernels pack all entries of
 * one level; the (L, B, N) layout makes that slab contiguous.
 *
 * BatchStore holds B polynomials' limbs in either layout and exposes
 * the level-slab access pattern; a traffic meter counts the memory
 * transactions the gather costs, and repack() converts layouts (the
 * measured ablation behind bench_ablation_layout).
 */

#ifndef TENSORFHE_BATCH_LAYOUT_HH
#define TENSORFHE_BATCH_LAYOUT_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace tensorfhe::batch
{

enum class Layout
{
    BLN, ///< batch-major: entry (b, l) at offset (b*L + l) * N
    LBN  ///< level-major: entry (b, l) at offset (l*B + b) * N
};

const char *layoutName(Layout l);

class BatchStore
{
  public:
    BatchStore(std::size_t batch, std::size_t limbs, std::size_t n,
               Layout layout);

    std::size_t batch() const { return b_; }
    std::size_t limbs() const { return l_; }
    std::size_t n() const { return n_; }
    Layout layout() const { return layout_; }

    u64 *entry(std::size_t b, std::size_t l);
    const u64 *entry(std::size_t b, std::size_t l) const;

    /**
     * Assemble the level-l slab (all batch entries) into `out`
     * (size B*N). Contiguous copy under LBN; strided gather under
     * BLN. Returns the number of distinct contiguous runs touched
     * (the unit the GPU pays coalescing/row-activation cost per).
     */
    std::size_t gatherLevel(std::size_t l, u64 *out) const;

    /** Scatter a level slab back (inverse of gatherLevel). */
    std::size_t scatterLevel(std::size_t l, const u64 *in);

    /** Convert to the other layout; returns elements moved. */
    std::size_t repack(Layout target);

    u64 *raw() { return data_.data(); }
    const u64 *raw() const { return data_.data(); }

  private:
    std::size_t offset(std::size_t b, std::size_t l) const;

    std::size_t b_, l_, n_;
    Layout layout_;
    std::vector<u64> data_;
};

} // namespace tensorfhe::batch

#endif // TENSORFHE_BATCH_LAYOUT_HH
