#include "boot/bootstrap.hh"

#include <cmath>

#include "ckks/rotations.hh"
#include "common/logging.hh"
#include "trace/trace.hh"

namespace tensorfhe::boot
{

namespace
{

/**
 * The fixed part of the sine pre-scale kappa = pi * hidden_scale /
 * (q0 * 2^r), folded into the split-plan diagonals: with hidden =
 * pts the factor is exact, and the runtime hidden/pts remainder is
 * pure scale metadata (bootstrapBatch).
 */
double
splitFactor(const ckks::CkksContext &ctx, const SineConfig &sine)
{
    return M_PI * ctx.params().scale()
        / (static_cast<double>(ctx.tower().prime(0))
           * std::exp2(sine.doublings));
}

} // namespace

Bootstrapper::Bootstrapper(const ckks::CkksContext &ctx, SineConfig sine)
    : ctx_(ctx), sine_(sine), u_(LinearTransformPlan::specialFft(ctx)),
      c2sRe_(LinearTransformPlan::coeffToSlotReal(
          ctx, splitFactor(ctx, sine))),
      c2sIm_(LinearTransformPlan::coeffToSlotImag(
          ctx, splitFactor(ctx, sine)))
{
    requireArg(ctx.tower().numQ() > postRaiseLevelCost() + 1,
               "parameter chain too short for bootstrapping: need > ",
               postRaiseLevelCost() + 1, " levels");
}

Bootstrapper::Bootstrapper(const ckks::CkksContext &ctx,
                           const ckks::KeyBundle &keys, SineConfig sine)
    : Bootstrapper(ctx, sine)
{
    beval_.emplace(ctx, keys);
}

std::vector<s64>
Bootstrapper::requiredRotations(std::size_t slots)
{
    // The BSGS plans only rotate by baby steps b in [1, g) and giant
    // multiples of g = ceil(sqrt(slots)) — O(sqrt(slots)) switch keys
    // instead of one per diagonal. The analytic set here covers any
    // diagonal pattern of a slots x slots matrix: the plan's stride
    // chooser may pick a LARGER stride than g, but only when the
    // resulting steps stay inside this root pattern (babies < g,
    // giants multiples of g — the containment check in
    // chooseGiantStride), so these grants always suffice. The fused
    // C2S split plans' giant steps are plain rotations inside the
    // same pattern; their conjugate-composed baby steps are
    // advertised separately by requiredConjRotations().
    auto g = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(slots))));
    std::vector<s64> baby, giant;
    for (std::size_t b = 1; b < g && b < slots; ++b)
        baby.push_back(static_cast<s64>(b));
    for (std::size_t k = g; k < slots; k += g)
        giant.push_back(static_cast<s64>(k));
    return ckks::unionRotationSteps({baby, giant}, slots);
}

std::vector<s64>
Bootstrapper::requiredConjRotations(std::size_t slots)
{
    // Conjugate-composed baby steps of the fused C2S split plans:
    // the conj branch's babies live in [1, g) like the plain ones
    // (the b = 0 conjugation rides the always-present conj key).
    auto g = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(slots))));
    std::vector<s64> steps;
    for (std::size_t b = 1; b < g && b < slots; ++b)
        steps.push_back(static_cast<s64>(b));
    return steps;
}

std::size_t
Bootstrapper::postRaiseLevelCost() const
{
    // CoeffToSlot split (1, kappa folded into scale metadata) + sine
    // + recombine (1).
    return sineLevelsUsed(sine_) + 2;
}

ckks::Ciphertext
Bootstrapper::slotToCoeff(const ckks::Ciphertext &ct) const
{
    requireState(beval_.has_value(),
                 "slotToCoeff needs the key-bundle constructor");
    auto out = u_.applyBatch(*beval_, {ct});
    return std::move(out[0]);
}

ckks::Ciphertext
Bootstrapper::modRaise(const ckks::Ciphertext &ct) const
{
    const auto &tower = ctx_.tower();
    std::size_t n = ctx_.n();
    std::size_t full = tower.numQ();
    u64 q0 = tower.prime(0);
    auto v = ctx_.nttVariant();

    auto lift = [&](const rns::RnsPolynomial &poly) {
        rns::RnsPolynomial coeff = poly;
        coeff.truncateLimbs(1);
        coeff.toCoeff(v);
        std::vector<s64> centered(n);
        for (std::size_t c = 0; c < n; ++c) {
            u64 r = coeff.limb(0)[c];
            centered[c] = r <= q0 / 2
                ? static_cast<s64>(r)
                : -static_cast<s64>(q0 - r);
        }
        auto out = rns::liftSigned(tower, ctx_.qLimbs(full), centered);
        out.toEval(v);
        return out;
    };

    ckks::Ciphertext out;
    out.c0 = lift(ct.c0);
    out.c1 = lift(ct.c1);
    out.scale = ct.scale;
    return out;
}

Bootstrapper::Refresh
Bootstrapper::predictRefresh(const ckks::CkksContext &ctx,
                             const SineConfig &sine,
                             std::size_t input_level_count)
{
    requireArg(input_level_count >= 2,
               "slotToCoeff needs at least one spare level");
    const auto &tower = ctx.tower();
    double pts = ctx.params().scale();
    std::size_t full = tower.numQ();
    requireArg(full >= sineLevelsUsed(sine) + 3,
               "parameter chain too short for bootstrapping: need "
               ">= ",
               sineLevelsUsed(sine) + 3, " levels, have ", full);
    // C2S split consumes one level off the top; the sine output is
    // steered to exactly the context scale; the recombine CMULT +
    // RESCALE sets the final coordinates. (The input scale cancels:
    // kappa is pure scale metadata and the sine steering is exact.)
    std::size_t lc = full - 1 - sineLevelsUsed(sine);
    Refresh r;
    r.scale = pts * pts
        / static_cast<double>(tower.prime(lc - 1));
    r.levelCount = lc - 1;
    return r;
}

EvalOpCounts
Bootstrapper::modeledOps() const
{
    EvalOpCounts c;
    c += u_.modeledApplyOps();
    c += LinearTransformPlan::modeledFanoutOps({&c2sRe_, &c2sIm_});
    c += 2.0 * sineModeledOps(sine_);
    // Recombine: two CMULTs (back, i*back), one HADD, one RESCALE.
    c.cmult += 2;
    c.hadd += 1;
    c.rescale += 1;
    return c;
}

std::vector<ckks::Ciphertext>
Bootstrapper::bootstrapBatch(const batch::BatchedEvaluator &beval,
                             const std::vector<ckks::Ciphertext> &cts)
    const
{
    if (cts.empty())
        return {};
    requireArg(cts[0].levelCount() >= 2,
               "slotToCoeff needs at least one spare level");
    for (const auto &ct : cts)
        requireArg(ct.levelCount() == cts[0].levelCount()
                       && std::abs(ct.scale - cts[0].scale)
                           <= 1e-6 * cts[0].scale,
                   "bootstrap batch requires a uniform level and "
                   "scale");
    u64 q0 = ctx_.tower().prime(0);
    double pts = ctx_.params().scale();

    trace::TraceSpan bootSpan("boot", "bootstrap-batch");
    bootSpan.arg("batch", static_cast<s64>(cts.size()))
        .arg("level", static_cast<s64>(cts[0].levelCount()));

    // Stage 1: SlotToCoeff — coefficients now hold Re/Im of slots.
    std::vector<ckks::Ciphertext> packed;
    {
        TFHE_TRACE_SPAN("boot", "s2c");
        packed = u_.applyBatch(beval, cts);
    }

    // Stage 2: ModRaising from q0 to the full chain. The hidden
    // coefficients become m + q0*I for small integers I.
    std::vector<ckks::Ciphertext> raised;
    {
        TFHE_TRACE_SPAN("boot", "mod-raise");
        auto low = beval.dropToLevelCount(packed, 1);
        raised.reserve(low.size());
        for (const auto &ct : low)
            raised.push_back(modRaise(ct));
    }

    // Stage 3: fused CoeffToSlot + Re/Im split — the plans carry the
    // fixed factor pi*pts/(q0*2^r) of the sine pre-scale kappa in
    // their diagonals; the remaining hidden_scale/pts ratio is pure
    // scale metadata, so slot values become exactly kappa * 2Re /
    // kappa * 2Im of the hidden coefficients with NO split CMULT and
    // no extra level. The conjugate branch rides the same hoisted
    // BSGS head as the plain diagonals (composed conj-rotation
    // steps), so the stage costs giant + 2 basis conversions per
    // transform.
    double hidden_scale = packed[0].scale;
    std::size_t full = ctx_.tower().numQ();
    double t_scale =
        pts * pts / static_cast<double>(ctx_.tower().prime(full - 1));
    // The Re/Im plans share one hoisted head and one raw-tail table
    // (their baby and conjugate steps coincide): sine-stage double
    // hoisting.
    std::vector<std::vector<ckks::Ciphertext>> split;
    {
        TFHE_TRACE_SPAN("boot", "c2s-split");
        split = LinearTransformPlan::applyBatchFanout(
            beval, {&c2sRe_, &c2sIm_}, raised);
    }
    auto t_u = std::move(split[0]);
    auto t_v = std::move(split[1]);
    // Stored scale is hidden*pts/q_last; claiming pts^2/q_last reads
    // the values multiplied by hidden/pts — the kappa remainder.
    for (auto &ct : t_u)
        ct.scale = t_scale;
    for (auto &ct : t_v)
        ct.scale = t_scale;

    // Stage 4: Sine Evaluation on both streams.
    std::vector<ckks::Ciphertext> sin_u, sin_v;
    {
        TFHE_TRACE_SPAN("boot", "sine");
        sin_u = evalScaledSine(ctx_, beval, t_u, sine_);
        sin_v = evalScaledSine(ctx_, beval, t_v, sine_);
    }

    // Recombine: out = (q0 / (2 pi scale)) * (sin_u + i*sin_v); slot
    // values return to z_j = Re z_j + i Im z_j.
    TFHE_TRACE_SPAN("boot", "recombine");
    double back = q0 / (2.0 * M_PI * hidden_scale);
    auto out_u = beval.multiplyPlain(
        sin_u, ctx_.encoder().encodeConstant(Complex(back, 0), pts,
                                             sin_u[0].levelCount()));
    auto out_v = beval.multiplyPlain(
        sin_v, ctx_.encoder().encodeConstant(Complex(0, back), pts,
                                             sin_v[0].levelCount()));
    return beval.rescale(beval.add(out_u, out_v));
}

ckks::Ciphertext
Bootstrapper::bootstrap(const ckks::Ciphertext &ct) const
{
    requireState(beval_.has_value(),
                 "bootstrap needs the key-bundle constructor");
    auto out = bootstrapBatch(*beval_, {ct});
    return std::move(out[0]);
}

} // namespace tensorfhe::boot
