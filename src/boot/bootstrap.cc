#include "boot/bootstrap.hh"

#include <cmath>

#include "ckks/rotations.hh"
#include "common/logging.hh"

namespace tensorfhe::boot
{

Bootstrapper::Bootstrapper(const ckks::CkksContext &ctx,
                           const ckks::KeyBundle &keys, SineConfig sine)
    : ctx_(ctx), keys_(keys), eval_(ctx, keys), sine_(sine),
      u_(LinearTransformPlan::specialFft(ctx)),
      uInv_(LinearTransformPlan::specialFftInverse(ctx))
{
    requireArg(ctx.tower().numQ() > postRaiseLevelCost() + 1,
               "parameter chain too short for bootstrapping: need > ",
               postRaiseLevelCost() + 1, " levels");
}

std::vector<s64>
Bootstrapper::requiredRotations(std::size_t slots)
{
    // The BSGS plans only rotate by baby steps b in [1, g) and giant
    // multiples of g = ceil(sqrt(slots)) — O(sqrt(slots)) switch keys
    // instead of one per diagonal. The analytic set here covers any
    // diagonal pattern of a slots x slots matrix: the plan's stride
    // chooser may pick a LARGER stride than g, but only when the
    // resulting steps stay inside this root pattern (babies < g,
    // giants multiples of g — the containment check in
    // chooseGiantStride), so these grants always suffice.
    auto g = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(slots))));
    std::vector<s64> baby, giant;
    for (std::size_t b = 1; b < g && b < slots; ++b)
        baby.push_back(static_cast<s64>(b));
    for (std::size_t k = g; k < slots; k += g)
        giant.push_back(static_cast<s64>(k));
    return ckks::unionRotationSteps({baby, giant}, slots);
}

std::size_t
Bootstrapper::postRaiseLevelCost() const
{
    // CoeffToSlot (1) + split constant (1) + sine + recombine (1).
    return sineLevelCost(sine_) + 3;
}

ckks::Ciphertext
Bootstrapper::slotToCoeff(const ckks::Ciphertext &ct) const
{
    return u_.apply(eval_, ct);
}

ckks::Ciphertext
Bootstrapper::coeffToSlot(const ckks::Ciphertext &ct) const
{
    return uInv_.apply(eval_, ct);
}

ckks::Ciphertext
Bootstrapper::modRaise(const ckks::Ciphertext &ct) const
{
    const auto &tower = ctx_.tower();
    std::size_t n = ctx_.n();
    std::size_t full = tower.numQ();
    u64 q0 = tower.prime(0);
    auto v = ctx_.nttVariant();

    auto lift = [&](const rns::RnsPolynomial &poly) {
        rns::RnsPolynomial coeff = poly;
        coeff.truncateLimbs(1);
        coeff.toCoeff(v);
        std::vector<s64> centered(n);
        for (std::size_t c = 0; c < n; ++c) {
            u64 r = coeff.limb(0)[c];
            centered[c] = r <= q0 / 2
                ? static_cast<s64>(r)
                : -static_cast<s64>(q0 - r);
        }
        auto out = rns::liftSigned(tower, ctx_.qLimbs(full), centered);
        out.toEval(v);
        return out;
    };

    ckks::Ciphertext out;
    out.c0 = lift(ct.c0);
    out.c1 = lift(ct.c1);
    out.scale = ct.scale;
    return out;
}

ckks::Ciphertext
Bootstrapper::bootstrap(const ckks::Ciphertext &ct) const
{
    requireArg(ct.levelCount() >= 2,
               "slotToCoeff needs at least one spare level");
    u64 q0 = ctx_.tower().prime(0);
    double two_pow_r = std::exp2(sine_.doublings);

    // Stage 1: SlotToCoeff — coefficients now hold Re/Im of slots.
    auto packed = slotToCoeff(ct);

    // Stage 2: ModRaising from q0 to the full chain. The hidden
    // coefficients become m + q0*I for small integers I.
    auto raised = modRaise(eval_.dropToLevelCount(packed, 1));

    // Stage 3: CoeffToSlot — slot j now holds
    // (c_j + i*c_{j+N/2}) / scale with c = m + q0*I.
    auto w = coeffToSlot(raised);

    // Split real and imaginary coefficient streams with a conjugate,
    // folding the sine pre-scale kappa = pi*scale/(q0*2^r) into the
    // split constants. Slot values of w are c / raised.scale (the
    // C2S transform is value-preserving), so the hidden-coefficient
    // scale is the pre-C2S one.
    double hidden_scale = raised.scale;
    double kappa = M_PI * hidden_scale / (q0 * two_pow_r);
    auto wc = eval_.conjugate(w);
    auto sum = eval_.add(w, wc);  // 2*Re
    auto diff = eval_.sub(w, wc); // 2i*Im
    auto t_u = eval_.rescale(eval_.multiplyPlain(
        sum, ctx_.encoder().encodeConstant(Complex(kappa, 0),
                                           ctx_.params().scale(),
                                           sum.levelCount())));
    auto t_v = eval_.rescale(eval_.multiplyPlain(
        diff, ctx_.encoder().encodeConstant(Complex(0, -kappa),
                                            ctx_.params().scale(),
                                            diff.levelCount())));

    // Stage 4: Sine Evaluation on both streams.
    auto sin_u = evalScaledSine(ctx_, eval_, t_u, sine_);
    auto sin_v = evalScaledSine(ctx_, eval_, t_v, sine_);

    // Recombine: out = (q0 / (2 pi scale)) * (sin_u + i*sin_v); slot
    // values return to z_j = Re z_j + i Im z_j.
    double back = q0 / (2.0 * M_PI * hidden_scale);
    auto out_u = eval_.multiplyPlain(
        sin_u, ctx_.encoder().encodeConstant(Complex(back, 0),
                                             ctx_.params().scale(),
                                             sin_u.levelCount()));
    auto out_v = eval_.multiplyPlain(
        sin_v, ctx_.encoder().encodeConstant(Complex(0, back),
                                             ctx_.params().scale(),
                                             sin_v.levelCount()));
    return eval_.rescale(eval_.add(out_u, out_v));
}

} // namespace tensorfhe::boot
