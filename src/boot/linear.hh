/**
 * @file
 * Homomorphic linear transforms over slot vectors — the machinery of
 * SlotToCoeff and CoeffToSlot (paper Fig. 6).
 *
 * Key observation used here: with this library's packing (coeff j =
 * Re slot_j, coeff j+N/2 = Im slot_j, connected by the special FFT),
 * the slot-to-coeff map *in slot space* is exactly the special FFT
 * matrix, and coeff-to-slot its inverse — both C-linear, applied by
 * the diagonal method with HROTATE + CMULT.
 *
 * Evaluation goes through LinearTransformPlan, which compiles the
 * matrix into an exec::BsgsProgram executed by the unified dispatch
 * layer with DOUBLE HOISTING:
 *   - head-1: one hoisted key-switch head serves every baby-step
 *     rotation, and the baby tails stay on the extended QP basis
 *     (their ModDown is deferred);
 *   - the diagonal products and giant-group sums accumulate on QP
 *     (diagonals are encoded over the union basis, cached per level);
 *   - head-2: each nonzero giant step pays one c1-only ModDown plus
 *     its own hoisted head, and ONE final ModDown pair + RESCALE
 *     closes the transform.
 * The giant stride g is chosen by perf::matvecBsgsCost over the
 * plan's actual diagonal population, so the hoist/ModUp count drops
 * versus the classic sqrt-stride schedule (baby steps became cheap).
 */

#ifndef TENSORFHE_BOOT_LINEAR_HH
#define TENSORFHE_BOOT_LINEAR_HH

#include <map>
#include <mutex>
#include <vector>

#include "ckks/crypto.hh"
#include "ckks/evaluator.hh"
#include "exec/dispatch.hh"

namespace tensorfhe::batch
{
class BatchedEvaluator;
}

namespace tensorfhe::boot
{

using ckks::Complex;

/** Dense slots x slots complex matrix. */
using SlotMatrix = std::vector<std::vector<Complex>>;

/** The special-FFT matrix U (slot -> coeff packing map). */
SlotMatrix specialFftMatrix(const ckks::CkksEncoder &encoder);

/** Its inverse (coeff -> slot). */
SlotMatrix specialFftInverseMatrix(const ckks::CkksEncoder &encoder);

/** Plain reference: y = M z. */
std::vector<Complex> applyPlain(const SlotMatrix &m,
                                const std::vector<Complex> &z);

/**
 * A precompiled homomorphic linear transform y = M z.
 *
 * Construction extracts the nonzero diagonals of M, picks the BSGS
 * giant stride g by the double-hoisted cost model, and regroups:
 * diagonal d = k*g + b is stored pre-rotated by -k*g so that
 *   y = sum_k rot_{k*g}( sum_b diag'_{k,b} (had) rot_b(z) ).
 * apply() hands the compiled exec::BsgsProgram to the unified
 * dispatch layer, which runs it double-hoisted: about sqrt(slots)
 * raw key-switch tails off one head plus O(slots/g) giant heads, and
 * a single final ModDown, in place of the naive slots-1 full
 * keyswitches (and of the ~2*sqrt(slots) ModDowns of the
 * single-hoisted schedule).
 *
 * The encoded diagonal plaintexts (extended to the key-switch union
 * basis for the QP-domain products) are memoized per ciphertext
 * level inside the plan; so are the dense special-FFT matrices,
 * built once at plan construction via the factories below. apply()
 * consumes one multiplicative level.
 */
class LinearTransformPlan
{
  public:
    LinearTransformPlan(const ckks::CkksContext &ctx, SlotMatrix m);

    /** Plan for the special FFT matrix U (SlotToCoeff). */
    static LinearTransformPlan specialFft(const ckks::CkksContext &ctx);
    /** Plan for U^-1 (CoeffToSlot). */
    static LinearTransformPlan
    specialFftInverse(const ckks::CkksContext &ctx);

    /**
     * Homomorphic y = M z. Requires rotation keys for every step in
     * requiredRotations().
     */
    ckks::Ciphertext apply(const ckks::Evaluator &eval,
                           const ckks::Ciphertext &ct) const;

    /**
     * Batched apply: the whole batch rides the same double-hoisted
     * program through the unified dispatch layer, flattened over
     * (batch-slot x tower). Bit-identical to apply() per slot.
     */
    std::vector<ckks::Ciphertext>
    applyBatch(const batch::BatchedEvaluator &beval,
               const std::vector<ckks::Ciphertext> &cts) const;

    /** Rotation steps apply() needs keys for (baby + giant steps). */
    std::vector<s64> requiredRotations() const;

    const SlotMatrix &matrix() const { return m_; }

    /** Giant stride g (cost-model-chosen); baby steps span [0, g). */
    std::size_t giantStride() const { return g_; }
    /** Nonzero diagonals the transform touches. */
    std::size_t diagonalCount() const { return diags_.size(); }
    /** Distinct nonzero baby steps apply() rotates by. */
    std::size_t babyStepCount() const { return babySteps_.size(); }
    /** Distinct nonzero giant steps apply() rotates by. */
    std::size_t giantStepCount() const { return giantSteps_.size(); }
    /** Levels with a cached encoded-diagonal set (for tests). */
    std::size_t cachedLevelCount() const;

  private:
    /** One nonzero diagonal d = k*g + b, pre-rotated by -k*g. */
    struct Diagonal
    {
        std::size_t k;
        std::size_t b;
        std::vector<Complex> values;
    };

    const std::vector<ckks::Plaintext> &
    encodedDiagonals(std::size_t level_count) const;

    /** Compile the cached diagonals into the exec program for one
        ciphertext level (pointers into the per-level cache). */
    exec::BsgsProgram program(std::size_t level_count) const;

    const ckks::CkksContext &ctx_;
    SlotMatrix m_;
    std::size_t g_ = 0;
    std::vector<Diagonal> diags_;  ///< sorted by (k, b)
    std::vector<s64> babySteps_;   ///< distinct nonzero b, sorted
    std::vector<s64> giantSteps_;  ///< distinct nonzero k*g, sorted
    mutable std::mutex mu_;
    /// Per-level encoded diagonals, union-basis, aligned with diags_.
    mutable std::map<std::size_t, std::vector<ckks::Plaintext>> cache_;
};

/**
 * One-shot homomorphic y = M z: builds a transient LinearTransformPlan
 * and applies it (double-hoisted BSGS). Consumes one level. Callers
 * evaluating the same matrix repeatedly should hold a plan instead to
 * reuse the cached diagonal plaintexts.
 */
ckks::Ciphertext applyLinear(const ckks::CkksContext &ctx,
                             const ckks::Evaluator &eval,
                             const SlotMatrix &m,
                             const ckks::Ciphertext &ct);

} // namespace tensorfhe::boot

#endif // TENSORFHE_BOOT_LINEAR_HH
