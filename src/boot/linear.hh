/**
 * @file
 * Homomorphic linear transforms over slot vectors — the machinery of
 * SlotToCoeff and CoeffToSlot (paper Fig. 6).
 *
 * Key observation used here: with this library's packing (coeff j =
 * Re slot_j, coeff j+N/2 = Im slot_j, connected by the special FFT),
 * the slot-to-coeff map *in slot space* is exactly the special FFT
 * matrix, and coeff-to-slot its inverse — both C-linear, applied by
 * the classic diagonal method with HROTATE + CMULT.
 */

#ifndef TENSORFHE_BOOT_LINEAR_HH
#define TENSORFHE_BOOT_LINEAR_HH

#include <vector>

#include "ckks/crypto.hh"
#include "ckks/evaluator.hh"

namespace tensorfhe::boot
{

using ckks::Complex;

/** Dense slots x slots complex matrix. */
using SlotMatrix = std::vector<std::vector<Complex>>;

/** The special-FFT matrix U (slot -> coeff packing map). */
SlotMatrix specialFftMatrix(const ckks::CkksEncoder &encoder);

/** Its inverse (coeff -> slot). */
SlotMatrix specialFftInverseMatrix(const ckks::CkksEncoder &encoder);

/** Plain reference: y = M z. */
std::vector<Complex> applyPlain(const SlotMatrix &m,
                                const std::vector<Complex> &z);

/**
 * Homomorphic y = M z by the diagonal method:
 * y = sum_d diag_d(M) (had) rot(z, d). Consumes one level.
 * Requires rotation keys for every step with a nonzero diagonal.
 */
ckks::Ciphertext applyLinear(const ckks::CkksContext &ctx,
                             const ckks::Evaluator &eval,
                             const SlotMatrix &m,
                             const ckks::Ciphertext &ct);

} // namespace tensorfhe::boot

#endif // TENSORFHE_BOOT_LINEAR_HH
