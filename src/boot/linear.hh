/**
 * @file
 * Homomorphic linear transforms over slot vectors — the machinery of
 * SlotToCoeff and CoeffToSlot (paper Fig. 6).
 *
 * Key observation used here: with this library's packing (coeff j =
 * Re slot_j, coeff j+N/2 = Im slot_j, connected by the special FFT),
 * the slot-to-coeff map *in slot space* is exactly the special FFT
 * matrix, and coeff-to-slot its inverse — both C-linear, applied by
 * the diagonal method with HROTATE + CMULT.
 *
 * Evaluation goes through LinearTransformPlan, which compiles the
 * matrix into an exec::BsgsProgram executed by the unified dispatch
 * layer with DOUBLE HOISTING:
 *   - head-1: one hoisted key-switch head serves every baby-step
 *     rotation, and the baby tails stay on the extended QP basis
 *     (their ModDown is deferred);
 *   - the diagonal products and giant-group sums accumulate on QP
 *     (diagonals are encoded over the union basis, cached per level);
 *   - head-2: each nonzero giant step pays one c1-only ModDown plus
 *     its own hoisted head, and ONE final ModDown pair + RESCALE
 *     closes the transform.
 * The giant stride g is chosen by perf::matvecBsgsCost over the
 * plan's actual diagonal population, so the hoist/ModUp count drops
 * versus the classic sqrt-stride schedule (baby steps became cheap).
 */

#ifndef TENSORFHE_BOOT_LINEAR_HH
#define TENSORFHE_BOOT_LINEAR_HH

#include <map>
#include <mutex>
#include <vector>

#include "ckks/crypto.hh"
#include "ckks/evaluator.hh"
#include "common/stats.hh"
#include "exec/dispatch.hh"

namespace tensorfhe::batch
{
class BatchedEvaluator;
}

namespace tensorfhe::boot
{

using ckks::Complex;

/** Dense slots x slots complex matrix. */
using SlotMatrix = std::vector<std::vector<Complex>>;

/** The special-FFT matrix U (slot -> coeff packing map). */
SlotMatrix specialFftMatrix(const ckks::CkksEncoder &encoder);

/** Its inverse (coeff -> slot). */
SlotMatrix specialFftInverseMatrix(const ckks::CkksEncoder &encoder);

/** Plain reference: y = M z. */
std::vector<Complex> applyPlain(const SlotMatrix &m,
                                const std::vector<Complex> &z);

/**
 * How LinearTransformPlan picks its BSGS giant stride (see
 * perf::CostModel::chooseBsgsStride, the single decision procedure
 * the plan, the cost model, and the execution planner share).
 */
struct StrideOptions
{
    /**
     * Level count the stride argmin prices candidates at; 0 means
     * the full tower (the historical behavior — correct for plans
     * applied near the top, pessimistic for plans the planner will
     * run deep in the ladder).
     */
    std::size_t costingLevel = 0;
    /**
     * Keep every rotation step inside the root-based key pattern
     * (babies < root, giants multiples of root) so analytic
     * pre-generated key bundles always cover the plan. Planner-built
     * nets route keys through an on-demand ckks::KeyStore and clear
     * this, freeing the argmin to pick e.g. the all-baby g = slots
     * schedule.
     */
    bool restrictToRootPattern = true;
};

/**
 * A precompiled homomorphic linear transform y = M z.
 *
 * Construction extracts the nonzero diagonals of M, picks the BSGS
 * giant stride g by the double-hoisted cost model, and regroups:
 * diagonal d = k*g + b is stored pre-rotated by -k*g so that
 *   y = sum_k rot_{k*g}( sum_b diag'_{k,b} (had) rot_b(z) ).
 * apply() hands the compiled exec::BsgsProgram to the unified
 * dispatch layer, which runs it double-hoisted: about sqrt(slots)
 * raw key-switch tails off one head plus O(slots/g) giant heads, and
 * a single final ModDown, in place of the naive slots-1 full
 * keyswitches (and of the ~2*sqrt(slots) ModDowns of the
 * single-hoisted schedule).
 *
 * The encoded diagonal plaintexts (extended to the key-switch union
 * basis for the QP-domain products) are memoized per ciphertext
 * level inside the plan; so are the dense special-FFT matrices,
 * built once at plan construction via the factories below. apply()
 * consumes one multiplicative level.
 */
class LinearTransformPlan
{
  public:
    LinearTransformPlan(const ckks::CkksContext &ctx, SlotMatrix m);

    /** Plan with an explicit stride policy (the planner's entry). */
    LinearTransformPlan(const ckks::CkksContext &ctx, SlotMatrix m,
                        const StrideOptions &opt);

    /**
     * Conjugate-symmetric plan: y = M z + conj(M) conj(z) = 2 Re(M z).
     * The conj(z) branch rides the SAME double-hoisted head as the
     * plain branch — its baby steps are conjugate-composed rotations
     * (KeyBundle.conj / conjRot keys) — so the transform costs
     * giant + 2 basis conversions like any other matvec instead of a
     * standalone conjugation keyswitch. This is how the bootstrapper
     * folds the sine-stage Re/Im split into CoeffToSlot.
     */
    LinearTransformPlan(const ckks::CkksContext &ctx, SlotMatrix m,
                        SlotMatrix conj_m);

    LinearTransformPlan(const ckks::CkksContext &ctx, SlotMatrix m,
                        SlotMatrix conj_m, const StrideOptions &opt);

    /** Plan for the special FFT matrix U (SlotToCoeff). */
    static LinearTransformPlan specialFft(const ckks::CkksContext &ctx);
    /** Plan for U^-1 (CoeffToSlot). */
    static LinearTransformPlan
    specialFftInverse(const ckks::CkksContext &ctx);
    /**
     * Fused CoeffToSlot + Re split: factor * 2 Re(U^-1 z). Applied to
     * the mod-raised ciphertext it hands the sine stage its real
     * stream directly; the bootstrapper folds the fixed part of the
     * sine pre-scale kappa into `factor` and the input-scale-
     * dependent remainder into pure scale metadata.
     */
    static LinearTransformPlan
    coeffToSlotReal(const ckks::CkksContext &ctx, double factor = 1.0);
    /** Fused CoeffToSlot + Im split: factor * 2 Im(U^-1 z) =
        factor * (-i U^-1 z + conj(-i U^-1) conj(z)). */
    static LinearTransformPlan
    coeffToSlotImag(const ckks::CkksContext &ctx, double factor = 1.0);

    /**
     * Homomorphic y = M z. Requires rotation keys for every step in
     * requiredRotations().
     */
    ckks::Ciphertext apply(const ckks::Evaluator &eval,
                           const ckks::Ciphertext &ct) const;

    /**
     * Batched apply: the whole batch rides the same double-hoisted
     * program through the unified dispatch layer, flattened over
     * (batch-slot x tower). Bit-identical to apply() per slot.
     */
    std::vector<ckks::Ciphertext>
    applyBatch(const batch::BatchedEvaluator &beval,
               const std::vector<ckks::Ciphertext> &cts) const;

    /**
     * Several plans over ONE input batch with shared baby-step work
     * (exec::Dispatcher::applyBsgsFanout): the hoisted head and the
     * raw baby/conjugate tails are built once for all plans — the
     * bootstrapper's C2S Re/Im split pair rides this. Returns one
     * output batch per plan, plan-major.
     */
    static std::vector<std::vector<ckks::Ciphertext>>
    applyBatchFanout(const batch::BatchedEvaluator &beval,
                     const std::vector<const LinearTransformPlan *> &ps,
                     const std::vector<ckks::Ciphertext> &cts);

    /** Exact executed-op counts of one applyBatchFanout per batch
        slot: the union baby/conjugate tails counted once, each
        plan's groups and final RESCALE counted per plan. */
    static EvalOpCounts
    modeledFanoutOps(const std::vector<const LinearTransformPlan *> &ps);

    /** Rotation steps apply() needs plain keys for (baby + giant). */
    std::vector<s64> requiredRotations() const;
    /**
     * Conjugate-composed baby steps apply() needs KeyBundle.conjRot
     * keys for (empty unless the plan has a conjugate branch; the
     * step-0 conjugation rides the always-present conj key).
     */
    std::vector<s64> requiredConjRotations() const;

    const SlotMatrix &matrix() const { return m_; }

    /** Giant stride g (cost-model-chosen); baby steps span [0, g). */
    std::size_t giantStride() const { return g_; }
    /** Nonzero diagonals the transform touches (both branches). */
    std::size_t diagonalCount() const { return diags_.size(); }
    /**
     * Sorted distinct diagonal indices d = k*g + b of the plain
     * branch — the population the stride argmin ran on. The planner
     * re-runs chooseBsgsStride on these to price the SAME transform
     * at other levels without recompiling the plan.
     */
    std::vector<std::size_t> diagonalIndices() const;
    /** Distinct nonzero plain baby steps apply() rotates by. */
    std::size_t babyStepCount() const { return babySteps_.size(); }
    /** Distinct conjugate-composed baby steps (incl. step 0). */
    std::size_t conjStepCount() const { return conjSteps_.size(); }
    /** Distinct nonzero giant steps apply() rotates by. */
    std::size_t giantStepCount() const { return giantSteps_.size(); }
    /** Giant groups, counting the unshifted (k = 0) one. */
    std::size_t groupCount() const { return groupCount_; }
    /** Levels with a cached encoded-diagonal set (for tests). */
    std::size_t cachedLevelCount() const;

    /**
     * The exact executed-op counts of one apply() per batch slot,
     * mirroring what exec::Dispatcher::applyBsgs records. modeled-
     * AccumOps() is the share one accumulation contributes inside an
     * applyBsgsSum (counting the inter-group HAdd for EVERY group);
     * a standalone apply is accum minus the first group's HAdd plus
     * the single final RESCALE.
     */
    EvalOpCounts modeledAccumOps() const;
    EvalOpCounts modeledApplyOps() const;

    /**
     * Compile the cached diagonals into the exec program for one
     * ciphertext level (pointers into the per-level cache; the plan
     * must outlive the program). Exposed so block matvecs can hand
     * several plans to exec::Dispatcher::applyBsgsSum.
     */
    exec::BsgsProgram program(std::size_t level_count) const;

  private:
    /** One nonzero diagonal d = k*g + b, pre-rotated by -k*g. */
    struct Diagonal
    {
        std::size_t k;
        std::size_t b;
        bool conj = false; ///< applies to conj(z) via composed steps
        std::vector<Complex> values;
    };

    const std::vector<ckks::Plaintext> &
    encodedDiagonals(std::size_t level_count) const;

    const ckks::CkksContext &ctx_;
    SlotMatrix m_;
    std::size_t g_ = 0;
    std::size_t groupCount_ = 0;
    std::vector<Diagonal> diags_;       ///< sorted by (k, conj, b)
    std::vector<s64> babySteps_;        ///< distinct nonzero plain b
    std::vector<s64> conjSteps_;        ///< distinct conj b (incl. 0)
    std::vector<s64> giantSteps_;       ///< distinct nonzero k*g
    mutable std::mutex mu_;
    /// Per-level encoded diagonals, union-basis, aligned with diags_.
    mutable std::map<std::size_t, std::vector<ckks::Plaintext>> cache_;
};

/**
 * One-shot homomorphic y = M z: builds a transient LinearTransformPlan
 * and applies it (double-hoisted BSGS). Consumes one level. Callers
 * evaluating the same matrix repeatedly should hold a plan instead to
 * reuse the cached diagonal plaintexts.
 */
ckks::Ciphertext applyLinear(const ckks::CkksContext &ctx,
                             const ckks::Evaluator &eval,
                             const SlotMatrix &m,
                             const ckks::Ciphertext &ct);

} // namespace tensorfhe::boot

#endif // TENSORFHE_BOOT_LINEAR_HH
