#include "boot/sine.hh"

#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "fault/fault.hh"

namespace tensorfhe::boot
{

namespace
{

using Cts = std::vector<ckks::Ciphertext>;

double
factorial(int n)
{
    double f = 1;
    for (int i = 2; i <= n; ++i)
        f *= i;
    return f;
}

/** The ladder's level ledger: lvl[k] = levels below the input at
    which t^(2k) lands. Shared by the evaluation and the planners —
    so the [3, 6] bound is enforced here, before any planner indexes
    the ladder (construction-time misconfiguration must fail with
    this error, not out-of-bounds UB). */
std::vector<std::size_t>
ladderDepths(int terms)
{
    requireArg(terms >= 3 && terms <= 6,
               "taylorTerms must be in [3, 6], got ", terms);
    std::vector<std::size_t> depth(static_cast<std::size_t>(terms), 0);
    depth[1] = 1;
    for (int k = 2; k < terms; ++k) {
        int a = k / 2;
        int b = k - a;
        depth[static_cast<std::size_t>(k)] =
            std::max(depth[static_cast<std::size_t>(a)],
                     depth[static_cast<std::size_t>(b)])
            + 1;
    }
    return depth;
}

} // namespace

std::size_t
sineLevelCost(const SineConfig &cfg)
{
    // Power ladder (~4) + coefficient layer (1) + odd product (1) +
    // doublings + final halving (1) + slack (1).
    return 8 + static_cast<std::size_t>(cfg.doublings);
}

std::size_t
sineLevelsUsed(const SineConfig &cfg)
{
    auto depth = ladderDepths(cfg.taylorTerms);
    std::size_t deepest =
        depth[static_cast<std::size_t>(cfg.taylorTerms - 1)];
    // Ladder to the deepest power, the coefficient steering (1), the
    // odd product (1), the double-angle chain, the final halving (1).
    return deepest + 2 + static_cast<std::size_t>(cfg.doublings) + 1;
}

EvalOpCounts
sineModeledOps(const SineConfig &cfg)
{
    double terms = static_cast<double>(cfg.taylorTerms);
    double d = static_cast<double>(cfg.doublings);
    EvalOpCounts c;
    // HMULTs: the ladder (terms - 1), the odd product, the
    // double-angle S products (d) and S^2 products (d - 1); each
    // relinearizes through one hoist + tail and rescales.
    c.hmult = terms + 2 * d - 1;
    c.ksHoist = c.hmult;
    c.ksTail = c.hmult;
    // CMULTs: the 2(terms-1) coefficient steerings + final halving.
    c.cmult = 2 * terms - 1;
    c.rescale = c.hmult + c.cmult;
    // HAdds: term sums 2(terms-2), the two addConst(2), and the
    // addConst of each non-final double-angle step (d - 1).
    c.hadd = 2 * terms + d - 3;
    return c;
}

Cts
evalScaledSine(const ckks::CkksContext &ctx,
               const batch::BatchedEvaluator &beval, const Cts &ct_t,
               const SineConfig &cfg)
{
    requireArg(cfg.taylorTerms >= 3 && cfg.taylorTerms <= 6,
               "taylorTerms must be in [3, 6]");
    requireArg(!ct_t.empty(), "empty sine batch");
    requireArg(ct_t[0].levelCount() > sineLevelsUsed(cfg),
               "not enough levels for sine evaluation: need > ",
               sineLevelsUsed(cfg), ", have ", ct_t[0].levelCount());
    TFHE_FAULT_POINT("boot/sine-stage");
    double target = ctx.params().scale();
    int terms = cfg.taylorTerms;

    auto drop = [&](const Cts &b, const Cts &a) {
        return beval.dropToLevelCount(b, a[0].levelCount());
    };
    auto multiplyRescale = [&](const Cts &a, const Cts &b) {
        return beval.rescale(beval.multiply(a, b));
    };

    // Power ladder pw[k] = t^(2k), k in [1, terms).
    std::vector<Cts> pw(static_cast<std::size_t>(terms));
    pw[1] = multiplyRescale(ct_t, ct_t);
    for (int k = 2; k < terms; ++k) {
        int a = k / 2;
        int b = k - a;
        const auto &deeper = pw[static_cast<std::size_t>(a)][0]
                        .levelCount()
                < pw[static_cast<std::size_t>(b)][0].levelCount()
            ? pw[static_cast<std::size_t>(a)]
            : pw[static_cast<std::size_t>(b)];
        pw[static_cast<std::size_t>(k)] = multiplyRescale(
            drop(pw[static_cast<std::size_t>(a)], deeper),
            drop(pw[static_cast<std::size_t>(b)], deeper));
    }
    const auto &deepest = pw[static_cast<std::size_t>(terms - 1)];

    // Work with S = 2 sin, C = 2 cos so the double-angle recurrence
    // S(2x) = S*C, C(2x) = 2 - S*S is constant-free.
    // S = t * (2 + sum_k (-1)^k * 2 t^(2k) / (2k+1)!),
    // C = 2 + sum_k (-1)^k * 2 t^(2k) / (2k)!.
    // multiplyConstToScale steers every term to one exact scale so
    // the sums are well-defined despite unequal prime chains.
    Cts s_inner, c_poly;
    for (int k = 1; k < terms; ++k) {
        double sign = k % 2 == 0 ? 1.0 : -1.0;
        double s_coeff = sign * 2.0 / factorial(2 * k + 1);
        double c_coeff = sign * 2.0 / factorial(2 * k);
        auto at_depth =
            drop(pw[static_cast<std::size_t>(k)], deepest);
        auto s_term =
            beval.multiplyConstToScale(at_depth, s_coeff, target);
        auto c_term =
            beval.multiplyConstToScale(at_depth, c_coeff, target);
        if (k == 1) {
            s_inner = std::move(s_term);
            c_poly = std::move(c_term);
        } else {
            s_inner = beval.add(s_inner, s_term);
            c_poly = beval.add(c_poly, c_term);
        }
    }
    s_inner = beval.addConst(s_inner, 2.0);
    c_poly = beval.addConst(c_poly, 2.0);

    auto s = multiplyRescale(drop(ct_t, s_inner), s_inner);
    auto c = drop(c_poly, s);

    for (int r = 0; r < cfg.doublings; ++r) {
        bool last = r == cfg.doublings - 1;
        auto s_next = multiplyRescale(s, c);
        if (!last) {
            auto ss = multiplyRescale(s, s);
            auto c_next = beval.negate(ss);
            c_next = beval.addConst(c_next, 2.0);
            c = drop(c_next, s_next);
        }
        s = s_next;
    }
    // sin = S / 2.
    return beval.multiplyConstToScale(s, 0.5, target);
}

ckks::Ciphertext
evalScaledSine(const ckks::CkksContext &ctx,
               const batch::BatchedEvaluator &beval,
               const ckks::Ciphertext &ct_t, const SineConfig &cfg)
{
    auto out = evalScaledSine(ctx, beval, Cts{ct_t}, cfg);
    return std::move(out[0]);
}

} // namespace tensorfhe::boot
