#include "boot/sine.hh"

#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace tensorfhe::boot
{

namespace
{

using ckks::Ciphertext;
using ckks::Evaluator;

/** Drop b to a's level (levels only; scales are handled by callers). */
Ciphertext
drop(const Evaluator &eval, const Ciphertext &b, const Ciphertext &a)
{
    return eval.dropToLevelCount(b, a.levelCount());
}

double
factorial(int n)
{
    double f = 1;
    for (int i = 2; i <= n; ++i)
        f *= i;
    return f;
}

} // namespace

std::size_t
sineLevelCost(const SineConfig &cfg)
{
    // Power ladder (~4) + coefficient layer (1) + odd product (1) +
    // doublings + final halving (1) + slack (1).
    return 8 + static_cast<std::size_t>(cfg.doublings);
}

ckks::Ciphertext
evalScaledSine(const ckks::CkksContext &ctx, const Evaluator &eval,
               const Ciphertext &ct_t, const SineConfig &cfg)
{
    requireArg(cfg.taylorTerms >= 3 && cfg.taylorTerms <= 6,
               "taylorTerms must be in [3, 6]");
    requireArg(ct_t.levelCount() > sineLevelCost(cfg),
               "not enough levels for sine evaluation: need > ",
               sineLevelCost(cfg), ", have ", ct_t.levelCount());
    double target = ctx.params().scale();
    int terms = cfg.taylorTerms;

    // Power ladder pw[k] = t^(2k), k in [1, terms).
    std::vector<Ciphertext> pw(static_cast<std::size_t>(terms));
    pw[1] = eval.multiplyRescale(ct_t, ct_t);
    for (int k = 2; k < terms; ++k) {
        int a = k / 2;
        int b = k - a;
        const auto &deeper =
            pw[a].levelCount() < pw[b].levelCount() ? pw[a] : pw[b];
        pw[k] = eval.multiplyRescale(drop(eval, pw[a], deeper),
                                     drop(eval, pw[b], deeper));
    }
    const auto &deepest = pw[static_cast<std::size_t>(terms - 1)];

    // Work with S = 2 sin, C = 2 cos so the double-angle recurrence
    // S(2x) = S*C, C(2x) = 2 - S*S is constant-free.
    // S = t * (2 + sum_k (-1)^k * 2 t^(2k) / (2k+1)!),
    // C = 2 + sum_k (-1)^k * 2 t^(2k) / (2k)!.
    // multiplyConstToScale steers every term to one exact scale so
    // the sums are well-defined despite unequal prime chains.
    Ciphertext s_inner, c_poly;
    for (int k = 1; k < terms; ++k) {
        double sign = k % 2 == 0 ? 1.0 : -1.0;
        double s_coeff = sign * 2.0 / factorial(2 * k + 1);
        double c_coeff = sign * 2.0 / factorial(2 * k);
        auto at_depth = drop(eval, pw[static_cast<std::size_t>(k)],
                             deepest);
        auto s_term = eval.multiplyConstToScale(at_depth, s_coeff,
                                                target);
        auto c_term = eval.multiplyConstToScale(at_depth, c_coeff,
                                                target);
        if (k == 1) {
            s_inner = std::move(s_term);
            c_poly = std::move(c_term);
        } else {
            s_inner = eval.add(s_inner, s_term);
            c_poly = eval.add(c_poly, c_term);
        }
    }
    s_inner = eval.addConst(s_inner, 2.0);
    c_poly = eval.addConst(c_poly, 2.0);

    auto s = eval.multiplyRescale(drop(eval, ct_t, s_inner), s_inner);
    auto c = drop(eval, c_poly, s);

    for (int r = 0; r < cfg.doublings; ++r) {
        bool last = r == cfg.doublings - 1;
        auto s_next = eval.multiplyRescale(s, c);
        if (!last) {
            auto ss = eval.multiplyRescale(s, s);
            auto c_next = eval.negate(ss);
            c_next = eval.addConst(c_next, 2.0);
            c = drop(eval, c_next, s_next);
        }
        s = s_next;
    }
    // sin = S / 2.
    return eval.multiplyConstToScale(s, 0.5, target);
}

} // namespace tensorfhe::boot
