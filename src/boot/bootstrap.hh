/**
 * @file
 * Slim CKKS bootstrapping (paper Fig. 6):
 *   SlotToCoeff -> ModRaising -> CoeffToSlot -> Sine Evaluation,
 * restoring the multiplicative level budget of an exhausted
 * ciphertext. The DFT stages use the homomorphic linear transforms
 * of boot/linear.hh; the modular-reduction stage uses the Taylor +
 * double-angle sine of boot/sine.hh.
 *
 * The sine stage's Re/Im split is FUSED into CoeffToSlot: two
 * conjugate-symmetric plans (coeffToSlotReal / coeffToSlotImag)
 * produce the sine inputs directly off the mod-raised ciphertext,
 * the conjugation riding the double-hoisted BSGS head as composed
 * conj-rotation baby steps (KeyBundle.conjRot). This removes the
 * standalone conjugation keyswitch and the split-constant CMULT
 * level of the unfused pipeline — the sine stage's rotations now
 * cost giant + 2 basis conversions per transform like any other
 * matvec (the kappa pre-scale is pure scale metadata).
 *
 * Everything is batched: bootstrapBatch() refreshes a whole stream
 * of ciphertexts (batch slots x tensor chunks) through one shared
 * pipeline on a BatchedEvaluator — the shape nn::Sequential uses for
 * bootstrap-in-the-loop inference.
 */

#ifndef TENSORFHE_BOOT_BOOTSTRAP_HH
#define TENSORFHE_BOOT_BOOTSTRAP_HH

#include <memory>
#include <optional>

#include "boot/linear.hh"
#include "boot/sine.hh"

namespace tensorfhe::boot
{

class Bootstrapper
{
  public:
    /**
     * Plan-only construction: compiles the S2C / fused-C2S plans but
     * holds no key material. bootstrapBatch() runs on any caller-
     * provided BatchedEvaluator whose keys cover requiredRotations()
     * + requiredConjRotations() + conjugation; the serial bootstrap()
     * convenience is unavailable.
     */
    explicit Bootstrapper(const ckks::CkksContext &ctx,
                          SineConfig sine = {});

    /**
     * @param keys must contain rotation keys for every step in
     *             requiredRotations(ctx.slots()), conjugate-rotation
     *             keys for requiredConjRotations(ctx.slots()), and
     *             the conjugation key.
     */
    Bootstrapper(const ckks::CkksContext &ctx,
                 const ckks::KeyBundle &keys, SineConfig sine = {});

    /** Plain rotation steps bootstrap needs keys for. */
    static std::vector<s64> requiredRotations(std::size_t slots);
    /** Conjugate-composed steps (KeyBundle.conjRot) it needs. */
    static std::vector<s64> requiredConjRotations(std::size_t slots);

    /**
     * Refresh `ct` (any level >= 2, slots holding values with
     * |z| <~ 1) to a fresh ciphertext at the highest level the sine
     * budget allows, approximately preserving the slot values.
     * Requires the key-bundle constructor.
     */
    ckks::Ciphertext bootstrap(const ckks::Ciphertext &ct) const;

    /**
     * Batched refresh: every ciphertext rides the shared S2C /
     * fused-C2S programs and one power ladder through the evaluator's
     * (slot x tower) work-queue. Bit-identical to bootstrap() per
     * slot. All inputs must share one level and scale.
     */
    std::vector<ckks::Ciphertext>
    bootstrapBatch(const batch::BatchedEvaluator &beval,
                   const std::vector<ckks::Ciphertext> &cts) const;

    /** Stage 1: move slot values into polynomial coefficients
        (requires the key-bundle constructor). */
    ckks::Ciphertext slotToCoeff(const ckks::Ciphertext &ct) const;

    /** Stage 2: re-lift a level-1 ciphertext to the full chain. */
    ckks::Ciphertext modRaise(const ckks::Ciphertext &ct) const;

    /** Levels consumed below the top by C2S + sine (exact). */
    std::size_t postRaiseLevelCost() const;

    /** The refreshed budget coordinates a bootstrap output lands at. */
    struct Refresh
    {
        std::size_t levelCount = 0;
        double scale = 0.0;
    };

    /**
     * Exact prediction of bootstrap output level and scale — the same
     * double arithmetic the pipeline executes, so budget planners
     * (nn::Sequential's ledger) can validate refreshed metas bit-for-
     * bit. Independent of the input scale: the sine stage steers to
     * the context scale exactly.
     */
    static Refresh predictRefresh(const ckks::CkksContext &ctx,
                                  const SineConfig &sine,
                                  std::size_t input_level_count);

    /**
     * Exact executed-op counts of one bootstrap per ciphertext,
     * mirroring what the dispatch layer records (plan-derived BSGS
     * counts + the sine ladder + the recombine).
     */
    EvalOpCounts modeledOps() const;

    const SineConfig &sine() const { return sine_; }
    /** The compiled plans (for benches / conversion accounting). */
    const LinearTransformPlan &s2cPlan() const { return u_; }
    const LinearTransformPlan &c2sRealPlan() const { return c2sRe_; }
    const LinearTransformPlan &c2sImagPlan() const { return c2sIm_; }

  private:
    const ckks::CkksContext &ctx_;
    SineConfig sine_;
    /// BSGS plans: the special FFT (S2C) and the two fused C2S split
    /// transforms; dense matrices and encoded diagonal plaintexts are
    /// memoized here (built once per bootstrapper, shared by every
    /// bootstrap call).
    LinearTransformPlan u_;
    LinearTransformPlan c2sRe_;
    LinearTransformPlan c2sIm_;
    /// Serial-convenience engine (key-bundle constructor only).
    std::optional<batch::BatchedEvaluator> beval_;
};

} // namespace tensorfhe::boot

#endif // TENSORFHE_BOOT_BOOTSTRAP_HH
