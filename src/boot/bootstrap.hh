/**
 * @file
 * Slim CKKS bootstrapping (paper Fig. 6):
 *   SlotToCoeff -> ModRaising -> CoeffToSlot -> Sine Evaluation,
 * restoring the multiplicative level budget of an exhausted
 * ciphertext. The DFT stages use the homomorphic linear transforms
 * of boot/linear.hh; the modular-reduction stage uses the Taylor +
 * double-angle sine of boot/sine.hh.
 */

#ifndef TENSORFHE_BOOT_BOOTSTRAP_HH
#define TENSORFHE_BOOT_BOOTSTRAP_HH

#include <memory>

#include "boot/linear.hh"
#include "boot/sine.hh"

namespace tensorfhe::boot
{

class Bootstrapper
{
  public:
    /**
     * @param keys must contain rotation keys for every step in
     *             requiredRotations(ctx.slots()) plus the
     *             conjugation key.
     */
    Bootstrapper(const ckks::CkksContext &ctx,
                 const ckks::KeyBundle &keys, SineConfig sine = {});

    /** Rotation steps bootstrap needs keys for. */
    static std::vector<s64> requiredRotations(std::size_t slots);

    /**
     * Refresh `ct` (any level >= 2, slots holding values with
     * |z| <~ 1) to a fresh ciphertext at the highest level the sine
     * budget allows, approximately preserving the slot values.
     */
    ckks::Ciphertext bootstrap(const ckks::Ciphertext &ct) const;

    /** Stage 1: move slot values into polynomial coefficients. */
    ckks::Ciphertext slotToCoeff(const ckks::Ciphertext &ct) const;

    /** Stage 2: re-lift a level-1 ciphertext to the full chain. */
    ckks::Ciphertext modRaise(const ckks::Ciphertext &ct) const;

    /** Stage 3: move (noisy multiples of q0 +) coeffs into slots. */
    ckks::Ciphertext coeffToSlot(const ckks::Ciphertext &ct) const;

    /** Levels consumed below the top by C2S + sine. */
    std::size_t postRaiseLevelCost() const;

  private:
    const ckks::CkksContext &ctx_;
    const ckks::KeyBundle &keys_;
    ckks::Evaluator eval_;
    SineConfig sine_;
    /// BSGS plans over the special FFT and its inverse; the dense
    /// matrices and the encoded diagonal plaintexts are memoized here
    /// (built once per bootstrapper, shared by every bootstrap call).
    LinearTransformPlan u_;
    LinearTransformPlan uInv_;
};

} // namespace tensorfhe::boot

#endif // TENSORFHE_BOOT_BOOTSTRAP_HH
