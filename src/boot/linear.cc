#include "boot/linear.hh"

#include <cmath>

#include "common/logging.hh"

namespace tensorfhe::boot
{

SlotMatrix
specialFftMatrix(const ckks::CkksEncoder &encoder)
{
    std::size_t slots = encoder.slots();
    SlotMatrix m(slots, std::vector<Complex>(slots));
    // Column k = fftSpecial(e_k): the map is C-linear.
    for (std::size_t k = 0; k < slots; ++k) {
        std::vector<Complex> e(slots, Complex(0, 0));
        e[k] = Complex(1, 0);
        encoder.fftSpecial(e);
        for (std::size_t j = 0; j < slots; ++j)
            m[j][k] = e[j];
    }
    return m;
}

SlotMatrix
specialFftInverseMatrix(const ckks::CkksEncoder &encoder)
{
    std::size_t slots = encoder.slots();
    SlotMatrix m(slots, std::vector<Complex>(slots));
    for (std::size_t k = 0; k < slots; ++k) {
        std::vector<Complex> e(slots, Complex(0, 0));
        e[k] = Complex(1, 0);
        encoder.fftSpecialInv(e);
        for (std::size_t j = 0; j < slots; ++j)
            m[j][k] = e[j];
    }
    return m;
}

std::vector<Complex>
applyPlain(const SlotMatrix &m, const std::vector<Complex> &z)
{
    std::size_t slots = m.size();
    std::vector<Complex> y(slots, Complex(0, 0));
    for (std::size_t j = 0; j < slots; ++j)
        for (std::size_t k = 0; k < slots; ++k)
            y[j] += m[j][k] * z[k];
    return y;
}

ckks::Ciphertext
applyLinear(const ckks::CkksContext &ctx, const ckks::Evaluator &eval,
            const SlotMatrix &m, const ckks::Ciphertext &ct)
{
    std::size_t slots = ctx.slots();
    TFHE_ASSERT(m.size() == slots);
    double scale = ctx.params().scale();

    ckks::Ciphertext acc;
    bool first = true;
    for (std::size_t d = 0; d < slots; ++d) {
        // diag_d[j] = M[j][(j + d) mod slots].
        std::vector<Complex> diag(slots);
        double mag = 0;
        for (std::size_t j = 0; j < slots; ++j) {
            diag[j] = m[j][(j + d) % slots];
            mag = std::max(mag,
                           std::abs(diag[j]));
        }
        if (mag < 1e-12)
            continue; // skip empty diagonals
        auto rotated =
            d == 0 ? ct : eval.rotate(ct, static_cast<s64>(d));
        auto pt = ctx.encoder().encode(diag, scale,
                                       rotated.levelCount());
        auto term = eval.multiplyPlain(rotated, pt);
        if (first) {
            acc = std::move(term);
            first = false;
        } else {
            acc = eval.add(acc, term);
        }
    }
    TFHE_ASSERT(!first, "matrix was entirely zero");
    return eval.rescale(acc);
}

} // namespace tensorfhe::boot
