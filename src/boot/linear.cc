#include "boot/linear.hh"

#include <algorithm>
#include <cmath>

#include "batch/executor.hh"
#include "ckks/rotations.hh"
#include "common/logging.hh"
#include "perf/cost_model.hh"

namespace tensorfhe::boot
{

SlotMatrix
specialFftMatrix(const ckks::CkksEncoder &encoder)
{
    std::size_t slots = encoder.slots();
    SlotMatrix m(slots, std::vector<Complex>(slots));
    // Column k = fftSpecial(e_k): the map is C-linear.
    for (std::size_t k = 0; k < slots; ++k) {
        std::vector<Complex> e(slots, Complex(0, 0));
        e[k] = Complex(1, 0);
        encoder.fftSpecial(e);
        for (std::size_t j = 0; j < slots; ++j)
            m[j][k] = e[j];
    }
    return m;
}

SlotMatrix
specialFftInverseMatrix(const ckks::CkksEncoder &encoder)
{
    std::size_t slots = encoder.slots();
    SlotMatrix m(slots, std::vector<Complex>(slots));
    for (std::size_t k = 0; k < slots; ++k) {
        std::vector<Complex> e(slots, Complex(0, 0));
        e[k] = Complex(1, 0);
        encoder.fftSpecialInv(e);
        for (std::size_t j = 0; j < slots; ++j)
            m[j][k] = e[j];
    }
    return m;
}

std::vector<Complex>
applyPlain(const SlotMatrix &m, const std::vector<Complex> &z)
{
    std::size_t slots = m.size();
    std::vector<Complex> y(slots, Complex(0, 0));
    for (std::size_t j = 0; j < slots; ++j)
        for (std::size_t k = 0; k < slots; ++k)
            y[j] += m[j][k] * z[k];
    return y;
}

namespace
{

/**
 * Pick the BSGS giant stride for the given nonzero diagonal set by
 * the double-hoisted cost model: with deferred ModDowns the baby
 * steps are much cheaper than giant steps (which each pay a c1
 * ModDown + their own hoisted head), so sparse / structured diagonal
 * populations often prefer a stride above the classic
 * ceil(sqrt(slots)) — fewer giant groups, fewer ModUps.
 *
 * The decision procedure itself lives in
 * perf::CostModel::chooseBsgsStride (one argmin shared with the
 * global execution planner, so a planned net is costed with exactly
 * the stride its compiled transforms will run). StrideOptions
 * selects the costing level (0 = full tower, the historical default)
 * and whether non-root strides must stay inside the root-based key
 * pattern of analytic pre-generated key grants.
 */
std::size_t
chooseGiantStride(const ckks::CkksContext &ctx,
                  const std::vector<std::size_t> &diag_idx,
                  std::size_t slots, const StrideOptions &opt)
{
    std::size_t costing_level =
        opt.costingLevel != 0 ? opt.costingLevel : ctx.tower().numQ();
    perf::CostModel model(ctx.params());
    return model
        .chooseBsgsStride(costing_level, diag_idx, slots,
                          opt.restrictToRootPattern)
        .g;
}

} // namespace

namespace
{

/** The nonzero diagonals of one matrix: (index, values) pairs. */
void
extractDiagonals(const SlotMatrix &m, std::size_t slots,
                 std::vector<std::size_t> &idx,
                 std::vector<std::vector<Complex>> &vals)
{
    for (std::size_t d = 0; d < slots; ++d) {
        // diag_d[j] = M[j][(j + d) mod slots].
        std::vector<Complex> diag(slots);
        double mag = 0;
        for (std::size_t j = 0; j < slots; ++j) {
            diag[j] = m[j][(j + d) % slots];
            mag = std::max(mag, std::abs(diag[j]));
        }
        if (mag < 1e-12)
            continue; // skip empty diagonals
        idx.push_back(d);
        vals.push_back(std::move(diag));
    }
}

} // namespace

LinearTransformPlan::LinearTransformPlan(const ckks::CkksContext &ctx,
                                         SlotMatrix m)
    : LinearTransformPlan(ctx, std::move(m), SlotMatrix{},
                          StrideOptions{})
{}

LinearTransformPlan::LinearTransformPlan(const ckks::CkksContext &ctx,
                                         SlotMatrix m,
                                         const StrideOptions &opt)
    : LinearTransformPlan(ctx, std::move(m), SlotMatrix{}, opt)
{}

LinearTransformPlan::LinearTransformPlan(const ckks::CkksContext &ctx,
                                         SlotMatrix m, SlotMatrix conj_m)
    : LinearTransformPlan(ctx, std::move(m), std::move(conj_m),
                          StrideOptions{})
{}

LinearTransformPlan::LinearTransformPlan(const ckks::CkksContext &ctx,
                                         SlotMatrix m, SlotMatrix conj_m,
                                         const StrideOptions &opt)
    : ctx_(ctx), m_(std::move(m))
{
    std::size_t slots = ctx.slots();
    TFHE_ASSERT(m_.size() == slots);
    TFHE_ASSERT(conj_m.empty() || conj_m.size() == slots);

    // Extract the nonzero diagonals of both branches first
    // (stride-independent), then pick one giant stride from the
    // combined population — plain and conjugate entries of the same
    // diagonal index share the giant step, only the baby key differs.
    std::vector<std::size_t> plain_idx, conj_idx;
    std::vector<std::vector<Complex>> plain_vals, conj_vals;
    extractDiagonals(m_, slots, plain_idx, plain_vals);
    if (!conj_m.empty())
        extractDiagonals(conj_m, slots, conj_idx, conj_vals);
    TFHE_ASSERT(!plain_idx.empty() || !conj_idx.empty(),
                "matrix was entirely zero");

    std::vector<std::size_t> all_idx = plain_idx;
    all_idx.insert(all_idx.end(), conj_idx.begin(), conj_idx.end());
    std::sort(all_idx.begin(), all_idx.end());
    all_idx.erase(std::unique(all_idx.begin(), all_idx.end()),
                  all_idx.end());
    g_ = chooseGiantStride(ctx, all_idx, slots, opt);

    // BSGS regrouping: diagonal d = k*g + b stored pre-rotated by
    // -k*g so the giant rotation can be applied after the plaintext
    // products.
    auto regroup = [&](const std::vector<std::size_t> &idx,
                       const std::vector<std::vector<Complex>> &vals,
                       bool conj) {
        for (std::size_t i = 0; i < idx.size(); ++i) {
            std::size_t d = idx[i];
            Diagonal entry;
            entry.k = d / g_;
            entry.b = d % g_;
            entry.conj = conj;
            // rot_{-k*g}(diag): slot j of the stored diagonal lands
            // back on diag[j] after the giant rotation by k*g.
            entry.values.resize(slots);
            std::size_t shift = entry.k * g_; // < slots since d < slots
            for (std::size_t j = 0; j < slots; ++j)
                entry.values[j] =
                    vals[i][(j + slots - shift) % slots];
            diags_.push_back(std::move(entry));
        }
    };
    regroup(plain_idx, plain_vals, false);
    regroup(conj_idx, conj_vals, true);
    // Group by giant step; the (k, conj, b) order also fixes the
    // cache layout of encodedDiagonals().
    std::stable_sort(diags_.begin(), diags_.end(),
                     [](const Diagonal &x, const Diagonal &y) {
                         if (x.k != y.k)
                             return x.k < y.k;
                         if (x.conj != y.conj)
                             return x.conj < y.conj;
                         return x.b < y.b;
                     });

    // The distinct rotation steps apply() touches, fixed once here.
    std::vector<s64> baby, conj_baby, giant;
    for (const Diagonal &d : diags_) {
        if (d.conj)
            conj_baby.push_back(static_cast<s64>(d.b));
        else if (d.b != 0)
            baby.push_back(static_cast<s64>(d.b));
        if (d.k != 0)
            giant.push_back(static_cast<s64>(d.k * g_));
    }
    babySteps_ = ckks::normalizeRotationSteps(std::move(baby));
    giantSteps_ = ckks::normalizeRotationSteps(std::move(giant));
    // Conjugate steps keep step 0 (the pure conjugation is a real
    // keyswitch, not the identity), so no normalizeRotationSteps.
    std::sort(conj_baby.begin(), conj_baby.end());
    conj_baby.erase(std::unique(conj_baby.begin(), conj_baby.end()),
                    conj_baby.end());
    conjSteps_ = std::move(conj_baby);

    std::size_t groups = 0;
    std::size_t last_k = diags_.empty() ? 0 : diags_[0].k + 1;
    for (const Diagonal &d : diags_) {
        if (d.k != last_k) {
            ++groups;
            last_k = d.k;
        }
    }
    groupCount_ = groups;
}

LinearTransformPlan
LinearTransformPlan::specialFft(const ckks::CkksContext &ctx)
{
    return LinearTransformPlan(ctx, specialFftMatrix(ctx.encoder()));
}

LinearTransformPlan
LinearTransformPlan::specialFftInverse(const ckks::CkksContext &ctx)
{
    return LinearTransformPlan(ctx,
                               specialFftInverseMatrix(ctx.encoder()));
}

namespace
{

SlotMatrix
conjugated(SlotMatrix m)
{
    for (auto &row : m)
        for (auto &v : row)
            v = std::conj(v);
    return m;
}

SlotMatrix
timesMinusI(SlotMatrix m)
{
    for (auto &row : m)
        for (auto &v : row)
            v = Complex(v.imag(), -v.real());
    return m;
}

SlotMatrix
scaled(SlotMatrix m, double factor)
{
    for (auto &row : m)
        for (auto &v : row)
            v *= factor;
    return m;
}

} // namespace

LinearTransformPlan
LinearTransformPlan::coeffToSlotReal(const ckks::CkksContext &ctx,
                                     double factor)
{
    auto u_inv =
        scaled(specialFftInverseMatrix(ctx.encoder()), factor);
    auto conj_m = conjugated(u_inv);
    return LinearTransformPlan(ctx, std::move(u_inv),
                               std::move(conj_m));
}

LinearTransformPlan
LinearTransformPlan::coeffToSlotImag(const ckks::CkksContext &ctx,
                                     double factor)
{
    // -i U^-1 z + conj(-i U^-1) conj(z) = 2 Im(U^-1 z).
    auto a = timesMinusI(
        scaled(specialFftInverseMatrix(ctx.encoder()), factor));
    auto conj_m = conjugated(a);
    return LinearTransformPlan(ctx, std::move(a), std::move(conj_m));
}

std::vector<std::size_t>
LinearTransformPlan::diagonalIndices() const
{
    std::vector<std::size_t> idx;
    idx.reserve(diags_.size());
    for (const auto &d : diags_)
        if (!d.conj)
            idx.push_back(d.k * g_ + d.b);
    std::sort(idx.begin(), idx.end());
    idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
    return idx;
}

std::vector<s64>
LinearTransformPlan::requiredRotations() const
{
    return ckks::unionRotationSteps({babySteps_, giantSteps_});
}

std::vector<s64>
LinearTransformPlan::requiredConjRotations() const
{
    std::vector<s64> steps;
    for (s64 s : conjSteps_)
        if (s != 0)
            steps.push_back(s);
    return steps;
}

EvalOpCounts
LinearTransformPlan::modeledAccumOps() const
{
    double baby = static_cast<double>(babySteps_.size());
    double conj = static_cast<double>(conjSteps_.size());
    double shifted = static_cast<double>(giantSteps_.size());
    double groups = static_cast<double>(groupCount_);
    double diags = static_cast<double>(diags_.size());
    EvalOpCounts c;
    c.hrotate = baby + shifted;
    c.conjugate = conj;
    c.ksHoist = (baby + conj > 0 ? 1 : 0) + shifted;
    c.ksTail = baby + conj + shifted;
    c.cmult = diags;
    // Entry-level HAdds within each group plus one inter-group HAdd
    // per group (the caller subtracts the very first group's).
    c.hadd = (diags - groups) + groups;
    return c;
}

EvalOpCounts
LinearTransformPlan::modeledApplyOps() const
{
    EvalOpCounts c = modeledAccumOps();
    c.hadd -= 1; // the first group initializes the accumulator
    c.rescale = 1;
    return c;
}

std::size_t
LinearTransformPlan::cachedLevelCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
}

const std::vector<ckks::Plaintext> &
LinearTransformPlan::encodedDiagonals(std::size_t level_count) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(level_count);
    if (it != cache_.end())
        return it->second;
    // Diagonals are encoded over the key-switch union basis of this
    // level so the double-hoisted path can multiply them into the
    // pre-ModDown (QP) accumulators; restricted to the q-limbs they
    // are bit-identical to a plain encode at this level.
    std::vector<ckks::Plaintext> pts;
    pts.reserve(diags_.size());
    double scale = ctx_.params().scale();
    auto union_limbs = ctx_.unionLimbs(level_count);
    for (const Diagonal &d : diags_)
        pts.push_back(ctx_.encoder().encodeOnLimbs(d.values, scale,
                                                   union_limbs));
    return cache_.emplace(level_count, std::move(pts)).first->second;
}

exec::BsgsProgram
LinearTransformPlan::program(std::size_t level_count) const
{
    const auto &pts = encodedDiagonals(level_count);
    exec::BsgsProgram prog;
    for (s64 b : babySteps_)
        prog.babySteps.push_back({b, false});
    for (s64 b : conjSteps_)
        prog.babySteps.push_back({b, true});
    std::sort(prog.babySteps.begin(), prog.babySteps.end());
    for (std::size_t i = 0; i < diags_.size();) {
        std::size_t k = diags_[i].k;
        exec::BsgsGroup group;
        group.shift = static_cast<s64>(k * g_);
        for (; i < diags_.size() && diags_[i].k == k; ++i)
            group.entries.push_back({static_cast<s64>(diags_[i].b),
                                     diags_[i].conj, &pts[i]});
        prog.groups.push_back(std::move(group));
    }
    return prog;
}

ckks::Ciphertext
LinearTransformPlan::apply(const ckks::Evaluator &eval,
                           const ckks::Ciphertext &ct) const
{
    auto out =
        eval.dispatcher().applyBsgs(program(ct.levelCount()), &ct, 1);
    return std::move(out[0]);
}

std::vector<ckks::Ciphertext>
LinearTransformPlan::applyBatch(
    const batch::BatchedEvaluator &beval,
    const std::vector<ckks::Ciphertext> &cts) const
{
    if (cts.empty())
        return {};
    std::size_t lc = cts[0].levelCount();
    for (const auto &ct : cts)
        requireArg(ct.levelCount() == lc,
                   "batched ops require a uniform level");
    return beval.dispatcher().applyBsgs(program(lc), cts.data(),
                                        cts.size());
}

std::vector<std::vector<ckks::Ciphertext>>
LinearTransformPlan::applyBatchFanout(
    const batch::BatchedEvaluator &beval,
    const std::vector<const LinearTransformPlan *> &ps,
    const std::vector<ckks::Ciphertext> &cts)
{
    requireArg(!ps.empty(), "empty plan fanout");
    if (cts.empty())
        return std::vector<std::vector<ckks::Ciphertext>>(ps.size());
    std::size_t lc = cts[0].levelCount();
    for (const auto &ct : cts)
        requireArg(ct.levelCount() == lc,
                   "batched ops require a uniform level");
    std::vector<exec::BsgsProgram> programs;
    std::vector<const exec::BsgsProgram *> ptrs;
    programs.reserve(ps.size());
    for (const auto *p : ps)
        programs.push_back(p->program(lc));
    for (const auto &p : programs)
        ptrs.push_back(&p);
    return beval.dispatcher().applyBsgsFanout(ptrs.data(), ptrs.size(),
                                              cts.data(), cts.size());
}

EvalOpCounts
LinearTransformPlan::modeledFanoutOps(
    const std::vector<const LinearTransformPlan *> &ps)
{
    // Shared baby tables over the union step sets: one head, one raw
    // tail per distinct (step, conj).
    std::vector<s64> baby_union, conj_union;
    for (const auto *p : ps) {
        baby_union.insert(baby_union.end(), p->babySteps_.begin(),
                          p->babySteps_.end());
        conj_union.insert(conj_union.end(), p->conjSteps_.begin(),
                          p->conjSteps_.end());
    }
    auto uniq = [](std::vector<s64> &v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    uniq(baby_union);
    uniq(conj_union);

    EvalOpCounts c;
    c.hrotate = static_cast<double>(baby_union.size());
    c.conjugate = static_cast<double>(conj_union.size());
    c.ksHoist = baby_union.empty() && conj_union.empty() ? 0 : 1;
    c.ksTail =
        static_cast<double>(baby_union.size() + conj_union.size());
    for (const auto *p : ps) {
        double shifted = static_cast<double>(p->giantSteps_.size());
        double diags = static_cast<double>(p->diags_.size());
        c.hrotate += shifted;
        c.ksHoist += shifted;
        c.ksTail += shifted;
        c.cmult += diags;
        c.hadd += diags - 1; // per-plan accumulator starts fresh
        c.rescale += 1;
    }
    return c;
}

ckks::Ciphertext
applyLinear(const ckks::CkksContext &ctx, const ckks::Evaluator &eval,
            const SlotMatrix &m, const ckks::Ciphertext &ct)
{
    LinearTransformPlan plan(ctx, m);
    return plan.apply(eval, ct);
}

} // namespace tensorfhe::boot
