#include "boot/linear.hh"

#include <algorithm>
#include <cmath>

#include "batch/executor.hh"
#include "ckks/rotations.hh"
#include "common/logging.hh"
#include "perf/cost.hh"

namespace tensorfhe::boot
{

SlotMatrix
specialFftMatrix(const ckks::CkksEncoder &encoder)
{
    std::size_t slots = encoder.slots();
    SlotMatrix m(slots, std::vector<Complex>(slots));
    // Column k = fftSpecial(e_k): the map is C-linear.
    for (std::size_t k = 0; k < slots; ++k) {
        std::vector<Complex> e(slots, Complex(0, 0));
        e[k] = Complex(1, 0);
        encoder.fftSpecial(e);
        for (std::size_t j = 0; j < slots; ++j)
            m[j][k] = e[j];
    }
    return m;
}

SlotMatrix
specialFftInverseMatrix(const ckks::CkksEncoder &encoder)
{
    std::size_t slots = encoder.slots();
    SlotMatrix m(slots, std::vector<Complex>(slots));
    for (std::size_t k = 0; k < slots; ++k) {
        std::vector<Complex> e(slots, Complex(0, 0));
        e[k] = Complex(1, 0);
        encoder.fftSpecialInv(e);
        for (std::size_t j = 0; j < slots; ++j)
            m[j][k] = e[j];
    }
    return m;
}

std::vector<Complex>
applyPlain(const SlotMatrix &m, const std::vector<Complex> &z)
{
    std::size_t slots = m.size();
    std::vector<Complex> y(slots, Complex(0, 0));
    for (std::size_t j = 0; j < slots; ++j)
        for (std::size_t k = 0; k < slots; ++k)
            y[j] += m[j][k] * z[k];
    return y;
}

namespace
{

/**
 * Pick the BSGS giant stride for the given nonzero diagonal set by
 * the double-hoisted cost model: with deferred ModDowns the baby
 * steps are much cheaper than giant steps (which each pay a c1
 * ModDown + their own hoisted head), so sparse / structured diagonal
 * populations often prefer a stride above the classic
 * ceil(sqrt(slots)) — fewer giant groups, fewer ModUps.
 *
 * Candidates are the root stride plus every larger stride whose
 * rotation-step set stays INSIDE the root-based key pattern (baby
 * steps < root, giant steps multiples of root): the analytic
 * rotation-key grants (Bootstrapper::requiredRotations, pre-generated
 * key bundles) cover exactly that pattern, so a qualifying stride
 * never demands a key the caller did not provision. Dense matrices
 * therefore keep g = root; a diagonal band {0..root-1}, say, compiles
 * to zero giant steps. Ties keep the smaller stride.
 */
std::size_t
chooseGiantStride(const ckks::CkksContext &ctx,
                  const std::vector<std::size_t> &diag_idx,
                  std::size_t slots)
{
    auto root = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(slots))));
    std::vector<std::size_t> candidates;
    candidates.push_back(root);
    for (std::size_t g = 1; g < slots; g <<= 1)
        if (g > root)
            candidates.push_back(g);
    candidates.push_back(slots);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    auto work = [](const perf::KernelCost &c) {
        return c.coreOps + c.tcuMacs / 8.0 + c.bytes;
    };
    std::size_t costing_level = ctx.tower().numQ();
    std::size_t best_g = root;
    double best = -1;
    for (std::size_t g : candidates) {
        std::vector<std::size_t> babies, giants;
        for (std::size_t d : diag_idx) {
            if (d % g != 0)
                babies.push_back(d % g);
            if (d / g != 0)
                giants.push_back(d / g * g);
        }
        auto uniq = [](std::vector<std::size_t> &v) {
            std::sort(v.begin(), v.end());
            v.erase(std::unique(v.begin(), v.end()), v.end());
        };
        uniq(babies);
        uniq(giants);
        if (g != root) {
            // Key-pattern containment: every step this stride rotates
            // by must already exist in the root-based key grant.
            bool covered = true;
            for (std::size_t b : babies)
                covered = covered && b < root;
            for (std::size_t k : giants)
                covered = covered && k % root == 0;
            if (!covered)
                continue;
        }
        double w = work(perf::matvecBsgsCost(ctx.params(), costing_level,
                                             diag_idx.size(),
                                             babies.size(),
                                             giants.size()));
        if (best < 0 || w < best) {
            best = w;
            best_g = g;
        }
    }
    return best_g;
}

} // namespace

LinearTransformPlan::LinearTransformPlan(const ckks::CkksContext &ctx,
                                         SlotMatrix m)
    : ctx_(ctx), m_(std::move(m))
{
    std::size_t slots = ctx.slots();
    TFHE_ASSERT(m_.size() == slots);

    // Extract the nonzero diagonals first (stride-independent), then
    // pick the giant stride from their population.
    std::vector<std::size_t> diag_idx;
    std::vector<std::vector<Complex>> diag_vals;
    for (std::size_t d = 0; d < slots; ++d) {
        // diag_d[j] = M[j][(j + d) mod slots].
        std::vector<Complex> diag(slots);
        double mag = 0;
        for (std::size_t j = 0; j < slots; ++j) {
            diag[j] = m_[j][(j + d) % slots];
            mag = std::max(mag, std::abs(diag[j]));
        }
        if (mag < 1e-12)
            continue; // skip empty diagonals
        diag_idx.push_back(d);
        diag_vals.push_back(std::move(diag));
    }
    TFHE_ASSERT(!diag_idx.empty(), "matrix was entirely zero");

    g_ = chooseGiantStride(ctx, diag_idx, slots);

    // BSGS regrouping: diagonal d = k*g + b stored pre-rotated by
    // -k*g so the giant rotation can be applied after the plaintext
    // products.
    for (std::size_t i = 0; i < diag_idx.size(); ++i) {
        std::size_t d = diag_idx[i];
        Diagonal entry;
        entry.k = d / g_;
        entry.b = d % g_;
        // rot_{-k*g}(diag): slot j of the stored diagonal lands back
        // on diag[j] after the giant rotation by k*g.
        entry.values.resize(slots);
        std::size_t shift = entry.k * g_; // < slots since d < slots
        for (std::size_t j = 0; j < slots; ++j)
            entry.values[j] = diag_vals[i][(j + slots - shift) % slots];
        diags_.push_back(std::move(entry));
    }
    // Group by giant step; the (k, b) order also fixes the cache
    // layout of encodedDiagonals().
    std::stable_sort(diags_.begin(), diags_.end(),
                     [](const Diagonal &x, const Diagonal &y) {
                         return x.k != y.k ? x.k < y.k : x.b < y.b;
                     });

    // The distinct rotation steps apply() touches, fixed once here.
    std::vector<s64> baby, giant;
    for (const Diagonal &d : diags_) {
        if (d.b != 0)
            baby.push_back(static_cast<s64>(d.b));
        if (d.k != 0)
            giant.push_back(static_cast<s64>(d.k * g_));
    }
    babySteps_ = ckks::normalizeRotationSteps(std::move(baby));
    giantSteps_ = ckks::normalizeRotationSteps(std::move(giant));
}

LinearTransformPlan
LinearTransformPlan::specialFft(const ckks::CkksContext &ctx)
{
    return LinearTransformPlan(ctx, specialFftMatrix(ctx.encoder()));
}

LinearTransformPlan
LinearTransformPlan::specialFftInverse(const ckks::CkksContext &ctx)
{
    return LinearTransformPlan(ctx,
                               specialFftInverseMatrix(ctx.encoder()));
}

std::vector<s64>
LinearTransformPlan::requiredRotations() const
{
    return ckks::unionRotationSteps({babySteps_, giantSteps_});
}

std::size_t
LinearTransformPlan::cachedLevelCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
}

const std::vector<ckks::Plaintext> &
LinearTransformPlan::encodedDiagonals(std::size_t level_count) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(level_count);
    if (it != cache_.end())
        return it->second;
    // Diagonals are encoded over the key-switch union basis of this
    // level so the double-hoisted path can multiply them into the
    // pre-ModDown (QP) accumulators; restricted to the q-limbs they
    // are bit-identical to a plain encode at this level.
    std::vector<ckks::Plaintext> pts;
    pts.reserve(diags_.size());
    double scale = ctx_.params().scale();
    auto union_limbs = ctx_.unionLimbs(level_count);
    for (const Diagonal &d : diags_)
        pts.push_back(ctx_.encoder().encodeOnLimbs(d.values, scale,
                                                   union_limbs));
    return cache_.emplace(level_count, std::move(pts)).first->second;
}

exec::BsgsProgram
LinearTransformPlan::program(std::size_t level_count) const
{
    const auto &pts = encodedDiagonals(level_count);
    exec::BsgsProgram prog;
    prog.babySteps = babySteps_;
    for (std::size_t i = 0; i < diags_.size();) {
        std::size_t k = diags_[i].k;
        exec::BsgsGroup group;
        group.shift = static_cast<s64>(k * g_);
        for (; i < diags_.size() && diags_[i].k == k; ++i)
            group.entries.push_back(
                {static_cast<s64>(diags_[i].b), &pts[i]});
        prog.groups.push_back(std::move(group));
    }
    return prog;
}

ckks::Ciphertext
LinearTransformPlan::apply(const ckks::Evaluator &eval,
                           const ckks::Ciphertext &ct) const
{
    auto out =
        eval.dispatcher().applyBsgs(program(ct.levelCount()), &ct, 1);
    return std::move(out[0]);
}

std::vector<ckks::Ciphertext>
LinearTransformPlan::applyBatch(
    const batch::BatchedEvaluator &beval,
    const std::vector<ckks::Ciphertext> &cts) const
{
    if (cts.empty())
        return {};
    std::size_t lc = cts[0].levelCount();
    for (const auto &ct : cts)
        requireArg(ct.levelCount() == lc,
                   "batched ops require a uniform level");
    return beval.dispatcher().applyBsgs(program(lc), cts.data(),
                                        cts.size());
}

ckks::Ciphertext
applyLinear(const ckks::CkksContext &ctx, const ckks::Evaluator &eval,
            const SlotMatrix &m, const ckks::Ciphertext &ct)
{
    LinearTransformPlan plan(ctx, m);
    return plan.apply(eval, ct);
}

} // namespace tensorfhe::boot
