#include "boot/linear.hh"

#include <algorithm>
#include <cmath>

#include "batch/executor.hh"
#include "ckks/rotations.hh"
#include "common/logging.hh"

namespace tensorfhe::boot
{

SlotMatrix
specialFftMatrix(const ckks::CkksEncoder &encoder)
{
    std::size_t slots = encoder.slots();
    SlotMatrix m(slots, std::vector<Complex>(slots));
    // Column k = fftSpecial(e_k): the map is C-linear.
    for (std::size_t k = 0; k < slots; ++k) {
        std::vector<Complex> e(slots, Complex(0, 0));
        e[k] = Complex(1, 0);
        encoder.fftSpecial(e);
        for (std::size_t j = 0; j < slots; ++j)
            m[j][k] = e[j];
    }
    return m;
}

SlotMatrix
specialFftInverseMatrix(const ckks::CkksEncoder &encoder)
{
    std::size_t slots = encoder.slots();
    SlotMatrix m(slots, std::vector<Complex>(slots));
    for (std::size_t k = 0; k < slots; ++k) {
        std::vector<Complex> e(slots, Complex(0, 0));
        e[k] = Complex(1, 0);
        encoder.fftSpecialInv(e);
        for (std::size_t j = 0; j < slots; ++j)
            m[j][k] = e[j];
    }
    return m;
}

std::vector<Complex>
applyPlain(const SlotMatrix &m, const std::vector<Complex> &z)
{
    std::size_t slots = m.size();
    std::vector<Complex> y(slots, Complex(0, 0));
    for (std::size_t j = 0; j < slots; ++j)
        for (std::size_t k = 0; k < slots; ++k)
            y[j] += m[j][k] * z[k];
    return y;
}

LinearTransformPlan::LinearTransformPlan(const ckks::CkksContext &ctx,
                                         SlotMatrix m)
    : ctx_(ctx), m_(std::move(m))
{
    std::size_t slots = ctx.slots();
    TFHE_ASSERT(m_.size() == slots);
    g_ = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(slots))));

    // Extract the nonzero diagonals, BSGS-regrouped: diagonal
    // d = k*g + b is stored pre-rotated by -k*g so the giant
    // rotation can be applied after the plaintext products.
    for (std::size_t d = 0; d < slots; ++d) {
        // diag_d[j] = M[j][(j + d) mod slots].
        std::vector<Complex> diag(slots);
        double mag = 0;
        for (std::size_t j = 0; j < slots; ++j) {
            diag[j] = m_[j][(j + d) % slots];
            mag = std::max(mag, std::abs(diag[j]));
        }
        if (mag < 1e-12)
            continue; // skip empty diagonals
        Diagonal entry;
        entry.k = d / g_;
        entry.b = d % g_;
        // rot_{-k*g}(diag): slot j of the stored diagonal lands back
        // on diag[j] after the giant rotation by k*g.
        entry.values.resize(slots);
        std::size_t shift = entry.k * g_; // < slots since d < slots
        for (std::size_t j = 0; j < slots; ++j)
            entry.values[j] = diag[(j + slots - shift) % slots];
        diags_.push_back(std::move(entry));
    }
    TFHE_ASSERT(!diags_.empty(), "matrix was entirely zero");
    // Group by giant step; the (k, b) order also fixes the cache
    // layout of encodedDiagonals().
    std::stable_sort(diags_.begin(), diags_.end(),
                     [](const Diagonal &x, const Diagonal &y) {
                         return x.k != y.k ? x.k < y.k : x.b < y.b;
                     });

    // The distinct rotation steps apply() touches, fixed once here.
    std::vector<s64> baby, giant;
    for (const Diagonal &d : diags_) {
        if (d.b != 0)
            baby.push_back(static_cast<s64>(d.b));
        if (d.k != 0)
            giant.push_back(static_cast<s64>(d.k * g_));
    }
    babySteps_ = ckks::normalizeRotationSteps(std::move(baby));
    giantSteps_ = ckks::normalizeRotationSteps(std::move(giant));
}

LinearTransformPlan
LinearTransformPlan::specialFft(const ckks::CkksContext &ctx)
{
    return LinearTransformPlan(ctx, specialFftMatrix(ctx.encoder()));
}

LinearTransformPlan
LinearTransformPlan::specialFftInverse(const ckks::CkksContext &ctx)
{
    return LinearTransformPlan(ctx,
                               specialFftInverseMatrix(ctx.encoder()));
}

std::vector<s64>
LinearTransformPlan::requiredRotations() const
{
    return ckks::unionRotationSteps({babySteps_, giantSteps_});
}

std::size_t
LinearTransformPlan::cachedLevelCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
}

const std::vector<ckks::Plaintext> &
LinearTransformPlan::encodedDiagonals(std::size_t level_count) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(level_count);
    if (it != cache_.end())
        return it->second;
    std::vector<ckks::Plaintext> pts;
    pts.reserve(diags_.size());
    double scale = ctx_.params().scale();
    for (const Diagonal &d : diags_)
        pts.push_back(
            ctx_.encoder().encode(d.values, scale, level_count));
    return cache_.emplace(level_count, std::move(pts)).first->second;
}

ckks::Ciphertext
LinearTransformPlan::apply(const ckks::Evaluator &eval,
                           const ckks::Ciphertext &ct) const
{
    const auto &pts = encodedDiagonals(ct.levelCount());

    // Baby steps: every rot_b(ct) the plan touches, off one hoisted
    // key-switch head.
    auto baby = eval.rotateHoisted(ct, babySteps_);
    auto babyCt = [&](std::size_t b) -> const ckks::Ciphertext & {
        if (b == 0)
            return ct;
        auto it = std::lower_bound(babySteps_.begin(), babySteps_.end(),
                                   static_cast<s64>(b));
        return baby[static_cast<std::size_t>(it - babySteps_.begin())];
    };

    // Giant steps: per populated k, the plaintext products against
    // the baby rotations, then one rotation of the partial sum.
    ckks::Ciphertext acc;
    bool first_k = true;
    for (std::size_t i = 0; i < diags_.size();) {
        std::size_t k = diags_[i].k;
        ckks::Ciphertext inner;
        bool first_b = true;
        for (; i < diags_.size() && diags_[i].k == k; ++i) {
            auto term = eval.multiplyPlain(babyCt(diags_[i].b), pts[i]);
            if (first_b) {
                inner = std::move(term);
                first_b = false;
            } else {
                inner = eval.add(inner, term);
            }
        }
        auto shifted = k == 0
            ? std::move(inner)
            : eval.rotate(inner, static_cast<s64>(k * g_));
        if (first_k) {
            acc = std::move(shifted);
            first_k = false;
        } else {
            acc = eval.add(acc, shifted);
        }
    }
    return eval.rescale(acc);
}

std::vector<ckks::Ciphertext>
LinearTransformPlan::applyBatch(
    const batch::BatchedEvaluator &beval,
    const std::vector<ckks::Ciphertext> &cts) const
{
    if (cts.empty())
        return {};
    const auto &pts = encodedDiagonals(cts[0].levelCount());

    // Baby steps across the whole batch off one hoisted-batch head.
    auto baby = beval.rotateManyBatch(cts, babySteps_);
    auto babyCts =
        [&](std::size_t b) -> const std::vector<ckks::Ciphertext> & {
        if (b == 0)
            return cts;
        auto it = std::lower_bound(babySteps_.begin(), babySteps_.end(),
                                   static_cast<s64>(b));
        return baby[static_cast<std::size_t>(it - babySteps_.begin())];
    };

    std::vector<ckks::Ciphertext> acc;
    bool first_k = true;
    for (std::size_t i = 0; i < diags_.size();) {
        std::size_t k = diags_[i].k;
        std::vector<ckks::Ciphertext> inner;
        bool first_b = true;
        for (; i < diags_.size() && diags_[i].k == k; ++i) {
            auto term =
                beval.multiplyPlain(babyCts(diags_[i].b), pts[i]);
            if (first_b) {
                inner = std::move(term);
                first_b = false;
            } else {
                inner = beval.add(inner, term);
            }
        }
        auto shifted = k == 0
            ? std::move(inner)
            : beval.rotate(inner, static_cast<s64>(k * g_));
        if (first_k) {
            acc = std::move(shifted);
            first_k = false;
        } else {
            acc = beval.add(acc, shifted);
        }
    }
    return beval.rescale(acc);
}

ckks::Ciphertext
applyLinear(const ckks::CkksContext &ctx, const ckks::Evaluator &eval,
            const SlotMatrix &m, const ckks::Ciphertext &ct)
{
    LinearTransformPlan plan(ctx, m);
    return plan.apply(eval, ct);
}

} // namespace tensorfhe::boot
