/**
 * @file
 * Homomorphic sine evaluation (the Sine Evaluation stage of paper
 * Fig. 6): Taylor polynomials for sin and cos on a range-reduced
 * argument, then double-angle reconstruction, following the paper's
 * Taylor-approximation approach [8] with the standard double-angle
 * range reduction.
 */

#ifndef TENSORFHE_BOOT_SINE_HH
#define TENSORFHE_BOOT_SINE_HH

#include "ckks/crypto.hh"
#include "ckks/evaluator.hh"

namespace tensorfhe::boot
{

struct SineConfig
{
    /**
     * Taylor terms beyond the constant (6 = degree-11 sin, degree-10
     * cos, accurate to ~5e-6 on |arg| <= 2.2).
     */
    int taylorTerms = 6;
    /**
     * Double-angle steps. Each step multiplies accumulated noise by
     * ~4, so fewer doublings + a higher-degree Taylor is the better
     * precision trade (see tests/boot).
     */
    int doublings = 4;
};

/** Levels a sine evaluation consumes (for budget planning). */
std::size_t sineLevelCost(const SineConfig &cfg);

/**
 * Given ct whose slots hold real t (|t| <= ~1 after the caller's
 * pre-scaling by 1/2^doublings), return ct' with slots
 * sin(t * 2^doublings).
 */
ckks::Ciphertext evalScaledSine(const ckks::CkksContext &ctx,
                                const ckks::Evaluator &eval,
                                const ckks::Ciphertext &ct_t,
                                const SineConfig &cfg);

} // namespace tensorfhe::boot

#endif // TENSORFHE_BOOT_SINE_HH
