/**
 * @file
 * Homomorphic sine evaluation (the Sine Evaluation stage of paper
 * Fig. 6): Taylor polynomials for sin and cos on a range-reduced
 * argument, then double-angle reconstruction, following the paper's
 * Taylor-approximation approach [8] with the standard double-angle
 * range reduction.
 *
 * The evaluation is batched: the whole stream of ciphertexts (batch
 * slots x tensor chunks inside a bootstrap-in-the-loop inference)
 * rides the BatchedEvaluator's (slot x tower) work-queue through one
 * shared power ladder. Serial callers pass a one-element batch.
 */

#ifndef TENSORFHE_BOOT_SINE_HH
#define TENSORFHE_BOOT_SINE_HH

#include "batch/executor.hh"
#include "ckks/crypto.hh"
#include "ckks/evaluator.hh"

namespace tensorfhe::boot
{

struct SineConfig
{
    /**
     * Taylor terms beyond the constant (6 = degree-11 sin, degree-10
     * cos, accurate to ~5e-6 on |arg| <= 2.2).
     */
    int taylorTerms = 6;
    /**
     * Double-angle steps. Each step multiplies accumulated noise by
     * ~4, so fewer doublings + a higher-degree Taylor is the better
     * precision trade (see tests/boot).
     */
    int doublings = 4;
};

/** Levels a sine evaluation consumes, conservative upper bound (for
    chain-length checks; the exact ledger is sineLevelsUsed). */
std::size_t sineLevelCost(const SineConfig &cfg);

/** Exact levels evalScaledSine consumes from its input level (pure
    function of the ladder shape; budget planners mirror this). */
std::size_t sineLevelsUsed(const SineConfig &cfg);

/**
 * Given cts whose slots hold real t (|t| <= ~1 after the caller's
 * pre-scaling by 1/2^doublings), return cts' with slots
 * sin(t * 2^doublings), each at exactly the context scale. All
 * inputs must share one level and scale.
 */
std::vector<ckks::Ciphertext>
evalScaledSine(const ckks::CkksContext &ctx,
               const batch::BatchedEvaluator &beval,
               const std::vector<ckks::Ciphertext> &ct_t,
               const SineConfig &cfg);

/** Serial convenience: one ciphertext through the batched path. */
ckks::Ciphertext evalScaledSine(const ckks::CkksContext &ctx,
                                const batch::BatchedEvaluator &beval,
                                const ckks::Ciphertext &ct_t,
                                const SineConfig &cfg);

/** Exact executed-op counts of one evalScaledSine per batch slot. */
EvalOpCounts sineModeledOps(const SineConfig &cfg);

} // namespace tensorfhe::boot

#endif // TENSORFHE_BOOT_SINE_HH
