/**
 * @file
 * Encryption and decryption.
 */

#ifndef TENSORFHE_CKKS_CRYPTO_HH
#define TENSORFHE_CKKS_CRYPTO_HH

#include "ckks/ciphertext.hh"
#include "ckks/context.hh"

namespace tensorfhe::ckks
{

class Encryptor
{
  public:
    Encryptor(const CkksContext &ctx, const PublicKey &pk)
        : ctx_(ctx), pk_(pk)
    {}

    /** Public-key encryption of an encoded plaintext. */
    Ciphertext encrypt(const Plaintext &pt, Rng &rng) const;

  private:
    const CkksContext &ctx_;
    const PublicKey &pk_;
};

class Decryptor
{
  public:
    Decryptor(const CkksContext &ctx, const SecretKey &sk)
        : ctx_(ctx), sk_(sk)
    {}

    /** Decrypt to an encoded plaintext (scale preserved). */
    Plaintext decrypt(const Ciphertext &ct) const;

    /** Decrypt and decode in one step. */
    std::vector<Complex> decryptAndDecode(const Ciphertext &ct) const;

  private:
    const CkksContext &ctx_;
    const SecretKey &sk_;
};

} // namespace tensorfhe::ckks

#endif // TENSORFHE_CKKS_CRYPTO_HH
