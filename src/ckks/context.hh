/**
 * @file
 * CkksContext: owns the RNS tower, encoder and parameter set; issues
 * keys. Corresponds to the paper's per-instance initialization that
 * precomputes and reuses twiddle matrices (SIV-B).
 */

#ifndef TENSORFHE_CKKS_CONTEXT_HH
#define TENSORFHE_CKKS_CONTEXT_HH

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "ckks/encoder.hh"
#include "ckks/params.hh"
#include "common/rng.hh"
#include "rns/conv.hh"

namespace tensorfhe::ckks
{

/** Ternary secret key, kept in Eval domain over the full tower. */
struct SecretKey
{
    rns::RnsPolynomial eval;     ///< over all q + p limbs, Eval domain
    std::vector<s64> coeffs;     ///< signed ternary coefficients
};

/** Encryption key (b, a) with b = -a*s + e over the full q-chain. */
struct PublicKey
{
    rns::RnsPolynomial b;
    rns::RnsPolynomial a;
};

/**
 * Generalized key-switching key (paper SII-B): one (b_j, a_j) pair
 * per decomposition digit, over the full q + p basis, Eval domain.
 * Digit j's pair encrypts P * Qhat_j * target under s.
 */
struct SwitchKey
{
    std::vector<rns::RnsPolynomial> b;
    std::vector<rns::RnsPolynomial> a;

    /**
     * Process-unique identity assigned at generation; copies share
     * it (their contents are identical). Keys the context's
     * union-basis restriction cache; 0 means "never cached" (e.g. a
     * hand-assembled key).
     */
    u64 id = 0;

    std::size_t digits() const { return b.size(); }
};

/**
 * A switch key's digits restricted to one union basis — the form the
 * key-switch tail inner product consumes. Cached per (key id, level)
 * in CkksContext so repeated tails (BSGS transforms, nn layers, every
 * relinearization of a polynomial evaluation) stop re-copying the
 * digit polynomials.
 */
struct RestrictedSwitchKey
{
    std::vector<rns::RnsPolynomial> b;
    std::vector<rns::RnsPolynomial> a;
};

/** Everything the evaluator needs. */
struct KeyBundle
{
    PublicKey pk;
    SwitchKey relin;                 ///< target s^2
    std::map<s64, SwitchKey> rot;    ///< per rotation step
    SwitchKey conj;                  ///< target s(X^-1)
    /**
     * Conjugate-composed rotation keys: step r targets
     * s(X^((2N-1)*5^r)), the automorphism "conjugate then rotate by
     * r". The fused CoeffToSlot split plans of the bootstrapper ride
     * these so the sine-stage conjugation shares the double-hoisted
     * BSGS head instead of paying its own full keyswitch.
     */
    std::map<s64, SwitchKey> conjRot;
};

class CkksContext
{
  public:
    explicit CkksContext(const CkksParams &params);

    const CkksParams &params() const { return params_; }
    const rns::RnsTower &tower() const { return *tower_; }
    const CkksEncoder &encoder() const { return *encoder_; }
    std::size_t n() const { return params_.n; }
    std::size_t slots() const { return params_.slots(); }
    ntt::NttVariant nttVariant() const { return params_.nttVariant; }

    /** Galois element for rotation by r slots: 5^r mod 2N. */
    u64 galoisForRotation(s64 r) const;
    /** Galois element of complex conjugation: 2N - 1. */
    u64 galoisForConjugation() const { return 2 * params_.n - 1; }

    /** Limb indices {0..count-1} of the q-chain. */
    std::vector<std::size_t> qLimbs(std::size_t count) const;
    /** Limb indices {0..count-1} + all special limbs. */
    std::vector<std::size_t> unionLimbs(std::size_t count) const;

    /** Digit ranges [first, last) over the full q-chain. */
    struct DigitRange
    {
        std::size_t first;
        std::size_t last;
    };
    const std::vector<DigitRange> &digitRanges() const { return digits_; }

    /**
     * Dcomp scalar for digit j at q-limb i (i inside digit j):
     * (Q_L / Q_j)^-1 mod q_i.
     */
    u64 dcompScalar(std::size_t j, std::size_t i) const;

    /**
     * Key factor for digit j at flattened limb t:
     * (P * Q_L / Q_j) mod m_t.
     */
    u64 keyFactor(std::size_t j, std::size_t t) const;

    /*
     * Phase-split conversion plans, memoized per shape. Building a
     * ModUpPlan/ModDownPlan costs O(limbs^2) scalar CRT work; every
     * hoist and key-switch tail at the same level reuses the same
     * plan, so the Evaluator, BatchedEvaluator and the BSGS linear
     * transforms all share these instead of rebuilding per call.
     * Thread-safe; entries live for the context's lifetime (bounded
     * by digits x levels).
     */

    /** ModUp plan of decomposition digit `digit` at `level_count`. */
    const rns::ModUpPlan &modUpPlan(std::size_t digit,
                                    std::size_t level_count) const;
    /** ModDown plan of the union basis at `level_count`. */
    const rns::ModDownPlan &modDownPlan(std::size_t level_count) const;

    /**
     * `key`'s digits restricted to the union basis of `level_count`,
     * memoized per (key id, level). Keys with id 0 are restricted
     * fresh on every call (never cached). The cache is bounded: when
     * it exceeds an internal cap the oldest entries are dropped —
     * returned values stay alive through the shared_ptr regardless.
     */
    std::shared_ptr<const RestrictedSwitchKey>
    restrictedKey(const SwitchKey &key, std::size_t level_count) const;

    /** Cache sizes, exposed for tests and capacity audits. */
    std::size_t modUpPlanCacheSize() const;
    std::size_t modDownPlanCacheSize() const;
    std::size_t keyRestrictionCacheSize() const;

    SecretKey generateSecretKey(Rng &rng) const;
    PublicKey generatePublicKey(const SecretKey &sk, Rng &rng) const;
    /** Key switching s' -> s for an arbitrary target polynomial. */
    SwitchKey generateSwitchKey(const rns::RnsPolynomial &target_eval,
                                const SecretKey &sk, Rng &rng) const;
    SwitchKey generateRelinKey(const SecretKey &sk, Rng &rng) const;
    SwitchKey generateRotationKey(const SecretKey &sk, s64 step,
                                  Rng &rng) const;
    SwitchKey generateConjugationKey(const SecretKey &sk, Rng &rng) const;
    /** Key for the composed automorphism conjugate-then-rotate(step). */
    SwitchKey generateConjRotationKey(const SecretKey &sk, s64 step,
                                      Rng &rng) const;

    /** Galois element of conjugate-then-rotate(step). */
    u64 galoisForConjRotation(s64 step) const;

    /**
     * pk + relin + rotation keys for the given steps + conjugation
     * (+ conjugate-composed rotation keys for `conj_rotations`).
     */
    KeyBundle generateKeys(const SecretKey &sk, Rng &rng,
                           const std::vector<s64> &rotations = {},
                           const std::vector<s64> &conj_rotations = {})
        const;

  private:
    CkksParams params_;
    std::unique_ptr<rns::RnsTower> tower_;
    std::unique_ptr<CkksEncoder> encoder_;
    std::vector<DigitRange> digits_;
    // dcomp_[j][i - digits_[j].first] and keyFactor_[j][t].
    std::vector<std::vector<u64>> dcomp_;
    std::vector<std::vector<u64>> keyFactor_;

    mutable std::mutex planMu_;
    mutable std::map<std::pair<std::size_t, std::size_t>,
                     std::unique_ptr<rns::ModUpPlan>>
        modUpPlans_; ///< keyed by (digit, level_count)
    mutable std::map<std::size_t, std::unique_ptr<rns::ModDownPlan>>
        modDownPlans_; ///< keyed by level_count
    /// Keyed by (key id, level_count); insertion-ordered for the
    /// FIFO eviction that bounds resident restricted-key bytes.
    mutable std::map<std::pair<u64, std::size_t>,
                     std::shared_ptr<const RestrictedSwitchKey>>
        keyRestrictions_;
    mutable std::vector<std::pair<u64, std::size_t>>
        keyRestrictionOrder_;
};

} // namespace tensorfhe::ckks

#endif // TENSORFHE_CKKS_CONTEXT_HH
