/**
 * @file
 * CKKS canonical-embedding encoder: N/2 complex slots <-> an integer
 * polynomial in R_Q, via the special FFT over the 5^j orbit of
 * 2N-th roots of unity (paper SII-B, Eq. 5).
 */

#ifndef TENSORFHE_CKKS_ENCODER_HH
#define TENSORFHE_CKKS_ENCODER_HH

#include <complex>
#include <vector>

#include "rns/rns_poly.hh"

namespace tensorfhe::ckks
{

using Complex = std::complex<double>;

/** A scaled encoded message. */
struct Plaintext
{
    rns::RnsPolynomial poly; ///< Eval domain
    double scale = 0.0;

    std::size_t levelCount() const { return poly.numLimbs(); }
};

class CkksEncoder
{
  public:
    explicit CkksEncoder(const rns::RnsTower &tower);

    std::size_t slots() const { return slots_; }

    /**
     * Encode up to N/2 complex values (zero-padded) at the given
     * scale into a Plaintext over limbs {0 .. level_count-1}.
     */
    Plaintext encode(const std::vector<Complex> &values, double scale,
                     std::size_t level_count) const;

    /** Encode a constant into every slot. */
    Plaintext encodeConstant(Complex value, double scale,
                             std::size_t level_count) const;

    /**
     * Encode over an arbitrary tower limb set (e.g. the key-switch
     * union basis {q_0..q_{l-1}, p_*}). Same rounding as encode() —
     * the integer coefficient vector is identical, only the residue
     * set differs — so restricting the result to the q-limbs matches
     * encode() bit for bit. The double-hoisted BSGS path uses this to
     * multiply diagonals into pre-ModDown (extended-basis)
     * accumulators.
     */
    Plaintext encodeOnLimbs(const std::vector<Complex> &values,
                            double scale,
                            const std::vector<std::size_t> &limbs) const;

    /**
     * Decode back to N/2 complex values. Uses CRT reconstruction over
     * the first min(2, limbs) limbs; valid while coefficient
     * magnitudes stay below q_0*q_1 / 2 (see DESIGN.md SS8).
     */
    std::vector<Complex> decode(const Plaintext &pt) const;

    /** Forward special FFT (decode direction), exposed for tests. */
    void fftSpecial(std::vector<Complex> &vals) const;
    /** Inverse special FFT (encode direction), exposed for tests. */
    void fftSpecialInv(std::vector<Complex> &vals) const;

  private:
    const rns::RnsTower &tower_;
    std::size_t slots_;
    std::vector<std::size_t> rotGroup_; ///< 5^j mod 2N
    std::vector<Complex> ksiPows_;      ///< exp(2 pi i j / 2N)
};

} // namespace tensorfhe::ckks

#endif // TENSORFHE_CKKS_ENCODER_HH
