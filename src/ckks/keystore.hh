/**
 * @file
 * KeyStore: the evaluator-facing source of key-switching keys.
 *
 * Two modes behind one lookup interface:
 *
 *  - STATIC VIEW over a pre-generated KeyBundle (the historical
 *    contract): serves exactly the bundle's keys, generates nothing,
 *    and returns null for any step the bundle lacks. Zero overhead —
 *    lookups alias the caller-owned bundle.
 *
 *  - ON-DEMAND: rotation and conjugate-rotation keys are generated
 *    lazily from the secret key the first time a step is requested,
 *    with at most `capacity` generated keys resident (LRU eviction;
 *    keys handed out stay alive through their shared_ptr pins
 *    regardless). Generation is DETERMINISTIC: the per-key RNG is
 *    seeded from (store seed, galois element, branch), and the
 *    SwitchKey id assigned on first generation is remembered, so a
 *    key regenerated after eviction is bit-identical — including the
 *    id that keys the context's restricted-key cache, which therefore
 *    stays coherent across evictions. Key generation passes the
 *    "keystore/generate" fault point and retries transient failures
 *    (bounded), so a fault-injected keygen never corrupts the store.
 *
 * The on-demand mode is what frees the BSGS stride chooser from the
 * root-stride key-pattern constraint: a planner-chosen stride may
 * rotate by any step, and the store materializes exactly the keys the
 * run touches instead of an analytic superset.
 */

#ifndef TENSORFHE_CKKS_KEYSTORE_HH
#define TENSORFHE_CKKS_KEYSTORE_HH

#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "ckks/context.hh"

namespace tensorfhe::ckks
{

class KeyStore
{
  public:
    /**
     * Static view: serves exactly `keys`' pre-generated keys.
     * `keys` must outlive the store (the Dispatcher contract).
     */
    explicit KeyStore(const KeyBundle &keys);

    /**
     * On-demand store: pk/relin/conj (and any pre-generated rotation
     * keys) come from `base`; missing rotation / conjugate-rotation
     * keys are generated deterministically from `seed` on first
     * request, at most `capacity` generated keys resident (LRU;
     * capacity 0 = unbounded).
     */
    KeyStore(const CkksContext &ctx, SecretKey sk, KeyBundle base,
             u64 seed, std::size_t capacity);

    KeyStore(const KeyStore &) = delete;
    KeyStore &operator=(const KeyStore &) = delete;

    const SwitchKey &relin() const { return base().relin; }
    const SwitchKey &conj() const { return base().conj; }

    /**
     * Rotation key for `step` (normalized, nonzero). Null when a
     * static store lacks the key; an on-demand store always serves
     * it (generating if needed). The returned pin keeps the key
     * alive through LRU eviction.
     */
    std::shared_ptr<const SwitchKey> rotation(s64 step) const;

    /** Conjugate-composed rotation key for `step` (step 0 is the
        plain conjugation — use conj()). */
    std::shared_ptr<const SwitchKey> conjRotation(s64 step) const;

    bool onDemand() const { return ctx_ != nullptr; }
    std::size_t capacity() const { return capacity_; }

    /** Generated keys currently resident (on-demand mode). */
    std::size_t residentGenerated() const;
    /** Total generation events, counting regenerations. */
    std::size_t generationEvents() const;
    /** Keys dropped by the LRU cap so far. */
    std::size_t evictions() const;

  private:
    const KeyBundle &
    base() const
    {
        return owned_ ? *owned_ : *view_;
    }

    std::shared_ptr<const SwitchKey>
    lookup(const std::map<s64, SwitchKey> &pre, s64 step,
           bool conj_branch) const;

    SwitchKey generate(s64 step, bool conj_branch) const;

    const CkksContext *ctx_ = nullptr; ///< null = static view
    const KeyBundle *view_ = nullptr;  ///< static mode, caller-owned
    std::unique_ptr<KeyBundle> owned_; ///< on-demand mode
    SecretKey sk_;
    u64 seed_ = 0;
    std::size_t capacity_ = 0;

    struct CacheKey
    {
        s64 step;
        bool conj;
        bool
        operator<(const CacheKey &o) const
        {
            return step != o.step ? step < o.step : conj < o.conj;
        }
    };

    mutable std::mutex mu_;
    /// MRU-first recency list of generated keys; cache_ points in.
    mutable std::list<std::pair<CacheKey,
                                std::shared_ptr<const SwitchKey>>>
        lru_;
    mutable std::map<CacheKey, decltype(lru_)::iterator> cache_;
    /// First-generation ids, remembered forever so regeneration is
    /// bit-identical (including the restricted-key-cache id).
    mutable std::map<CacheKey, u64> ids_;
    mutable std::size_t generations_ = 0;
    mutable std::size_t evictions_ = 0;
};

} // namespace tensorfhe::ckks

#endif // TENSORFHE_CKKS_KEYSTORE_HH
