#include "ckks/context.hh"

#include <atomic>

#include "common/logging.hh"

namespace tensorfhe::ckks
{

namespace
{

/** Process-unique SwitchKey ids; 0 is reserved for "uncached". */
u64
nextSwitchKeyId()
{
    static std::atomic<u64> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/**
 * Resident restricted-key cap. Each entry holds digits x union-basis
 * polynomials, so the cache is bounded FIFO rather than unbounded;
 * production deployments would size this from the key-VRAM budget.
 */
constexpr std::size_t kMaxKeyRestrictions = 128;

} // namespace

CkksContext::CkksContext(const CkksParams &params) : params_(params)
{
    params_.validate();
    tower_ = std::make_unique<rns::RnsTower>(params_.towerConfig());
    encoder_ = std::make_unique<CkksEncoder>(*tower_);

    // Digit partition of the full q-chain.
    std::size_t alpha = params_.alpha();
    std::size_t num_q = tower_->numQ();
    for (std::size_t first = 0; first < num_q; first += alpha)
        digits_.push_back({first, std::min(first + alpha, num_q)});

    // Dcomp scalars: (Q_L / Q_j)^-1 mod q_i for i in digit j, where
    // Q_L / Q_j is the product of every q-prime outside digit j.
    dcomp_.resize(digits_.size());
    keyFactor_.resize(digits_.size());
    for (std::size_t j = 0; j < digits_.size(); ++j) {
        const auto &d = digits_[j];
        dcomp_[j].resize(d.last - d.first);
        for (std::size_t i = d.first; i < d.last; ++i) {
            const Modulus &mod = tower_->modulus(i);
            u64 prod = 1;
            for (std::size_t i2 = 0; i2 < num_q; ++i2) {
                if (i2 < d.first || i2 >= d.last)
                    prod = mod.mul(prod, tower_->prime(i2) % mod.value());
            }
            dcomp_[j][i - d.first] = mod.inv(prod);
        }
        // Key factors P * (Q_L / Q_j) mod every tower limb.
        keyFactor_[j].resize(tower_->numTotal());
        for (std::size_t t = 0; t < tower_->numTotal(); ++t) {
            const Modulus &mod = tower_->modulus(t);
            u64 prod = tower_->pModQ(t); // P mod m_t
            for (std::size_t i2 = 0; i2 < num_q; ++i2) {
                if (i2 < d.first || i2 >= d.last)
                    prod = mod.mul(prod, tower_->prime(i2) % mod.value());
            }
            keyFactor_[j][t] = prod;
        }
    }
}

u64
CkksContext::galoisForRotation(s64 r) const
{
    u64 m = 2 * params_.n;
    std::size_t slots = params_.slots();
    // Normalize r into [0, slots).
    s64 rr = ((r % static_cast<s64>(slots)) + static_cast<s64>(slots))
        % static_cast<s64>(slots);
    u64 g = 1;
    for (s64 i = 0; i < rr; ++i)
        g = (g * 5) % m;
    return g;
}

std::vector<std::size_t>
CkksContext::qLimbs(std::size_t count) const
{
    TFHE_ASSERT(count <= tower_->numQ());
    std::vector<std::size_t> limbs(count);
    for (std::size_t i = 0; i < count; ++i)
        limbs[i] = i;
    return limbs;
}

std::vector<std::size_t>
CkksContext::unionLimbs(std::size_t count) const
{
    auto limbs = qLimbs(count);
    for (std::size_t k = 0; k < tower_->numP(); ++k)
        limbs.push_back(tower_->specialIndex(k));
    return limbs;
}

u64
CkksContext::dcompScalar(std::size_t j, std::size_t i) const
{
    const auto &d = digits_[j];
    TFHE_ASSERT(i >= d.first && i < d.last);
    return dcomp_[j][i - d.first];
}

const rns::ModUpPlan &
CkksContext::modUpPlan(std::size_t digit, std::size_t level_count) const
{
    requireArg(digit < digits_.size(), "digit index out of range");
    std::size_t first = digits_[digit].first;
    requireArg(first < level_count,
               "digit ", digit, " empty at level count ", level_count);
    std::lock_guard<std::mutex> lock(planMu_);
    auto key = std::make_pair(digit, level_count);
    auto it = modUpPlans_.find(key);
    if (it == modUpPlans_.end()) {
        std::vector<std::size_t> digit_limbs;
        for (std::size_t i = first;
             i < std::min(digits_[digit].last, level_count); ++i)
            digit_limbs.push_back(i);
        it = modUpPlans_
                 .emplace(key, std::make_unique<rns::ModUpPlan>(
                                   *tower_, std::move(digit_limbs),
                                   level_count))
                 .first;
    }
    return *it->second;
}

const rns::ModDownPlan &
CkksContext::modDownPlan(std::size_t level_count) const
{
    std::lock_guard<std::mutex> lock(planMu_);
    auto it = modDownPlans_.find(level_count);
    if (it == modDownPlans_.end())
        it = modDownPlans_
                 .emplace(level_count,
                          std::make_unique<rns::ModDownPlan>(
                              *tower_, unionLimbs(level_count)))
                 .first;
    return *it->second;
}

std::shared_ptr<const RestrictedSwitchKey>
CkksContext::restrictedKey(const SwitchKey &key,
                           std::size_t level_count) const
{
    auto build = [&] {
        auto union_limbs = unionLimbs(level_count);
        auto out = std::make_shared<RestrictedSwitchKey>();
        out->b.reserve(key.digits());
        out->a.reserve(key.digits());
        for (std::size_t j = 0; j < key.digits(); ++j) {
            out->b.push_back(
                rns::restrictToLimbs(key.b[j], union_limbs));
            out->a.push_back(
                rns::restrictToLimbs(key.a[j], union_limbs));
        }
        return out;
    };
    if (key.id == 0)
        return build();

    auto map_key = std::make_pair(key.id, level_count);
    {
        std::lock_guard<std::mutex> lock(planMu_);
        auto it = keyRestrictions_.find(map_key);
        if (it != keyRestrictions_.end())
            return it->second;
    }
    // Build outside the lock: restriction copies digits x union-basis
    // polynomials and must not serialize concurrent evaluators.
    auto restricted = build();
    std::lock_guard<std::mutex> lock(planMu_);
    auto [it, inserted] =
        keyRestrictions_.emplace(map_key, restricted);
    if (inserted) {
        keyRestrictionOrder_.push_back(map_key);
        while (keyRestrictionOrder_.size() > kMaxKeyRestrictions) {
            keyRestrictions_.erase(keyRestrictionOrder_.front());
            keyRestrictionOrder_.erase(keyRestrictionOrder_.begin());
        }
    }
    return it->second;
}

std::size_t
CkksContext::modUpPlanCacheSize() const
{
    std::lock_guard<std::mutex> lock(planMu_);
    return modUpPlans_.size();
}

std::size_t
CkksContext::modDownPlanCacheSize() const
{
    std::lock_guard<std::mutex> lock(planMu_);
    return modDownPlans_.size();
}

std::size_t
CkksContext::keyRestrictionCacheSize() const
{
    std::lock_guard<std::mutex> lock(planMu_);
    return keyRestrictions_.size();
}

u64
CkksContext::keyFactor(std::size_t j, std::size_t t) const
{
    return keyFactor_[j][t];
}

SecretKey
CkksContext::generateSecretKey(Rng &rng) const
{
    SecretKey sk;
    sk.coeffs.assign(params_.n, 0);
    if (params_.secretHamming == 0) {
        for (auto &c : sk.coeffs)
            c = rng.sampleTernary();
    } else {
        // Sparse ternary secret with exactly `secretHamming`
        // nonzeros (bootstrap-friendly).
        std::size_t placed = 0;
        while (placed < params_.secretHamming) {
            std::size_t pos = rng.uniform(params_.n);
            if (sk.coeffs[pos] != 0)
                continue;
            sk.coeffs[pos] = rng.uniform(2) == 0 ? 1 : -1;
            ++placed;
        }
    }
    std::vector<std::size_t> all(tower_->numTotal());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    sk.eval = rns::liftSigned(*tower_, all, sk.coeffs);
    sk.eval.toEval(params_.nttVariant);
    return sk;
}

namespace
{

/** Gaussian error over the given limbs, Eval domain. */
rns::RnsPolynomial
errorPoly(const rns::RnsTower &tower,
          const std::vector<std::size_t> &limbs, double sigma, Rng &rng,
          ntt::NttVariant v)
{
    std::vector<s64> e(tower.n());
    for (auto &c : e)
        c = rng.sampleGaussianInt(sigma);
    auto poly = rns::liftSigned(tower, limbs, e);
    poly.toEval(v);
    return poly;
}

/** Restrict a full-tower Eval polynomial to the given limb indices. */
rns::RnsPolynomial
restrictLimbs(const rns::RnsPolynomial &full,
              const std::vector<std::size_t> &limbs)
{
    rns::RnsPolynomial out(full.tower(), limbs, full.domain());
    for (std::size_t i = 0; i < limbs.size(); ++i) {
        // Full-tower polys use identity limb indexing.
        TFHE_ASSERT(full.limbIndex(limbs[i]) == limbs[i]);
        std::copy(full.limb(limbs[i]), full.limb(limbs[i]) + full.n(),
                  out.limb(i));
    }
    return out;
}

} // namespace

PublicKey
CkksContext::generatePublicKey(const SecretKey &sk, Rng &rng) const
{
    auto limbs = qLimbs(tower_->numQ());
    PublicKey pk;
    pk.a = rns::sampleUniform(*tower_, limbs, rns::Domain::Eval, rng);
    pk.b = errorPoly(*tower_, limbs, params_.sigma, rng,
                     params_.nttVariant);
    // b = e - a*s.
    auto s = restrictLimbs(sk.eval, limbs);
    auto as = pk.a;
    rns::hadaMultInPlace(as, s);
    rns::eleSubInPlace(pk.b, as);
    return pk;
}

SwitchKey
CkksContext::generateSwitchKey(const rns::RnsPolynomial &target_eval,
                               const SecretKey &sk, Rng &rng) const
{
    TFHE_ASSERT(target_eval.domain() == rns::Domain::Eval);
    TFHE_ASSERT(target_eval.numLimbs() == tower_->numTotal(),
                "switch-key target must live on the full tower");
    auto limbs = unionLimbs(tower_->numQ());
    SwitchKey key;
    for (std::size_t j = 0; j < digits_.size(); ++j) {
        auto a = rns::sampleUniform(*tower_, limbs, rns::Domain::Eval,
                                    rng);
        auto b = errorPoly(*tower_, limbs, params_.sigma, rng,
                           params_.nttVariant);
        // b = e - a*s + factor_j * target.
        auto s = restrictLimbs(sk.eval, limbs);
        auto as = a;
        rns::hadaMultInPlace(as, s);
        rns::eleSubInPlace(b, as);
        auto scaled = restrictLimbs(target_eval, limbs);
        std::vector<u64> factors(limbs.size());
        for (std::size_t t = 0; t < limbs.size(); ++t)
            factors[t] = keyFactor(j, limbs[t]);
        rns::mulScalarInPlace(scaled, factors);
        rns::eleAddInPlace(b, scaled);
        key.a.push_back(std::move(a));
        key.b.push_back(std::move(b));
    }
    key.id = nextSwitchKeyId();
    return key;
}

SwitchKey
CkksContext::generateRelinKey(const SecretKey &sk, Rng &rng) const
{
    auto s2 = sk.eval;
    rns::hadaMultInPlace(s2, sk.eval);
    return generateSwitchKey(s2, sk, rng);
}

SwitchKey
CkksContext::generateRotationKey(const SecretKey &sk, s64 step,
                                 Rng &rng) const
{
    u64 galois = galoisForRotation(step);
    auto rotated = rns::applyAutomorphism(sk.eval, galois);
    return generateSwitchKey(rotated, sk, rng);
}

SwitchKey
CkksContext::generateConjugationKey(const SecretKey &sk, Rng &rng) const
{
    auto conj = rns::applyAutomorphism(sk.eval, galoisForConjugation());
    return generateSwitchKey(conj, sk, rng);
}

u64
CkksContext::galoisForConjRotation(s64 step) const
{
    u64 m = 2 * params_.n;
    return (galoisForConjugation() * galoisForRotation(step)) % m;
}

SwitchKey
CkksContext::generateConjRotationKey(const SecretKey &sk, s64 step,
                                     Rng &rng) const
{
    auto target =
        rns::applyAutomorphism(sk.eval, galoisForConjRotation(step));
    return generateSwitchKey(target, sk, rng);
}

KeyBundle
CkksContext::generateKeys(const SecretKey &sk, Rng &rng,
                          const std::vector<s64> &rotations,
                          const std::vector<s64> &conj_rotations) const
{
    KeyBundle bundle;
    bundle.pk = generatePublicKey(sk, rng);
    bundle.relin = generateRelinKey(sk, rng);
    for (s64 r : rotations)
        bundle.rot.emplace(r, generateRotationKey(sk, r, rng));
    bundle.conj = generateConjugationKey(sk, rng);
    for (s64 r : conj_rotations)
        bundle.conjRot.emplace(r, generateConjRotationKey(sk, r, rng));
    return bundle;
}

} // namespace tensorfhe::ckks
