/**
 * @file
 * Shared rotation-step set algebra. Every workload component that
 * needs Galois keys (the LR trainer, the bootstrapper's BSGS plans,
 * the nn layer stacks) computes its own step list; key generation
 * wants the deduplicated union so no Galois key is ever generated
 * twice across components.
 */

#ifndef TENSORFHE_CKKS_ROTATIONS_HH
#define TENSORFHE_CKKS_ROTATIONS_HH

#include <vector>

#include "common/types.hh"

namespace tensorfhe::ckks
{

/**
 * Canonicalize one step list: normalize each step into [0, slots)
 * (negative steps wrap), drop zero steps, sort, dedup. With slots ==
 * 0 the steps are assumed pre-normalized and only sorted/deduped.
 */
std::vector<s64> normalizeRotationSteps(std::vector<s64> steps,
                                        std::size_t slots = 0);

/**
 * Union of several step lists, canonicalized as above — the set a
 * KeyBundle must cover so every contributing component can run.
 */
std::vector<s64>
unionRotationSteps(const std::vector<std::vector<s64>> &lists,
                   std::size_t slots = 0);

} // namespace tensorfhe::ckks

#endif // TENSORFHE_CKKS_ROTATIONS_HH
