#include "ckks/encoder.hh"

#include <cmath>

#include "common/logging.hh"

namespace tensorfhe::ckks
{

CkksEncoder::CkksEncoder(const rns::RnsTower &tower)
    : tower_(tower), slots_(tower.n() / 2)
{
    std::size_t m = 2 * tower.n();
    rotGroup_.resize(slots_);
    std::size_t five = 1;
    for (std::size_t j = 0; j < slots_; ++j) {
        rotGroup_[j] = five;
        five = (five * 5) % m;
    }
    ksiPows_.resize(m + 1);
    for (std::size_t j = 0; j <= m; ++j) {
        double angle = 2.0 * M_PI * static_cast<double>(j)
            / static_cast<double>(m);
        ksiPows_[j] = Complex(std::cos(angle), std::sin(angle));
    }
}

namespace
{

void
arrayBitReverse(std::vector<Complex> &vals)
{
    std::size_t n = vals.size();
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j >= bit; bit >>= 1)
            j -= bit;
        j += bit;
        if (i < j)
            std::swap(vals[i], vals[j]);
    }
}

} // namespace

void
CkksEncoder::fftSpecial(std::vector<Complex> &vals) const
{
    std::size_t size = vals.size();
    std::size_t m = 2 * tower_.n();
    arrayBitReverse(vals);
    for (std::size_t len = 2; len <= size; len <<= 1) {
        std::size_t lenh = len >> 1;
        std::size_t lenq = len << 2;
        for (std::size_t i = 0; i < size; i += len) {
            for (std::size_t j = 0; j < lenh; ++j) {
                std::size_t idx =
                    (rotGroup_[j] % lenq) * (m / lenq);
                Complex u = vals[i + j];
                Complex v = vals[i + j + lenh] * ksiPows_[idx];
                vals[i + j] = u + v;
                vals[i + j + lenh] = u - v;
            }
        }
    }
}

void
CkksEncoder::fftSpecialInv(std::vector<Complex> &vals) const
{
    std::size_t size = vals.size();
    std::size_t m = 2 * tower_.n();
    for (std::size_t len = size; len >= 2; len >>= 1) {
        std::size_t lenh = len >> 1;
        std::size_t lenq = len << 2;
        for (std::size_t i = 0; i < size; i += len) {
            for (std::size_t j = 0; j < lenh; ++j) {
                std::size_t idx =
                    (lenq - (rotGroup_[j] % lenq)) * (m / lenq);
                Complex u = vals[i + j] + vals[i + j + lenh];
                Complex v =
                    (vals[i + j] - vals[i + j + lenh]) * ksiPows_[idx];
                vals[i + j] = u;
                vals[i + j + lenh] = v;
            }
        }
    }
    arrayBitReverse(vals);
    double inv = 1.0 / static_cast<double>(size);
    for (auto &v : vals)
        v *= inv;
}

Plaintext
CkksEncoder::encode(const std::vector<Complex> &values, double scale,
                    std::size_t level_count) const
{
    requireArg(level_count >= 1 && level_count <= tower_.numQ(),
               "bad level count");
    std::vector<std::size_t> limbs(level_count);
    for (std::size_t i = 0; i < level_count; ++i)
        limbs[i] = i;
    return encodeOnLimbs(values, scale, limbs);
}

Plaintext
CkksEncoder::encodeOnLimbs(const std::vector<Complex> &values,
                           double scale,
                           const std::vector<std::size_t> &limbs) const
{
    requireArg(values.size() <= slots_, "too many values for N/2 slots");
    requireArg(scale > 0, "scale must be positive");
    requireArg(!limbs.empty(), "need at least one limb");

    std::vector<Complex> vals(slots_, Complex(0, 0));
    std::copy(values.begin(), values.end(), vals.begin());
    fftSpecialInv(vals);

    std::vector<s64> coeffs(tower_.n());
    for (std::size_t j = 0; j < slots_; ++j) {
        coeffs[j] = static_cast<s64>(std::llround(vals[j].real() * scale));
        coeffs[j + slots_] =
            static_cast<s64>(std::llround(vals[j].imag() * scale));
    }

    Plaintext pt{rns::liftSigned(tower_, limbs, coeffs), scale};
    pt.poly.toEval();
    return pt;
}

Plaintext
CkksEncoder::encodeConstant(Complex value, double scale,
                            std::size_t level_count) const
{
    std::vector<Complex> vals(slots_, value);
    return encode(vals, scale, level_count);
}

std::vector<Complex>
CkksEncoder::decode(const Plaintext &pt) const
{
    requireArg(pt.scale > 0, "plaintext has no scale");
    rns::RnsPolynomial poly = pt.poly;
    poly.toCoeff();

    std::size_t n = tower_.n();
    std::vector<double> centered(n);
    if (poly.numLimbs() == 1) {
        u64 q = poly.limbModulus(0).value();
        for (std::size_t c = 0; c < n; ++c) {
            u64 v = poly.limb(0)[c];
            centered[c] = v <= q / 2
                ? static_cast<double>(v)
                : -static_cast<double>(q - v);
        }
    } else {
        // CRT over the first two limbs: exact while |coeff| < q0*q1/2.
        u64 q0 = poly.limbModulus(0).value();
        u64 q1 = poly.limbModulus(1).value();
        u128 q01 = static_cast<u128>(q0) * q1;
        u64 q0_inv_mod_q1 = invMod(q0 % q1, q1);
        for (std::size_t c = 0; c < n; ++c) {
            u64 r0 = poly.limb(0)[c];
            u64 r1 = poly.limb(1)[c];
            // x = r0 + q0 * ((r1 - r0) * q0^-1 mod q1)
            u64 t = mulMod(subMod(r1, r0 % q1, q1), q0_inv_mod_q1, q1);
            u128 x = static_cast<u128>(r0) + static_cast<u128>(q0) * t;
            centered[c] = x <= q01 / 2
                ? static_cast<double>(x)
                : -static_cast<double>(q01 - x);
        }
    }

    std::vector<Complex> vals(slots_);
    for (std::size_t j = 0; j < slots_; ++j) {
        vals[j] = Complex(centered[j] / pt.scale,
                          centered[j + slots_] / pt.scale);
    }
    fftSpecial(vals);
    return vals;
}

} // namespace tensorfhe::ckks
