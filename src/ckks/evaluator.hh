/**
 * @file
 * The CKKS evaluator: every operation of the paper's hierarchical
 * reconstruction (Table II, Algs. 1-6) — HADD, HSUB, CMULT, HMULT,
 * RESCALE, HROTATE, Conjugate — composed from the reusable kernels
 * (NTT, Hada-Mult, Ele-Add, Ele-Sub, ForbeniusMap, Conv).
 */

#ifndef TENSORFHE_CKKS_EVALUATOR_HH
#define TENSORFHE_CKKS_EVALUATOR_HH

#include <map>

#include "ckks/ciphertext.hh"
#include "ckks/context.hh"

namespace tensorfhe::ckks
{

class Evaluator
{
  public:
    /**
     * @param keys must outlive the evaluator; rotation keys are
     *             looked up per step on demand.
     */
    Evaluator(const CkksContext &ctx, const KeyBundle &keys)
        : ctx_(ctx), keys_(keys)
    {}

    /** HADD (paper Alg. 5). */
    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;
    /** Element-wise subtraction. */
    Ciphertext sub(const Ciphertext &a, const Ciphertext &b) const;
    /** Ciphertext-plaintext addition (scales must match). */
    Ciphertext addPlain(const Ciphertext &a, const Plaintext &p) const;
    Ciphertext subPlain(const Ciphertext &a, const Plaintext &p) const;

    /** CMULT (paper Alg. 3): ciphertext x plaintext. */
    Ciphertext multiplyPlain(const Ciphertext &a,
                             const Plaintext &p) const;

    /** HMULT (paper Alg. 2): ciphertext x ciphertext + relin. */
    Ciphertext multiply(const Ciphertext &a, const Ciphertext &b) const;

    /** HMULT followed by RESCALE. */
    Ciphertext multiplyRescale(const Ciphertext &a,
                               const Ciphertext &b) const;

    /** RESCALE (paper Alg. 6): drop the last limb, divide the scale. */
    Ciphertext rescale(const Ciphertext &a) const;

    /** Drop limbs without scaling (level alignment). */
    Ciphertext dropToLevelCount(const Ciphertext &a,
                                std::size_t level_count) const;

    /** HROTATE (paper Alg. 4): rotate slots left by `step`. */
    Ciphertext rotate(const Ciphertext &a, s64 step) const;

    /** Complex conjugation of every slot. */
    Ciphertext conjugate(const Ciphertext &a) const;

    /** Negate all slots. */
    Ciphertext negate(const Ciphertext &a) const;

    /** Multiply by a real constant (scales by the context scale). */
    Ciphertext multiplyConst(const Ciphertext &a, double c) const;

    /**
     * Multiply by a real constant and rescale so the result lands at
     * exactly `target_scale` (the plaintext scale is chosen as
     * target * q_last / a.scale). The standard way to keep parallel
     * branches addable despite unequal prime chains.
     */
    Ciphertext multiplyConstToScale(const Ciphertext &a, double c,
                                    double target_scale) const;

    /** Add a real constant to every slot. */
    Ciphertext addConst(const Ciphertext &a, double c) const;

    /**
     * KeySwitch (paper Alg. 1): Dcomp -> ModUp -> Inner-product ->
     * ModDown. Returns (ks0, ks1) with ks0 + ks1*s ~ d * target.
     * Exposed publicly because HMULT, HROTATE and Bootstrap all
     * reuse it, as in the paper's kernel reconstruction.
     */
    std::pair<rns::RnsPolynomial, rns::RnsPolynomial>
    keySwitch(const rns::RnsPolynomial &d, const SwitchKey &key) const;

  private:
    void requireCompatible(const Ciphertext &a,
                           const Ciphertext &b) const;

    const CkksContext &ctx_;
    const KeyBundle &keys_;
};

} // namespace tensorfhe::ckks

#endif // TENSORFHE_CKKS_EVALUATOR_HH
