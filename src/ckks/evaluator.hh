/**
 * @file
 * The CKKS evaluator: every operation of the paper's hierarchical
 * reconstruction (Table II, Algs. 1-6) — HADD, HSUB, CMULT, HMULT,
 * RESCALE, HROTATE, Conjugate — composed from the reusable kernels
 * (NTT, Hada-Mult, Ele-Add, Ele-Sub, FrobeniusMap, Conv).
 *
 * Since the unified-dispatch refactor this class is a thin batch-1
 * façade over exec::Dispatcher: it validates arguments and delegates
 * to the same span-kernel path batch::BatchedEvaluator uses, so the
 * serial and batched engines cannot drift — they are one
 * implementation. Results are bit-identical to the pre-refactor
 * serial evaluator (the kernels reorder work, never arithmetic).
 */

#ifndef TENSORFHE_CKKS_EVALUATOR_HH
#define TENSORFHE_CKKS_EVALUATOR_HH

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "ckks/ciphertext.hh"
#include "ckks/context.hh"
#include "exec/dispatch.hh"

namespace tensorfhe::ckks
{

/**
 * The reusable product of the expensive key-switch head (Halevi-Shoup
 * hoisting): the decomposed, Dcomp-scaled, ModUp-extended, NTT-domain
 * digits of one input polynomial. Because the Galois automorphism is
 * a pure slot permutation in the Eval domain, one hoist serves every
 * rotation step of the same input: each step pays only the digit
 * permutation, the key inner product, and ModDown — the Dcomp, ModUp
 * and forward-NTT work (the bulk of HROTATE, paper Fig. 11) is paid
 * once instead of once per rotation.
 */
struct HoistedDigits
{
    std::vector<rns::RnsPolynomial> digits; ///< Eval domain, union basis
    std::size_t levelCount = 0; ///< active q-limbs of the hoisted input
};

class Evaluator
{
  public:
    /**
     * @param keys must outlive the evaluator; rotation keys are
     *             looked up per step on demand.
     */
    Evaluator(const CkksContext &ctx, const KeyBundle &keys);

    /** Evaluator over an explicit key store (e.g. an on-demand
        ckks::KeyStore generating rotation keys lazily). */
    Evaluator(const CkksContext &ctx,
              std::shared_ptr<const KeyStore> store);

    /**
     * Façade over an existing dispatcher (shares its pool, workspace
     * arena and key store): batch::BatchedEvaluator uses this so its
     * scalar() view runs on the same engine instead of a duplicate.
     */
    Evaluator(const CkksContext &ctx,
              std::shared_ptr<exec::Dispatcher> disp);

    /** Deprecated-compatible form of the dispatcher façade (the key
        bundle rides inside the dispatcher already). */
    Evaluator(const CkksContext &ctx, const KeyBundle &keys,
              std::shared_ptr<exec::Dispatcher> disp);

    /** HADD (paper Alg. 5). */
    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;
    /** Element-wise subtraction. */
    Ciphertext sub(const Ciphertext &a, const Ciphertext &b) const;
    /** Ciphertext-plaintext addition (scales must match). */
    Ciphertext addPlain(const Ciphertext &a, const Plaintext &p) const;
    Ciphertext subPlain(const Ciphertext &a, const Plaintext &p) const;

    /** CMULT (paper Alg. 3): ciphertext x plaintext. */
    Ciphertext multiplyPlain(const Ciphertext &a,
                             const Plaintext &p) const;

    /** HMULT (paper Alg. 2): ciphertext x ciphertext + relin. */
    Ciphertext multiply(const Ciphertext &a, const Ciphertext &b) const;

    /** HMULT followed by RESCALE. */
    Ciphertext multiplyRescale(const Ciphertext &a,
                               const Ciphertext &b) const;

    /** RESCALE (paper Alg. 6): drop the last limb, divide the scale. */
    Ciphertext rescale(const Ciphertext &a) const;

    /** Drop limbs without scaling (level alignment). */
    Ciphertext dropToLevelCount(const Ciphertext &a,
                                std::size_t level_count) const;

    /** HROTATE (paper Alg. 4): rotate slots left by `step`. */
    Ciphertext rotate(const Ciphertext &a, s64 step) const;

    /**
     * HROTATE by every step in `steps` off a single hoist: the
     * Dcomp+ModUp+NTT head runs once on a.c1 and is shared by all
     * steps; each step finishes with only the digit automorphism, the
     * inner product with its rotation key, and ModDown. Returns one
     * ciphertext per requested step (step 0 returns a copy of `a`).
     * Bit-identical to calling rotate() per step — rotate() routes
     * through the same phases.
     */
    std::vector<Ciphertext> rotateHoisted(
        const Ciphertext &a, const std::vector<s64> &steps) const;

    /** Complex conjugation of every slot. */
    Ciphertext conjugate(const Ciphertext &a) const;

    /** Negate all slots. */
    Ciphertext negate(const Ciphertext &a) const;

    /** Multiply by a real constant (scales by the context scale). */
    Ciphertext multiplyConst(const Ciphertext &a, double c) const;

    /**
     * Multiply by a real constant and rescale so the result lands at
     * exactly `target_scale` (the plaintext scale is chosen as
     * target * q_last / a.scale). The standard way to keep parallel
     * branches addable despite unequal prime chains.
     */
    Ciphertext multiplyConstToScale(const Ciphertext &a, double c,
                                    double target_scale) const;

    /** Add a real constant to every slot. */
    Ciphertext addConst(const Ciphertext &a, double c) const;

    /**
     * KeySwitch (paper Alg. 1): Dcomp -> ModUp -> Inner-product ->
     * ModDown. Returns (ks0, ks1) with ks0 + ks1*s ~ d * target.
     * Exposed publicly because HMULT, HROTATE and Bootstrap all
     * reuse it, as in the paper's kernel reconstruction.
     *
     * Phase split (Halevi-Shoup hoisting): the procedure is composed
     * of two reusable halves —
     *   1. hoist(): Dcomp -> scale -> ModUp -> forward NTT. This is
     *      the expensive, key-independent head (all the Conv work and
     *      the digit-count x union-basis NTTs).
     *   2. keySwitchTail(): per-key inner product -> ModDown -> NTT.
     * keySwitch(d, key) == keySwitchTail(hoist(d), key) bit for bit;
     * rotateHoisted() runs one hoist() and many tails.
     */
    std::pair<rns::RnsPolynomial, rns::RnsPolynomial>
    keySwitch(const rns::RnsPolynomial &d, const SwitchKey &key) const;

    /** Phase 1 of keySwitch: the key-independent hoisted head. */
    HoistedDigits hoist(const rns::RnsPolynomial &d) const;

    /**
     * Phase 2 of keySwitch: inner product with `key` + ModDown.
     * @param down optional precomputed ModDown plan for the hoisted
     *             union basis; rotateHoisted shares one across steps.
     */
    std::pair<rns::RnsPolynomial, rns::RnsPolynomial>
    keySwitchTail(const HoistedDigits &h, const SwitchKey &key,
                  const rns::ModDownPlan *down = nullptr) const;

    /**
     * The unified execution layer this evaluator dispatches through
     * (batch = 1). boot::LinearTransformPlan and the batched engine
     * run their work on the same layer.
     */
    const exec::Dispatcher &dispatcher() const { return *disp_; }

  private:
    void requireCompatible(const Ciphertext &a,
                           const Ciphertext &b) const;

    const CkksContext &ctx_;
    std::shared_ptr<exec::Dispatcher> disp_; ///< copies share the arena
};

} // namespace tensorfhe::ckks

#endif // TENSORFHE_CKKS_EVALUATOR_HH
