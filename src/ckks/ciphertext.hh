/**
 * @file
 * CKKS ciphertext: a pair (c0, c1) over the active q-chain prefix,
 * Eval domain, decrypting as c0 + c1 * s (paper Eq. 6 up to sign
 * convention).
 */

#ifndef TENSORFHE_CKKS_CIPHERTEXT_HH
#define TENSORFHE_CKKS_CIPHERTEXT_HH

#include "rns/rns_poly.hh"

namespace tensorfhe::ckks
{

struct Ciphertext
{
    rns::RnsPolynomial c0;
    rns::RnsPolynomial c1;
    double scale = 0.0;

    /** Active limbs = level + 1. */
    std::size_t levelCount() const { return c0.numLimbs(); }
    /** Remaining multiplicative level. */
    std::size_t level() const { return c0.numLimbs() - 1; }
};

} // namespace tensorfhe::ckks

#endif // TENSORFHE_CKKS_CIPHERTEXT_HH
