#include "ckks/params.hh"

#include "common/errors.hh"
#include "common/logging.hh"

namespace tensorfhe::ckks
{

int
CkksParams::effectiveDnum() const
{
    return dnum == 0 ? levels + 1 : dnum;
}

std::size_t
CkksParams::alpha() const
{
    std::size_t l1 = static_cast<std::size_t>(levels) + 1;
    std::size_t d = static_cast<std::size_t>(effectiveDnum());
    return (l1 + d - 1) / d;
}

rns::TowerConfig
CkksParams::towerConfig() const
{
    rns::TowerConfig cfg;
    cfg.n = n;
    cfg.levels = levels;
    cfg.special = special;
    cfg.scaleBits = scaleBits;
    cfg.firstBits = firstBits;
    cfg.specialBits = specialBits;
    return cfg;
}

void
CkksParams::validate() const
{
    requireBudget(isPowerOfTwo(n) && n >= 8, "ckks/params",
                  "N must be a power of two >= 8");
    requireBudget(levels >= 1, "ckks/params", "need at least one level");
    requireBudget(special >= 1, "ckks/params",
                  "need at least one special prime");
    requireBudget(effectiveDnum() >= 1 && effectiveDnum() <= levels + 1,
                  "ckks/params", "dnum out of range");
    // Key-switching noise control: P must dominate the largest digit
    // product, Max_j Q_j (paper SII-B, GKS). Compare in bits with the
    // q_0 digit as worst case.
    int digit_bits = firstBits
        + (static_cast<int>(alpha()) - 1) * scaleBits;
    requireBudget(special * specialBits >= digit_bits, "ckks/params",
                  "special modulus P too small for dnum: digit needs ",
                  digit_bits, " bits but P has ",
                  special * specialBits);
}

namespace
{

CkksParams
paperBase(std::size_t n, int levels)
{
    CkksParams p;
    p.n = n;
    p.levels = levels;
    p.special = 1;
    p.scaleBits = 25;
    p.firstBits = 30;
    p.specialBits = 30;
    return p;
}

} // namespace

CkksParams Presets::paperDefault() { return paperBase(1 << 16, 44); }
CkksParams Presets::paperResNet20() { return paperBase(1 << 16, 29); }
CkksParams Presets::paperLogisticRegression()
{
    return paperBase(1 << 16, 38);
}
CkksParams Presets::paperLstm() { return paperBase(1 << 15, 25); }
CkksParams Presets::paperPackedBootstrapping()
{
    return paperBase(1 << 16, 57);
}

CkksParams
Presets::heaxSetA()
{
    // HEAX Set A: N = 2^12, logPQ = 108, K = 2. With ~27-bit primes
    // that is 2 ciphertext + 2 special primes.
    CkksParams p = paperBase(1 << 12, 1);
    p.special = 2;
    p.scaleBits = 27;
    p.firstBits = 27;
    p.specialBits = 27;
    return p;
}

CkksParams
Presets::heaxSetB()
{
    // Set B: N = 2^13, logPQ = 217, K = 4 -> 4 ciphertext + 4 special.
    CkksParams p = paperBase(1 << 13, 3);
    p.special = 4;
    p.scaleBits = 27;
    p.firstBits = 27;
    p.specialBits = 27;
    p.dnum = 4;
    return p;
}

CkksParams
Presets::heaxSetC()
{
    // Set C: N = 2^14, logPQ = 437, K = 8 -> 8 ciphertext + 8 special.
    CkksParams p = paperBase(1 << 14, 7);
    p.special = 8;
    p.scaleBits = 27;
    p.firstBits = 27;
    p.specialBits = 27;
    p.dnum = 8;
    return p;
}

CkksParams
Presets::tiny()
{
    CkksParams p = paperBase(1 << 10, 3);
    return p;
}

CkksParams
Presets::small()
{
    CkksParams p = paperBase(1 << 12, 6);
    return p;
}

CkksParams
Presets::medium()
{
    CkksParams p = paperBase(1 << 13, 8);
    return p;
}

CkksParams
Presets::bootTest()
{
    // 28-bit scale: the double-angle range reduction amplifies noise
    // by ~4x per step, so bootstrapping needs the extra headroom.
    CkksParams p = paperBase(1 << 8, 17);
    p.scaleBits = 28;
    p.firstBits = 31;
    p.specialBits = 31;
    p.secretHamming = 16;
    return p;
}

} // namespace tensorfhe::ckks
