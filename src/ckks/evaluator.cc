#include "ckks/evaluator.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace tensorfhe::ckks
{

void
Evaluator::requireCompatible(const Ciphertext &a,
                             const Ciphertext &b) const
{
    requireArg(a.levelCount() == b.levelCount(),
               "ciphertext levels differ: ", a.levelCount(), " vs ",
               b.levelCount());
    requireArg(std::abs(a.scale - b.scale)
                   <= 1e-6 * std::max(a.scale, b.scale),
               "ciphertext scales differ: ", a.scale, " vs ", b.scale);
}

Ciphertext
Evaluator::add(const Ciphertext &a, const Ciphertext &b) const
{
    requireCompatible(a, b);
    EvalOpStats::instance().record(EvalOpKind::HAdd);
    Ciphertext out = a;
    rns::eleAddInPlace(out.c0, b.c0);
    rns::eleAddInPlace(out.c1, b.c1);
    return out;
}

Ciphertext
Evaluator::sub(const Ciphertext &a, const Ciphertext &b) const
{
    requireCompatible(a, b);
    EvalOpStats::instance().record(EvalOpKind::HAdd);
    Ciphertext out = a;
    rns::eleSubInPlace(out.c0, b.c0);
    rns::eleSubInPlace(out.c1, b.c1);
    return out;
}

Ciphertext
Evaluator::addPlain(const Ciphertext &a, const Plaintext &p) const
{
    requireArg(a.levelCount() == p.levelCount()
                   && std::abs(a.scale - p.scale) <= 1e-6 * a.scale,
               "plaintext incompatible with ciphertext");
    EvalOpStats::instance().record(EvalOpKind::HAdd);
    Ciphertext out = a;
    rns::eleAddInPlace(out.c0, p.poly);
    return out;
}

Ciphertext
Evaluator::subPlain(const Ciphertext &a, const Plaintext &p) const
{
    requireArg(a.levelCount() == p.levelCount()
                   && std::abs(a.scale - p.scale) <= 1e-6 * a.scale,
               "plaintext incompatible with ciphertext");
    EvalOpStats::instance().record(EvalOpKind::HAdd);
    Ciphertext out = a;
    rns::eleSubInPlace(out.c0, p.poly);
    return out;
}

Ciphertext
Evaluator::multiplyPlain(const Ciphertext &a, const Plaintext &p) const
{
    requireArg(a.levelCount() == p.levelCount(),
               "plaintext level mismatch");
    EvalOpStats::instance().record(EvalOpKind::CMult);
    Ciphertext out = a;
    rns::hadaMultInPlace(out.c0, p.poly);
    rns::hadaMultInPlace(out.c1, p.poly);
    out.scale = a.scale * p.scale;
    return out;
}

HoistedDigits
Evaluator::hoist(const rns::RnsPolynomial &d) const
{
    auto v = ctx_.nttVariant();
    std::size_t level_count = d.numLimbs();
    EvalOpStats::instance().record(EvalOpKind::KsHoist);

    // Dcomp: coefficient-domain digits, scaled by (Q/Q_j)^-1 per limb.
    rns::RnsPolynomial d_coeff = d;
    d_coeff.toCoeff(v);
    auto digits = rns::decomposeDigits(d_coeff, ctx_.params().alpha());

    std::vector<rns::RnsPolynomial> ups;
    ups.reserve(digits.size());
    for (std::size_t j = 0; j < digits.size(); ++j) {
        auto &digit = digits[j];
        std::vector<u64> scalars(digit.numLimbs());
        for (std::size_t i = 0; i < digit.numLimbs(); ++i)
            scalars[i] = ctx_.dcompScalar(j, digit.limbIndex(i));
        rns::mulScalarInPlace(digit, scalars);
        // The context's memoized plan: the union-basis Conv factors
        // are computed once per (digit, level), not once per hoist.
        ups.push_back(ctx_.modUpPlan(j, level_count).apply(digit));
    }

    // Into Eval domain: every (digit x tower) NTT in one batched
    // dispatch.
    std::vector<rns::RnsPolynomial *> up_ptrs;
    up_ptrs.reserve(ups.size());
    for (auto &up : ups)
        up_ptrs.push_back(&up);
    rns::toEvalBatch(up_ptrs, v);
    return {std::move(ups), level_count};
}

std::pair<rns::RnsPolynomial, rns::RnsPolynomial>
Evaluator::keySwitchTail(const HoistedDigits &h, const SwitchKey &key,
                         const rns::ModDownPlan *down) const
{
    const auto &tower = ctx_.tower();
    auto v = ctx_.nttVariant();
    auto union_limbs = ctx_.unionLimbs(h.levelCount);
    requireArg(h.digits.size() <= key.digits(),
               "switch key has too few digits: ", key.digits(),
               " for ", h.digits.size());
    EvalOpStats::instance().record(EvalOpKind::KsTail);

    // The key digits restricted to the union basis, memoized in the
    // context per (key, level) across tails.
    auto rk = ctx_.restrictedKey(key, h.levelCount);

    rns::RnsPolynomial acc0(tower, union_limbs, rns::Domain::Eval);
    rns::RnsPolynomial acc1(tower, union_limbs, rns::Domain::Eval);
    for (std::size_t j = 0; j < h.digits.size(); ++j) {
        // Inner product with the key digit (restricted to the basis).
        rns::mulAccumulate(acc0, h.digits[j], rk->b[j]);
        rns::mulAccumulate(acc1, h.digits[j], rk->a[j]);
    }

    // ModDown by P, back to Eval domain. Both accumulators move
    // domains in one batched dispatch, so every (component x tower)
    // NTT shares a single pool round-trip; both share one plan's
    // Conv factors.
    rns::toCoeffBatch({&acc0, &acc1}, v);
    const rns::ModDownPlan &plan =
        down ? *down : ctx_.modDownPlan(h.levelCount);
    auto ks0 = plan.apply(acc0);
    auto ks1 = plan.apply(acc1);
    rns::toEvalBatch({&ks0, &ks1}, v);
    return {std::move(ks0), std::move(ks1)};
}

std::pair<rns::RnsPolynomial, rns::RnsPolynomial>
Evaluator::keySwitch(const rns::RnsPolynomial &d,
                     const SwitchKey &key) const
{
    return keySwitchTail(hoist(d), key);
}

Ciphertext
Evaluator::multiply(const Ciphertext &a, const Ciphertext &b) const
{
    requireArg(a.levelCount() == b.levelCount(), "level mismatch");
    requireArg(a.levelCount() >= 2,
               "no level budget left for multiplication");
    EvalOpStats::instance().record(EvalOpKind::HMult);

    // d0 = a0*b0, d1 = a0*b1 + a1*b0, d2 = a1*b1 (paper Alg. 2).
    auto d0 = a.c0;
    rns::hadaMultInPlace(d0, b.c0);
    auto d1 = a.c0;
    rns::hadaMultInPlace(d1, b.c1);
    rns::mulAccumulate(d1, a.c1, b.c0);
    auto d2 = a.c1;
    rns::hadaMultInPlace(d2, b.c1);

    auto [ks0, ks1] = keySwitch(d2, keys_.relin);
    Ciphertext out;
    rns::eleAddInPlace(d0, ks0);
    rns::eleAddInPlace(d1, ks1);
    out.c0 = std::move(d0);
    out.c1 = std::move(d1);
    out.scale = a.scale * b.scale;
    return out;
}

Ciphertext
Evaluator::multiplyRescale(const Ciphertext &a, const Ciphertext &b) const
{
    return rescale(multiply(a, b));
}

Ciphertext
Evaluator::rescale(const Ciphertext &a) const
{
    requireArg(a.levelCount() >= 2, "cannot rescale at level 0");
    EvalOpStats::instance().record(EvalOpKind::Rescale);
    u64 q_last = ctx_.tower().prime(a.levelCount() - 1);
    auto v = ctx_.nttVariant();
    Ciphertext out = a;
    rns::toCoeffBatch({&out.c0, &out.c1}, v);
    out.c0 = rns::rescaleByLastLimb(out.c0);
    out.c1 = rns::rescaleByLastLimb(out.c1);
    rns::toEvalBatch({&out.c0, &out.c1}, v);
    out.scale = a.scale / static_cast<double>(q_last);
    return out;
}

Ciphertext
Evaluator::dropToLevelCount(const Ciphertext &a,
                            std::size_t level_count) const
{
    requireArg(level_count >= 1 && level_count <= a.levelCount(),
               "bad target level");
    Ciphertext out = a;
    out.c0.truncateLimbs(level_count);
    out.c1.truncateLimbs(level_count);
    return out;
}

namespace
{

/**
 * Finish one automorphism + key switch on already-hoisted digits:
 * permute the digits (FrobeniusMap, shared permutation across the
 * digit vector), run the tail against `key`, and add the permuted c0.
 */
Ciphertext
finishAutomorphism(const Evaluator &eval, const Ciphertext &a,
                   const HoistedDigits &h, u64 galois,
                   const SwitchKey &key, const rns::ModDownPlan *down)
{
    std::vector<const rns::RnsPolynomial *> digit_ptrs;
    digit_ptrs.reserve(h.digits.size());
    for (const auto &d : h.digits)
        digit_ptrs.push_back(&d);
    HoistedDigits rotated{rns::applyAutomorphismBatch(digit_ptrs, galois),
                          h.levelCount};

    auto [ks0, ks1] = eval.keySwitchTail(rotated, key, down);
    auto c0r = rns::applyAutomorphism(a.c0, galois);
    rns::eleAddInPlace(ks0, c0r);
    Ciphertext out;
    out.c0 = std::move(ks0);
    out.c1 = std::move(ks1);
    out.scale = a.scale;
    return out;
}

} // namespace

Ciphertext
Evaluator::rotate(const Ciphertext &a, s64 step) const
{
    auto out = rotateHoisted(a, {step});
    return std::move(out[0]);
}

std::vector<Ciphertext>
Evaluator::rotateHoisted(const Ciphertext &a,
                         const std::vector<s64> &steps) const
{
    std::size_t slots = ctx_.slots();
    std::vector<s64> norms(steps.size());
    bool any_nonzero = false;
    for (std::size_t i = 0; i < steps.size(); ++i) {
        norms[i] = ((steps[i] % s64(slots)) + s64(slots)) % s64(slots);
        if (norms[i] == 0)
            continue;
        requireArg(keys_.rot.count(norms[i]) != 0,
                   "no rotation key for step ", norms[i]);
        any_nonzero = true;
    }

    std::vector<Ciphertext> out(steps.size());
    if (!any_nonzero) {
        for (auto &ct : out)
            ct = a;
        return out;
    }

    // Hoist once: the Dcomp+ModUp+NTT head is step-independent, and
    // so is the tails' ModDown plan (memoized in the context).
    HoistedDigits h = hoist(a.c1);
    const rns::ModDownPlan &down = ctx_.modDownPlan(h.levelCount);

    for (std::size_t i = 0; i < steps.size(); ++i) {
        if (norms[i] == 0) {
            out[i] = a;
            continue;
        }
        EvalOpStats::instance().record(EvalOpKind::HRotate);
        out[i] = finishAutomorphism(*this, a, h,
                                    ctx_.galoisForRotation(norms[i]),
                                    keys_.rot.at(norms[i]), &down);
    }
    return out;
}

Ciphertext
Evaluator::conjugate(const Ciphertext &a) const
{
    EvalOpStats::instance().record(EvalOpKind::Conjugate);
    HoistedDigits h = hoist(a.c1);
    return finishAutomorphism(*this, a, h, ctx_.galoisForConjugation(),
                              keys_.conj, nullptr);
}

Ciphertext
Evaluator::negate(const Ciphertext &a) const
{
    Ciphertext out = a;
    rns::negateInPlace(out.c0);
    rns::negateInPlace(out.c1);
    return out;
}

Ciphertext
Evaluator::multiplyConst(const Ciphertext &a, double c) const
{
    auto pt = ctx_.encoder().encodeConstant(Complex(c, 0),
                                            ctx_.params().scale(),
                                            a.levelCount());
    return multiplyPlain(a, pt);
}

Ciphertext
Evaluator::multiplyConstToScale(const Ciphertext &a, double c,
                                double target_scale) const
{
    requireArg(a.levelCount() >= 2, "no level left for the rescale");
    u64 q_last = ctx_.tower().prime(a.levelCount() - 1);
    double pt_scale =
        target_scale * static_cast<double>(q_last) / a.scale;
    requireArg(pt_scale >= 2.0, "target scale too small for level");
    auto pt = ctx_.encoder().encodeConstant(Complex(c, 0), pt_scale,
                                            a.levelCount());
    auto out = rescale(multiplyPlain(a, pt));
    out.scale = target_scale; // exact by construction
    return out;
}

Ciphertext
Evaluator::addConst(const Ciphertext &a, double c) const
{
    auto pt = ctx_.encoder().encodeConstant(Complex(c, 0), a.scale,
                                            a.levelCount());
    return addPlain(a, pt);
}

} // namespace tensorfhe::ckks
