#include "ckks/evaluator.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace tensorfhe::ckks
{

Evaluator::Evaluator(const CkksContext &ctx, const KeyBundle &keys)
    : ctx_(ctx), disp_(std::make_shared<exec::Dispatcher>(ctx, keys))
{}

Evaluator::Evaluator(const CkksContext &ctx,
                     std::shared_ptr<const KeyStore> store)
    : ctx_(ctx),
      disp_(std::make_shared<exec::Dispatcher>(ctx, std::move(store)))
{}

Evaluator::Evaluator(const CkksContext &ctx,
                     std::shared_ptr<exec::Dispatcher> disp)
    : ctx_(ctx), disp_(std::move(disp))
{}

Evaluator::Evaluator(const CkksContext &ctx,
                     const KeyBundle & /*keys*/,
                     std::shared_ptr<exec::Dispatcher> disp)
    : Evaluator(ctx, std::move(disp))
{}

void
Evaluator::requireCompatible(const Ciphertext &a,
                             const Ciphertext &b) const
{
    requireArg(a.levelCount() == b.levelCount(),
               "ciphertext levels differ: ", a.levelCount(), " vs ",
               b.levelCount());
    requireArg(std::abs(a.scale - b.scale)
                   <= 1e-6 * std::max(a.scale, b.scale),
               "ciphertext scales differ: ", a.scale, " vs ", b.scale);
}

Ciphertext
Evaluator::add(const Ciphertext &a, const Ciphertext &b) const
{
    requireCompatible(a, b);
    Ciphertext out = a;
    disp_->addInPlace(&out, &b, 1);
    return out;
}

Ciphertext
Evaluator::sub(const Ciphertext &a, const Ciphertext &b) const
{
    requireCompatible(a, b);
    Ciphertext out = a;
    disp_->subInPlace(&out, &b, 1);
    return out;
}

Ciphertext
Evaluator::addPlain(const Ciphertext &a, const Plaintext &p) const
{
    requireArg(a.levelCount() == p.levelCount()
                   && std::abs(a.scale - p.scale) <= 1e-6 * a.scale,
               "plaintext incompatible with ciphertext");
    Ciphertext out = a;
    disp_->addPlainInPlace(&out, p, 1);
    return out;
}

Ciphertext
Evaluator::subPlain(const Ciphertext &a, const Plaintext &p) const
{
    requireArg(a.levelCount() == p.levelCount()
                   && std::abs(a.scale - p.scale) <= 1e-6 * a.scale,
               "plaintext incompatible with ciphertext");
    Ciphertext out = a;
    disp_->subPlainInPlace(&out, p, 1);
    return out;
}

Ciphertext
Evaluator::multiplyPlain(const Ciphertext &a, const Plaintext &p) const
{
    requireArg(a.levelCount() == p.levelCount(),
               "plaintext level mismatch");
    Ciphertext out = a;
    disp_->multiplyPlainInPlace(&out, p, 1);
    return out;
}

HoistedDigits
Evaluator::hoist(const rns::RnsPolynomial &d) const
{
    const rns::RnsPolynomial *ptr = &d;
    auto h = disp_->hoistCopy(&ptr, 1);
    HoistedDigits out;
    out.levelCount = h.levelCount;
    out.digits.reserve(h.numDigits());
    for (auto &row : h.digits)
        out.digits.push_back(row[0].detach());
    return out;
}

std::pair<rns::RnsPolynomial, rns::RnsPolynomial>
Evaluator::keySwitchTail(const HoistedDigits &h, const SwitchKey &key,
                         const rns::ModDownPlan *down) const
{
    exec::HoistedView view;
    view.numDigits = h.digits.size();
    view.batchN = 1;
    view.levelCount = h.levelCount;
    view.table.reserve(h.digits.size());
    for (const auto &d : h.digits)
        view.table.push_back(&d);
    auto [ks0, ks1] = disp_->keySwitchTail(view, key, down);
    return {std::move(ks0[0]), std::move(ks1[0])};
}

std::pair<rns::RnsPolynomial, rns::RnsPolynomial>
Evaluator::keySwitch(const rns::RnsPolynomial &d,
                     const SwitchKey &key) const
{
    return keySwitchTail(hoist(d), key);
}

Ciphertext
Evaluator::multiply(const Ciphertext &a, const Ciphertext &b) const
{
    requireArg(a.levelCount() == b.levelCount(), "level mismatch");
    requireArg(a.levelCount() >= 2,
               "no level budget left for multiplication");
    Ciphertext out = a;
    disp_->multiplyInPlace(&out, &b, 1);
    return out;
}

Ciphertext
Evaluator::multiplyRescale(const Ciphertext &a, const Ciphertext &b) const
{
    return rescale(multiply(a, b));
}

Ciphertext
Evaluator::rescale(const Ciphertext &a) const
{
    requireArg(a.levelCount() >= 2, "cannot rescale at level 0");
    Ciphertext out = a;
    disp_->rescaleInPlace(&out, 1);
    return out;
}

Ciphertext
Evaluator::dropToLevelCount(const Ciphertext &a,
                            std::size_t level_count) const
{
    requireArg(level_count >= 1 && level_count <= a.levelCount(),
               "bad target level");
    Ciphertext out = a;
    out.c0.truncateLimbs(level_count);
    out.c1.truncateLimbs(level_count);
    return out;
}

Ciphertext
Evaluator::rotate(const Ciphertext &a, s64 step) const
{
    auto out = rotateHoisted(a, {step});
    return std::move(out[0]);
}

std::vector<Ciphertext>
Evaluator::rotateHoisted(const Ciphertext &a,
                         const std::vector<s64> &steps) const
{
    auto per_step = disp_->rotateMany(&a, 1, steps);
    std::vector<Ciphertext> out;
    out.reserve(per_step.size());
    for (auto &cts : per_step)
        out.push_back(std::move(cts[0]));
    return out;
}

Ciphertext
Evaluator::conjugate(const Ciphertext &a) const
{
    auto out = disp_->conjugate(&a, 1);
    return std::move(out[0]);
}

Ciphertext
Evaluator::negate(const Ciphertext &a) const
{
    Ciphertext out = a;
    rns::negateInPlace(out.c0);
    rns::negateInPlace(out.c1);
    return out;
}

Ciphertext
Evaluator::multiplyConst(const Ciphertext &a, double c) const
{
    auto pt = ctx_.encoder().encodeConstant(Complex(c, 0),
                                            ctx_.params().scale(),
                                            a.levelCount());
    return multiplyPlain(a, pt);
}

Ciphertext
Evaluator::multiplyConstToScale(const Ciphertext &a, double c,
                                double target_scale) const
{
    requireArg(a.levelCount() >= 2, "no level left for the rescale");
    u64 q_last = ctx_.tower().prime(a.levelCount() - 1);
    double pt_scale =
        target_scale * static_cast<double>(q_last) / a.scale;
    requireArg(pt_scale >= 2.0, "target scale too small for level");
    auto pt = ctx_.encoder().encodeConstant(Complex(c, 0), pt_scale,
                                            a.levelCount());
    auto out = rescale(multiplyPlain(a, pt));
    out.scale = target_scale; // exact by construction
    return out;
}

Ciphertext
Evaluator::addConst(const Ciphertext &a, double c) const
{
    auto pt = ctx_.encoder().encodeConstant(Complex(c, 0), a.scale,
                                            a.levelCount());
    return addPlain(a, pt);
}

} // namespace tensorfhe::ckks
