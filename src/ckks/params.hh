/**
 * @file
 * CKKS parameter sets, including the paper's Table V workload
 * configurations, the HEAX comparison sets (Table VIII), and the
 * scaled-down functional sets used for tests on this machine (see
 * DESIGN.md SS3 for the parameter policy).
 */

#ifndef TENSORFHE_CKKS_PARAMS_HH
#define TENSORFHE_CKKS_PARAMS_HH

#include <cstddef>
#include <string>

#include "ntt/ntt.hh"
#include "rns/tower.hh"

namespace tensorfhe::ckks
{

/** Full parameterization of a CKKS instance. */
struct CkksParams
{
    std::size_t n = 1 << 12;  ///< polynomial degree N
    int levels = 6;           ///< L: maximum multiplicative level
    int special = 1;          ///< K: special primes
    int dnum = 0;             ///< decomposition number; 0 = L + 1
    int scaleBits = 25;       ///< log2 of the encoding scale
    int firstBits = 30;       ///< size of q_0
    int specialBits = 30;     ///< size of p_k
    double sigma = 3.2;       ///< error stddev
    /**
     * Hamming weight of the ternary secret; 0 = dense. Sparse
     * secrets bound the modular overflow |I| during bootstrapping
     * (standard in bootstrappable CKKS parameterizations).
     */
    std::size_t secretHamming = 0;
    ntt::NttVariant nttVariant = ntt::NttVariant::Butterfly;

    /** Digit width alpha = ceil((L+1) / dnum). */
    std::size_t alpha() const;
    /** Effective dnum (resolves the 0 = L+1 default). */
    int effectiveDnum() const;
    double scale() const { return static_cast<double>(u64(1) << scaleBits); }
    std::size_t slots() const { return n / 2; }

    rns::TowerConfig towerConfig() const;

    /** Throws std::invalid_argument on inconsistent settings. */
    void validate() const;
};

/**
 * Named presets.
 *
 * Paper-scale sets reproduce Table V (N, L, K); they are meant for
 * the analytical perf model. Functional sets (Tiny/Small/Medium) are
 * the scaled-down instances the tests and measured benches run.
 */
struct Presets
{
    /// Paper Table V "Default": N = 2^16, L = 44, K = 1.
    static CkksParams paperDefault();
    /// Paper Table V "ResNet-20": N = 2^16, L = 29.
    static CkksParams paperResNet20();
    /// Paper Table V "Logistic Regression": N = 2^16, L = 38.
    static CkksParams paperLogisticRegression();
    /// Paper Table V "LSTM": N = 2^15, L = 25.
    static CkksParams paperLstm();
    /// Paper Table V "Packed Bootstrapping": N = 2^16, L = 57.
    static CkksParams paperPackedBootstrapping();

    /// HEAX Set A/B/C (Table VIII): N = 2^12/2^13/2^14, K = 2/4/8.
    static CkksParams heaxSetA();
    static CkksParams heaxSetB();
    static CkksParams heaxSetC();

    /// Functional sets sized for this machine.
    static CkksParams tiny();   ///< N = 2^10, L = 3
    static CkksParams small();  ///< N = 2^12, L = 6
    static CkksParams medium(); ///< N = 2^13, L = 8
    /// Bootstrappable functional set: N = 2^8, deep chain, sparse key.
    static CkksParams bootTest();
};

} // namespace tensorfhe::ckks

#endif // TENSORFHE_CKKS_PARAMS_HH
