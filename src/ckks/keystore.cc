#include "ckks/keystore.hh"

#include "common/errors.hh"
#include "common/logging.hh"
#include "fault/fault.hh"

namespace tensorfhe::ckks
{

namespace
{

/** splitmix64 finalizer — decorrelates the per-key RNG seeds. */
u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

constexpr int kMaxGenAttempts = 3;

} // namespace

KeyStore::KeyStore(const KeyBundle &keys) : view_(&keys) {}

KeyStore::KeyStore(const CkksContext &ctx, SecretKey sk, KeyBundle base,
                   u64 seed, std::size_t capacity)
    : ctx_(&ctx), owned_(std::make_unique<KeyBundle>(std::move(base))),
      sk_(std::move(sk)), seed_(seed), capacity_(capacity)
{}

SwitchKey
KeyStore::generate(s64 step, bool conj_branch) const
{
    // Seed from the galois element (the automorphism's identity, so
    // equivalent step encodings share a key stream) and the branch.
    u64 galois = conj_branch ? ctx_->galoisForConjRotation(step)
                             : ctx_->galoisForRotation(step);
    u64 derived =
        mix64(seed_ ^ mix64(galois ^ (conj_branch ? 0x1ull << 63 : 0)));
    // A transient keygen fault (fault-injection campaigns, a failed
    // device allocation in a real deployment) is retried with a FRESH
    // deterministic Rng, so a retried generation is bit-identical to
    // an undisturbed one.
    for (int attempt = 0;; ++attempt) {
        try {
            TFHE_FAULT_POINT("keystore/generate");
            Rng rng(derived);
            return conj_branch
                ? ctx_->generateConjRotationKey(sk_, step, rng)
                : ctx_->generateRotationKey(sk_, step, rng);
        } catch (const TransientFault &) {
            if (attempt + 1 >= kMaxGenAttempts)
                throw;
        }
    }
}

std::shared_ptr<const SwitchKey>
KeyStore::lookup(const std::map<s64, SwitchKey> &pre, s64 step,
                 bool conj_branch) const
{
    auto it = pre.find(step);
    if (it != pre.end())
        // Alias the caller-owned / store-owned bundle: no control
        // block needed, the bundle outlives every pin by contract.
        return {std::shared_ptr<const SwitchKey>{}, &it->second};
    if (!onDemand())
        return nullptr;

    CacheKey ck{step, conj_branch};
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto hit = cache_.find(ck);
        if (hit != cache_.end()) {
            lru_.splice(lru_.begin(), lru_, hit->second);
            return hit->second->second;
        }
    }
    // Generate outside the lock (keygen is the expensive part); a
    // racing thread may generate the same key — both results are
    // bit-identical, the second insert is dropped.
    SwitchKey fresh = generate(step, conj_branch);
    std::lock_guard<std::mutex> lock(mu_);
    ++generations_;
    auto hit = cache_.find(ck);
    if (hit != cache_.end()) {
        lru_.splice(lru_.begin(), lru_, hit->second);
        return hit->second->second;
    }
    auto id_it = ids_.find(ck);
    if (id_it != ids_.end())
        // Regeneration after eviction: restore the first-generation
        // id so the context's restricted-key cache stays coherent.
        fresh.id = id_it->second;
    else
        ids_.emplace(ck, fresh.id);
    auto sp = std::make_shared<const SwitchKey>(std::move(fresh));
    lru_.emplace_front(ck, sp);
    cache_[ck] = lru_.begin();
    if (capacity_ != 0 && lru_.size() > capacity_) {
        cache_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
    return sp;
}

std::shared_ptr<const SwitchKey>
KeyStore::rotation(s64 step) const
{
    return lookup(base().rot, step, false);
}

std::shared_ptr<const SwitchKey>
KeyStore::conjRotation(s64 step) const
{
    return lookup(base().conjRot, step, true);
}

std::size_t
KeyStore::residentGenerated() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
}

std::size_t
KeyStore::generationEvents() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return generations_;
}

std::size_t
KeyStore::evictions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
}

} // namespace tensorfhe::ckks
