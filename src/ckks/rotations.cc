#include "ckks/rotations.hh"

#include <algorithm>

namespace tensorfhe::ckks
{

std::vector<s64>
normalizeRotationSteps(std::vector<s64> steps, std::size_t slots)
{
    if (slots != 0) {
        for (auto &s : steps)
            s = ((s % s64(slots)) + s64(slots)) % s64(slots);
    }
    std::sort(steps.begin(), steps.end());
    steps.erase(std::unique(steps.begin(), steps.end()), steps.end());
    steps.erase(std::remove(steps.begin(), steps.end(), s64(0)),
                steps.end());
    return steps;
}

std::vector<s64>
unionRotationSteps(const std::vector<std::vector<s64>> &lists,
                   std::size_t slots)
{
    std::vector<s64> all;
    for (const auto &l : lists)
        all.insert(all.end(), l.begin(), l.end());
    return normalizeRotationSteps(std::move(all), slots);
}

} // namespace tensorfhe::ckks
