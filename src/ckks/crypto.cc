#include "ckks/crypto.hh"

#include "common/logging.hh"

namespace tensorfhe::ckks
{

namespace
{

rns::RnsPolynomial
restrictLimbs(const rns::RnsPolynomial &full,
              const std::vector<std::size_t> &limbs)
{
    rns::RnsPolynomial out(full.tower(), limbs, full.domain());
    for (std::size_t i = 0; i < limbs.size(); ++i) {
        TFHE_ASSERT(full.limbIndex(limbs[i]) == limbs[i]);
        std::copy(full.limb(limbs[i]), full.limb(limbs[i]) + full.n(),
                  out.limb(i));
    }
    return out;
}

rns::RnsPolynomial
smallPoly(const rns::RnsTower &tower,
          const std::vector<std::size_t> &limbs,
          const std::vector<s64> &coeffs, ntt::NttVariant v)
{
    auto poly = rns::liftSigned(tower, limbs, coeffs);
    poly.toEval(v);
    return poly;
}

} // namespace

Ciphertext
Encryptor::encrypt(const Plaintext &pt, Rng &rng) const
{
    const auto &tower = ctx_.tower();
    std::size_t level_count = pt.levelCount();
    auto limbs = ctx_.qLimbs(level_count);
    auto v = ctx_.nttVariant();

    // Ephemeral ternary u and errors e0, e1.
    std::vector<s64> u_coeffs(ctx_.n());
    for (auto &c : u_coeffs)
        c = rng.sampleTernary();
    auto u = smallPoly(tower, limbs, u_coeffs, v);

    std::vector<s64> e_coeffs(ctx_.n());
    auto gauss = [&] {
        for (auto &c : e_coeffs)
            c = rng.sampleGaussianInt(ctx_.params().sigma);
        return smallPoly(tower, limbs, e_coeffs, v);
    };

    Ciphertext ct;
    ct.c0 = restrictLimbs(pk_.b, limbs);
    rns::hadaMultInPlace(ct.c0, u);
    rns::eleAddInPlace(ct.c0, gauss());
    rns::eleAddInPlace(ct.c0, pt.poly);

    ct.c1 = restrictLimbs(pk_.a, limbs);
    rns::hadaMultInPlace(ct.c1, u);
    rns::eleAddInPlace(ct.c1, gauss());

    ct.scale = pt.scale;
    return ct;
}

Plaintext
Decryptor::decrypt(const Ciphertext &ct) const
{
    auto limbs = ctx_.qLimbs(ct.levelCount());
    auto s = restrictLimbs(sk_.eval, limbs);
    auto m = ct.c1;
    rns::hadaMultInPlace(m, s);
    rns::eleAddInPlace(m, ct.c0);
    return Plaintext{std::move(m), ct.scale};
}

std::vector<Complex>
Decryptor::decryptAndDecode(const Ciphertext &ct) const
{
    return ctx_.encoder().decode(decrypt(ct));
}

} // namespace tensorfhe::ckks
