#include "trace/metrics.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/stats.hh"
#include "exec/workspace.hh"
#include "resilience/counters.hh"
#include "trace/trace.hh"

namespace tensorfhe::trace
{

void
Histogram::observe(u64 v)
{
    std::size_t b = 0;
    while (b + 1 < kBuckets && (v >> (b + 1)) != 0)
        ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
}

u64
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

u64
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

u64
Histogram::bucket(std::size_t b) const
{
    return b < kBuckets ? buckets_[b].load(std::memory_order_relaxed)
                        : 0;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry r;
    return r;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mu_);
    gauges_[name] = value;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
MetricsRegistry::registerWorkspace(const exec::Workspace *ws)
{
    std::lock_guard<std::mutex> lock(mu_);
    workspaces_.push_back(ws);
}

void
MetricsRegistry::unregisterWorkspace(const exec::Workspace *ws)
{
    std::lock_guard<std::mutex> lock(mu_);
    workspaces_.erase(
        std::remove(workspaces_.begin(), workspaces_.end(), ws),
        workspaces_.end());
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot out;

    // Island 1: kernel counters.
    const auto &ks = KernelStats::instance();
    for (std::size_t i = 0; i < kNumKernelKinds; ++i) {
        auto kind = static_cast<KernelKind>(i);
        const auto &c = ks.counter(kind);
        std::string base =
            std::string("kernel.") + kernelKindName(kind);
        out[base + ".invocations"] = static_cast<double>(
            c.invocations.load(std::memory_order_relaxed));
        out[base + ".nanos"] = static_cast<double>(
            c.nanos.load(std::memory_order_relaxed));
        out[base + ".elements"] = static_cast<double>(
            c.elements.load(std::memory_order_relaxed));
    }

    // Island 2: executed homomorphic operations + conversions.
    const auto &es = EvalOpStats::instance();
    EvalOpCounts ops = es.snapshot();
    for (std::size_t i = 0; i < kNumEvalOpKinds; ++i) {
        auto kind = static_cast<EvalOpKind>(i);
        out[std::string("evalop.") + evalOpKindName(kind) + ".count"] =
            ops.get(kind);
    }
    out["evalop.modups"] = static_cast<double>(es.modUps());
    out["evalop.moddowns"] = static_cast<double>(es.modDowns());

    // Island 3: workspace arenas (summed over live instances).
    {
        u64 allocs = 0;
        u64 reuses = 0;
        u64 returns = 0;
        std::lock_guard<std::mutex> lock(mu_);
        for (const exec::Workspace *ws : workspaces_) {
            auto s = ws->stats();
            allocs += s.allocs;
            reuses += s.reuses;
            returns += s.returns;
        }
        out["workspace.arenas"] =
            static_cast<double>(workspaces_.size());
        out["workspace.allocs"] = static_cast<double>(allocs);
        out["workspace.reuses"] = static_cast<double>(reuses);
        out["workspace.returns"] = static_cast<double>(returns);
        out["workspace.reuse_rate"] =
            allocs + reuses == 0
                ? 0.0
                : static_cast<double>(reuses)
                      / static_cast<double>(allocs + reuses);
    }

    // Island 4: resilience counters.
    const auto &rc = resilience::Counters::instance();
    out["resilience.retries"] = static_cast<double>(
        rc.retries.load(std::memory_order_relaxed));
    out["resilience.transient_faults"] = static_cast<double>(
        rc.transientFaults.load(std::memory_order_relaxed));
    out["resilience.integrity_failures"] = static_cast<double>(
        rc.integrityFailures.load(std::memory_order_relaxed));
    out["resilience.checkpoints_taken"] = static_cast<double>(
        rc.checkpointsTaken.load(std::memory_order_relaxed));
    out["resilience.checkpoints_resumed"] = static_cast<double>(
        rc.checkpointsResumed.load(std::memory_order_relaxed));

    // The tracer's own health.
    out["trace.spans_recorded"] =
        static_cast<double>(Tracer::instance().recordedSpans());
    out["trace.spans_dropped"] =
        static_cast<double>(Tracer::instance().droppedSpans());

    // Registry-owned custom metrics.
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &[name, c] : counters_)
            out["custom." + name] = static_cast<double>(c->value());
        for (const auto &[name, v] : gauges_)
            out["custom." + name] = v;
        for (const auto &[name, h] : histograms_) {
            out["custom." + name + ".count"] =
                static_cast<double>(h->count());
            out["custom." + name + ".sum"] =
                static_cast<double>(h->sum());
            for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
                u64 n = h->bucket(b);
                if (n != 0)
                    out["custom." + name + ".bucket_p"
                        + std::to_string(b)] =
                        static_cast<double>(n);
            }
        }
    }
    return out;
}

namespace
{

/**
 * Nest the flat dotted snapshot into one JSON object: the sorted map
 * makes shared prefixes adjacent, so a single pass with an open-group
 * stack emits each subobject exactly once.
 */
void
writeNested(std::ostringstream &out, const MetricsSnapshot &snap)
{
    std::vector<std::string> open; // currently open group path
    out.precision(17);
    out << "{";
    bool first = true;
    for (const auto &[name, value] : snap) {
        std::vector<std::string> parts;
        std::size_t pos = 0;
        while (true) {
            std::size_t dot = name.find('.', pos);
            if (dot == std::string::npos) {
                parts.push_back(name.substr(pos));
                break;
            }
            parts.push_back(name.substr(pos, dot - pos));
            pos = dot + 1;
        }
        // Close groups that no longer match, open the new ones.
        std::size_t common = 0;
        while (common < open.size() && common + 1 < parts.size()
               && open[common] == parts[common])
            ++common;
        for (std::size_t i = open.size(); i > common; --i)
            out << "}";
        open.resize(common);
        for (std::size_t i = common; i + 1 < parts.size(); ++i) {
            if (!first)
                out << ", ";
            first = false;
            out << "\"" << parts[i] << "\": {";
            open.push_back(parts[i]);
            first = true;
        }
        if (!first)
            out << ", ";
        first = false;
        out << "\"" << parts.back() << "\": " << value;
    }
    for (std::size_t i = open.size(); i > 0; --i)
        out << "}";
    out << "}";
}

} // namespace

std::string
MetricsRegistry::snapshotJson() const
{
    std::ostringstream out;
    writeNested(out, snapshot());
    out << "\n";
    return out.str();
}

bool
MetricsRegistry::writeSnapshotJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::string json = snapshotJson();
    std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return written == json.size();
}

void
MetricsRegistry::resetCustom()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

} // namespace tensorfhe::trace
