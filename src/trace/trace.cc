#include "trace/trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>

namespace tensorfhe::trace
{

namespace
{

u64
nowNs()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

std::atomic<bool> Tracer::armed_{false};

/**
 * One thread's ring of records. Fixed capacity, append-only within a
 * capture; the owning thread is the only writer, the control plane
 * reads only while quiescent.
 */
struct Tracer::Buffer
{
    u32 tid = 0;
    u64 dropped = 0;
    u32 depth = 0; ///< current nesting depth of the owning thread
    std::vector<SpanRecord> records;
};

namespace
{

/** Registry of every buffer of the current capture generation. */
struct Registry
{
    std::mutex mu;
    std::vector<std::unique_ptr<Tracer::Buffer>> buffers;
    std::size_t capacity = Tracer::kDefaultCapacity;
    u64 generation = 0;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

thread_local u64 tl_generation = 0;
thread_local Tracer::Buffer *tl_buffer = nullptr;

} // namespace

Tracer &
Tracer::instance()
{
    static Tracer t;
    return t;
}

void
Tracer::arm(std::size_t capacityPerThread)
{
    auto &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.buffers.clear();
    reg.capacity = capacityPerThread == 0 ? 1 : capacityPerThread;
    ++reg.generation;
    armed_.store(true, std::memory_order_relaxed);
}

void
Tracer::disarm()
{
    armed_.store(false, std::memory_order_relaxed);
}

Tracer::Buffer *
Tracer::threadBuffer()
{
    auto &reg = registry();
    if (tl_buffer != nullptr && tl_generation == reg.generation)
        return tl_buffer;
    std::lock_guard<std::mutex> lock(reg.mu);
    auto buf = std::make_unique<Buffer>();
    buf->tid = static_cast<u32>(reg.buffers.size());
    buf->records.reserve(std::min<std::size_t>(reg.capacity, 4096));
    tl_buffer = buf.get();
    tl_generation = reg.generation;
    reg.buffers.push_back(std::move(buf));
    return tl_buffer;
}

void
Tracer::push(const SpanRecord &r)
{
    Buffer *b = threadBuffer();
    if (b->records.size() >= registry().capacity) {
        ++b->dropped;
        return;
    }
    b->records.push_back(r);
}

std::vector<Tracer::ThreadRecords>
Tracer::collect() const
{
    auto &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::vector<ThreadRecords> out;
    out.reserve(reg.buffers.size());
    for (const auto &b : reg.buffers) {
        ThreadRecords tr;
        tr.tid = b->tid;
        tr.dropped = b->dropped;
        tr.records = b->records;
        out.push_back(std::move(tr));
    }
    return out;
}

u64
Tracer::recordedSpans() const
{
    auto &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    u64 total = 0;
    for (const auto &b : reg.buffers)
        total += b->records.size();
    return total;
}

u64
Tracer::droppedSpans() const
{
    auto &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    u64 total = 0;
    for (const auto &b : reg.buffers)
        total += b->dropped;
    return total;
}

void
Tracer::instant(const char *cat, const char *name,
                const SpanArg *args, int numArgs)
{
    if (!armed())
        return;
    SpanRecord r;
    r.name = name;
    r.cat = cat;
    r.startNs = nowNs();
    r.phase = 'i';
    Buffer *b = instance().threadBuffer();
    r.depth = b->depth;
    for (int i = 0; i < numArgs && i < SpanRecord::kMaxArgs; ++i)
        r.args[r.numArgs++] = args[i];
    instance().push(r);
}

void
Tracer::span(const char *cat, const char *name, u64 startNs,
             u64 durNs, const SpanArg *args, int numArgs)
{
    if (!armed())
        return;
    SpanRecord r;
    r.name = name;
    r.cat = cat;
    r.startNs = startNs;
    r.durNs = durNs;
    Buffer *b = instance().threadBuffer();
    r.depth = b->depth;
    for (int i = 0; i < numArgs && i < SpanRecord::kMaxArgs; ++i)
        r.args[r.numArgs++] = args[i];
    instance().push(r);
}

void
TraceSpan::begin(const char *cat, const char *name, const char *dyn)
{
    active_ = true;
    rec_.cat = cat;
    rec_.name = name;
    if (dyn != nullptr) {
        std::strncpy(rec_.dynName, dyn, SpanRecord::kDynName - 1);
        rec_.dynName[SpanRecord::kDynName - 1] = '\0';
    }
    Tracer::Buffer *b = Tracer::instance().threadBuffer();
    rec_.depth = b->depth++;
    rec_.startNs = nowNs();
}

void
TraceSpan::end()
{
    rec_.durNs = nowNs() - rec_.startNs;
    Tracer::Buffer *b = Tracer::instance().threadBuffer();
    if (b->depth > 0)
        --b->depth;
    Tracer::instance().push(rec_);
    active_ = false;
}

namespace
{

void
appendJsonEscaped(std::ostringstream &out, const char *s)
{
    for (; *s != '\0'; ++s) {
        char c = *s;
        if (c == '"' || c == '\\')
            out << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            out << ' ';
        else
            out << c;
    }
}

void
appendEvent(std::ostringstream &out, bool &first, char ph,
            const char *name, const char *cat, int pid, u32 tid,
            double tsUs, double durUs, const SpanArg *args,
            int numArgs)
{
    if (!first)
        out << ",\n";
    first = false;
    out << "{\"ph\": \"" << ph << "\", \"name\": \"";
    appendJsonEscaped(out, name);
    out << "\", \"cat\": \"";
    appendJsonEscaped(out, cat);
    out << "\", \"pid\": " << pid << ", \"tid\": " << tid
        << ", \"ts\": " << tsUs;
    if (ph == 'X')
        out << ", \"dur\": " << durUs;
    if (ph == 'i')
        out << ", \"s\": \"t\"";
    if (numArgs > 0) {
        out << ", \"args\": {";
        for (int i = 0; i < numArgs; ++i) {
            if (i > 0)
                out << ", ";
            out << '"';
            appendJsonEscaped(out, args[i].key);
            out << "\": " << args[i].value;
        }
        out << '}';
    }
    out << '}';
}

void
appendThreadName(std::ostringstream &out, bool &first, int pid,
                 u32 tid, const std::string &name)
{
    if (!first)
        out << ",\n";
    first = false;
    out << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": "
        << pid << ", \"tid\": " << tid << ", \"args\": {\"name\": \""
        << name << "\"}}";
}

} // namespace

std::string
Tracer::chromeJson(const std::vector<ExternalSpan> &gpuLanes) const
{
    auto threads = collect();

    // Normalize host timestamps to the earliest span so the viewer
    // does not open on hour-scale steady-clock offsets. GPU-model
    // lanes are model cycles, already near zero, and stay on their
    // own axis — the two processes are separate timelines.
    u64 t0 = ~0ull;
    for (const auto &tr : threads)
        for (const auto &r : tr.records)
            t0 = std::min(t0, r.startNs);
    if (t0 == ~0ull)
        t0 = 0;

    std::ostringstream out;
    out.precision(15);
    out << "{\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n";
    bool first = true;
    appendThreadName(out, first, 0, 0, "host-main");
    for (const auto &tr : threads)
        if (tr.tid != 0)
            appendThreadName(out, first, 0, tr.tid,
                             "host-lane-" + std::to_string(tr.tid));
    for (const auto &tr : threads) {
        for (const auto &r : tr.records) {
            appendEvent(out, first, r.phase, r.displayName(),
                        r.cat == nullptr ? "" : r.cat, 0, tr.tid,
                        static_cast<double>(r.startNs - t0) * 1e-3,
                        static_cast<double>(r.durNs) * 1e-3, r.args,
                        r.numArgs);
        }
    }
    // The GPU model's scheduled replay: one process, one lane per
    // stream, so overlap (and the gaps retries/backoff leave) is
    // visible next to the host spans that produced it.
    int maxLane = -1;
    for (const auto &e : gpuLanes)
        maxLane = std::max(maxLane, e.lane);
    for (int lane = 0; lane <= maxLane; ++lane)
        appendThreadName(out, first, 1, static_cast<u32>(lane),
                         "gpu-stream-" + std::to_string(lane));
    for (const auto &e : gpuLanes) {
        appendEvent(out, first, 'X', e.name.c_str(), "gpu-model", 1,
                    static_cast<u32>(e.lane),
                    static_cast<double>(e.startNs) * 1e-3,
                    static_cast<double>(e.durNs) * 1e-3, nullptr, 0);
    }
    out << "\n]}\n";
    return out.str();
}

bool
Tracer::writeChromeJson(const std::string &path,
                        const std::vector<ExternalSpan> &gpuLanes) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::string json = chromeJson(gpuLanes);
    std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return written == json.size();
}

} // namespace tensorfhe::trace
