/**
 * @file
 * MetricsRegistry: one named counter/gauge/histogram interface over
 * the engine's counter islands.
 *
 * Four generations of instrumentation accumulated their own
 * snapshot calls — KernelStats (per-kernel invocations/nanos/
 * elements), EvalOpStats (executed Table-II ops + modUp/modDown
 * conversions), the Workspace arena's alloc/reuse/lease stats, and
 * the resilience retry/checkpoint/integrity counters. The registry
 * reads ALL of them into one flat name -> value snapshot with a
 * stable dotted naming scheme (docs/OBSERVABILITY.md):
 *
 *   kernel.<Kind>.invocations|nanos|elements
 *   evalop.<OP>.count, evalop.modups, evalop.moddowns
 *   workspace.allocs|reuses|returns|reuse_rate   (summed over live
 *                                                 arenas)
 *   resilience.retries|transient_faults|integrity_failures|
 *              checkpoints_taken|checkpoints_resumed
 *   trace.spans_recorded|spans_dropped
 *
 * plus registry-owned custom counters, gauges and log2 histograms
 * (custom.<name>...). snapshotJson() nests the dotted names into one
 * JSON object — the single machine-readable metrics dump every
 * bench emits behind --metrics (bench_util.hh).
 */

#ifndef TENSORFHE_TRACE_METRICS_HH
#define TENSORFHE_TRACE_METRICS_HH

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tensorfhe::exec
{
class Workspace;
}

namespace tensorfhe::trace
{

/** A registry-owned named counter (relaxed atomic). */
class Counter
{
  public:
    void
    add(u64 n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    u64
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void
    reset()
    {
        value_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<u64> value_{0};
};

/**
 * Power-of-two bucket histogram: observe(v) lands in bucket
 * floor(log2(v)) (v = 0 in bucket 0). Lock-free; fine-grained
 * distributions (span durations, batch sizes) without per-observe
 * allocation.
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 64;

    void observe(u64 v);
    u64 count() const;
    u64 sum() const;
    /** Observations in bucket b, i.e. v in [2^b, 2^(b+1)). */
    u64 bucket(std::size_t b) const;
    void reset();

  private:
    std::atomic<u64> buckets_[kBuckets] = {};
    std::atomic<u64> count_{0};
    std::atomic<u64> sum_{0};
};

/** Flat snapshot: dotted metric name -> value. */
using MetricsSnapshot = std::map<std::string, double>;

class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Registry-owned counter, created on first use (named
        custom.<name> in snapshots). */
    Counter &counter(const std::string &name);

    /** Set a gauge to an absolute value (custom.<name>). */
    void setGauge(const std::string &name, double value);

    /** Registry-owned histogram (custom.<name>.count|sum|p_bucket). */
    Histogram &histogram(const std::string &name);

    /**
     * Workspace arenas report per-instance; the registry aggregates
     * every live arena into the workspace.* metrics. Registration is
     * handled by exec::Dispatcher's ctor/dtor.
     */
    void registerWorkspace(const exec::Workspace *ws);
    void unregisterWorkspace(const exec::Workspace *ws);

    /** Read every island + the registry's own metrics. */
    MetricsSnapshot snapshot() const;

    /** snapshot() nested by dotted name as one JSON object. */
    std::string snapshotJson() const;

    /** snapshotJson() to a file; false on I/O failure. */
    bool writeSnapshotJson(const std::string &path) const;

    /** Clear custom counters/gauges/histograms (the islands have
        their own reset() calls; benches reset them directly). */
    void resetCustom();

  private:
    MetricsRegistry() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::vector<const exec::Workspace *> workspaces_;
};

} // namespace tensorfhe::trace

#endif // TENSORFHE_TRACE_METRICS_HH
