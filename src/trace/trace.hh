/**
 * @file
 * Structured span tracing for every layer of the engine.
 *
 * The discipline mirrors TFHE_FAULT_POINT: when the tracer is
 * disarmed, every instrumented scope costs ONE relaxed atomic load
 * and a predicted branch (bench_trace_overhead bounds it under 1% of
 * the LSTM graph workload). When armed, RAII TraceSpans record into
 * thread-local ring buffers — no locks, no allocation in steady
 * state — so concurrent pool lanes trace without contending. A span
 * carries a static name/category, its nesting depth on the recording
 * thread, and up to four numeric args (chunk count, level, stream
 * id, retry attempt, ...).
 *
 * The recorded spans nest workload -> nn layer -> graph node ->
 * dispatcher op -> kernel (plus pool-lane drain spans and boot-stage
 * spans), and export as Chrome trace-event JSON loadable in
 * chrome://tracing or https://ui.perfetto.dev. Extra lanes (the GPU
 * model's per-stream scheduled replay) can be appended at export
 * time so a deep-CNN-with-bootstrap run renders as a real timeline:
 * host spans per thread, modeled kernel streams per lane.
 */

#ifndef TENSORFHE_TRACE_TRACE_HH
#define TENSORFHE_TRACE_TRACE_HH

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tensorfhe::trace
{

/** One numeric span annotation. Keys are static strings. */
struct SpanArg
{
    const char *key = nullptr;
    s64 value = 0;
};

/** One recorded span (or instant event) in a thread's ring buffer. */
struct SpanRecord
{
    static constexpr int kMaxArgs = 4;
    /** Spans whose name is built at runtime (nn layer names) copy it
        here instead of aliasing a static string. */
    static constexpr int kDynName = 24;

    const char *name = nullptr; ///< static; null = dynName is set
    const char *cat = nullptr;
    u64 startNs = 0; ///< steady-clock ns
    u64 durNs = 0;   ///< 0 for instant events
    u32 depth = 0;   ///< nesting depth on the recording thread
    char phase = 'X'; ///< 'X' complete span, 'i' instant event
    char dynName[kDynName] = {};
    int numArgs = 0;
    SpanArg args[kMaxArgs];

    const char *
    displayName() const
    {
        return name != nullptr ? name : dynName;
    }
};

/**
 * Process-wide tracer. arm()/disarm()/collect() are control-plane
 * calls and must not race with spans in flight (benches and tests
 * arm around whole runs, while the pool is quiescent); recording
 * itself is wait-free per thread.
 */
class Tracer
{
  public:
    static Tracer &instance();

    /** Disarmed-path check: one relaxed load. */
    static bool
    armed()
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /**
     * Start a capture. Every recording thread gets its own ring
     * buffer of `capacityPerThread` records; once full, further
     * spans on that thread are dropped and counted (a truncated
     * trace is still a valid trace).
     */
    void arm(std::size_t capacityPerThread = kDefaultCapacity);

    /** Stop recording. Captured spans stay readable until the next
        arm(). */
    void disarm();

    /** Spans of one recording thread, in record-completion order. */
    struct ThreadRecords
    {
        u32 tid = 0; ///< stable lane id (registration order)
        u64 dropped = 0;
        std::vector<SpanRecord> records;
    };

    /** Snapshot every thread's buffer (call while quiescent). */
    std::vector<ThreadRecords> collect() const;

    /** Total spans recorded / dropped since arm(). */
    u64 recordedSpans() const;
    u64 droppedSpans() const;

    /**
     * An export-time lane from outside the host tracer — the GPU
     * model's scheduled replay emits one span per launch with
     * lane = stream, rendered as its own process in the viewer.
     */
    struct ExternalSpan
    {
        std::string name;
        int lane = 0;
        u64 startNs = 0;
        u64 durNs = 0;
    };

    /** Chrome trace-event JSON ("traceEvents" array of X/i/M
        events; ts/dur in microseconds, normalized to the earliest
        recorded span). */
    std::string chromeJson(
        const std::vector<ExternalSpan> &gpuLanes = {}) const;

    /** chromeJson() to a file; false on I/O failure. */
    bool writeChromeJson(
        const std::string &path,
        const std::vector<ExternalSpan> &gpuLanes = {}) const;

    /** Record an instant event (retry fired, fault injected). */
    static void instant(const char *cat, const char *name,
                        const SpanArg *args = nullptr,
                        int numArgs = 0);

    /**
     * Record an already-timed span (steady-clock ns). Used by scopes
     * that measure time anyway — ScopedKernelTimer emits its kernel
     * record through this, so armed kernel spans cost one ring-buffer
     * write and nothing else.
     */
    static void span(const char *cat, const char *name, u64 startNs,
                     u64 durNs, const SpanArg *args = nullptr,
                     int numArgs = 0);

    static constexpr std::size_t kDefaultCapacity = 1u << 16;

    /** Per-thread record storage (defined in trace.cc). */
    struct Buffer;

  private:
    friend class TraceSpan;

    Tracer() = default;
    /** The calling thread's buffer for the current capture
        generation (registers a fresh one on first use). */
    Buffer *threadBuffer();
    void push(const SpanRecord &r);

    static std::atomic<bool> armed_;
};

/**
 * RAII span. Construction checks the armed flag once; when disarmed
 * the object is inert. args added through arg() are dropped once
 * kMaxArgs is reached.
 *
 *     trace::TraceSpan sp("graph", "BsgsSum");
 *     sp.arg("node", id).arg("stream", s);
 */
class TraceSpan
{
  public:
    TraceSpan(const char *cat, const char *name)
    {
        if (Tracer::armed())
            begin(cat, name, nullptr);
    }

    /** Span with a runtime-built name (copied, truncated to
        SpanRecord::kDynName - 1 chars). */
    TraceSpan(const char *cat, const std::string &dynName)
    {
        if (Tracer::armed())
            begin(cat, nullptr, dynName.c_str());
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    ~TraceSpan()
    {
        if (active_)
            end();
    }

    TraceSpan &
    arg(const char *key, s64 value)
    {
        if (active_ && rec_.numArgs < SpanRecord::kMaxArgs)
            rec_.args[rec_.numArgs++] = {key, value};
        return *this;
    }

    bool active() const { return active_; }

  private:
    void begin(const char *cat, const char *name, const char *dyn);
    void end();

    bool active_ = false;
    SpanRecord rec_;
};

} // namespace tensorfhe::trace

/** Plain scoped span (no args). */
#define TFHE_TRACE_CONCAT2(a, b) a##b
#define TFHE_TRACE_CONCAT(a, b) TFHE_TRACE_CONCAT2(a, b)
#define TFHE_TRACE_SPAN(cat, name)                                          \
    ::tensorfhe::trace::TraceSpan TFHE_TRACE_CONCAT(tfheTraceSpan_,         \
                                                    __LINE__)(cat, name)

#endif // TENSORFHE_TRACE_TRACE_HH
