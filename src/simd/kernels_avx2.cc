/**
 * @file
 * AVX2 backend: 4 x u64 lanes. 64-bit multiplies are emulated from
 * 32x32 pieces (mulhi is the classic 4-product schoolbook; mullo is
 * three), unsigned compares go through a sign-bit flip + signed
 * compare. The NTT uses the beta = 2^32 Shoup lane whenever q < 2^30
 * — single-multiply butterflies, which is where the AVX2 speedup
 * lives — and the emulated beta = 2^64 lane otherwise.
 *
 * This TU is compiled with -mavx2 only (no global -march); when the
 * toolchain can't target AVX2 the entry point returns null and the
 * dispatcher never offers the backend.
 */

#include "simd/simd.hh"

#if defined(__AVX2__)

#include <immintrin.h>

#include "simd/vec_kernels.hh"

namespace tensorfhe::simd
{

namespace
{

struct VecAvx2
{
    static constexpr std::size_t W = 4;
    using reg = __m256i;

    static reg
    load(const u64 *p)
    {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
    }
    static void
    store(u64 *p, reg x)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), x);
    }
    static reg
    set1(u64 x)
    {
        return _mm256_set1_epi64x(static_cast<long long>(x));
    }
    static reg add(reg a, reg b) { return _mm256_add_epi64(a, b); }
    static reg sub(reg a, reg b) { return _mm256_sub_epi64(a, b); }
    static reg vand(reg a, reg b) { return _mm256_and_si256(a, b); }
    static reg srl(reg a, int s) { return _mm256_srli_epi64(a, s); }
    static reg sll(reg a, int s) { return _mm256_slli_epi64(a, s); }

    /** low32(a) * low32(b), full 64-bit product. */
    static reg mul32(reg a, reg b) { return _mm256_mul_epu32(a, b); }

    /** Low 64 bits of a * b. */
    static reg
    mullo(reg a, reg b)
    {
        reg bswap = _mm256_shuffle_epi32(b, 0xB1); // [b_hi, b_lo] pairs
        reg cross = _mm256_mullo_epi32(a, bswap);  // [al*bh, ah*bl]
        reg sum = _mm256_add_epi32(cross, _mm256_srli_epi64(cross, 32));
        return _mm256_add_epi64(_mm256_mul_epu32(a, b),
                                _mm256_slli_epi64(sum, 32));
    }

    /** High 64 bits of a * b (schoolbook, carries exact). */
    static reg
    mulhi(reg a, reg b)
    {
        reg ah = _mm256_srli_epi64(a, 32);
        reg bh = _mm256_srli_epi64(b, 32);
        reg ll = _mm256_mul_epu32(a, b);
        reg lh = _mm256_mul_epu32(a, bh);
        reg hl = _mm256_mul_epu32(ah, b);
        reg hh = _mm256_mul_epu32(ah, bh);
        reg lo32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
        reg t = _mm256_add_epi64(lh, _mm256_srli_epi64(ll, 32));
        reg t2 = _mm256_add_epi64(hl, _mm256_and_si256(t, lo32));
        return _mm256_add_epi64(
            _mm256_add_epi64(hh, _mm256_srli_epi64(t, 32)),
            _mm256_srli_epi64(t2, 32));
    }

    /** All-ones where a < b (unsigned). */
    static reg
    ltMask(reg a, reg b)
    {
        reg s = set1(u64(1) << 63);
        return _mm256_cmpgt_epi64(_mm256_xor_si256(b, s),
                                  _mm256_xor_si256(a, s));
    }

    /** x >= b ? x - b : x (unsigned). */
    static reg
    condSub(reg x, reg b)
    {
        return _mm256_sub_epi64(x, _mm256_andnot_si256(ltMask(x, b), b));
    }

    static reg
    gather(const u64 *base, reg idx)
    {
        return _mm256_i64gather_epi64(
            reinterpret_cast<const long long *>(base), idx, 8);
    }

    // --- folded-NTT shuffles (t = 2 layout: [u0,u1,x0,x1]) ---

    static void
    unpackHalf(reg A, reg B, reg &u, reg &x)
    {
        u = _mm256_permute2x128_si256(A, B, 0x20);
        x = _mm256_permute2x128_si256(A, B, 0x31);
    }
    static void
    packHalf(reg u, reg x, reg &A, reg &B)
    {
        A = _mm256_permute2x128_si256(u, x, 0x20);
        B = _mm256_permute2x128_si256(u, x, 0x31);
    }
    /** Two consecutive twiddles, each repeated W/2 times. */
    static reg
    twidHalf(const u64 *p)
    {
        __m128i t =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
        return _mm256_permute4x64_epi64(_mm256_castsi128_si256(t), 0x50);
    }
    /** (s, d) lanes -> interleaved pairs [s0,d0,s1,d1 | s2,d2,s3,d3]. */
    static void
    packInterleave(reg s, reg d, reg &A, reg &B)
    {
        reg lo = _mm256_unpacklo_epi64(s, d);
        reg hi = _mm256_unpackhi_epi64(s, d);
        A = _mm256_permute2x128_si256(lo, hi, 0x20);
        B = _mm256_permute2x128_si256(lo, hi, 0x31);
    }
};

using V = VecAvx2;

bool
nttForwardAvx2(const ntt::TwiddleTable &t, u64 *a)
{
    if (t.n() < 2 * V::W)
        return false;
    if (t.butterfly().haveShoup32)
        return vec::nttForward<V, vec::Shoup32<V>>(t, a, 32);
    return vec::nttForward<V, vec::Shoup64<V>>(t, a, 64);
}

bool
nttInverseAvx2(const ntt::TwiddleTable &t, u64 *a)
{
    if (t.n() < 2 * V::W)
        return false;
    if (t.butterfly().haveShoup32)
        return vec::nttInverse<V, vec::Shoup32<V>>(t, a, 32);
    return vec::nttInverse<V, vec::Shoup64<V>>(t, a, 64);
}

const Ops kAvx2Ops = {
    "avx2",           vec::addSpan<V>,      vec::subSpan<V>,
    vec::mulSpan<V>,  vec::mulTriple<V>,    vec::mulAccum<V>,
    vec::ipAccumLazy<V>, vec::mulShoup<V>,  vec::mulShoupAccum<V>,
    vec::fusedEle<V>, nttForwardAvx2,       nttInverseAvx2,
};

} // namespace

const Ops *
avx2Ops()
{
    return &kAvx2Ops;
}

} // namespace tensorfhe::simd

#else // !__AVX2__

namespace tensorfhe::simd
{

const Ops *
avx2Ops()
{
    return nullptr;
}

} // namespace tensorfhe::simd

#endif
