/**
 * @file
 * Backend selection: CPUID probe + TFHE_SIMD override, resolved once
 * at first ops() call. setBackend() re-points the active table for
 * tests and per-backend bench columns.
 */

#include "simd/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace tensorfhe::simd
{

namespace
{

bool
cpuHas(Backend b)
{
#if defined(__x86_64__) || defined(__i386__)
    switch (b) {
      case Backend::Scalar:
        return true;
      case Backend::Avx2:
        return __builtin_cpu_supports("avx2");
      case Backend::Avx512:
        return __builtin_cpu_supports("avx512f")
            && __builtin_cpu_supports("avx512dq")
            && __builtin_cpu_supports("avx512vl");
    }
    return false;
#else
    return b == Backend::Scalar;
#endif
}

const Ops *
table(Backend b)
{
    switch (b) {
      case Backend::Scalar: return scalarOps();
      case Backend::Avx2: return avx2Ops();
      case Backend::Avx512: return avx512Ops();
    }
    return nullptr;
}

/** Best backend the host runs, honoring TFHE_SIMD. */
const Ops *
resolve()
{
    Backend pick = Backend::Scalar;
    for (Backend b : {Backend::Avx512, Backend::Avx2}) {
        if (cpuHas(b) && table(b)) {
            pick = b;
            break;
        }
    }
    if (const char *env = std::getenv("TFHE_SIMD")) {
        Backend want;
        if (!parseBackend(env, want)) {
            TFHE_LOG_WARN("simd", "TFHE_SIMD=", env,
                          " not recognized; using ",
                          backendName(pick));
        } else if (!cpuHas(want) || !table(want)) {
            TFHE_LOG_WARN("simd", "TFHE_SIMD=", env,
                          " unsupported on this host; using ",
                          backendName(pick));
        } else {
            pick = want;
        }
    }
    return table(pick);
}

std::atomic<const Ops *> &
active()
{
    static std::atomic<const Ops *> a{resolve()};
    return a;
}

} // namespace

const Ops &
ops()
{
    return *active().load(std::memory_order_relaxed);
}

Backend
activeBackend()
{
    const Ops *t = active().load(std::memory_order_relaxed);
    if (t == avx512Ops())
        return Backend::Avx512;
    if (t == avx2Ops())
        return Backend::Avx2;
    return Backend::Scalar;
}

bool
setBackend(Backend b)
{
    if (!backendSupported(b))
        return false;
    active().store(table(b), std::memory_order_relaxed);
    return true;
}

const char *
backendName(Backend b)
{
    switch (b) {
      case Backend::Scalar: return "scalar";
      case Backend::Avx2: return "avx2";
      case Backend::Avx512: return "avx512";
    }
    return "?";
}

bool
backendSupported(Backend b)
{
    return cpuHas(b) && table(b) != nullptr;
}

std::vector<Backend>
supportedBackends()
{
    std::vector<Backend> out;
    for (Backend b :
         {Backend::Scalar, Backend::Avx2, Backend::Avx512})
        if (backendSupported(b))
            out.push_back(b);
    return out;
}

bool
parseBackend(const char *name, Backend &out)
{
    if (!name)
        return false;
    if (std::strcmp(name, "scalar") == 0)
        out = Backend::Scalar;
    else if (std::strcmp(name, "avx2") == 0)
        out = Backend::Avx2;
    else if (std::strcmp(name, "avx512") == 0)
        out = Backend::Avx512;
    else
        return false;
    return true;
}

} // namespace tensorfhe::simd
