/**
 * @file
 * ISA-generic vector kernel bodies, templated on a lane wrapper V.
 *
 * Each per-ISA translation unit (kernels_avx2.cc, kernels_avx512.cc)
 * defines a V struct — W lanes of u64 with loads/stores, mod-2^64
 * add/sub, 64x64 low/high multiplies, unsigned compares, gathers and
 * the handful of cross-lane shuffles the folded NTT stages need —
 * and instantiates the templates here. All the arithmetic lives in
 * this header so the three modmul flavors stay in one place:
 *
 *  - SmallBarrett (q < 2^30): mu = floor(2^(2L+1) / q) fits 32 bits,
 *    every product is a single 32x32 multiply. reduceLazy() maps
 *    x < q^2 to [0, 3.5q); two conditional subtractions canonicalize.
 *  - GenBarrett (any q < 2^62): replicates Modulus::reduce() lane-wise
 *    from the ratio words, including the 128-bit carry chain (carries
 *    are computed by unsigned compare and folded in by subtracting the
 *    all-ones mask). reduceLazy() lands in [0, 3q) exactly like the
 *    scalar estimate; the same two conditional subtractions follow.
 *  - Shoup lazy multiply against a precomputed constant, in three
 *    wordbases: beta = 2^64 (any q < 2^62, emulated mulhi on AVX2),
 *    beta = 2^32 (q < 2^30, single-multiply products — the fast NTT
 *    path), and beta = 2^52 (q < 2^50, AVX-512IFMA, policy defined in
 *    the avx512 TU). All satisfy: x < 4q in, result < 2q out, result
 *    congruent to x*w mod q.
 *
 * The NTT bodies keep the Longa-Naehrig lazy invariants — forward
 * values stay < 4q, inverse values < 2q — and fold the bit-reverse
 * permutation into the last (forward) / first (inverse) stage via
 * gathers over brHalf. Outputs are canonical, bit-identical to the
 * scalar butterfly + permute path. docs/SIMD.md derives the bounds.
 *
 * Because canonical residues are unique, producing canonical outputs
 * by any internal route preserves bit-identity with the scalar
 * backend; only ipAccumLazy exposes a lazy [0, 2q) span across calls,
 * and that contract is shared by all backends.
 */

#ifndef TENSORFHE_SIMD_VEC_KERNELS_HH
#define TENSORFHE_SIMD_VEC_KERNELS_HH

#include <cstddef>
#include <vector>

#include "ntt/twiddle.hh"
#include "simd/simd.hh"

namespace tensorfhe::simd::vec
{

constexpr u64 kSmallQBound = u64(1) << 30;

// ---------------------------------------------------------------
// Barrett contexts
// ---------------------------------------------------------------

/** q < 2^30: single 32x32 multiplies, estimate within 3.5q. */
template <class V>
struct SmallBarrett
{
    using reg = typename V::reg;
    reg q, q2, mu;
    int sh1, sh2;

    explicit SmallBarrett(const Modulus &m)
    {
        int L = m.bits(); // 2^(L-1) <= q < 2^L, L <= 30
        u64 muv = static_cast<u64>((static_cast<u128>(1) << (2 * L + 1))
                                   / m.value());
        q = V::set1(m.value());
        q2 = V::set1(2 * m.value());
        mu = V::set1(muv);
        sh1 = L - 1;
        sh2 = L + 2;
    }

    /** x < q^2 -> r congruent to x, r in [0, 3.5q). */
    reg
    reduceLazy(reg x) const
    {
        reg v = V::srl(x, sh1);
        reg k = V::srl(V::mul32(v, mu), sh2);
        return V::sub(x, V::mul32(k, q));
    }

    /** a, b canonical -> canonical product. */
    reg
    mul(reg a, reg b) const
    {
        reg r = reduceLazy(V::mul32(a, b));
        return V::condSub(V::condSub(r, q2), q);
    }
};

/** Any q < 2^62: lane-wise Modulus::reduce() from the ratio words. */
template <class V>
struct GenBarrett
{
    using reg = typename V::reg;
    reg q, q2, r0, r1;

    explicit GenBarrett(const Modulus &m)
    {
        q = V::set1(m.value());
        q2 = V::set1(2 * m.value());
        r0 = V::set1(m.ratioLo());
        r1 = V::set1(m.ratioHi());
    }

    /**
     * (xh:xl) < q * 2^64 -> r congruent to x, r in [0, 3q). The
     * carry chain mirrors Modulus::reduce(): mid is the u128 sum of
     * three words, whose high word is exactly the two add carries;
     * subtracting an all-ones compare mask adds 1 to the lanes that
     * carried.
     */
    reg
    reduceLazy(reg xl, reg xh) const
    {
        reg lo_r0_hi = V::mulhi(xl, r0);
        reg lo_r1_lo = V::mullo(xl, r1);
        reg lo_r1_hi = V::mulhi(xl, r1);
        reg hi_r0_lo = V::mullo(xh, r0);
        reg hi_r0_hi = V::mulhi(xh, r0);
        reg s = V::add(lo_r0_hi, lo_r1_lo);
        reg c1 = V::ltMask(s, lo_r1_lo);
        reg mid = V::add(s, hi_r0_lo);
        reg c2 = V::ltMask(mid, hi_r0_lo);
        reg k = V::add(V::mullo(xh, r1), V::add(lo_r1_hi, hi_r0_hi));
        k = V::sub(V::sub(k, c1), c2);
        return V::sub(xl, V::mullo(k, q));
    }

    /** a, b canonical -> canonical product. */
    reg
    mul(reg a, reg b) const
    {
        reg r = reduceLazy(V::mullo(a, b), V::mulhi(a, b));
        return V::condSub(V::condSub(r, q), q);
    }
};

// ---------------------------------------------------------------
// Shoup lazy-multiply policies (NTT butterflies)
// ---------------------------------------------------------------

/** beta = 2^64, any q < 2^62: x < 4q -> x*w mod q + {0, q}, < 2q. */
template <class V>
struct Shoup64
{
    static typename V::reg
    lazy(typename V::reg x, typename V::reg w, typename V::reg wsh,
         typename V::reg q)
    {
        typename V::reg k = V::mulhi(x, wsh);
        return V::sub(V::mullo(x, w), V::mullo(k, q));
    }
};

/** beta = 2^32, q < 2^30: all operands fit 32 bits (x < 4q < 2^32),
    so every product is a single 32x32 multiply. */
template <class V>
struct Shoup32
{
    static typename V::reg
    lazy(typename V::reg x, typename V::reg w, typename V::reg wsh,
         typename V::reg q)
    {
        typename V::reg k = V::srl(V::mul32(x, wsh), 32);
        return V::sub(V::mul32(x, w), V::mul32(k, q));
    }
};

// ---------------------------------------------------------------
// Span kernels
// ---------------------------------------------------------------

template <class V>
void
addSpan(u64 *a, const u64 *b, std::size_t n, u64 q)
{
    using reg = typename V::reg;
    reg qv = V::set1(q);
    std::size_t i = 0;
    for (; i + V::W <= n; i += V::W)
        V::store(a + i, V::condSub(V::add(V::load(a + i), V::load(b + i)),
                                   qv));
    for (; i < n; ++i)
        a[i] = addMod(a[i], b[i], q);
}

template <class V>
void
subSpan(u64 *a, const u64 *b, std::size_t n, u64 q)
{
    using reg = typename V::reg;
    reg qv = V::set1(q);
    std::size_t i = 0;
    for (; i + V::W <= n; i += V::W) {
        reg x = V::load(a + i);
        reg y = V::load(b + i);
        reg d = V::add(V::sub(x, y), V::vand(V::ltMask(x, y), qv));
        V::store(a + i, d);
    }
    for (; i < n; ++i)
        a[i] = subMod(a[i], b[i], q);
}

template <class V, class B>
void
mulSpanWith(const B &bar, u64 *a, const u64 *b, std::size_t n)
{
    std::size_t i = 0;
    for (; i + V::W <= n; i += V::W)
        V::store(a + i, bar.mul(V::load(a + i), V::load(b + i)));
    (void)i; // tail handled by the caller
}

template <class V>
void
mulSpan(u64 *a, const u64 *b, std::size_t n, const Modulus &m)
{
    std::size_t body = n - n % V::W;
    if (m.value() < kSmallQBound)
        mulSpanWith<V>(SmallBarrett<V>(m), a, b, body);
    else
        mulSpanWith<V>(GenBarrett<V>(m), a, b, body);
    for (std::size_t i = body; i < n; ++i)
        a[i] = m.mul(a[i], b[i]);
}

template <class V, class B>
void
mulTripleWith(const B &bar, u64 *d0, u64 *d1, u64 *d2, const u64 *a0,
              const u64 *a1, const u64 *b0, const u64 *b1, std::size_t n)
{
    using reg = typename V::reg;
    for (std::size_t i = 0; i + V::W <= n; i += V::W) {
        reg ra0 = V::load(a0 + i);
        reg ra1 = V::load(a1 + i);
        reg rb0 = V::load(b0 + i);
        reg rb1 = V::load(b1 + i);
        reg p01 = bar.mul(ra0, rb1);
        reg p10 = bar.mul(ra1, rb0);
        V::store(d0 + i, bar.mul(ra0, rb0));
        V::store(d1 + i, V::condSub(V::add(p01, p10), bar.q));
        V::store(d2 + i, bar.mul(ra1, rb1));
    }
}

template <class V>
void
mulTriple(u64 *d0, u64 *d1, u64 *d2, const u64 *a0, const u64 *a1,
          const u64 *b0, const u64 *b1, std::size_t n, const Modulus &m)
{
    std::size_t body = n - n % V::W;
    if (m.value() < kSmallQBound)
        mulTripleWith<V>(SmallBarrett<V>(m), d0, d1, d2, a0, a1, b0, b1,
                         body);
    else
        mulTripleWith<V>(GenBarrett<V>(m), d0, d1, d2, a0, a1, b0, b1,
                         body);
    for (std::size_t i = body; i < n; ++i) {
        d0[i] = m.mul(a0[i], b0[i]);
        d1[i] = m.add(m.mul(a0[i], b1[i]), m.mul(a1[i], b0[i]));
        d2[i] = m.mul(a1[i], b1[i]);
    }
}

template <class V, class B>
void
mulAccumWith(const B &bar, u64 *acc, const u64 *a, const u64 *b,
             std::size_t n)
{
    using reg = typename V::reg;
    for (std::size_t i = 0; i + V::W <= n; i += V::W) {
        reg p = bar.mul(V::load(a + i), V::load(b + i));
        V::store(acc + i, V::condSub(V::add(V::load(acc + i), p), bar.q));
    }
}

template <class V>
void
mulAccum(u64 *acc, const u64 *a, const u64 *b, std::size_t n,
         const Modulus &m)
{
    std::size_t body = n - n % V::W;
    if (m.value() < kSmallQBound)
        mulAccumWith<V>(SmallBarrett<V>(m), acc, a, b, body);
    else
        mulAccumWith<V>(GenBarrett<V>(m), acc, a, b, body);
    for (std::size_t i = body; i < n; ++i)
        acc[i] = m.add(acc[i], m.mul(a[i], b[i]));
}

/**
 * Lazy inner-product row. Vector cells keep acc in [0, 2q) between
 * rows: small q adds the raw [0, 3.5q) estimate (sum < 5.5q < 2^33,
 * two conditional 2q subtractions re-establish the bound), generic q
 * first pulls the estimate under 2q so the sum stays < 4q < 2^64.
 * Tail cells run the canonical scalar body — a valid [0, 2q)
 * representation as well, and consistently so per cell across rows.
 */
template <class V>
void
ipAccumLazy(u64 *acc0, u64 *acc1, const u64 *u, const u64 *kb,
            const u64 *ka, std::size_t n, const Modulus &m,
            bool canonicalize)
{
    using reg = typename V::reg;
    std::size_t body = n - n % V::W;
    if (m.value() < kSmallQBound) {
        SmallBarrett<V> bar(m);
        for (std::size_t i = 0; i + V::W <= body; i += V::W) {
            reg ru = V::load(u + i);
            reg p0 = bar.reduceLazy(V::mul32(ru, V::load(kb + i)));
            reg p1 = bar.reduceLazy(V::mul32(ru, V::load(ka + i)));
            reg a0 = V::add(V::load(acc0 + i), p0);
            reg a1 = V::add(V::load(acc1 + i), p1);
            a0 = V::condSub(V::condSub(a0, bar.q2), bar.q2);
            a1 = V::condSub(V::condSub(a1, bar.q2), bar.q2);
            if (canonicalize) {
                a0 = V::condSub(a0, bar.q);
                a1 = V::condSub(a1, bar.q);
            }
            V::store(acc0 + i, a0);
            V::store(acc1 + i, a1);
        }
    } else {
        GenBarrett<V> bar(m);
        for (std::size_t i = 0; i + V::W <= body; i += V::W) {
            reg ru = V::load(u + i);
            reg rkb = V::load(kb + i);
            reg rka = V::load(ka + i);
            reg p0 = V::condSub(
                bar.reduceLazy(V::mullo(ru, rkb), V::mulhi(ru, rkb)),
                bar.q2);
            reg p1 = V::condSub(
                bar.reduceLazy(V::mullo(ru, rka), V::mulhi(ru, rka)),
                bar.q2);
            reg a0 = V::condSub(V::add(V::load(acc0 + i), p0), bar.q2);
            reg a1 = V::condSub(V::add(V::load(acc1 + i), p1), bar.q2);
            if (canonicalize) {
                a0 = V::condSub(a0, bar.q);
                a1 = V::condSub(a1, bar.q);
            }
            V::store(acc0 + i, a0);
            V::store(acc1 + i, a1);
        }
    }
    u64 q = m.value();
    for (std::size_t i = body; i < n; ++i) {
        acc0[i] = m.add(acc0[i], m.mul(u[i], kb[i]));
        acc1[i] = m.add(acc1[i], m.mul(u[i], ka[i]));
        if (canonicalize) {
            if (acc0[i] >= q)
                acc0[i] -= q;
            if (acc1[i] >= q)
                acc1[i] -= q;
        }
    }
}

template <class V>
void
mulShoup(u64 *a, u64 w, u64 wShoup, std::size_t n, u64 q)
{
    using reg = typename V::reg;
    reg qv = V::set1(q);
    reg wv = V::set1(w);
    reg wsh = V::set1(wShoup);
    std::size_t i = 0;
    for (; i + V::W <= n; i += V::W) {
        reg r = Shoup64<V>::lazy(V::load(a + i), wv, wsh, qv);
        V::store(a + i, V::condSub(r, qv));
    }
    for (; i < n; ++i)
        a[i] = mulModShoup(a[i], w, wShoup, q);
}

template <class V>
void
mulShoupAccum(u64 *acc, const u64 *src, u64 w, u64 wShoup, std::size_t n,
              u64 q)
{
    using reg = typename V::reg;
    reg qv = V::set1(q);
    reg wv = V::set1(w);
    reg wsh = V::set1(wShoup);
    std::size_t i = 0;
    for (; i + V::W <= n; i += V::W) {
        reg r = V::condSub(Shoup64<V>::lazy(V::load(src + i), wv, wsh, qv),
                           qv);
        V::store(acc + i, V::condSub(V::add(V::load(acc + i), r), qv));
    }
    for (; i < n; ++i)
        acc[i] = addMod(acc[i], mulModShoup(src[i], w, wShoup, q), q);
}

// ---------------------------------------------------------------
// Fused-elementwise register program
// ---------------------------------------------------------------

template <class V, class B>
void
fusedEleWith(const B &bar, const EleIns *ins, std::size_t numIns,
             u16 result, u64 *o0, u64 *o1, const u64 *const *in0,
             const u64 *const *in1, const u64 *const *pts, std::size_t n)
{
    using reg = typename V::reg;
    constexpr std::size_t kMaxRegs = 8;
    for (std::size_t c = 0; c + V::W <= n; c += V::W) {
        reg r0[kMaxRegs];
        reg r1[kMaxRegs];
        for (std::size_t k = 0; k < numIns; ++k) {
            const EleIns &in = ins[k];
            switch (in.op) {
              case 0: // Load
                  r0[in.dst] = V::load(in0[in.idx] + c);
                  r1[in.dst] = V::load(in1[in.idx] + c);
                  break;
              case 1: // AddCt
                  r0[in.dst] =
                      V::condSub(V::add(r0[in.dst], r0[in.src]), bar.q);
                  r1[in.dst] =
                      V::condSub(V::add(r1[in.dst], r1[in.src]), bar.q);
                  break;
              case 2: { // SubCt
                  reg x0 = r0[in.dst];
                  reg x1 = r1[in.dst];
                  r0[in.dst] =
                      V::add(V::sub(x0, r0[in.src]),
                             V::vand(V::ltMask(x0, r0[in.src]), bar.q));
                  r1[in.dst] =
                      V::add(V::sub(x1, r1[in.src]),
                             V::vand(V::ltMask(x1, r1[in.src]), bar.q));
                  break;
              }
              case 3: { // MulPt
                  reg p = V::load(pts[in.idx] + c);
                  r0[in.dst] = bar.mul(r0[in.dst], p);
                  r1[in.dst] = bar.mul(r1[in.dst], p);
                  break;
              }
              case 4: { // AddPt
                  reg p = V::load(pts[in.idx] + c);
                  r0[in.dst] = V::condSub(V::add(r0[in.dst], p), bar.q);
                  break;
              }
            }
        }
        V::store(o0 + c, r0[result]);
        V::store(o1 + c, r1[result]);
    }
}

template <class V>
void
fusedEle(const EleIns *ins, std::size_t numIns, u16 result, u64 *o0,
         u64 *o1, const u64 *const *in0, const u64 *const *in1,
         const u64 *const *pts, std::size_t n, const Modulus &m)
{
    std::size_t body = n - n % V::W;
    if (m.value() < kSmallQBound)
        fusedEleWith<V>(SmallBarrett<V>(m), ins, numIns, result, o0, o1,
                        in0, in1, pts, body);
    else
        fusedEleWith<V>(GenBarrett<V>(m), ins, numIns, result, o0, o1, in0,
                        in1, pts, body);
    // Tail cells: the exact scalar interpreter body.
    constexpr std::size_t kMaxRegs = 8;
    for (std::size_t c = body; c < n; ++c) {
        u64 r0[kMaxRegs];
        u64 r1[kMaxRegs];
        for (std::size_t k = 0; k < numIns; ++k) {
            const EleIns &in = ins[k];
            switch (in.op) {
              case 0:
                  r0[in.dst] = in0[in.idx][c];
                  r1[in.dst] = in1[in.idx][c];
                  break;
              case 1:
                  r0[in.dst] = m.add(r0[in.dst], r0[in.src]);
                  r1[in.dst] = m.add(r1[in.dst], r1[in.src]);
                  break;
              case 2:
                  r0[in.dst] = m.sub(r0[in.dst], r0[in.src]);
                  r1[in.dst] = m.sub(r1[in.dst], r1[in.src]);
                  break;
              case 3: {
                  u64 p = pts[in.idx][c];
                  r0[in.dst] = m.mul(r0[in.dst], p);
                  r1[in.dst] = m.mul(r1[in.dst], p);
                  break;
              }
              case 4:
                  r0[in.dst] = m.add(r0[in.dst], pts[in.idx][c]);
                  break;
            }
        }
        o0[c] = r0[result];
        o1[c] = r1[result];
    }
}

// ---------------------------------------------------------------
// NTT (folded bit-reverse permutation)
// ---------------------------------------------------------------

/** Twiddle pointers for one transform, beta-selected. */
struct NttTabs
{
    const u64 *psi = nullptr;       ///< psiRev (values)
    const u64 *psiSh = nullptr;     ///< Shoup companions, chosen beta
    const u64 *psiInv = nullptr;
    const u64 *psiInvSh = nullptr;
    const u64 *fwdTw = nullptr;     ///< reordered forward last stage
    const u64 *fwdTwSh = nullptr;
    const u64 *brHalf = nullptr;
    u64 nInv = 0, nInvSh = 0;
    u64 invW = 0, invWSh = 0;       ///< psiInvRev[1] * nInv
    u64 q = 0;
    std::size_t n = 0;
};

inline NttTabs
makeTabs(const ntt::TwiddleTable &t, int beta)
{
    const ntt::ButterflyTables &bf = t.butterfly();
    NttTabs tb;
    tb.psi = bf.psiRev.data();
    tb.psiInv = bf.psiInvRev.data();
    tb.fwdTw = bf.fwdLastTw.data();
    tb.brHalf = bf.brHalf.data();
    tb.nInv = bf.nInv;
    tb.invW = bf.invLastW;
    tb.q = t.q();
    tb.n = t.n();
    switch (beta) {
      case 32:
          tb.psiSh = bf.psiRevShoup32.data();
          tb.psiInvSh = bf.psiInvRevShoup32.data();
          tb.fwdTwSh = bf.fwdLastTwShoup32.data();
          tb.nInvSh = bf.nInvShoup32;
          tb.invWSh = bf.invLastWShoup32;
          break;
      case 52:
          tb.psiSh = bf.psiRevShoup52.data();
          tb.psiInvSh = bf.psiInvRevShoup52.data();
          tb.fwdTwSh = bf.fwdLastTwShoup52.data();
          tb.nInvSh = bf.nInvShoup52;
          tb.invWSh = bf.invLastWShoup52;
          break;
      default:
          tb.psiSh = bf.psiRevShoup.data();
          tb.psiInvSh = bf.psiInvRevShoup.data();
          tb.fwdTwSh = bf.fwdLastTwShoup.data();
          tb.nInvSh = bf.nInvShoup;
          tb.invWSh = bf.invLastWShoup;
          break;
    }
    return tb;
}

/**
 * Forward CT pass, natural order in and out. Values stay < 4q across
 * stages (input u gets one conditional 2q subtraction, the lazy Shoup
 * product is < 2q, so both outputs are < 4q). Stage t == 2 writes to
 * `tmp`; the final t == 1 stage gathers its pairs from tmp through
 * brHalf, applies the reordered fwdTw twiddles and stores canonical
 * natural-order outputs — the standalone bit-reverse pass vanishes
 * into those gathers. Requires n >= 2 * V::W.
 */
template <class V, class MulT>
void
nttForwardCore(const NttTabs &tb, u64 *a, u64 *tmp)
{
    using reg = typename V::reg;
    constexpr std::size_t W = V::W;
    const std::size_t n = tb.n;
    const reg qv = V::set1(tb.q);
    const reg q2 = V::set1(2 * tb.q);

    // Full-width stages: t = n/2 ... W, twiddle splat per group.
    std::size_t t = n / 2;
    std::size_t m = 1;
    for (; t >= W; m <<= 1, t >>= 1) {
        for (std::size_t i = 0; i < m; ++i) {
            const reg s = V::set1(tb.psi[m + i]);
            const reg ssh = V::set1(tb.psiSh[m + i]);
            u64 *base = a + 2 * i * t;
            for (std::size_t j = 0; j < t; j += W) {
                reg u = V::condSub(V::load(base + j), q2);
                reg v = MulT::lazy(V::load(base + j + t), s, ssh, qv);
                V::store(base + j, V::add(u, v));
                V::store(base + j + t, V::add(V::sub(u, v), q2));
            }
        }
    }

    // Half-width stage: t = W/2, two groups per register pair. For
    // W == 4 this is the t == 2 stage and writes tmp.
    {
        const std::size_t mm = n / W;
        u64 *dst = (W == 4) ? tmp : a;
        for (std::size_t i = 0; i < mm; i += 2) {
            reg A = V::load(a + i * W);
            reg B = V::load(a + i * W + W);
            reg u, x;
            V::unpackHalf(A, B, u, x);
            const reg s = V::twidHalf(tb.psi + mm + i);
            const reg ssh = V::twidHalf(tb.psiSh + mm + i);
            u = V::condSub(u, q2);
            reg v = MulT::lazy(x, s, ssh, qv);
            V::packHalf(V::add(u, v), V::add(V::sub(u, v), q2), A, B);
            V::store(dst + i * W, A);
            V::store(dst + i * W + W, B);
        }
    }

    // Quarter-width stage (W == 8 only): t = 2, writes tmp.
    if constexpr (W == 8) {
        const std::size_t mm = n / 4;
        for (std::size_t i = 0; i < mm; i += 4) {
            reg A = V::load(a + i * 4);
            reg B = V::load(a + i * 4 + W);
            reg u, x;
            V::unpackQuarter(A, B, u, x);
            const reg s = V::twidQuarter(tb.psi + mm + i);
            const reg ssh = V::twidQuarter(tb.psiSh + mm + i);
            u = V::condSub(u, q2);
            reg v = MulT::lazy(x, s, ssh, qv);
            V::packQuarter(V::add(u, v), V::add(V::sub(u, v), q2), A, B);
            V::store(tmp + i * 4, A);
            V::store(tmp + i * 4 + W, B);
        }
    }

    // Final stage t = 1 with the permutation folded in: output
    // position r takes the pre-stage pair tmp[2*brHalf[r] + {0,1}]
    // and twiddle fwdTw[r]; both outputs are canonicalized.
    {
        const std::size_t half = n / 2;
        for (std::size_t r = 0; r < half; r += W) {
            reg idx = V::sll(V::load(tb.brHalf + r), 1);
            reg u = V::condSub(V::gather(tmp, idx), q2);
            reg v = MulT::lazy(V::gather(tmp + 1, idx),
                               V::load(tb.fwdTw + r),
                               V::load(tb.fwdTwSh + r), qv);
            reg s0 = V::condSub(V::condSub(V::add(u, v), q2), qv);
            reg d0 = V::condSub(
                V::condSub(V::add(V::sub(u, v), q2), q2), qv);
            V::store(a + r, s0);
            V::store(a + r + half, d0);
        }
    }
}

/**
 * Inverse GS pass, natural order in and out, values < 2q across
 * stages. The first (t == 1) stage gathers natural-order inputs
 * through brHalf — folding the bit-reverse permutation — and writes
 * interleaved pairs to tmp; stage t == 2 moves tmp back into a; the
 * last stage multiplies by nInv (and psiInvRev[1]*nInv on the
 * difference leg) and canonicalizes. Requires n >= 2 * V::W.
 */
template <class V, class MulT>
void
nttInverseCore(const NttTabs &tb, u64 *a, u64 *tmp)
{
    using reg = typename V::reg;
    constexpr std::size_t W = V::W;
    const std::size_t n = tb.n;
    const std::size_t half = n / 2;
    const reg qv = V::set1(tb.q);
    const reg q2 = V::set1(2 * tb.q);

    // Stage t = 1 (h = n/2 groups): group i reads a[brHalf[i]] and
    // a[brHalf[i] + n/2] (canonical inputs), writes pairs tmp[2i],
    // tmp[2i+1]. Sum leg stays < 2q; difference leg goes through the
    // lazy Shoup multiply.
    for (std::size_t i = 0; i < half; i += W) {
        reg idx = V::load(tb.brHalf + i);
        reg u = V::gather(a, idx);
        reg v = V::gather(a + half, idx);
        reg s0 = V::add(u, v);
        reg d = MulT::lazy(V::add(V::sub(u, v), qv),
                           V::load(tb.psiInv + half + i),
                           V::load(tb.psiInvSh + half + i), qv);
        reg A, B;
        V::packInterleave(s0, d, A, B);
        V::store(tmp + 2 * i, A);
        V::store(tmp + 2 * i + W, B);
    }

    // Quarter-width stage (W == 8 only): t = 2, tmp -> a.
    if constexpr (W == 8) {
        const std::size_t h = n / 4;
        for (std::size_t i = 0; i < h; i += 4) {
            reg A = V::load(tmp + i * 4);
            reg B = V::load(tmp + i * 4 + W);
            reg u, x;
            V::unpackQuarter(A, B, u, x);
            reg s0 = V::condSub(V::add(u, x), q2);
            reg d = MulT::lazy(V::add(V::sub(u, x), q2),
                               V::twidQuarter(tb.psiInv + h + i),
                               V::twidQuarter(tb.psiInvSh + h + i), qv);
            V::packQuarter(s0, d, A, B);
            V::store(a + i * 4, A);
            V::store(a + i * 4 + W, B);
        }
    }

    // Half-width stage: t = W/2. For W == 4 this is the t == 2 stage
    // and reads tmp; for W == 8 it runs in place on a.
    {
        const std::size_t h = n / W;
        const u64 *src = (W == 4) ? tmp : a;
        for (std::size_t i = 0; i < h; i += 2) {
            reg A = V::load(src + i * W);
            reg B = V::load(src + i * W + W);
            reg u, x;
            V::unpackHalf(A, B, u, x);
            reg s0 = V::condSub(V::add(u, x), q2);
            reg d = MulT::lazy(V::add(V::sub(u, x), q2),
                               V::twidHalf(tb.psiInv + h + i),
                               V::twidHalf(tb.psiInvSh + h + i), qv);
            V::packHalf(s0, d, A, B);
            V::store(a + i * W, A);
            V::store(a + i * W + W, B);
        }
    }

    // Full-width stages: t = W ... n/4, twiddle splat per group.
    for (std::size_t t = W; t <= n / 4; t <<= 1) {
        const std::size_t h = n / (2 * t);
        for (std::size_t i = 0; i < h; ++i) {
            const reg s = V::set1(tb.psiInv[h + i]);
            const reg ssh = V::set1(tb.psiInvSh[h + i]);
            u64 *base = a + 2 * i * t;
            for (std::size_t j = 0; j < t; j += W) {
                reg u = V::load(base + j);
                reg x = V::load(base + j + t);
                V::store(base + j, V::condSub(V::add(u, x), q2));
                V::store(base + j + t,
                         MulT::lazy(V::add(V::sub(u, x), q2), s, ssh, qv));
            }
        }
    }

    // Last stage t = n/2 (one group): fold in nInv on the sum leg and
    // psiInvRev[1] * nInv on the difference leg, canonicalize.
    {
        const reg sN = V::set1(tb.nInv);
        const reg sNsh = V::set1(tb.nInvSh);
        const reg sW = V::set1(tb.invW);
        const reg sWsh = V::set1(tb.invWSh);
        for (std::size_t j = 0; j < half; j += W) {
            reg u = V::load(a + j);
            reg x = V::load(a + j + half);
            reg s0 = MulT::lazy(V::condSub(V::add(u, x), q2), sN, sNsh, qv);
            reg d = MulT::lazy(V::add(V::sub(u, x), q2), sW, sWsh, qv);
            V::store(a + j, V::condSub(s0, qv));
            V::store(a + j + half, V::condSub(d, qv));
        }
    }
}

/** Per-transform scratch for the folded stages. */
inline u64 *
nttScratch(std::size_t n)
{
    thread_local std::vector<u64> buf;
    if (buf.size() < n)
        buf.resize(n);
    return buf.data();
}

template <class V, class MulT>
bool
nttForward(const ntt::TwiddleTable &t, u64 *a, int beta)
{
    nttForwardCore<V, MulT>(makeTabs(t, beta), a, nttScratch(t.n()));
    return true;
}

template <class V, class MulT>
bool
nttInverse(const ntt::TwiddleTable &t, u64 *a, int beta)
{
    nttInverseCore<V, MulT>(makeTabs(t, beta), a, nttScratch(t.n()));
    return true;
}

} // namespace tensorfhe::simd::vec

#endif // TENSORFHE_SIMD_VEC_KERNELS_HH
