/**
 * @file
 * Scalar backend: the exact pre-SIMD loop bodies of exec/kernels.cc
 * and ntt_butterfly.cc, kernel by kernel. This is the bit-identity
 * reference the vector lanes are tested against, and the fallback on
 * hosts (or forced runs) without AVX.
 */

#include "simd/simd.hh"

namespace tensorfhe::simd
{

namespace
{

void
addSpanScalar(u64 *a, const u64 *b, std::size_t n, u64 q)
{
    for (std::size_t c = 0; c < n; ++c)
        a[c] = addMod(a[c], b[c], q);
}

void
subSpanScalar(u64 *a, const u64 *b, std::size_t n, u64 q)
{
    for (std::size_t c = 0; c < n; ++c)
        a[c] = subMod(a[c], b[c], q);
}

void
mulSpanScalar(u64 *a, const u64 *b, std::size_t n, const Modulus &m)
{
    for (std::size_t c = 0; c < n; ++c)
        a[c] = m.mul(a[c], b[c]);
}

void
mulTripleScalar(u64 *d0, u64 *d1, u64 *d2, const u64 *a0,
                const u64 *a1, const u64 *b0, const u64 *b1,
                std::size_t n, const Modulus &m)
{
    for (std::size_t c = 0; c < n; ++c) {
        d0[c] = m.mul(a0[c], b0[c]);
        d1[c] = m.add(m.mul(a0[c], b1[c]), m.mul(a1[c], b0[c]));
        d2[c] = m.mul(a1[c], b1[c]);
    }
}

void
mulAccumScalar(u64 *acc, const u64 *a, const u64 *b, std::size_t n,
               const Modulus &m)
{
    for (std::size_t c = 0; c < n; ++c)
        acc[c] = m.add(acc[c], m.mul(a[c], b[c]));
}

void
ipAccumLazyScalar(u64 *acc0, u64 *acc1, const u64 *u, const u64 *kb,
                  const u64 *ka, std::size_t n, const Modulus &m,
                  bool canonicalize)
{
    // The scalar lane accumulates canonically (the original kernel
    // body), which is a valid [0, 2q) representation between rows;
    // the final conditional subtraction is then a no-op but keeps
    // the entry's contract uniform across backends.
    u64 q = m.value();
    for (std::size_t c = 0; c < n; ++c) {
        acc0[c] = m.add(acc0[c], m.mul(u[c], kb[c]));
        acc1[c] = m.add(acc1[c], m.mul(u[c], ka[c]));
        if (canonicalize) {
            if (acc0[c] >= q)
                acc0[c] -= q;
            if (acc1[c] >= q)
                acc1[c] -= q;
        }
    }
}

void
mulShoupScalar(u64 *a, u64 w, u64 wShoup, std::size_t n, u64 q)
{
    for (std::size_t c = 0; c < n; ++c)
        a[c] = mulModShoup(a[c], w, wShoup, q);
}

void
mulShoupAccumScalar(u64 *acc, const u64 *src, u64 w, u64 wShoup,
                    std::size_t n, u64 q)
{
    for (std::size_t c = 0; c < n; ++c)
        acc[c] = addMod(acc[c], mulModShoup(src[c], w, wShoup, q), q);
}

void
fusedEleScalar(const EleIns *ins, std::size_t numIns, u16 result,
               u64 *o0, u64 *o1, const u64 *const *in0,
               const u64 *const *in1, const u64 *const *pts,
               std::size_t n, const Modulus &m)
{
    constexpr std::size_t kMaxRegs = 8;
    for (std::size_t c = 0; c < n; ++c) {
        u64 r0[kMaxRegs];
        u64 r1[kMaxRegs];
        for (std::size_t k = 0; k < numIns; ++k) {
            const EleIns &in = ins[k];
            switch (in.op) {
              case 0: // Load
                  r0[in.dst] = in0[in.idx][c];
                  r1[in.dst] = in1[in.idx][c];
                  break;
              case 1: // AddCt
                  r0[in.dst] = m.add(r0[in.dst], r0[in.src]);
                  r1[in.dst] = m.add(r1[in.dst], r1[in.src]);
                  break;
              case 2: // SubCt
                  r0[in.dst] = m.sub(r0[in.dst], r0[in.src]);
                  r1[in.dst] = m.sub(r1[in.dst], r1[in.src]);
                  break;
              case 3: { // MulPt
                  u64 p = pts[in.idx][c];
                  r0[in.dst] = m.mul(r0[in.dst], p);
                  r1[in.dst] = m.mul(r1[in.dst], p);
                  break;
              }
              case 4: // AddPt
                  r0[in.dst] = m.add(r0[in.dst], pts[in.idx][c]);
                  break;
            }
        }
        o0[c] = r0[result];
        o1[c] = r1[result];
    }
}

bool
nttDecline(const ntt::TwiddleTable &, u64 *)
{
    // The scalar NTT lives in ntt_butterfly.cc (CT/GS + permute);
    // declining routes the caller there.
    return false;
}

const Ops kScalarOps = {
    "scalar",        addSpanScalar,       subSpanScalar,
    mulSpanScalar,   mulTripleScalar,     mulAccumScalar,
    ipAccumLazyScalar, mulShoupScalar,    mulShoupAccumScalar,
    fusedEleScalar,  nttDecline,          nttDecline,
};

} // namespace

const Ops *
scalarOps()
{
    return &kScalarOps;
}

} // namespace tensorfhe::simd
