/**
 * @file
 * AVX-512 lane wrapper (8 x u64), shared by kernels_avx512.cc and the
 * IFMA sub-path TU kernels_avx512ifma.cc (which is compiled with
 * -mavx512ifma on top and must not duplicate the wrapper). Native
 * 64-bit low multiplies (DQ) and mask-register compares; mulhi is
 * still the 32x32 schoolbook.
 */

#ifndef TENSORFHE_SIMD_VEC_AVX512_HH
#define TENSORFHE_SIMD_VEC_AVX512_HH

#include "common/types.hh"
#include "ntt/twiddle.hh"

namespace tensorfhe::simd::detail
{

/** IFMA NTT hooks (kernels_avx512ifma.cc). Return false when the
    build lacks AVX-512IFMA support or q has no beta = 2^52 tables;
    the caller falls back to the DQ lanes. */
bool nttForwardIfma(const ntt::TwiddleTable &t, u64 *a);
bool nttInverseIfma(const ntt::TwiddleTable &t, u64 *a);

} // namespace tensorfhe::simd::detail

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace tensorfhe::simd
{

struct VecAvx512
{
    static constexpr std::size_t W = 8;
    using reg = __m512i;

    static reg
    load(const u64 *p)
    {
        return _mm512_loadu_si512(static_cast<const void *>(p));
    }
    static void
    store(u64 *p, reg x)
    {
        _mm512_storeu_si512(static_cast<void *>(p), x);
    }
    static reg
    set1(u64 x)
    {
        return _mm512_set1_epi64(static_cast<long long>(x));
    }
    static reg add(reg a, reg b) { return _mm512_add_epi64(a, b); }
    static reg sub(reg a, reg b) { return _mm512_sub_epi64(a, b); }
    static reg vand(reg a, reg b) { return _mm512_and_si512(a, b); }
    static reg srl(reg a, int s) { return _mm512_srli_epi64(a, s); }
    static reg sll(reg a, int s) { return _mm512_slli_epi64(a, s); }

    static reg mul32(reg a, reg b) { return _mm512_mul_epu32(a, b); }
    static reg mullo(reg a, reg b) { return _mm512_mullo_epi64(a, b); }

    static reg
    mulhi(reg a, reg b)
    {
        reg ah = _mm512_srli_epi64(a, 32);
        reg bh = _mm512_srli_epi64(b, 32);
        reg ll = _mm512_mul_epu32(a, b);
        reg lh = _mm512_mul_epu32(a, bh);
        reg hl = _mm512_mul_epu32(ah, b);
        reg hh = _mm512_mul_epu32(ah, bh);
        reg lo32 = _mm512_set1_epi64(0xFFFFFFFFLL);
        reg t = _mm512_add_epi64(lh, _mm512_srli_epi64(ll, 32));
        reg t2 = _mm512_add_epi64(hl, _mm512_and_si512(t, lo32));
        return _mm512_add_epi64(
            _mm512_add_epi64(hh, _mm512_srli_epi64(t, 32)),
            _mm512_srli_epi64(t2, 32));
    }

    static reg
    ltMask(reg a, reg b)
    {
        return _mm512_movm_epi64(_mm512_cmplt_epu64_mask(a, b));
    }

    static reg
    condSub(reg x, reg b)
    {
        __mmask8 m = _mm512_cmpge_epu64_mask(x, b);
        return _mm512_mask_sub_epi64(x, m, x, b);
    }

    static reg
    gather(const u64 *base, reg idx)
    {
        // Masked form with an explicit src: the plain intrinsic's
        // undefined pass-through operand trips -Wmaybe-uninitialized
        // on GCC.
        return _mm512_mask_i64gather_epi64(
            _mm512_setzero_si512(), 0xFF, idx,
            static_cast<const void *>(base), 8);
    }

    // --- folded-NTT shuffles ---

    /** t = 4 layout: A/B are whole groups [u0..u3, x0..x3]. */
    static void
    unpackHalf(reg A, reg B, reg &u, reg &x)
    {
        u = _mm512_shuffle_i64x2(A, B, 0x44);
        x = _mm512_shuffle_i64x2(A, B, 0xEE);
    }
    static void
    packHalf(reg u, reg x, reg &A, reg &B)
    {
        A = _mm512_shuffle_i64x2(u, x, 0x44);
        B = _mm512_shuffle_i64x2(u, x, 0xEE);
    }
    static reg
    twidHalf(const u64 *p)
    {
        __m128i t =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
        reg idx = _mm512_set_epi64(1, 1, 1, 1, 0, 0, 0, 0);
        return _mm512_permutexvar_epi64(idx, _mm512_zextsi128_si512(t));
    }

    /** t = 2 layout: A/B each hold two groups [u0,u1,x0,x1]. */
    static void
    unpackQuarter(reg A, reg B, reg &u, reg &x)
    {
        reg iu = _mm512_set_epi64(13, 12, 9, 8, 5, 4, 1, 0);
        reg ix = _mm512_set_epi64(15, 14, 11, 10, 7, 6, 3, 2);
        u = _mm512_permutex2var_epi64(A, iu, B);
        x = _mm512_permutex2var_epi64(A, ix, B);
    }
    static void
    packQuarter(reg u, reg x, reg &A, reg &B)
    {
        reg ia = _mm512_set_epi64(11, 10, 3, 2, 9, 8, 1, 0);
        reg ib = _mm512_set_epi64(15, 14, 7, 6, 13, 12, 5, 4);
        A = _mm512_permutex2var_epi64(u, ia, x);
        B = _mm512_permutex2var_epi64(u, ib, x);
    }
    static reg
    twidQuarter(const u64 *p)
    {
        __m256i t =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
        reg idx = _mm512_set_epi64(3, 3, 2, 2, 1, 1, 0, 0);
        return _mm512_permutexvar_epi64(idx, _mm512_zextsi256_si512(t));
    }

    /** (s, d) -> interleaved pairs [s0,d0,...,s3,d3 | s4,d4,...]. */
    static void
    packInterleave(reg s, reg d, reg &A, reg &B)
    {
        reg ia = _mm512_set_epi64(11, 3, 10, 2, 9, 1, 8, 0);
        reg ib = _mm512_set_epi64(15, 7, 14, 6, 13, 5, 12, 4);
        A = _mm512_permutex2var_epi64(s, ia, d);
        B = _mm512_permutex2var_epi64(s, ib, d);
    }
};

} // namespace tensorfhe::simd

#endif // __AVX512F__ && __AVX512DQ__

#endif // TENSORFHE_SIMD_VEC_AVX512_HH
