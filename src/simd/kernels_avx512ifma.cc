/**
 * @file
 * AVX-512IFMA NTT sub-path: the only TU compiled with -mavx512ifma,
 * so no IFMA instruction can leak into code that runs on plain
 * AVX-512 hosts. Provides the beta = 2^52 lazy Shoup butterflies —
 * madd52hi is a single instruction where the DQ lane needs a full
 * emulated mulhi — valid for q < 2^50 (inputs stay < 4q <= 2^52).
 * The caller (kernels_avx512.cc) has already checked the CPUID bit
 * and haveShoup52 before dispatching here.
 */

#include "simd/simd.hh"
#include "simd/vec_avx512.hh"

#if defined(__AVX512F__) && defined(__AVX512DQ__) \
    && defined(__AVX512IFMA__)

#include "simd/vec_kernels.hh"

namespace tensorfhe::simd::detail
{

namespace
{

using V = VecAvx512;

struct Ifma52
{
    static __m512i
    lazy(__m512i x, __m512i w, __m512i wsh, __m512i q)
    {
        __m512i k =
            _mm512_madd52hi_epu64(_mm512_setzero_si512(), x, wsh);
        return _mm512_sub_epi64(_mm512_mullo_epi64(x, w),
                                _mm512_mullo_epi64(k, q));
    }
};

} // namespace

bool
nttForwardIfma(const ntt::TwiddleTable &t, u64 *a)
{
    return vec::nttForward<V, Ifma52>(t, a, 52);
}

bool
nttInverseIfma(const ntt::TwiddleTable &t, u64 *a)
{
    return vec::nttInverse<V, Ifma52>(t, a, 52);
}

} // namespace tensorfhe::simd::detail

#else // IFMA not available in this build

namespace tensorfhe::simd::detail
{

bool
nttForwardIfma(const ntt::TwiddleTable &, u64 *)
{
    return false;
}

bool
nttInverseIfma(const ntt::TwiddleTable &, u64 *)
{
    return false;
}

} // namespace tensorfhe::simd::detail

#endif
