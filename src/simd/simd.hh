/**
 * @file
 * Runtime-dispatched vector backend for modular arithmetic.
 *
 * Every u64 hot loop of the execution layer — the CT/GS NTT
 * butterflies and the span kernels of exec/kernels.cc — routes
 * through the function-pointer table returned by ops(). Three
 * backends implement it: a scalar fallback (the exact pre-SIMD
 * formulas), an AVX2 lane and an AVX-512 lane (which adds an
 * AVX-512IFMA sub-path for q < 2^50). The backend is selected ONCE
 * at first use via CPUID, overridable with TFHE_SIMD=scalar|avx2|
 * avx512 or programmatically with setBackend() (tests/benches).
 *
 * The hard contract is bit-identity: every entry point produces
 * canonical [0, q) residues identical to the scalar backend on every
 * input (lazy [0, 2q) representations are internal, except where a
 * kernel documents a lazy span — see ipAccumLazy). All span kernels
 * are aliasing-safe for the in-place pattern: each output cell reads
 * only its own index before writing. docs/SIMD.md walks the
 * invariants and how to add a kernel.
 */

#ifndef TENSORFHE_SIMD_SIMD_HH
#define TENSORFHE_SIMD_SIMD_HH

#include <cstddef>
#include <vector>

#include "common/modarith.hh"
#include "common/types.hh"

namespace tensorfhe::ntt
{
class TwiddleTable;
}

namespace tensorfhe::simd
{

enum class Backend : int
{
    Scalar = 0,
    Avx2,
    Avx512
};

/** One instruction of the fused-elementwise register program —
    layout-compatible with exec::FusedSpec::Ins (op order: Load,
    AddCt, SubCt, MulPt, AddPt). Mirrored here so the simd layer does
    not depend on exec. */
struct EleIns
{
    u8 op;
    u16 dst;
    u16 src;
    u16 idx;
};

/**
 * The backend vtable. Span arguments may alias elementwise (a == b,
 * acc == src); n is arbitrary (vector bodies handle tails scalar).
 * All inputs are canonical [0, q) residues unless noted.
 */
struct Ops
{
    const char *name;

    /** a[i] = a[i] +/- b[i] mod q. */
    void (*addSpan)(u64 *a, const u64 *b, std::size_t n, u64 q);
    void (*subSpan)(u64 *a, const u64 *b, std::size_t n, u64 q);

    /** a[i] = a[i] * b[i] mod q (Barrett). */
    void (*mulSpan)(u64 *a, const u64 *b, std::size_t n,
                    const Modulus &m);

    /** HMULT core: d0 = a0*b0, d1 = a0*b1 + a1*b0, d2 = a1*b1. */
    void (*mulTriple)(u64 *d0, u64 *d1, u64 *d2, const u64 *a0,
                      const u64 *a1, const u64 *b0, const u64 *b1,
                      std::size_t n, const Modulus &m);

    /** acc[i] = acc[i] + a[i]*b[i] mod q (canonical out). */
    void (*mulAccum)(u64 *acc, const u64 *a, const u64 *b,
                     std::size_t n, const Modulus &m);

    /**
     * Key-switch inner-product row: acc0 += u*kb, acc1 += u*ka with
     * lazy 2q-redundant accumulation — acc spans are in [0, 2q) on
     * entry (canonical counts) and exit, reduced to canonical only
     * when `canonicalize` is set (the last digit row). u/kb/ka are
     * canonical.
     */
    void (*ipAccumLazy)(u64 *acc0, u64 *acc1, const u64 *u,
                        const u64 *kb, const u64 *ka, std::size_t n,
                        const Modulus &m, bool canonicalize);

    /** a[i] = a[i] * w mod q, w a fixed constant with its beta=2^64
        Shoup companion. */
    void (*mulShoup)(u64 *a, u64 w, u64 wShoup, std::size_t n, u64 q);

    /** acc[i] = acc[i] + src[i] * w mod q (P-lift accumulate). */
    void (*mulShoupAccum)(u64 *acc, const u64 *src, u64 w, u64 wShoup,
                          std::size_t n, u64 q);

    /**
     * Fused elementwise register program over one limb: evaluates
     * `ins` per cell (vector-width cells at a time) and writes
     * register `result` to o0/o1. in0/in1 index the instruction
     * stream's Load ops, pts its plaintext ops. o0/o1 must not alias
     * any input span.
     */
    void (*fusedEle)(const EleIns *ins, std::size_t numIns, u16 result,
                     u64 *o0, u64 *o1, const u64 *const *in0,
                     const u64 *const *in1, const u64 *const *pts,
                     std::size_t n, const Modulus &m);

    /**
     * In-place forward/inverse negacyclic NTT, natural order in and
     * out, with the bit-reverse permutation folded into the
     * first/last vector stage. Returns false when this backend
     * declines (scalar backend always; vector backends for n < 2
     * vector widths) — the caller then runs the scalar butterfly +
     * permute path.
     */
    bool (*nttForward)(const ntt::TwiddleTable &t, u64 *a);
    bool (*nttInverse)(const ntt::TwiddleTable &t, u64 *a);
};

/** The active backend's vtable (selects on first use). */
const Ops &ops();

Backend activeBackend();

/**
 * Force a backend (tests/benches; call while kernels are quiescent).
 * Returns false — and leaves the selection unchanged — when the host
 * cannot run `b`.
 */
bool setBackend(Backend b);

const char *backendName(Backend b);

/** True when the host CPU (and this build) can run backend b. */
bool backendSupported(Backend b);

/** Every backend runnable on this host, scalar first. */
std::vector<Backend> supportedBackends();

/** Parse "scalar" / "avx2" / "avx512" (the TFHE_SIMD vocabulary). */
bool parseBackend(const char *name, Backend &out);

/** Entry points of the per-ISA translation units (each returns null
    when its ISA was compiled out). */
const Ops *scalarOps();
const Ops *avx2Ops();
const Ops *avx512Ops();

} // namespace tensorfhe::simd

#endif // TENSORFHE_SIMD_SIMD_HH
