/**
 * @file
 * AVX-512 backend: 8 x u64 lanes (F + DQ + VL). NTT lane order of
 * preference: beta = 2^32 (q < 2^30, single-multiply butterflies),
 * the IFMA beta = 2^52 sub-path (q < 2^50, separate TU so only it is
 * compiled with -mavx512ifma), then the generic beta = 2^64 lane.
 */

#include "simd/simd.hh"
#include "simd/vec_avx512.hh"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <cstdlib>

#include "simd/vec_kernels.hh"

namespace tensorfhe::simd
{

namespace
{

using V = VecAvx512;

bool
hostHasIfma()
{
#if defined(__x86_64__) || defined(__i386__)
    // TFHE_SIMD_NOIFMA lets tests exercise the generic beta = 2^64
    // lane on hosts where IFMA would otherwise always win.
    static const bool has = __builtin_cpu_supports("avx512ifma")
        && std::getenv("TFHE_SIMD_NOIFMA") == nullptr;
    return has;
#else
    return false;
#endif
}

bool
nttForwardAvx512(const ntt::TwiddleTable &t, u64 *a)
{
    if (t.n() < 2 * V::W)
        return false;
    const ntt::ButterflyTables &bf = t.butterfly();
    if (bf.haveShoup32)
        return vec::nttForward<V, vec::Shoup32<V>>(t, a, 32);
    if (hostHasIfma() && bf.haveShoup52 && detail::nttForwardIfma(t, a))
        return true;
    return vec::nttForward<V, vec::Shoup64<V>>(t, a, 64);
}

bool
nttInverseAvx512(const ntt::TwiddleTable &t, u64 *a)
{
    if (t.n() < 2 * V::W)
        return false;
    const ntt::ButterflyTables &bf = t.butterfly();
    if (bf.haveShoup32)
        return vec::nttInverse<V, vec::Shoup32<V>>(t, a, 32);
    if (hostHasIfma() && bf.haveShoup52 && detail::nttInverseIfma(t, a))
        return true;
    return vec::nttInverse<V, vec::Shoup64<V>>(t, a, 64);
}

const Ops kAvx512Ops = {
    "avx512",         vec::addSpan<V>,      vec::subSpan<V>,
    vec::mulSpan<V>,  vec::mulTriple<V>,    vec::mulAccum<V>,
    vec::ipAccumLazy<V>, vec::mulShoup<V>,  vec::mulShoupAccum<V>,
    vec::fusedEle<V>, nttForwardAvx512,     nttInverseAvx512,
};

} // namespace

const Ops *
avx512Ops()
{
    return &kAvx512Ops;
}

} // namespace tensorfhe::simd

#else // !(__AVX512F__ && __AVX512DQ__)

namespace tensorfhe::simd
{

const Ops *
avx512Ops()
{
    return nullptr;
}

} // namespace tensorfhe::simd

#endif
