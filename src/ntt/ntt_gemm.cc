/**
 * @file
 * Three-GEMM Cooley-Tukey NTT (paper Eq. 9) — "TensorFHE-CO".
 *
 * Forward derivation. With psi the 2N-th root, Eq. 4 is
 *   A_k = sum_n a_n psi^(n(2k+1)).
 * Split n = N2*n1 + n2 and k = k1 + N1*k2. Using psi^(N2) = psi_{2N1}
 * and psi^(2N1) = omega_{N2}:
 *   A_{k1+N1*k2} = sum_{n2} [ psi^(n2(2k1+1))
 *                  * sum_{n1} a[n1][n2] psi_{2N1}^(n1(2k1+1)) ]
 *                  * omega_{N2}^(k2*n2)
 * which is exactly
 *   B = W1 x a_mat          (W1[i][j] = psi_{2N1}^(2ij+j),  N1 x N1)
 *   C = B  had  W2          (W2[i][j] = psi_{2N}^(2ij+j),   N1 x N2)
 *   A_mat = C x W3          (W3[i][j] = psi_{2N2}^(2ij),    N2 x N2)
 * with a_mat the natural array viewed row-major N1 x N2 and the
 * output read column-major (k = k1 + N1*k2).
 *
 * Inverse: a_n = N^-1 psi^-n sum_k A_k omega_N^(-nk) factors the same
 * way into D = A_mat x W3i, E = D had W2i, a_mat = W1i x E, followed
 * by the elementwise psi^-n * N^-1 twist.
 *
 * Each output element accumulates in a 128-bit register and is
 * reduced once — the paper's "Modulo Reduction" benefit (one modulo
 * per A_k instead of one per butterfly).
 */

#include <vector>

#include "ntt/ntt.hh"

namespace tensorfhe::ntt::detail
{

namespace
{

// Cache-blocking tile sizes. The u128 accumulator tile is
// kTileI x kTileJ x 16 B = 16 KiB, which together with the kTileK x
// kTileJ slab of rhs (the W1/W3 twiddle matrix) stays L1-resident;
// successive k-tiles stream lhs rows while the accumulators stay hot.
constexpr std::size_t kTileI = 32;
constexpr std::size_t kTileJ = 32;
constexpr std::size_t kTileK = 64;

/**
 * out = lhs x rhs mod q; lhs is m x k, rhs is k x n, all row-major.
 * One deferred modulo per output element, accumulated across k-tiles
 * in 128 bits (exact, so the tiling is bit-identical to the naive
 * triple loop for any summation order).
 */
void
gemmMod(const u64 *lhs, const u64 *rhs, u64 *out, std::size_t m,
        std::size_t n, std::size_t k, const Modulus &mod)
{
    u128 acc[kTileI][kTileJ];
    for (std::size_t i0 = 0; i0 < m; i0 += kTileI) {
        std::size_t mi = i0 + kTileI < m ? kTileI : m - i0;
        for (std::size_t j0 = 0; j0 < n; j0 += kTileJ) {
            std::size_t nj = j0 + kTileJ < n ? kTileJ : n - j0;
            for (std::size_t i = 0; i < mi; ++i)
                for (std::size_t j = 0; j < nj; ++j)
                    acc[i][j] = 0;
            for (std::size_t k0 = 0; k0 < k; k0 += kTileK) {
                std::size_t kk_end = k0 + kTileK < k ? k0 + kTileK : k;
                for (std::size_t i = 0; i < mi; ++i) {
                    const u64 *lrow = lhs + (i0 + i) * k;
                    for (std::size_t kk = k0; kk < kk_end; ++kk) {
                        u64 lv = lrow[kk];
                        const u64 *rrow = rhs + kk * n + j0;
                        for (std::size_t j = 0; j < nj; ++j)
                            acc[i][j] += static_cast<u128>(lv) * rrow[j];
                    }
                }
            }
            for (std::size_t i = 0; i < mi; ++i) {
                u64 *orow = out + (i0 + i) * n + j0;
                for (std::size_t j = 0; j < nj; ++j)
                    orow[j] = mod.reduce(acc[i][j]);
            }
        }
    }
}

} // namespace

void
forwardGemm(const TwiddleTable &t, u64 *a)
{
    const auto &gm = t.gemm();
    const Modulus &mod = t.modulus();
    std::size_t n1 = gm.n1;
    std::size_t n2 = gm.n2;

    // Stage A: B = W1 x a_mat (a viewed as N1 x N2 row-major).
    std::vector<u64> b(n1 * n2);
    gemmMod(gm.w1.data(), a, b.data(), n1, n2, n1, mod);

    // Stage B: C = B had W2.
    for (std::size_t e = 0; e < n1 * n2; ++e)
        b[e] = mod.mul(b[e], gm.w2[e]);

    // Stage C: A_mat = C x W3, written out column-major
    // (A[k1 + N1*k2] = A_mat[k1][k2]).
    std::vector<u64> amat(n1 * n2);
    gemmMod(b.data(), gm.w3.data(), amat.data(), n1, n2, n2, mod);
    for (std::size_t k1 = 0; k1 < n1; ++k1)
        for (std::size_t k2 = 0; k2 < n2; ++k2)
            a[k1 + n1 * k2] = amat[k1 * n2 + k2];
}

void
inverseGemm(const TwiddleTable &t, u64 *a)
{
    const auto &gm = t.gemm();
    const Modulus &mod = t.modulus();
    std::size_t n1 = gm.n1;
    std::size_t n2 = gm.n2;
    std::size_t n = n1 * n2;

    // Gather A_mat[k1][k2] = A[k1 + N1*k2] into row-major scratch.
    std::vector<u64> amat(n);
    for (std::size_t k1 = 0; k1 < n1; ++k1)
        for (std::size_t k2 = 0; k2 < n2; ++k2)
            amat[k1 * n2 + k2] = a[k1 + n1 * k2];

    // D = A_mat x W3i.
    std::vector<u64> d(n);
    gemmMod(amat.data(), gm.w3i.data(), d.data(), n1, n2, n2, mod);

    // E = D had W2i.
    for (std::size_t e = 0; e < n; ++e)
        d[e] = mod.mul(d[e], gm.w2i[e]);

    // a_mat = W1i x E, then the psi^-n * N^-1 twist, written back in
    // natural order (n = N2*n1 + n2).
    gemmMod(gm.w1i.data(), d.data(), amat.data(), n1, n2, n1, mod);
    for (std::size_t idx = 0; idx < n; ++idx)
        a[idx] = mod.mul(amat[idx], gm.psiInvPow[idx]);
}

} // namespace tensorfhe::ntt::detail
