/**
 * @file
 * TCU-backed NTT — the "TensorFHE" configuration (paper SIV-C,
 * Fig. 8). Identical math to ntt_gemm.cc, but the two large GEMMs run
 * on the simulated INT8 tensor core through the segment-fusion
 * scheme:
 *
 *   Stage 1  segment the input into four u8 planes   (CUDA cores)
 *   Stage 2  16 u8-GEMMs against cached W1 segments  (TCUs, streams)
 *   Stage 3  fuse partials, Hadamard with W2         (CUDA cores)
 *   Stage 4  16 u8-GEMMs against cached W3 segments  (TCUs, streams)
 *   Stage 5  fuse partials, final modulo (+ psi^-n * N^-1 for INTT)
 *
 * Twiddle factors were segmented once at table build (Stage 0 in the
 * paper's terms), so only the data matrix is segmented per call.
 */

#include <array>
#include <vector>

#include "common/thread_pool.hh"
#include "ntt/ntt.hh"
#include "tcu/segment.hh"

namespace tensorfhe::ntt::detail
{

namespace
{

/**
 * Per-thread staging buffers for the five-stage workflow, following
 * the cached-plan policy the CkksContext applies to its conversion
 * factors: the TCU path's twiddle tables and fusion weights are built
 * once (TwiddleTable Stage-0, tcu::fusionWeights), and the stage
 * intermediates here stop paying an allocator round-trip per
 * transform — every dispatch on a thread reuses the same grown
 * buffers. Contents are fully overwritten by each stage before being
 * read, so reuse is bit-exact. The buffers persist at the largest
 * batch size a thread ever dispatched (3 x batch x N u64) until the
 * thread exits — the deliberate steady-state trade, same as the
 * exec::Workspace arena.
 */
std::vector<u64> &
stageScratch(std::size_t stage, std::size_t need)
{
    thread_local std::array<std::vector<u64>, 3> bufs;
    auto &b = bufs[stage];
    if (b.size() < need)
        b.resize(need);
    return b;
}

/** Carve `count` n-element scratch blocks out of one buffer. */
std::vector<u64 *>
blockPtrs(std::vector<u64> &buf, std::size_t count, std::size_t n)
{
    std::vector<u64 *> ptrs(count);
    for (std::size_t b = 0; b < count; ++b)
        ptrs[b] = buf.data() + b * n;
    return ptrs;
}

} // namespace

void
forwardTensor(const TwiddleTable &t, u64 *a)
{
    const auto &gm = t.gemm();
    const Modulus &mod = t.modulus();
    std::size_t n1 = gm.n1;
    std::size_t n2 = gm.n2;

    // Stages 1-2: B = W1 x a_mat on the TCU (W1 segments cached).
    auto &b = stageScratch(0, n1 * n2);
    tcu::SegmentedMatrix a_seg = tcu::segmentU32(a, n1 * n2);
    tcu::tensorGemmModSegSeg(gm.w1Seg, a_seg, b.data(), n1, n2, n1, mod);

    // Stage 3: fuse (done inside the call) + Hadamard with W2.
    for (std::size_t e = 0; e < n1 * n2; ++e)
        b[e] = mod.mul(b[e], gm.w2[e]);

    // Stage 4: A_mat = C x W3 on the TCU (W3 segments cached).
    auto &out = stageScratch(1, n1 * n2);
    tcu::tensorGemmMod(b.data(), gm.w3Seg, out.data(), n1, n2, n2, mod);

    // Stage 5: column-major readout (k = k1 + N1*k2).
    for (std::size_t k1 = 0; k1 < n1; ++k1)
        for (std::size_t k2 = 0; k2 < n2; ++k2)
            a[k1 + n1 * k2] = out[k1 * n2 + k2];
}

void
inverseTensor(const TwiddleTable &t, u64 *a)
{
    const auto &gm = t.gemm();
    const Modulus &mod = t.modulus();
    std::size_t n1 = gm.n1;
    std::size_t n2 = gm.n2;
    std::size_t n = n1 * n2;

    auto &amat = stageScratch(0, n);
    for (std::size_t k1 = 0; k1 < n1; ++k1)
        for (std::size_t k2 = 0; k2 < n2; ++k2)
            amat[k1 * n2 + k2] = a[k1 + n1 * k2];

    // D = A_mat x W3i on the TCU.
    auto &d = stageScratch(1, n);
    tcu::tensorGemmMod(amat.data(), gm.w3iSeg, d.data(), n1, n2, n2, mod);

    // E = D had W2i.
    for (std::size_t e = 0; e < n; ++e)
        d[e] = mod.mul(d[e], gm.w2i[e]);

    // a_mat = W1i x E on the TCU, then the psi^-n * N^-1 twist.
    auto &out = stageScratch(2, n);
    tcu::SegmentedMatrix d_seg = tcu::segmentU32(d.data(), n);
    tcu::tensorGemmModSegSeg(gm.w1iSeg, d_seg, out.data(), n1, n2, n1, mod);
    for (std::size_t i1 = 0; i1 < n1; ++i1) {
        for (std::size_t i2 = 0; i2 < n2; ++i2) {
            std::size_t idx = n2 * i1 + i2;
            a[idx] = mod.mul(out[idx], gm.psiInvPow[idx]);
        }
    }
}

void
forwardTensorBatch(const TwiddleTable &t, u64 *const *polys,
                   std::size_t count, ThreadPool *pool)
{
    const auto &gm = t.gemm();
    const Modulus &mod = t.modulus();
    std::size_t n1 = gm.n1;
    std::size_t n2 = gm.n2;
    std::size_t n = n1 * n2;
    if (!pool)
        pool = &ThreadPool::global();

    // Stages 1-2, whole batch at once: B_b = W1 x a_mat_b through one
    // segment-fusion GEMM with the batch packed column-wise.
    auto &bbuf = stageScratch(0, count * n);
    auto bs = blockPtrs(bbuf, count, n);
    tcu::tensorGemmModBatchRhs(gm.w1Seg, polys, bs.data(), count, n1, n2,
                               n1, mod, pool);

    // Stage 3: Hadamard with W2, sharded across the batch.
    pool->parallelFor(0, count, [&](std::size_t b) {
        u64 *pb = bs[b];
        for (std::size_t e = 0; e < n; ++e)
            pb[e] = mod.mul(pb[e], gm.w2[e]);
    });

    // Stages 4-5: A_mat_b = C_b x W3 with the batch stacked row-wise,
    // then the column-major readout per slot.
    auto &obuf = stageScratch(1, count * n);
    auto os = blockPtrs(obuf, count, n);
    tcu::tensorGemmModBatchLhs(bs.data(), gm.w3Seg, os.data(), count, n1,
                               n2, n2, mod, pool);
    pool->parallelFor(0, count, [&](std::size_t b) {
        const u64 *ob = os[b];
        u64 *a = polys[b];
        for (std::size_t k1 = 0; k1 < n1; ++k1)
            for (std::size_t k2 = 0; k2 < n2; ++k2)
                a[k1 + n1 * k2] = ob[k1 * n2 + k2];
    });
}

void
inverseTensorBatch(const TwiddleTable &t, u64 *const *polys,
                   std::size_t count, ThreadPool *pool)
{
    const auto &gm = t.gemm();
    const Modulus &mod = t.modulus();
    std::size_t n1 = gm.n1;
    std::size_t n2 = gm.n2;
    std::size_t n = n1 * n2;
    if (!pool)
        pool = &ThreadPool::global();

    auto &amatbuf = stageScratch(0, count * n);
    auto amats = blockPtrs(amatbuf, count, n);
    pool->parallelFor(0, count, [&](std::size_t b) {
        const u64 *a = polys[b];
        u64 *am = amats[b];
        for (std::size_t k1 = 0; k1 < n1; ++k1)
            for (std::size_t k2 = 0; k2 < n2; ++k2)
                am[k1 * n2 + k2] = a[k1 + n1 * k2];
    });

    // D_b = A_mat_b x W3i, batch stacked row-wise.
    auto &dbuf = stageScratch(1, count * n);
    auto ds = blockPtrs(dbuf, count, n);
    tcu::tensorGemmModBatchLhs(amats.data(), gm.w3iSeg, ds.data(), count,
                               n1, n2, n2, mod, pool);

    // E_b = D_b had W2i.
    pool->parallelFor(0, count, [&](std::size_t b) {
        u64 *pd = ds[b];
        for (std::size_t e = 0; e < n; ++e)
            pd[e] = mod.mul(pd[e], gm.w2i[e]);
    });

    // a_mat_b = W1i x E_b, batch packed column-wise, then the twist.
    auto &obuf = stageScratch(2, count * n);
    auto os = blockPtrs(obuf, count, n);
    tcu::tensorGemmModBatchRhs(gm.w1iSeg, ds.data(), os.data(), count,
                               n1, n2, n1, mod, pool);
    pool->parallelFor(0, count, [&](std::size_t b) {
        const u64 *ob = os[b];
        u64 *a = polys[b];
        for (std::size_t idx = 0; idx < n; ++idx)
            a[idx] = mod.mul(ob[idx], gm.psiInvPow[idx]);
    });
}

} // namespace tensorfhe::ntt::detail
