/**
 * @file
 * Negacyclic NTT engines over Z_q[X]/(X^N + 1).
 *
 * Four interchangeable implementations of paper Eq. 4:
 *  - Reference: direct O(N^2) summation (oracle for tests);
 *  - Butterfly: iterative CT/GS with Shoup multiplication — the
 *    kernel inside "TensorFHE-NT" and the CPU baseline;
 *  - Gemm: the three-matrix Cooley-Tukey form of Eq. 9 with one
 *    deferred modulo per output — "TensorFHE-CO";
 *  - Tensor: the same three GEMMs executed on the simulated INT8
 *    tensor core via segment-fusion — "TensorFHE".
 *
 * All variants use natural (standard) coefficient order at the API
 * boundary and agree bit-for-bit; tests enforce this.
 */

#ifndef TENSORFHE_NTT_NTT_HH
#define TENSORFHE_NTT_NTT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "ntt/twiddle.hh"

namespace tensorfhe
{
class ThreadPool;
}

namespace tensorfhe::ntt
{

/** Which engine executes the transform. */
enum class NttVariant
{
    Reference,
    Butterfly, ///< TensorFHE-NT
    Gemm,      ///< TensorFHE-CO
    Tensor     ///< TensorFHE (TCU path)
};

const char *nttVariantName(NttVariant v);

/**
 * All state needed to transform length-N polynomials mod one prime q.
 * Owns the twiddle tables; thread-safe for concurrent transforms.
 */
class NttContext
{
  public:
    NttContext(std::size_t n, u64 q);

    std::size_t n() const { return table_.n(); }
    u64 q() const { return table_.q(); }
    const Modulus &modulus() const { return table_.modulus(); }
    const TwiddleTable &tables() const { return table_; }

    /** In-place forward NTT of a[0..N), natural order in and out. */
    void forward(u64 *a, NttVariant v = NttVariant::Butterfly) const;

    /** In-place inverse NTT, natural order in and out. */
    void inverse(u64 *a, NttVariant v = NttVariant::Butterfly) const;

    /**
     * Batched forward NTT: transform `count` polynomials in place,
     * all under this context's prime. One kernel timer covers the
     * batch and all transforms share the precomputed twiddle tables
     * (paper SIV-B "Data Reuse"). Butterfly/GEMM/Reference jobs are
     * dispatched across `pool` (null = process-global); the Tensor
     * variant instead fuses the batch into single large segment-fusion
     * GEMMs (paper SIV-D: batching fills the TCU), whose 16 segment
     * GEMMs parallelize across the pool. Results are bit-identical to
     * `count` serial forward() calls.
     */
    void forwardBatch(u64 *const *polys, std::size_t count,
                      NttVariant v = NttVariant::Butterfly,
                      ThreadPool *pool = nullptr) const;

    /** Batched inverse NTT; mirrors forwardBatch. */
    void inverseBatch(u64 *const *polys, std::size_t count,
                      NttVariant v = NttVariant::Butterfly,
                      ThreadPool *pool = nullptr) const;

    /**
     * Negacyclic polynomial product c = a * b mod (X^N + 1, q),
     * via forward/pointwise/inverse (test and encoder helper).
     */
    std::vector<u64> negacyclicMultiply(
        const std::vector<u64> &a, const std::vector<u64> &b,
        NttVariant v = NttVariant::Butterfly) const;

  private:
    TwiddleTable table_;
};

/**
 * One (batch-slot x RNS-tower) transform task of the batched
 * execution engine: `data` holds the N coefficients of one residue
 * polynomial under `ctx`'s prime. A batched HE operation flattens its
 * whole iteration space into a vector of these and drains it through
 * the pool in one dispatch.
 */
struct NttJob
{
    const NttContext *ctx = nullptr;
    u64 *data = nullptr;
};

/**
 * Forward-transform every job in place, dispatched dynamically across
 * `pool` (null = process-global). Jobs may mix primes and lengths —
 * this is the (slot x tower) work-queue shape. One timer covers the
 * whole batch. Bit-identical to running each job's forward() serially.
 */
void forwardBatch(const std::vector<NttJob> &jobs,
                  NttVariant v = NttVariant::Butterfly,
                  ThreadPool *pool = nullptr);

/** Inverse-transform every job; mirrors forwardBatch(jobs). */
void inverseBatch(const std::vector<NttJob> &jobs,
                  NttVariant v = NttVariant::Butterfly,
                  ThreadPool *pool = nullptr);

namespace detail
{

void forwardReference(const TwiddleTable &t, u64 *a);
void inverseReference(const TwiddleTable &t, u64 *a);
void forwardButterfly(const TwiddleTable &t, u64 *a);
void inverseButterfly(const TwiddleTable &t, u64 *a);
void forwardGemm(const TwiddleTable &t, u64 *a);
void inverseGemm(const TwiddleTable &t, u64 *a);
void forwardTensor(const TwiddleTable &t, u64 *a);
void inverseTensor(const TwiddleTable &t, u64 *a);

/**
 * Batched TCU NTT: all `count` polynomials fused into single large
 * segment-fusion GEMMs (stage A concatenates the batch column-wise,
 * stage C stacks it row-wise), so the 16-GEMM dispatch and twiddle
 * segments amortize across the batch. Work drains through `pool`
 * (null = process-global).
 */
void forwardTensorBatch(const TwiddleTable &t, u64 *const *polys,
                        std::size_t count, ThreadPool *pool = nullptr);
void inverseTensorBatch(const TwiddleTable &t, u64 *const *polys,
                        std::size_t count, ThreadPool *pool = nullptr);

/** Natural <-> bit-reversed reordering (in place). */
void bitReversePermute(u64 *a, std::size_t n);

/**
 * Untimed single-transform inverse dispatch: exactly what
 * NttContext::inverse runs, minus the per-call kernel timer. For
 * fused kernels (the Hadamard x INTT pass of the fused
 * CMULT+RESCALE) that record ONE aggregate Intt launch themselves —
 * going through the timed entry would inflate the launch count the
 * breakdown benches replay.
 */
void inverseOneUntimed(const NttContext &ctx, u64 *a, NttVariant v);

} // namespace detail

} // namespace tensorfhe::ntt

#endif // TENSORFHE_NTT_NTT_HH
