/**
 * @file
 * Negacyclic NTT engines over Z_q[X]/(X^N + 1).
 *
 * Four interchangeable implementations of paper Eq. 4:
 *  - Reference: direct O(N^2) summation (oracle for tests);
 *  - Butterfly: iterative CT/GS with Shoup multiplication — the
 *    kernel inside "TensorFHE-NT" and the CPU baseline;
 *  - Gemm: the three-matrix Cooley-Tukey form of Eq. 9 with one
 *    deferred modulo per output — "TensorFHE-CO";
 *  - Tensor: the same three GEMMs executed on the simulated INT8
 *    tensor core via segment-fusion — "TensorFHE".
 *
 * All variants use natural (standard) coefficient order at the API
 * boundary and agree bit-for-bit; tests enforce this.
 */

#ifndef TENSORFHE_NTT_NTT_HH
#define TENSORFHE_NTT_NTT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "ntt/twiddle.hh"

namespace tensorfhe::ntt
{

/** Which engine executes the transform. */
enum class NttVariant
{
    Reference,
    Butterfly, ///< TensorFHE-NT
    Gemm,      ///< TensorFHE-CO
    Tensor     ///< TensorFHE (TCU path)
};

const char *nttVariantName(NttVariant v);

/**
 * All state needed to transform length-N polynomials mod one prime q.
 * Owns the twiddle tables; thread-safe for concurrent transforms.
 */
class NttContext
{
  public:
    NttContext(std::size_t n, u64 q);

    std::size_t n() const { return table_.n(); }
    u64 q() const { return table_.q(); }
    const Modulus &modulus() const { return table_.modulus(); }
    const TwiddleTable &tables() const { return table_; }

    /** In-place forward NTT of a[0..N), natural order in and out. */
    void forward(u64 *a, NttVariant v = NttVariant::Butterfly) const;

    /** In-place inverse NTT, natural order in and out. */
    void inverse(u64 *a, NttVariant v = NttVariant::Butterfly) const;

    /**
     * Negacyclic polynomial product c = a * b mod (X^N + 1, q),
     * via forward/pointwise/inverse (test and encoder helper).
     */
    std::vector<u64> negacyclicMultiply(
        const std::vector<u64> &a, const std::vector<u64> &b,
        NttVariant v = NttVariant::Butterfly) const;

  private:
    TwiddleTable table_;
};

namespace detail
{

void forwardReference(const TwiddleTable &t, u64 *a);
void inverseReference(const TwiddleTable &t, u64 *a);
void forwardButterfly(const TwiddleTable &t, u64 *a);
void inverseButterfly(const TwiddleTable &t, u64 *a);
void forwardGemm(const TwiddleTable &t, u64 *a);
void inverseGemm(const TwiddleTable &t, u64 *a);
void forwardTensor(const TwiddleTable &t, u64 *a);
void inverseTensor(const TwiddleTable &t, u64 *a);

/** Natural <-> bit-reversed reordering (in place). */
void bitReversePermute(u64 *a, std::size_t n);

} // namespace detail

} // namespace tensorfhe::ntt

#endif // TENSORFHE_NTT_NTT_HH
