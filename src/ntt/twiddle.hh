/**
 * @file
 * Twiddle-factor tables for one (N, q) pair, covering all four NTT
 * engines. As the paper notes (SIV-B, "Data Reuse"), the tables are
 * fixed by the CKKS instance and precomputed once at initialization,
 * then shared by every NTT invocation (and, with operation-level
 * batching, by every batched operation at the same level).
 */

#ifndef TENSORFHE_NTT_TWIDDLE_HH
#define TENSORFHE_NTT_TWIDDLE_HH

#include <cstddef>
#include <vector>

#include "common/modarith.hh"
#include "common/types.hh"
#include "tcu/segment.hh"

namespace tensorfhe::ntt
{

/**
 * Butterfly tables: powers of the 2N-th root psi in bit-reversed
 * order (Longa-Naehrig layout) plus Shoup precomputations.
 *
 * The layout is stage-major: stage m of the CT pass reads the
 * contiguous block psiRev[m, 2m) (and the GS pass psiInvRev[h, 2h)),
 * so every vector stage streams its twiddles sequentially. The extra
 * tables below serve the SIMD path, which folds the standalone
 * bit-reverse permutation into the first/last butterfly stage
 * (docs/SIMD.md):
 *  - brHalf[r] = bitrev over log2(N/2) bits of r — the gather index
 *    map of the folded stages, widened to u64 for vector gathers;
 *  - fwdLastTw[r] = psiRev[N/2 + brHalf[r]] — the forward last-stage
 *    twiddles reordered by output position so they stream instead of
 *    gather;
 *  - invLastW = psiInvRev[1] * nInv — the GS last stage with the
 *    N^-1 scaling folded in.
 * The beta = 2^32 and beta = 2^52 Shoup companions feed the 32-bit
 * lazy lane (q < 2^30) and the AVX-512IFMA lane (q < 2^50); they are
 * only built when the modulus qualifies.
 */
struct ButterflyTables
{
    std::vector<u64> psiRev;       ///< psi^bitrev(i), i < N
    std::vector<u64> psiRevShoup;
    std::vector<u64> psiInvRev;    ///< psi^-bitrev(i)
    std::vector<u64> psiInvRevShoup;
    u64 nInv = 0;                  ///< N^-1 mod q
    u64 nInvShoup = 0;

    std::vector<u64> brHalf;       ///< bitrev_{N/2}(r), r < N/2
    std::vector<u64> fwdLastTw;    ///< psiRev[N/2 + brHalf[r]]
    std::vector<u64> fwdLastTwShoup;
    u64 invLastW = 0;              ///< psiInvRev[1] * nInv mod q
    u64 invLastWShoup = 0;

    bool haveShoup32 = false;      ///< beta = 2^32 tables (q < 2^30)
    std::vector<u64> psiRevShoup32;
    std::vector<u64> psiInvRevShoup32;
    std::vector<u64> fwdLastTwShoup32;
    u64 nInvShoup32 = 0;
    u64 invLastWShoup32 = 0;

    bool haveShoup52 = false;      ///< beta = 2^52 tables (q < 2^50)
    std::vector<u64> psiRevShoup52;
    std::vector<u64> psiInvRevShoup52;
    std::vector<u64> fwdLastTwShoup52;
    u64 nInvShoup52 = 0;
    u64 invLastWShoup52 = 0;
};

/**
 * GEMM tables for the three-matrix form of Eq. 9:
 *   A = ((W1 x a_mat) had W2) x W3 mod q,
 * with a reshaped N1 x N2 (row-major, n = N2*n1 + n2) and output read
 * column-major (k = k1 + N1*k2).
 *
 * W1[i][j] = psi_{2N1}^{2ij+j}    (N1 x N1)
 * W2[i][j] = psi_{2N}^{2ij+j}     (N1 x N2)
 * W3[i][j] = psi_{2N2}^{2ij}      (N2 x N2)
 * where psi_{2N1} = psi^N2 and psi_{2N2} = psi^N1.
 *
 * Inverse tables mirror the derivation in ntt_gemm.cc.
 */
struct GemmTables
{
    std::size_t n1 = 0;
    std::size_t n2 = 0;
    std::vector<u64> w1, w2, w3;          ///< forward
    std::vector<u64> w1i, w2i, w3i;       ///< inverse
    std::vector<u64> psiInvPow;           ///< psi^-n * N^-1, n < N
    tcu::SegmentedMatrix w1Seg, w3Seg;    ///< pre-segmented (Stage-0)
    tcu::SegmentedMatrix w1iSeg, w3iSeg;
};

/** All tables plus the roots they derive from. */
class TwiddleTable
{
  public:
    /**
     * @param n transform length, a power of two
     * @param q prime with q = 1 (mod 2n)
     */
    TwiddleTable(std::size_t n, u64 q);

    std::size_t n() const { return n_; }
    const Modulus &modulus() const { return mod_; }
    u64 q() const { return mod_.value(); }
    u64 psi() const { return psi_; }
    u64 psiInv() const { return psiInv_; }

    const ButterflyTables &butterfly() const { return bf_; }
    const GemmTables &gemm() const { return gm_; }

    /** psi^e for 0 <= e < 2N (reference engine). */
    u64 psiPow(std::size_t e) const { return psiPow_[e]; }

  private:
    void buildButterfly();
    void buildGemm();

    std::size_t n_;
    int logN_;
    Modulus mod_;
    u64 psi_;
    u64 psiInv_;
    std::vector<u64> psiPow_; ///< psi^e, e < 2N
    ButterflyTables bf_;
    GemmTables gm_;
};

} // namespace tensorfhe::ntt

#endif // TENSORFHE_NTT_TWIDDLE_HH
