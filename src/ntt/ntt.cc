#include "ntt/ntt.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"

namespace tensorfhe::ntt
{

namespace
{

void
dispatchOne(const NttContext &ctx, u64 *a, NttVariant v, bool fwd)
{
    switch (v) {
      case NttVariant::Reference:
        fwd ? detail::forwardReference(ctx.tables(), a)
            : detail::inverseReference(ctx.tables(), a);
        break;
      case NttVariant::Butterfly:
        fwd ? detail::forwardButterfly(ctx.tables(), a)
            : detail::inverseButterfly(ctx.tables(), a);
        break;
      case NttVariant::Gemm:
        fwd ? detail::forwardGemm(ctx.tables(), a)
            : detail::inverseGemm(ctx.tables(), a);
        break;
      case NttVariant::Tensor:
        fwd ? detail::forwardTensor(ctx.tables(), a)
            : detail::inverseTensor(ctx.tables(), a);
        break;
    }
}

void
dispatchJobs(const std::vector<NttJob> &jobs, NttVariant v, bool fwd,
             ThreadPool *pool)
{
    if (jobs.empty())
        return;
    u64 elements = 0;
    for (const auto &j : jobs)
        elements += j.ctx->n();
    ScopedKernelTimer timer(fwd ? KernelKind::Ntt : KernelKind::Intt,
                            elements);
    if (!pool)
        pool = &ThreadPool::global();
    if (v == NttVariant::Tensor) {
        // Jobs sharing a prime (batch slots at the same tower) fuse
        // into one large segment GEMM each; the 16 segment GEMMs
        // inside parallelize across the pool.
        std::vector<std::pair<const NttContext *, std::vector<u64 *>>>
            groups;
        for (const auto &j : jobs) {
            auto it = std::find_if(groups.begin(), groups.end(),
                                   [&](const auto &g) {
                                       return g.first == j.ctx;
                                   });
            if (it == groups.end())
                groups.push_back({j.ctx, {j.data}});
            else
                it->second.push_back(j.data);
        }
        for (auto &g : groups) {
            if (g.second.size() == 1) {
                dispatchOne(*g.first, g.second[0], v, fwd);
            } else if (fwd) {
                detail::forwardTensorBatch(g.first->tables(),
                                           g.second.data(),
                                           g.second.size(), pool);
            } else {
                detail::inverseTensorBatch(g.first->tables(),
                                           g.second.data(),
                                           g.second.size(), pool);
            }
        }
        return;
    }
    pool->parallelFor(0, jobs.size(), [&](std::size_t i) {
        dispatchOne(*jobs[i].ctx, jobs[i].data, v, fwd);
    });
}

} // namespace

const char *
nttVariantName(NttVariant v)
{
    switch (v) {
      case NttVariant::Reference: return "Reference";
      case NttVariant::Butterfly: return "Butterfly(NT)";
      case NttVariant::Gemm: return "GEMM(CO)";
      case NttVariant::Tensor: return "Tensor(TCU)";
      default: TFHE_ASSERT(false); return "?";
    }
}

NttContext::NttContext(std::size_t n, u64 q) : table_(n, q) {}

void
NttContext::forward(u64 *a, NttVariant v) const
{
    ScopedKernelTimer timer(KernelKind::Ntt, table_.n());
    switch (v) {
      case NttVariant::Reference: detail::forwardReference(table_, a); break;
      case NttVariant::Butterfly: detail::forwardButterfly(table_, a); break;
      case NttVariant::Gemm: detail::forwardGemm(table_, a); break;
      case NttVariant::Tensor: detail::forwardTensor(table_, a); break;
    }
}

void
NttContext::inverse(u64 *a, NttVariant v) const
{
    ScopedKernelTimer timer(KernelKind::Intt, table_.n());
    switch (v) {
      case NttVariant::Reference: detail::inverseReference(table_, a); break;
      case NttVariant::Butterfly: detail::inverseButterfly(table_, a); break;
      case NttVariant::Gemm: detail::inverseGemm(table_, a); break;
      case NttVariant::Tensor: detail::inverseTensor(table_, a); break;
    }
}

void
NttContext::forwardBatch(u64 *const *polys, std::size_t count,
                         NttVariant v, ThreadPool *pool) const
{
    if (count == 0)
        return;
    if (v == NttVariant::Tensor && count > 1) {
        ScopedKernelTimer timer(KernelKind::Ntt, count * table_.n());
        detail::forwardTensorBatch(table_, polys, count, pool);
        return;
    }
    std::vector<NttJob> jobs(count);
    for (std::size_t i = 0; i < count; ++i)
        jobs[i] = {this, polys[i]};
    ntt::forwardBatch(jobs, v, pool);
}

void
NttContext::inverseBatch(u64 *const *polys, std::size_t count,
                         NttVariant v, ThreadPool *pool) const
{
    if (count == 0)
        return;
    if (v == NttVariant::Tensor && count > 1) {
        ScopedKernelTimer timer(KernelKind::Intt, count * table_.n());
        detail::inverseTensorBatch(table_, polys, count, pool);
        return;
    }
    std::vector<NttJob> jobs(count);
    for (std::size_t i = 0; i < count; ++i)
        jobs[i] = {this, polys[i]};
    ntt::inverseBatch(jobs, v, pool);
}

void
forwardBatch(const std::vector<NttJob> &jobs, NttVariant v,
             ThreadPool *pool)
{
    dispatchJobs(jobs, v, true, pool);
}

void
inverseBatch(const std::vector<NttJob> &jobs, NttVariant v,
             ThreadPool *pool)
{
    dispatchJobs(jobs, v, false, pool);
}

std::vector<u64>
NttContext::negacyclicMultiply(const std::vector<u64> &a,
                               const std::vector<u64> &b,
                               NttVariant v) const
{
    std::size_t n = table_.n();
    requireArg(a.size() == n && b.size() == n, "operand length != N");
    std::vector<u64> fa = a;
    std::vector<u64> fb = b;
    forward(fa.data(), v);
    forward(fb.data(), v);
    const Modulus &mod = table_.modulus();
    for (std::size_t i = 0; i < n; ++i)
        fa[i] = mod.mul(fa[i], fb[i]);
    inverse(fa.data(), v);
    return fa;
}

namespace detail
{

void
bitReversePermute(u64 *a, std::size_t n)
{
    int bits = log2Floor(n);
    for (u32 i = 0; i < n; ++i) {
        u32 j = bitReverse(i, bits);
        if (i < j)
            std::swap(a[i], a[j]);
    }
}

void
inverseOneUntimed(const NttContext &ctx, u64 *a, NttVariant v)
{
    dispatchOne(ctx, a, v, false);
}

} // namespace detail

} // namespace tensorfhe::ntt
