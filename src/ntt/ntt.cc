#include "ntt/ntt.hh"

#include "common/logging.hh"
#include "common/stats.hh"

namespace tensorfhe::ntt
{

const char *
nttVariantName(NttVariant v)
{
    switch (v) {
      case NttVariant::Reference: return "Reference";
      case NttVariant::Butterfly: return "Butterfly(NT)";
      case NttVariant::Gemm: return "GEMM(CO)";
      case NttVariant::Tensor: return "Tensor(TCU)";
      default: TFHE_ASSERT(false); return "?";
    }
}

NttContext::NttContext(std::size_t n, u64 q) : table_(n, q) {}

void
NttContext::forward(u64 *a, NttVariant v) const
{
    ScopedKernelTimer timer(KernelKind::Ntt, table_.n());
    switch (v) {
      case NttVariant::Reference: detail::forwardReference(table_, a); break;
      case NttVariant::Butterfly: detail::forwardButterfly(table_, a); break;
      case NttVariant::Gemm: detail::forwardGemm(table_, a); break;
      case NttVariant::Tensor: detail::forwardTensor(table_, a); break;
    }
}

void
NttContext::inverse(u64 *a, NttVariant v) const
{
    ScopedKernelTimer timer(KernelKind::Intt, table_.n());
    switch (v) {
      case NttVariant::Reference: detail::inverseReference(table_, a); break;
      case NttVariant::Butterfly: detail::inverseButterfly(table_, a); break;
      case NttVariant::Gemm: detail::inverseGemm(table_, a); break;
      case NttVariant::Tensor: detail::inverseTensor(table_, a); break;
    }
}

std::vector<u64>
NttContext::negacyclicMultiply(const std::vector<u64> &a,
                               const std::vector<u64> &b,
                               NttVariant v) const
{
    std::size_t n = table_.n();
    requireArg(a.size() == n && b.size() == n, "operand length != N");
    std::vector<u64> fa = a;
    std::vector<u64> fb = b;
    forward(fa.data(), v);
    forward(fb.data(), v);
    const Modulus &mod = table_.modulus();
    for (std::size_t i = 0; i < n; ++i)
        fa[i] = mod.mul(fa[i], fb[i]);
    inverse(fa.data(), v);
    return fa;
}

namespace detail
{

void
bitReversePermute(u64 *a, std::size_t n)
{
    int bits = log2Floor(n);
    for (u32 i = 0; i < n; ++i) {
        u32 j = bitReverse(i, bits);
        if (i < j)
            std::swap(a[i], a[j]);
    }
}

} // namespace detail

} // namespace tensorfhe::ntt
