#include "ntt/twiddle.hh"

#include "common/logging.hh"
#include "common/primes.hh"

namespace tensorfhe::ntt
{

TwiddleTable::TwiddleTable(std::size_t n, u64 q) : n_(n), mod_(q)
{
    requireArg(isPowerOfTwo(n) && n >= 4, "N must be a power of two >= 4");
    requireArg((q - 1) % (2 * n) == 0, "q must be 1 mod 2N");
    logN_ = log2Floor(n);
    psi_ = rootOfUnity(q, 2 * n);
    psiInv_ = mod_.inv(psi_);

    psiPow_.resize(2 * n);
    psiPow_[0] = 1;
    for (std::size_t e = 1; e < 2 * n; ++e)
        psiPow_[e] = mod_.mul(psiPow_[e - 1], psi_);

    buildButterfly();
    buildGemm();
}

void
TwiddleTable::buildButterfly()
{
    u64 q = mod_.value();
    bf_.psiRev.resize(n_);
    bf_.psiRevShoup.resize(n_);
    bf_.psiInvRev.resize(n_);
    bf_.psiInvRevShoup.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        u64 fwd = psiPow_[bitReverse(static_cast<u32>(i), logN_)];
        u64 inv = mod_.inv(fwd);
        bf_.psiRev[i] = fwd;
        bf_.psiRevShoup[i] = shoupPrecompute(fwd, q);
        bf_.psiInvRev[i] = inv;
        bf_.psiInvRevShoup[i] = shoupPrecompute(inv, q);
    }
    bf_.nInv = mod_.inv(n_ % q);
    bf_.nInvShoup = shoupPrecompute(bf_.nInv, q);

    // SIMD companions: the folded-permutation gather map and the
    // reordered forward last-stage twiddles (see twiddle.hh).
    std::size_t half = n_ / 2;
    bf_.brHalf.resize(half);
    bf_.fwdLastTw.resize(half);
    bf_.fwdLastTwShoup.resize(half);
    for (std::size_t r = 0; r < half; ++r) {
        u64 br = bitReverse(static_cast<u32>(r), logN_ - 1);
        bf_.brHalf[r] = br;
        u64 w = bf_.psiRev[half + br];
        bf_.fwdLastTw[r] = w;
        bf_.fwdLastTwShoup[r] = shoupPrecompute(w, q);
    }
    bf_.invLastW = mod_.mul(bf_.psiInvRev[1], bf_.nInv);
    bf_.invLastWShoup = shoupPrecompute(bf_.invLastW, q);

    auto buildBeta = [&](int bits, std::vector<u64> &psi,
                         std::vector<u64> &psiInv,
                         std::vector<u64> &fwdLast, u64 &nInvB,
                         u64 &invLastB) {
        psi.resize(n_);
        psiInv.resize(n_);
        fwdLast.resize(half);
        for (std::size_t i = 0; i < n_; ++i) {
            psi[i] = shoupPrecomputeBeta(bf_.psiRev[i], q, bits);
            psiInv[i] = shoupPrecomputeBeta(bf_.psiInvRev[i], q, bits);
        }
        for (std::size_t r = 0; r < half; ++r)
            fwdLast[r] = shoupPrecomputeBeta(bf_.fwdLastTw[r], q, bits);
        nInvB = shoupPrecomputeBeta(bf_.nInv, q, bits);
        invLastB = shoupPrecomputeBeta(bf_.invLastW, q, bits);
    };
    bf_.haveShoup32 = q < (u64(1) << 30);
    if (bf_.haveShoup32)
        buildBeta(32, bf_.psiRevShoup32, bf_.psiInvRevShoup32,
                  bf_.fwdLastTwShoup32, bf_.nInvShoup32,
                  bf_.invLastWShoup32);
    bf_.haveShoup52 = q < (u64(1) << 50);
    if (bf_.haveShoup52)
        buildBeta(52, bf_.psiRevShoup52, bf_.psiInvRevShoup52,
                  bf_.fwdLastTwShoup52, bf_.nInvShoup52,
                  bf_.invLastWShoup52);
}

void
TwiddleTable::buildGemm()
{
    // N1 >= N2, both powers of two with N1 * N2 = N.
    std::size_t n1 = std::size_t(1) << ((logN_ + 1) / 2);
    std::size_t n2 = n_ / n1;
    gm_.n1 = n1;
    gm_.n2 = n2;

    u64 psi_2n1 = mod_.pow(psi_, n2); // psi^(N2): a 2*N1-th root
    u64 psi_2n2 = mod_.pow(psi_, n1); // psi^(N1): a 2*N2-th root
    u64 omega_n1 = mod_.mul(psi_2n1, psi_2n1);
    u64 omega_n2 = mod_.mul(psi_2n2, psi_2n2);
    u64 omega_n = mod_.mul(psi_, psi_);
    u64 omega_n1_inv = mod_.inv(omega_n1);
    u64 omega_n2_inv = mod_.inv(omega_n2);
    u64 omega_n_inv = mod_.inv(omega_n);

    auto fill = [&](std::vector<u64> &w, std::size_t rows,
                    std::size_t cols, auto &&elem) {
        w.resize(rows * cols);
        for (std::size_t i = 0; i < rows; ++i)
            for (std::size_t j = 0; j < cols; ++j)
                w[i * cols + j] = elem(i, j);
    };

    // Forward factors (paper Eq. 9 element forms).
    fill(gm_.w1, n1, n1, [&](std::size_t i, std::size_t j) {
        return mod_.pow(psi_2n1, (2 * i * j + j) % (2 * n1));
    });
    fill(gm_.w2, n1, n2, [&](std::size_t i, std::size_t j) {
        return psiPow_[(2 * i * j + j) % (2 * n_)];
    });
    fill(gm_.w3, n2, n2, [&](std::size_t i, std::size_t j) {
        return mod_.pow(omega_n2, (i * j) % n2);
    });

    // Inverse factors (derivation in ntt_gemm.cc):
    //   D = A_mat x W3i,  E = D had W2i,  a_mat = W1i x E,
    //   a[n] *= psi^-n * N^-1.
    fill(gm_.w3i, n2, n2, [&](std::size_t i, std::size_t j) {
        return mod_.pow(omega_n2_inv, (i * j) % n2);
    });
    fill(gm_.w2i, n1, n2, [&](std::size_t i, std::size_t j) {
        return mod_.pow(omega_n_inv, (i * j) % n_);
    });
    fill(gm_.w1i, n1, n1, [&](std::size_t i, std::size_t j) {
        return mod_.pow(omega_n1_inv, (i * j) % n1);
    });

    u64 n_inv = mod_.inv(n_ % mod_.value());
    gm_.psiInvPow.resize(n_);
    u64 acc = n_inv;
    for (std::size_t n = 0; n < n_; ++n) {
        gm_.psiInvPow[n] = acc;
        acc = mod_.mul(acc, psiInv_);
    }

    // Pre-segment the reused factors for the TCU path (the paper
    // performs twiddle segmentation once, as pre-processing).
    gm_.w1Seg = tcu::segmentU32(gm_.w1.data(), gm_.w1.size());
    gm_.w3Seg = tcu::segmentU32(gm_.w3.data(), gm_.w3.size());
    gm_.w1iSeg = tcu::segmentU32(gm_.w1i.data(), gm_.w1i.size());
    gm_.w3iSeg = tcu::segmentU32(gm_.w3i.data(), gm_.w3i.size());
}

} // namespace tensorfhe::ntt
