/**
 * @file
 * Direct O(N^2) evaluation of paper Eqs. 4 and 2 — the correctness
 * oracle against which every optimized engine is tested.
 */

#include <vector>

#include "ntt/ntt.hh"

namespace tensorfhe::ntt::detail
{

void
forwardReference(const TwiddleTable &t, u64 *a)
{
    std::size_t n = t.n();
    const Modulus &mod = t.modulus();
    std::vector<u64> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        u128 acc = 0;
        // A_k = sum_n a_n * psi^(2nk + n), one modulo per partial
        // product (the baseline the paper's modulo-reduction
        // optimization is measured against).
        for (std::size_t i = 0; i < n; ++i) {
            u64 w = t.psiPow((2 * i * k + i) % (2 * n));
            acc += static_cast<u128>(mod.mul(a[i], w));
        }
        out[k] = mod.reduce(acc);
    }
    std::copy(out.begin(), out.end(), a);
}

void
inverseReference(const TwiddleTable &t, u64 *a)
{
    std::size_t n = t.n();
    const Modulus &mod = t.modulus();
    u64 n_inv = mod.inv(n % mod.value());
    std::vector<u64> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        u128 acc = 0;
        // a_i = N^-1 * psi^-i * sum_k A_k * omega^-(ik)
        for (std::size_t k = 0; k < n; ++k) {
            u64 w = t.psiPow((2 * n - (2 * i * k) % (2 * n)) % (2 * n));
            acc += static_cast<u128>(mod.mul(a[k], w));
        }
        u64 v = mod.reduce(acc);
        u64 psi_inv_i = t.psiPow((2 * n - i) % (2 * n));
        out[i] = mod.mul(mod.mul(v, psi_inv_i), n_inv);
    }
    std::copy(out.begin(), out.end(), a);
}

} // namespace tensorfhe::ntt::detail
