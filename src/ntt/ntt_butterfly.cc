/**
 * @file
 * Iterative negacyclic NTT with CT (forward) and GS (inverse)
 * butterflies and Shoup constant multiplication, after Longa-Naehrig.
 * This is the kernel inside the "TensorFHE-NT" configuration and the
 * CPU baseline; its stage-to-stage RAW dependences are what Fig. 4
 * blames for GPGPU pipeline stalls.
 *
 * The raw CT pass emits bit-reversed order and the GS pass consumes
 * it; the public API is natural order. The entry points first offer
 * the transform to the active SIMD backend, whose vector stages fold
 * the bit-reverse permutation into their first/last gathers; when it
 * declines (scalar backend, or n below two vector widths) the scalar
 * pass below runs with an explicit permutation pass.
 */

#include "common/stats.hh"
#include "ntt/ntt.hh"
#include "simd/simd.hh"

namespace tensorfhe::ntt::detail
{

namespace
{

/** CT decimation-in-time: natural in, bit-reversed out. */
void
ctForward(const TwiddleTable &tbl, u64 *a)
{
    const auto &bf = tbl.butterfly();
    std::size_t n = tbl.n();
    u64 q = tbl.q();
    std::size_t t = n;
    for (std::size_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            std::size_t j1 = 2 * i * t;
            u64 s = bf.psiRev[m + i];
            u64 s_shoup = bf.psiRevShoup[m + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                u64 v = mulModShoup(a[j + t], s, s_shoup, q);
                a[j] = addMod(u, v, q);
                a[j + t] = subMod(u, v, q);
            }
        }
    }
}

/** GS decimation-in-frequency: bit-reversed in, natural out. */
void
gsInverse(const TwiddleTable &tbl, u64 *a)
{
    const auto &bf = tbl.butterfly();
    std::size_t n = tbl.n();
    u64 q = tbl.q();
    std::size_t t = 1;
    for (std::size_t m = n; m > 1; m >>= 1) {
        std::size_t j1 = 0;
        std::size_t h = m >> 1;
        for (std::size_t i = 0; i < h; ++i) {
            u64 s = bf.psiInvRev[h + i];
            u64 s_shoup = bf.psiInvRevShoup[h + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                u64 v = a[j + t];
                a[j] = addMod(u, v, q);
                a[j + t] = mulModShoup(subMod(u, v, q), s, s_shoup, q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (std::size_t j = 0; j < n; ++j)
        a[j] = mulModShoup(a[j], bf.nInv, bf.nInvShoup, q);
}

} // namespace

void
forwardButterfly(const TwiddleTable &t, u64 *a)
{
    if (simd::ops().nttForward(t, a))
        return;
    ctForward(t, a);
    bitReversePermute(a, t.n());
}

void
inverseButterfly(const TwiddleTable &t, u64 *a)
{
    if (simd::ops().nttInverse(t, a))
        return;
    bitReversePermute(a, t.n());
    gsInverse(t, a);
}

} // namespace tensorfhe::ntt::detail
