/**
 * @file
 * Scoreboarded SM pipeline simulator with stall attribution.
 *
 * Models one SM running W warps of a common trace under a
 * greedy-then-oldest scheduler. Each cycle either issues one
 * instruction or records a stall, classified into the six categories
 * of the paper's Fig. 4:
 *   RAW          operand pending from a short-latency ALU producer
 *   LongLatency  operand pending from a global-memory load
 *   L1I          instruction fetch miss (footprint model)
 *   Control      post-branch fetch bubble
 *   FuBusy       all ports of the needed function unit busy
 *   Barrier      warp parked at a block barrier
 *
 * Following the paper ("we consider only the stall cycles that cannot
 * be hidden"), a stall is charged only when *no* warp can issue, and
 * it is attributed to the blocking reason of the oldest warp.
 */

#ifndef TENSORFHE_GPU_PIPELINE_HH
#define TENSORFHE_GPU_PIPELINE_HH

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "gpu/device.hh"
#include "gpu/trace.hh"

namespace tensorfhe
{
class ThreadPool;
}

namespace tensorfhe::gpu
{

/** Stall categories (paper Fig. 4 legend). */
enum class Stall : int
{
    Raw = 0,
    LongLatency,
    L1I,
    Control,
    FuBusy,
    Barrier,
    NumKinds
};

const char *stallName(Stall s);

struct StallBreakdown
{
    u64 totalCycles = 0;
    u64 issuedCycles = 0;
    std::array<u64, static_cast<std::size_t>(Stall::NumKinds)> stalls{};

    u64
    stallCycles() const
    {
        u64 sum = 0;
        for (u64 s : stalls)
            sum += s;
        return sum;
    }

    double
    stallFraction(Stall s) const
    {
        return totalCycles == 0
            ? 0.0
            : static_cast<double>(
                  stalls[static_cast<std::size_t>(s)])
                / static_cast<double>(totalCycles);
    }

    double
    totalStallFraction() const
    {
        return totalCycles == 0
            ? 0.0
            : static_cast<double>(stallCycles())
                / static_cast<double>(totalCycles);
    }
};

/** Latency/port configuration; defaults approximate a Pascal SM. */
struct PipelineConfig
{
    int aluLatency = 4;
    int mulLatency = 6;
    int madLatency = 6;
    int modLatency = 36;     ///< division-based modulo sequence
    int faddLatency = 4;
    int fmulLatency = 4;
    int ldgLatency = 400;    ///< global memory
    int ldsLatency = 24;     ///< shared memory
    int stLatency = 1;
    int mmaLatency = 16;
    int branchBubble = 2;
    int aluPorts = 4;        ///< issue slots per cycle for ALU class
    int memPorts = 1;
    int mmaPorts = 1;
    /** Fixed launch/teardown cost charged per kernel in the scheduled
        queue replay (replayScheduledQueue) — the host-side latency a
        fused launch amortizes. Does not affect simulateSm itself. */
    u64 launchOverheadCycles = 200;
    double l1iMissRate(std::size_t footprint) const
    {
        // Instruction cache pressure grows with static footprint;
        // saturates at 4%.
        double r = static_cast<double>(footprint) / 4096.0;
        return r > 0.04 ? 0.04 : r;
    }
};

/**
 * Simulate `warps` copies of `trace` on one SM.
 * Deterministic: no randomness; the L1I model charges a miss every
 * 1/missRate fetches.
 */
StallBreakdown simulateSm(const WarpTrace &trace, int warps,
                          const PipelineConfig &cfg = {});

/** One (trace, warp-count) simulation request. */
using SmJob = std::pair<const WarpTrace *, int>;

/**
 * Simulate every job, dispatched across `pool` (null = process-global)
 * — the benches' kernel x configuration sweeps are embarrassingly
 * parallel, and each simulation is deterministic, so results are
 * identical to serial simulateSm calls in job order.
 */
std::vector<StallBreakdown> simulateSmBatch(const std::vector<SmJob> &jobs,
                                            const PipelineConfig &cfg = {},
                                            ThreadPool *pool = nullptr);

/**
 * Replay a recorded kernel queue (the dispatch schedule the unified
 * exec layer emits through KernelStats::startQueue/stopQueue) on the
 * SM model: every launch is mapped to a representative warp trace —
 * NTT/INTT to the butterfly trace, TCU-GEMM to the GEMM trace,
 * everything elementwise (Hada-Mult, Ele-Add/Sub, FrobeniusMap,
 * Conv, Segment, Fusion) to the streaming trace — with the warp
 * count scaled by the launch's element volume. Returns one
 * StallBreakdown per launch, in queue order. Deterministic.
 *
 * @param n poly length used to shape the representative traces
 */
std::vector<StallBreakdown>
simulateKernelQueue(const std::vector<KernelLaunch> &queue, std::size_t n,
                    const PipelineConfig &cfg = {},
                    ThreadPool *pool = nullptr);

/** Aggregate a queue replay into one breakdown (cycle-weighted sum). */
StallBreakdown sumBreakdowns(const std::vector<StallBreakdown> &parts);

/**
 * One launch of a SCHEDULED kernel queue: the recorded launch plus
 * the graph scheduler's placement — which stream it runs on and
 * which earlier launches (by queue index) must finish first.
 */
struct ScheduledLaunch
{
    KernelLaunch launch;
    int stream = 0;
    /** Queue indices of producer launches (always < own index). */
    std::vector<std::size_t> deps;
};

/**
 * Replay of a scheduled queue: per-launch breakdowns plus the
 * timeline. simulateKernelQueue() replays launches back-to-back — it
 * assumes recorded order IS execution order, which serializes
 * independent branches. This replay honors the scheduler's stream
 * assignment instead: a launch starts when its stream is free AND
 * every dependency has finished, so independent streams overlap and
 * the makespan is the critical path, not the serial sum. Each launch
 * is additionally charged cfg.launchOverheadCycles, so fusing N
 * elementwise launches into one shows up as N-1 saved overheads.
 */
struct QueueReplay
{
    std::vector<StallBreakdown> perLaunch;
    std::vector<u64> startCycle;  ///< per launch, scheduled start
    std::vector<u64> finishCycle; ///< per launch, scheduled finish
    u64 makespanCycles = 0;       ///< critical-path finish
    u64 serialCycles = 0;         ///< back-to-back finish (1 stream)
    int streamsUsed = 0;

    /** Cycle-weighted stall fraction over every launch's pipeline
        breakdown (stream overlap does not change per-launch stalls;
        it changes the makespan). */
    double
    totalStallFraction() const
    {
        return sumBreakdowns(perLaunch).totalStallFraction();
    }
};

/**
 * Replay `queue` on the SM model with the scheduler's stream
 * assignment (the simulateKernelQueue fix for overlap): per-launch
 * simulation is identical to simulateKernelQueue on the bare
 * launches; the timeline obeys stream serialization + dependencies.
 * Deterministic.
 */
QueueReplay
replayScheduledQueue(const std::vector<ScheduledLaunch> &queue,
                     std::size_t n, const PipelineConfig &cfg = {},
                     ThreadPool *pool = nullptr);

} // namespace tensorfhe::gpu

#endif // TENSORFHE_GPU_PIPELINE_HH
