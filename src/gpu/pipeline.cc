#include "gpu/pipeline.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "fault/fault.hh"

namespace tensorfhe::gpu
{

const char *
stallName(Stall s)
{
    switch (s) {
      case Stall::Raw: return "RAW Stall";
      case Stall::LongLatency: return "Long Latency Stall";
      case Stall::L1I: return "L1I Miss Stall";
      case Stall::Control: return "Control Hazard Stall";
      case Stall::FuBusy: return "Function Unit Busy Stall";
      case Stall::Barrier: return "Barrier Stall";
      default: TFHE_ASSERT(false); return "?";
    }
}

namespace
{

/** Function-unit classes sharing issue ports. */
enum class FuClass
{
    Alu,
    Mem,
    Mma
};

FuClass
fuClassOf(Op op)
{
    switch (op) {
      case Op::Ldg:
      case Op::Stg:
      case Op::Lds:
      case Op::Sts:
        return FuClass::Mem;
      case Op::Mma:
        return FuClass::Mma;
      default:
        return FuClass::Alu;
    }
}

struct WarpState
{
    std::size_t pc = 0;
    bool done = false;
    bool waiting = false;       ///< parked at barrier
    u64 fetchReady = 0;
    Stall fetchReason = Stall::Control;
    u64 fetches = 0;
    u64 drainUntil = 0;         ///< latest outstanding write-back
    std::vector<u64> regReady;
    std::vector<bool> regFromLoad;
};

} // namespace

StallBreakdown
simulateSm(const WarpTrace &trace, int warps, const PipelineConfig &cfg)
{
    TFHE_ASSERT(warps >= 1);
    int max_reg = 0;
    for (const auto &in : trace.instrs)
        max_reg = std::max({max_reg, in.dst, in.src0, in.src1});

    std::vector<WarpState> w(warps);
    for (auto &ws : w) {
        ws.regReady.assign(static_cast<std::size_t>(max_reg) + 1, 0);
        ws.regFromLoad.assign(static_cast<std::size_t>(max_reg) + 1,
                              false);
    }

    double miss_rate = cfg.l1iMissRate(trace.footprintInstrs);
    u64 miss_every = miss_rate > 0
        ? static_cast<u64>(1.0 / miss_rate)
        : ~u64(0);

    auto latency = [&](Op op) -> int {
        switch (op) {
          case Op::IAdd: return cfg.aluLatency;
          case Op::IMul: return cfg.mulLatency;
          case Op::IMad: return cfg.madLatency;
          case Op::Mod: return cfg.modLatency;
          case Op::FAdd: return cfg.faddLatency;
          case Op::FMul: return cfg.fmulLatency;
          case Op::Ldg: return cfg.ldgLatency;
          case Op::Lds: return cfg.ldsLatency;
          case Op::Stg:
          case Op::Sts: return cfg.stLatency;
          case Op::Mma: return cfg.mmaLatency;
          case Op::Bra:
          case Op::Bar: return 1;
        }
        return 1;
    };

    StallBreakdown bd;
    u64 cycle = 0;
    std::size_t last_issued = 0;
    const u64 cycle_cap = 500'000'000ull;

    auto all_done = [&] {
        for (const auto &ws : w)
            if (!ws.done)
                return false;
        return true;
    };

    // Barrier protocol: a warp issuing Bar parks *at* the Bar pc;
    // release requires every live warp parked (necessarily at the
    // same barrier, since releases are atomic) *and* fully drained —
    // in-flight writes must land so the next stage's shared-memory
    // reads observe them. The drain is what charges barrier stalls
    // to the straggler's outstanding latency.
    auto try_release_barrier = [&](u64 now) {
        for (const auto &ws : w)
            if (!ws.done && (!ws.waiting || ws.drainUntil > now))
                return;
        for (auto &ws : w) {
            if (ws.done)
                continue;
            ws.waiting = false;
            ++ws.pc;
            if (ws.pc == trace.instrs.size())
                ws.done = true;
        }
    };

    while (!all_done()) {
        TFHE_ASSERT(cycle < cycle_cap, "pipeline sim runaway");
        int alu_ports = cfg.aluPorts;
        int mem_ports = cfg.memPorts;
        int mma_ports = cfg.mmaPorts;
        int issued_this_cycle = 0;
        const int issue_width = 2;
        // Votes per blocking reason across all blocked warps; a fully
        // stalled cycle is attributed to the majority reason.
        std::array<int, static_cast<std::size_t>(Stall::NumKinds)>
            votes{};

        for (int k = 0; k < warps && issued_this_cycle < issue_width;
             ++k) {
            // Greedy-then-oldest: resume from the last issuing warp.
            std::size_t wi = (last_issued + static_cast<std::size_t>(k))
                % static_cast<std::size_t>(warps);
            WarpState &ws = w[wi];
            if (ws.done)
                continue;

            auto blocked = [&](Stall why) {
                ++votes[static_cast<std::size_t>(why)];
            };

            if (ws.waiting) {
                blocked(Stall::Barrier);
                continue;
            }
            if (ws.fetchReady > cycle) {
                blocked(ws.fetchReason);
                continue;
            }
            const Instr &in = trace.instrs[ws.pc];
            // Operand scoreboard.
            bool pending = false;
            bool from_load = false;
            for (int src : {in.src0, in.src1}) {
                if (src >= 0 && ws.regReady[src] > cycle) {
                    pending = true;
                    from_load = from_load || ws.regFromLoad[src];
                }
            }
            if (pending) {
                blocked(from_load ? Stall::LongLatency : Stall::Raw);
                continue;
            }
            // Port availability.
            FuClass fc = fuClassOf(in.op);
            int &ports = fc == FuClass::Mem
                ? mem_ports
                : fc == FuClass::Mma ? mma_ports : alu_ports;
            if (ports == 0) {
                blocked(Stall::FuBusy);
                continue;
            }
            --ports;

            // Issue.
            if (in.dst >= 0) {
                ws.regReady[in.dst] = cycle + latency(in.op);
                ws.regFromLoad[in.dst] = in.op == Op::Ldg;
                ws.drainUntil = std::max(ws.drainUntil,
                                         ws.regReady[in.dst]);
            }
            ++ws.fetches;
            if (miss_every != ~u64(0) && ws.fetches % miss_every == 0) {
                ws.fetchReady = cycle + 1 + 20;
                ws.fetchReason = Stall::L1I;
            }
            if (in.op == Op::Bra) {
                ws.fetchReady = cycle + 1 + cfg.branchBubble;
                ws.fetchReason = Stall::Control;
            }
            if (in.op == Op::Bar) {
                ws.waiting = true; // parks at the Bar pc
                try_release_barrier(cycle);
            } else {
                ++ws.pc;
                if (ws.pc == trace.instrs.size())
                    ws.done = true;
            }
            ++issued_this_cycle;
            last_issued = wi;
        }

        if (issued_this_cycle > 0) {
            ++bd.issuedCycles;
        } else {
            std::size_t best = 0;
            for (std::size_t s = 1; s < votes.size(); ++s)
                if (votes[s] > votes[best])
                    best = s;
            ++bd.stalls[best];
        }
        // Barriers can release even in stall cycles (all parked).
        try_release_barrier(cycle);
        ++bd.totalCycles;
        ++cycle;
    }
    return bd;
}

std::vector<StallBreakdown>
simulateSmBatch(const std::vector<SmJob> &jobs, const PipelineConfig &cfg,
                ThreadPool *pool)
{
    std::vector<StallBreakdown> out(jobs.size());
    if (!pool)
        pool = &ThreadPool::global();
    pool->parallelFor(0, jobs.size(), [&](std::size_t i) {
        out[i] = simulateSm(*jobs[i].first, jobs[i].second, cfg);
    });
    return out;
}

namespace
{

/** The three representative traces covering the kernel taxonomy. */
struct ReplayTraces
{
    WarpTrace ntt;
    WarpTrace gemm;
    WarpTrace ele;

    explicit ReplayTraces(std::size_t n)
        : ntt(butterflyNttTrace(n, 128)), gemm(gemmNttTrace(n, 128)),
          ele(elementwiseTrace(n, 256))
    {}

    SmJob
    jobFor(const KernelLaunch &launch) const
    {
        const WarpTrace *t = &ele;
        switch (launch.kind) {
          case KernelKind::Ntt:
          case KernelKind::Intt:
            t = &ntt;
            break;
          case KernelKind::TcuGemm:
            t = &gemm;
            break;
          default:
            break;
        }
        // Warp occupancy scales with the launch's element volume —
        // a whole-batch dispatch fills the SM, a single-limb fixup
        // does not (paper SIV-D's motivation for batching).
        int warps = static_cast<int>(launch.elements / 4096);
        if (warps < 1)
            warps = 1;
        if (warps > 32)
            warps = 32;
        return {t, warps};
    }
};

} // namespace

std::vector<StallBreakdown>
simulateKernelQueue(const std::vector<KernelLaunch> &queue, std::size_t n,
                    const PipelineConfig &cfg, ThreadPool *pool)
{
    if (queue.empty())
        return {};
    // Built once per replay and shared by every launch of their class.
    ReplayTraces traces(n);
    std::vector<SmJob> jobs;
    jobs.reserve(queue.size());
    for (const auto &launch : queue)
        jobs.push_back(traces.jobFor(launch));
    return simulateSmBatch(jobs, cfg, pool);
}

QueueReplay
replayScheduledQueue(const std::vector<ScheduledLaunch> &queue,
                     std::size_t n, const PipelineConfig &cfg,
                     ThreadPool *pool)
{
    QueueReplay out;
    if (queue.empty())
        return out;
    ReplayTraces traces(n);
    std::vector<SmJob> jobs;
    jobs.reserve(queue.size());
    for (const auto &sl : queue)
        jobs.push_back(traces.jobFor(sl.launch));
    out.perLaunch = simulateSmBatch(jobs, cfg, pool);

    // Timeline: a launch starts when its stream frees up AND every
    // dependency has finished; streams serialize in queue order.
    out.startCycle.resize(queue.size());
    out.finishCycle.resize(queue.size());
    std::vector<u64> streamFree;
    u64 serial = 0;
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const auto &sl = queue[i];
        TFHE_FAULT_POINT("gpu/replay-dispatch");
        TFHE_ASSERT(sl.stream >= 0, "negative stream id");
        auto s = static_cast<std::size_t>(sl.stream);
        if (s >= streamFree.size())
            streamFree.resize(s + 1, 0);
        u64 start = streamFree[s];
        for (std::size_t d : sl.deps) {
            TFHE_ASSERT(d < i, "dependency on a later launch");
            start = std::max(start, out.finishCycle[d]);
        }
        u64 dur =
            out.perLaunch[i].totalCycles + cfg.launchOverheadCycles;
        out.startCycle[i] = start;
        out.finishCycle[i] = start + dur;
        streamFree[s] = out.finishCycle[i];
        out.makespanCycles =
            std::max(out.makespanCycles, out.finishCycle[i]);
        serial += dur;
    }
    out.serialCycles = serial;
    out.streamsUsed = static_cast<int>(streamFree.size());
    return out;
}

StallBreakdown
sumBreakdowns(const std::vector<StallBreakdown> &parts)
{
    StallBreakdown total;
    for (const auto &p : parts) {
        total.totalCycles += p.totalCycles;
        total.issuedCycles += p.issuedCycles;
        for (std::size_t s = 0; s < total.stalls.size(); ++s)
            total.stalls[s] += p.stalls[s];
    }
    return total;
}

} // namespace tensorfhe::gpu
