#include "gpu/device.hh"

namespace tensorfhe::gpu
{

DeviceModel
DeviceModel::a100()
{
    DeviceModel d;
    d.name = "NVIDIA A100-SXM-40GB";
    d.numSms = 108;
    d.clockGhz = 1.41;
    d.memBwGBs = 1555.0;
    d.cudaCoresPerSm = 64;
    d.tcusPerSm = 4;
    d.tcuInt8Tops = 624.0;
    d.maxThreadsPerSm = 2048;
    d.maxWarpsPerSm = 64;
    d.regsPerSm = 65536;
    d.smemBytesPerSm = 164 * 1024;
    d.boardWatts = 264.0; // measured by the paper via nvidia-smi
    d.vramBytes = 40.0 * (1ull << 30);
    return d;
}

DeviceModel
DeviceModel::v100()
{
    DeviceModel d;
    d.name = "NVIDIA Tesla V100-16GB";
    d.numSms = 80;
    d.clockGhz = 1.53;
    d.memBwGBs = 900.0;
    d.cudaCoresPerSm = 64;
    d.tcusPerSm = 8;
    d.tcuInt8Tops = 250.0; // FP16 TCs repurposed; effective INT8 rate
    d.maxThreadsPerSm = 2048;
    d.maxWarpsPerSm = 64;
    d.regsPerSm = 65536;
    d.smemBytesPerSm = 96 * 1024;
    d.boardWatts = 300.0;
    d.vramBytes = 16.0 * (1ull << 30);
    return d;
}

DeviceModel
DeviceModel::gtx1080ti()
{
    DeviceModel d;
    d.name = "NVIDIA GTX 1080 Ti";
    d.numSms = 28;
    d.clockGhz = 1.58;
    d.memBwGBs = 484.0;
    d.cudaCoresPerSm = 128;
    d.tcusPerSm = 0;
    d.tcuInt8Tops = 0.0;
    d.maxThreadsPerSm = 2048;
    d.maxWarpsPerSm = 64;
    d.regsPerSm = 65536;
    d.smemBytesPerSm = 96 * 1024;
    d.boardWatts = 250.0;
    d.vramBytes = 11.0 * (1ull << 30);
    return d;
}

} // namespace tensorfhe::gpu
