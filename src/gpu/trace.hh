/**
 * @file
 * Micro-op ISA and kernel traces for the SM pipeline simulator.
 *
 * The motivation experiments of the paper (Figs. 4 and 10) come from
 * GPGPUSim runs of butterfly-NTT, FFT and DWT kernels. We reproduce
 * them with trace-driven simulation: a trace captures the per-warp
 * instruction stream with its register dependences, which is exactly
 * the information pipeline-stall attribution needs.
 */

#ifndef TENSORFHE_GPU_TRACE_HH
#define TENSORFHE_GPU_TRACE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tensorfhe::gpu
{

/** Micro-op classes with distinct latency / port behaviour. */
enum class Op : int
{
    IAdd,  ///< integer add/sub/logic
    IMul,  ///< integer multiply
    IMad,  ///< multiply-add
    Mod,   ///< modulo via division (no hardware support: long latency)
    FAdd,  ///< float add
    FMul,  ///< float multiply
    Ldg,   ///< global memory load
    Stg,   ///< global memory store
    Lds,   ///< shared memory load
    Sts,   ///< shared memory store
    Bra,   ///< branch
    Bar,   ///< block-wide barrier
    Mma    ///< tensor-core matrix multiply-accumulate
};

/** One instruction: up to two register sources, one destination. */
struct Instr
{
    Op op;
    int dst = -1;   ///< destination register id, -1 = none
    int src0 = -1;
    int src1 = -1;
};

/** The instruction stream of one representative warp. */
struct WarpTrace
{
    std::string name;
    std::vector<Instr> instrs;
    std::size_t footprintInstrs = 0; ///< static instr count for L1I model

    void
    emit(Op op, int dst = -1, int src0 = -1, int src1 = -1)
    {
        instrs.push_back({op, dst, src0, src1});
    }
};

/**
 * Trace builders.
 *
 * Register ids are virtual; the builders thread real dependences
 * (butterfly chains, accumulators, address arithmetic) so RAW stall
 * behaviour matches the algorithms' structure.
 *
 * @param n          transform length handled by the thread block
 * @param block      threads per block (paper Fig. 4: NTT 128, FFT 192,
 *                   DWT 256)
 */
WarpTrace butterflyNttTrace(std::size_t n, int block);
WarpTrace fftTrace(std::size_t n, int block);
WarpTrace dwtTrace(std::size_t n, int block);

/** GEMM-form NTT (TensorFHE-CO): three tiled modular GEMM stages. */
WarpTrace gemmNttTrace(std::size_t n, int block);

/**
 * Streaming elementwise modular kernel (Hada-Mult / Ele-Add / Conv
 * accumulate shape): load two operands, one mul-mod chain, store.
 * Memory-bound with long-latency stalls — the trace the pipeline
 * simulator uses for the non-NTT entries of an exec kernel queue.
 */
WarpTrace elementwiseTrace(std::size_t n, int block);

} // namespace tensorfhe::gpu

#endif // TENSORFHE_GPU_TRACE_HH
