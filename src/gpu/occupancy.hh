/**
 * @file
 * GPGPU occupancy calculator plus the threading/throughput model
 * behind the paper's Fig. 5 motivation study (occupancy and execution
 * time versus total thread count) and Table IX (occupancy under
 * operation-level batching).
 */

#ifndef TENSORFHE_GPU_OCCUPANCY_HH
#define TENSORFHE_GPU_OCCUPANCY_HH

#include <string>

#include "gpu/device.hh"

namespace tensorfhe::gpu
{

struct OccupancyResult
{
    int blocksPerSm = 0;
    int activeWarpsPerSm = 0;
    double occupancy = 0.0; ///< active warps / max warps
    std::string limiter;    ///< which resource bounds occupancy
};

/**
 * Classic static occupancy: how many blocks fit an SM given thread,
 * register and shared-memory budgets.
 */
OccupancyResult staticOccupancy(const DeviceModel &dev,
                                int threads_per_block,
                                int regs_per_thread,
                                int smem_per_block);

/**
 * Dynamic utilization model for a memory-intensive FHE kernel run
 * with `total_threads` across the chip (paper Fig. 5).
 *
 * Each thread handles `elements / total_threads` coefficients; below
 * saturation more threads hide more latency, past it each extra
 * thread adds fixed-overhead traffic (index/tables re-fetch) that
 * erodes effective bandwidth. Returns achieved occupancy [0,1] and
 * relative execution time (1.0 = best configuration).
 */
struct ThreadingPoint
{
    std::size_t totalThreads;
    double occupancy;
    double normalizedTime;
};

ThreadingPoint threadingModel(const DeviceModel &dev,
                              std::size_t total_threads,
                              std::size_t elements,
                              double bytes_per_element,
                              double ops_per_element,
                              int regs_per_thread = 64);

/**
 * Occupancy under operation-level batching (Table IX): batching
 * multiplies the number of independent CTAs; occupancy saturates at
 * the static limit minus a per-kernel tail-effect term.
 */
double batchedOccupancy(const DeviceModel &dev, std::size_t batch,
                        std::size_t ctas_per_op, double tail_fraction);

} // namespace tensorfhe::gpu

#endif // TENSORFHE_GPU_OCCUPANCY_HH
