/**
 * @file
 * GPGPU device models. Public specifications of the three devices the
 * paper touches: the A100 TensorFHE runs on (Table III), the V100 of
 * the 100x comparison, and the GTX 1080 Ti simulated for the
 * motivation study (SIII-A).
 */

#ifndef TENSORFHE_GPU_DEVICE_HH
#define TENSORFHE_GPU_DEVICE_HH

#include <string>

#include "common/types.hh"

namespace tensorfhe::gpu
{

struct DeviceModel
{
    std::string name;
    int numSms = 0;
    double clockGhz = 0.0;
    double memBwGBs = 0.0;       ///< peak DRAM bandwidth
    int cudaCoresPerSm = 0;      ///< INT32 ALU lanes per SM
    int tcusPerSm = 0;
    double tcuInt8Tops = 0.0;    ///< whole-chip INT8 tensor TOPS
    int maxThreadsPerSm = 0;
    int maxWarpsPerSm = 0;
    int maxThreadsPerBlock = 1024;
    int regsPerSm = 0;
    int smemBytesPerSm = 0;
    int warpSize = 32;
    double boardWatts = 0.0;
    double vramBytes = 0.0;

    /** NVIDIA A100-SXM-40GB (paper Table III). */
    static DeviceModel a100();
    /** NVIDIA Tesla V100 16GB (PrivFT / 100x platform). */
    static DeviceModel v100();
    /** NVIDIA GTX 1080 Ti (GPGPUSim motivation platform). */
    static DeviceModel gtx1080ti();
};

} // namespace tensorfhe::gpu

#endif // TENSORFHE_GPU_DEVICE_HH
