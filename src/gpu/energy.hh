/**
 * @file
 * Board-power energy model (paper SVI-D): the paper observes a stable
 * 264 W on the A100 under TensorFHE's high utilization and reports
 * OPs/W and J/iteration; energy here is power x time by the same
 * methodology.
 */

#ifndef TENSORFHE_GPU_ENERGY_HH
#define TENSORFHE_GPU_ENERGY_HH

#include "gpu/device.hh"

namespace tensorfhe::gpu
{

class EnergyModel
{
  public:
    explicit EnergyModel(const DeviceModel &dev) : watts_(dev.boardWatts)
    {}
    explicit EnergyModel(double watts) : watts_(watts) {}

    double watts() const { return watts_; }
    double joules(double seconds) const { return watts_ * seconds; }

    /** Operations per watt for a given throughput (ops/second). */
    double
    opsPerWatt(double ops_per_second) const
    {
        return ops_per_second / watts_;
    }

    /** Energy per workload iteration that takes `seconds`. */
    double
    joulesPerIteration(double seconds) const
    {
        return joules(seconds);
    }

  private:
    double watts_;
};

} // namespace tensorfhe::gpu

#endif // TENSORFHE_GPU_ENERGY_HH
