#include "gpu/occupancy.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tensorfhe::gpu
{

OccupancyResult
staticOccupancy(const DeviceModel &dev, int threads_per_block,
                int regs_per_thread, int smem_per_block)
{
    requireArg(threads_per_block >= 1
                   && threads_per_block <= dev.maxThreadsPerBlock,
               "bad block size");
    requireArg(regs_per_thread >= 1, "bad register count");

    int warps_per_block =
        (threads_per_block + dev.warpSize - 1) / dev.warpSize;
    int by_threads = dev.maxThreadsPerSm / threads_per_block;
    int by_warps = dev.maxWarpsPerSm / warps_per_block;
    int by_regs = dev.regsPerSm / (regs_per_thread * threads_per_block);
    int by_smem = smem_per_block > 0
        ? dev.smemBytesPerSm / smem_per_block
        : by_threads;

    OccupancyResult r;
    r.blocksPerSm = std::min({by_threads, by_warps, by_regs, by_smem});
    if (r.blocksPerSm == by_regs && by_regs <= by_threads
        && by_regs <= by_smem) {
        r.limiter = "registers";
    } else if (r.blocksPerSm == by_smem && by_smem <= by_threads) {
        r.limiter = "shared memory";
    } else {
        r.limiter = "threads";
    }
    r.activeWarpsPerSm = r.blocksPerSm * warps_per_block;
    r.occupancy = static_cast<double>(r.activeWarpsPerSm)
        / static_cast<double>(dev.maxWarpsPerSm);
    return r;
}

ThreadingPoint
threadingModel(const DeviceModel &dev, std::size_t total_threads,
               std::size_t elements, double bytes_per_element,
               double ops_per_element, int regs_per_thread)
{
    TFHE_ASSERT(total_threads > 0 && elements > 0);

    // Register pressure caps resident threads per SM.
    std::size_t cap_per_sm = static_cast<std::size_t>(
        dev.regsPerSm / regs_per_thread);
    cap_per_sm = std::min<std::size_t>(
        cap_per_sm, static_cast<std::size_t>(dev.maxThreadsPerSm));
    std::size_t resident = std::min(
        total_threads,
        cap_per_sm * static_cast<std::size_t>(dev.numSms));

    double occupancy = static_cast<double>(resident)
        / (static_cast<double>(dev.numSms) * dev.maxThreadsPerSm);

    // Compute time: ops spread over resident lanes, with latency
    // hiding improving as warps per SM grow (saturating).
    double total_ops = static_cast<double>(elements) * ops_per_element;
    double lanes = static_cast<double>(dev.numSms) * dev.cudaCoresPerSm;
    double warps_per_sm = static_cast<double>(resident)
        / (dev.numSms * dev.warpSize);
    double hide = 1.0 - std::exp(-warps_per_sm / 8.0);
    double compute_s = total_ops
        / (lanes * dev.clockGhz * 1e9 * std::max(hide, 0.05));

    // Memory time: payload plus per-thread fixed overhead (twiddle
    // and index refetches shrink effective bandwidth as the same data
    // is sliced across more threads).
    double payload = static_cast<double>(elements) * bytes_per_element;
    double overhead = static_cast<double>(total_threads) * 2048.0;
    double memory_s = (payload + overhead) / (dev.memBwGBs * 1e9);

    ThreadingPoint p;
    p.totalThreads = total_threads;
    p.occupancy = occupancy;
    p.normalizedTime = std::max(compute_s, memory_s);
    return p;
}

double
batchedOccupancy(const DeviceModel &dev, std::size_t batch,
                 std::size_t ctas_per_op, double tail_fraction)
{
    TFHE_ASSERT(tail_fraction >= 0.0 && tail_fraction < 1.0);
    // Independent batched operations multiply available CTAs; the
    // chip saturates once CTAs cover every SM several times over.
    double ctas = static_cast<double>(batch * ctas_per_op);
    double waves = ctas / static_cast<double>(dev.numSms);
    double saturation = 1.0 - std::exp(-waves / 4.0);
    return saturation * (1.0 - tail_fraction);
}

} // namespace tensorfhe::gpu
