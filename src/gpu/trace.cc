#include "gpu/trace.hh"

#include "common/logging.hh"
#include "common/modarith.hh"

namespace tensorfhe::gpu
{

namespace
{

/** Monotonic virtual register allocator. */
struct RegAlloc
{
    int next = 0;
    int fresh() { return next++; }
};

} // namespace

WarpTrace
butterflyNttTrace(std::size_t n, int block)
{
    // Each warp sweeps log2(N) stages; per stage each thread performs
    // butterflies whose operands were produced by the *previous*
    // stage (through shared memory, separated by a barrier). Within a
    // butterfly the mul-mod chain u -> w*v -> mod -> add/sub is a
    // tight dependent chain: the RAW structure the paper blames in
    // SIII-A.
    WarpTrace t;
    t.name = "butterfly-ntt";
    RegAlloc r;
    int stages = log2Floor(n);
    std::size_t butterflies_per_thread =
        (n / 2) / static_cast<std::size_t>(block);
    if (butterflies_per_thread == 0)
        butterflies_per_thread = 1;

    for (int s = 0; s < stages; ++s) {
        for (std::size_t b = 0; b < butterflies_per_thread; ++b) {
            int addr = r.fresh();
            t.emit(Op::IAdd, addr);             // index arithmetic
            int u = r.fresh();
            int v = r.fresh();
            // Stage 0 reads from global memory, later stages from
            // shared memory (the classic staging pattern).
            Op load = s == 0 ? Op::Ldg : Op::Lds;
            t.emit(load, u, addr);
            t.emit(load, v, addr);
            int w = r.fresh();
            t.emit(Op::Lds, w, addr);           // twiddle
            int prod = r.fresh();
            t.emit(Op::IMul, prod, v, w);       // v * w
            int red = r.fresh();
            t.emit(Op::Mod, red, prod);         // mod q (no HW support)
            int hi = r.fresh();
            int lo = r.fresh();
            t.emit(Op::IAdd, hi, u, red);       // u + wv
            t.emit(Op::IAdd, lo, u, red);       // u - wv
            t.emit(Op::Mod, hi, hi);            // conditional correct
            t.emit(Op::Mod, lo, lo);
            Op store = s == stages - 1 ? Op::Stg : Op::Sts;
            t.emit(store, -1, hi);
            t.emit(store, -1, lo);
        }
        t.emit(Op::Bar);                        // stage dependency
    }
    t.footprintInstrs = 96; // tight loop body re-executed per stage
    return t;
}

WarpTrace
fftTrace(std::size_t n, int block)
{
    // Same butterfly dataflow, but float arithmetic: no Mod ops, and
    // FMA latency is fully pipelined, so the dependent chains are
    // shorter.
    WarpTrace t;
    t.name = "fft";
    RegAlloc r;
    int stages = log2Floor(n);
    std::size_t per_thread = (n / 2) / static_cast<std::size_t>(block);
    if (per_thread == 0)
        per_thread = 1;
    for (int s = 0; s < stages; ++s) {
        for (std::size_t b = 0; b < per_thread; ++b) {
            int addr = r.fresh();
            t.emit(Op::IAdd, addr);
            int u = r.fresh(), v = r.fresh(), w = r.fresh();
            Op load = s == 0 ? Op::Ldg : Op::Lds;
            t.emit(load, u, addr);
            t.emit(load, v, addr);
            t.emit(Op::Lds, w, addr);
            // Complex butterfly: 4 mul + 6 add, mostly independent
            // pairs.
            int p0 = r.fresh(), p1 = r.fresh();
            t.emit(Op::FMul, p0, v, w);
            t.emit(Op::FMul, p1, v, w);
            int hi = r.fresh(), lo = r.fresh();
            t.emit(Op::FAdd, hi, u, p0);
            t.emit(Op::FAdd, lo, u, p1);
            Op store = s == stages - 1 ? Op::Stg : Op::Sts;
            t.emit(store, -1, hi);
            t.emit(store, -1, lo);
        }
        t.emit(Op::Bar);
    }
    t.footprintInstrs = 64;
    return t;
}

WarpTrace
dwtTrace(std::size_t n, int block)
{
    // Discrete wavelet transform: per level, each thread convolves a
    // short filter over its strip — loads feed independent FMAs (deep
    // ILP), few barriers (one per level, log4 levels).
    WarpTrace t;
    t.name = "dwt";
    RegAlloc r;
    int levels = log2Floor(n) / 2;
    std::size_t per_thread = n / static_cast<std::size_t>(block);
    if (per_thread < 4)
        per_thread = 4;
    for (int lvl = 0; lvl < levels; ++lvl) {
        // Four outputs processed in an interleaved (software-
        // pipelined) fashion: all taps are loaded up front, then the
        // accumulations proceed on independent chains — the ILP that
        // makes DWT stall less than NTT in the paper's Fig. 4.
        for (std::size_t i = 0; i < per_thread; i += 4) {
            int addr = r.fresh();
            t.emit(Op::IAdd, addr);
            int acc[4];
            int taps[4][4];
            for (int o = 0; o < 4; ++o)
                for (int tap = 0; tap < 4; ++tap) {
                    taps[o][tap] = r.fresh();
                    t.emit(lvl == 0 ? Op::Ldg : Op::Lds, taps[o][tap],
                           addr);
                }
            for (int o = 0; o < 4; ++o) {
                acc[o] = r.fresh();
                t.emit(Op::FMul, acc[o], taps[o][0]);
            }
            for (int tap = 1; tap < 4; ++tap)
                for (int o = 0; o < 4; ++o)
                    t.emit(Op::FAdd, acc[o], acc[o], taps[o][tap]);
            for (int o = 0; o < 4; ++o)
                t.emit(Op::Sts, -1, acc[o]);
        }
        t.emit(Op::Bar);
    }
    t.footprintInstrs = 48;
    return t;
}

WarpTrace
gemmNttTrace(std::size_t n, int block)
{
    // Three-GEMM NTT (paper Eq. 9): per output element a long run of
    // *independent* IMADs into an accumulator pair (64-bit emulation),
    // one Mod at the very end. No stage barriers except between the
    // three GEMMs; loads stream with high locality.
    WarpTrace t;
    t.name = "gemm-ntt";
    RegAlloc r;
    std::size_t n1 = std::size_t(1) << ((log2Floor(n) + 1) / 2);
    std::size_t n2 = n / n1;
    // The GEMM form spreads the transform over ~4x more CTAs than
    // the butterfly (one tile per block); per-SM trace work shrinks
    // accordingly.
    std::size_t outputs_per_thread =
        n / static_cast<std::size_t>(block) / 4;
    if (outputs_per_thread == 0)
        outputs_per_thread = 1;

    auto gemm_stage = [&](std::size_t k_len, bool last) {
        for (std::size_t o = 0; o < outputs_per_thread; ++o) {
            // Two independent accumulator chains: the ILP that kills
            // the butterfly's RAW serialization.
            int acc0 = r.fresh();
            int acc1 = r.fresh();
            t.emit(Op::IAdd, acc0);
            t.emit(Op::IAdd, acc1);
            for (std::size_t k = 0; k < k_len; k += 4) {
                int a0 = r.fresh(), b0 = r.fresh();
                t.emit(Op::Lds, a0);
                t.emit(Op::Lds, b0);
                t.emit(Op::IMad, acc0, a0, b0);
                int a1 = r.fresh(), b1 = r.fresh();
                t.emit(Op::Lds, a1);
                t.emit(Op::Lds, b1);
                t.emit(Op::IMad, acc1, a1, b1);
            }
            t.emit(Op::IAdd, acc0, acc0, acc1);
            t.emit(Op::Mod, acc0, acc0); // one deferred modulo
            t.emit(last ? Op::Stg : Op::Sts, -1, acc0);
        }
        t.emit(Op::Bar);
    };

    // Load input tile once from global memory.
    for (std::size_t i = 0; i < outputs_per_thread; ++i) {
        int x = r.fresh();
        t.emit(Op::Ldg, x);
        t.emit(Op::Sts, -1, x);
    }
    t.emit(Op::Bar);

    gemm_stage(n1, false);
    // Hadamard with W2: independent mul+mod per element.
    for (std::size_t o = 0; o < outputs_per_thread; ++o) {
        int x = r.fresh(), w = r.fresh();
        t.emit(Op::Lds, x);
        t.emit(Op::Lds, w);
        int p = r.fresh();
        t.emit(Op::IMul, p, x, w);
        t.emit(Op::Mod, p, p);
        t.emit(Op::Sts, -1, p);
    }
    t.emit(Op::Bar);
    gemm_stage(n2, true);

    t.footprintInstrs = 80;
    return t;
}

WarpTrace
elementwiseTrace(std::size_t n, int block)
{
    // Streaming kernel: per element two global loads, one mul-mod
    // chain, one store. No reuse, no barriers — the long-latency
    // loads dominate, matching the memory-bound Table II kernels
    // (Hada-Mult / Ele-Add / Conv accumulate).
    WarpTrace t;
    t.name = "elementwise";
    RegAlloc r;
    std::size_t per_thread = n / static_cast<std::size_t>(block);
    if (per_thread == 0)
        per_thread = 1;
    if (per_thread > 64)
        per_thread = 64; // grid-stride loop body, re-executed
    for (std::size_t e = 0; e < per_thread; ++e) {
        int addr = r.fresh();
        t.emit(Op::IAdd, addr);
        int a = r.fresh(), b = r.fresh();
        t.emit(Op::Ldg, a, addr);
        t.emit(Op::Ldg, b, addr);
        int p = r.fresh();
        t.emit(Op::IMul, p, a, b);
        t.emit(Op::Mod, p, p);
        t.emit(Op::Stg, -1, p);
    }
    t.footprintInstrs = 24; // tight grid-stride loop
    return t;
}

} // namespace tensorfhe::gpu
