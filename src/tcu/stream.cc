#include "tcu/stream.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tensorfhe::tcu
{

StreamModel::StreamModel(std::size_t num_streams) : load_(num_streams, 0.0)
{
    TFHE_ASSERT(num_streams > 0);
}

std::size_t
StreamModel::dispatch(double cost)
{
    auto it = std::min_element(load_.begin(), load_.end());
    *it += cost;
    return static_cast<std::size_t>(it - load_.begin());
}

double
StreamModel::makespan() const
{
    return *std::max_element(load_.begin(), load_.end());
}

double
StreamModel::totalWork() const
{
    double sum = 0.0;
    for (double l : load_)
        sum += l;
    return sum;
}

} // namespace tensorfhe::tcu
