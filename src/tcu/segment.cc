#include "tcu/segment.hh"

#include "common/logging.hh"
#include "common/stats.hh"
#include "tcu/int8_gemm.hh"
#include "tcu/stream.hh"

namespace tensorfhe::tcu
{

SegmentedMatrix
segmentU32(const u64 *src, std::size_t n)
{
    ScopedKernelTimer timer(KernelKind::Segment, n);
    SegmentedMatrix seg;
    for (auto &plane : seg)
        plane.resize(n);
    for (std::size_t e = 0; e < n; ++e) {
        u64 v = src[e];
        TFHE_ASSERT(v < (u64(1) << 32), "residue exceeds 32 bits");
        seg[0][e] = static_cast<u8>(v);
        seg[1][e] = static_cast<u8>(v >> 8);
        seg[2][e] = static_cast<u8>(v >> 16);
        seg[3][e] = static_cast<u8>(v >> 24);
    }
    return seg;
}

void
fuseMod(const std::array<std::array<std::vector<s32>, 4>, 4> &o,
        std::size_t n, const Modulus &mod, u64 *out)
{
    ScopedKernelTimer timer(KernelKind::Fusion, n);
    // Radix weights 2^(8(i+j)), i + j in [0, 6].
    u64 w[7];
    for (int s = 0; s <= 6; ++s)
        w[s] = mod.reduce(u128(1) << (8 * s));
    for (std::size_t e = 0; e < n; ++e) {
        u128 acc = 0;
        for (int i = 0; i < 4; ++i) {
            for (int j = 0; j < 4; ++j) {
                // s32 plane values are non-negative (u8 x u8 sums).
                acc += static_cast<u128>(static_cast<u64>(o[i][j][e]))
                    * w[i + j];
            }
        }
        out[e] = mod.reduce(acc);
    }
}

void
tensorGemmModSegSeg(const SegmentedMatrix &a_seg,
                    const SegmentedMatrix &b_seg, u64 *c, std::size_t m,
                    std::size_t n, std::size_t k, const Modulus &mod)
{
    TFHE_ASSERT(a_seg[0].size() == m * k, "segmented LHS shape mismatch");
    TFHE_ASSERT(b_seg[0].size() == k * n, "segmented RHS shape mismatch");

    std::array<std::array<std::vector<s32>, 4>, 4> o;
    {
        ScopedKernelTimer timer(KernelKind::TcuGemm, 16 * m * n);
        StreamModel streams(kDefaultStreams);
        for (int i = 0; i < 4; ++i) {
            for (int j = 0; j < 4; ++j) {
                o[i][j].resize(m * n);
                // Each of the 16 GEMMs goes to its own stream, as the
                // paper assigns one GEMM per CUDA stream (SIV-C.2).
                streams.dispatch(static_cast<double>(m) * n * k);
                int8Gemm(a_seg[i].data(), b_seg[j].data(), o[i][j].data(),
                         m, n, k);
            }
        }
    }
    fuseMod(o, m * n, mod, c);
}

void
tensorGemmMod(const u64 *a, const SegmentedMatrix &b_seg, u64 *c,
              std::size_t m, std::size_t n, std::size_t k,
              const Modulus &mod)
{
    SegmentedMatrix a_seg = segmentU32(a, m * k);
    tensorGemmModSegSeg(a_seg, b_seg, c, m, n, k, mod);
}

} // namespace tensorfhe::tcu
