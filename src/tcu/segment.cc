#include "tcu/segment.hh"

#include <unordered_map>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "tcu/int8_gemm.hh"
#include "tcu/stream.hh"

namespace tensorfhe::tcu
{

const FusionWeights &
fusionWeights(const Modulus &mod)
{
    // Per-thread cache: fuseMod sits on the hot TCU NTT path and is
    // called concurrently from every pool lane, so the memo must not
    // funnel through one lock. The table is seven u64s per prime —
    // duplicating it per thread is far cheaper than cross-core lock
    // traffic per kernel.
    thread_local std::unordered_map<u64, FusionWeights> cache;
    auto it = cache.find(mod.value());
    if (it != cache.end())
        return it->second;
    FusionWeights fw;
    for (int s = 0; s <= 6; ++s)
        fw.w[static_cast<std::size_t>(s)] =
            mod.reduce(u128(1) << (8 * s));
    return cache.emplace(mod.value(), fw).first->second;
}

SegmentedMatrix
segmentU32(const u64 *src, std::size_t n)
{
    ScopedKernelTimer timer(KernelKind::Segment, n);
    SegmentedMatrix seg;
    for (auto &plane : seg)
        plane.resize(n);
    for (std::size_t e = 0; e < n; ++e) {
        u64 v = src[e];
        TFHE_ASSERT(v < (u64(1) << 32), "residue exceeds 32 bits");
        seg[0][e] = static_cast<u8>(v);
        seg[1][e] = static_cast<u8>(v >> 8);
        seg[2][e] = static_cast<u8>(v >> 16);
        seg[3][e] = static_cast<u8>(v >> 24);
    }
    return seg;
}

void
fuseMod(const std::array<std::array<std::vector<s32>, 4>, 4> &o,
        std::size_t n, const Modulus &mod, u64 *out)
{
    ScopedKernelTimer timer(KernelKind::Fusion, n);
    // Radix weights 2^(8(i+j)), i + j in [0, 6] — memoized per prime
    // instead of rebuilt on every fusion dispatch.
    const auto &w = fusionWeights(mod).w;
    for (std::size_t e = 0; e < n; ++e) {
        u128 acc = 0;
        for (int i = 0; i < 4; ++i) {
            for (int j = 0; j < 4; ++j) {
                // s32 plane values are non-negative (u8 x u8 sums).
                acc += static_cast<u128>(static_cast<u64>(o[i][j][e]))
                    * w[i + j];
            }
        }
        out[e] = mod.reduce(acc);
    }
}

void
tensorGemmModSegSeg(const SegmentedMatrix &a_seg,
                    const SegmentedMatrix &b_seg, u64 *c, std::size_t m,
                    std::size_t n, std::size_t k, const Modulus &mod,
                    ThreadPool *pool)
{
    TFHE_ASSERT(a_seg[0].size() == m * k, "segmented LHS shape mismatch");
    TFHE_ASSERT(b_seg[0].size() == k * n, "segmented RHS shape mismatch");
    if (!pool)
        pool = &ThreadPool::global();

    std::array<std::array<std::vector<s32>, 4>, 4> o;
    {
        ScopedKernelTimer timer(KernelKind::TcuGemm, 16 * m * n);
        StreamModel streams(kDefaultStreams);
        for (int i = 0; i < 4; ++i) {
            for (int j = 0; j < 4; ++j) {
                o[i][j].resize(m * n);
                // Each of the 16 GEMMs goes to its own stream, as the
                // paper assigns one GEMM per CUDA stream (SIV-C.2).
                streams.dispatch(static_cast<double>(m) * n * k);
            }
        }
        // The 16 independent segment GEMMs drain across the worker
        // pool — the CPU analogue of the concurrent streams. Outputs
        // are disjoint, so this is bit-exact regardless of order.
        pool->parallelFor2D(4, 4, [&](std::size_t i, std::size_t j) {
            int8Gemm(a_seg[i].data(), b_seg[j].data(), o[i][j].data(),
                     m, n, k);
        });
    }
    fuseMod(o, m * n, mod, c);
}

void
tensorGemmMod(const u64 *a, const SegmentedMatrix &b_seg, u64 *c,
              std::size_t m, std::size_t n, std::size_t k,
              const Modulus &mod, ThreadPool *pool)
{
    SegmentedMatrix a_seg = segmentU32(a, m * k);
    tensorGemmModSegSeg(a_seg, b_seg, c, m, n, k, mod, pool);
}

void
tensorGemmModBatchLhs(const u64 *const *as, const SegmentedMatrix &b_seg,
                      u64 *const *cs, std::size_t batch, std::size_t m,
                      std::size_t n, std::size_t k, const Modulus &mod,
                      ThreadPool *pool)
{
    if (batch == 0)
        return;
    // Stack the A_b row-blocks: rows [b*m, (b+1)*m) come from A_b.
    std::vector<u64> stacked(batch * m * k);
    for (std::size_t b = 0; b < batch; ++b)
        std::copy(as[b], as[b] + m * k, stacked.begin() + b * m * k);
    std::vector<u64> out(batch * m * n);
    tensorGemmMod(stacked.data(), b_seg, out.data(), batch * m, n, k,
                  mod, pool);
    for (std::size_t b = 0; b < batch; ++b)
        std::copy(out.begin() + b * m * n, out.begin() + (b + 1) * m * n,
                  cs[b]);
}

void
tensorGemmModBatchRhs(const SegmentedMatrix &a_seg, const u64 *const *bs,
                      u64 *const *cs, std::size_t batch, std::size_t m,
                      std::size_t n, std::size_t k, const Modulus &mod,
                      ThreadPool *pool)
{
    if (batch == 0)
        return;
    // Pack the B_b column-blocks: row r holds [B_0 row r | B_1 row r
    // | ...], so column block b of the product is C_b.
    std::size_t wide = batch * n;
    std::vector<u64> packed(k * wide);
    for (std::size_t r = 0; r < k; ++r)
        for (std::size_t b = 0; b < batch; ++b)
            std::copy(bs[b] + r * n, bs[b] + (r + 1) * n,
                      packed.begin() + r * wide + b * n);
    std::vector<u64> out(m * wide);
    SegmentedMatrix packed_seg = segmentU32(packed.data(), k * wide);
    tensorGemmModSegSeg(a_seg, packed_seg, out.data(), m, wide, k, mod,
                        pool);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t b = 0; b < batch; ++b)
            std::copy(out.begin() + i * wide + b * n,
                      out.begin() + i * wide + (b + 1) * n,
                      cs[b] + i * n);
}

} // namespace tensorfhe::tcu
