/**
 * @file
 * CUDA-stream concurrency model.
 *
 * The paper dispatches each of the 16 segment GEMMs to a separate
 * stream so independent GEMMs overlap (SIV-C.2). Functionally this is
 * a no-op on a CPU; for timing, the model tracks per-stream work and
 * reports the makespan a list scheduler would achieve, which the perf
 * model uses to credit stream-level overlap.
 */

#ifndef TENSORFHE_TCU_STREAM_HH
#define TENSORFHE_TCU_STREAM_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace tensorfhe::tcu
{

/** Streams used for the 16 segment GEMMs (paper uses one each). */
constexpr std::size_t kDefaultStreams = 16;

class StreamModel
{
  public:
    explicit StreamModel(std::size_t num_streams);

    /**
     * Assign a task of `cost` abstract work units to the least-loaded
     * stream (greedy list scheduling).
     * @return the chosen stream index
     */
    std::size_t dispatch(double cost);

    /** Max over streams of accumulated work (parallel completion). */
    double makespan() const;

    /** Sum over streams of accumulated work (serial completion). */
    double totalWork() const;

    std::size_t numStreams() const { return load_.size(); }

  private:
    std::vector<double> load_;
};

} // namespace tensorfhe::tcu

#endif // TENSORFHE_TCU_STREAM_HH
