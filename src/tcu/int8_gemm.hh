/**
 * @file
 * Software model of a Tensor Core Unit (TCU).
 *
 * The paper (SII-C) describes the TCU as a grid of four-by-four dot
 * product units consuming u8 operands and accumulating into s32. We
 * reproduce that contract exactly: gemm() computes C(s32) = A(u8) x
 * B(u8) tile by tile in the mma.sync m16n16k16 shape, and accounts
 * MACs and tiles so the analytical device model can convert work into
 * A100 tensor-core cycles.
 */

#ifndef TENSORFHE_TCU_INT8_GEMM_HH
#define TENSORFHE_TCU_INT8_GEMM_HH

#include <atomic>
#include <cstddef>

#include "common/types.hh"

namespace tensorfhe::tcu
{

/** Tile shape mirroring the INT8 mma.sync fragment. */
constexpr std::size_t kTileM = 16;
constexpr std::size_t kTileN = 16;
constexpr std::size_t kTileK = 16;

/** Work counters accumulated by every simulated TCU dispatch. */
struct TcuCounters
{
    std::atomic<u64> macs{0};
    std::atomic<u64> tiles{0};
    std::atomic<u64> gemms{0};

    void
    reset()
    {
        macs = 0;
        tiles = 0;
        gemms = 0;
    }
};

/** Global TCU work accounting (read by the perf model and benches). */
TcuCounters &tcuCounters();

/**
 * C = A x B with u8 operands and s32 accumulation.
 *
 * @param a row-major M x K, entries are u8 stored one per byte
 * @param b row-major K x N
 * @param c row-major M x N output, overwritten
 *
 * K is limited so the s32 accumulator provably cannot overflow:
 * K * 255 * 255 < 2^31 requires K <= 33025; we assert K <= 32768.
 */
void int8Gemm(const u8 *a, const u8 *b, s32 *c, std::size_t m,
              std::size_t n, std::size_t k);

} // namespace tensorfhe::tcu

#endif // TENSORFHE_TCU_INT8_GEMM_HH
