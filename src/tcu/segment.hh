/**
 * @file
 * Segment-fusion scheme of paper SIV-C (Figs. 7 and 8).
 *
 * A 32-bit residue is split into four u8 limbs; a u32 x u32 GEMM then
 * becomes sixteen u8 x u8 GEMMs whose s32 outputs are fused back with
 * radix-2^8 weights (the paper calls this Booth-style partial-product
 * accumulation) before a single modulo. The scheme is bit-exact; the
 * tests check it against native 128-bit arithmetic.
 */

#ifndef TENSORFHE_TCU_SEGMENT_HH
#define TENSORFHE_TCU_SEGMENT_HH

#include <array>
#include <cstddef>
#include <vector>

#include "common/modarith.hh"
#include "common/types.hh"

namespace tensorfhe
{
class ThreadPool;
}

namespace tensorfhe::tcu
{

/** The four u8 planes of a u32 matrix (plane s holds bits 8s..8s+7). */
using SegmentedMatrix = std::array<std::vector<u8>, 4>;

/**
 * Split n values (< 2^32, stored in u64) into four u8 planes.
 * Paper Fig. 7 / Stage 1 of the TCU NTT workflow.
 */
SegmentedMatrix segmentU32(const u64 *src, std::size_t n);

/**
 * The fusion stage's radix weights 2^(8(i+j)) mod q, i+j in [0, 6].
 * Fixed by the modulus alone, so they are memoized per thread (the
 * same cached-plan policy CkksContext applies to its ModUp/ModDown
 * factors, but lock-free — fuseMod runs concurrently on every pool
 * lane): the first fusion under a prime builds them, every later
 * fuseMod — including every batched TCU NTT dispatch — reuses them
 * instead of recomputing seven u128 reductions per kernel call.
 */
struct FusionWeights
{
    std::array<u64, 7> w;
};

/** Memoized fusion weights for `mod` (thread-safe, stable reference). */
const FusionWeights &fusionWeights(const Modulus &mod);

/**
 * Fuse the sixteen s32 partial-product planes back into residues
 * mod q: out[e] = sum_{i,j} o[i][j][e] * 2^(8(i+j)) (mod q).
 * Paper Stages 3 and 5.
 *
 * @param o o[i][j] is the plane from (segment i of LHS) x (segment j
 *          of RHS); each must hold n elements
 */
void fuseMod(const std::array<std::array<std::vector<s32>, 4>, 4> &o,
             std::size_t n, const Modulus &mod, u64 *out);

/**
 * Full segment-fusion GEMM: C = A x B mod q, with A (m x k) and
 * B (k x n) holding residues < 2^32, dispatching 16 INT8 GEMMs
 * across `pool` (null = process-global).
 *
 * @param b_seg pre-segmented RHS (twiddle matrices are segmented once
 *              at init, as the paper does for reused factors)
 */
void tensorGemmMod(const u64 *a, const SegmentedMatrix &b_seg, u64 *c,
                   std::size_t m, std::size_t n, std::size_t k,
                   const Modulus &mod, ThreadPool *pool = nullptr);

/** As tensorGemmMod, with both operands already segmented. */
void tensorGemmModSegSeg(const SegmentedMatrix &a_seg,
                         const SegmentedMatrix &b_seg, u64 *c,
                         std::size_t m, std::size_t n, std::size_t k,
                         const Modulus &mod, ThreadPool *pool = nullptr);

/**
 * Segment-fusion over the batch dimension (paper SIV-D: batching
 * turns B small GEMMs into one TCU-filling GEMM).
 *
 * C_b = A_b x B mod q for b < batch: the A_b row-blocks are stacked
 * into one (batch*m x k) matrix, segmented once, and multiplied by
 * the shared (pre-segmented) RHS in a single 16-GEMM dispatch.
 * Bit-identical to `batch` independent tensorGemmMod calls.
 */
void tensorGemmModBatchLhs(const u64 *const *as,
                           const SegmentedMatrix &b_seg, u64 *const *cs,
                           std::size_t batch, std::size_t m,
                           std::size_t n, std::size_t k,
                           const Modulus &mod, ThreadPool *pool = nullptr);

/**
 * C_b = A x B_b mod q for b < batch: the B_b column-blocks are packed
 * into one (k x batch*n) matrix against the shared (pre-segmented)
 * LHS. Bit-identical to `batch` independent calls.
 */
void tensorGemmModBatchRhs(const SegmentedMatrix &a_seg,
                           const u64 *const *bs, u64 *const *cs,
                           std::size_t batch, std::size_t m,
                           std::size_t n, std::size_t k,
                           const Modulus &mod, ThreadPool *pool = nullptr);

} // namespace tensorfhe::tcu

#endif // TENSORFHE_TCU_SEGMENT_HH
