#include "tcu/int8_gemm.hh"

#include <cstring>

#include "common/logging.hh"

namespace tensorfhe::tcu
{

TcuCounters &
tcuCounters()
{
    static TcuCounters counters;
    return counters;
}

void
int8Gemm(const u8 *a, const u8 *b, s32 *c, std::size_t m, std::size_t n,
         std::size_t k)
{
    TFHE_ASSERT(k <= 32768, "s32 accumulator would overflow");
    std::memset(c, 0, m * n * sizeof(s32));

    // Tiled loop nest: each (i0, j0, k0) iteration models one
    // m16n16k16 mma.sync issue.
    u64 tiles = 0;
    for (std::size_t i0 = 0; i0 < m; i0 += kTileM) {
        std::size_t i_end = i0 + kTileM < m ? i0 + kTileM : m;
        for (std::size_t k0 = 0; k0 < k; k0 += kTileK) {
            std::size_t k_end = k0 + kTileK < k ? k0 + kTileK : k;
            for (std::size_t j0 = 0; j0 < n; j0 += kTileN) {
                std::size_t j_end = j0 + kTileN < n ? j0 + kTileN : n;
                ++tiles;
                for (std::size_t i = i0; i < i_end; ++i) {
                    for (std::size_t kk = k0; kk < k_end; ++kk) {
                        s32 av = a[i * k + kk];
                        if (av == 0)
                            continue;
                        const u8 *brow = b + kk * n;
                        s32 *crow = c + i * n;
                        for (std::size_t j = j0; j < j_end; ++j)
                            crow[j] += av * static_cast<s32>(brow[j]);
                    }
                }
            }
        }
    }

    auto &counters = tcuCounters();
    counters.macs.fetch_add(static_cast<u64>(m) * n * k,
                            std::memory_order_relaxed);
    counters.tiles.fetch_add(tiles, std::memory_order_relaxed);
    counters.gemms.fetch_add(1, std::memory_order_relaxed);
}

} // namespace tensorfhe::tcu
