#include "graph/executor.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/stats.hh"
#include "fault/fault.hh"
#include "resilience/counters.hh"
#include "resilience/integrity.hh"
#include "trace/trace.hh"

namespace tensorfhe::graph
{

namespace
{

/** Union of the producers' last-launch sets (the queue indices a
    node's first launch must wait for). */
std::vector<std::size_t>
producerDeps(const Graph &g,
             const std::vector<std::vector<std::size_t>> &last,
             const Node &n)
{
    std::vector<std::size_t> deps;
    for (ValueId v : n.inputs) {
        NodeId p = g.values[v].producer;
        if (p == kNoNode)
            continue;
        for (std::size_t idx : last[p])
            deps.push_back(idx);
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    return deps;
}

/**
 * Execute one non-Input node through the evaluator entry points.
 * Pure with respect to `vals[n.inputs]`: inputs are read, never
 * mutated or moved, which is what makes a retry after a mid-node
 * failure bit-identical to an uninterrupted run.
 */
void
executeNode(const nn::NnEngine &engine, const Graph &g, const Node &n,
            std::vector<Cts> &vals)
{
    const auto &beval = engine.batched();
    const auto &disp = beval.dispatcher();
    switch (n.kind) {
      case NodeKind::Add:
        vals[n.outputs[0]] =
            beval.add(vals[n.inputs[0]], vals[n.inputs[1]]);
        break;
      case NodeKind::Sub:
        vals[n.outputs[0]] =
            beval.sub(vals[n.inputs[0]], vals[n.inputs[1]]);
        break;
      case NodeKind::AddPlain:
        vals[n.outputs[0]] =
            beval.addPlain(vals[n.inputs[0]], *n.pt);
        break;
      case NodeKind::MulPlain:
        vals[n.outputs[0]] =
            beval.multiplyPlain(vals[n.inputs[0]], *n.pt);
        break;
      case NodeKind::MulPlainRescale:
        vals[n.outputs[0]] =
            beval.multiplyPlainRescale(vals[n.inputs[0]], *n.pt);
        break;
      case NodeKind::MulConstToScale:
        vals[n.outputs[0]] = beval.multiplyConstToScale(
            vals[n.inputs[0]], n.constant, n.targetScale);
        break;
      case NodeKind::AddConst:
        vals[n.outputs[0]] =
            beval.addConst(vals[n.inputs[0]], n.constant);
        break;
      case NodeKind::Rescale:
        vals[n.outputs[0]] = beval.rescale(vals[n.inputs[0]]);
        break;
      case NodeKind::Multiply:
        vals[n.outputs[0]] =
            beval.multiply(vals[n.inputs[0]], vals[n.inputs[1]]);
        break;
      case NodeKind::RotateMany: {
          auto rots =
              beval.rotateManyBatch(vals[n.inputs[0]], n.steps);
          for (std::size_t i = 0; i < n.outputs.size(); ++i)
              vals[n.outputs[i]] = std::move(rots[i]);
          break;
      }
      case NodeKind::Drop:
        vals[n.outputs[0]] = beval.dropToLevelCount(
            vals[n.inputs[0]], n.levelCount);
        break;
      case NodeKind::SetScale: {
          Cts out = vals[n.inputs[0]];
          for (auto &ct : out)
              ct.scale = n.targetScale;
          vals[n.outputs[0]] = std::move(out);
          break;
      }
      case NodeKind::Unpack: {
          const Cts &in = vals[n.inputs[0]];
          std::size_t k = n.outputs.size();
          std::size_t b = in.size() / k;
          for (std::size_t c = 0; c < k; ++c) {
              Cts out(b);
              for (std::size_t s = 0; s < b; ++s)
                  out[s] = in[s * k + c];
              vals[n.outputs[c]] = std::move(out);
          }
          break;
      }
      case NodeKind::Pack: {
          std::size_t k = n.inputs.size();
          std::size_t b = vals[n.inputs[0]].size();
          Cts out(k * b);
          for (std::size_t c = 0; c < k; ++c)
              for (std::size_t s = 0; s < b; ++s)
                  out[s * k + c] = vals[n.inputs[c]][s];
          vals[n.outputs[0]] = std::move(out);
          break;
      }
      case NodeKind::BsgsSum: {
          std::size_t terms = n.plans.size();
          std::size_t b = vals[n.inputs[0]].size();
          std::size_t lc = vals[n.inputs[0]][0].levelCount();
          std::vector<exec::BsgsProgram> owned;
          owned.reserve(terms);
          for (std::size_t t = 0; t < terms; ++t)
              owned.push_back(n.plans[t]->program(lc));
          std::vector<const exec::BsgsProgram *> progs;
          progs.reserve(terms);
          std::vector<const ckks::Ciphertext *> ins;
          ins.reserve(terms * b);
          for (std::size_t t = 0; t < terms; ++t) {
              progs.push_back(&owned[t]);
              const Cts &tv = vals[n.inputs[t]];
              for (std::size_t s = 0; s < b; ++s)
                  ins.push_back(&tv[s]);
          }
          vals[n.outputs[0]] = disp.applyBsgsSum(
              progs.data(), ins.data(), terms, b);
          break;
      }
      case NodeKind::LayerApply:
        vals[n.outputs[0]] =
            n.layer->apply(engine, vals[n.inputs[0]]);
        break;
      case NodeKind::FusedEle: {
          const Cts &base = vals[n.inputs[0]];
          // Shape carrier; the span pass overwrites every
          // coefficient and the dispatcher replays the scales.
          Cts out = base;
          std::vector<const ckks::Ciphertext *> ins;
          ins.reserve(n.inputs.size());
          for (ValueId v : n.inputs)
              ins.push_back(vals[v].data());
          disp.fusedElementwise(n.fused, out.data(), ins.data(),
                                n.fusedPts.data(), out.size());
          vals[n.outputs[0]] = std::move(out);
          break;
      }
      default:
        TFHE_ASSERT(false, "unexecutable node kind");
    }
}

} // namespace

ExecResult
GraphExecutor::runSchedule(const nn::NnEngine &engine,
                           std::vector<Cts> &vals,
                           std::vector<std::vector<u64>> &sums,
                           std::vector<Cts> inputs,
                           std::size_t startPos,
                           const ExecOptions &opt) const
{
    const Graph &g = *g_;

    // Input value -> caller batch index.
    std::vector<std::size_t> input_index(g.values.size(), 0);
    for (std::size_t i = 0; i < g.inputs.size(); ++i)
        input_index[g.inputs[i]] = i;

    // Checkpoint plan: cut positions and the liveness that decides
    // what each snapshot must carry.
    std::vector<std::size_t> cuts;
    std::vector<std::size_t> lastUse;
    if (opt.checkpointEvery > 0) {
        requireArg(opt.checkpointLog != nullptr,
                   "checkpointEvery > 0 requires a checkpointLog");
        cuts = resilience::chooseCutPoints(g, sched_,
                                           opt.checkpointEvery);
        lastUse = resilience::valueLastUse(g, sched_);
    }
    auto cutIt =
        std::lower_bound(cuts.begin(), cuts.end(), startPos);

    ExecResult res;
    // Per-node queue indices the node's output depends on.
    std::vector<std::vector<std::size_t>> last(g.nodes.size());

    for (std::size_t pos = startPos; pos < sched_.order.size();
         ++pos) {
        NodeId id = sched_.order[pos];
        const Node &n = g.nodes[id];

        // Append the attempt's captured launches to the schedule,
        // stream-tagged, first launch gated on every producer.
        auto bookkeep = [&](std::vector<KernelLaunch> q) {
            if (!opt.captureSchedule)
                return;
            auto deps = producerDeps(g, last, n);
            std::size_t base = res.schedule.size();
            for (std::size_t i = 0; i < q.size(); ++i) {
                gpu::ScheduledLaunch sl;
                sl.launch = q[i];
                sl.stream = sched_.stream[id];
                if (i == 0)
                    sl.deps = deps;
                res.schedule.push_back(std::move(sl));
            }
            last[id] = q.empty()
                ? std::move(deps)
                : std::vector<std::size_t>{base + q.size() - 1};
        };

        if (n.kind == NodeKind::Input) {
            // Inputs move from the caller's batches; there is nothing
            // to re-execute, so no fault hooks and no retry — but
            // paranoid mode still seals them with a digest so any
            // later at-rest flip is caught at consume time.
            TFHE_ASSERT(!inputs.empty(),
                        "Input node in a resumed schedule suffix");
            KernelStats::QueueCapture cap(opt.captureSchedule);
            ValueId v = n.outputs[0];
            vals[v] = std::move(inputs[input_index[v]]);
            if (opt.paranoid) {
                sums[v].clear();
                for (const auto &ct : vals[v])
                    sums[v].push_back(resilience::validateCt(
                        ct, "graph/node-output", id));
            }
            bookkeep(cap.take());
            continue;
        }

        for (int attempt = 1;; ++attempt) {
            // Node span: one per attempt, so a retried node shows as
            // repeated spans with the backoff gap between them.
            trace::TraceSpan nodeSpan("graph", nodeKindName(n.kind));
            nodeSpan.arg("node", static_cast<s64>(id))
                .arg("stream", static_cast<s64>(sched_.stream[id]))
                .arg("attempt", attempt)
                .arg("level",
                     static_cast<s64>(
                         g.values[n.outputs[0]].levelCount));
            auto raw = EvalOpStats::instance().rawSnapshot();
            KernelStats::QueueCapture cap(opt.captureSchedule);
            // Roll the failed attempt back so the engine and its
            // accounting look exactly as if the attempt never ran:
            // partially assigned outputs cleared, executed-op
            // counters restored (the capture guard discards the
            // attempt's launches, pooled leases return via RAII).
            auto rollback = [&] {
                EvalOpStats::instance().restore(raw);
                for (ValueId v : n.outputs) {
                    vals[v].clear();
                    sums[v].clear();
                }
            };
            bool retryable = false;
            try {
                // Consume side: the at-rest window since each input
                // was produced closes here — verify before use.
                for (ValueId v : n.inputs) {
                    Cts &in = vals[v];
                    for (std::size_t c = 0; c < in.size(); ++c) {
                        TFHE_FAULT_POINT_CT("graph/value-store",
                                            in[c]);
                        if (opt.paranoid && c < sums[v].size()
                            && resilience::ctChecksum(in[c])
                                != sums[v][c])
                            throw IntegrityError(
                                "graph/value-store",
                                strCat("stored value ", v, " chunk ",
                                       c, " checksum mismatch"),
                                id);
                    }
                }

                executeNode(engine, g, n, vals);

                // Produce side: validate against the compiled meta
                // and seal with a digest.
                for (ValueId v : n.outputs) {
                    Cts &out = vals[v];
                    if (opt.paranoid)
                        sums[v].clear();
                    for (auto &ct : out) {
                        TFHE_FAULT_POINT_CT("graph/node-output", ct);
                        if (!opt.paranoid)
                            continue;
                        resilience::checkCtMeta(
                            ct, g.values[v].levelCount,
                            g.values[v].scale, "graph/node-output",
                            id);
                        sums[v].push_back(resilience::validateCt(
                            ct, "graph/node-output", id));
                    }
                }

                bookkeep(cap.take());
                break;
            } catch (const TransientFault &e) {
                resilience::bump(
                    resilience::Counters::instance().transientFaults);
                trace::SpanArg fargs[] = {{"node",
                                           static_cast<s64>(id)},
                                          {"attempt", attempt}};
                trace::Tracer::instant("graph", "transient-fault",
                                       fargs, 2);
                TFHE_LOG_DEBUG("graph", "node ", id, " attempt ",
                               attempt, " transient fault at ",
                               e.site(), ": ", e.message());
                retryable = attempt < opt.retry.maxAttempts;
                rollback();
                if (!retryable)
                    throw TransientFault(
                        e.site(), e.message(),
                        e.hasNode() ? e.node() : id);
            } catch (const IntegrityError &e) {
                resilience::bump(
                    resilience::Counters::instance()
                        .integrityFailures);
                trace::SpanArg fargs[] = {{"node",
                                           static_cast<s64>(id)},
                                          {"attempt", attempt}};
                trace::Tracer::instant("graph", "integrity-error",
                                       fargs, 2);
                TFHE_LOG_DEBUG("graph", "node ", id, " attempt ",
                               attempt, " integrity error at ",
                               e.site(), ": ", e.message());
                // A corrupted STORED value never repairs itself by
                // re-running its consumer — surface it (recovery is
                // resumeFrom, whose copies predate the corruption).
                retryable = attempt < opt.retry.maxAttempts
                    && opt.retry.retryIntegrity
                    && e.site() != "graph/value-store";
                rollback();
                if (!retryable)
                    throw IntegrityError(
                        e.site(), e.message(),
                        e.hasNode() ? e.node() : id);
            }
            ++res.retriesUsed;
            resilience::bump(resilience::Counters::instance().retries);
            {
                // The backoff gap gets its own span so retry storms
                // render as visible idle stretches on the timeline.
                trace::TraceSpan sp("graph", "backoff");
                sp.arg("node", static_cast<s64>(id))
                    .arg("attempt", attempt + 1);
                resilience::backoff(opt.retry, attempt + 1);
            }
        }

        if (cutIt != cuts.end() && *cutIt == pos) {
            ++cutIt;
            trace::TraceSpan cpSpan("graph", "checkpoint");
            cpSpan.arg("pos", static_cast<s64>(pos));
            resilience::bump(
                resilience::Counters::instance().checkpointsTaken);
            resilience::Checkpoint cp;
            cp.resumeIndex = pos + 1;
            cp.graphNodes = g.nodes.size();
            for (ValueId v = 0; v < g.values.size(); ++v) {
                if (vals[v].empty() || lastUse[v] <= pos)
                    continue;
                cp.valueIds.push_back(v);
                cp.values.push_back(vals[v]);
                std::vector<u64> cs;
                cs.reserve(vals[v].size());
                for (const auto &ct : vals[v])
                    cs.push_back(resilience::ctChecksum(ct));
                cp.checksums.push_back(std::move(cs));
            }
            opt.checkpointLog->push_back(std::move(cp));
            ++res.checkpointsTaken;
        }
    }

    res.launchCount = res.schedule.size();
    res.outputs.reserve(g.outputs.size());
    for (ValueId v : g.outputs)
        res.outputs.push_back(std::move(vals[v]));
    return res;
}

ExecResult
GraphExecutor::run(const nn::NnEngine &engine, std::vector<Cts> inputs,
                   const ExecOptions &opt) const
{
    const Graph &g = *g_;
    requireArg(inputs.size() == g.inputs.size(),
               "graph run: expected ", g.inputs.size(),
               " input batches, got ", inputs.size());
    requireArg(!g.inputs.empty() && !inputs[0].empty(),
               "graph run: empty input");
    std::size_t batch =
        inputs[0].size() / g.values[g.inputs[0]].chunkCount;
    for (std::size_t i = 0; i < inputs.size(); ++i)
        requireArg(inputs[i].size()
                       == batch * g.values[g.inputs[i]].chunkCount,
                   "graph run: input ", i,
                   " does not match the common batch size");

    // Workload-level span: the root of the workload -> node ->
    // dispatcher-op -> kernel nesting.
    trace::TraceSpan runSpan("graph", "graph-run");
    runSpan.arg("nodes", static_cast<s64>(g.nodes.size()))
        .arg("batch", static_cast<s64>(batch))
        .arg("streams", static_cast<s64>(sched_.streamsUsed));

    std::vector<Cts> vals(g.values.size());
    std::vector<std::vector<u64>> sums(g.values.size());
    return runSchedule(engine, vals, sums, std::move(inputs), 0, opt);
}

ExecResult
GraphExecutor::resumeFrom(const nn::NnEngine &engine,
                          const resilience::Checkpoint &cp,
                          const ExecOptions &opt) const
{
    const Graph &g = *g_;
    requireArg(!cp.empty(), "resume from an empty checkpoint");
    requireArg(cp.graphNodes == g.nodes.size(),
               "checkpoint belongs to a different graph: ",
               cp.graphNodes, " nodes vs ", g.nodes.size());
    requireArg(cp.resumeIndex <= sched_.order.size(),
               "checkpoint resume index ", cp.resumeIndex,
               " beyond the schedule");
    requireArg(cp.valueIds.size() == cp.values.size()
                   && cp.valueIds.size() == cp.checksums.size(),
               "malformed checkpoint: parallel arrays disagree");

    trace::TraceSpan runSpan("graph", "graph-resume");
    runSpan.arg("resume_index",
                static_cast<s64>(cp.resumeIndex));
    resilience::bump(
        resilience::Counters::instance().checkpointsResumed);

    std::vector<Cts> vals(g.values.size());
    std::vector<std::vector<u64>> sums(g.values.size());
    for (std::size_t i = 0; i < cp.valueIds.size(); ++i) {
        ValueId v = cp.valueIds[i];
        requireArg(v < g.values.size(),
                   "checkpoint names unknown value ", v);
        const Cts &src = cp.values[i];
        requireArg(src.size() == cp.checksums[i].size(),
                   "checkpoint value ", v,
                   " chunk/checksum count mismatch");
        for (std::size_t c = 0; c < src.size(); ++c)
            if (resilience::ctChecksum(src[c]) != cp.checksums[i][c])
                throw IntegrityError(
                    "resilience/checkpoint",
                    strCat("checkpoint value ", v, " chunk ", c,
                           " checksum mismatch"));
        vals[v] = src;
        if (opt.paranoid)
            sums[v] = cp.checksums[i];
    }
    return runSchedule(engine, vals, sums, {}, cp.resumeIndex, opt);
}

void
GraphExecutor::prestageWorkspace(const nn::NnEngine &engine,
                                 std::size_t batch) const
{
    const Graph &g = *g_;
    // The widest scratch any dispatch checks out is the key-switch
    // union basis (every q and p limb); via the best-fit capacity
    // scan a pooled buffer of that shape serves any smaller request.
    const auto &tower = engine.ctx().tower();
    std::vector<std::size_t> limbs(tower.numTotal());
    std::iota(limbs.begin(), limbs.end(), 0);

    std::size_t widest = 1;
    for (const auto &n : g.nodes) {
        if (n.dead)
            continue;
        for (ValueId v : n.outputs)
            widest = std::max(widest,
                              g.values[v].chunkCount * batch);
    }
    // Two live components per ciphertext plus slack for the
    // per-digit hoist scratch.
    std::size_t count = 2 * widest + 8;
    engine.batched().dispatcher().workspace().prestage(
        limbs, rns::Domain::Eval, count);
}

} // namespace tensorfhe::graph
