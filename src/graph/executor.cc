#include "graph/executor.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/stats.hh"

namespace tensorfhe::graph
{

namespace
{

/** Union of the producers' last-launch sets (the queue indices a
    node's first launch must wait for). */
std::vector<std::size_t>
producerDeps(const Graph &g,
             const std::vector<std::vector<std::size_t>> &last,
             const Node &n)
{
    std::vector<std::size_t> deps;
    for (ValueId v : n.inputs) {
        NodeId p = g.values[v].producer;
        if (p == kNoNode)
            continue;
        for (std::size_t idx : last[p])
            deps.push_back(idx);
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    return deps;
}

} // namespace

ExecResult
GraphExecutor::run(const nn::NnEngine &engine, std::vector<Cts> inputs,
                   const ExecOptions &opt) const
{
    const Graph &g = *g_;
    requireArg(inputs.size() == g.inputs.size(),
               "graph run: expected ", g.inputs.size(),
               " input batches, got ", inputs.size());
    requireArg(!g.inputs.empty() && !inputs[0].empty(),
               "graph run: empty input");
    std::size_t batch =
        inputs[0].size() / g.values[g.inputs[0]].chunkCount;
    for (std::size_t i = 0; i < inputs.size(); ++i)
        requireArg(inputs[i].size()
                       == batch * g.values[g.inputs[i]].chunkCount,
                   "graph run: input ", i,
                   " does not match the common batch size");

    // Input value -> caller batch index.
    std::vector<std::size_t> input_index(g.values.size(), 0);
    for (std::size_t i = 0; i < g.inputs.size(); ++i)
        input_index[g.inputs[i]] = i;

    const auto &beval = engine.batched();
    const auto &disp = beval.dispatcher();
    std::vector<Cts> vals(g.values.size());

    ExecResult res;
    // Per-node queue indices the node's output depends on.
    std::vector<std::vector<std::size_t>> last(g.nodes.size());

    for (NodeId id : sched_.order) {
        const Node &n = g.nodes[id];
        if (opt.captureSchedule)
            KernelStats::instance().startQueue();

        switch (n.kind) {
          case NodeKind::Input:
            vals[n.outputs[0]] =
                std::move(inputs[input_index[n.outputs[0]]]);
            break;
          case NodeKind::Add:
            vals[n.outputs[0]] =
                beval.add(vals[n.inputs[0]], vals[n.inputs[1]]);
            break;
          case NodeKind::Sub:
            vals[n.outputs[0]] =
                beval.sub(vals[n.inputs[0]], vals[n.inputs[1]]);
            break;
          case NodeKind::AddPlain:
            vals[n.outputs[0]] =
                beval.addPlain(vals[n.inputs[0]], *n.pt);
            break;
          case NodeKind::MulPlain:
            vals[n.outputs[0]] =
                beval.multiplyPlain(vals[n.inputs[0]], *n.pt);
            break;
          case NodeKind::MulConstToScale:
            vals[n.outputs[0]] = beval.multiplyConstToScale(
                vals[n.inputs[0]], n.constant, n.targetScale);
            break;
          case NodeKind::AddConst:
            vals[n.outputs[0]] =
                beval.addConst(vals[n.inputs[0]], n.constant);
            break;
          case NodeKind::Rescale:
            vals[n.outputs[0]] = beval.rescale(vals[n.inputs[0]]);
            break;
          case NodeKind::Multiply:
            vals[n.outputs[0]] =
                beval.multiply(vals[n.inputs[0]], vals[n.inputs[1]]);
            break;
          case NodeKind::RotateMany: {
              auto rots =
                  beval.rotateManyBatch(vals[n.inputs[0]], n.steps);
              for (std::size_t i = 0; i < n.outputs.size(); ++i)
                  vals[n.outputs[i]] = std::move(rots[i]);
              break;
          }
          case NodeKind::Drop:
            vals[n.outputs[0]] = beval.dropToLevelCount(
                vals[n.inputs[0]], n.levelCount);
            break;
          case NodeKind::SetScale: {
              Cts out = vals[n.inputs[0]];
              for (auto &ct : out)
                  ct.scale = n.targetScale;
              vals[n.outputs[0]] = std::move(out);
              break;
          }
          case NodeKind::Unpack: {
              const Cts &in = vals[n.inputs[0]];
              std::size_t k = n.outputs.size();
              std::size_t b = in.size() / k;
              for (std::size_t c = 0; c < k; ++c) {
                  Cts out(b);
                  for (std::size_t s = 0; s < b; ++s)
                      out[s] = in[s * k + c];
                  vals[n.outputs[c]] = std::move(out);
              }
              break;
          }
          case NodeKind::Pack: {
              std::size_t k = n.inputs.size();
              std::size_t b = vals[n.inputs[0]].size();
              Cts out(k * b);
              for (std::size_t c = 0; c < k; ++c)
                  for (std::size_t s = 0; s < b; ++s)
                      out[s * k + c] = vals[n.inputs[c]][s];
              vals[n.outputs[0]] = std::move(out);
              break;
          }
          case NodeKind::BsgsSum: {
              std::size_t terms = n.plans.size();
              std::size_t b = vals[n.inputs[0]].size();
              std::size_t lc = vals[n.inputs[0]][0].levelCount();
              std::vector<exec::BsgsProgram> owned;
              owned.reserve(terms);
              for (std::size_t t = 0; t < terms; ++t)
                  owned.push_back(n.plans[t]->program(lc));
              std::vector<const exec::BsgsProgram *> progs;
              progs.reserve(terms);
              std::vector<const ckks::Ciphertext *> ins;
              ins.reserve(terms * b);
              for (std::size_t t = 0; t < terms; ++t) {
                  progs.push_back(&owned[t]);
                  const Cts &tv = vals[n.inputs[t]];
                  for (std::size_t s = 0; s < b; ++s)
                      ins.push_back(&tv[s]);
              }
              vals[n.outputs[0]] = disp.applyBsgsSum(
                  progs.data(), ins.data(), terms, b);
              break;
          }
          case NodeKind::LayerApply:
            vals[n.outputs[0]] =
                n.layer->apply(engine, vals[n.inputs[0]]);
            break;
          case NodeKind::FusedEle: {
              const Cts &base = vals[n.inputs[0]];
              // Shape carrier; the span pass overwrites every
              // coefficient and the dispatcher replays the scales.
              Cts out = base;
              std::vector<const ckks::Ciphertext *> ins;
              ins.reserve(n.inputs.size());
              for (ValueId v : n.inputs)
                  ins.push_back(vals[v].data());
              disp.fusedElementwise(n.fused, out.data(), ins.data(),
                                    n.fusedPts.data(), out.size());
              vals[n.outputs[0]] = std::move(out);
              break;
          }
          default:
            TFHE_ASSERT(false, "unexecutable node kind");
        }

        if (opt.captureSchedule) {
            auto q = KernelStats::instance().stopQueue();
            auto deps = producerDeps(g, last, n);
            std::size_t base = res.schedule.size();
            for (std::size_t i = 0; i < q.size(); ++i) {
                gpu::ScheduledLaunch sl;
                sl.launch = q[i];
                sl.stream = sched_.stream[id];
                // The node's first launch waits on every producer;
                // later launches serialize behind it on the stream.
                if (i == 0)
                    sl.deps = deps;
                res.schedule.push_back(std::move(sl));
            }
            last[id] = q.empty()
                ? std::move(deps)
                : std::vector<std::size_t>{base + q.size() - 1};
        }
    }

    res.launchCount = res.schedule.size();
    res.outputs.reserve(g.outputs.size());
    for (ValueId v : g.outputs)
        res.outputs.push_back(std::move(vals[v]));
    return res;
}

void
GraphExecutor::prestageWorkspace(const nn::NnEngine &engine,
                                 std::size_t batch) const
{
    const Graph &g = *g_;
    // The widest scratch any dispatch checks out is the key-switch
    // union basis (every q and p limb); via the best-fit capacity
    // scan a pooled buffer of that shape serves any smaller request.
    const auto &tower = engine.ctx().tower();
    std::vector<std::size_t> limbs(tower.numTotal());
    std::iota(limbs.begin(), limbs.end(), 0);

    std::size_t widest = 1;
    for (const auto &n : g.nodes) {
        if (n.dead)
            continue;
        for (ValueId v : n.outputs)
            widest = std::max(widest,
                              g.values[v].chunkCount * batch);
    }
    // Two live components per ciphertext plus slack for the
    // per-digit hoist scratch.
    std::size_t count = 2 * widest + 8;
    engine.batched().dispatcher().workspace().prestage(
        limbs, rns::Domain::Eval, count);
}

} // namespace tensorfhe::graph
