/**
 * @file
 * Graph scheduler: elementwise fusion, mul+rescale fusion, and
 * stream assignment.
 *
 * A MulPlain whose product feeds a single-consumer, non-output
 * Rescale is rewritten to one MulPlainRescale node first
 * (BatchedEvaluator::multiplyPlainRescale — the CMULT and the
 * rescale's INTT share one cache-hot pass); see mulRescaleFusePass.
 *
 * Fusion rewrites maximal single-consumer trees of elementwise nodes
 * (Add / Sub / AddPlain / MulPlain — the kinds whose kernels are one
 * span pass over identical (batch x tower x coeff) iteration spaces)
 * into one FusedEle node carrying an exec::FusedSpec register
 * program. Legality (docs/GRAPH_IR.md "Fusion legality"):
 *   - every member edge is single-consumer and not a graph output
 *     (the intermediate must be dead after the group);
 *   - all members share the output's level count and chunk count
 *     (one span shape);
 *   - a ct-ct Add/Sub member requires operand scales equal within
 *     the evaluator's 1e-6 relative tolerance — the same check
 *     requireCompatiblePair enforces at runtime, applied here at
 *     schedule time so an illegal chain simply stays unfused;
 *   - the register program must fit FusedSpec::kMaxRegs.
 * Fusion is bit-exact: member kernels are independent per
 * (slot, tower, coeff) cell in exact modular arithmetic, so one pass
 * computing the composed expression yields the same residues, and
 * the dispatcher replays the same scale doubles and records the same
 * EvalOpStats the members would have.
 *
 * Stream assignment models async overlap for the queue replay: each
 * node inherits the stream of the first producer it is the first
 * consumer of (pipelining), otherwise opens a fresh stream
 * (round-robin, capped) — independent branches like the
 * per-out-chunk BsgsSum programs of a block matvec land on distinct
 * streams, which gpu::replayScheduledQueue turns into overlapped
 * timelines. Stream tags never affect execution order or results.
 */

#ifndef TENSORFHE_GRAPH_SCHEDULE_HH
#define TENSORFHE_GRAPH_SCHEDULE_HH

#include "graph/ir.hh"

namespace tensorfhe::graph
{

struct ScheduleOptions
{
    bool fuse = true;
    int maxStreams = 4;
};

struct Schedule
{
    /** Live nodes in execution (topological) order. */
    std::vector<NodeId> order;
    /** Stream tag per NodeId (indexed by node id, dead nodes 0). */
    std::vector<int> stream;
    std::size_t fusedGroups = 0;  ///< FusedEle nodes emitted
    std::size_t fusedMembers = 0; ///< member ops folded into them
    /** MulPlain -> Rescale pairs fused into MulPlainRescale nodes. */
    std::size_t mulRescaleFused = 0;
    int streamsUsed = 0;

    /** Elementwise launches eliminated: each group of m members
        launches once instead of m times. */
    std::size_t
    launchesSaved() const
    {
        return fusedMembers - fusedGroups;
    }
};

/**
 * Fuse (mutating `g`: appends FusedEle nodes, marks members dead)
 * and assign streams. Deterministic; safe to call with fuse=false to
 * get a pure topological order + streams over the unfused graph.
 */
Schedule scheduleGraph(Graph &g, const ScheduleOptions &opt = {});

} // namespace tensorfhe::graph

#endif // TENSORFHE_GRAPH_SCHEDULE_HH
