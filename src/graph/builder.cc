#include "graph/builder.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace tensorfhe::graph
{

namespace
{

/** Scale after a CMULT + RESCALE at level count `lc` — the same
    double arithmetic the evaluator performs, so compiled metas match
    runtime bits. */
double
mulRescaleScale(const ckks::CkksContext &ctx, double ct_scale,
                double pt_scale, std::size_t lc)
{
    return ct_scale * pt_scale
        / static_cast<double>(ctx.tower().prime(lc - 1));
}

} // namespace

ValueId
GraphBuilder::newValue(std::size_t chunk_count, std::size_t level_count,
                       double scale, NodeId producer)
{
    ValueMeta m;
    m.chunkCount = chunk_count;
    m.levelCount = level_count;
    m.scale = scale;
    m.producer = producer;
    g_.values.push_back(m);
    return g_.values.size() - 1;
}

NodeId
GraphBuilder::newNode(NodeKind kind, std::vector<ValueId> inputs)
{
    Node n;
    n.kind = kind;
    n.inputs = std::move(inputs);
    g_.nodes.push_back(std::move(n));
    return g_.nodes.size() - 1;
}

ValueId
GraphBuilder::input(std::size_t chunk_count, std::size_t level_count,
                    double scale)
{
    NodeId n = newNode(NodeKind::Input, {});
    ValueId v = newValue(chunk_count, level_count, scale, n);
    g_.nodes[n].outputs = {v};
    g_.inputs.push_back(v);
    return v;
}

ValueId
GraphBuilder::add(ValueId a, ValueId b)
{
    const auto &ma = g_.values[a];
    const auto &mb = g_.values[b];
    requireArg(ma.chunkCount == mb.chunkCount
                   && ma.levelCount == mb.levelCount,
               "graph add: operand shapes/levels differ");
    NodeId n = newNode(NodeKind::Add, {a, b});
    // HADD keeps the first operand's scale (what the kernel leaves
    // in the output metadata).
    ValueId v = newValue(ma.chunkCount, ma.levelCount, ma.scale, n);
    g_.nodes[n].outputs = {v};
    return v;
}

ValueId
GraphBuilder::sub(ValueId a, ValueId b)
{
    const auto &ma = g_.values[a];
    const auto &mb = g_.values[b];
    requireArg(ma.chunkCount == mb.chunkCount
                   && ma.levelCount == mb.levelCount,
               "graph sub: operand shapes/levels differ");
    NodeId n = newNode(NodeKind::Sub, {a, b});
    ValueId v = newValue(ma.chunkCount, ma.levelCount, ma.scale, n);
    g_.nodes[n].outputs = {v};
    return v;
}

ValueId
GraphBuilder::addPlain(ValueId a, const ckks::Plaintext &pt)
{
    const auto &ma = g_.values[a];
    NodeId n = newNode(NodeKind::AddPlain, {a});
    g_.nodes[n].pt = &pt;
    ValueId v = newValue(ma.chunkCount, ma.levelCount, ma.scale, n);
    g_.nodes[n].outputs = {v};
    return v;
}

ValueId
GraphBuilder::mulPlain(ValueId a, const ckks::Plaintext &pt)
{
    const auto &ma = g_.values[a];
    NodeId n = newNode(NodeKind::MulPlain, {a});
    g_.nodes[n].pt = &pt;
    ValueId v = newValue(ma.chunkCount, ma.levelCount,
                         ma.scale * pt.scale, n);
    g_.nodes[n].outputs = {v};
    return v;
}

ValueId
GraphBuilder::mulConstToScale(ValueId a, double c, double target_scale)
{
    const auto &ma = g_.values[a];
    requireArg(ma.levelCount >= 2,
               "graph mulConstToScale: no level left for the rescale");
    NodeId n = newNode(NodeKind::MulConstToScale, {a});
    g_.nodes[n].constant = c;
    g_.nodes[n].targetScale = target_scale;
    ValueId v = newValue(ma.chunkCount, ma.levelCount - 1,
                         target_scale, n);
    g_.nodes[n].outputs = {v};
    return v;
}

ValueId
GraphBuilder::addConst(ValueId a, double c)
{
    const auto &ma = g_.values[a];
    NodeId n = newNode(NodeKind::AddConst, {a});
    g_.nodes[n].constant = c;
    ValueId v = newValue(ma.chunkCount, ma.levelCount, ma.scale, n);
    g_.nodes[n].outputs = {v};
    return v;
}

ValueId
GraphBuilder::rescale(ValueId a)
{
    const auto &ma = g_.values[a];
    requireArg(ma.levelCount >= 2, "graph rescale: at the last level");
    NodeId n = newNode(NodeKind::Rescale, {a});
    double scale = ma.scale
        / static_cast<double>(ctx_->tower().prime(ma.levelCount - 1));
    ValueId v = newValue(ma.chunkCount, ma.levelCount - 1, scale, n);
    g_.nodes[n].outputs = {v};
    return v;
}

ValueId
GraphBuilder::multiply(ValueId a, ValueId b)
{
    const auto &ma = g_.values[a];
    const auto &mb = g_.values[b];
    requireArg(ma.chunkCount == mb.chunkCount
                   && ma.levelCount == mb.levelCount,
               "graph multiply: operand shapes/levels differ");
    NodeId n = newNode(NodeKind::Multiply, {a, b});
    ValueId v = newValue(ma.chunkCount, ma.levelCount,
                         ma.scale * mb.scale, n);
    g_.nodes[n].outputs = {v};
    return v;
}

std::vector<ValueId>
GraphBuilder::rotateMany(ValueId a, std::vector<s64> steps)
{
    requireArg(!steps.empty(), "graph rotateMany: no steps");
    // Copy: newValue below reallocates g_.values.
    const ValueMeta ma = g_.values[a];
    NodeId n = newNode(NodeKind::RotateMany, {a});
    std::vector<ValueId> outs;
    outs.reserve(steps.size());
    for (std::size_t i = 0; i < steps.size(); ++i)
        outs.push_back(newValue(ma.chunkCount, ma.levelCount,
                                ma.scale, n));
    g_.nodes[n].steps = std::move(steps);
    g_.nodes[n].outputs = outs;
    return outs;
}

ValueId
GraphBuilder::drop(ValueId a, std::size_t level_count)
{
    const auto &ma = g_.values[a];
    requireArg(level_count <= ma.levelCount,
               "graph drop: cannot raise the level count");
    if (level_count == ma.levelCount)
        return a; // dropToLevelCount is the identity here
    NodeId n = newNode(NodeKind::Drop, {a});
    g_.nodes[n].levelCount = level_count;
    ValueId v = newValue(ma.chunkCount, level_count, ma.scale, n);
    g_.nodes[n].outputs = {v};
    return v;
}

ValueId
GraphBuilder::setScale(ValueId a, double scale)
{
    const auto &ma = g_.values[a];
    NodeId n = newNode(NodeKind::SetScale, {a});
    g_.nodes[n].targetScale = scale;
    ValueId v = newValue(ma.chunkCount, ma.levelCount, scale, n);
    g_.nodes[n].outputs = {v};
    return v;
}

std::vector<ValueId>
GraphBuilder::unpack(ValueId a)
{
    // Copy: newValue below reallocates g_.values.
    const ValueMeta ma = g_.values[a];
    if (ma.chunkCount == 1)
        return {a};
    NodeId n = newNode(NodeKind::Unpack, {a});
    std::vector<ValueId> outs;
    outs.reserve(ma.chunkCount);
    for (std::size_t c = 0; c < ma.chunkCount; ++c)
        outs.push_back(newValue(1, ma.levelCount, ma.scale, n));
    g_.nodes[n].outputs = outs;
    return outs;
}

ValueId
GraphBuilder::pack(const std::vector<ValueId> &chunks)
{
    requireArg(!chunks.empty(), "graph pack: no chunks");
    if (chunks.size() == 1)
        return chunks[0];
    const auto &m0 = g_.values[chunks[0]];
    for (ValueId c : chunks)
        requireArg(g_.values[c].chunkCount == 1
                       && g_.values[c].levelCount == m0.levelCount,
                   "graph pack: chunks must be 1-chunk values at one "
                   "level");
    NodeId n = newNode(NodeKind::Pack,
                       std::vector<ValueId>(chunks.begin(),
                                            chunks.end()));
    ValueId v = newValue(chunks.size(), m0.levelCount, m0.scale, n);
    g_.nodes[n].outputs = {v};
    return v;
}

ValueId
GraphBuilder::bsgsSum(
    std::vector<const boot::LinearTransformPlan *> plans,
    const std::vector<ValueId> &term_inputs)
{
    requireArg(!plans.empty() && plans.size() == term_inputs.size(),
               "graph bsgsSum: one plan per term input");
    const auto &m0 = g_.values[term_inputs[0]];
    for (ValueId t : term_inputs)
        requireArg(g_.values[t].chunkCount == 1
                       && g_.values[t].levelCount == m0.levelCount,
                   "graph bsgsSum: term inputs must be 1-chunk values "
                   "at one level");
    requireArg(m0.levelCount >= 2,
               "graph bsgsSum: needs one multiplicative level");
    NodeId n = newNode(NodeKind::BsgsSum,
                       std::vector<ValueId>(term_inputs.begin(),
                                            term_inputs.end()));
    g_.nodes[n].plans = std::move(plans);
    // applyBsgsSum closes with ONE ModDown pair + RESCALE; plans
    // encode diagonals at the context scale.
    double scale = mulRescaleScale(*ctx_, m0.scale,
                                   ctx_->params().scale(),
                                   m0.levelCount);
    ValueId v = newValue(1, m0.levelCount - 1, scale, n);
    g_.nodes[n].outputs = {v};
    return v;
}

ValueId
GraphBuilder::layerApply(const nn::Layer &layer, ValueId a)
{
    const auto &ma = g_.values[a];
    const auto &out = layer.outputMeta();
    requireArg(ma.chunkCount == layer.inputMeta().chunkCount,
               "graph layerApply: chunk count does not match the "
               "layer's compiled input");
    NodeId n = newNode(NodeKind::LayerApply, {a});
    g_.nodes[n].layer = &layer;
    ValueId v = newValue(out.chunkCount, out.levelCount, out.scale, n);
    g_.nodes[n].outputs = {v};
    return v;
}

void
GraphBuilder::output(ValueId v)
{
    g_.values[v].isOutput = true;
    g_.outputs.push_back(v);
}

// ------------------------------------------------------------------
// Layer lowering

namespace
{

/** MatvecLayer: per-out-chunk BsgsSum branches + bias, re-packed. */
ValueId
lowerMatvec(GraphBuilder &b, const nn::MatvecLayer &l, ValueId in)
{
    std::size_t in_chunks = l.inputMeta().chunkCount;
    std::size_t out_chunks = l.outputMeta().chunkCount;
    auto chunk_vals = b.unpack(in);
    std::vector<ValueId> outs;
    outs.reserve(out_chunks);
    for (std::size_t i = 0; i < out_chunks; ++i) {
        std::vector<const boot::LinearTransformPlan *> plans;
        std::vector<ValueId> terms;
        for (std::size_t j = 0; j < in_chunks; ++j) {
            const auto *p = l.blockPlan(i, j);
            if (!p)
                continue;
            plans.push_back(p);
            terms.push_back(chunk_vals[j]);
        }
        ValueId v = b.bsgsSum(std::move(plans), terms);
        if (const auto *bias = l.biasPlain(i))
            v = b.addPlain(v, *bias);
        outs.push_back(v);
    }
    return b.pack(outs);
}

ValueId
lowerAvgPool(GraphBuilder &b, const nn::AvgPool2d &l, ValueId in)
{
    ValueId t = in;
    for (s64 s : l.poolSteps())
        t = b.add(t, b.rotate(t, s));
    return b.rescale(b.mulPlain(t, l.poolMask()));
}

ValueId
lowerSumReduce(GraphBuilder &b, const nn::SumReduce &l, ValueId in)
{
    if (l.hoisted()) {
        auto rots = b.rotateMany(in, l.foldSteps());
        ValueId acc = in;
        for (ValueId r : rots)
            acc = b.add(acc, r);
        return acc;
    }
    ValueId acc = in;
    for (s64 s : l.foldSteps())
        acc = b.add(acc, b.rotate(acc, s));
    return acc;
}

/** Replays PolyActivation::apply()'s exact schedule symbolically:
    the monomial ladder at natural levels, then exact-scale term
    steering, then the optional constant. */
ValueId
lowerPolyActivation(GraphBuilder &b, const nn::PolyActivation &l,
                    ValueId in)
{
    std::size_t in_lc = b.meta(in).levelCount;
    requireArg(in_lc >= l.ladderDepth() + 2,
               "graph ", l.name(),
               ": input cannot host the power ladder plus the "
               "exact-scale rescale");
    double target = b.ctx().params().scale();

    std::map<std::size_t, ValueId> pows;
    pows.emplace(1, in);
    for (std::size_t k : l.powerLadder()) {
        ValueId a = pows.at((k + 1) / 2);
        ValueId c = pows.at(k / 2);
        std::size_t lc = std::min(b.meta(a).levelCount,
                                  b.meta(c).levelCount);
        pows.emplace(k, b.rescale(b.multiply(b.drop(a, lc),
                                             b.drop(c, lc))));
    }

    std::size_t lmin = in_lc - l.ladderDepth();
    ValueId acc = 0;
    bool first = true;
    for (const auto &[k, c] : l.activeTerms()) {
        ValueId term =
            b.mulConstToScale(b.drop(pows.at(k), lmin), c, target);
        acc = first ? term : b.add(acc, term);
        first = false;
    }
    if (l.hasConstantTerm())
        acc = b.addConst(acc, l.approx().coeffs[0]);
    return acc;
}

} // namespace

ValueId
lowerLayer(GraphBuilder &b, const nn::Layer &layer, ValueId in)
{
    if (const auto *l = dynamic_cast<const nn::MatvecLayer *>(&layer))
        return lowerMatvec(b, *l, in);
    if (const auto *l = dynamic_cast<const nn::AvgPool2d *>(&layer))
        return lowerAvgPool(b, *l, in);
    if (const auto *l = dynamic_cast<const nn::SumReduce *>(&layer))
        return lowerSumReduce(b, *l, in);
    if (const auto *l =
            dynamic_cast<const nn::PolyActivation *>(&layer))
        return lowerPolyActivation(b, *l, in);
    if (const auto *l = dynamic_cast<const nn::LevelDrop *>(&layer))
        return b.drop(in, l->targetLevelCount());
    // Bootstrap (and any future layer without a primitive lowering)
    // stays opaque: the node calls Layer::apply, which is the eager
    // path verbatim.
    return b.layerApply(layer, in);
}

Graph
compileSequential(const ckks::CkksContext &ctx,
                  const nn::Sequential &seq)
{
    requireArg(seq.compiled(),
               "compileSequential needs a compiled model");
    GraphBuilder b(ctx);
    const auto &in = seq.inputMeta();
    ValueId v = b.input(in.chunkCount, in.levelCount, in.scale);
    for (const auto &l : seq.layers())
        v = lowerLayer(b, *l, v);
    b.output(v);
    return b.take();
}

} // namespace tensorfhe::graph
