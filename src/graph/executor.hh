/**
 * @file
 * GraphExecutor: runs a scheduled graph through the SAME evaluator
 * entry points the eager path uses — bit-identity with eager
 * execution is by construction, not by tolerance (the tests compare
 * raw residue limbs). What the graph adds over eager:
 *
 *   - FusedEle nodes run one exec::Dispatcher::fusedElementwise span
 *     pass instead of N member launches (fewer kernel launches, same
 *     bits, same EvalOpStats);
 *   - every node's kernel launches are captured (KernelStats queue)
 *     and tagged with the scheduler's stream plus explicit
 *     dependencies, producing the gpu::ScheduledLaunch queue that
 *     gpu::replayScheduledQueue overlaps on the GPU model;
 *   - prestageWorkspace() walks the graph's scratch demand once and
 *     seeds the exec::Workspace arena, so even the first run of a
 *     compiled graph hits steady-state (>90%) buffer reuse.
 *
 * Resilience (this layer is where the fault story composes):
 *
 *   - a node that raises TransientFault — or IntegrityError on its
 *     own freshly produced output — is retried up to
 *     RetryPolicy::maxAttempts with backoff. The graph is SSA and
 *     the node kinds are pure (inputs are read, never mutated), so a
 *     successful retry is bit-identical to an uninterrupted run; the
 *     failed attempt's EvalOpStats are rolled back and its captured
 *     launches discarded, so the accounting is identical too.
 *   - paranoid mode validates every value crossing a node boundary
 *     (residues < q_i, metadata against the compiled ValueMeta) and
 *     keeps per-chunk checksums, re-verified when a value is
 *     consumed: at-rest corruption raises IntegrityError with the
 *     node attached instead of decrypting to a silently wrong logit.
 *   - checkpointEvery > 0 snapshots the live value set at
 *     scheduler-chosen minimum-footprint cuts; resumeFrom() verifies
 *     the snapshot's checksums and re-executes only the nodes
 *     downstream of the cut.
 *   - strong exception safety: a failed run leaves the engine
 *     reusable — pooled leases return via RAII unwinding, the
 *     kernel-queue capture is closed by its guard, and the failed
 *     node's EvalOpStats contribution is rolled back.
 */

#ifndef TENSORFHE_GRAPH_EXECUTOR_HH
#define TENSORFHE_GRAPH_EXECUTOR_HH

#include "gpu/pipeline.hh"
#include "graph/schedule.hh"
#include "resilience/checkpoint.hh"
#include "resilience/retry.hh"

namespace tensorfhe::graph
{

struct ExecOptions
{
    /** Capture the per-node kernel launches into a scheduled queue
        (KernelStats queue capture; modest overhead). */
    bool captureSchedule = false;

    /** Validate + checksum every value at node boundaries; consumed
        values are re-verified against their stored digest. */
    bool paranoid = false;

    /** Per-node retry of transient faults (maxAttempts = 1 disables). */
    resilience::RetryPolicy retry;

    /** Snapshot the live value set roughly every N executed nodes at
        the cheapest cut in each window (0 disables). */
    std::size_t checkpointEvery = 0;

    /** Where checkpoints are appended (required when
        checkpointEvery > 0). */
    std::vector<resilience::Checkpoint> *checkpointLog = nullptr;
};

struct ExecResult
{
    /** One batch per graph output, in Graph::outputs order. */
    std::vector<Cts> outputs;
    /** Stream- and dependency-tagged launch queue (when captured). */
    std::vector<gpu::ScheduledLaunch> schedule;
    std::size_t launchCount = 0;
    /** Node re-executions that recovered a transient failure. */
    std::size_t retriesUsed = 0;
    std::size_t checkpointsTaken = 0;
};

class GraphExecutor
{
  public:
    GraphExecutor(const Graph &g, Schedule sched)
        : g_(&g), sched_(std::move(sched))
    {}

    /**
     * Execute over one batch per graph input (Graph::inputs order);
     * every input must hold meta.chunkCount * B ciphertexts for one
     * common batch size B, laid out sample-major.
     */
    ExecResult run(const nn::NnEngine &engine,
                   std::vector<Cts> inputs,
                   const ExecOptions &opt = {}) const;

    /**
     * Resume a failed run from a checkpoint this executor's graph
     * wrote: verifies the snapshot's per-chunk checksums (a corrupted
     * checkpoint raises IntegrityError, never resumes into garbage),
     * restores the live values, and executes only the schedule suffix
     * from the cut. Bit-identical to a straight-through run. The
     * checkpoint is read, not consumed — a second resume works.
     */
    ExecResult resumeFrom(const nn::NnEngine &engine,
                          const resilience::Checkpoint &cp,
                          const ExecOptions &opt = {}) const;

    /**
     * Seed the engine's workspace arena with the largest scratch
     * shape the tower admits (the key-switch union basis), enough
     * buffers for the graph's widest value: via the arena's best-fit
     * scan every smaller checkout is then served from the pool.
     */
    void prestageWorkspace(const nn::NnEngine &engine,
                           std::size_t batch) const;

    const Schedule &schedule() const { return sched_; }
    const Graph &graph() const { return *g_; }

  private:
    ExecResult runSchedule(const nn::NnEngine &engine,
                           std::vector<Cts> &vals,
                           std::vector<std::vector<u64>> &sums,
                           std::vector<Cts> inputs,
                           std::size_t startPos,
                           const ExecOptions &opt) const;

    const Graph *g_;
    Schedule sched_;
};

} // namespace tensorfhe::graph

#endif // TENSORFHE_GRAPH_EXECUTOR_HH
