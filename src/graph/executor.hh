/**
 * @file
 * GraphExecutor: runs a scheduled graph through the SAME evaluator
 * entry points the eager path uses — bit-identity with eager
 * execution is by construction, not by tolerance (the tests compare
 * raw residue limbs). What the graph adds over eager:
 *
 *   - FusedEle nodes run one exec::Dispatcher::fusedElementwise span
 *     pass instead of N member launches (fewer kernel launches, same
 *     bits, same EvalOpStats);
 *   - every node's kernel launches are captured (KernelStats queue)
 *     and tagged with the scheduler's stream plus explicit
 *     dependencies, producing the gpu::ScheduledLaunch queue that
 *     gpu::replayScheduledQueue overlaps on the GPU model;
 *   - prestageWorkspace() walks the graph's scratch demand once and
 *     seeds the exec::Workspace arena, so even the first run of a
 *     compiled graph hits steady-state (>90%) buffer reuse.
 */

#ifndef TENSORFHE_GRAPH_EXECUTOR_HH
#define TENSORFHE_GRAPH_EXECUTOR_HH

#include "gpu/pipeline.hh"
#include "graph/schedule.hh"

namespace tensorfhe::graph
{

struct ExecOptions
{
    /** Capture the per-node kernel launches into a scheduled queue
        (KernelStats queue capture; modest overhead). */
    bool captureSchedule = false;
};

struct ExecResult
{
    /** One batch per graph output, in Graph::outputs order. */
    std::vector<Cts> outputs;
    /** Stream- and dependency-tagged launch queue (when captured). */
    std::vector<gpu::ScheduledLaunch> schedule;
    std::size_t launchCount = 0;
};

class GraphExecutor
{
  public:
    GraphExecutor(const Graph &g, Schedule sched)
        : g_(&g), sched_(std::move(sched))
    {}

    /**
     * Execute over one batch per graph input (Graph::inputs order);
     * every input must hold meta.chunkCount * B ciphertexts for one
     * common batch size B, laid out sample-major.
     */
    ExecResult run(const nn::NnEngine &engine,
                   std::vector<Cts> inputs,
                   const ExecOptions &opt = {}) const;

    /**
     * Seed the engine's workspace arena with the largest scratch
     * shape the tower admits (the key-switch union basis), enough
     * buffers for the graph's widest value: via the arena's best-fit
     * scan every smaller checkout is then served from the pool.
     */
    void prestageWorkspace(const nn::NnEngine &engine,
                           std::size_t batch) const;

    const Schedule &schedule() const { return sched_; }
    const Graph &graph() const { return *g_; }

  private:
    const Graph *g_;
    Schedule sched_;
};

} // namespace tensorfhe::graph

#endif // TENSORFHE_GRAPH_EXECUTOR_HH
