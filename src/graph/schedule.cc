#include "graph/schedule.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.hh"

namespace tensorfhe::graph
{

namespace
{

bool
fusableKind(NodeKind k)
{
    return k == NodeKind::Add || k == NodeKind::Sub
        || k == NodeKind::AddPlain || k == NodeKind::MulPlain;
}

/** The evaluator's requireCompatiblePair tolerance. */
bool
scaleCompatible(double a, double b)
{
    double m = std::max(std::abs(a), std::abs(b));
    return std::abs(a - b) <= 1e-6 * m;
}

/** ct-ct members must satisfy the runtime operand-scale check. */
bool
ctCtLegal(const Graph &g, const Node &n)
{
    if (n.kind != NodeKind::Add && n.kind != NodeKind::Sub)
        return true;
    return scaleCompatible(g.values[n.inputs[0]].scale,
                           g.values[n.inputs[1]].scale);
}

/**
 * Generates the FusedSpec register program for the expression tree
 * rooted at `root` whose internal nodes are `group`. Postorder walk;
 * every ct-ct op computes into its FIRST operand's register (so the
 * scale replay keeps the destination's scale, exactly like the eager
 * HADD), and right-operand registers return to the free list.
 */
struct FusedCodegen
{
    const Graph &g;
    const std::set<NodeId> &group;

    exec::FusedSpec spec;
    std::vector<ValueId> leaves;
    std::vector<const ckks::Plaintext *> pts;

    std::vector<u16> freeRegs;
    u16 nextReg = 0;
    std::size_t watermark = 0;

    u16
    allocReg()
    {
        if (!freeRegs.empty()) {
            u16 r = freeRegs.back();
            freeRegs.pop_back();
            return r;
        }
        u16 r = nextReg++;
        watermark = std::max<std::size_t>(watermark, nextReg);
        return r;
    }

    u16
    ptIndex(const ckks::Plaintext *pt)
    {
        for (std::size_t i = 0; i < pts.size(); ++i)
            if (pts[i] == pt)
                return static_cast<u16>(i);
        pts.push_back(pt);
        return static_cast<u16>(pts.size() - 1);
    }

    u16
    gen(ValueId v)
    {
        NodeId p = g.values[v].producer;
        if (p == kNoNode || group.find(p) == group.end()) {
            // External operand: one Load per occurrence.
            u16 r = allocReg();
            auto idx = static_cast<u16>(leaves.size());
            leaves.push_back(v);
            spec.ins.push_back(
                {exec::FusedSpec::Op::Load, r, 0, idx});
            return r;
        }
        const Node &n = g.nodes[p];
        switch (n.kind) {
          case NodeKind::Add:
          case NodeKind::Sub: {
              u16 ra = gen(n.inputs[0]);
              u16 rb = gen(n.inputs[1]);
              spec.ins.push_back({n.kind == NodeKind::Add
                                      ? exec::FusedSpec::Op::AddCt
                                      : exec::FusedSpec::Op::SubCt,
                                  ra, rb, 0});
              freeRegs.push_back(rb);
              ++spec.addLike;
              spec.elementsFactor += 2;
              return ra;
          }
          case NodeKind::MulPlain: {
              u16 ra = gen(n.inputs[0]);
              spec.ins.push_back({exec::FusedSpec::Op::MulPt, ra, 0,
                                  ptIndex(n.pt)});
              ++spec.mulLike;
              spec.elementsFactor += 2;
              return ra;
          }
          case NodeKind::AddPlain: {
              u16 ra = gen(n.inputs[0]);
              spec.ins.push_back({exec::FusedSpec::Op::AddPt, ra, 0,
                                  ptIndex(n.pt)});
              ++spec.addLike;
              spec.elementsFactor += 1;
              return ra;
          }
          default:
              TFHE_ASSERT(false, "non-fusable node in a fused group");
              return 0;
        }
    }

    /** Run the walk from the root node; fills result/counts. */
    void
    run(NodeId root)
    {
        spec.result = gen(g.nodes[root].outputs[0]);
        spec.numRegs = watermark;
        spec.numInputs = leaves.size();
        spec.numPts = pts.size();
    }
};

/**
 * Greedy tree growth from `root`: repeatedly inline a producer edge
 * while the grown program still fits the register file. Returns the
 * final member set (possibly just {root}).
 */
std::set<NodeId>
growGroup(const Graph &g, const std::vector<std::size_t> &use_count,
          NodeId root)
{
    std::set<NodeId> group{root};
    std::set<NodeId> rejected;
    bool grew = true;
    while (grew) {
        grew = false;
        for (NodeId m : group) {
            for (ValueId v : g.nodes[m].inputs) {
                NodeId p = g.values[v].producer;
                if (p == kNoNode || group.count(p)
                    || rejected.count(p))
                    continue;
                const Node &pn = g.nodes[p];
                const auto &vm = g.values[v];
                const auto &rm =
                    g.values[g.nodes[root].outputs[0]];
                if (pn.dead || !fusableKind(pn.kind)
                    || use_count[v] != 1 || vm.isOutput
                    || vm.levelCount != rm.levelCount
                    || vm.chunkCount != rm.chunkCount
                    || !ctCtLegal(g, pn)) {
                    rejected.insert(p);
                    continue;
                }
                group.insert(p);
                FusedCodegen cg{g, group, {}, {}, {}, {}, 0, 0};
                cg.run(root);
                if (cg.watermark > exec::FusedSpec::kMaxRegs) {
                    group.erase(p);
                    rejected.insert(p);
                    continue;
                }
                grew = true;
                break; // group changed; restart the scan
            }
            if (grew)
                break;
        }
    }
    return group;
}

/**
 * Fuse MulPlain -> Rescale chains into one MulPlainRescale node
 * (BatchedEvaluator::multiplyPlainRescale). Legality: the
 * intermediate product value is single-consumer and not a graph
 * output — exactly the FusedEle interior-edge rule. Runs BEFORE the
 * elementwise pass: a MulPlain feeding a Rescale could only ever be
 * an elementwise group's root (Rescale is not a fusable member), and
 * the mul+rescale fusion saves a full 2*B*L*n memory round trip where
 * elementwise fusion over the same edge saves nothing. Bit-exact and
 * accounting-invariant by the dispatcher's contract.
 */
void
mulRescaleFusePass(Graph &g, Schedule &sched)
{
    std::vector<std::size_t> use_count(g.values.size(), 0);
    for (const auto &n : g.nodes) {
        if (n.dead)
            continue;
        for (ValueId v : n.inputs)
            ++use_count[v];
    }
    for (ValueId v : g.outputs)
        ++use_count[v];

    std::size_t original = g.nodes.size();
    for (NodeId r = 0; r < original; ++r) {
        const Node &rn = g.nodes[r];
        if (rn.dead || rn.kind != NodeKind::Rescale)
            continue;
        ValueId v = rn.inputs[0];
        NodeId p = g.values[v].producer;
        if (p == kNoNode || g.nodes[p].dead
            || g.nodes[p].kind != NodeKind::MulPlain
            || use_count[v] != 1 || g.values[v].isOutput)
            continue;
        Node f;
        f.kind = NodeKind::MulPlainRescale;
        f.inputs = g.nodes[p].inputs;
        f.outputs = rn.outputs;
        f.pt = g.nodes[p].pt;
        g.nodes.push_back(std::move(f));
        NodeId fid = g.nodes.size() - 1;
        g.values[g.nodes[fid].outputs[0]].producer = fid;
        g.nodes[p].dead = true;
        g.nodes[r].dead = true;
        ++sched.mulRescaleFused;
    }
}

void
fusePass(Graph &g, Schedule &sched)
{
    // Value use counts over live nodes; graph outputs count as one
    // extra use so they are never folded into a group's interior.
    std::vector<std::size_t> use_count(g.values.size(), 0);
    for (const auto &n : g.nodes) {
        if (n.dead)
            continue;
        for (ValueId v : n.inputs)
            ++use_count[v];
    }
    for (ValueId v : g.outputs)
        ++use_count[v];

    // Reverse creation order = reverse topological order (the
    // builder appends in program order), so a chain's sink is tried
    // before its producers and each tree is grouped from its root.
    std::size_t original = g.nodes.size();
    for (std::size_t i = original; i-- > 0;) {
        const Node &r = g.nodes[i];
        if (r.dead || !fusableKind(r.kind) || !ctCtLegal(g, r))
            continue;
        auto group = growGroup(g, use_count, i);
        if (group.size() < 2)
            continue;
        FusedCodegen cg{g, group, {}, {}, {}, {}, 0, 0};
        cg.run(i);

        Node f;
        f.kind = NodeKind::FusedEle;
        f.inputs = std::move(cg.leaves);
        f.outputs = g.nodes[i].outputs;
        f.fused = std::move(cg.spec);
        f.fusedPts = std::move(cg.pts);
        g.nodes.push_back(std::move(f));
        NodeId fid = g.nodes.size() - 1;
        g.values[g.nodes[fid].outputs[0]].producer = fid;
        for (NodeId m : group)
            g.nodes[m].dead = true;
        ++sched.fusedGroups;
        sched.fusedMembers += group.size();
    }
}

/** Kahn topological sort over live nodes, smallest-id-first. */
std::vector<NodeId>
topoOrder(const Graph &g)
{
    std::vector<std::size_t> indeg(g.nodes.size(), 0);
    std::vector<std::vector<NodeId>> adj(g.nodes.size());
    for (NodeId n = 0; n < g.nodes.size(); ++n) {
        if (g.nodes[n].dead)
            continue;
        for (ValueId v : g.nodes[n].inputs) {
            NodeId p = g.values[v].producer;
            if (p == kNoNode)
                continue;
            TFHE_ASSERT(!g.nodes[p].dead,
                        "live node consumes a dead producer");
            adj[p].push_back(n);
            ++indeg[n];
        }
    }
    std::set<NodeId> ready;
    for (NodeId n = 0; n < g.nodes.size(); ++n)
        if (!g.nodes[n].dead && indeg[n] == 0)
            ready.insert(n);
    std::vector<NodeId> order;
    order.reserve(g.liveNodeCount());
    while (!ready.empty()) {
        NodeId n = *ready.begin();
        ready.erase(ready.begin());
        order.push_back(n);
        for (NodeId c : adj[n])
            if (--indeg[c] == 0)
                ready.insert(c);
    }
    TFHE_ASSERT(order.size() == g.liveNodeCount(),
                "graph has a cycle");
    return order;
}

void
assignStreams(const Graph &g, Schedule &sched, int max_streams)
{
    sched.stream.assign(g.nodes.size(), 0);
    std::vector<bool> claimed(g.nodes.size(), false);
    int next = 0;
    int high = 0;
    for (NodeId n : sched.order) {
        int s = -1;
        // Pipeline: continue the first producer whose stream no
        // earlier consumer claimed.
        for (ValueId v : g.nodes[n].inputs) {
            NodeId p = g.values[v].producer;
            if (p == kNoNode || claimed[p])
                continue;
            s = sched.stream[p];
            claimed[p] = true;
            break;
        }
        if (s < 0)
            s = max_streams > 0 ? next++ % max_streams : next++;
        sched.stream[n] = s;
        high = std::max(high, s);
    }
    sched.streamsUsed = high + 1;
}

} // namespace

Schedule
scheduleGraph(Graph &g, const ScheduleOptions &opt)
{
    Schedule sched;
    if (opt.fuse) {
        mulRescaleFusePass(g, sched);
        fusePass(g, sched);
    }
    sched.order = topoOrder(g);
    assignStreams(g, sched, opt.maxStreams);
    return sched;
}

} // namespace tensorfhe::graph
