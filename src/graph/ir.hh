/**
 * @file
 * Kernel dataflow graph IR — the AOT-compiled form of an encrypted
 * op stream (see docs/GRAPH_IR.md for the full vocabulary and the
 * legality rules).
 *
 * A Graph is an SSA-style dataflow program over *values*: each value
 * is one uniform batch of ciphertexts (`chunkCount` ciphertexts per
 * sample, laid out sample-major `[s * chunkCount + c]`, exactly the
 * flattening nn::Sequential::run uses). Nodes are the primitives of
 * the unified exec/batch layer — every node kind maps 1:1 onto a
 * batch::BatchedEvaluator / exec::Dispatcher entry point, so graph
 * execution is BIT-IDENTICAL to the eager calls it was compiled
 * from: same kernels, same operand order, same scale arithmetic,
 * same EvalOpStats accounting.
 *
 * The graph exists so a scheduler can do what eager call-by-call
 * execution cannot:
 *   - FUSE adjacent elementwise launches (Add/Sub/AddPlain/MulPlain
 *     chains) into one FusedEle span pass (exec::FusedSpec);
 *   - OVERLAP independent branches (the per-out-chunk BsgsSum
 *     programs of a block matvec, the two gate matvecs of an LSTM
 *     step) by assigning them to different streams for the GPU
 *     queue replay (gpu::replayScheduledQueue);
 *   - PRE-STAGE the workspace arena with the scratch shapes the
 *     graph will demand, so even a cold run hits steady-state reuse.
 *
 * Build with graph::GraphBuilder (builder.hh), schedule with
 * graph::scheduleGraph (schedule.hh), run with graph::GraphExecutor
 * (executor.hh).
 *
 * Lifetime: nodes hold non-owning pointers into the compiled layers
 * they were lowered from (plaintext masks/biases, BSGS plans, the
 * opaque bootstrap layer). The layer objects must outlive the graph.
 */

#ifndef TENSORFHE_GRAPH_IR_HH
#define TENSORFHE_GRAPH_IR_HH

#include <vector>

#include "boot/linear.hh"
#include "ckks/crypto.hh"
#include "exec/kernels.hh"
#include "nn/layers.hh"

namespace tensorfhe::graph
{

using Cts = std::vector<ckks::Ciphertext>;
using ValueId = std::size_t;
using NodeId = std::size_t;

/** Producer sentinel of graph-input values. */
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/** Node vocabulary; each kind names the evaluator entry it runs. */
enum class NodeKind : int
{
    Input = 0,       ///< bind one caller-supplied batch
    Add,             ///< BatchedEvaluator::add
    Sub,             ///< BatchedEvaluator::sub
    AddPlain,        ///< BatchedEvaluator::addPlain (shared pt)
    MulPlain,        ///< BatchedEvaluator::multiplyPlain
    MulConstToScale, ///< BatchedEvaluator::multiplyConstToScale
    AddConst,        ///< BatchedEvaluator::addConst
    Rescale,         ///< BatchedEvaluator::rescale
    Multiply,        ///< BatchedEvaluator::multiply (HMULT+relin)
    RotateMany,      ///< rotateManyBatch; one output per step
    Drop,            ///< dropToLevelCount (metadata, no kernels)
    SetScale,        ///< exact scale reset (pure metadata)
    Unpack,          ///< flat [s*k+c] -> k per-chunk values
    Pack,            ///< k per-chunk values -> flat [s*k+c]
    BsgsSum,         ///< Dispatcher::applyBsgsSum over term chunks
    LayerApply,      ///< opaque nn::Layer::apply (Bootstrap)
    FusedEle,        ///< scheduler-emitted fused elementwise chain
    MulPlainRescale, ///< scheduler-emitted fused CMULT+RESCALE
    NumKinds
};

const char *nodeKindName(NodeKind k);

/**
 * Compile-time description of one value: the per-sample ciphertext
 * count plus the CKKS budget coordinates the builder propagates with
 * the same arithmetic the evaluators use at runtime (the scheduler's
 * fusion-legality checks read these; execution re-derives the real
 * scales from the live ciphertexts).
 */
struct ValueMeta
{
    std::size_t chunkCount = 1; ///< ciphertexts per sample
    std::size_t levelCount = 0;
    double scale = 0.0;
    NodeId producer = kNoNode;
    bool isOutput = false; ///< graph output (never fused away)
};

struct Node
{
    NodeKind kind = NodeKind::Input;
    std::vector<ValueId> inputs;
    std::vector<ValueId> outputs;

    /// AddPlain / MulPlain payload (layer-owned, non-owning).
    const ckks::Plaintext *pt = nullptr;
    /// MulConstToScale / AddConst constant.
    double constant = 0.0;
    /// MulConstToScale / SetScale target scale.
    double targetScale = 0.0;
    /// Drop target level count.
    std::size_t levelCount = 0;
    /// RotateMany steps (outputs[i] = input rotated by steps[i]).
    std::vector<s64> steps;
    /// BsgsSum: plan of term t, applied to input value t's batch.
    std::vector<const boot::LinearTransformPlan *> plans;
    /// LayerApply target (non-owning).
    const nn::Layer *layer = nullptr;
    /// FusedEle register program + its plaintext table.
    exec::FusedSpec fused;
    std::vector<const ckks::Plaintext *> fusedPts;

    /// Folded into a FusedEle group; never executed.
    bool dead = false;
};

struct Graph
{
    std::vector<Node> nodes;
    std::vector<ValueMeta> values;
    std::vector<ValueId> inputs;  ///< binding order of run() inputs
    std::vector<ValueId> outputs; ///< order of run() results

    std::size_t
    liveNodeCount() const
    {
        std::size_t n = 0;
        for (const auto &node : nodes)
            if (!node.dead)
                ++n;
        return n;
    }
};

} // namespace tensorfhe::graph

#endif // TENSORFHE_GRAPH_IR_HH
