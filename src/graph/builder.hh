/**
 * @file
 * GraphBuilder: records an op stream into a graph::Graph, and the
 * layer lowering that compiles an nn::Sequential AOT into one.
 *
 * Every builder method mirrors one batch::BatchedEvaluator call and
 * propagates the value meta (level count, scale) with the SAME
 * double arithmetic the evaluator performs at runtime, so the
 * scheduler's legality checks see the scales execution will see.
 * The builder does NOT reject ct-ct scale mismatches — the evaluator
 * does that at runtime, and the scheduler must refuse to fuse across
 * such an edge (tests build deliberately-mismatched graphs to pin
 * that refusal down without executing anything).
 *
 * lowerLayer() translates one compiled nn::Layer into primitive
 * nodes by replaying the layer's apply() schedule symbolically:
 * matvec layers become per-out-chunk BsgsSum nodes (independent
 * branches the scheduler can overlap), activations become their
 * power-ladder node chains, Bootstrap stays opaque (LayerApply).
 * compileSequential() runs lowerLayer over a compiled model and is
 * the graph counterpart of Sequential::run.
 */

#ifndef TENSORFHE_GRAPH_BUILDER_HH
#define TENSORFHE_GRAPH_BUILDER_HH

#include "graph/ir.hh"
#include "nn/sequential.hh"

namespace tensorfhe::graph
{

class GraphBuilder
{
  public:
    explicit GraphBuilder(const ckks::CkksContext &ctx) : ctx_(&ctx) {}

    /** Declare one caller-supplied input batch. */
    ValueId input(std::size_t chunk_count, std::size_t level_count,
                  double scale);

    ValueId add(ValueId a, ValueId b);
    ValueId sub(ValueId a, ValueId b);
    ValueId addPlain(ValueId a, const ckks::Plaintext &pt);
    ValueId mulPlain(ValueId a, const ckks::Plaintext &pt);
    ValueId mulConstToScale(ValueId a, double c, double target_scale);
    ValueId addConst(ValueId a, double c);
    ValueId rescale(ValueId a);
    ValueId multiply(ValueId a, ValueId b);
    std::vector<ValueId> rotateMany(ValueId a,
                                    std::vector<s64> steps);
    ValueId
    rotate(ValueId a, s64 step)
    {
        return rotateMany(a, {step})[0];
    }
    /** No-op when `a` is already at `level_count`. */
    ValueId drop(ValueId a, std::size_t level_count);
    /** Exact metadata scale reset (the LSTM combine's trick). */
    ValueId setScale(ValueId a, double scale);
    /** Flat value of k chunks -> k per-chunk values (identity for
        k == 1: returns {a} without a node). */
    std::vector<ValueId> unpack(ValueId a);
    /** Per-chunk values -> one flat value (identity for 1 chunk). */
    ValueId pack(const std::vector<ValueId> &chunks);
    /** One applyBsgsSum: term t runs plans[t] over term_inputs[t]
        (each a 1-chunk value), all terms accumulating on QP into one
        output chunk. */
    ValueId bsgsSum(
        std::vector<const boot::LinearTransformPlan *> plans,
        const std::vector<ValueId> &term_inputs);
    /** Opaque layer application (Bootstrap). */
    ValueId layerApply(const nn::Layer &layer, ValueId a);

    /** Mark a graph output (kept alive, never fused away). */
    void output(ValueId v);

    const ValueMeta &meta(ValueId v) const { return g_.values[v]; }
    const ckks::CkksContext &ctx() const { return *ctx_; }

    /** Finish: moves the graph out; the builder is spent. */
    Graph take() { return std::move(g_); }

  private:
    ValueId newValue(std::size_t chunk_count, std::size_t level_count,
                     double scale, NodeId producer);
    NodeId newNode(NodeKind kind, std::vector<ValueId> inputs);

    const ckks::CkksContext *ctx_;
    Graph g_;
};

/**
 * Lower one compiled layer: consumes the value holding the layer's
 * input batch (flat, layer.inputMeta().chunkCount chunks per sample)
 * and returns the value holding its output batch. The layer must
 * outlive the graph (nodes point into its plans and plaintexts).
 */
ValueId lowerLayer(GraphBuilder &b, const nn::Layer &layer,
                   ValueId in);

/**
 * Compile a compiled nn::Sequential into a one-input, one-output
 * graph — the AOT counterpart of Sequential::run. The model must
 * outlive the graph.
 */
Graph compileSequential(const ckks::CkksContext &ctx,
                        const nn::Sequential &seq);

} // namespace tensorfhe::graph

#endif // TENSORFHE_GRAPH_BUILDER_HH
