#include "graph/ir.hh"

#include "common/logging.hh"

namespace tensorfhe::graph
{

const char *
nodeKindName(NodeKind k)
{
    switch (k) {
      case NodeKind::Input: return "Input";
      case NodeKind::Add: return "Add";
      case NodeKind::Sub: return "Sub";
      case NodeKind::AddPlain: return "AddPlain";
      case NodeKind::MulPlain: return "MulPlain";
      case NodeKind::MulConstToScale: return "MulConstToScale";
      case NodeKind::AddConst: return "AddConst";
      case NodeKind::Rescale: return "Rescale";
      case NodeKind::Multiply: return "Multiply";
      case NodeKind::RotateMany: return "RotateMany";
      case NodeKind::Drop: return "Drop";
      case NodeKind::SetScale: return "SetScale";
      case NodeKind::Unpack: return "Unpack";
      case NodeKind::Pack: return "Pack";
      case NodeKind::BsgsSum: return "BsgsSum";
      case NodeKind::LayerApply: return "LayerApply";
      case NodeKind::FusedEle: return "FusedEle";
      case NodeKind::MulPlainRescale: return "MulPlainRescale";
      default: TFHE_ASSERT(false); return "?";
    }
}

} // namespace tensorfhe::graph
