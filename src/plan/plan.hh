/**
 * @file
 * ExecutionPlan: the immutable per-step schedule nn::Sequential::run
 * consumes. One step per layer of the compiled stack — user layers,
 * planner-inserted Bootstrap refreshes and LevelDrop alignments alike
 * — carrying the step's input/output metas, its modeled scalar work
 * (perf::CostModel::work of the layer's costAt at the step's input
 * level) and, for lazy bootstraps, the live-chunk mask. The plan is
 * built ONCE at compile time (by the greedy splice walk or by the
 * global planner) and never mutated: execution replays it and checks
 * every step's outcome against the recorded meta.
 */

#ifndef TENSORFHE_PLAN_PLAN_HH
#define TENSORFHE_PLAN_PLAN_HH

#include <string>
#include <vector>

#include "nn/tensor.hh"

namespace tensorfhe::plan
{

/** One scheduled step (maps 1:1 onto the compiled layer stack). */
struct PlanStep
{
    enum class Kind
    {
        Layer,     ///< a user layer (matvec, pool, activation, ...)
        Bootstrap, ///< a refresh (greedy-spliced or planner-placed)
        LevelDrop  ///< planner-placed limb truncation (free)
    };

    Kind kind = Kind::Layer;
    std::size_t layerIndex = 0; ///< index into Sequential::layers()
    std::string name;
    nn::TensorMeta in;
    nn::TensorMeta out;
    double work = 0.0; ///< modeled scalar work at the planned level
    /** Live chunks a lazy bootstrap refreshes (empty = all). */
    std::vector<bool> liveChunks;
};

/**
 * The immutable compiled schedule. `plannedWork` totals the steps'
 * modeled work; `greedyWork` is the same total for the greedy-splice
 * baseline schedule of the same model (equal when the greedy path
 * built the plan), so plannedWork <= greedyWork always holds and
 * greedyWork / plannedWork is the planner's modeled win.
 */
class ExecutionPlan
{
  public:
    ExecutionPlan() = default;
    ExecutionPlan(std::vector<PlanStep> steps, double greedy_work)
        : steps_(std::move(steps)), greedyWork_(greedy_work)
    {
        for (const auto &s : steps_)
            plannedWork_ += s.work;
    }

    const std::vector<PlanStep> &steps() const { return steps_; }
    double plannedWork() const { return plannedWork_; }
    double greedyWork() const { return greedyWork_; }

    std::size_t
    bootstrapCount() const
    {
        std::size_t n = 0;
        for (const auto &s : steps_)
            if (s.kind == PlanStep::Kind::Bootstrap)
                ++n;
        return n;
    }

    /** Human-readable per-step ledger (errors, logs, benches). */
    std::string summary() const;

  private:
    std::vector<PlanStep> steps_;
    double plannedWork_ = 0.0;
    double greedyWork_ = 0.0;
};

} // namespace tensorfhe::plan

#endif // TENSORFHE_PLAN_PLAN_HH
