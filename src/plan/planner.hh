/**
 * @file
 * The global execution planner (docs/PLANNER.md): given a layer
 * stack and an input meta, choose bootstrap placement, level drops
 * and per-layer input levels to minimize total modeled work, by
 * exact dynamic programming over (gap index, level count) states
 * against perf::CostModel.
 *
 * The search space per gap (the point just before each user layer):
 *   - run the layer at the current level L;
 *   - drop to any L' < L first (free — limb truncation), then run:
 *     key-switch work scales ~quadratically in limbs, so running the
 *     tail of a network far below the bootstrap refresh level is the
 *     planner's main win;
 *   - bootstrap (L >= 2), landing at the exact refresh level of
 *     boot::Bootstrapper::predictRefresh — the SAME mirror the
 *     greedy splice trusts — optionally followed by a drop. At most
 *     one bootstrap per gap (two in a row is never cheaper).
 * Bootstrap cost is priced per live chunk: a backward liveness walk
 * (Layer::liveInputChunks) finds chunks no downstream layer reads,
 * and the planner's Bootstrap layers skip refreshing them
 * (nn::Bootstrap::setLiveChunks).
 *
 * The planner first replays the greedy splice walk (the
 * enableAutoBootstrap baseline) to compile every layer once and
 * price that schedule, then searches, then REBUILDS the stack at the
 * planned levels: layers are rebound (Layer::rebind) at their
 * planned input metas, with matvec layers switched to planner
 * strides (level-priced argmin, no root-pattern key restriction —
 * rotation keys come from an on-demand ckks::KeyStore).
 */

#ifndef TENSORFHE_PLAN_PLANNER_HH
#define TENSORFHE_PLAN_PLANNER_HH

#include <memory>
#include <vector>

#include "nn/layers.hh"
#include "plan/plan.hh"

namespace tensorfhe::plan
{

struct PlannerOptions
{
    /** Sine approximation of planner-placed bootstraps. */
    boot::SineConfig sine;
    /**
     * Re-choose BSGS strides per planned level with the root-pattern
     * key restriction lifted (requires routing keys through an
     * on-demand ckks::KeyStore — pre-generated analytic bundles may
     * not cover the chosen steps).
     */
    bool unrestrictedStrides = true;
    /** Refresh only chunks live downstream at each bootstrap. */
    bool lazyBootstrap = true;
    /** Limbs that must remain after the last layer (>= 1). */
    std::size_t terminalReserve = 1;
};

/** The planner's product: the rebuilt stack plus its schedule. */
struct PlanResult
{
    std::vector<std::unique_ptr<nn::Layer>> stack;
    ExecutionPlan plan;
    nn::TensorMeta output;
};

/**
 * Plan `layers` (the user stack, in order, not yet compiled) against
 * `input`. Consumes the layers: they are surveyed (greedy-compiled),
 * then rebound at their planned levels and returned inside the
 * result stack interleaved with planner-inserted Bootstrap /
 * LevelDrop layers. Throws common::BudgetError with the best plan
 * found and the first infeasible layer when no placement fits the
 * chain. Emits trace spans per phase ("plan" category) and plan.*
 * metrics counters (candidates explored, plans pruned, chosen vs
 * greedy cost).
 */
PlanResult planSequential(const ckks::CkksContext &ctx,
                          std::vector<std::unique_ptr<nn::Layer>> layers,
                          const nn::TensorMeta &input,
                          const PlannerOptions &opts);

} // namespace tensorfhe::plan

#endif // TENSORFHE_PLAN_PLANNER_HH
