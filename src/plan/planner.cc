#include "plan/planner.hh"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/errors.hh"
#include "common/logging.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace tensorfhe::plan
{

namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

double
layerWork(const nn::Layer &l, const perf::CostModel &model,
          std::size_t input_lc)
{
    return perf::CostModel::work(l.costAt(model, input_lc));
}

/** The greedy-splice survey: compile every layer exactly as
    Sequential::enableAutoBootstrap would, pricing that schedule. */
struct Survey
{
    std::vector<nn::TensorMeta> inMeta; ///< greedy input per layer
    nn::TensorMeta output;
    double greedyWork = 0.0;
    std::string ledger; ///< post-splice per-layer ledger (errors)
};

Survey
surveyGreedy(const ckks::CkksContext &ctx,
             const std::vector<std::unique_ptr<nn::Layer>> &layers,
             const nn::TensorMeta &input, const PlannerOptions &opts,
             const perf::CostModel &model)
{
    Survey s;
    nn::TensorMeta meta = input;
    std::ostringstream ledger;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        auto &l = *layers[i];
        bool last = i + 1 == layers.size();
        std::size_t need = l.levelCost() + (last ? 1 : 2);
        if (meta.levelCount < need) {
            requireBudget(
                meta.levelCount >= 2, "plan/planner",
                "no feasible plan: layer ", i, " (", l.name(),
                ") needs ", need, " level counts but only ",
                meta.levelCount,
                " remain and a bootstrap needs >= 2 for its "
                "SlotToCoeff; best plan found:",
                ledger.str());
            nn::Bootstrap b(opts.sine);
            std::size_t pre = meta.levelCount;
            meta = b.compile(ctx, meta);
            s.greedyWork += layerWork(b, model, pre);
            ledger << "\n  Bootstrap: level " << pre << " -> "
                   << meta.levelCount;
            requireBudget(meta.levelCount >= need, "plan/planner",
                          "no feasible plan: layer ", i, " (",
                          l.name(), ") needs ", need,
                          " level counts but a bootstrap refreshes "
                          "only to ",
                          meta.levelCount,
                          " — the first infeasible layer cannot fit "
                          "this chain at any placement; best plan "
                          "found:",
                          ledger.str());
        }
        s.inMeta.push_back(meta);
        std::size_t in_lc = meta.levelCount;
        meta = l.compile(ctx, meta);
        s.greedyWork += layerWork(l, model, in_lc);
        ledger << "\n  " << l.name() << ": level " << in_lc << " -> "
               << meta.levelCount;
    }
    s.output = meta;
    s.ledger = ledger.str();
    return s;
}

/** Per-gap decision recovered from the DP parents. */
struct Decision
{
    bool boot = false;    ///< refresh before running the layer
    std::size_t runAt = 0; ///< level the layer runs at (post drop)
};

} // namespace

std::string
ExecutionPlan::summary() const
{
    std::ostringstream os;
    for (const auto &s : steps_) {
        os << "\n  " << s.name << ": level " << s.in.levelCount
           << " -> " << s.out.levelCount << ", work " << s.work;
        if (!s.liveChunks.empty()) {
            std::size_t live = static_cast<std::size_t>(std::count(
                s.liveChunks.begin(), s.liveChunks.end(), true));
            os << " (" << live << "/" << s.liveChunks.size()
               << " chunks live)";
        }
    }
    os << "\n  total work " << plannedWork_ << " (greedy baseline "
       << greedyWork_ << ")";
    return os.str();
}

PlanResult
planSequential(const ckks::CkksContext &ctx,
               std::vector<std::unique_ptr<nn::Layer>> layers,
               const nn::TensorMeta &input, const PlannerOptions &opts)
{
    requireArg(!layers.empty(), "planner needs a nonempty stack");
    requireArg(opts.terminalReserve >= 1,
               "terminal reserve must keep >= 1 limb");
    perf::CostModel model(ctx.params());
    auto &metrics = trace::MetricsRegistry::instance();
    auto &candidates = metrics.counter("plan.candidates_explored");
    auto &pruned = metrics.counter("plan.plans_pruned");

    // ---- Phase 1: greedy survey (compiles every layer once). ----
    Survey survey;
    {
        trace::TraceSpan span("plan", "survey");
        span.arg("layers", static_cast<s64>(layers.size()));
        survey = surveyGreedy(ctx, layers, input, opts, model);
    }

    // ---- Phase 2: backward chunk-liveness walk. ----
    std::size_t n = layers.size();
    std::vector<std::vector<bool>> liveAtGap(n + 1);
    {
        trace::TraceSpan span("plan", "liveness");
        liveAtGap[n] = std::vector<bool>(
            survey.output.chunkCount, true);
        for (std::size_t i = n; i-- > 0;)
            liveAtGap[i] = layers[i]->liveInputChunks(liveAtGap[i + 1]);
    }

    // Planner strides from here on: costAt() re-chooses the BSGS
    // stride per queried level exactly as the rebind will.
    if (opts.unrestrictedStrides)
        for (auto &l : layers)
            if (auto *m = dynamic_cast<nn::MatvecLayer *>(l.get()))
                m->setPlannedStrides(true);

    // ---- Phase 3: exact DP over (gap, level) states. ----
    std::size_t maxL = ctx.tower().numQ();
    requireArg(input.levelCount >= 1 && input.levelCount <= maxL,
               "input level count outside the tower");
    std::vector<std::vector<double>> dp(
        n + 1, std::vector<double>(maxL + 1, kInf));
    std::vector<std::vector<Decision>> parent(
        n, std::vector<Decision>(maxL + 1));
    for (std::size_t L = opts.terminalReserve; L <= maxL; ++L)
        dp[n][L] = 0.0;

    // Refresh landing per bootstrap input level (the predictRefresh
    // mirror the greedy splice trusts — one source of truth).
    std::vector<std::size_t> refreshAt(maxL + 1, 0);
    for (std::size_t L = 2; L <= maxL; ++L)
        refreshAt[L] = boot::Bootstrapper::predictRefresh(
                           ctx, opts.sine, L)
                           .levelCount;

    {
        trace::TraceSpan span("plan", "search");
        span.arg("states", static_cast<s64>(n * maxL));
        for (std::size_t i = n; i-- > 0;) {
            auto &l = *layers[i];
            std::size_t min_in = l.minInputLevelCount();
            std::size_t cost = l.levelCost();
            std::size_t live = opts.lazyBootstrap
                ? static_cast<std::size_t>(
                      std::count(liveAtGap[i].begin(),
                                 liveAtGap[i].end(), true))
                : liveAtGap[i].size();

            // direct[d]: run the layer with its input at exactly d.
            std::vector<double> direct(maxL + 1, kInf);
            for (std::size_t d = min_in; d <= maxL; ++d) {
                std::size_t out = d - cost;
                candidates.add();
                if (out > maxL || dp[i + 1][out] == kInf) {
                    pruned.add();
                    continue;
                }
                direct[d] = layerWork(l, model, d) + dp[i + 1][out];
            }

            // Drop closure: best[d] = cheapest run from any level
            // <= d (limb truncation is free), with its argmin.
            std::vector<double> best(maxL + 1, kInf);
            std::vector<std::size_t> bestAt(maxL + 1, 0);
            for (std::size_t d = 1; d <= maxL; ++d) {
                best[d] = best[d - 1];
                bestAt[d] = bestAt[d - 1];
                if (direct[d] < best[d]) {
                    best[d] = direct[d];
                    bestAt[d] = d;
                }
            }

            for (std::size_t L = 1; L <= maxL; ++L) {
                double run = best[L];
                Decision dec{false, bestAt[L]};
                if (L >= 2) {
                    // Single bootstrap, landing at the exact refresh
                    // level, then the same drop closure.
                    std::size_t r = refreshAt[L];
                    candidates.add();
                    double boot = static_cast<double>(live)
                        * perf::CostModel::work(model.bootstrap(
                            L, maxL, r, ctx.slots(),
                            static_cast<std::size_t>(
                                opts.sine.taylorTerms),
                            static_cast<std::size_t>(
                                opts.sine.doublings)));
                    if (r <= maxL && best[r] < kInf
                        && boot + best[r] < run) {
                        run = boot + best[r];
                        dec = Decision{true, bestAt[r]};
                    } else if (best[r] == kInf) {
                        pruned.add();
                    }
                }
                dp[i][L] = run;
                parent[i][L] = dec;
            }
        }
    }

    requireBudget(dp[0][input.levelCount] < kInf, "plan/planner",
                  "no feasible plan from input level count ",
                  input.levelCount,
                  "; best plan found (greedy survey):",
                  survey.ledger);

    // ---- Phase 4: rebuild the stack at the planned levels. ----
    std::vector<PlanStep> steps;
    std::vector<std::unique_ptr<nn::Layer>> stack;
    nn::TensorMeta meta = input;
    {
        trace::TraceSpan span("plan", "rebuild");
        for (std::size_t i = 0; i < n; ++i) {
            const Decision &dec = parent[i][meta.levelCount];
            if (dec.boot) {
                auto b = std::make_unique<nn::Bootstrap>(opts.sine);
                bool anyDead =
                    std::find(liveAtGap[i].begin(), liveAtGap[i].end(),
                              false)
                    != liveAtGap[i].end();
                std::vector<bool> mask;
                if (opts.lazyBootstrap && anyDead) {
                    mask = liveAtGap[i];
                    b->setLiveChunks(mask);
                }
                PlanStep st;
                st.kind = PlanStep::Kind::Bootstrap;
                st.layerIndex = stack.size();
                st.name = b->name();
                st.in = meta;
                meta = b->compile(ctx, meta);
                st.out = meta;
                st.work = layerWork(*b, model, st.in.levelCount);
                st.liveChunks = std::move(mask);
                steps.push_back(std::move(st));
                stack.push_back(std::move(b));
            }
            if (dec.runAt < meta.levelCount) {
                auto d = std::make_unique<nn::LevelDrop>(dec.runAt);
                PlanStep st;
                st.kind = PlanStep::Kind::LevelDrop;
                st.layerIndex = stack.size();
                st.name = d->name();
                st.in = meta;
                meta = d->compile(ctx, meta);
                st.out = meta;
                steps.push_back(std::move(st));
                stack.push_back(std::move(d));
            }
            PlanStep st;
            st.kind = PlanStep::Kind::Layer;
            st.layerIndex = stack.size();
            st.name = layers[i]->name();
            st.in = meta;
            meta = layers[i]->rebind(ctx, meta);
            st.out = meta;
            st.work = layerWork(*layers[i], model, st.in.levelCount);
            steps.push_back(std::move(st));
            stack.push_back(std::move(layers[i]));
        }
    }

    ExecutionPlan plan(std::move(steps), survey.greedyWork);

    // ---- Phase 5: verify the plan's ledger invariants. ----
    {
        trace::TraceSpan span("plan", "verify");
        const nn::TensorMeta *prev = &input;
        for (std::size_t i = 0; i < plan.steps().size(); ++i) {
            const auto &st = plan.steps()[i];
            requireState(st.in.levelCount == prev->levelCount
                             && st.in.chunkCount == prev->chunkCount,
                         "planned step ", st.name,
                         " does not chain from its predecessor");
            if (st.kind == PlanStep::Kind::Bootstrap) {
                // Re-verify against the exact refresh mirror.
                auto r = boot::Bootstrapper::predictRefresh(
                    ctx, opts.sine, st.in.levelCount);
                requireState(st.out.levelCount == r.levelCount
                                 && st.out.scale == r.scale,
                             "planned bootstrap diverged from the "
                             "predictRefresh mirror");
            }
            prev = &st.out;
        }
        requireState(prev->levelCount >= opts.terminalReserve,
                     "planned output violates the terminal reserve");
        requireState(plan.plannedWork()
                         <= survey.greedyWork * (1.0 + 1e-9),
                     "planned schedule costs more than the greedy "
                     "baseline it searched over");
    }

    metrics.setGauge("plan.chosen_cost", plan.plannedWork());
    metrics.setGauge("plan.greedy_cost", plan.greedyWork());

    PlanResult res;
    res.stack = std::move(stack);
    res.plan = std::move(plan);
    res.output = meta;
    return res;
}

} // namespace tensorfhe::plan
