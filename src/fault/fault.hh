/**
 * @file
 * Deterministic, seed-driven fault injection for chaos testing the
 * engine's failure paths.
 *
 * Instrumented code marks named sites with TFHE_FAULT_POINT(...)
 * macros. When no plan is engaged the whole site compiles down to one
 * relaxed atomic load and a predictable branch — bench_fault_overhead
 * holds this under 1% on the graph-schedule workloads. A test arms a
 * FaultSpec (site, fault kind, which hit fires, corruption seed) on
 * the process-wide FaultPlan; the spec is ONE-SHOT: it fires on
 * exactly the chosen hit and then stays quiet, so a retried node
 * re-executes cleanly (transient-fault semantics).
 *
 * Fault kinds model the two failure families a long-running encrypted
 * inference server actually sees:
 *
 *   - control faults (TransientKernel, AllocFail) abort the operation
 *     in flight by throwing TransientFault — the typed, retryable
 *     error of common/errors.hh;
 *   - data faults (LimbBitFlip, MetaCorrupt) silently corrupt a
 *     ciphertext AT REST — between kernel launches, where commodity
 *     accelerator memory without ECC is actually vulnerable — and are
 *     fired at the graph executor's value boundaries, where the
 *     integrity guards (resilience/integrity.hh) must catch them.
 *     In-ALU corruption is out of scope: a flipped bit inside a
 *     modular reduction is renormalized into a wrong-but-well-formed
 *     residue that no boundary check can distinguish from a correct
 *     one (docs/RESILIENCE.md discusses the threat model).
 *
 * Counting mode (startCounting/stopCounting) profiles how often each
 * site is hit by a workload so a campaign can draw trigger hits
 * uniformly over the real hit range — tests/fault/ runs seeded
 * campaigns of hundreds of injections this way.
 */

#ifndef TENSORFHE_FAULT_FAULT_HH
#define TENSORFHE_FAULT_FAULT_HH

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "ckks/ciphertext.hh"
#include "common/types.hh"

namespace tensorfhe::fault
{

enum class FaultKind : int
{
    TransientKernel = 0, ///< throw TransientFault at the site
    AllocFail,           ///< throw TransientFault (failed allocation)
    LimbBitFlip,         ///< XOR one bit of one residue (data sites)
    MetaCorrupt,         ///< corrupt scale / limb metadata (data sites)
    NumKinds
};

const char *faultKindName(FaultKind k);

/** A named fault point plus what it can inject. */
struct SiteInfo
{
    const char *name;
    bool dataCapable; ///< LimbBitFlip / MetaCorrupt apply here
};

/** Every instrumented site (tests iterate this for coverage). */
const std::vector<SiteInfo> &knownSites();

/** One armed injection: fire `kind` on hit number `triggerHit`
    (0-based, counted per site since arm()). */
struct FaultSpec
{
    std::string site;
    FaultKind kind = FaultKind::TransientKernel;
    u64 triggerHit = 0;
    u64 seed = 0; ///< drives which component/limb/coeff/bit corrupts
};

class FaultPlan
{
  public:
    static FaultPlan &instance();

    /** Disarmed-path flag: true while armed OR counting. */
    static bool
    engaged()
    {
        return engaged_.load(std::memory_order_relaxed);
    }

    /** Arm a one-shot fault; resets hit counters and fired state. */
    void arm(FaultSpec spec);

    /** Disarm and clear counters (always safe to call). */
    void disarm();

    /** Did the armed fault fire since arm()? */
    bool fired() const;

    /** Count site hits without firing anything (campaign profiling).
        Mutually exclusive with an armed fault. */
    void startCounting();

    /** Stop counting; returns hits per site since startCounting(). */
    std::map<std::string, u64> stopCounting();

    /*
     * Site hooks — called by the TFHE_FAULT_POINT macros only while
     * engaged. onHit serves control sites (may throw TransientFault);
     * onHitCt additionally applies data faults to the ciphertext.
     */
    void onHit(const char *site);
    void onHitCt(const char *site, ckks::Ciphertext &ct);

  private:
    FaultPlan() = default;

    /** Returns true when the armed fault fires on this hit. */
    bool registerHit(const char *site);
    [[noreturn]] void throwControl(const char *site) const;
    void corruptCt(ckks::Ciphertext &ct) const;

    static std::atomic<bool> engaged_;

    mutable std::mutex mu_;
    bool armed_ = false;
    bool counting_ = false;
    bool fired_ = false;
    FaultSpec spec_;
    std::map<std::string, u64> hits_;
};

} // namespace tensorfhe::fault

/** Control-fault site: may throw TransientFault when armed. */
#define TFHE_FAULT_POINT(site)                                          \
    do {                                                                \
        if (::tensorfhe::fault::FaultPlan::engaged())                   \
            ::tensorfhe::fault::FaultPlan::instance().onHit(site);      \
    } while (0)

/** Data-fault site: may corrupt `ct` (or throw a control fault). */
#define TFHE_FAULT_POINT_CT(site, ct)                                   \
    do {                                                                \
        if (::tensorfhe::fault::FaultPlan::engaged())                   \
            ::tensorfhe::fault::FaultPlan::instance().onHitCt(site,     \
                                                             ct);       \
    } while (0)

#endif // TENSORFHE_FAULT_FAULT_HH
