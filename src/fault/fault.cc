#include "fault/fault.hh"

#include "common/errors.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "trace/trace.hh"

namespace tensorfhe::fault
{

std::atomic<bool> FaultPlan::engaged_{false};

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::TransientKernel: return "transient-kernel";
      case FaultKind::AllocFail: return "alloc-fail";
      case FaultKind::LimbBitFlip: return "limb-bit-flip";
      case FaultKind::MetaCorrupt: return "meta-corrupt";
      default: TFHE_ASSERT(false); return "?";
    }
}

const std::vector<SiteInfo> &
knownSites()
{
    // Control sites sit on the orchestration thread of the unified
    // exec layer (never inside parallelFor worker lambdas, so a
    // thrown TransientFault unwinds the dispatching call cleanly);
    // the two graph/ sites are the executor's value boundaries where
    // data faults are applied and the integrity guards must catch
    // them.
    static const std::vector<SiteInfo> sites = {
        {"workspace/alloc", false},
        {"exec/modup", false},
        {"exec/moddown", false},
        {"exec/keyswitch-tail", false},
        {"exec/fused-elementwise", false},
        {"boot/sine-stage", false},
        {"keystore/generate", false},
        {"gpu/replay-dispatch", false},
        {"graph/node-output", true},
        {"graph/value-store", true},
    };
    return sites;
}

FaultPlan &
FaultPlan::instance()
{
    static FaultPlan plan;
    return plan;
}

void
FaultPlan::arm(FaultSpec spec)
{
    std::lock_guard<std::mutex> lock(mu_);
    TFHE_ASSERT(!counting_, "cannot arm a fault while counting hits");
    spec_ = std::move(spec);
    armed_ = true;
    fired_ = false;
    hits_.clear();
    engaged_.store(true, std::memory_order_relaxed);
}

void
FaultPlan::disarm()
{
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = false;
    counting_ = false;
    fired_ = false;
    hits_.clear();
    engaged_.store(false, std::memory_order_relaxed);
}

bool
FaultPlan::fired() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return fired_;
}

void
FaultPlan::startCounting()
{
    std::lock_guard<std::mutex> lock(mu_);
    TFHE_ASSERT(!armed_, "cannot count hits while a fault is armed");
    counting_ = true;
    hits_.clear();
    engaged_.store(true, std::memory_order_relaxed);
}

std::map<std::string, u64>
FaultPlan::stopCounting()
{
    std::lock_guard<std::mutex> lock(mu_);
    counting_ = false;
    engaged_.store(armed_, std::memory_order_relaxed);
    return std::move(hits_);
}

bool
FaultPlan::registerHit(const char *site)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        u64 hit = hits_[site]++;
        if (counting_ || !armed_ || fired_ || spec_.site != site)
            return false;
        if (hit != spec_.triggerHit)
            return false;
        fired_ = true;
    }
    // Sites are string literals, so the instant event can alias the
    // site name directly (the timeline shows WHERE the fault fired).
    trace::SpanArg arg{"hit",
                       static_cast<s64>(spec_.triggerHit)};
    trace::Tracer::instant("fault", site, &arg, 1);
    TFHE_LOG_DEBUG("fault", "injected ", faultKindName(spec_.kind),
                   " at ", site, " (hit ", spec_.triggerHit, ")");
    return true;
}

void
FaultPlan::throwControl(const char *site) const
{
    if (spec_.kind == FaultKind::AllocFail)
        throw TransientFault(site,
                             "injected allocation failure (seed "
                                 + std::to_string(spec_.seed) + ")");
    throw TransientFault(site,
                         "injected transient kernel fault (seed "
                             + std::to_string(spec_.seed) + ")");
}

void
FaultPlan::onHit(const char *site)
{
    if (!registerHit(site))
        return;
    // Data kinds need a ciphertext target; on a control-only site
    // they degrade to a transient fault rather than silently doing
    // nothing (an armed fault that never fires would skew campaign
    // accounting).
    throwControl(site);
}

void
FaultPlan::corruptCt(ckks::Ciphertext &ct) const
{
    Rng rng(spec_.seed * 0x9e3779b97f4a7c15ull + 1);
    if (spec_.kind == FaultKind::MetaCorrupt) {
        // Metadata drift: nudge the scale (detected against the
        // compiled ValueMeta) or shear a limb off one component
        // (detected by the c0/c1 shape check).
        if (rng.uniform(2) == 0)
            ct.scale *= 1.0 + 1e-3;
        else if (ct.c0.numLimbs() > 1)
            ct.c0.truncateLimbs(ct.c0.numLimbs() - 1);
        else
            ct.scale *= 1.0 + 1e-3;
        return;
    }
    // LimbBitFlip: XOR one seeded bit of one seeded residue. At the
    // produce boundary (graph/node-output) the flip lands BEFORE the
    // digest is sealed, so only the residue range scan can see it —
    // inject the detectable class (a high bit, always >= 2^62 > q_i
    // for the <= 61-bit primes the pool admits). At the consume
    // boundary the value was sealed at production, so ANY bit —
    // including low bits that keep the residue in range — is caught
    // by the digest comparison; draw over the full word there.
    rns::RnsPolynomial &c = rng.uniform(2) == 0 ? ct.c0 : ct.c1;
    std::size_t limb = static_cast<std::size_t>(
        rng.uniform(c.numLimbs() == 0 ? 1 : c.numLimbs()));
    if (c.numLimbs() == 0)
        return;
    std::size_t coeff = static_cast<std::size_t>(rng.uniform(c.n()));
    u64 bit = spec_.site == "graph/node-output"
        ? 62 + rng.uniform(2)
        : rng.uniform(64);
    c.limb(limb)[coeff] ^= u64(1) << bit;
}

void
FaultPlan::onHitCt(const char *site, ckks::Ciphertext &ct)
{
    if (!registerHit(site))
        return;
    if (spec_.kind == FaultKind::TransientKernel
        || spec_.kind == FaultKind::AllocFail)
        throwControl(site);
    corruptCt(ct);
}

} // namespace tensorfhe::fault
