/**
 * @file
 * Encrypted neural-network layers over CipherTensors — the layer
 * library behind the functional counterparts of the paper's ResNet-20
 * and LSTM workloads (SV, Table X).
 *
 * Every layer has three synchronized faces:
 *   - compile(): validates the incoming TensorMeta, builds plans
 *     (BSGS matrices, encoded masks, power ladders) and returns the
 *     outgoing meta — shape, layout, level count and exact scale —
 *     before anything encrypted runs;
 *   - apply(): the encrypted forward pass over a uniform batch,
 *     dispatched through batch::BatchedEvaluator so multiple inputs
 *     ride the (slot x tower) work-queue;
 *   - applyPlain(): the plaintext reference with the same arithmetic
 *     (same polynomial activations), used for verification.
 * modeledOps() predicts the exact executed-operation counts of one
 * apply() sample, cross-checked against EvalOpStats by the tests and
 * the Table X bench.
 *
 * Matrix-shaped layers (Dense, Conv2d) lower to a single
 * boot::LinearTransformPlan BSGS matvec: ~2*sqrt(slots) key-switch
 * tails per application instead of one full keyswitch per nonzero
 * diagonal, with per-level cached diagonal plaintexts. Pooling and
 * reductions run as rotate-folds on the affine slot layout; pooled
 * outputs stay in strided slots and the next matrix layer reads them
 * in place.
 */

#ifndef TENSORFHE_NN_LAYERS_HH
#define TENSORFHE_NN_LAYERS_HH

#include <map>
#include <memory>
#include <optional>

#include "batch/executor.hh"
#include "boot/bootstrap.hh"
#include "boot/linear.hh"
#include "common/stats.hh"
#include "nn/activation.hh"
#include "nn/tensor.hh"
#include "perf/cost_model.hh"

namespace tensorfhe::nn
{

/**
 * Server-side execution context for encrypted inference: the CKKS
 * context plus the batched evaluator every layer dispatches through.
 */
class NnEngine
{
  public:
    NnEngine(const ckks::CkksContext &ctx, const ckks::KeyBundle &keys,
             ThreadPool *pool = nullptr)
        : ctx_(ctx), beval_(ctx, keys, pool)
    {}

    /** Engine over an explicit key store — planner-built nets route
        rotation keys through an on-demand ckks::KeyStore so their
        unrestricted BSGS strides need no pre-generated bundle. */
    NnEngine(const ckks::CkksContext &ctx,
             std::shared_ptr<const ckks::KeyStore> store,
             ThreadPool *pool = nullptr)
        : ctx_(ctx), beval_(ctx, std::move(store), pool)
    {}

    const ckks::CkksContext &ctx() const { return ctx_; }
    const batch::BatchedEvaluator &batched() const { return beval_; }
    const ckks::Evaluator &scalar() const { return beval_.scalar(); }

  private:
    const ckks::CkksContext &ctx_;
    batch::BatchedEvaluator beval_;
};

using Cts = std::vector<ckks::Ciphertext>;

class Layer
{
  public:
    virtual ~Layer() = default;

    virtual std::string name() const = 0;

    /**
     * Validate against the incoming meta, build the layer's plans and
     * return the outgoing meta. Must be called exactly once before
     * apply()/requiredRotations()/modeledOps().
     */
    virtual TensorMeta compile(const ckks::CkksContext &ctx,
                               const TensorMeta &in) = 0;

    /** Rotation steps apply() needs keys for (valid after compile). */
    virtual std::vector<s64> requiredRotations() const { return {}; }

    /** Conjugate-composed rotation steps apply() needs
        KeyBundle.conjRot keys for (the bootstrap layer's fused C2S
        split; empty for ordinary layers). */
    virtual std::vector<s64> requiredConjRotations() const
    {
        return {};
    }

    /** Multiplicative levels consumed (valid after compile; a
        bootstrap layer reports 0 — it restores the budget). */
    virtual std::size_t levelCost() const = 0;

    /**
     * Encrypted forward over a uniform batch: `in` holds every
     * sample's chunks, sample-major. Elementwise layers accept any
     * chunk count; rotation-based layers require single-chunk metas
     * (enforced at compile).
     */
    virtual Cts apply(const NnEngine &engine, const Cts &in) const = 0;

    /** Plaintext reference on one sample's logical values. */
    virtual std::vector<double>
    applyPlain(const std::vector<double> &in) const = 0;

    /** Predicted executed ops of one apply() sample. */
    virtual EvalOpCounts modeledOps() const = 0;

    /**
     * Smallest input level count compile() accepts — the planner's
     * feasibility floor, queryable BEFORE compile (it depends only
     * on layer parameters, never on the incoming meta).
     */
    virtual std::size_t minInputLevelCount() const { return 1; }

    /**
     * Modeled kernel cost of one apply() sample if the input arrived
     * at `input_lc` limbs (valid after compile). Every layer prices
     * against the EXPLICIT level argument — never the compiled
     * meta's level — so the planner can evaluate the same layer at
     * every candidate rung of the ladder.
     */
    virtual perf::KernelCost costAt(const perf::CostModel &model,
                                    std::size_t input_lc) const = 0;

    /**
     * Which input chunks the live output chunks depend on (valid
     * after compile). The planner walks this backward from the
     * network output to find chunks whose values are dead downstream
     * — a bootstrap never refreshes those. Default: chunk-aligned
     * pass-through when in/out chunk counts match, else every input
     * chunk is live whenever any output chunk is.
     */
    virtual std::vector<bool>
    liveInputChunks(const std::vector<bool> &out_live) const;

    /**
     * Recompile against a (possibly different) input meta: resets
     * the compiled state, drops stale plans and re-runs compile().
     * The planner rebinds surveyed layers at their planned levels.
     */
    TensorMeta rebind(const ckks::CkksContext &ctx,
                      const TensorMeta &in);

    const TensorMeta &inputMeta() const { return in_; }
    const TensorMeta &outputMeta() const { return out_; }

  protected:
    void requireCompiled() const;
    /** Drop per-compile state ahead of a rebind (plans, masks). */
    virtual void resetPlans() {}

    TensorMeta in_;
    TensorMeta out_;
    bool compiled_ = false;
};

/**
 * Common machinery of the matrix-shaped layers: the layer's linear
 * map is embedded into an (out-chunks * slots) x (in-chunks * slots)
 * SlotMatrix (columns at the input layout's global slots, rows
 * contiguous from slot 0) and lowered to BLOCK BSGS matvecs — one
 * compiled LinearTransformPlan per nonzero (out-chunk, in-chunk)
 * block, evaluated per out-chunk through
 * exec::Dispatcher::applyBsgsSum so the partial sums over input
 * chunks accumulate on the extended QP basis and pay ONE final
 * ModDown + RESCALE. Tensors larger than one ciphertext therefore
 * flow through the same double-hoisted path as single-chunk ones.
 * The optional bias rides one plaintext addition per output chunk.
 * Consumes one level.
 */
class MatvecLayer : public Layer
{
  public:
    TensorMeta compile(const ckks::CkksContext &ctx,
                       const TensorMeta &in) override;
    std::vector<s64> requiredRotations() const override;
    std::size_t levelCost() const override { return 1; }
    std::size_t minInputLevelCount() const override { return 2; }
    Cts apply(const NnEngine &engine, const Cts &in) const override;
    EvalOpCounts modeledOps() const override;
    perf::KernelCost costAt(const perf::CostModel &model,
                            std::size_t input_lc) const override;
    std::vector<bool>
    liveInputChunks(const std::vector<bool> &out_live) const override;

    /**
     * Planner-stride mode: compile()/rebind() hand the stride argmin
     * the ACTUAL input level and lift the root-pattern key
     * restriction (keys come from an on-demand store), and costAt()
     * re-chooses the stride per queried level the same way. Default
     * off — the historical full-tower, root-restricted behavior.
     */
    void setPlannedStrides(bool on) { plannedStrides_ = on; }
    bool plannedStrides() const { return plannedStrides_; }

    /** The compiled BSGS plan of a single-block layer (valid after
        compile; for tests). */
    const boot::LinearTransformPlan &plan() const;

    /** Block (out_chunk, in_chunk)'s plan; null for a zero block. */
    const boot::LinearTransformPlan *
    blockPlan(std::size_t out_chunk, std::size_t in_chunk) const;

    /** Encoded bias of `out_chunk`; null when the chunk has no bias
        (valid after compile; the graph lowering reads these). */
    const ckks::Plaintext *
    biasPlain(std::size_t out_chunk) const
    {
        requireCompiled();
        return biases_[out_chunk] ? &*biases_[out_chunk] : nullptr;
    }

  protected:
    /**
     * The rows x cols matrix realizing the layer on `in`: rows are
     * contiguous output slots (out-chunk capacity), columns global
     * input slots.
     */
    virtual boot::SlotMatrix
    buildMatrix(const ckks::CkksContext &ctx, const TensorMeta &in,
                std::size_t rows, std::size_t cols) const = 0;
    virtual TensorShape outputShape(const TensorShape &in) const = 0;
    /** Bias over the output's logical elements; empty = none. */
    virtual std::vector<double> biasVector() const = 0;
    void resetPlans() override;

  private:
    bool plannedStrides_ = false;
    /// blocks_[i][j]: plan of out-chunk i from in-chunk j (null when
    /// the block is identically zero and skipped).
    std::vector<std::vector<std::unique_ptr<boot::LinearTransformPlan>>>
        blocks_;
    /// Per-out-chunk encoded bias (nullopt = no bias on that chunk).
    std::vector<std::optional<ckks::Plaintext>> biases_;
};

/** Fully-connected y = W x + b via one BSGS matvec. */
class Dense : public MatvecLayer
{
  public:
    /** weights[row][col]; bias empty or size rows. */
    Dense(std::vector<std::vector<double>> weights,
          std::vector<double> bias = {});

    std::string name() const override { return "Dense"; }
    std::vector<double>
    applyPlain(const std::vector<double> &in) const override;

    std::size_t rows() const { return weights_.size(); }
    std::size_t cols() const { return weights_[0].size(); }

  protected:
    boot::SlotMatrix buildMatrix(const ckks::CkksContext &ctx,
                                 const TensorMeta &in,
                                 std::size_t rows,
                                 std::size_t cols) const override;
    TensorShape outputShape(const TensorShape &in) const override;
    std::vector<double> biasVector() const override { return bias_; }

  private:
    std::vector<std::vector<double>> weights_;
    std::vector<double> bias_;
};

/**
 * 2D convolution (stride 1, zero 'same' padding) on a (C, H, W)
 * tensor, lowered to one packed BSGS matvec: the convolution is a
 * linear map on the packed slot vector, so its slot matrix feeds the
 * same LinearTransformPlan path as Dense — the rotation-sum over
 * kernel taps becomes the plan's diagonal structure.
 */
class Conv2d : public MatvecLayer
{
  public:
    /**
     * @param weights flat [outC][inC][ky][kx] taps (inC checked at
     *                compile against the input shape)
     * @param bias    empty or one entry per output channel
     */
    Conv2d(std::size_t out_channels, std::size_t kernel,
           std::vector<double> weights, std::vector<double> bias = {});

    std::string name() const override { return "Conv2d"; }
    std::vector<double>
    applyPlain(const std::vector<double> &in) const override;

  protected:
    boot::SlotMatrix buildMatrix(const ckks::CkksContext &ctx,
                                 const TensorMeta &in,
                                 std::size_t rows,
                                 std::size_t cols) const override;
    TensorShape outputShape(const TensorShape &in) const override;
    std::vector<double> biasVector() const override;

  private:
    double tap(std::size_t oc, std::size_t ic, std::size_t ky,
               std::size_t kx) const;

    std::size_t outChannels_;
    std::size_t kernel_;
    std::vector<double> weights_;
    std::vector<double> bias_;
};

/**
 * window x window average pooling (stride = window, a power of two)
 * on a (C, H, W) tensor via rotate-folds on the affine layout: one
 * doubling fold per axis sums each window in place, one masked CMULT
 * scales by 1/window^2 and zeroes the dropped positions. The output
 * stays in strided slots (strides multiplied by the window), so the
 * next matrix layer reads it without a repacking pass. Consumes one
 * level.
 */
class AvgPool2d : public Layer
{
  public:
    explicit AvgPool2d(std::size_t window = 2) : window_(window) {}

    std::string name() const override { return "AvgPool2d"; }
    TensorMeta compile(const ckks::CkksContext &ctx,
                       const TensorMeta &in) override;
    std::vector<s64> requiredRotations() const override;
    std::size_t levelCost() const override { return 1; }
    std::size_t minInputLevelCount() const override { return 2; }
    Cts apply(const NnEngine &engine, const Cts &in) const override;
    std::vector<double>
    applyPlain(const std::vector<double> &in) const override;
    EvalOpCounts modeledOps() const override;
    perf::KernelCost costAt(const perf::CostModel &model,
                            std::size_t input_lc) const override;

    /** Doubling-fold rotation steps, in apply() order (valid after
        compile; the graph lowering replays them). */
    const std::vector<s64> &poolSteps() const { return steps_; }

    /** The 1/window^2 + layout mask plaintext (valid after compile). */
    const ckks::Plaintext &poolMask() const { return *mask_; }

  private:
    std::size_t window_;
    std::vector<s64> steps_; ///< doubling-fold steps, x then y
    std::optional<ckks::Plaintext> mask_;
};

/**
 * Sum over every element of a uniformly-strided tensor, landing at
 * the layout's base slot. Schedules either the hoisted
 * multi-rotation sum or the doubling fold, chosen by the shared
 * perf::hoistedFoldWins cost model (the LR gradient folds use the
 * same decision). Consumes no level.
 */
class SumReduce : public Layer
{
  public:
    std::string name() const override { return "SumReduce"; }
    TensorMeta compile(const ckks::CkksContext &ctx,
                       const TensorMeta &in) override;
    std::vector<s64> requiredRotations() const override;
    std::size_t levelCost() const override { return 0; }
    Cts apply(const NnEngine &engine, const Cts &in) const override;
    std::vector<double>
    applyPlain(const std::vector<double> &in) const override;
    EvalOpCounts modeledOps() const override;
    perf::KernelCost costAt(const perf::CostModel &model,
                            std::size_t input_lc) const override;

    /** Whether compile chose the hoisted schedule (for tests). */
    bool hoisted() const { return hoisted_; }

    /** Fold steps in apply() order (hoisted: one rotateManyBatch of
        all steps; else one rotate+add per step). */
    const std::vector<s64> &foldSteps() const { return steps_; }

  private:
    bool hoisted_ = false;
    std::vector<s64> steps_;
};

/**
 * Elementwise polynomial activation: evaluates a PolyApprox on every
 * slot with a depth-optimal power ladder (x^k from x^ceil(k/2) *
 * x^floor(k/2), so degree d costs ceil(log2 d) + 1 levels, not d),
 * steering every term to the context scale so the output lands at
 * exactly params().scale() — downstream layers see a clean scale
 * regardless of the input's drift.
 */
class PolyActivation : public Layer
{
  public:
    explicit PolyActivation(PolyApprox approx);

    std::string name() const override;
    TensorMeta compile(const ckks::CkksContext &ctx,
                       const TensorMeta &in) override;
    std::size_t levelCost() const override;
    std::size_t minInputLevelCount() const override
    {
        return maxDepth_ + 2;
    }
    Cts apply(const NnEngine &engine, const Cts &in) const override;
    std::vector<double>
    applyPlain(const std::vector<double> &in) const override;
    EvalOpCounts modeledOps() const override;
    perf::KernelCost costAt(const perf::CostModel &model,
                            std::size_t input_lc) const override;

    const PolyApprox &approx() const { return approx_; }

    /** Ladder powers in build order (valid after compile; the graph
        lowering replays apply()'s exact schedule from these). */
    const std::vector<std::size_t> &powerLadder() const
    {
        return powers_;
    }

    /** Nonzero terms (power, coefficient), power >= 1, ascending. */
    const std::vector<std::pair<std::size_t, double>> &
    activeTerms() const
    {
        return terms_;
    }

    /** Depth of the deepest ladder power (== levelCost()). */
    std::size_t ladderDepth() const { return maxDepth_; }

    /** Whether apply() adds the constant coefficient at the end. */
    bool hasConstantTerm() const { return hasConstant_; }

  private:
    PolyApprox approx_;
    std::vector<std::size_t> powers_; ///< ladder products, ascending
    std::vector<std::pair<std::size_t, double>> terms_; ///< (k, c_k)
    std::size_t maxDepth_ = 0;
    bool hasConstant_ = false;
    std::map<std::size_t, std::size_t> depth_; ///< power -> depth
};

/**
 * Level-budget refresh between layers: every chunk of every batch
 * sample rides one boot::Bootstrapper::bootstrapBatch call through
 * the engine's BatchedEvaluator (the chunks are just more batch
 * slots). Values are approximately preserved (|z| <~ 1 required —
 * keep activations calibrated); shape, layout and chunk count pass
 * through, the level count and scale jump to the bootstrapper's
 * exact predicted refresh coordinates. nn::Sequential inserts these
 * automatically when the level ledger would go negative
 * (Sequential::enableAutoBootstrap); they can also be placed by
 * hand.
 */
class Bootstrap : public Layer
{
  public:
    explicit Bootstrap(boot::SineConfig sine = {}) : sine_(sine) {}

    std::string name() const override { return "Bootstrap"; }
    TensorMeta compile(const ckks::CkksContext &ctx,
                       const TensorMeta &in) override;
    std::vector<s64> requiredRotations() const override;
    std::vector<s64> requiredConjRotations() const override;
    /** Consumes no budget — it restores it (see outputMeta). */
    std::size_t levelCost() const override { return 0; }
    std::size_t minInputLevelCount() const override { return 2; }
    Cts apply(const NnEngine &engine, const Cts &in) const override;
    std::vector<double>
    applyPlain(const std::vector<double> &in) const override
    {
        return in; // value-preserving (approximately)
    }
    EvalOpCounts modeledOps() const override;
    perf::KernelCost costAt(const perf::CostModel &model,
                            std::size_t input_lc) const override;

    /**
     * Lazy per-chunk refresh: only chunks marked live run the
     * bootstrap pipeline; dead chunks (whose values no downstream
     * layer reads) are replaced by well-formed zero ciphertexts at
     * the refreshed meta so shapes and levels stay uniform. Set by
     * the planner from its liveness walk (size = chunk count,
     * checked at compile); empty = all live. Must be set before
     * compile().
     */
    void setLiveChunks(std::vector<bool> live);
    std::size_t liveChunkCount() const;

    const boot::Bootstrapper &bootstrapper() const;

  private:
    boot::SineConfig sine_;
    std::size_t slots_ = 0;
    std::size_t raisedLc_ = 0; ///< tower top the ModRaise lands at
    std::vector<bool> liveChunks_; ///< empty = every chunk live
    /// Shared so copies of the compiled net reuse the plan caches.
    std::shared_ptr<boot::Bootstrapper> boot_;
};

/**
 * Planner-inserted level alignment: drop the input to an exact level
 * count (ckks dropToLevelCount — limb truncation, no arithmetic, no
 * stats). The planner emits these where running the downstream
 * suffix on a shorter tower is cheaper than the limbs are worth;
 * they can also be placed by hand. Values and scale pass through.
 */
class LevelDrop : public Layer
{
  public:
    explicit LevelDrop(std::size_t target_level_count);

    std::string name() const override { return "LevelDrop"; }
    TensorMeta compile(const ckks::CkksContext &ctx,
                       const TensorMeta &in) override;
    std::size_t levelCost() const override { return 0; }
    Cts apply(const NnEngine &engine, const Cts &in) const override;
    std::vector<double>
    applyPlain(const std::vector<double> &in) const override
    {
        return in; // limb truncation never touches values
    }
    EvalOpCounts modeledOps() const override { return {}; }
    perf::KernelCost costAt(const perf::CostModel &,
                            std::size_t) const override
    {
        return {}; // metadata-only: no kernels, no bytes
    }

    std::size_t targetLevelCount() const { return target_; }

  private:
    std::size_t target_;
};

} // namespace tensorfhe::nn

#endif // TENSORFHE_NN_LAYERS_HH
