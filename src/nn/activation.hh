/**
 * @file
 * Polynomial activation approximants. CKKS evaluates only additions
 * and multiplications, so every nonlinearity of the paper's neural
 * workloads (the ReLUs of ResNet-20, the sigmoid/tanh gates of LSTM,
 * the HELR sigmoid) runs as a low-degree polynomial calibrated on a
 * bounded input interval. This header owns the approximants and their
 * plaintext evaluation; nn::PolyActivation evaluates them
 * homomorphically with a depth-log2(d) power ladder.
 */

#ifndef TENSORFHE_NN_ACTIVATION_HH
#define TENSORFHE_NN_ACTIVATION_HH

#include <functional>
#include <string>
#include <vector>

namespace tensorfhe::nn
{

/**
 * A monomial-basis polynomial sum_k coeffs[k] * x^k approximating a
 * scalar activation on [lo, hi]. Outside the calibrated interval the
 * approximation degrades quickly — layer calibration (weight scaling)
 * must keep values inside it.
 */
struct PolyApprox
{
    std::string name;
    std::vector<double> coeffs; ///< c_0 .. c_degree
    double lo = -1.0;
    double hi = 1.0;

    std::size_t degree() const { return coeffs.size() - 1; }

    /** Horner evaluation (the plaintext reference path). */
    double evalPlain(double x) const;
};

/**
 * Chebyshev least-squares fit of `f` on [lo, hi] at the given degree,
 * converted to the monomial basis.
 */
PolyApprox chebyshevFit(const std::function<double(double)> &f,
                        double lo, double hi, std::size_t degree,
                        std::string name);

/**
 * Sigmoid approximant. Degree 3 returns the HELR coefficients
 * 0.5 + 0.197 x - 0.004 x^3 (the same polynomial the LR workload
 * trains with), whose least-squares calibration holds on [-4, 4];
 * other degrees are Chebyshev fits on [-6, 6].
 */
PolyApprox sigmoidApprox(std::size_t degree);

/** tanh approximant, calibrated on [-2, 2] (LSTM gate range). */
PolyApprox tanhApprox(std::size_t degree);

/** ReLU approximant, calibrated on [-1, 1] (post-conv range). */
PolyApprox reluApprox(std::size_t degree);

/** max |approx(x) - f(x)| over `samples` points of [lo, hi]. */
double maxAbsError(const PolyApprox &approx,
                   const std::function<double(double)> &f,
                   std::size_t samples = 1001);

} // namespace tensorfhe::nn

#endif // TENSORFHE_NN_ACTIVATION_HH
