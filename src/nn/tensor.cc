#include "nn/tensor.hh"

#include <sstream>

#include "common/logging.hh"

namespace tensorfhe::nn
{

std::size_t
TensorShape::numel() const
{
    std::size_t n = 1;
    for (std::size_t d : dims)
        n *= d;
    return n;
}

std::string
TensorShape::str() const
{
    std::ostringstream oss;
    oss << "(";
    for (std::size_t i = 0; i < dims.size(); ++i)
        oss << (i ? ", " : "") << dims[i];
    oss << ")";
    return oss.str();
}

SlotLayout
SlotLayout::contiguous(const TensorShape &shape)
{
    SlotLayout l;
    l.stride.assign(shape.dims.size(), 1);
    for (std::size_t i = shape.dims.size(); i-- > 1;)
        l.stride[i - 1] = l.stride[i] * shape.dims[i];
    return l;
}

std::size_t
SlotLayout::slotOf(const TensorShape &shape, std::size_t flat) const
{
    TFHE_ASSERT(stride.size() == shape.dims.size());
    std::size_t slot = offset;
    for (std::size_t i = shape.dims.size(); i-- > 0;) {
        slot += (flat % shape.dims[i]) * stride[i];
        flat /= shape.dims[i];
    }
    return slot;
}

std::size_t
SlotLayout::slotSpan(const TensorShape &shape) const
{
    std::size_t span = offset;
    for (std::size_t i = 0; i < shape.dims.size(); ++i)
        span += (shape.dims[i] - 1) * stride[i];
    return span + 1;
}

CipherTensor::CipherTensor(TensorShape shape, SlotLayout layout,
                           std::vector<ckks::Ciphertext> chunks)
    : shape_(std::move(shape)), layout_(std::move(layout)),
      chunks_(std::move(chunks))
{
    requireArg(!chunks_.empty(), "CipherTensor needs >= 1 chunk");
    for (const auto &ct : chunks_)
        requireArg(ct.levelCount() == chunks_[0].levelCount(),
                   "chunks must share a level");
}

std::size_t
CipherTensor::levelCount() const
{
    requireState(!chunks_.empty(), "empty tensor");
    return chunks_[0].levelCount();
}

double
CipherTensor::scale() const
{
    requireState(!chunks_.empty(), "empty tensor");
    return chunks_[0].scale;
}

TensorMeta
CipherTensor::meta() const
{
    return {shape_, layout_, chunkCount(), levelCount(), scale()};
}

CipherTensor
encryptTensor(const ckks::CkksContext &ctx, const ckks::Encryptor &enc,
              Rng &rng, const std::vector<double> &values,
              const TensorShape &shape, std::size_t level_count)
{
    requireArg(values.size() == shape.numel(),
               "value count ", values.size(), " does not match shape ",
               shape.str());
    std::size_t slots = ctx.slots();
    auto layout = SlotLayout::contiguous(shape);
    std::size_t chunk_count = (shape.numel() + slots - 1) / slots;
    double scale = ctx.params().scale();

    std::vector<ckks::Ciphertext> chunks;
    chunks.reserve(chunk_count);
    for (std::size_t c = 0; c < chunk_count; ++c) {
        std::vector<ckks::Complex> z(slots, ckks::Complex(0, 0));
        for (std::size_t i = c * slots;
             i < std::min(values.size(), (c + 1) * slots); ++i)
            z[i - c * slots] = ckks::Complex(values[i], 0);
        chunks.push_back(enc.encrypt(
            ctx.encoder().encode(z, scale, level_count), rng));
    }
    return CipherTensor(shape, layout, std::move(chunks));
}

std::vector<double>
decryptTensor(const ckks::CkksContext &ctx, const ckks::Decryptor &dec,
              const CipherTensor &t)
{
    std::size_t slots = ctx.slots();
    std::vector<std::vector<ckks::Complex>> decoded;
    decoded.reserve(t.chunkCount());
    for (const auto &ct : t.chunks())
        decoded.push_back(dec.decryptAndDecode(ct));

    std::size_t numel = t.shape().numel();
    std::vector<double> out(numel);
    for (std::size_t i = 0; i < numel; ++i) {
        std::size_t slot = t.layout().slotOf(t.shape(), i);
        std::size_t chunk = slot / slots;
        requireArg(chunk < decoded.size(),
                   "layout reaches past the last chunk");
        out[i] = decoded[chunk][slot % slots].real();
    }
    return out;
}

} // namespace tensorfhe::nn
