#include "nn/sequential.hh"

#include <cmath>
#include <sstream>

#include "ckks/rotations.hh"
#include "common/errors.hh"
#include "common/logging.hh"
#include "trace/trace.hh"

namespace tensorfhe::nn
{

void
Sequential::add(std::unique_ptr<Layer> layer)
{
    requireArg(!compiled_, "cannot add layers after compile()");
    requireArg(layer != nullptr, "null layer");
    layers_.push_back(std::move(layer));
}

void
Sequential::enableAutoBootstrap(boot::SineConfig sine)
{
    requireArg(!compiled_,
               "enableAutoBootstrap must precede compile()");
    autoBoot_ = true;
    sine_ = sine;
}

void
Sequential::enablePlanner(plan::PlannerOptions opts)
{
    requireArg(!compiled_, "enablePlanner must precede compile()");
    planner_ = true;
    plannerOpts_ = std::move(opts);
}

TensorMeta
Sequential::compile(const ckks::CkksContext &ctx,
                    const TensorMeta &input)
{
    requireArg(!compiled_, "model compiled twice");
    requireArg(!layers_.empty(), "empty model");

    if (planner_) {
        auto res = plan::planSequential(ctx, std::move(layers_),
                                        input, plannerOpts_);
        layers_ = std::move(res.stack);
        plan_ = std::move(res.plan);
        input_ = input;
        output_ = res.output;
        compiled_ = true;
        return output_;
    }

    if (!autoBoot_) {
        // Whole-model budget validation up front: walk the level
        // ledger before any layer builds plans, so a model that
        // cannot fit the chain fails with the full per-layer picture
        // instead of dying midway through an inference.
        std::size_t need = 0;
        std::ostringstream ledger;
        for (const auto &l : layers_) {
            need += l->levelCost();
            ledger << "\n  " << l->name() << ": " << l->levelCost();
        }
        requireBudget(input.levelCount >= need + 1,
                      "nn/sequential-compile",
                      "level budget exhausted: input has ",
                      input.levelCount, " level counts, the stack "
                                        "consumes ",
                      need, " and must leave >= 1; per-layer costs:",
                      ledger.str());
    }

    // Bootstrap-aware walk: before each layer, if the running budget
    // cannot cover its cost plus the terminal reserve (>= 1 after
    // the last layer) plus the >= 2 floor any LATER bootstrap's
    // SlotToCoeff needs, splice in a refresh and continue at the
    // predicted level. The spliced layers become part of the stack.
    // The walk also records the greedy ExecutionPlan run() replays.
    perf::CostModel model(ctx.params());
    std::vector<plan::PlanStep> steps;
    std::vector<std::unique_ptr<Layer>> compiled;
    compiled.reserve(layers_.size());
    TensorMeta meta = input;
    std::ostringstream walked; // post-splice ledger for error paths
    auto record = [&](plan::PlanStep::Kind kind, const Layer &l,
                      const TensorMeta &in) {
        plan::PlanStep st;
        st.kind = kind;
        st.layerIndex = compiled.size();
        st.name = l.name();
        st.in = in;
        st.out = l.outputMeta();
        st.work = perf::CostModel::work(
            l.costAt(model, in.levelCount));
        steps.push_back(std::move(st));
        walked << "\n  " << l.name() << ": level " << in.levelCount
               << " -> " << l.outputMeta().levelCount;
    };
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        auto &l = layers_[i];
        bool last = i + 1 == layers_.size();
        std::size_t need = l->levelCost() + (last ? 1 : 2);
        if (autoBoot_ && meta.levelCount < need) {
            auto b = std::make_unique<Bootstrap>(sine_);
            TensorMeta pre = meta;
            meta = b->compile(ctx, meta);
            // The error must show the ledger INCLUDING the splices
            // walked so far (the post-splice ledger) — the pre-splice
            // ledger hid where refreshes actually landed.
            requireBudget(meta.levelCount >= need,
                          "nn/sequential-compile",
                          "layer ", l->name(), " needs ", need,
                          " level counts but a bootstrap refreshes "
                          "only to ",
                          meta.levelCount,
                          " — the layer cannot fit this chain even "
                          "after bootstrapping; layers compiled so "
                          "far:",
                          walked.str(), "\n  Bootstrap: level ",
                          pre.levelCount, " -> ", meta.levelCount);
            record(plan::PlanStep::Kind::Bootstrap, *b, pre);
            compiled.push_back(std::move(b));
        }
        TensorMeta in = meta;
        meta = l->compile(ctx, meta);
        record(dynamic_cast<const Bootstrap *>(l.get())
                   ? plan::PlanStep::Kind::Bootstrap
                   : (dynamic_cast<const LevelDrop *>(l.get())
                          ? plan::PlanStep::Kind::LevelDrop
                          : plan::PlanStep::Kind::Layer),
               *l, in);
        compiled.push_back(std::move(l));
    }
    layers_ = std::move(compiled);
    double greedy = 0;
    for (const auto &s : steps)
        greedy += s.work;
    plan_ = plan::ExecutionPlan(std::move(steps), greedy);
    input_ = input;
    output_ = meta;
    compiled_ = true;
    return output_;
}

const plan::ExecutionPlan &
Sequential::executionPlan() const
{
    requireState(compiled_, "model used before compile()");
    return plan_;
}

std::vector<s64>
Sequential::requiredRotations() const
{
    requireState(compiled_, "model used before compile()");
    std::vector<std::vector<s64>> lists;
    lists.reserve(layers_.size());
    for (const auto &l : layers_)
        lists.push_back(l->requiredRotations());
    return ckks::unionRotationSteps(lists);
}

std::vector<s64>
Sequential::requiredConjRotations() const
{
    requireState(compiled_, "model used before compile()");
    std::vector<std::vector<s64>> lists;
    lists.reserve(layers_.size());
    for (const auto &l : layers_)
        lists.push_back(l->requiredConjRotations());
    return ckks::unionRotationSteps(lists);
}

std::size_t
Sequential::levelCost() const
{
    std::size_t total = 0;
    for (const auto &l : layers_)
        total += l->levelCost();
    return total;
}

std::size_t
Sequential::bootstrapCount() const
{
    std::size_t count = 0;
    for (const auto &l : layers_)
        if (dynamic_cast<const Bootstrap *>(l.get()) != nullptr)
            ++count;
    return count;
}

namespace
{

void
requireMetaMatch(const TensorMeta &got, const TensorMeta &want,
                 const std::string &where)
{
    requireArg(got.shape == want.shape && got.layout == want.layout
                   && got.chunkCount == want.chunkCount,
               where, ": tensor packing does not match the compiled "
                      "meta");
    requireArg(got.levelCount == want.levelCount,
               where, ": level count ", got.levelCount,
               " != compiled ", want.levelCount);
    requireArg(std::abs(got.scale - want.scale) <= 1e-6 * want.scale,
               where, ": scale ", got.scale, " != compiled ",
               want.scale);
}

} // namespace

std::vector<CipherTensor>
Sequential::run(const NnEngine &engine,
                const std::vector<CipherTensor> &batch) const
{
    requireState(compiled_, "model used before compile()");
    requireArg(!batch.empty(), "empty batch");
    for (const auto &t : batch)
        requireMetaMatch(t.meta(), input_, "input");

    // Flatten to (sample x chunk) and ride the batched evaluator.
    std::size_t chunks = input_.chunkCount;
    Cts flat;
    flat.reserve(batch.size() * chunks);
    for (const auto &t : batch)
        for (const auto &ct : t.chunks())
            flat.push_back(ct);

    trace::TraceSpan runSpan("nn", "sequential-run");
    runSpan.arg("batch", static_cast<s64>(batch.size()))
        .arg("layers", static_cast<s64>(layers_.size()));

    // Execution replays the immutable plan: one step per compiled
    // layer, each checked against the step's recorded output meta.
    for (const auto &st : plan_.steps()) {
        const auto &l = *layers_[st.layerIndex];
        trace::TraceSpan layerSpan("nn", st.name);
        layerSpan.arg("chunks", static_cast<s64>(st.out.chunkCount))
            .arg("level", static_cast<s64>(st.out.levelCount));
        flat = l.apply(engine, flat);
        const TensorMeta &m = st.out;
        // Level/scale invariants after every step: the executed
        // batch must land exactly where the plan predicted. Drift
        // here is corruption of the evaluation itself, typed so
        // callers can distinguish it from usage errors.
        if (flat.size() != batch.size() * m.chunkCount)
            throw IntegrityError(
                "nn/sequential-run",
                strCat(st.name, ": chunk count drifted"));
        for (const auto &ct : flat) {
            if (ct.levelCount() != m.levelCount)
                throw IntegrityError(
                    "nn/sequential-run",
                    strCat(st.name, ": level count ",
                           ct.levelCount(), " != compiled ",
                           m.levelCount));
            if (std::abs(ct.scale - m.scale) > 1e-6 * m.scale)
                throw IntegrityError(
                    "nn/sequential-run",
                    strCat(st.name, ": scale ", ct.scale,
                           " != compiled ", m.scale));
        }
    }

    std::size_t out_chunks = output_.chunkCount;
    std::vector<CipherTensor> out;
    out.reserve(batch.size());
    for (std::size_t s = 0; s < batch.size(); ++s) {
        std::vector<ckks::Ciphertext> cts(
            flat.begin() + static_cast<std::ptrdiff_t>(s * out_chunks),
            flat.begin()
                + static_cast<std::ptrdiff_t>((s + 1) * out_chunks));
        out.emplace_back(output_.shape, output_.layout,
                         std::move(cts));
    }
    return out;
}

CipherTensor
Sequential::run(const NnEngine &engine, const CipherTensor &input) const
{
    auto out = run(engine, std::vector<CipherTensor>{input});
    return std::move(out[0]);
}

std::vector<double>
Sequential::runPlain(std::vector<double> values) const
{
    requireState(compiled_, "model used before compile()");
    for (const auto &l : layers_)
        values = l->applyPlain(values);
    return values;
}

EvalOpCounts
Sequential::modeledOps() const
{
    requireState(compiled_, "model used before compile()");
    EvalOpCounts total;
    for (const auto &l : layers_)
        total += l->modeledOps();
    return total;
}

const TensorMeta &
Sequential::inputMeta() const
{
    requireState(compiled_, "model used before compile()");
    return input_;
}

const TensorMeta &
Sequential::outputMeta() const
{
    requireState(compiled_, "model used before compile()");
    return output_;
}

} // namespace tensorfhe::nn
