/**
 * @file
 * Sequential: the nn model runner. Owns a layer stack, compiles it
 * against an input TensorMeta (propagating shape/layout/level/scale
 * and validating the whole multiplicative budget up front, before
 * any key is generated or ciphertext touched), surfaces the union
 * rotation-key requirement of every layer, and runs encrypted
 * batches through the BatchedEvaluator with per-layer meta checks.
 */

#ifndef TENSORFHE_NN_SEQUENTIAL_HH
#define TENSORFHE_NN_SEQUENTIAL_HH

#include <memory>

#include "nn/layers.hh"
#include "plan/planner.hh"

namespace tensorfhe::nn
{

class Sequential
{
  public:
    Sequential() = default;

    /** Append a layer (before compile). */
    void add(std::unique_ptr<Layer> layer);

    /**
     * Let compile() insert nn::Bootstrap layers wherever the level
     * ledger would go negative: before any layer whose cost (plus
     * the >= 1 terminal reserve, plus the >= 2 floor a later
     * bootstrap itself needs) exceeds the running budget, a
     * bootstrap refresh is spliced in and the walk continues at the
     * refreshed level. The inserted layers join the stack — their
     * rotation/conjugation key needs surface through
     * requiredRotations()/requiredConjRotations(), their ops through
     * modeledOps(), and run() batches them like any other layer.
     * Must be called before compile().
     */
    void enableAutoBootstrap(boot::SineConfig sine = {});

    /**
     * Let compile() run the GLOBAL execution planner instead of the
     * greedy splice: plan::planSequential searches bootstrap
     * placement, level drops and per-layer levels against
     * perf::CostModel, rebuilds the stack at the planned levels
     * (matvec strides re-chosen per level, root-pattern key
     * restriction lifted — run the net on an on-demand
     * ckks::KeyStore, or generate exactly requiredRotations()), and
     * run() consumes the resulting immutable ExecutionPlan. Subsumes
     * enableAutoBootstrap. Must be called before compile().
     */
    void enablePlanner(plan::PlannerOptions opts = {});

    /** Construct-and-append convenience; returns the layer. */
    template <typename L, typename... Args>
    L &
    emplace(Args &&...args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L &ref = *layer;
        add(std::move(layer));
        return ref;
    }

    /**
     * Compile every layer against the propagated metas. Throws
     * std::invalid_argument with the per-layer level ledger when the
     * input's multiplicative budget cannot cover the stack — the
     * whole-model validation happens here, up front.
     */
    TensorMeta compile(const ckks::CkksContext &ctx,
                       const TensorMeta &input);

    /**
     * Union rotation-key set of every layer (deduplicated via the
     * shared step-set helper): generate exactly these keys and every
     * layer can run, with no Galois key duplicated across layers.
     */
    std::vector<s64> requiredRotations() const;

    /** Union conjugate-rotation key set (bootstrap layers' fused C2S
        split steps; empty when no bootstrap is present). */
    std::vector<s64> requiredConjRotations() const;

    /** Total multiplicative levels the stack consumes (bootstrap
        layers count 0 — they restore the budget). */
    std::size_t levelCost() const;

    /** Bootstrap layers in the compiled stack (inserted + manual). */
    std::size_t bootstrapCount() const;

    /**
     * Encrypted inference over a batch. Each sample must match the
     * compiled input meta; every layer's output is checked against
     * its compiled meta (level and scale invariants) before the next
     * layer runs.
     */
    std::vector<CipherTensor>
    run(const NnEngine &engine,
        const std::vector<CipherTensor> &batch) const;

    /** Single-sample convenience. */
    CipherTensor run(const NnEngine &engine,
                     const CipherTensor &input) const;

    /** Plaintext reference with the same layer arithmetic. */
    std::vector<double> runPlain(std::vector<double> values) const;

    /** Predicted executed ops of one sample through every layer. */
    EvalOpCounts modeledOps() const;

    const std::vector<std::unique_ptr<Layer>> &layers() const
    {
        return layers_;
    }
    const TensorMeta &inputMeta() const;
    const TensorMeta &outputMeta() const;
    bool compiled() const { return compiled_; }

    /**
     * The immutable schedule run() replays (valid after compile).
     * Both compile paths build one: the greedy path records its
     * splice walk (greedyWork == plannedWork), the planner path its
     * searched schedule (plannedWork <= greedyWork).
     */
    const plan::ExecutionPlan &executionPlan() const;

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
    TensorMeta input_;
    TensorMeta output_;
    bool compiled_ = false;
    bool autoBoot_ = false;
    bool planner_ = false;
    boot::SineConfig sine_;
    plan::PlannerOptions plannerOpts_;
    plan::ExecutionPlan plan_;
};

} // namespace tensorfhe::nn

#endif // TENSORFHE_NN_SEQUENTIAL_HH
