/**
 * @file
 * CipherTensor: a logical tensor packed into CKKS slots. The paper's
 * neural workloads (ResNet-20, LSTM — SV, Table X) all compute on
 * tensors flattened into slot vectors; this header fixes the packing
 * vocabulary the nn layer library builds on.
 *
 * A tensor of shape (d_0, .., d_r) lives in a flat *slot space* of
 * chunkCount x slots positions (chunk c owns [c*slots, (c+1)*slots)).
 * The layout maps a logical index to its slot affinely: slot =
 * offset + sum_i idx_i * stride_i. Affine layouts are what make the
 * rotation algebra work: shifting one logical dimension by k is a
 * single HROTATE by k*stride_i for *every* element at once, which is
 * how AvgPool and the fold reductions run without repacking, and
 * strided layouts let a downstream Dense/Conv matrix read pooled
 * outputs in place (the matrix columns simply sit at strided slots).
 */

#ifndef TENSORFHE_NN_TENSOR_HH
#define TENSORFHE_NN_TENSOR_HH

#include <string>
#include <vector>

#include "ckks/crypto.hh"

namespace tensorfhe::nn
{

/** Logical tensor shape, row-major. */
struct TensorShape
{
    std::vector<std::size_t> dims;

    std::size_t numel() const;
    std::string str() const;

    bool operator==(const TensorShape &o) const { return dims == o.dims; }
};

/** Affine slot packing: slot = offset + sum_i idx_i * stride_i. */
struct SlotLayout
{
    std::size_t offset = 0;
    std::vector<std::size_t> stride; ///< one per shape dimension

    /** Row-major contiguous layout at offset 0. */
    static SlotLayout contiguous(const TensorShape &shape);

    /** Slot of the row-major flat index `flat`. */
    std::size_t slotOf(const TensorShape &shape, std::size_t flat) const;

    /** One past the largest slot any element occupies. */
    std::size_t slotSpan(const TensorShape &shape) const;

    bool
    operator==(const SlotLayout &o) const
    {
        return offset == o.offset && stride == o.stride;
    }
};

/**
 * Compile-time description of a tensor flowing between layers: the
 * packing plus the CKKS budget coordinates (level count and scale)
 * the nn::Sequential validator propagates before anything encrypted
 * runs.
 */
struct TensorMeta
{
    TensorShape shape;
    SlotLayout layout;
    std::size_t chunkCount = 1; ///< ciphertexts per sample
    std::size_t levelCount = 0;
    double scale = 0.0;
};

/**
 * One encrypted tensor: `chunkCount` ciphertexts holding the packed
 * slots. All chunks share level and scale. Matrix-shaped layers
 * (Dense/Conv2d) handle any chunk count — they lower to block BSGS
 * matvecs over (out-chunk, in-chunk) pairs; the rotate-fold layers
 * (AvgPool/SumReduce) still require single-chunk tensors because
 * slot rotations do not cross chunk boundaries. Elementwise layers
 * and Bootstrap treat chunks as extra batch slots.
 */
class CipherTensor
{
  public:
    CipherTensor() = default;
    CipherTensor(TensorShape shape, SlotLayout layout,
                 std::vector<ckks::Ciphertext> chunks);

    const TensorShape &shape() const { return shape_; }
    const SlotLayout &layout() const { return layout_; }
    const std::vector<ckks::Ciphertext> &chunks() const { return chunks_; }
    std::vector<ckks::Ciphertext> &chunks() { return chunks_; }

    std::size_t chunkCount() const { return chunks_.size(); }
    std::size_t levelCount() const;
    double scale() const;

    /** The meta this tensor currently matches. */
    TensorMeta meta() const;

  private:
    TensorShape shape_;
    SlotLayout layout_;
    std::vector<ckks::Ciphertext> chunks_;
};

/**
 * Client-side packing: encode `values` (row-major) contiguously and
 * encrypt into ceil(numel / slots) chunks at the context scale.
 */
CipherTensor encryptTensor(const ckks::CkksContext &ctx,
                           const ckks::Encryptor &enc, Rng &rng,
                           const std::vector<double> &values,
                           const TensorShape &shape,
                           std::size_t level_count);

/** Client-side unpacking: decrypt and read the logical elements. */
std::vector<double> decryptTensor(const ckks::CkksContext &ctx,
                                  const ckks::Decryptor &dec,
                                  const CipherTensor &t);

} // namespace tensorfhe::nn

#endif // TENSORFHE_NN_TENSOR_HH
