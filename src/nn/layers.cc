#include "nn/layers.hh"

#include <algorithm>
#include <cmath>

#include "ckks/rotations.hh"
#include "common/logging.hh"
#include "common/modarith.hh"
#include "perf/cost.hh"

namespace tensorfhe::nn
{

namespace
{

/**
 * The exact scale produced by multiplyPlain(pt at scale ps) followed
 * by rescale at level `lc` — computed with the same double
 * arithmetic as the evaluator so compiled metas match runtime bits.
 */
double
mulRescaleScale(const ckks::CkksContext &ctx, double ct_scale,
                double pt_scale, std::size_t lc)
{
    return ct_scale * pt_scale
        / static_cast<double>(ctx.tower().prime(lc - 1));
}

} // namespace

void
Layer::requireCompiled() const
{
    requireState(compiled_, "layer used before compile()");
}

std::vector<bool>
Layer::liveInputChunks(const std::vector<bool> &out_live) const
{
    requireCompiled();
    requireArg(out_live.size() == out_.chunkCount,
               name(), ": liveness mask size mismatch");
    if (in_.chunkCount == out_.chunkCount)
        return out_live; // chunk-aligned (elementwise / pass-through)
    // Shape-changing layers without a finer override: every input
    // chunk feeds the output, so any live output keeps them all.
    bool any = std::find(out_live.begin(), out_live.end(), true)
        != out_live.end();
    return std::vector<bool>(in_.chunkCount, any);
}

TensorMeta
Layer::rebind(const ckks::CkksContext &ctx, const TensorMeta &in)
{
    compiled_ = false;
    resetPlans();
    return compile(ctx, in);
}

// ------------------------------------------------------------------
// MatvecLayer

TensorMeta
MatvecLayer::compile(const ckks::CkksContext &ctx, const TensorMeta &in)
{
    requireArg(!compiled_, "layer compiled twice");
    std::size_t slots = ctx.slots();
    requireArg(in.chunkCount >= 1, name(), " needs >= 1 input chunk");
    requireArg(in.layout.slotSpan(in.shape) <= in.chunkCount * slots,
               name(), " input layout exceeds the chunked slot "
                       "capacity");
    requireArg(in.levelCount >= 2,
               name(), " needs one multiplicative level, input is at "
                       "level count ",
               in.levelCount);

    in_ = in;
    // Output capacity must be fixed before buildMatrix(): the matrix
    // writers index rows by output slot.
    out_.shape = outputShape(in.shape);
    std::size_t out_chunks =
        (out_.shape.numel() + slots - 1) / slots;
    std::size_t rows = out_chunks * slots;
    std::size_t cols = in.chunkCount * slots;

    auto m = buildMatrix(ctx, in, rows, cols);

    // Slice the global matrix into per-(out-chunk, in-chunk) blocks;
    // identically-zero blocks compile to no plan (and no work).
    blocks_.resize(out_chunks);
    for (std::size_t i = 0; i < out_chunks; ++i) {
        blocks_[i].resize(in.chunkCount);
        bool any = false;
        for (std::size_t j = 0; j < in.chunkCount; ++j) {
            boot::SlotMatrix block(
                slots,
                std::vector<ckks::Complex>(slots, ckks::Complex(0, 0)));
            double mag = 0;
            for (std::size_t r = 0; r < slots; ++r)
                for (std::size_t c = 0; c < slots; ++c) {
                    block[r][c] = m[i * slots + r][j * slots + c];
                    mag = std::max(mag, std::abs(block[r][c]));
                }
            if (mag < 1e-12)
                continue;
            boot::StrideOptions opt;
            if (plannedStrides_) {
                opt.costingLevel = in.levelCount;
                opt.restrictToRootPattern = false;
            }
            blocks_[i][j] =
                std::make_unique<boot::LinearTransformPlan>(
                    ctx, std::move(block), opt);
            any = true;
        }
        requireArg(any, name(), " output chunk ", i,
                   " receives no input (all blocks zero)");
    }

    out_.layout = SlotLayout::contiguous(out_.shape);
    out_.chunkCount = out_chunks;
    out_.levelCount = in.levelCount - 1;
    out_.scale = mulRescaleScale(ctx, in.scale, ctx.params().scale(),
                                 in.levelCount);

    auto bias = biasVector();
    biases_.assign(out_chunks, std::nullopt);
    if (!bias.empty()) {
        requireArg(bias.size() == out_.shape.numel(),
                   name(), " bias size mismatch");
        for (std::size_t i = 0; i < out_chunks; ++i) {
            std::vector<ckks::Complex> z(slots, ckks::Complex(0, 0));
            bool any = false;
            for (std::size_t j = 0; j < bias.size(); ++j) {
                std::size_t slot = out_.layout.slotOf(out_.shape, j);
                if (slot / slots != i)
                    continue;
                z[slot % slots] = ckks::Complex(bias[j], 0);
                any = true;
            }
            if (any)
                biases_[i] = ctx.encoder().encode(z, out_.scale,
                                                  out_.levelCount);
        }
    }
    compiled_ = true;
    return out_;
}

std::vector<s64>
MatvecLayer::requiredRotations() const
{
    requireCompiled();
    std::vector<std::vector<s64>> lists;
    for (const auto &row : blocks_)
        for (const auto &b : row)
            if (b)
                lists.push_back(b->requiredRotations());
    return ckks::unionRotationSteps(lists);
}

const boot::LinearTransformPlan &
MatvecLayer::plan() const
{
    requireCompiled();
    requireState(blocks_.size() == 1 && blocks_[0].size() == 1
                     && blocks_[0][0] != nullptr,
                 name(), " is a block matvec; use blockPlan()");
    return *blocks_[0][0];
}

const boot::LinearTransformPlan *
MatvecLayer::blockPlan(std::size_t out_chunk,
                       std::size_t in_chunk) const
{
    requireCompiled();
    requireArg(out_chunk < blocks_.size()
                   && in_chunk < blocks_[out_chunk].size(),
               "block index out of range");
    return blocks_[out_chunk][in_chunk].get();
}

Cts
MatvecLayer::apply(const NnEngine &engine, const Cts &in) const
{
    requireCompiled();
    std::size_t in_chunks = in_.chunkCount;
    std::size_t out_chunks = out_.chunkCount;
    requireArg(!in.empty() && in.size() % in_chunks == 0,
               name(), " batch is not a multiple of the chunk count");
    std::size_t batch = in.size() / in_chunks;
    std::size_t lc = in[0].levelCount();
    const auto &beval = engine.batched();

    Cts out(batch * out_chunks);
    for (std::size_t i = 0; i < out_chunks; ++i) {
        // One applyBsgsSum per output chunk: every nonzero input
        // block accumulates on QP, one final ModDown + RESCALE.
        std::vector<exec::BsgsProgram> owned;
        std::vector<const exec::BsgsProgram *> progs;
        std::vector<const ckks::Ciphertext *> inputs;
        owned.reserve(in_chunks);
        for (std::size_t j = 0; j < in_chunks; ++j) {
            if (!blocks_[i][j])
                continue;
            owned.push_back(blocks_[i][j]->program(lc));
            for (std::size_t s = 0; s < batch; ++s)
                inputs.push_back(&in[s * in_chunks + j]);
        }
        for (const auto &p : owned)
            progs.push_back(&p);
        auto chunk = beval.dispatcher().applyBsgsSum(
            progs.data(), inputs.data(), progs.size(), batch);
        if (biases_[i])
            chunk = beval.addPlain(chunk, *biases_[i]);
        for (std::size_t s = 0; s < batch; ++s)
            out[s * out_chunks + i] = std::move(chunk[s]);
    }
    return out;
}

EvalOpCounts
MatvecLayer::modeledOps() const
{
    requireCompiled();
    EvalOpCounts total;
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        EvalOpCounts chunk;
        for (const auto &b : blocks_[i])
            if (b)
                chunk += b->modeledAccumOps();
        chunk.hadd -= 1; // the first group initializes the accumulator
        chunk.rescale += 1;
        if (biases_[i])
            chunk.hadd += 1;
        total += chunk;
    }
    return total;
}

perf::KernelCost
MatvecLayer::costAt(const perf::CostModel &model,
                    std::size_t input_lc) const
{
    requireCompiled();
    perf::KernelCost total;
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        std::size_t nb = 0, diags = 0, baby = 0, giant = 0;
        for (const auto &b : blocks_[i]) {
            if (!b)
                continue;
            ++nb;
            diags += b->diagonalCount();
            if (plannedStrides_) {
                // Replicate the stride a rebind at this level would
                // pick — same argmin, same population.
                auto choice = model.chooseBsgsStride(
                    input_lc, b->diagonalIndices(), b->matrix().size(),
                    /*restrict_to_root_pattern=*/false);
                baby += choice.baby;
                giant += choice.giant;
            } else {
                baby += b->babyStepCount() + b->conjStepCount();
                giant += b->giantStepCount();
            }
        }
        total += model.blockMatvec(input_lc, nb, diags, baby, giant);
        if (biases_[i])
            total += model.op(perf::OpKind::HAdd, input_lc - 1);
    }
    return total;
}

std::vector<bool>
MatvecLayer::liveInputChunks(const std::vector<bool> &out_live) const
{
    requireCompiled();
    requireArg(out_live.size() == out_.chunkCount,
               name(), ": liveness mask size mismatch");
    std::vector<bool> live(in_.chunkCount, false);
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        if (!out_live[i])
            continue;
        for (std::size_t j = 0; j < blocks_[i].size(); ++j)
            if (blocks_[i][j])
                live[j] = true;
    }
    return live;
}

void
MatvecLayer::resetPlans()
{
    blocks_.clear();
    biases_.clear();
}

// ------------------------------------------------------------------
// Dense

Dense::Dense(std::vector<std::vector<double>> weights,
             std::vector<double> bias)
    : weights_(std::move(weights)), bias_(std::move(bias))
{
    requireArg(!weights_.empty() && !weights_[0].empty(),
               "Dense needs a nonempty weight matrix");
    for (const auto &row : weights_)
        requireArg(row.size() == weights_[0].size(),
                   "Dense weight rows must have equal length");
    requireArg(bias_.empty() || bias_.size() == weights_.size(),
               "Dense bias size mismatch");
}

boot::SlotMatrix
Dense::buildMatrix(const ckks::CkksContext &ctx,
                   const TensorMeta &in, std::size_t matrix_rows,
                   std::size_t matrix_cols) const
{
    (void)ctx;
    requireArg(in.shape.numel() == cols(),
               "Dense expects ", cols(), " inputs, got ",
               in.shape.str());
    requireArg(rows() <= matrix_rows,
               "Dense output exceeds the chunked slot capacity");
    boot::SlotMatrix m(matrix_rows,
                       std::vector<ckks::Complex>(matrix_cols,
                                                  ckks::Complex(0, 0)));
    for (std::size_t j = 0; j < rows(); ++j)
        for (std::size_t k = 0; k < cols(); ++k)
            m[j][in.layout.slotOf(in.shape, k)] +=
                ckks::Complex(weights_[j][k], 0);
    return m;
}

TensorShape
Dense::outputShape(const TensorShape &) const
{
    return {{rows()}};
}

std::vector<double>
Dense::applyPlain(const std::vector<double> &in) const
{
    std::vector<double> out(rows(), 0.0);
    for (std::size_t j = 0; j < rows(); ++j) {
        for (std::size_t k = 0; k < cols(); ++k)
            out[j] += weights_[j][k] * in[k];
        if (!bias_.empty())
            out[j] += bias_[j];
    }
    return out;
}

// ------------------------------------------------------------------
// Conv2d

Conv2d::Conv2d(std::size_t out_channels, std::size_t kernel,
               std::vector<double> weights, std::vector<double> bias)
    : outChannels_(out_channels), kernel_(kernel),
      weights_(std::move(weights)), bias_(std::move(bias))
{
    requireArg(outChannels_ >= 1, "Conv2d needs >= 1 output channel");
    requireArg(kernel_ % 2 == 1, "Conv2d kernel must be odd");
    requireArg(bias_.empty() || bias_.size() == outChannels_,
               "Conv2d bias size mismatch");
}

double
Conv2d::tap(std::size_t oc, std::size_t ic, std::size_t ky,
            std::size_t kx) const
{
    std::size_t in_c = in_.shape.dims[0];
    return weights_[((oc * in_c + ic) * kernel_ + ky) * kernel_ + kx];
}

boot::SlotMatrix
Conv2d::buildMatrix(const ckks::CkksContext &ctx,
                    const TensorMeta &in, std::size_t matrix_rows,
                    std::size_t matrix_cols) const
{
    (void)ctx;
    requireArg(in.shape.dims.size() == 3,
               "Conv2d expects a (C, H, W) input, got ",
               in.shape.str());
    std::size_t ic = in.shape.dims[0];
    std::size_t h = in.shape.dims[1];
    std::size_t w = in.shape.dims[2];
    requireArg(weights_.size() == outChannels_ * ic * kernel_ * kernel_,
               "Conv2d weight count mismatch: expected ",
               outChannels_ * ic * kernel_ * kernel_, ", got ",
               weights_.size());
    requireArg(outChannels_ * h * w <= matrix_rows,
               "Conv2d output exceeds the chunked slot capacity");
    std::size_t half = kernel_ / 2;
    std::size_t ic_ky_kx = ic * kernel_ * kernel_;

    boot::SlotMatrix m(matrix_rows,
                       std::vector<ckks::Complex>(matrix_cols,
                                                  ckks::Complex(0, 0)));
    for (std::size_t oc = 0; oc < outChannels_; ++oc) {
        for (std::size_t y = 0; y < h; ++y) {
            for (std::size_t x = 0; x < w; ++x) {
                std::size_t row = (oc * h + y) * w + x;
                for (std::size_t t = 0; t < ic_ky_kx; ++t) {
                    std::size_t c = t / (kernel_ * kernel_);
                    std::size_t ky = (t / kernel_) % kernel_;
                    std::size_t kx = t % kernel_;
                    auto iy = static_cast<std::ptrdiff_t>(y + ky)
                        - static_cast<std::ptrdiff_t>(half);
                    auto ix = static_cast<std::ptrdiff_t>(x + kx)
                        - static_cast<std::ptrdiff_t>(half);
                    if (iy < 0 || ix < 0
                        || iy >= static_cast<std::ptrdiff_t>(h)
                        || ix >= static_cast<std::ptrdiff_t>(w))
                        continue; // zero padding
                    std::size_t flat =
                        (c * h + static_cast<std::size_t>(iy)) * w
                        + static_cast<std::size_t>(ix);
                    m[row][in.layout.slotOf(in.shape, flat)] +=
                        ckks::Complex(tap(oc, c, ky, kx), 0);
                }
            }
        }
    }
    return m;
}

TensorShape
Conv2d::outputShape(const TensorShape &in) const
{
    return {{outChannels_, in.dims[1], in.dims[2]}};
}

std::vector<double>
Conv2d::biasVector() const
{
    if (bias_.empty())
        return {};
    std::size_t hw = in_.shape.dims[1] * in_.shape.dims[2];
    std::vector<double> out(outChannels_ * hw);
    for (std::size_t oc = 0; oc < outChannels_; ++oc)
        for (std::size_t i = 0; i < hw; ++i)
            out[oc * hw + i] = bias_[oc];
    return out;
}

std::vector<double>
Conv2d::applyPlain(const std::vector<double> &in) const
{
    requireCompiled();
    std::size_t ic = in_.shape.dims[0];
    std::size_t h = in_.shape.dims[1];
    std::size_t w = in_.shape.dims[2];
    std::size_t half = kernel_ / 2;
    std::vector<double> out(outChannels_ * h * w, 0.0);
    for (std::size_t oc = 0; oc < outChannels_; ++oc) {
        for (std::size_t y = 0; y < h; ++y) {
            for (std::size_t x = 0; x < w; ++x) {
                double acc = bias_.empty() ? 0.0 : bias_[oc];
                for (std::size_t c = 0; c < ic; ++c) {
                    for (std::size_t ky = 0; ky < kernel_; ++ky) {
                        for (std::size_t kx = 0; kx < kernel_; ++kx) {
                            auto iy =
                                static_cast<std::ptrdiff_t>(y + ky)
                                - static_cast<std::ptrdiff_t>(half);
                            auto ix =
                                static_cast<std::ptrdiff_t>(x + kx)
                                - static_cast<std::ptrdiff_t>(half);
                            if (iy < 0 || ix < 0
                                || iy >= static_cast<std::ptrdiff_t>(h)
                                || ix >= static_cast<std::ptrdiff_t>(w))
                                continue;
                            acc += tap(oc, c, ky, kx)
                                * in[(c * h
                                      + static_cast<std::size_t>(iy))
                                         * w
                                     + static_cast<std::size_t>(ix)];
                        }
                    }
                }
                out[(oc * h + y) * w + x] = acc;
            }
        }
    }
    return out;
}

// ------------------------------------------------------------------
// AvgPool2d

TensorMeta
AvgPool2d::compile(const ckks::CkksContext &ctx, const TensorMeta &in)
{
    requireArg(!compiled_, "layer compiled twice");
    std::size_t slots = ctx.slots();
    requireArg(isPowerOfTwo(window_) && window_ >= 2,
               "pool window must be a power of two >= 2");
    requireArg(in.chunkCount == 1,
               "AvgPool2d requires a single-chunk input");
    requireArg(in.shape.dims.size() == 3,
               "AvgPool2d expects a (C, H, W) input, got ",
               in.shape.str());
    requireArg(in.shape.dims[1] % window_ == 0
                   && in.shape.dims[2] % window_ == 0,
               "pool window must divide H and W");
    requireArg(in.layout.slotSpan(in.shape) <= slots,
               "AvgPool2d input layout exceeds the slot capacity");
    requireArg(in.levelCount >= 2,
               "AvgPool2d needs one multiplicative level");

    std::size_t sy = in.layout.stride[1];
    std::size_t sx = in.layout.stride[2];
    // Doubling folds per axis: x first, then y.
    steps_.clear();
    for (std::size_t d = 1; d < window_; d *= 2)
        steps_.push_back(static_cast<s64>(d * sx));
    for (std::size_t d = 1; d < window_; d *= 2)
        steps_.push_back(static_cast<s64>(d * sy));

    in_ = in;
    out_.shape = {{in.shape.dims[0], in.shape.dims[1] / window_,
                   in.shape.dims[2] / window_}};
    out_.layout.offset = in.layout.offset;
    out_.layout.stride = {in.layout.stride[0], window_ * sy,
                          window_ * sx};
    out_.chunkCount = 1;
    out_.levelCount = in.levelCount - 1;
    out_.scale = mulRescaleScale(ctx, in.scale, ctx.params().scale(),
                                 in.levelCount);

    // The window-base mask, folding the 1/window^2 average into the
    // mask values so no extra level is spent.
    double inv = 1.0
        / static_cast<double>(window_ * window_);
    std::vector<ckks::Complex> z(slots, ckks::Complex(0, 0));
    for (std::size_t i = 0; i < out_.shape.numel(); ++i)
        z[out_.layout.slotOf(out_.shape, i)] = ckks::Complex(inv, 0);
    mask_ = ctx.encoder().encode(z, ctx.params().scale(),
                                 in.levelCount);
    compiled_ = true;
    return out_;
}

std::vector<s64>
AvgPool2d::requiredRotations() const
{
    requireCompiled();
    return steps_;
}

Cts
AvgPool2d::apply(const NnEngine &engine, const Cts &in) const
{
    requireCompiled();
    const auto &beval = engine.batched();
    Cts t = in;
    for (s64 s : steps_)
        t = beval.add(t, beval.rotate(t, s));
    return beval.rescale(beval.multiplyPlain(t, *mask_));
}

std::vector<double>
AvgPool2d::applyPlain(const std::vector<double> &in) const
{
    requireCompiled();
    std::size_t c = in_.shape.dims[0];
    std::size_t h = in_.shape.dims[1];
    std::size_t w = in_.shape.dims[2];
    std::size_t oh = h / window_;
    std::size_t ow = w / window_;
    std::vector<double> out(c * oh * ow, 0.0);
    for (std::size_t ch = 0; ch < c; ++ch)
        for (std::size_t y = 0; y < oh; ++y)
            for (std::size_t x = 0; x < ow; ++x) {
                double acc = 0;
                for (std::size_t dy = 0; dy < window_; ++dy)
                    for (std::size_t dx = 0; dx < window_; ++dx)
                        acc += in[(ch * h + y * window_ + dy) * w
                                  + x * window_ + dx];
                out[(ch * oh + y) * ow + x] = acc
                    / static_cast<double>(window_ * window_);
            }
    return out;
}

EvalOpCounts
AvgPool2d::modeledOps() const
{
    requireCompiled();
    auto rounds = static_cast<double>(steps_.size());
    EvalOpCounts c;
    c.hrotate = rounds;
    c.ksHoist = rounds;
    c.ksTail = rounds;
    c.hadd = rounds;
    c.cmult = 1;
    c.rescale = 1;
    return c;
}

perf::KernelCost
AvgPool2d::costAt(const perf::CostModel &model,
                  std::size_t input_lc) const
{
    requireCompiled();
    auto rounds = static_cast<double>(steps_.size());
    perf::KernelCost c =
        rounds * (model.op(perf::OpKind::HRotate, input_lc)
                  + model.op(perf::OpKind::HAdd, input_lc));
    c += model.op(perf::OpKind::CMult, input_lc);
    c += model.op(perf::OpKind::Rescale, input_lc);
    return c;
}

// ------------------------------------------------------------------
// SumReduce

TensorMeta
SumReduce::compile(const ckks::CkksContext &ctx, const TensorMeta &in)
{
    requireArg(!compiled_, "layer compiled twice");
    std::size_t slots = ctx.slots();
    requireArg(in.chunkCount == 1,
               "SumReduce requires a single-chunk input");
    requireArg(in.layout.slotSpan(in.shape) <= slots,
               "SumReduce input layout exceeds the slot capacity");
    std::size_t m = in.shape.numel();
    requireArg(isPowerOfTwo(m) && m >= 2,
               "SumReduce needs a power-of-two element count");

    // The layout must enumerate an arithmetic slot progression: the
    // generalized row-major check with a uniform base stride.
    std::size_t base = in.layout.stride.back();
    std::size_t expect = base;
    for (std::size_t i = in.shape.dims.size(); i-- > 0;) {
        requireArg(in.layout.stride[i] == expect,
                   "SumReduce requires a uniformly strided layout");
        expect *= in.shape.dims[i];
    }

    hoisted_ = perf::hoistedFoldWins(ctx.params(), in.levelCount, m);
    steps_.clear();
    if (hoisted_) {
        for (std::size_t k = 1; k < m; ++k)
            steps_.push_back(static_cast<s64>(k * base));
    } else {
        for (std::size_t k = 1; k < m; k *= 2)
            steps_.push_back(static_cast<s64>(k * base));
    }

    in_ = in;
    out_.shape = {{1}};
    out_.layout.offset = in.layout.offset;
    out_.layout.stride = {base};
    out_.chunkCount = 1;
    out_.levelCount = in.levelCount;
    out_.scale = in.scale;
    compiled_ = true;
    return out_;
}

std::vector<s64>
SumReduce::requiredRotations() const
{
    requireCompiled();
    return steps_;
}

Cts
SumReduce::apply(const NnEngine &engine, const Cts &in) const
{
    requireCompiled();
    const auto &beval = engine.batched();
    if (hoisted_) {
        auto rots = beval.rotateManyBatch(in, steps_);
        Cts acc = in;
        for (auto &r : rots)
            acc = beval.add(acc, r);
        return acc;
    }
    Cts acc = in;
    for (s64 s : steps_)
        acc = beval.add(acc, beval.rotate(acc, s));
    return acc;
}

std::vector<double>
SumReduce::applyPlain(const std::vector<double> &in) const
{
    double acc = 0;
    for (double v : in)
        acc += v;
    return {acc};
}

EvalOpCounts
SumReduce::modeledOps() const
{
    requireCompiled();
    auto r = static_cast<double>(steps_.size());
    EvalOpCounts c;
    c.hrotate = r;
    c.ksTail = r;
    c.ksHoist = hoisted_ ? 1 : r;
    c.hadd = r;
    return c;
}

perf::KernelCost
SumReduce::costAt(const perf::CostModel &model,
                  std::size_t input_lc) const
{
    requireCompiled();
    // rotateFold() re-decides hoisted-vs-doubling at the queried
    // level, exactly as a rebind there would (compile runs the same
    // perf::hoistedFoldWins argmin).
    return model.rotateFold(input_lc, in_.shape.numel());
}

// ------------------------------------------------------------------
// PolyActivation

PolyActivation::PolyActivation(PolyApprox approx)
    : approx_(std::move(approx))
{
    requireArg(approx_.coeffs.size() >= 2,
               "activation must have degree >= 1");
    constexpr double kEps = 1e-12;

    // Active terms; zero coefficients cost nothing.
    for (std::size_t k = 1; k < approx_.coeffs.size(); ++k)
        if (std::abs(approx_.coeffs[k]) > kEps)
            terms_.emplace_back(k, approx_.coeffs[k]);
    requireArg(!terms_.empty(), "activation has no nonconstant term");
    hasConstant_ = std::abs(approx_.coeffs[0]) > kEps;

    // Power-ladder closure: x^k = x^ceil(k/2) * x^floor(k/2).
    std::vector<std::size_t> work;
    for (const auto &[k, c] : terms_)
        if (k >= 2)
            work.push_back(k);
    std::vector<std::size_t> needed;
    while (!work.empty()) {
        std::size_t k = work.back();
        work.pop_back();
        if (k < 2
            || std::find(needed.begin(), needed.end(), k)
                != needed.end())
            continue;
        needed.push_back(k);
        work.push_back((k + 1) / 2);
        work.push_back(k / 2);
    }
    std::sort(needed.begin(), needed.end());
    powers_ = std::move(needed);

    depth_[1] = 0;
    for (std::size_t k : powers_)
        depth_[k] =
            std::max(depth_.at((k + 1) / 2), depth_.at(k / 2)) + 1;
    for (const auto &[k, c] : terms_)
        maxDepth_ = std::max(maxDepth_, depth_.at(k));
}

std::string
PolyActivation::name() const
{
    return "PolyActivation(" + approx_.name + ")";
}

TensorMeta
PolyActivation::compile(const ckks::CkksContext &ctx,
                        const TensorMeta &in)
{
    requireArg(!compiled_, "layer compiled twice");
    requireArg(in.levelCount >= maxDepth_ + 2,
               name(), " needs ", maxDepth_ + 2,
               " level counts, input is at ", in.levelCount);

    in_ = in;
    out_ = in;
    out_.levelCount = in.levelCount - maxDepth_ - 1;
    out_.scale = ctx.params().scale(); // exact, by term steering
    compiled_ = true;
    return out_;
}

std::size_t
PolyActivation::levelCost() const
{
    return maxDepth_ + 1;
}

Cts
PolyActivation::apply(const NnEngine &engine, const Cts &in) const
{
    requireCompiled();
    // Exact-scale steering needs the full ladder depth plus the term
    // rescale: at levelCount == maxDepth + 1 the last rescale would
    // drop below level 0 and the steering would silently emit a
    // wrong-scale ciphertext — fail loudly instead (the off-by-one
    // guard; compile() enforces the same bound on the compiled meta,
    // this catches callers running on a deeper-drained input).
    requireArg(!in.empty(), name(), ": empty batch");
    requireArg(in[0].levelCount() >= maxDepth_ + 2,
               name(), ": input at level count ", in[0].levelCount(),
               " cannot host the power ladder plus the exact-scale "
               "rescale (needs >= ",
               maxDepth_ + 2,
               "); the last rescale would drop below level 0");
    const auto &beval = engine.batched();
    double target = engine.ctx().params().scale();

    // The monomial ladder at natural levels.
    std::map<std::size_t, Cts> pows;
    pows.emplace(1, in);
    for (std::size_t k : powers_) {
        const Cts &a = pows.at((k + 1) / 2);
        const Cts &b = pows.at(k / 2);
        std::size_t lc =
            std::min(a[0].levelCount(), b[0].levelCount());
        pows.emplace(k, beval.rescale(beval.multiply(
                            beval.dropToLevelCount(a, lc),
                            beval.dropToLevelCount(b, lc))));
    }

    // Steer every term to (min power level - 1, target scale).
    std::size_t lmin = in[0].levelCount() - maxDepth_;
    Cts acc;
    bool first = true;
    for (const auto &[k, c] : terms_) {
        auto term = beval.multiplyConstToScale(
            beval.dropToLevelCount(pows.at(k), lmin), c, target);
        if (first) {
            acc = std::move(term);
            first = false;
        } else {
            acc = beval.add(acc, term);
        }
    }
    if (hasConstant_) {
        auto pt = engine.ctx().encoder().encodeConstant(
            ckks::Complex(approx_.coeffs[0], 0), acc[0].scale,
            acc[0].levelCount());
        acc = beval.addPlain(acc, pt);
    }
    return acc;
}

std::vector<double>
PolyActivation::applyPlain(const std::vector<double> &in) const
{
    std::vector<double> out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = approx_.evalPlain(in[i]);
    return out;
}

EvalOpCounts
PolyActivation::modeledOps() const
{
    requireCompiled();
    auto np = static_cast<double>(powers_.size());
    auto nt = static_cast<double>(terms_.size());
    EvalOpCounts c;
    c.hmult = np;
    // Every HMULT relinearizes through one key-switch head + tail.
    c.ksHoist = np;
    c.ksTail = np;
    c.cmult = nt;
    c.rescale = np + nt;
    c.hadd = nt - 1 + (hasConstant_ ? 1 : 0);
    // Elementwise over every chunk: chunks ride the batch dimension.
    return static_cast<double>(in_.chunkCount) * c;
}

perf::KernelCost
PolyActivation::costAt(const perf::CostModel &model,
                       std::size_t input_lc) const
{
    requireCompiled();
    // Ladder + steering priced at the entry level (a conservative
    // bound on the descending ladder), once per chunk.
    return static_cast<double>(in_.chunkCount)
        * model.polyActivation(input_lc, powers_.size(),
                               terms_.size());
}

// ------------------------------------------------------------------
// Bootstrap

TensorMeta
Bootstrap::compile(const ckks::CkksContext &ctx, const TensorMeta &in)
{
    requireArg(!compiled_, "layer compiled twice");
    requireArg(in.levelCount >= 2,
               name(), " needs an input at level count >= 2 (the "
                       "SlotToCoeff stage consumes one level), got ",
               in.levelCount);
    requireArg(liveChunks_.empty()
                   || liveChunks_.size() == in.chunkCount,
               name(), " live-chunk mask size mismatch: mask has ",
               liveChunks_.size(), " entries, input has ",
               in.chunkCount, " chunks");
    slots_ = ctx.slots();
    raisedLc_ = ctx.tower().numQ();
    boot_ = std::make_shared<boot::Bootstrapper>(ctx, sine_);

    in_ = in;
    out_ = in; // shape / layout / chunk count pass through
    auto refresh =
        boot::Bootstrapper::predictRefresh(ctx, sine_, in.levelCount);
    out_.levelCount = refresh.levelCount;
    out_.scale = refresh.scale;
    compiled_ = true;
    return out_;
}

void
Bootstrap::setLiveChunks(std::vector<bool> live)
{
    requireState(!compiled_,
                 name(), " live-chunk mask must be set before "
                         "compile()");
    liveChunks_ = std::move(live);
}

std::size_t
Bootstrap::liveChunkCount() const
{
    requireCompiled();
    if (liveChunks_.empty())
        return in_.chunkCount;
    return static_cast<std::size_t>(
        std::count(liveChunks_.begin(), liveChunks_.end(), true));
}

std::vector<s64>
Bootstrap::requiredRotations() const
{
    requireCompiled();
    return boot::Bootstrapper::requiredRotations(slots_);
}

std::vector<s64>
Bootstrap::requiredConjRotations() const
{
    requireCompiled();
    return boot::Bootstrapper::requiredConjRotations(slots_);
}

Cts
Bootstrap::apply(const NnEngine &engine, const Cts &in) const
{
    requireCompiled();
    // Chunks are just more batch slots: the whole (sample x chunk)
    // stream refreshes through one shared pipeline.
    if (liveChunks_.empty() || liveChunkCount() == in_.chunkCount)
        return boot_->bootstrapBatch(engine.batched(), in);

    // Lazy refresh: gather the live chunks of every sample, refresh
    // them in one batch, and rebuild dead chunks as well-formed zero
    // ciphertexts at the refreshed meta (their values are dead
    // downstream — no layer reads them — but shapes and levels must
    // stay uniform for the batched ops).
    std::size_t chunks = in_.chunkCount;
    requireArg(!in.empty() && in.size() % chunks == 0,
               name(), " batch is not a multiple of the chunk count");
    std::size_t batch = in.size() / chunks;
    Cts live;
    live.reserve(batch * liveChunkCount());
    for (std::size_t s = 0; s < batch; ++s)
        for (std::size_t c = 0; c < chunks; ++c)
            if (liveChunks_[c])
                live.push_back(in[s * chunks + c]);
    Cts refreshed = boot_->bootstrapBatch(engine.batched(), live);

    const auto &tower = engine.ctx().tower();
    Cts out(in.size());
    std::size_t next = 0;
    for (std::size_t s = 0; s < batch; ++s) {
        for (std::size_t c = 0; c < chunks; ++c) {
            if (liveChunks_[c]) {
                out[s * chunks + c] = std::move(refreshed[next++]);
                continue;
            }
            ckks::Ciphertext z;
            z.c0 = rns::RnsPolynomial::zeros(tower, out_.levelCount,
                                             rns::Domain::Eval);
            z.c1 = rns::RnsPolynomial::zeros(tower, out_.levelCount,
                                             rns::Domain::Eval);
            z.scale = out_.scale;
            out[s * chunks + c] = std::move(z);
        }
    }
    return out;
}

EvalOpCounts
Bootstrap::modeledOps() const
{
    requireCompiled();
    return static_cast<double>(liveChunkCount())
        * boot_->modeledOps();
}

perf::KernelCost
Bootstrap::costAt(const perf::CostModel &model,
                  std::size_t input_lc) const
{
    requireCompiled();
    return static_cast<double>(liveChunkCount())
        * model.bootstrap(
            input_lc, raisedLc_, out_.levelCount, slots_,
            static_cast<std::size_t>(sine_.taylorTerms),
            static_cast<std::size_t>(sine_.doublings));
}

const boot::Bootstrapper &
Bootstrap::bootstrapper() const
{
    requireCompiled();
    return *boot_;
}

// ------------------------------------------------------------------
// LevelDrop

LevelDrop::LevelDrop(std::size_t target_level_count)
    : target_(target_level_count)
{
    requireArg(target_ >= 1, "LevelDrop target must be >= 1 limb");
}

TensorMeta
LevelDrop::compile(const ckks::CkksContext &ctx, const TensorMeta &in)
{
    (void)ctx;
    requireArg(!compiled_, "layer compiled twice");
    requireArg(in.levelCount >= target_,
               name(), " cannot raise the level: input at ",
               in.levelCount, ", target ", target_);
    in_ = in;
    out_ = in;
    out_.levelCount = target_;
    compiled_ = true;
    return out_;
}

Cts
LevelDrop::apply(const NnEngine &engine, const Cts &in) const
{
    requireCompiled();
    if (target_ == in_.levelCount)
        return in; // identity: nothing to truncate
    return engine.batched().dropToLevelCount(in, target_);
}

} // namespace tensorfhe::nn
