#include "nn/layers.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/modarith.hh"
#include "perf/cost.hh"

namespace tensorfhe::nn
{

namespace
{

/**
 * The exact scale produced by multiplyPlain(pt at scale ps) followed
 * by rescale at level `lc` — computed with the same double
 * arithmetic as the evaluator so compiled metas match runtime bits.
 */
double
mulRescaleScale(const ckks::CkksContext &ctx, double ct_scale,
                double pt_scale, std::size_t lc)
{
    return ct_scale * pt_scale
        / static_cast<double>(ctx.tower().prime(lc - 1));
}

} // namespace

void
Layer::requireCompiled() const
{
    requireState(compiled_, "layer used before compile()");
}

// ------------------------------------------------------------------
// MatvecLayer

TensorMeta
MatvecLayer::compile(const ckks::CkksContext &ctx, const TensorMeta &in)
{
    requireArg(!compiled_, "layer compiled twice");
    std::size_t slots = ctx.slots();
    requireArg(in.chunkCount == 1,
               name(), " requires a single-chunk input (got ",
               in.chunkCount, " chunks)");
    requireArg(in.layout.slotSpan(in.shape) <= slots,
               name(), " input layout exceeds the slot capacity");
    requireArg(in.levelCount >= 2,
               name(), " needs one multiplicative level, input is at "
                       "level count ",
               in.levelCount);

    in_ = in;
    // Output capacity must be checked before buildMatrix(): the
    // matrix writers index rows by output slot.
    out_.shape = outputShape(in.shape);
    requireArg(out_.shape.numel() <= slots,
               name(), " output exceeds the slot capacity");

    auto m = buildMatrix(ctx, in);
    plan_ = std::make_unique<boot::LinearTransformPlan>(ctx,
                                                        std::move(m));

    out_.layout = SlotLayout::contiguous(out_.shape);
    out_.chunkCount = 1;
    out_.levelCount = in.levelCount - 1;
    out_.scale = mulRescaleScale(ctx, in.scale, ctx.params().scale(),
                                 in.levelCount);

    auto bias = biasVector();
    if (!bias.empty()) {
        requireArg(bias.size() == out_.shape.numel(),
                   name(), " bias size mismatch");
        std::vector<ckks::Complex> z(slots, ckks::Complex(0, 0));
        for (std::size_t j = 0; j < bias.size(); ++j)
            z[out_.layout.slotOf(out_.shape, j)] =
                ckks::Complex(bias[j], 0);
        bias_ = ctx.encoder().encode(z, out_.scale, out_.levelCount);
    }
    compiled_ = true;
    return out_;
}

std::vector<s64>
MatvecLayer::requiredRotations() const
{
    requireCompiled();
    return plan_->requiredRotations();
}

const boot::LinearTransformPlan &
MatvecLayer::plan() const
{
    requireCompiled();
    return *plan_;
}

Cts
MatvecLayer::apply(const NnEngine &engine, const Cts &in) const
{
    requireCompiled();
    auto out = plan_->applyBatch(engine.batched(), in);
    if (bias_)
        out = engine.batched().addPlain(out, *bias_);
    return out;
}

EvalOpCounts
MatvecLayer::modeledOps() const
{
    requireCompiled();
    double baby = static_cast<double>(plan_->babyStepCount());
    double giant = static_cast<double>(plan_->giantStepCount());
    double diags = static_cast<double>(plan_->diagonalCount());
    EvalOpCounts c;
    c.hrotate = baby + giant;
    c.ksHoist = (baby > 0 ? 1 : 0) + giant;
    c.ksTail = baby + giant;
    c.cmult = diags;
    c.hadd = diags - 1 + (bias_ ? 1 : 0);
    c.rescale = 1;
    return c;
}

// ------------------------------------------------------------------
// Dense

Dense::Dense(std::vector<std::vector<double>> weights,
             std::vector<double> bias)
    : weights_(std::move(weights)), bias_(std::move(bias))
{
    requireArg(!weights_.empty() && !weights_[0].empty(),
               "Dense needs a nonempty weight matrix");
    for (const auto &row : weights_)
        requireArg(row.size() == weights_[0].size(),
                   "Dense weight rows must have equal length");
    requireArg(bias_.empty() || bias_.size() == weights_.size(),
               "Dense bias size mismatch");
}

boot::SlotMatrix
Dense::buildMatrix(const ckks::CkksContext &ctx,
                   const TensorMeta &in) const
{
    std::size_t slots = ctx.slots();
    requireArg(in.shape.numel() == cols(),
               "Dense expects ", cols(), " inputs, got ",
               in.shape.str());
    boot::SlotMatrix m(
        slots, std::vector<ckks::Complex>(slots, ckks::Complex(0, 0)));
    for (std::size_t j = 0; j < rows(); ++j)
        for (std::size_t k = 0; k < cols(); ++k)
            m[j][in.layout.slotOf(in.shape, k)] +=
                ckks::Complex(weights_[j][k], 0);
    return m;
}

TensorShape
Dense::outputShape(const TensorShape &) const
{
    return {{rows()}};
}

std::vector<double>
Dense::applyPlain(const std::vector<double> &in) const
{
    std::vector<double> out(rows(), 0.0);
    for (std::size_t j = 0; j < rows(); ++j) {
        for (std::size_t k = 0; k < cols(); ++k)
            out[j] += weights_[j][k] * in[k];
        if (!bias_.empty())
            out[j] += bias_[j];
    }
    return out;
}

// ------------------------------------------------------------------
// Conv2d

Conv2d::Conv2d(std::size_t out_channels, std::size_t kernel,
               std::vector<double> weights, std::vector<double> bias)
    : outChannels_(out_channels), kernel_(kernel),
      weights_(std::move(weights)), bias_(std::move(bias))
{
    requireArg(outChannels_ >= 1, "Conv2d needs >= 1 output channel");
    requireArg(kernel_ % 2 == 1, "Conv2d kernel must be odd");
    requireArg(bias_.empty() || bias_.size() == outChannels_,
               "Conv2d bias size mismatch");
}

double
Conv2d::tap(std::size_t oc, std::size_t ic, std::size_t ky,
            std::size_t kx) const
{
    std::size_t in_c = in_.shape.dims[0];
    return weights_[((oc * in_c + ic) * kernel_ + ky) * kernel_ + kx];
}

boot::SlotMatrix
Conv2d::buildMatrix(const ckks::CkksContext &ctx,
                    const TensorMeta &in) const
{
    std::size_t slots = ctx.slots();
    requireArg(in.shape.dims.size() == 3,
               "Conv2d expects a (C, H, W) input, got ",
               in.shape.str());
    std::size_t ic = in.shape.dims[0];
    std::size_t h = in.shape.dims[1];
    std::size_t w = in.shape.dims[2];
    requireArg(weights_.size() == outChannels_ * ic * kernel_ * kernel_,
               "Conv2d weight count mismatch: expected ",
               outChannels_ * ic * kernel_ * kernel_, ", got ",
               weights_.size());
    std::size_t half = kernel_ / 2;
    std::size_t ic_ky_kx = ic * kernel_ * kernel_;

    boot::SlotMatrix m(
        slots, std::vector<ckks::Complex>(slots, ckks::Complex(0, 0)));
    for (std::size_t oc = 0; oc < outChannels_; ++oc) {
        for (std::size_t y = 0; y < h; ++y) {
            for (std::size_t x = 0; x < w; ++x) {
                std::size_t row = (oc * h + y) * w + x;
                for (std::size_t t = 0; t < ic_ky_kx; ++t) {
                    std::size_t c = t / (kernel_ * kernel_);
                    std::size_t ky = (t / kernel_) % kernel_;
                    std::size_t kx = t % kernel_;
                    auto iy = static_cast<std::ptrdiff_t>(y + ky)
                        - static_cast<std::ptrdiff_t>(half);
                    auto ix = static_cast<std::ptrdiff_t>(x + kx)
                        - static_cast<std::ptrdiff_t>(half);
                    if (iy < 0 || ix < 0
                        || iy >= static_cast<std::ptrdiff_t>(h)
                        || ix >= static_cast<std::ptrdiff_t>(w))
                        continue; // zero padding
                    std::size_t flat =
                        (c * h + static_cast<std::size_t>(iy)) * w
                        + static_cast<std::size_t>(ix);
                    m[row][in.layout.slotOf(in.shape, flat)] +=
                        ckks::Complex(tap(oc, c, ky, kx), 0);
                }
            }
        }
    }
    return m;
}

TensorShape
Conv2d::outputShape(const TensorShape &in) const
{
    return {{outChannels_, in.dims[1], in.dims[2]}};
}

std::vector<double>
Conv2d::biasVector() const
{
    if (bias_.empty())
        return {};
    std::size_t hw = in_.shape.dims[1] * in_.shape.dims[2];
    std::vector<double> out(outChannels_ * hw);
    for (std::size_t oc = 0; oc < outChannels_; ++oc)
        for (std::size_t i = 0; i < hw; ++i)
            out[oc * hw + i] = bias_[oc];
    return out;
}

std::vector<double>
Conv2d::applyPlain(const std::vector<double> &in) const
{
    requireCompiled();
    std::size_t ic = in_.shape.dims[0];
    std::size_t h = in_.shape.dims[1];
    std::size_t w = in_.shape.dims[2];
    std::size_t half = kernel_ / 2;
    std::vector<double> out(outChannels_ * h * w, 0.0);
    for (std::size_t oc = 0; oc < outChannels_; ++oc) {
        for (std::size_t y = 0; y < h; ++y) {
            for (std::size_t x = 0; x < w; ++x) {
                double acc = bias_.empty() ? 0.0 : bias_[oc];
                for (std::size_t c = 0; c < ic; ++c) {
                    for (std::size_t ky = 0; ky < kernel_; ++ky) {
                        for (std::size_t kx = 0; kx < kernel_; ++kx) {
                            auto iy =
                                static_cast<std::ptrdiff_t>(y + ky)
                                - static_cast<std::ptrdiff_t>(half);
                            auto ix =
                                static_cast<std::ptrdiff_t>(x + kx)
                                - static_cast<std::ptrdiff_t>(half);
                            if (iy < 0 || ix < 0
                                || iy >= static_cast<std::ptrdiff_t>(h)
                                || ix >= static_cast<std::ptrdiff_t>(w))
                                continue;
                            acc += tap(oc, c, ky, kx)
                                * in[(c * h
                                      + static_cast<std::size_t>(iy))
                                         * w
                                     + static_cast<std::size_t>(ix)];
                        }
                    }
                }
                out[(oc * h + y) * w + x] = acc;
            }
        }
    }
    return out;
}

// ------------------------------------------------------------------
// AvgPool2d

TensorMeta
AvgPool2d::compile(const ckks::CkksContext &ctx, const TensorMeta &in)
{
    requireArg(!compiled_, "layer compiled twice");
    std::size_t slots = ctx.slots();
    requireArg(isPowerOfTwo(window_) && window_ >= 2,
               "pool window must be a power of two >= 2");
    requireArg(in.chunkCount == 1,
               "AvgPool2d requires a single-chunk input");
    requireArg(in.shape.dims.size() == 3,
               "AvgPool2d expects a (C, H, W) input, got ",
               in.shape.str());
    requireArg(in.shape.dims[1] % window_ == 0
                   && in.shape.dims[2] % window_ == 0,
               "pool window must divide H and W");
    requireArg(in.layout.slotSpan(in.shape) <= slots,
               "AvgPool2d input layout exceeds the slot capacity");
    requireArg(in.levelCount >= 2,
               "AvgPool2d needs one multiplicative level");

    std::size_t sy = in.layout.stride[1];
    std::size_t sx = in.layout.stride[2];
    // Doubling folds per axis: x first, then y.
    steps_.clear();
    for (std::size_t d = 1; d < window_; d *= 2)
        steps_.push_back(static_cast<s64>(d * sx));
    for (std::size_t d = 1; d < window_; d *= 2)
        steps_.push_back(static_cast<s64>(d * sy));

    in_ = in;
    out_.shape = {{in.shape.dims[0], in.shape.dims[1] / window_,
                   in.shape.dims[2] / window_}};
    out_.layout.offset = in.layout.offset;
    out_.layout.stride = {in.layout.stride[0], window_ * sy,
                          window_ * sx};
    out_.chunkCount = 1;
    out_.levelCount = in.levelCount - 1;
    out_.scale = mulRescaleScale(ctx, in.scale, ctx.params().scale(),
                                 in.levelCount);

    // The window-base mask, folding the 1/window^2 average into the
    // mask values so no extra level is spent.
    double inv = 1.0
        / static_cast<double>(window_ * window_);
    std::vector<ckks::Complex> z(slots, ckks::Complex(0, 0));
    for (std::size_t i = 0; i < out_.shape.numel(); ++i)
        z[out_.layout.slotOf(out_.shape, i)] = ckks::Complex(inv, 0);
    mask_ = ctx.encoder().encode(z, ctx.params().scale(),
                                 in.levelCount);
    compiled_ = true;
    return out_;
}

std::vector<s64>
AvgPool2d::requiredRotations() const
{
    requireCompiled();
    return steps_;
}

Cts
AvgPool2d::apply(const NnEngine &engine, const Cts &in) const
{
    requireCompiled();
    const auto &beval = engine.batched();
    Cts t = in;
    for (s64 s : steps_)
        t = beval.add(t, beval.rotate(t, s));
    return beval.rescale(beval.multiplyPlain(t, *mask_));
}

std::vector<double>
AvgPool2d::applyPlain(const std::vector<double> &in) const
{
    requireCompiled();
    std::size_t c = in_.shape.dims[0];
    std::size_t h = in_.shape.dims[1];
    std::size_t w = in_.shape.dims[2];
    std::size_t oh = h / window_;
    std::size_t ow = w / window_;
    std::vector<double> out(c * oh * ow, 0.0);
    for (std::size_t ch = 0; ch < c; ++ch)
        for (std::size_t y = 0; y < oh; ++y)
            for (std::size_t x = 0; x < ow; ++x) {
                double acc = 0;
                for (std::size_t dy = 0; dy < window_; ++dy)
                    for (std::size_t dx = 0; dx < window_; ++dx)
                        acc += in[(ch * h + y * window_ + dy) * w
                                  + x * window_ + dx];
                out[(ch * oh + y) * ow + x] = acc
                    / static_cast<double>(window_ * window_);
            }
    return out;
}

EvalOpCounts
AvgPool2d::modeledOps() const
{
    requireCompiled();
    auto rounds = static_cast<double>(steps_.size());
    EvalOpCounts c;
    c.hrotate = rounds;
    c.ksHoist = rounds;
    c.ksTail = rounds;
    c.hadd = rounds;
    c.cmult = 1;
    c.rescale = 1;
    return c;
}

// ------------------------------------------------------------------
// SumReduce

TensorMeta
SumReduce::compile(const ckks::CkksContext &ctx, const TensorMeta &in)
{
    requireArg(!compiled_, "layer compiled twice");
    std::size_t slots = ctx.slots();
    requireArg(in.chunkCount == 1,
               "SumReduce requires a single-chunk input");
    requireArg(in.layout.slotSpan(in.shape) <= slots,
               "SumReduce input layout exceeds the slot capacity");
    std::size_t m = in.shape.numel();
    requireArg(isPowerOfTwo(m) && m >= 2,
               "SumReduce needs a power-of-two element count");

    // The layout must enumerate an arithmetic slot progression: the
    // generalized row-major check with a uniform base stride.
    std::size_t base = in.layout.stride.back();
    std::size_t expect = base;
    for (std::size_t i = in.shape.dims.size(); i-- > 0;) {
        requireArg(in.layout.stride[i] == expect,
                   "SumReduce requires a uniformly strided layout");
        expect *= in.shape.dims[i];
    }

    hoisted_ = perf::hoistedFoldWins(ctx.params(), in.levelCount, m);
    steps_.clear();
    if (hoisted_) {
        for (std::size_t k = 1; k < m; ++k)
            steps_.push_back(static_cast<s64>(k * base));
    } else {
        for (std::size_t k = 1; k < m; k *= 2)
            steps_.push_back(static_cast<s64>(k * base));
    }

    in_ = in;
    out_.shape = {{1}};
    out_.layout.offset = in.layout.offset;
    out_.layout.stride = {base};
    out_.chunkCount = 1;
    out_.levelCount = in.levelCount;
    out_.scale = in.scale;
    compiled_ = true;
    return out_;
}

std::vector<s64>
SumReduce::requiredRotations() const
{
    requireCompiled();
    return steps_;
}

Cts
SumReduce::apply(const NnEngine &engine, const Cts &in) const
{
    requireCompiled();
    const auto &beval = engine.batched();
    if (hoisted_) {
        auto rots = beval.rotateManyBatch(in, steps_);
        Cts acc = in;
        for (auto &r : rots)
            acc = beval.add(acc, r);
        return acc;
    }
    Cts acc = in;
    for (s64 s : steps_)
        acc = beval.add(acc, beval.rotate(acc, s));
    return acc;
}

std::vector<double>
SumReduce::applyPlain(const std::vector<double> &in) const
{
    double acc = 0;
    for (double v : in)
        acc += v;
    return {acc};
}

EvalOpCounts
SumReduce::modeledOps() const
{
    requireCompiled();
    auto r = static_cast<double>(steps_.size());
    EvalOpCounts c;
    c.hrotate = r;
    c.ksTail = r;
    c.ksHoist = hoisted_ ? 1 : r;
    c.hadd = r;
    return c;
}

// ------------------------------------------------------------------
// PolyActivation

PolyActivation::PolyActivation(PolyApprox approx)
    : approx_(std::move(approx))
{
    requireArg(approx_.coeffs.size() >= 2,
               "activation must have degree >= 1");
    constexpr double kEps = 1e-12;

    // Active terms; zero coefficients cost nothing.
    for (std::size_t k = 1; k < approx_.coeffs.size(); ++k)
        if (std::abs(approx_.coeffs[k]) > kEps)
            terms_.emplace_back(k, approx_.coeffs[k]);
    requireArg(!terms_.empty(), "activation has no nonconstant term");
    hasConstant_ = std::abs(approx_.coeffs[0]) > kEps;

    // Power-ladder closure: x^k = x^ceil(k/2) * x^floor(k/2).
    std::vector<std::size_t> work;
    for (const auto &[k, c] : terms_)
        if (k >= 2)
            work.push_back(k);
    std::vector<std::size_t> needed;
    while (!work.empty()) {
        std::size_t k = work.back();
        work.pop_back();
        if (k < 2
            || std::find(needed.begin(), needed.end(), k)
                != needed.end())
            continue;
        needed.push_back(k);
        work.push_back((k + 1) / 2);
        work.push_back(k / 2);
    }
    std::sort(needed.begin(), needed.end());
    powers_ = std::move(needed);

    depth_[1] = 0;
    for (std::size_t k : powers_)
        depth_[k] =
            std::max(depth_.at((k + 1) / 2), depth_.at(k / 2)) + 1;
    for (const auto &[k, c] : terms_)
        maxDepth_ = std::max(maxDepth_, depth_.at(k));
}

std::string
PolyActivation::name() const
{
    return "PolyActivation(" + approx_.name + ")";
}

TensorMeta
PolyActivation::compile(const ckks::CkksContext &ctx,
                        const TensorMeta &in)
{
    requireArg(!compiled_, "layer compiled twice");
    requireArg(in.levelCount >= maxDepth_ + 2,
               name(), " needs ", maxDepth_ + 2,
               " level counts, input is at ", in.levelCount);

    in_ = in;
    out_ = in;
    out_.levelCount = in.levelCount - maxDepth_ - 1;
    out_.scale = ctx.params().scale(); // exact, by term steering
    compiled_ = true;
    return out_;
}

std::size_t
PolyActivation::levelCost() const
{
    return maxDepth_ + 1;
}

Cts
PolyActivation::apply(const NnEngine &engine, const Cts &in) const
{
    requireCompiled();
    const auto &beval = engine.batched();
    double target = engine.ctx().params().scale();

    // The monomial ladder at natural levels.
    std::map<std::size_t, Cts> pows;
    pows.emplace(1, in);
    for (std::size_t k : powers_) {
        const Cts &a = pows.at((k + 1) / 2);
        const Cts &b = pows.at(k / 2);
        std::size_t lc =
            std::min(a[0].levelCount(), b[0].levelCount());
        pows.emplace(k, beval.rescale(beval.multiply(
                            beval.dropToLevelCount(a, lc),
                            beval.dropToLevelCount(b, lc))));
    }

    // Steer every term to (min power level - 1, target scale).
    std::size_t lmin = in[0].levelCount() - maxDepth_;
    Cts acc;
    bool first = true;
    for (const auto &[k, c] : terms_) {
        auto term = beval.multiplyConstToScale(
            beval.dropToLevelCount(pows.at(k), lmin), c, target);
        if (first) {
            acc = std::move(term);
            first = false;
        } else {
            acc = beval.add(acc, term);
        }
    }
    if (hasConstant_) {
        auto pt = engine.ctx().encoder().encodeConstant(
            ckks::Complex(approx_.coeffs[0], 0), acc[0].scale,
            acc[0].levelCount());
        acc = beval.addPlain(acc, pt);
    }
    return acc;
}

std::vector<double>
PolyActivation::applyPlain(const std::vector<double> &in) const
{
    std::vector<double> out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = approx_.evalPlain(in[i]);
    return out;
}

EvalOpCounts
PolyActivation::modeledOps() const
{
    requireCompiled();
    auto np = static_cast<double>(powers_.size());
    auto nt = static_cast<double>(terms_.size());
    EvalOpCounts c;
    c.hmult = np;
    // Every HMULT relinearizes through one key-switch head + tail.
    c.ksHoist = np;
    c.ksTail = np;
    c.cmult = nt;
    c.rescale = np + nt;
    c.hadd = nt - 1 + (hasConstant_ ? 1 : 0);
    return c;
}

} // namespace tensorfhe::nn
