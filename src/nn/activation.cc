#include "nn/activation.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tensorfhe::nn
{

double
PolyApprox::evalPlain(double x) const
{
    double acc = 0;
    for (std::size_t k = coeffs.size(); k-- > 0;)
        acc = acc * x + coeffs[k];
    return acc;
}

PolyApprox
chebyshevFit(const std::function<double(double)> &f, double lo,
             double hi, std::size_t degree, std::string name)
{
    requireArg(hi > lo, "empty fit interval");
    requireArg(degree >= 1, "activation degree must be >= 1");

    // Chebyshev coefficients from the node sums (discrete
    // orthogonality at the Chebyshev points of [lo, hi]).
    std::size_t m = std::max<std::size_t>(64, 4 * degree + 16);
    std::vector<double> cheb(degree + 1, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
        double theta = M_PI * (static_cast<double>(j) + 0.5)
            / static_cast<double>(m);
        double t = std::cos(theta);
        double x = 0.5 * (hi - lo) * t + 0.5 * (hi + lo);
        double fx = f(x);
        for (std::size_t k = 0; k <= degree; ++k)
            cheb[k] += fx * std::cos(static_cast<double>(k) * theta);
    }
    for (std::size_t k = 0; k <= degree; ++k)
        cheb[k] *= 2.0 / static_cast<double>(m);
    cheb[0] *= 0.5;

    // Monomial coefficients in t via the T_k recurrence, then the
    // affine substitution t = a*x + b back onto [lo, hi].
    std::vector<double> tk_prev = {1.0};       // T_0
    std::vector<double> tk = {0.0, 1.0};       // T_1
    std::vector<double> in_t(degree + 1, 0.0); // poly in t
    in_t[0] = cheb[0];
    if (degree >= 1)
        for (std::size_t i = 0; i < tk.size(); ++i)
            in_t[i] += cheb[1] * tk[i];
    for (std::size_t k = 2; k <= degree; ++k) {
        // T_k = 2 t T_{k-1} - T_{k-2}.
        std::vector<double> next(k + 1, 0.0);
        for (std::size_t i = 0; i < tk.size(); ++i)
            next[i + 1] += 2.0 * tk[i];
        for (std::size_t i = 0; i < tk_prev.size(); ++i)
            next[i] -= tk_prev[i];
        tk_prev = std::move(tk);
        tk = std::move(next);
        for (std::size_t i = 0; i < tk.size(); ++i)
            in_t[i] += cheb[k] * tk[i];
    }

    double a = 2.0 / (hi - lo);
    double b = -(hi + lo) / (hi - lo);
    // Horner over polynomial coefficients: result(x) = in_t(a x + b).
    std::vector<double> out = {0.0};
    for (std::size_t k = in_t.size(); k-- > 0;) {
        // out = out * (a x + b) + in_t[k].
        std::vector<double> next(out.size() + 1, 0.0);
        for (std::size_t i = 0; i < out.size(); ++i) {
            next[i] += out[i] * b;
            next[i + 1] += out[i] * a;
        }
        next[0] += in_t[k];
        while (next.size() > 1 && next.back() == 0.0)
            next.pop_back();
        out = std::move(next);
    }
    out.resize(degree + 1, 0.0);

    PolyApprox p;
    p.name = std::move(name);
    p.coeffs = std::move(out);
    p.lo = lo;
    p.hi = hi;
    return p;
}

PolyApprox
sigmoidApprox(std::size_t degree)
{
    if (degree == 3) {
        // The HELR degree-3 sigmoid (paper ref [30]); identical to
        // the LR workload's polynomial so both paths are comparable.
        // Its least-squares calibration holds to ~5% on [-4, 4] and
        // degrades quickly outside.
        PolyApprox p;
        p.name = "sigmoid3";
        p.coeffs = {0.5, 0.197, 0.0, -0.004};
        p.lo = -4.0;
        p.hi = 4.0;
        return p;
    }
    return chebyshevFit(
        [](double x) { return 1.0 / (1.0 + std::exp(-x)); }, -6.0, 6.0,
        degree, "sigmoid" + std::to_string(degree));
}

PolyApprox
tanhApprox(std::size_t degree)
{
    return chebyshevFit([](double x) { return std::tanh(x); }, -2.0,
                        2.0, degree,
                        "tanh" + std::to_string(degree));
}

PolyApprox
reluApprox(std::size_t degree)
{
    return chebyshevFit([](double x) { return x > 0 ? x : 0.0; }, -1.0,
                        1.0, degree,
                        "relu" + std::to_string(degree));
}

double
maxAbsError(const PolyApprox &approx,
            const std::function<double(double)> &f, std::size_t samples)
{
    double worst = 0;
    for (std::size_t i = 0; i < samples; ++i) {
        double x = approx.lo
            + (approx.hi - approx.lo) * static_cast<double>(i)
                / static_cast<double>(samples - 1);
        worst = std::max(worst, std::abs(approx.evalPlain(x) - f(x)));
    }
    return worst;
}

} // namespace tensorfhe::nn
