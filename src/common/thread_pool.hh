/**
 * @file
 * A small persistent thread pool exposing parallelFor.
 *
 * This is the CUDA-core substitute of the reproduction: batched FHE
 * kernels shard their (limb x batch) iteration space across the pool
 * exactly where the paper shards CTAs across SMs.
 */

#ifndef TENSORFHE_COMMON_THREAD_POOL_HH
#define TENSORFHE_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tensorfhe
{

class ThreadPool
{
  public:
    /** @param workers number of worker threads; 0 = hardware_concurrency. */
    explicit ThreadPool(std::size_t workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total lanes = workers + the calling thread. */
    std::size_t lanes() const { return workers_.size() + 1; }

    /**
     * Run fn(i) for i in [begin, end), statically partitioned across
     * all lanes. Blocks until every index is done. Reentrant calls
     * from inside fn run sequentially (no nested parallelism).
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &fn);

    /** Process-wide pool (lazily constructed). */
    static ThreadPool &global();

  private:
    struct Job
    {
        std::size_t begin = 0;
        std::size_t end = 0;
        const std::function<void(std::size_t)> *fn = nullptr;
    };

    void workerLoop(std::size_t lane);

    std::vector<std::thread> workers_;
    std::mutex mtx_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    std::vector<Job> jobs_;      // one slot per worker
    std::size_t generation_ = 0; // bumped per parallelFor
    std::size_t pending_ = 0;
    bool stop_ = false;
    bool inParallel_ = false;
};

} // namespace tensorfhe

#endif // TENSORFHE_COMMON_THREAD_POOL_HH
