/**
 * @file
 * A small persistent thread pool exposing a dynamic work-queue.
 *
 * This is the CUDA-core substitute of the reproduction: batched FHE
 * kernels shard their (slot x limb) iteration space across the pool
 * exactly where the paper shards CTAs across SMs. Indices are pulled
 * from a shared atomic cursor in chunks, so heterogeneous tasks (a
 * GEMM NTT next to an elementwise kernel) load-balance the way a
 * hardware scheduler drains a CTA queue.
 */

#ifndef TENSORFHE_COMMON_THREAD_POOL_HH
#define TENSORFHE_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tensorfhe
{

class ThreadPool
{
  public:
    /** Default worker count: hardware_concurrency - 1. */
    static constexpr std::size_t kAutoWorkers =
        static_cast<std::size_t>(-1);

    /**
     * @param workers number of worker threads; kAutoWorkers =
     *        hardware_concurrency - 1, 0 = no workers (every dispatch
     *        runs inline on the caller — a true 1-lane serial pool).
     */
    explicit ThreadPool(std::size_t workers = kAutoWorkers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total lanes = workers + the calling thread. */
    std::size_t lanes() const { return workers_.size() + 1; }

    /**
     * Run fn(i) for i in [begin, end), sharded dynamically across all
     * lanes: lanes pull fixed-size index chunks from a shared cursor
     * until the range drains. Blocks until every index is done.
     * Reentrant calls from inside fn run sequentially (no nested
     * parallelism), as do calls while another thread drives the pool.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Flattened 2D work-queue: run fn(i, j) for every pair in
     * [0, outer) x [0, inner). This is the (batch-slot x RNS-tower)
     * dispatch shape of the batched execution engine; the pairs share
     * one cursor so an expensive tower on one slot cannot serialize
     * the remaining slots.
     */
    void parallelFor2D(std::size_t outer, std::size_t inner,
                       const std::function<void(std::size_t, std::size_t)> &fn);

    /** Process-wide pool (lazily constructed). */
    static ThreadPool &global();

  private:
    struct Batch
    {
        std::size_t end = 0;
        std::size_t chunk = 1;
        const std::function<void(std::size_t)> *fn = nullptr;
    };

    void workerLoop();
    void drainBatch(const Batch &b);

    std::vector<std::thread> workers_;
    std::mutex mtx_;
    std::mutex dispatchMtx_; // serializes top-level parallelFor calls
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    Batch batch_;
    std::atomic<std::size_t> cursor_{0};
    std::size_t generation_ = 0;     // bumped per parallelFor
    std::size_t activeDrainers_ = 0; // workers currently inside a batch
    bool stop_ = false;
};

} // namespace tensorfhe

#endif // TENSORFHE_COMMON_THREAD_POOL_HH
