/**
 * @file
 * Typed error taxonomy for the resilient execution paths. The bare
 * requireArg/requireState helpers (logging.hh) report *what* failed;
 * these classes additionally carry *where* — a stable site string
 * (the FAULT_POINT / guard location, e.g. "exec/keyswitch-tail") and,
 * once a graph executor has caught and attributed the failure, the
 * graph node id. Recovery policy keys off the type:
 *
 *   - TransientFault: the operation may succeed if re-executed
 *     (device hiccup, failed allocation). The resilient executor
 *     retries the node with backoff; SSA inputs are still live, so a
 *     retried node is bit-identical to an uninterrupted run.
 *   - IntegrityError: a ciphertext failed validation (residue out of
 *     range, metadata drift, checksum mismatch). Retrying the
 *     producer can repair output corruption; corrupted *stored*
 *     values need a checkpoint resume.
 *   - BudgetError: the request itself cannot work (level ledger
 *     exhausted, bad parameters, prime pool dry). Never retried.
 *
 * TransientFault and IntegrityError derive from std::runtime_error;
 * BudgetError derives from std::invalid_argument (budget misuse is a
 * caller fault, and pre-taxonomy call sites threw exactly that, so
 * existing catch sites keep working).
 */

#ifndef TENSORFHE_COMMON_ERRORS_HH
#define TENSORFHE_COMMON_ERRORS_HH

#include <stdexcept>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace tensorfhe
{

/** Node id carried by errors raised outside any graph node. */
inline constexpr std::size_t kNoErrorNode = static_cast<std::size_t>(-1);

/**
 * Mixin carrying the failure site and (optionally) the graph node the
 * failure was attributed to. Catch handlers can read these without
 * parsing what().
 */
class ErrorContext
{
  public:
    ErrorContext(std::string site, std::size_t node)
        : site_(std::move(site)), node_(node)
    {}

    const std::string &site() const { return site_; }
    std::size_t node() const { return node_; }
    bool hasNode() const { return node_ != kNoErrorNode; }

  private:
    std::string site_;
    std::size_t node_;
};

namespace detail
{

inline std::string
formatError(const char *kind, const std::string &site,
            const std::string &msg, std::size_t node)
{
    std::string out = strCat(kind, " at ", site);
    if (node != kNoErrorNode)
        out += strCat(" (node ", node, ")");
    out += strCat(": ", msg);
    return out;
}

} // namespace detail

/** Re-executable failure: device hiccup, alloc failure, injected
    transient kernel fault. The resilient executor retries these. */
class TransientFault : public std::runtime_error, public ErrorContext
{
  public:
    TransientFault(std::string site, std::string msg,
                   std::size_t node = kNoErrorNode)
        : std::runtime_error(
              detail::formatError("transient fault", site, msg, node)),
          ErrorContext(std::move(site), node), msg_(std::move(msg))
    {}

    /** Undecorated message (for re-attribution to a node). */
    const std::string &message() const { return msg_; }

  private:
    std::string msg_;
};

/** Ciphertext validation failure: residue out of range, metadata
    drift against the compiled ValueMeta, or checksum mismatch. */
class IntegrityError : public std::runtime_error, public ErrorContext
{
  public:
    IntegrityError(std::string site, std::string msg,
                   std::size_t node = kNoErrorNode)
        : std::runtime_error(
              detail::formatError("integrity error", site, msg, node)),
          ErrorContext(std::move(site), node), msg_(std::move(msg))
    {}

    const std::string &message() const { return msg_; }

  private:
    std::string msg_;
};

/** Non-retryable request failure: exhausted level/scale budget, bad
    parameters, dry prime pool. */
class BudgetError : public std::invalid_argument, public ErrorContext
{
  public:
    BudgetError(std::string site, std::string msg,
                std::size_t node = kNoErrorNode)
        : std::invalid_argument(
              detail::formatError("budget error", site, msg, node)),
          ErrorContext(std::move(site), node), msg_(std::move(msg))
    {}

    const std::string &message() const { return msg_; }

  private:
    std::string msg_;
};

/** requireArg sibling that throws BudgetError with site context. */
template <typename... Args>
void
requireBudget(bool cond, const char *site, Args &&...args)
{
    if (!cond)
        throw BudgetError(site, strCat(std::forward<Args>(args)...));
}

} // namespace tensorfhe

#endif // TENSORFHE_COMMON_ERRORS_HH
