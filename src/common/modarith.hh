/**
 * @file
 * Modular arithmetic over word-sized prime moduli.
 *
 * TensorFHE's RNS design keeps every residue below 2^31 so that the
 * tensor-core segmentation scheme (four u8 limbs per coefficient,
 * paper SIV-C) covers a full residue. The routines here are
 * nevertheless written for any q < 2^62: Barrett reduction for
 * variable-operand products and Shoup multiplication for products
 * against a precomputed constant (twiddle factors).
 */

#ifndef TENSORFHE_COMMON_MODARITH_HH
#define TENSORFHE_COMMON_MODARITH_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace tensorfhe
{

/** a + b mod q, for a, b < q < 2^63. */
inline u64
addMod(u64 a, u64 b, u64 q)
{
    u64 s = a + b;
    return s >= q ? s - q : s;
}

/** a - b mod q, for a, b < q. */
inline u64
subMod(u64 a, u64 b, u64 q)
{
    return a >= b ? a - b : a + q - b;
}

/** -a mod q, for a < q. */
inline u64
negMod(u64 a, u64 q)
{
    return a == 0 ? 0 : q - a;
}

/** a * b mod q via 128-bit product; any q < 2^64. */
inline u64
mulMod(u64 a, u64 b, u64 q)
{
    return static_cast<u64>(static_cast<u128>(a) * b % q);
}

/** a^e mod q by square-and-multiply. */
u64 powMod(u64 a, u64 e, u64 q);

/** Multiplicative inverse of a mod prime q (Fermat). a must be nonzero. */
u64 invMod(u64 a, u64 q);

/**
 * Barrett reduction context for a fixed modulus q < 2^62.
 *
 * Precomputes ratio = floor(2^128 / q) once; reduce() then maps any
 * 128-bit value x < q * 2^64 to x mod q with two multiplies and at
 * most two conditional subtractions.
 */
class Modulus
{
  public:
    Modulus() = default;

    /** @param q A prime (or at least odd) modulus, 2 < q < 2^62. */
    explicit Modulus(u64 q);

    u64 value() const { return q_; }
    int bits() const { return bits_; }

    /** x mod q for a full 128-bit operand. */
    u64
    reduce(u128 x) const
    {
        u64 xl = static_cast<u64>(x);
        u64 xh = static_cast<u64>(x >> 64);
        // Estimate k = floor(x * ratio / 2^128) <= floor(x / q).
        u128 lo_r0 = static_cast<u128>(xl) * r0_;
        u128 lo_r1 = static_cast<u128>(xl) * r1_;
        u128 hi_r0 = static_cast<u128>(xh) * r0_;
        u128 mid = (lo_r0 >> 64) + static_cast<u64>(lo_r1)
            + static_cast<u64>(hi_r0);
        u64 k = xh * r1_ + static_cast<u64>(lo_r1 >> 64)
            + static_cast<u64>(hi_r0 >> 64) + static_cast<u64>(mid >> 64);
        u64 r = xl - k * q_; // mod 2^64: correct residue up to +2q
        if (r >= q_)
            r -= q_;
        if (r >= q_)
            r -= q_;
        return r;
    }

    /** a * b mod q for a, b < 2^64 with a*b < q * 2^64. */
    u64 mul(u64 a, u64 b) const { return reduce(static_cast<u128>(a) * b); }

    u64 add(u64 a, u64 b) const { return addMod(a, b, q_); }
    u64 sub(u64 a, u64 b) const { return subMod(a, b, q_); }
    u64 neg(u64 a) const { return negMod(a, q_); }
    u64 pow(u64 a, u64 e) const { return powMod(a, e, q_); }
    u64 inv(u64 a) const { return invMod(a, q_); }

    /** The Barrett ratio words floor(2^128 / q) — the SIMD backends
        replicate reduce() lane-wise from these. */
    u64 ratioLo() const { return r0_; }
    u64 ratioHi() const { return r1_; }

  private:
    u64 q_ = 0;
    u64 r0_ = 0; ///< low word of floor(2^128 / q)
    u64 r1_ = 0; ///< high word of floor(2^128 / q)
    int bits_ = 0;
};

/**
 * Shoup precomputation for multiplying by a fixed constant w mod q.
 * Returns w' = floor(w * 2^64 / q). Requires w < q < 2^63.
 */
inline u64
shoupPrecompute(u64 w, u64 q)
{
    return static_cast<u64>((static_cast<u128>(w) << 64) / q);
}

/**
 * Shoup precomputation against a reduced wordbase beta = 2^bits
 * (bits <= 62): floor(w * 2^bits / q). The SIMD lanes use bits = 32
 * (q < 2^30, products via single 32x32 multiplies) and bits = 52
 * (q < 2^50, AVX-512IFMA madd52 high halves).
 */
inline u64
shoupPrecomputeBeta(u64 w, u64 q, int bits)
{
    return static_cast<u64>((static_cast<u128>(w) << bits) / q);
}

/**
 * a * w mod q using the Shoup trick: one high-half multiply, one wrap
 * multiply, one conditional subtraction. Requires a < q, w < q.
 */
inline u64
mulModShoup(u64 a, u64 w, u64 w_shoup, u64 q)
{
    u64 hi = static_cast<u64>((static_cast<u128>(a) * w_shoup) >> 64);
    u64 r = a * w - hi * q; // both mults wrap mod 2^64
    return r >= q ? r - q : r;
}

/** Reverse the low `bits` bits of x (used by iterative NTT orderings). */
inline u32
bitReverse(u32 x, int bits)
{
    u32 r = 0;
    for (int i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

/** floor(log2(x)) for x >= 1. */
inline int
log2Floor(u64 x)
{
    TFHE_ASSERT(x != 0);
    return 63 - __builtin_clzll(x);
}

/** True iff x is a power of two (x >= 1). */
inline bool
isPowerOfTwo(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace tensorfhe

#endif // TENSORFHE_COMMON_MODARITH_HH
