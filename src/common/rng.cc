#include "common/rng.hh"

#include "common/logging.hh"

namespace tensorfhe
{

namespace
{

u64
splitmix64(u64 &x)
{
    x += 0x9e3779b97f4a7c15ull;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(u64 seed)
{
    u64 sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

u64
Rng::next()
{
    u64 result = rotl(s_[1] * 5, 7) * 9;
    u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

u64
Rng::uniform(u64 bound)
{
    TFHE_ASSERT(bound > 0);
    u64 threshold = -bound % bound; // 2^64 mod bound
    for (;;) {
        u64 r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1, u2;
    do {
        u1 = uniformReal();
    } while (u1 <= 1e-300);
    u2 = uniformReal();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

s64
Rng::sampleGaussianInt(double sigma)
{
    return static_cast<s64>(std::llround(gaussian() * sigma));
}

s64
Rng::sampleTernary()
{
    return static_cast<s64>(uniform(3)) - 1;
}

std::vector<u64>
sampleUniformPoly(Rng &rng, std::size_t n, u64 q)
{
    std::vector<u64> out(n);
    for (auto &c : out)
        c = rng.uniform(q);
    return out;
}

std::vector<u64>
sampleTernaryPoly(Rng &rng, std::size_t n, u64 q)
{
    std::vector<u64> out(n);
    for (auto &c : out) {
        s64 t = rng.sampleTernary();
        c = t >= 0 ? static_cast<u64>(t) : q - 1;
    }
    return out;
}

std::vector<u64>
sampleGaussianPoly(Rng &rng, std::size_t n, u64 q, double sigma)
{
    std::vector<u64> out(n);
    for (auto &c : out) {
        s64 e = rng.sampleGaussianInt(sigma);
        c = e >= 0 ? static_cast<u64>(e) % q
                   : q - (static_cast<u64>(-e) % q);
        if (c == q)
            c = 0;
    }
    return out;
}

} // namespace tensorfhe
