/**
 * @file
 * Fixed-width integer aliases used throughout TensorFHE.
 */

#ifndef TENSORFHE_COMMON_TYPES_HH
#define TENSORFHE_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace tensorfhe
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;

using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;
using s128 = __int128;

} // namespace tensorfhe

#endif // TENSORFHE_COMMON_TYPES_HH
