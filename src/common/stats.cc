#include "common/stats.hh"

#include "common/logging.hh"

namespace tensorfhe
{

const char *
kernelKindName(KernelKind k)
{
    switch (k) {
      case KernelKind::Ntt: return "NTT";
      case KernelKind::Intt: return "INTT";
      case KernelKind::HadaMult: return "Hada-Mult";
      case KernelKind::EleAdd: return "Ele-Add";
      case KernelKind::EleSub: return "Ele-Sub";
      case KernelKind::FrobeniusMap: return "FrobeniusMap";
      case KernelKind::Conjugate: return "Conjugate";
      case KernelKind::Conv: return "Conv";
      case KernelKind::Segment: return "Segment";
      case KernelKind::Fusion: return "Fusion";
      case KernelKind::TcuGemm: return "TCU-GEMM";
      case KernelKind::FusedEle: return "Fused-Ele";
      default: TFHE_ASSERT(false); return "?";
    }
}

KernelStats &
KernelStats::instance()
{
    static KernelStats stats;
    return stats;
}

void
KernelStats::reset()
{
    for (auto &c : counters_) {
        c.invocations.store(0, std::memory_order_relaxed);
        c.nanos.store(0, std::memory_order_relaxed);
        c.elements.store(0, std::memory_order_relaxed);
    }
    // Also discard any in-flight queue capture: a bench resetting
    // "everything" mid-capture used to leave the pre-reset launches
    // in the queue, and the next stopQueue() returned stale entries
    // recorded before the reset.
    std::lock_guard<std::mutex> lock(queueMu_);
    queueEnabled_.store(false, std::memory_order_relaxed);
    queue_.clear();
}

void
KernelStats::startQueue()
{
    std::lock_guard<std::mutex> lock(queueMu_);
    queue_.clear();
    queueEnabled_.store(true, std::memory_order_relaxed);
}

std::vector<KernelLaunch>
KernelStats::stopQueue()
{
    std::lock_guard<std::mutex> lock(queueMu_);
    queueEnabled_.store(false, std::memory_order_relaxed);
    return std::move(queue_);
}

void
KernelStats::enqueue(KernelKind k, u64 elements)
{
    std::lock_guard<std::mutex> lock(queueMu_);
    if (queueEnabled_.load(std::memory_order_relaxed))
        queue_.push_back({k, elements});
}

u64
KernelStats::totalNanos() const
{
    u64 total = 0;
    for (const auto &c : counters_)
        total += c.nanos.load(std::memory_order_relaxed);
    return total;
}

const char *
evalOpKindName(EvalOpKind k)
{
    switch (k) {
      case EvalOpKind::HMult: return "HMULT";
      case EvalOpKind::CMult: return "CMULT";
      case EvalOpKind::HAdd: return "HADD";
      case EvalOpKind::HRotate: return "HROTATE";
      case EvalOpKind::Conjugate: return "CONJ";
      case EvalOpKind::Rescale: return "RESCALE";
      case EvalOpKind::KsHoist: return "KS-hoist";
      case EvalOpKind::KsTail: return "KS-tail";
      default: TFHE_ASSERT(false); return "?";
    }
}

double
EvalOpCounts::get(EvalOpKind k) const
{
    switch (k) {
      case EvalOpKind::HMult: return hmult;
      case EvalOpKind::CMult: return cmult;
      case EvalOpKind::HAdd: return hadd;
      case EvalOpKind::HRotate: return hrotate;
      case EvalOpKind::Conjugate: return conjugate;
      case EvalOpKind::Rescale: return rescale;
      case EvalOpKind::KsHoist: return ksHoist;
      case EvalOpKind::KsTail: return ksTail;
      default: TFHE_ASSERT(false); return 0;
    }
}

void
EvalOpCounts::set(EvalOpKind k, double v)
{
    switch (k) {
      case EvalOpKind::HMult: hmult = v; break;
      case EvalOpKind::CMult: cmult = v; break;
      case EvalOpKind::HAdd: hadd = v; break;
      case EvalOpKind::HRotate: hrotate = v; break;
      case EvalOpKind::Conjugate: conjugate = v; break;
      case EvalOpKind::Rescale: rescale = v; break;
      case EvalOpKind::KsHoist: ksHoist = v; break;
      case EvalOpKind::KsTail: ksTail = v; break;
      default: TFHE_ASSERT(false);
    }
}

EvalOpStats &
EvalOpStats::instance()
{
    static EvalOpStats stats;
    return stats;
}

void
EvalOpStats::reset()
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
    modUps_.store(0, std::memory_order_relaxed);
    modDowns_.store(0, std::memory_order_relaxed);
}

EvalOpCounts
EvalOpStats::snapshot() const
{
    EvalOpCounts out;
    for (std::size_t i = 0; i < kNumEvalOpKinds; ++i)
        out.set(static_cast<EvalOpKind>(i),
                static_cast<double>(
                    counts_[i].load(std::memory_order_relaxed)));
    return out;
}

EvalOpStats::RawCounts
EvalOpStats::rawSnapshot() const
{
    RawCounts raw;
    for (std::size_t i = 0; i < kNumEvalOpKinds; ++i)
        raw.ops[i] = counts_[i].load(std::memory_order_relaxed);
    raw.modUps = modUps_.load(std::memory_order_relaxed);
    raw.modDowns = modDowns_.load(std::memory_order_relaxed);
    return raw;
}

void
EvalOpStats::restore(const RawCounts &raw)
{
    for (std::size_t i = 0; i < kNumEvalOpKinds; ++i)
        counts_[i].store(raw.ops[i], std::memory_order_relaxed);
    modUps_.store(raw.modUps, std::memory_order_relaxed);
    modDowns_.store(raw.modDowns, std::memory_order_relaxed);
}

} // namespace tensorfhe
