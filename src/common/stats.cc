#include "common/stats.hh"

#include "common/logging.hh"

namespace tensorfhe
{

const char *
kernelKindName(KernelKind k)
{
    switch (k) {
      case KernelKind::Ntt: return "NTT";
      case KernelKind::Intt: return "INTT";
      case KernelKind::HadaMult: return "Hada-Mult";
      case KernelKind::EleAdd: return "Ele-Add";
      case KernelKind::EleSub: return "Ele-Sub";
      case KernelKind::FrobeniusMap: return "FrobeniusMap";
      case KernelKind::Conjugate: return "Conjugate";
      case KernelKind::Conv: return "Conv";
      case KernelKind::Segment: return "Segment";
      case KernelKind::Fusion: return "Fusion";
      case KernelKind::TcuGemm: return "TCU-GEMM";
      default: TFHE_ASSERT(false); return "?";
    }
}

KernelStats &
KernelStats::instance()
{
    static KernelStats stats;
    return stats;
}

void
KernelStats::reset()
{
    for (auto &c : counters_) {
        c.invocations.store(0, std::memory_order_relaxed);
        c.nanos.store(0, std::memory_order_relaxed);
        c.elements.store(0, std::memory_order_relaxed);
    }
}

u64
KernelStats::totalNanos() const
{
    u64 total = 0;
    for (const auto &c : counters_)
        total += c.nanos.load(std::memory_order_relaxed);
    return total;
}

} // namespace tensorfhe
