/**
 * @file
 * Error-reporting helpers, following the gem5 panic/fatal split:
 * panic-class failures (TFHE_ASSERT) are internal bugs and abort;
 * user-fault failures throw standard exceptions.
 */

#ifndef TENSORFHE_COMMON_LOGGING_HH
#define TENSORFHE_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace tensorfhe
{

/** Build a std::string from stream-insertable pieces. */
template <typename... Args>
std::string
strCat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

/**
 * Throw std::invalid_argument when a user-supplied condition fails.
 * Use for bad parameters, mismatched levels, etc. (user's fault).
 */
template <typename... Args>
void
requireArg(bool cond, Args &&...args)
{
    if (!cond)
        throw std::invalid_argument(strCat(std::forward<Args>(args)...));
}

/**
 * Throw std::runtime_error when a runtime condition fails that is not
 * an internal invariant (e.g. exhausted prime pool).
 */
template <typename... Args>
void
requireState(bool cond, Args &&...args)
{
    if (!cond)
        throw std::runtime_error(strCat(std::forward<Args>(args)...));
}

[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

} // namespace tensorfhe

/** Internal invariant check: should never fire regardless of user input. */
#define TFHE_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::tensorfhe::panicImpl(__FILE__, __LINE__,                      \
                ::tensorfhe::strCat("assertion (" #cond ") failed. ",       \
                    ##__VA_ARGS__));                                        \
        }                                                                   \
    } while (0)

#endif // TENSORFHE_COMMON_LOGGING_HH
