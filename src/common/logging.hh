/**
 * @file
 * Error-reporting helpers, following the gem5 panic/fatal split:
 * panic-class failures (TFHE_ASSERT) are internal bugs and abort;
 * user-fault failures throw standard exceptions.
 *
 * Plus env-gated leveled diagnostics: TFHE_LOG=debug|info|warn
 * selects the runtime threshold (default warn — production runs are
 * silent unless something is wrong). TFHE_LOG_DEBUG compiles to
 * nothing in Release builds so hot paths (retry loops, workspace
 * recycling) carry no formatting or branch cost; INFO/WARN are
 * always compiled and gated by one cached level check.
 */

#ifndef TENSORFHE_COMMON_LOGGING_HH
#define TENSORFHE_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace tensorfhe
{

/** Build a std::string from stream-insertable pieces. */
template <typename... Args>
std::string
strCat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

/**
 * Throw std::invalid_argument when a user-supplied condition fails.
 * Use for bad parameters, mismatched levels, etc. (user's fault).
 */
template <typename... Args>
void
requireArg(bool cond, Args &&...args)
{
    if (!cond)
        throw std::invalid_argument(strCat(std::forward<Args>(args)...));
}

/**
 * Throw std::runtime_error when a runtime condition fails that is not
 * an internal invariant (e.g. exhausted prime pool).
 */
template <typename... Args>
void
requireState(bool cond, Args &&...args)
{
    if (!cond)
        throw std::runtime_error(strCat(std::forward<Args>(args)...));
}

[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

/** Diagnostic levels, most verbose first. */
enum class LogLevel : int
{
    Debug = 0,
    Info,
    Warn,
    Off
};

/** Runtime threshold from TFHE_LOG (parsed once; default Warn). */
inline LogLevel
logLevel()
{
    static const LogLevel level = [] {
        const char *env = std::getenv("TFHE_LOG");
        if (env == nullptr)
            return LogLevel::Warn;
        std::string v(env);
        if (v == "debug")
            return LogLevel::Debug;
        if (v == "info")
            return LogLevel::Info;
        if (v == "warn")
            return LogLevel::Warn;
        if (v == "off" || v == "none")
            return LogLevel::Off;
        return LogLevel::Warn;
    }();
    return level;
}

inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) >= static_cast<int>(logLevel());
}

inline const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      default: return "?";
    }
}

/** One formatted line to stderr: "[level] subsys: message". */
inline void
logMessage(LogLevel level, const char *subsys, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s: %s\n", logLevelName(level), subsys,
                 msg.c_str());
}

} // namespace tensorfhe

/*
 * Leveled log statements. Arguments are stream-insertable pieces and
 * are only evaluated/formatted when the level passes, so a log line
 * in a hot loop costs one comparison when silenced.
 */
#define TFHE_LOG_AT(level, subsys, ...)                                     \
    do {                                                                    \
        if (::tensorfhe::logEnabled(level))                                 \
            ::tensorfhe::logMessage(level, subsys,                          \
                ::tensorfhe::strCat(__VA_ARGS__));                          \
    } while (0)

#define TFHE_LOG_WARN(subsys, ...)                                          \
    TFHE_LOG_AT(::tensorfhe::LogLevel::Warn, subsys, __VA_ARGS__)
#define TFHE_LOG_INFO(subsys, ...)                                          \
    TFHE_LOG_AT(::tensorfhe::LogLevel::Info, subsys, __VA_ARGS__)

/* Debug lines vanish from Release hot paths entirely. */
#ifdef NDEBUG
#define TFHE_LOG_DEBUG(subsys, ...)                                         \
    do {                                                                    \
    } while (0)
#else
#define TFHE_LOG_DEBUG(subsys, ...)                                         \
    TFHE_LOG_AT(::tensorfhe::LogLevel::Debug, subsys, __VA_ARGS__)
#endif

/** Internal invariant check: should never fire regardless of user input. */
#define TFHE_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::tensorfhe::panicImpl(__FILE__, __LINE__,                      \
                ::tensorfhe::strCat("assertion (" #cond ") failed. ",       \
                    ##__VA_ARGS__));                                        \
        }                                                                   \
    } while (0)

#endif // TENSORFHE_COMMON_LOGGING_HH
