/**
 * @file
 * Deterministic PRNG and the samplers CKKS key generation needs:
 * uniform residues, ternary secrets, and rounded Gaussians.
 *
 * xoshiro256** seeded by splitmix64; not cryptographic, which is fine
 * for a reproduction whose goal is functional and performance
 * fidelity (a production deployment would swap in a CSPRNG here).
 */

#ifndef TENSORFHE_COMMON_RNG_HH
#define TENSORFHE_COMMON_RNG_HH

#include <cmath>
#include <vector>

#include "common/types.hh"

namespace tensorfhe
{

/** xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x5eedfacecafef00dull);

    /** Next raw 64-bit output. */
    u64 next();

    /** Uniform in [0, bound) with rejection to kill modulo bias. */
    u64 uniform(u64 bound);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Standard normal via Box-Muller. */
    double gaussian();

    /**
     * Centered rounded Gaussian with stddev sigma, returned as a
     * signed integer (the LWE error distribution).
     */
    s64 sampleGaussianInt(double sigma);

    /** Uniform element of {-1, 0, 1} (CKKS ternary secret). */
    s64 sampleTernary();

  private:
    u64 s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

/** Fill `n` coefficients uniform mod q. */
std::vector<u64> sampleUniformPoly(Rng &rng, std::size_t n, u64 q);

/** n ternary coefficients reduced into [0, q). */
std::vector<u64> sampleTernaryPoly(Rng &rng, std::size_t n, u64 q);

/** n rounded-Gaussian coefficients (sigma) reduced into [0, q). */
std::vector<u64> sampleGaussianPoly(Rng &rng, std::size_t n, u64 q,
                                    double sigma);

} // namespace tensorfhe

#endif // TENSORFHE_COMMON_RNG_HH
