#include "common/primes.hh"

#include <array>

#include "common/errors.hh"
#include "common/logging.hh"
#include "common/modarith.hh"

namespace tensorfhe
{

namespace
{

/** Witness loop of Miller-Rabin. */
bool
millerRabinWitness(u64 n, u64 d, int r, u64 a)
{
    u64 x = powMod(a % n, d, n);
    if (x == 1 || x == n - 1 || x == 0)
        return true;
    for (int i = 1; i < r; ++i) {
        x = mulMod(x, x, n);
        if (x == n - 1)
            return true;
    }
    return false;
}

/** Trial-divide m by primes up to 2^21, appending distinct factors. */
void
distinctFactors(u64 m, std::vector<u64> &factors)
{
    for (u64 p = 2; p * p <= m && p < (u64(1) << 21); p += (p == 2 ? 1 : 2)) {
        if (m % p == 0) {
            factors.push_back(p);
            while (m % p == 0)
                m /= p;
        }
    }
    if (m > 1)
        factors.push_back(m);
}

} // namespace

bool
isPrime(u64 n)
{
    if (n < 2)
        return false;
    for (u64 p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                  23ull, 29ull, 31ull, 37ull}) {
        if (n == p)
            return true;
        if (n % p == 0)
            return false;
    }
    u64 d = n - 1;
    int r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // This base set is deterministic for all n < 3.3 * 10^24.
    for (u64 a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                  23ull, 29ull, 31ull, 37ull}) {
        if (!millerRabinWitness(n, d, r, a))
            return false;
    }
    return true;
}

std::vector<u64>
generateNttPrimes(int bits, std::size_t count, u64 congruence)
{
    requireBudget(bits >= 4 && bits <= 61, "common/primes",
                  "prime size out of range");
    requireBudget(congruence > 0 && isPowerOfTwo(congruence),
                  "common/primes",
                  "congruence must be a power of two");
    std::vector<u64> primes;
    u64 hi = u64(1) << bits;
    u64 lo = u64(1) << (bits - 1);
    // Largest candidate = 1 (mod congruence) strictly below 2^bits.
    u64 cand = ((hi - 2) / congruence) * congruence + 1;
    for (; cand > lo && primes.size() < count; cand -= congruence) {
        if (isPrime(cand))
            primes.push_back(cand);
    }
    requireBudget(primes.size() == count, "common/primes",
                  "prime pool exhausted: wanted ", count, " ", bits,
                  "-bit primes = 1 mod ", congruence);
    return primes;
}

u64
findPrimitiveRoot(u64 q)
{
    TFHE_ASSERT(isPrime(q));
    std::vector<u64> factors;
    distinctFactors(q - 1, factors);
    // If q-1 has a factor we could not extract, the loop below would
    // accept non-generators; guard against it.
    u64 check = q - 1;
    for (u64 f : factors)
        while (check % f == 0)
            check /= f;
    TFHE_ASSERT(check == 1, "q - 1 has factors above trial bound");
    for (u64 g = 2; g < q; ++g) {
        bool ok = true;
        for (u64 f : factors) {
            if (powMod(g, (q - 1) / f, q) == 1) {
                ok = false;
                break;
            }
        }
        if (ok)
            return g;
    }
    TFHE_ASSERT(false, "no primitive root found for ", q);
    return 0;
}

u64
rootOfUnity(u64 q, u64 m)
{
    requireArg((q - 1) % m == 0, "m does not divide q-1");
    u64 g = findPrimitiveRoot(q);
    u64 w = powMod(g, (q - 1) / m, q);
    TFHE_ASSERT(powMod(w, m, q) == 1);
    if (m % 2 == 0)
        TFHE_ASSERT(powMod(w, m / 2, q) == q - 1, "root not primitive");
    return w;
}

} // namespace tensorfhe
