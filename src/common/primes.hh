/**
 * @file
 * NTT-friendly prime generation and roots of unity.
 *
 * CKKS over RNS needs a chain of primes q with q = 1 (mod 2N) so that
 * Z_q contains a primitive 2N-th root of unity psi (the negacyclic
 * twiddle base of paper Eq. 4).
 */

#ifndef TENSORFHE_COMMON_PRIMES_HH
#define TENSORFHE_COMMON_PRIMES_HH

#include <vector>

#include "common/types.hh"

namespace tensorfhe
{

/** Deterministic Miller-Rabin for any u64. */
bool isPrime(u64 n);

/**
 * Generate `count` distinct primes of exactly `bits` bits with
 * p = 1 (mod `congruence`), scanning downward from 2^bits.
 *
 * @throws std::runtime_error if the pool is exhausted.
 */
std::vector<u64> generateNttPrimes(int bits, std::size_t count,
                                   u64 congruence);

/** Smallest primitive root g of prime q (q - 1 must factor below 2^21). */
u64 findPrimitiveRoot(u64 q);

/**
 * A primitive m-th root of unity mod prime q. Requires m | q - 1.
 * Returned w satisfies w^m = 1 and w^(m/2) = -1 (m even).
 */
u64 rootOfUnity(u64 q, u64 m);

} // namespace tensorfhe

#endif // TENSORFHE_COMMON_PRIMES_HH
