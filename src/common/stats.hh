/**
 * @file
 * Process-wide instrumentation for the seven reusable kernels of the
 * paper's hierarchical CKKS reconstruction (Table II). Every kernel
 * entry point records wall time and invocation counts here; the
 * breakdown benches (Figs. 11-13) read them back.
 */

#ifndef TENSORFHE_COMMON_STATS_HH
#define TENSORFHE_COMMON_STATS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/trace.hh"

namespace tensorfhe
{

/** The reusable arithmetic kernels of Table II. */
enum class KernelKind : int
{
    Ntt = 0,
    Intt,
    HadaMult,
    EleAdd,
    EleSub,
    FrobeniusMap,
    Conjugate,
    Conv,
    Segment,   ///< TCU path: u32 -> 4 x u8 (paper Fig. 7)
    Fusion,    ///< TCU path: Booth-style partial-product fusion
    TcuGemm,   ///< TCU path: INT8 GEMM
    FusedEle,  ///< graph-fused elementwise chain (one span pass)
    NumKinds
};

constexpr std::size_t kNumKernelKinds =
    static_cast<std::size_t>(KernelKind::NumKinds);

/** Human-readable kernel name (matches the paper's figure legends). */
const char *kernelKindName(KernelKind k);

/** Accumulated counters for one kernel kind. */
struct KernelCounter
{
    std::atomic<u64> invocations{0};
    std::atomic<u64> nanos{0};
    std::atomic<u64> elements{0}; ///< coefficients processed
};

/**
 * One recorded kernel dispatch — the unit of the kernel-queue
 * description the exec layer emits. A queue of these is what the
 * GPU pipeline simulator consumes to replay an operation's kernel
 * schedule (gpu::simulateKernelQueue).
 */
struct KernelLaunch
{
    KernelKind kind;
    u64 elements = 0; ///< coefficients the dispatch touched
};

/** Global registry of kernel counters. */
class KernelStats
{
  public:
    static KernelStats &instance();

    void
    record(KernelKind k, u64 nanos, u64 elements)
    {
        auto &c = counters_[static_cast<std::size_t>(k)];
        c.invocations.fetch_add(1, std::memory_order_relaxed);
        c.nanos.fetch_add(nanos, std::memory_order_relaxed);
        c.elements.fetch_add(elements, std::memory_order_relaxed);
        if (queueEnabled_.load(std::memory_order_relaxed))
            enqueue(k, elements);
    }

    /**
     * Start capturing the kernel-launch sequence alongside the
     * aggregate counters. The queue is the machine-readable dispatch
     * schedule of everything executed until stopQueue(); benches feed
     * it to gpu::simulateKernelQueue. Thread-safe; launches from
     * concurrent dispatches interleave in completion order.
     */
    void startQueue();
    /** Stop capturing and return the recorded launch sequence. */
    std::vector<KernelLaunch> stopQueue();

    const KernelCounter &
    counter(KernelKind k) const
    {
        return counters_[static_cast<std::size_t>(k)];
    }

    /** Zero every counter (benches call this between sections). */
    void reset();

    /** Total recorded nanoseconds across all kernels. */
    u64 totalNanos() const;

    /**
     * RAII queue capture: startQueue() on construction, and — unless
     * take() already harvested the launches — stopQueue() on
     * destruction, so a throwing dispatch can never leak an open
     * capture into the next run (the resilient graph executor holds
     * one of these per node attempt; a failed attempt's launches are
     * discarded with the guard).
     */
    class QueueCapture
    {
      public:
        explicit QueueCapture(bool enable = true) : armed_(enable)
        {
            if (armed_)
                KernelStats::instance().startQueue();
        }

        ~QueueCapture()
        {
            if (armed_)
                KernelStats::instance().stopQueue();
        }

        QueueCapture(const QueueCapture &) = delete;
        QueueCapture &operator=(const QueueCapture &) = delete;

        /** Stop capturing and return the recorded launches. */
        std::vector<KernelLaunch>
        take()
        {
            if (!armed_)
                return {};
            armed_ = false;
            return KernelStats::instance().stopQueue();
        }

      private:
        bool armed_;
    };

  private:
    KernelStats() = default;
    void enqueue(KernelKind k, u64 elements);

    std::array<KernelCounter, kNumKernelKinds> counters_;
    std::atomic<bool> queueEnabled_{false};
    std::mutex queueMu_;
    std::vector<KernelLaunch> queue_;
};

/** RAII timer recording into KernelStats on destruction. */
class ScopedKernelTimer
{
  public:
    ScopedKernelTimer(KernelKind kind, u64 elements)
        : kind_(kind), elements_(elements),
          start_(std::chrono::steady_clock::now())
    {}

    ~ScopedKernelTimer()
    {
        auto stop = std::chrono::steady_clock::now();
        u64 ns = static_cast<u64>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                stop - start_).count());
        KernelStats::instance().record(kind_, ns, elements_);
        // Kernel-level trace span, reusing the timestamps this timer
        // already took (disarmed: one relaxed load).
        if (trace::Tracer::armed()) {
            trace::SpanArg arg{"elements",
                               static_cast<s64>(elements_)};
            trace::Tracer::span(
                "kernel", kernelKindName(kind_),
                static_cast<u64>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        start_.time_since_epoch()).count()),
                ns, &arg, 1);
        }
    }

    ScopedKernelTimer(const ScopedKernelTimer &) = delete;
    ScopedKernelTimer &operator=(const ScopedKernelTimer &) = delete;

  private:
    KernelKind kind_;
    u64 elements_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * The homomorphic operations of paper Table II plus the two phases of
 * generalized key-switching (Halevi-Shoup hoisting). The evaluators
 * record every executed operation here so workload runs can be
 * cross-checked against the analytic op-count models (models.cc) and
 * layer plans (nn) — the functional counterpart of the Fig. 13
 * operation breakdown.
 */
enum class EvalOpKind : int
{
    HMult = 0,
    CMult,
    HAdd,
    HRotate,
    Conjugate,
    Rescale,
    KsHoist, ///< key-switch heads (Dcomp+ModUp+NTT)
    KsTail,  ///< key-switch tails (inner product + ModDown)
    NumOps
};

constexpr std::size_t kNumEvalOpKinds =
    static_cast<std::size_t>(EvalOpKind::NumOps);

const char *evalOpKindName(EvalOpKind k);

/**
 * A snapshot (or analytic prediction) of executed-operation counts.
 * Doubles so models can scale fractionally; executed snapshots hold
 * exact integers.
 */
struct EvalOpCounts
{
    double hmult = 0;
    double cmult = 0;
    double hadd = 0;
    double hrotate = 0;
    double conjugate = 0;
    double rescale = 0;
    double ksHoist = 0;
    double ksTail = 0;

    double get(EvalOpKind k) const;
    void set(EvalOpKind k, double v);

    EvalOpCounts &
    operator+=(const EvalOpCounts &o)
    {
        hmult += o.hmult;
        cmult += o.cmult;
        hadd += o.hadd;
        hrotate += o.hrotate;
        conjugate += o.conjugate;
        rescale += o.rescale;
        ksHoist += o.ksHoist;
        ksTail += o.ksTail;
        return *this;
    }

    friend EvalOpCounts
    operator*(double k, const EvalOpCounts &c)
    {
        EvalOpCounts out;
        out.hmult = k * c.hmult;
        out.cmult = k * c.cmult;
        out.hadd = k * c.hadd;
        out.hrotate = k * c.hrotate;
        out.conjugate = k * c.conjugate;
        out.rescale = k * c.rescale;
        out.ksHoist = k * c.ksHoist;
        out.ksTail = k * c.ksTail;
        return out;
    }

    friend EvalOpCounts
    operator-(EvalOpCounts a, const EvalOpCounts &b)
    {
        a.hmult -= b.hmult;
        a.cmult -= b.cmult;
        a.hadd -= b.hadd;
        a.hrotate -= b.hrotate;
        a.conjugate -= b.conjugate;
        a.rescale -= b.rescale;
        a.ksHoist -= b.ksHoist;
        a.ksTail -= b.ksTail;
        return a;
    }
};

/**
 * Process-wide executed-operation counters (the operation-level
 * sibling of KernelStats). Scalar and batched evaluators record the
 * same counts per logical ciphertext, so a batched run over B slots
 * reads exactly B times the scalar counts.
 *
 * All counters are lock-free relaxed atomics, so record() is safe
 * from inside parallel dispatches (worker lanes of the unified exec
 * path record concurrently); snapshot() reads each counter once and
 * never tears. tests/common/test_stats_race.cc hammers this from a
 * full pool.
 */
class EvalOpStats
{
  public:
    static EvalOpStats &instance();

    void
    record(EvalOpKind k, u64 count = 1)
    {
        counts_[static_cast<std::size_t>(k)].fetch_add(
            count, std::memory_order_relaxed);
    }

    /**
     * Basis-conversion procedure counters (one count per ModUp of one
     * digit / per ModDown of one accumulator). Not part of
     * EvalOpCounts — the op-count models predict Table II operations;
     * these track the conversion work inside them, which the
     * double-hoisted BSGS path reduces (bench_keyswitch_hoist prints
     * the drop, BENCH_PR4.json records it).
     */
    void
    recordModUp(u64 count = 1)
    {
        modUps_.fetch_add(count, std::memory_order_relaxed);
    }
    void
    recordModDown(u64 count = 1)
    {
        modDowns_.fetch_add(count, std::memory_order_relaxed);
    }
    u64
    modUps() const
    {
        return modUps_.load(std::memory_order_relaxed);
    }
    u64
    modDowns() const
    {
        return modDowns_.load(std::memory_order_relaxed);
    }

    /** Zero every counter (benches call this between sections). */
    void reset();

    EvalOpCounts snapshot() const;

    /**
     * Exact raw counter image, restorable. The resilient graph
     * executor snapshots before every node attempt and restores on
     * failure, so a retried run's executed-op accounting is
     * IDENTICAL to an uninterrupted run (the modeled-vs-executed
     * cross-check stays exact under faults). Restore is only
     * coherent while no other thread records — the executor retries
     * between dispatches, never inside one.
     */
    struct RawCounts
    {
        std::array<u64, kNumEvalOpKinds> ops{};
        u64 modUps = 0;
        u64 modDowns = 0;
    };

    RawCounts rawSnapshot() const;
    void restore(const RawCounts &raw);

  private:
    EvalOpStats() = default;
    std::array<std::atomic<u64>, kNumEvalOpKinds> counts_{};
    std::atomic<u64> modUps_{0};
    std::atomic<u64> modDowns_{0};
};

} // namespace tensorfhe

#endif // TENSORFHE_COMMON_STATS_HH
