/**
 * @file
 * Process-wide instrumentation for the seven reusable kernels of the
 * paper's hierarchical CKKS reconstruction (Table II). Every kernel
 * entry point records wall time and invocation counts here; the
 * breakdown benches (Figs. 11-13) read them back.
 */

#ifndef TENSORFHE_COMMON_STATS_HH
#define TENSORFHE_COMMON_STATS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>

#include "common/types.hh"

namespace tensorfhe
{

/** The reusable arithmetic kernels of Table II. */
enum class KernelKind : int
{
    Ntt = 0,
    Intt,
    HadaMult,
    EleAdd,
    EleSub,
    FrobeniusMap,
    Conjugate,
    Conv,
    Segment,   ///< TCU path: u32 -> 4 x u8 (paper Fig. 7)
    Fusion,    ///< TCU path: Booth-style partial-product fusion
    TcuGemm,   ///< TCU path: INT8 GEMM
    NumKinds
};

constexpr std::size_t kNumKernelKinds =
    static_cast<std::size_t>(KernelKind::NumKinds);

/** Human-readable kernel name (matches the paper's figure legends). */
const char *kernelKindName(KernelKind k);

/** Accumulated counters for one kernel kind. */
struct KernelCounter
{
    std::atomic<u64> invocations{0};
    std::atomic<u64> nanos{0};
    std::atomic<u64> elements{0}; ///< coefficients processed
};

/** Global registry of kernel counters. */
class KernelStats
{
  public:
    static KernelStats &instance();

    void
    record(KernelKind k, u64 nanos, u64 elements)
    {
        auto &c = counters_[static_cast<std::size_t>(k)];
        c.invocations.fetch_add(1, std::memory_order_relaxed);
        c.nanos.fetch_add(nanos, std::memory_order_relaxed);
        c.elements.fetch_add(elements, std::memory_order_relaxed);
    }

    const KernelCounter &
    counter(KernelKind k) const
    {
        return counters_[static_cast<std::size_t>(k)];
    }

    /** Zero every counter (benches call this between sections). */
    void reset();

    /** Total recorded nanoseconds across all kernels. */
    u64 totalNanos() const;

  private:
    KernelStats() = default;
    std::array<KernelCounter, kNumKernelKinds> counters_;
};

/** RAII timer recording into KernelStats on destruction. */
class ScopedKernelTimer
{
  public:
    ScopedKernelTimer(KernelKind kind, u64 elements)
        : kind_(kind), elements_(elements),
          start_(std::chrono::steady_clock::now())
    {}

    ~ScopedKernelTimer()
    {
        auto stop = std::chrono::steady_clock::now();
        u64 ns = static_cast<u64>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                stop - start_).count());
        KernelStats::instance().record(kind_, ns, elements_);
    }

    ScopedKernelTimer(const ScopedKernelTimer &) = delete;
    ScopedKernelTimer &operator=(const ScopedKernelTimer &) = delete;

  private:
    KernelKind kind_;
    u64 elements_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace tensorfhe

#endif // TENSORFHE_COMMON_STATS_HH
