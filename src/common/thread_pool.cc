#include "common/thread_pool.hh"

#include "common/logging.hh"

namespace tensorfhe
{

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        workers = hw > 1 ? hw - 1 : 0;
    }
    jobs_.resize(workers);
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mtx_);
        stop_ = true;
    }
    cvStart_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &fn)
{
    if (begin >= end)
        return;
    std::size_t n = end - begin;
    std::size_t nlanes = lanes();
    bool nested;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        nested = inParallel_;
    }
    if (nested || nlanes == 1 || n == 1) {
        for (std::size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }

    std::size_t chunk = (n + nlanes - 1) / nlanes;
    std::size_t my_begin, my_end;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        inParallel_ = true;
        ++generation_;
        pending_ = 0;
        std::size_t cursor = begin;
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            std::size_t b = cursor;
            std::size_t e = b + chunk < end ? b + chunk : end;
            cursor = e;
            jobs_[w] = {b, e, b < e ? &fn : nullptr};
            if (b < e)
                ++pending_;
        }
        my_begin = cursor;
        my_end = end;
    }
    cvStart_.notify_all();

    for (std::size_t i = my_begin; i < my_end; ++i)
        fn(i);

    std::unique_lock<std::mutex> lk(mtx_);
    cvDone_.wait(lk, [this] { return pending_ == 0; });
    inParallel_ = false;
}

void
ThreadPool::workerLoop(std::size_t lane)
{
    std::size_t seen_generation = 0;
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lk(mtx_);
            cvStart_.wait(lk, [&] {
                return stop_
                    || (generation_ != seen_generation
                        && jobs_[lane].fn != nullptr);
            });
            if (stop_)
                return;
            seen_generation = generation_;
            job = jobs_[lane];
            jobs_[lane].fn = nullptr;
        }
        for (std::size_t i = job.begin; i < job.end; ++i)
            (*job.fn)(i);
        {
            std::lock_guard<std::mutex> lk(mtx_);
            TFHE_ASSERT(pending_ > 0);
            --pending_;
        }
        cvDone_.notify_one();
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace tensorfhe
