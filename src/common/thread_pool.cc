#include "common/thread_pool.hh"

#include "common/logging.hh"
#include "trace/trace.hh"

namespace tensorfhe
{

namespace
{

/** Pool this thread is currently executing tasks for (reentrancy guard). */
thread_local const ThreadPool *tl_current_pool = nullptr;

} // namespace

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == kAutoWorkers) {
        unsigned hw = std::thread::hardware_concurrency();
        workers = hw > 1 ? hw - 1 : 0;
    }
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mtx_);
        stop_ = true;
    }
    cvStart_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::drainBatch(const Batch &b)
{
    trace::TraceSpan tsp("pool", "drain");
    tsp.arg("chunk", static_cast<s64>(b.chunk))
        .arg("end", static_cast<s64>(b.end));
    const ThreadPool *prev = tl_current_pool;
    tl_current_pool = this;
    for (;;) {
        std::size_t i =
            cursor_.fetch_add(b.chunk, std::memory_order_relaxed);
        if (i >= b.end)
            break;
        std::size_t e = i + b.chunk < b.end ? i + b.chunk : b.end;
        for (; i < e; ++i)
            (*b.fn)(i);
    }
    tl_current_pool = prev;
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &fn)
{
    if (begin >= end)
        return;
    std::size_t n = end - begin;
    std::size_t nlanes = lanes();
    // Serial fallbacks: tiny range, no workers, a nested call from a
    // pool lane, or another thread already driving this pool.
    if (nlanes == 1 || n == 1 || tl_current_pool == this) {
        for (std::size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }
    if (!dispatchMtx_.try_lock()) {
        for (std::size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }
    std::lock_guard<std::mutex> dispatch(dispatchMtx_, std::adopt_lock);

    // Chunked dynamic scheduling: ~4 chunks per lane balances pull
    // overhead against load imbalance across heterogeneous tasks.
    std::size_t chunk = n / (4 * nlanes);
    if (chunk == 0)
        chunk = 1;
    std::size_t num_chunks = (n + chunk - 1) / chunk;
    Batch b;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        batch_ = {end, chunk, &fn};
        cursor_.store(begin, std::memory_order_relaxed);
        ++generation_;
        b = batch_;
    }
    // Wake only as many workers as there are chunks; a small dispatch
    // must not pay a full-pool rendezvous. Workers that miss a notify
    // re-check the generation before sleeping, so work is never lost.
    std::size_t to_wake = std::min(workers_.size(), num_chunks);
    for (std::size_t i = 0; i < to_wake; ++i)
        cvStart_.notify_one();

    drainBatch(b);

    // Wait only for workers actually inside this batch (they register
    // in activeDrainers_ under the lock before touching the cursor);
    // late wakers find the cursor exhausted and do nothing.
    std::unique_lock<std::mutex> lk(mtx_);
    cvDone_.wait(lk, [this] { return activeDrainers_ == 0; });
}

void
ThreadPool::parallelFor2D(
    std::size_t outer, std::size_t inner,
    const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (outer == 0 || inner == 0)
        return;
    parallelFor(0, outer * inner, [&](std::size_t flat) {
        fn(flat / inner, flat % inner);
    });
}

void
ThreadPool::workerLoop()
{
    std::size_t seen_generation = 0;
    for (;;) {
        Batch b;
        {
            std::unique_lock<std::mutex> lk(mtx_);
            cvStart_.wait(lk, [&] {
                return stop_ || generation_ != seen_generation;
            });
            if (stop_)
                return;
            seen_generation = generation_;
            b = batch_;
            ++activeDrainers_;
        }
        drainBatch(b);
        {
            std::lock_guard<std::mutex> lk(mtx_);
            TFHE_ASSERT(activeDrainers_ > 0);
            --activeDrainers_;
        }
        cvDone_.notify_one();
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace tensorfhe
