#include "common/modarith.hh"

namespace tensorfhe
{

u64
powMod(u64 a, u64 e, u64 q)
{
    TFHE_ASSERT(q > 1);
    u64 base = a % q;
    u64 acc = 1;
    while (e != 0) {
        if (e & 1)
            acc = mulMod(acc, base, q);
        base = mulMod(base, base, q);
        e >>= 1;
    }
    return acc;
}

u64
invMod(u64 a, u64 q)
{
    TFHE_ASSERT(a % q != 0, "inverse of zero mod ", q);
    // q is prime throughout the library: Fermat's little theorem.
    u64 r = powMod(a, q - 2, q);
    TFHE_ASSERT(mulMod(r, a, q) == 1, "modulus ", q, " not prime?");
    return r;
}

Modulus::Modulus(u64 q) : q_(q)
{
    requireArg(q > 2 && q < (u64(1) << 62), "modulus out of range");
    // floor((2^128 - 1) / q) == floor(2^128 / q) for q not a power of 2.
    u128 ratio = ~static_cast<u128>(0) / q;
    r0_ = static_cast<u64>(ratio);
    r1_ = static_cast<u64>(ratio >> 64);
    bits_ = log2Floor(q) + 1;
}

} // namespace tensorfhe
