#include "rns/tower.hh"

#include <set>

#include "common/logging.hh"
#include "common/primes.hh"

namespace tensorfhe::rns
{

RnsTower::RnsTower(const TowerConfig &cfg) : cfg_(cfg)
{
    requireArg(isPowerOfTwo(cfg.n) && cfg.n >= 8, "N must be 2^k >= 8");
    requireArg(cfg.levels >= 0, "levels must be non-negative");
    requireArg(cfg.special >= 1, "need at least one special prime");
    requireArg(cfg.scaleBits >= 20 && cfg.scaleBits <= 31
                   && cfg.firstBits >= cfg.scaleBits && cfg.firstBits <= 31
                   && cfg.specialBits >= cfg.scaleBits
                   && cfg.specialBits <= 31,
               "prime sizes must fit the 32-bit residue design");

    u64 m = 2 * static_cast<u64>(cfg.n);

    // Draw primes per size class; classes may coincide, so pull from a
    // shared pool per bit width and keep all values distinct.
    std::set<u64> used;
    auto draw = [&](int bits, std::size_t count) {
        std::vector<u64> out;
        // Over-request so collisions with other classes can be skipped.
        auto pool = generateNttPrimes(bits, count + used.size(), m);
        for (u64 q : pool) {
            if (out.size() == count)
                break;
            if (used.insert(q).second)
                out.push_back(q);
        }
        requireState(out.size() == count, "prime pool too small at ",
                     bits, " bits");
        return out;
    };

    auto q0 = draw(cfg.firstBits, 1);
    auto qs = draw(cfg.scaleBits, static_cast<std::size_t>(cfg.levels));
    auto ps = draw(cfg.specialBits, static_cast<std::size_t>(cfg.special));

    primes_.push_back(q0[0]);
    primes_.insert(primes_.end(), qs.begin(), qs.end());
    primes_.insert(primes_.end(), ps.begin(), ps.end());

    ntts_.reserve(primes_.size());
    for (u64 q : primes_)
        ntts_.push_back(std::make_unique<ntt::NttContext>(cfg.n, q));

    pModQ_.resize(primes_.size());
    pInvModQ_.resize(primes_.size());
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        const Modulus &mod = ntts_[i]->modulus();
        u64 p = 1;
        for (std::size_t k = 0; k < numP(); ++k)
            p = mod.mul(p, primes_[specialIndex(k)] % mod.value());
        pModQ_[i] = p;
        pInvModQ_[i] = i < numQ() ? mod.inv(p) : 0;
    }
}

const Modulus &
RnsTower::modulus(std::size_t idx) const
{
    return ntts_[idx]->modulus();
}

} // namespace tensorfhe::rns
