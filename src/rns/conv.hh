/**
 * @file
 * Fast basis conversion (the paper's Conv kernel) and the ModUp /
 * ModDown / Dcomp procedures of generalized key-switching built on it
 * (paper Alg. 1 and SIV-A).
 *
 * The conversion is the approximate RNS conversion of the full-RNS
 * CKKS line (Cheon et al., paper ref [15]): residues are recombined
 * through CRT factors without computing the exact overflow count, so
 * the result may differ from the true value by a small multiple of
 * the source modulus. CKKS absorbs this into ciphertext noise; the
 * tests bound it.
 */

#ifndef TENSORFHE_RNS_CONV_HH
#define TENSORFHE_RNS_CONV_HH

#include <vector>

#include "rns/rns_poly.hh"

namespace tensorfhe
{
class ThreadPool;
}

namespace tensorfhe::rns
{

/**
 * Convert a Coeff-domain polynomial from its current basis to
 * `target_limbs`: out_j = sum_i [a_i * (S/s_i)^-1 mod s_i]
 * * (S/s_i mod t_j) (mod t_j). Source limbs must be distinct primes.
 */
RnsPolynomial fastBaseConv(const RnsPolynomial &a,
                           const std::vector<std::size_t> &target_limbs);

/**
 * Digit decomposition (Dcomp): split the first `active` limbs of `a`
 * into digits of at most `alpha` consecutive limbs.
 * Returns one Coeff-domain polynomial per digit, each carrying only
 * its digit's limbs.
 */
std::vector<RnsPolynomial> decomposeDigits(const RnsPolynomial &a,
                                           std::size_t alpha);

/**
 * ModUp: extend one digit to the union basis
 * {q_0..q_{level}} + {p_0..p_{K-1}}: digit limbs are copied, all
 * other limbs come from fastBaseConv.
 */
RnsPolynomial modUp(const RnsPolynomial &digit, std::size_t level_count);

/**
 * ModDown: given `a` over {q_0..q_l} + {p_*} (Coeff domain), return
 * round(a / P) over {q_0..q_l}:
 *   b_j = P^-1 * (a_j - Conv_{p->q}(a mod P)_j) mod q_j.
 */
RnsPolynomial modDown(const RnsPolynomial &a);

/**
 * Exact divide-and-round by the last limb's prime (the core of
 * RESCALE, paper Alg. 6): for j < last,
 *   out_j = q_last^-1 * (a_j - [a_last]_{q_j}) mod q_j
 * with a centered lift of the last limb. `a` must be Coeff domain.
 */
RnsPolynomial rescaleByLastLimb(const RnsPolynomial &a);

/*
 * Batched counterparts for operation-level batching (paper SIV-D/E).
 * Every input must carry the same limb set, so the O(s^2 + s*t) CRT
 * factors are computed once and shared by the whole batch, and the
 * per-coefficient work drains through the pool as one flattened
 * (slot x limb) dispatch. Each returns exactly what `batch` serial
 * calls would, bit for bit.
 */

/** Batched fastBaseConv. */
std::vector<RnsPolynomial>
fastBaseConvBatch(const std::vector<const RnsPolynomial *> &as,
                  const std::vector<std::size_t> &target_limbs,
                  ThreadPool *pool = nullptr);

/** Batched ModUp of one digit position across the batch. */
std::vector<RnsPolynomial>
modUpBatch(const std::vector<const RnsPolynomial *> &digits,
           std::size_t level_count, ThreadPool *pool = nullptr);

/** Batched ModDown. */
std::vector<RnsPolynomial>
modDownBatch(const std::vector<const RnsPolynomial *> &as,
             ThreadPool *pool = nullptr);

/** Batched RESCALE core. */
std::vector<RnsPolynomial>
rescaleByLastLimbBatch(const std::vector<const RnsPolynomial *> &as,
                       ThreadPool *pool = nullptr);

} // namespace tensorfhe::rns

#endif // TENSORFHE_RNS_CONV_HH
