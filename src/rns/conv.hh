/**
 * @file
 * Fast basis conversion (the paper's Conv kernel) and the ModUp /
 * ModDown / Dcomp procedures of generalized key-switching built on it
 * (paper Alg. 1 and SIV-A).
 *
 * The conversion is the approximate RNS conversion of the full-RNS
 * CKKS line (Cheon et al., paper ref [15]): residues are recombined
 * through CRT factors without computing the exact overflow count, so
 * the result may differ from the true value by a small multiple of
 * the source modulus. CKKS absorbs this into ciphertext noise; the
 * tests bound it.
 *
 * The conversion procedures are phase-split: each has a *Plan class
 * holding the precomputation fixed by the (source, target) limb pair
 * — CRT factors, union-basis layout, P^-1 constants — separate from
 * the per-coefficient apply phase. Hoisted key-switching builds one
 * plan and applies it across every rotation, digit, and batch slot;
 * the plan-free functions below remain as one-shot conveniences and
 * are bit-identical to plan construction + apply.
 */

#ifndef TENSORFHE_RNS_CONV_HH
#define TENSORFHE_RNS_CONV_HH

#include <vector>

#include "rns/rns_poly.hh"

namespace tensorfhe
{
class ThreadPool;
}

namespace tensorfhe::rns
{

/**
 * Precomputed CRT factors of the approximate base conversion for one
 * fixed (source, target) limb pair: hatInv_i = (S/s_i)^-1 mod s_i and
 * hat_ij = (S/s_i) mod t_j. The O(s^2 + s*t) scalar work happens once
 * at construction; apply() then performs only the O(s*t*n)
 * per-coefficient phase. apply()/applyBatch() are bit-identical to
 * fastBaseConv()/fastBaseConvBatch().
 */
class BaseConvPlan
{
  public:
    /** Source limbs must be distinct primes. */
    BaseConvPlan(const RnsTower &tower, std::vector<std::size_t> src,
                 std::vector<std::size_t> dst);

    /** Convert one Coeff-domain polynomial over the source limbs. */
    RnsPolynomial apply(const RnsPolynomial &a) const;

    /** Batched apply: one flattened (slot x limb) dispatch. */
    std::vector<RnsPolynomial>
    applyBatch(const std::vector<const RnsPolynomial *> &as,
               ThreadPool *pool = nullptr) const;

    const std::vector<std::size_t> &sourceLimbs() const { return src_; }
    const std::vector<std::size_t> &targetLimbs() const { return dst_; }

  private:
    void scalePhase(const RnsPolynomial &a, u64 *y) const;
    void accumulatePhase(const u64 *y, std::size_t j, u64 *dst) const;

    const RnsTower *tower_;
    std::vector<std::size_t> src_;
    std::vector<std::size_t> dst_;
    std::vector<u64> hatInv_;      ///< s entries
    std::vector<u64> hatInvShoup_; ///< s entries
    std::vector<u64> hat_;         ///< s x t, row i = source limb i
};

/**
 * Phase-split ModUp: the union basis {q_0..q_{level}} + {p_0..p_{K-1}},
 * the copied-vs-converted limb layout, and the Conv factors for one
 * digit shape at one level, computed once and reused across every
 * hoisted rotation and batch slot. apply()/applyBatch() are
 * bit-identical to modUp()/modUpBatch().
 */
class ModUpPlan
{
  public:
    ModUpPlan(const RnsTower &tower,
              std::vector<std::size_t> digit_limbs,
              std::size_t level_count);

    RnsPolynomial apply(const RnsPolynomial &digit) const;

    std::vector<RnsPolynomial>
    applyBatch(const std::vector<const RnsPolynomial *> &digits,
               ThreadPool *pool = nullptr) const;

    /**
     * applyBatch writing into caller-provided outputs (preshaped to
     * unionLimbs(), Coeff domain) — the exec::Workspace hook that
     * keeps steady-state hoists off the allocator. Bit-identical to
     * applyBatch.
     */
    void applyBatchInto(const std::vector<const RnsPolynomial *> &digits,
                        RnsPolynomial *const *outs,
                        ThreadPool *pool = nullptr) const;

    const std::vector<std::size_t> &unionLimbs() const { return target_; }

  private:
    const RnsTower *tower_;
    std::vector<std::size_t> digit_limbs_;
    std::vector<std::size_t> target_;
    /** copySrc_[j]: digit-limb position copied into target slot j, or
        npos when the limb comes from the conversion. */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::vector<std::size_t> copySrc_;
    BaseConvPlan conv_;
};

/**
 * Phase-split ModDown: the q/p limb split and the p->q Conv factors
 * plus P^-1 (Shoup form) per remaining limb for one union basis.
 * Hoisted rotation tails share one plan across every step.
 * apply()/applyBatch() are bit-identical to modDown()/modDownBatch().
 */
class ModDownPlan
{
  public:
    /** `union_limbs` = active q-limbs followed by all special limbs. */
    ModDownPlan(const RnsTower &tower,
                const std::vector<std::size_t> &union_limbs);

    RnsPolynomial apply(const RnsPolynomial &a) const;

    std::vector<RnsPolynomial>
    applyBatch(const std::vector<const RnsPolynomial *> &as,
               ThreadPool *pool = nullptr) const;

    /**
     * applyBatch writing into caller-provided outputs (preshaped to
     * qLimbs(), Coeff domain) — the exec::Workspace hook. Bit-identical
     * to applyBatch.
     */
    void applyBatchInto(const std::vector<const RnsPolynomial *> &as,
                        RnsPolynomial *const *outs,
                        ThreadPool *pool = nullptr) const;

    /** The surviving q-limbs (the outputs' limb set). */
    const std::vector<std::size_t> &qLimbs() const { return q_idx_; }

  private:
    bool matchesUnionBasis(const RnsPolynomial &a) const;

    const RnsTower *tower_;
    std::vector<std::size_t> q_idx_;
    std::vector<std::size_t> p_idx_;
    std::vector<u64> pInv_;
    std::vector<u64> pInvShoup_;
    BaseConvPlan conv_; ///< p -> q
};

/**
 * Convert a Coeff-domain polynomial from its current basis to
 * `target_limbs`: out_j = sum_i [a_i * (S/s_i)^-1 mod s_i]
 * * (S/s_i mod t_j) (mod t_j). Source limbs must be distinct primes.
 */
RnsPolynomial fastBaseConv(const RnsPolynomial &a,
                           const std::vector<std::size_t> &target_limbs);

/**
 * Digit decomposition (Dcomp): split the first `active` limbs of `a`
 * into digits of at most `alpha` consecutive limbs.
 * Returns one Coeff-domain polynomial per digit, each carrying only
 * its digit's limbs.
 */
std::vector<RnsPolynomial> decomposeDigits(const RnsPolynomial &a,
                                           std::size_t alpha);

/**
 * ModUp: extend one digit to the union basis
 * {q_0..q_{level}} + {p_0..p_{K-1}}: digit limbs are copied, all
 * other limbs come from fastBaseConv.
 */
RnsPolynomial modUp(const RnsPolynomial &digit, std::size_t level_count);

/**
 * ModDown: given `a` over {q_0..q_l} + {p_*} (Coeff domain), return
 * round(a / P) over {q_0..q_l}:
 *   b_j = P^-1 * (a_j - Conv_{p->q}(a mod P)_j) mod q_j.
 */
RnsPolynomial modDown(const RnsPolynomial &a);

/**
 * Exact divide-and-round by the last limb's prime (the core of
 * RESCALE, paper Alg. 6): for j < last,
 *   out_j = q_last^-1 * (a_j - [a_last]_{q_j}) mod q_j
 * with a centered lift of the last limb. `a` must be Coeff domain.
 */
RnsPolynomial rescaleByLastLimb(const RnsPolynomial &a);

/*
 * Batched counterparts for operation-level batching (paper SIV-D/E).
 * Every input must carry the same limb set, so the O(s^2 + s*t) CRT
 * factors are computed once and shared by the whole batch, and the
 * per-coefficient work drains through the pool as one flattened
 * (slot x limb) dispatch. Each returns exactly what `batch` serial
 * calls would, bit for bit.
 */

/** Batched fastBaseConv. */
std::vector<RnsPolynomial>
fastBaseConvBatch(const std::vector<const RnsPolynomial *> &as,
                  const std::vector<std::size_t> &target_limbs,
                  ThreadPool *pool = nullptr);

/** Batched ModUp of one digit position across the batch. */
std::vector<RnsPolynomial>
modUpBatch(const std::vector<const RnsPolynomial *> &digits,
           std::size_t level_count, ThreadPool *pool = nullptr);

/** Batched ModDown. */
std::vector<RnsPolynomial>
modDownBatch(const std::vector<const RnsPolynomial *> &as,
             ThreadPool *pool = nullptr);

/** Batched RESCALE core. */
std::vector<RnsPolynomial>
rescaleByLastLimbBatch(const std::vector<const RnsPolynomial *> &as,
                       ThreadPool *pool = nullptr);

} // namespace tensorfhe::rns

#endif // TENSORFHE_RNS_CONV_HH
