#include "rns/conv.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"

namespace tensorfhe::rns
{

namespace
{

/**
 * CRT factors of the approximate base conversion, fixed by the
 * (source limbs, target limbs) pair: hatInv_i = (S/s_i)^-1 mod s_i
 * and hat_ij = (S/s_i) mod t_j. O(s^2 + s*t) scalar work — computed
 * once per batch and shared by every slot.
 */
struct ConvFactors
{
    std::vector<u64> hatInv;      ///< s entries
    std::vector<u64> hatInvShoup; ///< s entries
    std::vector<u64> hat;         ///< s x t, row i = source limb i
};

ConvFactors
convFactors(const RnsTower &tower, const std::vector<std::size_t> &src,
            const std::vector<std::size_t> &targets)
{
    std::size_t s = src.size();
    std::size_t t = targets.size();
    ConvFactors f;
    f.hatInv.resize(s);
    f.hatInvShoup.resize(s);
    for (std::size_t i = 0; i < s; ++i) {
        const Modulus &mi = tower.modulus(src[i]);
        u64 prod = 1;
        for (std::size_t i2 = 0; i2 < s; ++i2) {
            if (i2 != i)
                prod = mi.mul(prod, tower.prime(src[i2]) % mi.value());
        }
        f.hatInv[i] = mi.inv(prod);
        f.hatInvShoup[i] = shoupPrecompute(f.hatInv[i], mi.value());
    }
    f.hat.resize(s * t);
    for (std::size_t j = 0; j < t; ++j) {
        const Modulus &mj = tower.modulus(targets[j]);
        for (std::size_t i = 0; i < s; ++i) {
            u64 prod = 1;
            for (std::size_t i2 = 0; i2 < s; ++i2) {
                if (i2 != i)
                    prod = mj.mul(prod, tower.prime(src[i2]) % mj.value());
            }
            f.hat[i * t + j] = prod;
        }
    }
    return f;
}

/** y_i = a_i * hatInv_i mod s_i for every source limb of one slot. */
void
convScale(const RnsPolynomial &a, const ConvFactors &f, u64 *y)
{
    std::size_t n = a.n();
    for (std::size_t i = 0; i < a.numLimbs(); ++i) {
        const Modulus &mi = a.limbModulus(i);
        const u64 *src = a.limb(i);
        u64 *dst = y + i * n;
        for (std::size_t c = 0; c < n; ++c)
            dst[c] = mulModShoup(src[c], f.hatInv[i], f.hatInvShoup[i],
                                 mi.value());
    }
}

/** out_j = sum_i y_i * hat_ij for one (slot, target-limb) task. */
void
convAccumulate(const u64 *y, const ConvFactors &f, std::size_t s,
               std::size_t n, std::size_t t, std::size_t j,
               const Modulus &mj, u64 *dst)
{
    for (std::size_t c = 0; c < n; ++c) {
        u128 acc = 0;
        for (std::size_t i = 0; i < s; ++i)
            acc += static_cast<u128>(y[i * n + c]) * f.hat[i * t + j];
        dst[c] = mj.reduce(acc);
    }
}

ThreadPool &
poolOrGlobal(ThreadPool *pool)
{
    return pool ? *pool : ThreadPool::global();
}

} // namespace

RnsPolynomial
fastBaseConv(const RnsPolynomial &a,
             const std::vector<std::size_t> &target_limbs)
{
    TFHE_ASSERT(a.domain() == Domain::Coeff,
                "Conv operates in coefficient domain");
    const RnsTower &tower = a.tower();
    std::size_t n = a.n();
    std::size_t s = a.numLimbs();
    std::size_t t = target_limbs.size();
    ScopedKernelTimer timer(KernelKind::Conv, (s + t) * n);

    ConvFactors f = convFactors(tower, a.limbIndices(), target_limbs);
    std::vector<u64> y(s * n);
    convScale(a, f, y.data());

    RnsPolynomial out(tower, target_limbs, Domain::Coeff);
    ThreadPool::global().parallelFor(0, t, [&](std::size_t j) {
        convAccumulate(y.data(), f, s, n, t, j,
                       tower.modulus(target_limbs[j]), out.limb(j));
    });
    return out;
}

std::vector<RnsPolynomial>
fastBaseConvBatch(const std::vector<const RnsPolynomial *> &as,
                  const std::vector<std::size_t> &target_limbs,
                  ThreadPool *pool)
{
    std::size_t batch = as.size();
    if (batch == 0)
        return {};
    const RnsPolynomial &front = *as[0];
    const RnsTower &tower = front.tower();
    std::size_t n = front.n();
    std::size_t s = front.numLimbs();
    std::size_t t = target_limbs.size();
    for (const RnsPolynomial *a : as) {
        TFHE_ASSERT(a->domain() == Domain::Coeff,
                    "Conv operates in coefficient domain");
        TFHE_ASSERT(a->limbIndices() == front.limbIndices(),
                    "batched Conv requires a uniform limb set");
    }
    ScopedKernelTimer timer(KernelKind::Conv, batch * (s + t) * n);

    // One factor table for the whole batch (paper SIV-B data reuse).
    ConvFactors f = convFactors(tower, front.limbIndices(), target_limbs);

    ThreadPool &tp = poolOrGlobal(pool);
    std::vector<u64> y(batch * s * n);
    tp.parallelFor2D(batch, s, [&](std::size_t b, std::size_t i) {
        const RnsPolynomial &a = *as[b];
        const Modulus &mi = a.limbModulus(i);
        const u64 *src = a.limb(i);
        u64 *dst = y.data() + (b * s + i) * n;
        for (std::size_t c = 0; c < n; ++c)
            dst[c] = mulModShoup(src[c], f.hatInv[i], f.hatInvShoup[i],
                                 mi.value());
    });

    std::vector<RnsPolynomial> out;
    out.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b)
        out.emplace_back(tower, target_limbs, Domain::Coeff);
    tp.parallelFor2D(batch, t, [&](std::size_t b, std::size_t j) {
        convAccumulate(y.data() + b * s * n, f, s, n, t, j,
                       tower.modulus(target_limbs[j]), out[b].limb(j));
    });
    return out;
}

std::vector<RnsPolynomial>
decomposeDigits(const RnsPolynomial &a, std::size_t alpha)
{
    TFHE_ASSERT(alpha >= 1);
    std::size_t limbs = a.numLimbs();
    std::vector<RnsPolynomial> digits;
    for (std::size_t start = 0; start < limbs; start += alpha) {
        std::size_t stop = std::min(start + alpha, limbs);
        std::vector<std::size_t> idx(a.limbIndices().begin() + start,
                                     a.limbIndices().begin() + stop);
        RnsPolynomial d(a.tower(), idx, a.domain());
        for (std::size_t i = start; i < stop; ++i) {
            std::copy(a.limb(i), a.limb(i) + a.n(),
                      d.limb(i - start));
        }
        digits.push_back(std::move(d));
    }
    return digits;
}

RnsPolynomial
modUp(const RnsPolynomial &digit, std::size_t level_count)
{
    const RnsTower &tower = digit.tower();
    TFHE_ASSERT(digit.domain() == Domain::Coeff);

    // Union basis: active q-limbs then all special limbs.
    std::vector<std::size_t> target;
    for (std::size_t i = 0; i < level_count; ++i)
        target.push_back(i);
    for (std::size_t k = 0; k < tower.numP(); ++k)
        target.push_back(tower.specialIndex(k));

    // Limbs outside the digit get converted values.
    std::vector<std::size_t> others;
    for (std::size_t idx : target) {
        if (std::find(digit.limbIndices().begin(),
                      digit.limbIndices().end(), idx)
                == digit.limbIndices().end()) {
            others.push_back(idx);
        }
    }
    RnsPolynomial converted = fastBaseConv(digit, others);

    RnsPolynomial out(tower, target, Domain::Coeff);
    std::size_t n = digit.n();
    std::size_t oi = 0;
    for (std::size_t j = 0; j < target.size(); ++j) {
        auto it = std::find(digit.limbIndices().begin(),
                            digit.limbIndices().end(), target[j]);
        if (it != digit.limbIndices().end()) {
            std::size_t src = static_cast<std::size_t>(
                it - digit.limbIndices().begin());
            std::copy(digit.limb(src), digit.limb(src) + n, out.limb(j));
        } else {
            std::copy(converted.limb(oi), converted.limb(oi) + n,
                      out.limb(j));
            ++oi;
        }
    }
    return out;
}

RnsPolynomial
modDown(const RnsPolynomial &a)
{
    const RnsTower &tower = a.tower();
    TFHE_ASSERT(a.domain() == Domain::Coeff);
    std::size_t k = tower.numP();
    TFHE_ASSERT(a.numLimbs() > k, "nothing to drop");
    std::size_t ql = a.numLimbs() - k; // q-limbs in the result

    // The special-limb part of a.
    std::vector<std::size_t> p_idx(a.limbIndices().end() - k,
                                   a.limbIndices().end());
    for (std::size_t j = 0; j < k; ++j)
        TFHE_ASSERT(p_idx[j] >= tower.numQ(), "limb order violated");
    RnsPolynomial a_p(tower, p_idx, Domain::Coeff);
    std::size_t n = a.n();
    for (std::size_t j = 0; j < k; ++j)
        std::copy(a.limb(ql + j), a.limb(ql + j) + n, a_p.limb(j));

    // Convert a mod P onto the q-limbs, subtract, multiply by P^-1.
    std::vector<std::size_t> q_idx(a.limbIndices().begin(),
                                   a.limbIndices().begin() + ql);
    RnsPolynomial conv = fastBaseConv(a_p, q_idx);

    RnsPolynomial out(tower, q_idx, Domain::Coeff);
    ThreadPool::global().parallelFor(0, ql, [&](std::size_t j) {
        const Modulus &mod = tower.modulus(q_idx[j]);
        u64 pinv = tower.pInvModQ(q_idx[j]);
        u64 pinv_shoup = shoupPrecompute(pinv, mod.value());
        const u64 *pa = a.limb(j);
        const u64 *pc = conv.limb(j);
        u64 *po = out.limb(j);
        for (std::size_t c = 0; c < n; ++c) {
            po[c] = mulModShoup(mod.sub(pa[c], pc[c]), pinv, pinv_shoup,
                                mod.value());
        }
    });
    return out;
}

RnsPolynomial
rescaleByLastLimb(const RnsPolynomial &a)
{
    TFHE_ASSERT(a.domain() == Domain::Coeff);
    TFHE_ASSERT(a.numLimbs() >= 2, "cannot rescale a one-limb poly");
    const RnsTower &tower = a.tower();
    std::size_t last = a.numLimbs() - 1;
    std::size_t n = a.n();
    u64 q_last = tower.prime(a.limbIndex(last));
    const u64 *pl = a.limb(last);

    std::vector<std::size_t> q_idx(a.limbIndices().begin(),
                                   a.limbIndices().begin() + last);
    RnsPolynomial out(tower, q_idx, Domain::Coeff);
    ThreadPool::global().parallelFor(0, last, [&](std::size_t j) {
        const Modulus &mod = tower.modulus(q_idx[j]);
        u64 q = mod.value();
        u64 qlast_inv = mod.inv(q_last % q);
        u64 qi_shoup = shoupPrecompute(qlast_inv, q);
        const u64 *pa = a.limb(j);
        u64 *po = out.limb(j);
        for (std::size_t c = 0; c < n; ++c) {
            // Centered lift of the last-limb residue into [0, q).
            u64 v = pl[c];
            u64 lifted = v <= q_last / 2
                ? v % q
                : mod.sub(0, (q_last - v) % q);
            po[c] = mulModShoup(mod.sub(pa[c], lifted), qlast_inv,
                                qi_shoup, q);
        }
    });
    return out;
}

std::vector<RnsPolynomial>
modUpBatch(const std::vector<const RnsPolynomial *> &digits,
           std::size_t level_count, ThreadPool *pool)
{
    std::size_t batch = digits.size();
    if (batch == 0)
        return {};
    const RnsPolynomial &front = *digits[0];
    const RnsTower &tower = front.tower();
    std::size_t n = front.n();

    // Union basis and the converted-limb list are fixed by the digit's
    // limb set, so they are computed once for the batch.
    std::vector<std::size_t> target;
    for (std::size_t i = 0; i < level_count; ++i)
        target.push_back(i);
    for (std::size_t k = 0; k < tower.numP(); ++k)
        target.push_back(tower.specialIndex(k));

    std::vector<std::size_t> others;
    for (std::size_t idx : target) {
        if (std::find(front.limbIndices().begin(),
                      front.limbIndices().end(), idx)
                == front.limbIndices().end()) {
            others.push_back(idx);
        }
    }
    auto converted = fastBaseConvBatch(digits, others, pool);

    std::vector<RnsPolynomial> out;
    out.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b)
        out.emplace_back(tower, target, Domain::Coeff);
    poolOrGlobal(pool).parallelFor(0, batch, [&](std::size_t b) {
        const RnsPolynomial &digit = *digits[b];
        std::size_t oi = 0;
        for (std::size_t j = 0; j < target.size(); ++j) {
            auto it = std::find(digit.limbIndices().begin(),
                                digit.limbIndices().end(), target[j]);
            if (it != digit.limbIndices().end()) {
                std::size_t src = static_cast<std::size_t>(
                    it - digit.limbIndices().begin());
                std::copy(digit.limb(src), digit.limb(src) + n,
                          out[b].limb(j));
            } else {
                std::copy(converted[b].limb(oi),
                          converted[b].limb(oi) + n, out[b].limb(j));
                ++oi;
            }
        }
    });
    return out;
}

std::vector<RnsPolynomial>
modDownBatch(const std::vector<const RnsPolynomial *> &as,
             ThreadPool *pool)
{
    std::size_t batch = as.size();
    if (batch == 0)
        return {};
    const RnsPolynomial &front = *as[0];
    const RnsTower &tower = front.tower();
    std::size_t k = tower.numP();
    TFHE_ASSERT(front.numLimbs() > k, "nothing to drop");
    std::size_t ql = front.numLimbs() - k;
    std::size_t n = front.n();

    std::vector<std::size_t> p_idx(front.limbIndices().end() - k,
                                   front.limbIndices().end());
    for (std::size_t j = 0; j < k; ++j)
        TFHE_ASSERT(p_idx[j] >= tower.numQ(), "limb order violated");
    std::vector<std::size_t> q_idx(front.limbIndices().begin(),
                                   front.limbIndices().begin() + ql);

    ThreadPool &tp = poolOrGlobal(pool);
    std::vector<RnsPolynomial> a_ps;
    a_ps.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        TFHE_ASSERT(as[b]->domain() == Domain::Coeff);
        TFHE_ASSERT(as[b]->limbIndices() == front.limbIndices(),
                    "batched ModDown requires a uniform limb set");
        a_ps.emplace_back(tower, p_idx, Domain::Coeff);
    }
    tp.parallelFor2D(batch, k, [&](std::size_t b, std::size_t j) {
        std::copy(as[b]->limb(ql + j), as[b]->limb(ql + j) + n,
                  a_ps[b].limb(j));
    });

    std::vector<const RnsPolynomial *> a_p_ptrs(batch);
    for (std::size_t b = 0; b < batch; ++b)
        a_p_ptrs[b] = &a_ps[b];
    auto conv = fastBaseConvBatch(a_p_ptrs, q_idx, pool);

    // P^-1 per q-limb is slot-independent: precompute once.
    std::vector<u64> pinv(ql), pinv_shoup(ql);
    for (std::size_t j = 0; j < ql; ++j) {
        pinv[j] = tower.pInvModQ(q_idx[j]);
        pinv_shoup[j] =
            shoupPrecompute(pinv[j], tower.modulus(q_idx[j]).value());
    }

    std::vector<RnsPolynomial> out;
    out.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b)
        out.emplace_back(tower, q_idx, Domain::Coeff);
    tp.parallelFor2D(batch, ql, [&](std::size_t b, std::size_t j) {
        const Modulus &mod = tower.modulus(q_idx[j]);
        const u64 *pa = as[b]->limb(j);
        const u64 *pc = conv[b].limb(j);
        u64 *po = out[b].limb(j);
        for (std::size_t c = 0; c < n; ++c) {
            po[c] = mulModShoup(mod.sub(pa[c], pc[c]), pinv[j],
                                pinv_shoup[j], mod.value());
        }
    });
    return out;
}

std::vector<RnsPolynomial>
rescaleByLastLimbBatch(const std::vector<const RnsPolynomial *> &as,
                       ThreadPool *pool)
{
    std::size_t batch = as.size();
    if (batch == 0)
        return {};
    const RnsPolynomial &front = *as[0];
    TFHE_ASSERT(front.numLimbs() >= 2, "cannot rescale a one-limb poly");
    const RnsTower &tower = front.tower();
    std::size_t last = front.numLimbs() - 1;
    std::size_t n = front.n();
    u64 q_last = tower.prime(front.limbIndex(last));

    std::vector<std::size_t> q_idx(front.limbIndices().begin(),
                                   front.limbIndices().begin() + last);
    // q_last^-1 per remaining limb is slot-independent.
    std::vector<u64> qinv(last), qinv_shoup(last);
    for (std::size_t j = 0; j < last; ++j) {
        const Modulus &mod = tower.modulus(q_idx[j]);
        qinv[j] = mod.inv(q_last % mod.value());
        qinv_shoup[j] = shoupPrecompute(qinv[j], mod.value());
    }

    std::vector<RnsPolynomial> out;
    out.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        TFHE_ASSERT(as[b]->domain() == Domain::Coeff);
        TFHE_ASSERT(as[b]->limbIndices() == front.limbIndices(),
                    "batched RESCALE requires a uniform limb set");
        out.emplace_back(tower, q_idx, Domain::Coeff);
    }
    poolOrGlobal(pool).parallelFor2D(batch, last, [&](std::size_t b,
                                                      std::size_t j) {
        const Modulus &mod = tower.modulus(q_idx[j]);
        u64 q = mod.value();
        const u64 *pl = as[b]->limb(last);
        const u64 *pa = as[b]->limb(j);
        u64 *po = out[b].limb(j);
        for (std::size_t c = 0; c < n; ++c) {
            u64 v = pl[c];
            u64 lifted = v <= q_last / 2
                ? v % q
                : mod.sub(0, (q_last - v) % q);
            po[c] = mulModShoup(mod.sub(pa[c], lifted), qinv[j],
                                qinv_shoup[j], q);
        }
    });
    return out;
}

} // namespace tensorfhe::rns
