#include "rns/conv.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "trace/trace.hh"

namespace tensorfhe::rns
{

namespace
{

ThreadPool &
poolOrGlobal(ThreadPool *pool)
{
    return pool ? *pool : ThreadPool::global();
}

} // namespace

// ------------------------------------------------------------------
// BaseConvPlan

BaseConvPlan::BaseConvPlan(const RnsTower &tower,
                           std::vector<std::size_t> src,
                           std::vector<std::size_t> dst)
    : tower_(&tower), src_(std::move(src)), dst_(std::move(dst))
{
    std::size_t s = src_.size();
    std::size_t t = dst_.size();
    hatInv_.resize(s);
    hatInvShoup_.resize(s);
    for (std::size_t i = 0; i < s; ++i) {
        const Modulus &mi = tower.modulus(src_[i]);
        u64 prod = 1;
        for (std::size_t i2 = 0; i2 < s; ++i2) {
            if (i2 != i)
                prod = mi.mul(prod, tower.prime(src_[i2]) % mi.value());
        }
        hatInv_[i] = mi.inv(prod);
        hatInvShoup_[i] = shoupPrecompute(hatInv_[i], mi.value());
    }
    hat_.resize(s * t);
    for (std::size_t j = 0; j < t; ++j) {
        const Modulus &mj = tower.modulus(dst_[j]);
        for (std::size_t i = 0; i < s; ++i) {
            u64 prod = 1;
            for (std::size_t i2 = 0; i2 < s; ++i2) {
                if (i2 != i)
                    prod = mj.mul(prod, tower.prime(src_[i2]) % mj.value());
            }
            hat_[i * t + j] = prod;
        }
    }
}

/** y_i = a_i * hatInv_i mod s_i for every source limb of one slot. */
void
BaseConvPlan::scalePhase(const RnsPolynomial &a, u64 *y) const
{
    std::size_t n = a.n();
    for (std::size_t i = 0; i < a.numLimbs(); ++i) {
        const Modulus &mi = a.limbModulus(i);
        const u64 *src = a.limb(i);
        u64 *dst = y + i * n;
        for (std::size_t c = 0; c < n; ++c)
            dst[c] = mulModShoup(src[c], hatInv_[i], hatInvShoup_[i],
                                 mi.value());
    }
}

/** out_j = sum_i y_i * hat_ij for one (slot, target-limb) task. */
void
BaseConvPlan::accumulatePhase(const u64 *y, std::size_t j, u64 *dst) const
{
    std::size_t s = src_.size();
    std::size_t t = dst_.size();
    std::size_t n = tower_->n();
    const Modulus &mj = tower_->modulus(dst_[j]);
    for (std::size_t c = 0; c < n; ++c) {
        u128 acc = 0;
        for (std::size_t i = 0; i < s; ++i)
            acc += static_cast<u128>(y[i * n + c]) * hat_[i * t + j];
        dst[c] = mj.reduce(acc);
    }
}

RnsPolynomial
BaseConvPlan::apply(const RnsPolynomial &a) const
{
    TFHE_ASSERT(a.domain() == Domain::Coeff,
                "Conv operates in coefficient domain");
    TFHE_ASSERT(a.limbIndices() == src_,
                "polynomial does not match the plan's source basis");
    std::size_t n = a.n();
    std::size_t s = src_.size();
    std::size_t t = dst_.size();
    ScopedKernelTimer timer(KernelKind::Conv, (s + t) * n);

    std::vector<u64> y(s * n);
    scalePhase(a, y.data());

    RnsPolynomial out(*tower_, dst_, Domain::Coeff);
    ThreadPool::global().parallelFor(0, t, [&](std::size_t j) {
        accumulatePhase(y.data(), j, out.limb(j));
    });
    return out;
}

std::vector<RnsPolynomial>
BaseConvPlan::applyBatch(const std::vector<const RnsPolynomial *> &as,
                         ThreadPool *pool) const
{
    std::size_t batch = as.size();
    if (batch == 0)
        return {};
    std::size_t n = tower_->n();
    std::size_t s = src_.size();
    std::size_t t = dst_.size();
    for (const RnsPolynomial *a : as) {
        TFHE_ASSERT(a->domain() == Domain::Coeff,
                    "Conv operates in coefficient domain");
        TFHE_ASSERT(a->limbIndices() == src_,
                    "batched Conv requires the plan's source basis");
    }
    ScopedKernelTimer timer(KernelKind::Conv, batch * (s + t) * n);

    ThreadPool &tp = poolOrGlobal(pool);
    std::vector<u64> y(batch * s * n);
    tp.parallelFor2D(batch, s, [&](std::size_t b, std::size_t i) {
        const RnsPolynomial &a = *as[b];
        const Modulus &mi = a.limbModulus(i);
        const u64 *src = a.limb(i);
        u64 *dst = y.data() + (b * s + i) * n;
        for (std::size_t c = 0; c < n; ++c)
            dst[c] = mulModShoup(src[c], hatInv_[i], hatInvShoup_[i],
                                 mi.value());
    });

    std::vector<RnsPolynomial> out;
    out.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b)
        out.emplace_back(*tower_, dst_, Domain::Coeff);
    tp.parallelFor2D(batch, t, [&](std::size_t b, std::size_t j) {
        accumulatePhase(y.data() + b * s * n, j, out[b].limb(j));
    });
    return out;
}

RnsPolynomial
fastBaseConv(const RnsPolynomial &a,
             const std::vector<std::size_t> &target_limbs)
{
    return BaseConvPlan(a.tower(), a.limbIndices(), target_limbs)
        .apply(a);
}

std::vector<RnsPolynomial>
fastBaseConvBatch(const std::vector<const RnsPolynomial *> &as,
                  const std::vector<std::size_t> &target_limbs,
                  ThreadPool *pool)
{
    if (as.empty())
        return {};
    // One factor table for the whole batch (paper SIV-B data reuse).
    BaseConvPlan plan(as[0]->tower(), as[0]->limbIndices(), target_limbs);
    return plan.applyBatch(as, pool);
}

std::vector<RnsPolynomial>
decomposeDigits(const RnsPolynomial &a, std::size_t alpha)
{
    TFHE_ASSERT(alpha >= 1);
    std::size_t limbs = a.numLimbs();
    std::vector<RnsPolynomial> digits;
    for (std::size_t start = 0; start < limbs; start += alpha) {
        std::size_t stop = std::min(start + alpha, limbs);
        std::vector<std::size_t> idx(a.limbIndices().begin() + start,
                                     a.limbIndices().begin() + stop);
        RnsPolynomial d(a.tower(), idx, a.domain());
        for (std::size_t i = start; i < stop; ++i) {
            std::copy(a.limb(i), a.limb(i) + a.n(),
                      d.limb(i - start));
        }
        digits.push_back(std::move(d));
    }
    return digits;
}

// ------------------------------------------------------------------
// ModUpPlan

namespace
{

std::vector<std::size_t>
unionBasis(const RnsTower &tower, std::size_t level_count)
{
    std::vector<std::size_t> target;
    for (std::size_t i = 0; i < level_count; ++i)
        target.push_back(i);
    for (std::size_t k = 0; k < tower.numP(); ++k)
        target.push_back(tower.specialIndex(k));
    return target;
}

std::vector<std::size_t>
limbsOutside(const std::vector<std::size_t> &target,
             const std::vector<std::size_t> &digit_limbs)
{
    std::vector<std::size_t> others;
    for (std::size_t idx : target) {
        if (std::find(digit_limbs.begin(), digit_limbs.end(), idx)
                == digit_limbs.end()) {
            others.push_back(idx);
        }
    }
    return others;
}

} // namespace

ModUpPlan::ModUpPlan(const RnsTower &tower,
                     std::vector<std::size_t> digit_limbs,
                     std::size_t level_count)
    : tower_(&tower), digit_limbs_(std::move(digit_limbs)),
      target_(unionBasis(tower, level_count)),
      conv_(tower, digit_limbs_, limbsOutside(target_, digit_limbs_))
{
    copySrc_.resize(target_.size());
    for (std::size_t j = 0; j < target_.size(); ++j) {
        auto it = std::find(digit_limbs_.begin(), digit_limbs_.end(),
                            target_[j]);
        copySrc_[j] = it == digit_limbs_.end()
            ? npos
            : static_cast<std::size_t>(it - digit_limbs_.begin());
    }
}

RnsPolynomial
ModUpPlan::apply(const RnsPolynomial &digit) const
{
    TFHE_ASSERT(digit.domain() == Domain::Coeff);
    TFHE_ASSERT(digit.limbIndices() == digit_limbs_,
                "digit does not match the plan's limb set");
    TFHE_TRACE_SPAN("rns", "modup");
    RnsPolynomial converted = conv_.apply(digit);

    RnsPolynomial out(*tower_, target_, Domain::Coeff);
    std::size_t n = digit.n();
    std::size_t oi = 0;
    for (std::size_t j = 0; j < target_.size(); ++j) {
        if (copySrc_[j] != npos) {
            std::copy(digit.limb(copySrc_[j]),
                      digit.limb(copySrc_[j]) + n, out.limb(j));
        } else {
            std::copy(converted.limb(oi), converted.limb(oi) + n,
                      out.limb(j));
            ++oi;
        }
    }
    return out;
}

std::vector<RnsPolynomial>
ModUpPlan::applyBatch(const std::vector<const RnsPolynomial *> &digits,
                      ThreadPool *pool) const
{
    std::size_t batch = digits.size();
    if (batch == 0)
        return {};
    std::vector<RnsPolynomial> out;
    out.reserve(batch);
    std::vector<RnsPolynomial *> out_ptrs(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        out.emplace_back(*tower_, target_, Domain::Coeff);
        out_ptrs[b] = &out[b];
    }
    applyBatchInto(digits, out_ptrs.data(), pool);
    return out;
}

void
ModUpPlan::applyBatchInto(const std::vector<const RnsPolynomial *> &digits,
                          RnsPolynomial *const *outs,
                          ThreadPool *pool) const
{
    std::size_t batch = digits.size();
    if (batch == 0)
        return;
    trace::TraceSpan tsp("rns", "modup");
    tsp.arg("batch", static_cast<s64>(batch))
        .arg("limbs", static_cast<s64>(target_.size()));
    std::size_t n = tower_->n();
    for (std::size_t b = 0; b < batch; ++b)
        TFHE_ASSERT(outs[b]->limbIndices() == target_
                        && outs[b]->domain() == Domain::Coeff,
                    "ModUp output not preshaped to the union basis");
    auto converted = conv_.applyBatch(digits, pool);

    poolOrGlobal(pool).parallelFor(0, batch, [&](std::size_t b) {
        const RnsPolynomial &digit = *digits[b];
        std::size_t oi = 0;
        for (std::size_t j = 0; j < target_.size(); ++j) {
            if (copySrc_[j] != npos) {
                std::copy(digit.limb(copySrc_[j]),
                          digit.limb(copySrc_[j]) + n, outs[b]->limb(j));
            } else {
                std::copy(converted[b].limb(oi),
                          converted[b].limb(oi) + n, outs[b]->limb(j));
                ++oi;
            }
        }
    });
}

RnsPolynomial
modUp(const RnsPolynomial &digit, std::size_t level_count)
{
    return ModUpPlan(digit.tower(), digit.limbIndices(), level_count)
        .apply(digit);
}

std::vector<RnsPolynomial>
modUpBatch(const std::vector<const RnsPolynomial *> &digits,
           std::size_t level_count, ThreadPool *pool)
{
    if (digits.empty())
        return {};
    // Union basis and Conv factors are fixed by the digit's limb set,
    // so they are computed once for the batch.
    ModUpPlan plan(digits[0]->tower(), digits[0]->limbIndices(),
                   level_count);
    return plan.applyBatch(digits, pool);
}

// ------------------------------------------------------------------
// ModDownPlan

namespace
{

std::vector<std::size_t>
qPartOfUnion(const RnsTower &tower,
             const std::vector<std::size_t> &union_limbs)
{
    TFHE_ASSERT(union_limbs.size() > tower.numP(), "nothing to drop");
    return {union_limbs.begin(),
            union_limbs.end()
                - static_cast<std::ptrdiff_t>(tower.numP())};
}

std::vector<std::size_t>
pPartOfUnion(const RnsTower &tower,
             const std::vector<std::size_t> &union_limbs)
{
    TFHE_ASSERT(union_limbs.size() > tower.numP(), "nothing to drop");
    return {union_limbs.end()
                - static_cast<std::ptrdiff_t>(tower.numP()),
            union_limbs.end()};
}

} // namespace

ModDownPlan::ModDownPlan(const RnsTower &tower,
                         const std::vector<std::size_t> &union_limbs)
    : tower_(&tower), q_idx_(qPartOfUnion(tower, union_limbs)),
      p_idx_(pPartOfUnion(tower, union_limbs)),
      conv_(tower, p_idx_, q_idx_)
{
    std::size_t k = tower.numP();
    for (std::size_t j = 0; j < k; ++j)
        TFHE_ASSERT(p_idx_[j] >= tower.numQ(), "limb order violated");
    // P^-1 per q-limb is slot-independent: precompute once.
    std::size_t ql = q_idx_.size();
    pInv_.resize(ql);
    pInvShoup_.resize(ql);
    for (std::size_t j = 0; j < ql; ++j) {
        pInv_[j] = tower.pInvModQ(q_idx_[j]);
        pInvShoup_[j] =
            shoupPrecompute(pInv_[j], tower.modulus(q_idx_[j]).value());
    }
}

bool
ModDownPlan::matchesUnionBasis(const RnsPolynomial &a) const
{
    std::size_t ql = q_idx_.size();
    if (a.numLimbs() != ql + p_idx_.size())
        return false;
    return std::equal(q_idx_.begin(), q_idx_.end(),
                      a.limbIndices().begin())
        && std::equal(p_idx_.begin(), p_idx_.end(),
                      a.limbIndices().begin()
                          + static_cast<std::ptrdiff_t>(ql));
}

RnsPolynomial
ModDownPlan::apply(const RnsPolynomial &a) const
{
    TFHE_ASSERT(a.domain() == Domain::Coeff);
    std::size_t k = p_idx_.size();
    std::size_t ql = q_idx_.size();
    TFHE_ASSERT(matchesUnionBasis(a),
                "polynomial does not match the plan's union basis");
    TFHE_TRACE_SPAN("rns", "moddown");
    std::size_t n = a.n();

    // The special-limb part of a.
    RnsPolynomial a_p(*tower_, p_idx_, Domain::Coeff);
    for (std::size_t j = 0; j < k; ++j)
        std::copy(a.limb(ql + j), a.limb(ql + j) + n, a_p.limb(j));

    // Convert a mod P onto the q-limbs, subtract, multiply by P^-1.
    RnsPolynomial conv = conv_.apply(a_p);

    RnsPolynomial out(*tower_, q_idx_, Domain::Coeff);
    ThreadPool::global().parallelFor(0, ql, [&](std::size_t j) {
        const Modulus &mod = tower_->modulus(q_idx_[j]);
        const u64 *pa = a.limb(j);
        const u64 *pc = conv.limb(j);
        u64 *po = out.limb(j);
        for (std::size_t c = 0; c < n; ++c) {
            po[c] = mulModShoup(mod.sub(pa[c], pc[c]), pInv_[j],
                                pInvShoup_[j], mod.value());
        }
    });
    return out;
}

std::vector<RnsPolynomial>
ModDownPlan::applyBatch(const std::vector<const RnsPolynomial *> &as,
                        ThreadPool *pool) const
{
    std::size_t batch = as.size();
    if (batch == 0)
        return {};
    std::vector<RnsPolynomial> out;
    out.reserve(batch);
    std::vector<RnsPolynomial *> out_ptrs(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        out.emplace_back(*tower_, q_idx_, Domain::Coeff);
        out_ptrs[b] = &out[b];
    }
    applyBatchInto(as, out_ptrs.data(), pool);
    return out;
}

void
ModDownPlan::applyBatchInto(const std::vector<const RnsPolynomial *> &as,
                            RnsPolynomial *const *outs,
                            ThreadPool *pool) const
{
    std::size_t batch = as.size();
    if (batch == 0)
        return;
    trace::TraceSpan tsp("rns", "moddown");
    tsp.arg("batch", static_cast<s64>(batch))
        .arg("limbs", static_cast<s64>(q_idx_.size()));
    std::size_t k = p_idx_.size();
    std::size_t ql = q_idx_.size();
    std::size_t n = tower_->n();

    ThreadPool &tp = poolOrGlobal(pool);
    std::vector<RnsPolynomial> a_ps;
    a_ps.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        TFHE_ASSERT(as[b]->domain() == Domain::Coeff);
        TFHE_ASSERT(matchesUnionBasis(*as[b]),
                    "batched ModDown requires the plan's union basis");
        TFHE_ASSERT(outs[b]->limbIndices() == q_idx_
                        && outs[b]->domain() == Domain::Coeff,
                    "ModDown output not preshaped to the q-basis");
        a_ps.emplace_back(*tower_, p_idx_, Domain::Coeff);
    }
    tp.parallelFor2D(batch, k, [&](std::size_t b, std::size_t j) {
        std::copy(as[b]->limb(ql + j), as[b]->limb(ql + j) + n,
                  a_ps[b].limb(j));
    });

    std::vector<const RnsPolynomial *> a_p_ptrs(batch);
    for (std::size_t b = 0; b < batch; ++b)
        a_p_ptrs[b] = &a_ps[b];
    auto conv = conv_.applyBatch(a_p_ptrs, pool);

    tp.parallelFor2D(batch, ql, [&](std::size_t b, std::size_t j) {
        const Modulus &mod = tower_->modulus(q_idx_[j]);
        const u64 *pa = as[b]->limb(j);
        const u64 *pc = conv[b].limb(j);
        u64 *po = outs[b]->limb(j);
        for (std::size_t c = 0; c < n; ++c) {
            po[c] = mulModShoup(mod.sub(pa[c], pc[c]), pInv_[j],
                                pInvShoup_[j], mod.value());
        }
    });
}

RnsPolynomial
modDown(const RnsPolynomial &a)
{
    return ModDownPlan(a.tower(), a.limbIndices()).apply(a);
}

std::vector<RnsPolynomial>
modDownBatch(const std::vector<const RnsPolynomial *> &as,
             ThreadPool *pool)
{
    if (as.empty())
        return {};
    for (const RnsPolynomial *a : as)
        TFHE_ASSERT(a->limbIndices() == as[0]->limbIndices(),
                    "batched ModDown requires a uniform limb set");
    ModDownPlan plan(as[0]->tower(), as[0]->limbIndices());
    return plan.applyBatch(as, pool);
}

RnsPolynomial
rescaleByLastLimb(const RnsPolynomial &a)
{
    TFHE_ASSERT(a.domain() == Domain::Coeff);
    TFHE_ASSERT(a.numLimbs() >= 2, "cannot rescale a one-limb poly");
    const RnsTower &tower = a.tower();
    std::size_t last = a.numLimbs() - 1;
    std::size_t n = a.n();
    u64 q_last = tower.prime(a.limbIndex(last));
    const u64 *pl = a.limb(last);

    std::vector<std::size_t> q_idx(a.limbIndices().begin(),
                                   a.limbIndices().begin() + last);
    RnsPolynomial out(tower, q_idx, Domain::Coeff);
    ThreadPool::global().parallelFor(0, last, [&](std::size_t j) {
        const Modulus &mod = tower.modulus(q_idx[j]);
        u64 q = mod.value();
        u64 qlast_inv = mod.inv(q_last % q);
        u64 qi_shoup = shoupPrecompute(qlast_inv, q);
        const u64 *pa = a.limb(j);
        u64 *po = out.limb(j);
        for (std::size_t c = 0; c < n; ++c) {
            // Centered lift of the last-limb residue into [0, q).
            u64 v = pl[c];
            u64 lifted = v <= q_last / 2
                ? v % q
                : mod.sub(0, (q_last - v) % q);
            po[c] = mulModShoup(mod.sub(pa[c], lifted), qlast_inv,
                                qi_shoup, q);
        }
    });
    return out;
}

std::vector<RnsPolynomial>
rescaleByLastLimbBatch(const std::vector<const RnsPolynomial *> &as,
                       ThreadPool *pool)
{
    std::size_t batch = as.size();
    if (batch == 0)
        return {};
    const RnsPolynomial &front = *as[0];
    TFHE_ASSERT(front.numLimbs() >= 2, "cannot rescale a one-limb poly");
    const RnsTower &tower = front.tower();
    std::size_t last = front.numLimbs() - 1;
    std::size_t n = front.n();
    u64 q_last = tower.prime(front.limbIndex(last));

    std::vector<std::size_t> q_idx(front.limbIndices().begin(),
                                   front.limbIndices().begin() + last);
    // q_last^-1 per remaining limb is slot-independent.
    std::vector<u64> qinv(last), qinv_shoup(last);
    for (std::size_t j = 0; j < last; ++j) {
        const Modulus &mod = tower.modulus(q_idx[j]);
        qinv[j] = mod.inv(q_last % mod.value());
        qinv_shoup[j] = shoupPrecompute(qinv[j], mod.value());
    }

    std::vector<RnsPolynomial> out;
    out.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        TFHE_ASSERT(as[b]->domain() == Domain::Coeff);
        TFHE_ASSERT(as[b]->limbIndices() == front.limbIndices(),
                    "batched RESCALE requires a uniform limb set");
        out.emplace_back(tower, q_idx, Domain::Coeff);
    }
    poolOrGlobal(pool).parallelFor2D(batch, last, [&](std::size_t b,
                                                      std::size_t j) {
        const Modulus &mod = tower.modulus(q_idx[j]);
        u64 q = mod.value();
        const u64 *pl = as[b]->limb(last);
        const u64 *pa = as[b]->limb(j);
        u64 *po = out[b].limb(j);
        for (std::size_t c = 0; c < n; ++c) {
            u64 v = pl[c];
            u64 lifted = v <= q_last / 2
                ? v % q
                : mod.sub(0, (q_last - v) % q);
            po[c] = mulModShoup(mod.sub(pa[c], lifted), qinv[j],
                                qinv_shoup[j], q);
        }
    });
    return out;
}

} // namespace tensorfhe::rns
