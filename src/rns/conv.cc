#include "rns/conv.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"

namespace tensorfhe::rns
{

RnsPolynomial
fastBaseConv(const RnsPolynomial &a,
             const std::vector<std::size_t> &target_limbs)
{
    TFHE_ASSERT(a.domain() == Domain::Coeff,
                "Conv operates in coefficient domain");
    const RnsTower &tower = a.tower();
    std::size_t n = a.n();
    std::size_t s = a.numLimbs();
    ScopedKernelTimer timer(KernelKind::Conv,
                            (s + target_limbs.size()) * n);

    // Per-source-limb CRT factors: hatInv_i = (S/s_i)^-1 mod s_i and
    // hat_ij = (S/s_i) mod t_j. O(s^2 + s*t) scalar work.
    std::vector<u64> hat_inv(s);
    for (std::size_t i = 0; i < s; ++i) {
        const Modulus &mi = a.limbModulus(i);
        u64 prod = 1;
        for (std::size_t i2 = 0; i2 < s; ++i2) {
            if (i2 != i)
                prod = mi.mul(prod, tower.prime(a.limbIndex(i2))
                                        % mi.value());
        }
        hat_inv[i] = mi.inv(prod);
    }

    std::size_t t = target_limbs.size();
    std::vector<u64> hat(s * t);
    for (std::size_t j = 0; j < t; ++j) {
        const Modulus &mj = tower.modulus(target_limbs[j]);
        for (std::size_t i = 0; i < s; ++i) {
            u64 prod = 1;
            for (std::size_t i2 = 0; i2 < s; ++i2) {
                if (i2 != i)
                    prod = mj.mul(prod, tower.prime(a.limbIndex(i2))
                                            % mj.value());
            }
            hat[i * t + j] = prod;
        }
    }

    // y_i = a_i * hatInv_i mod s_i, then out_j = sum_i y_i * hat_ij.
    std::vector<u64> y(s * n);
    for (std::size_t i = 0; i < s; ++i) {
        const Modulus &mi = a.limbModulus(i);
        u64 hi = hat_inv[i];
        u64 hi_shoup = shoupPrecompute(hi, mi.value());
        const u64 *src = a.limb(i);
        u64 *dst = y.data() + i * n;
        for (std::size_t c = 0; c < n; ++c)
            dst[c] = mulModShoup(src[c], hi, hi_shoup, mi.value());
    }

    RnsPolynomial out(tower, target_limbs, Domain::Coeff);
    ThreadPool::global().parallelFor(0, t, [&](std::size_t j) {
        const Modulus &mj = tower.modulus(target_limbs[j]);
        u64 *dst = out.limb(j);
        for (std::size_t c = 0; c < n; ++c) {
            u128 acc = 0;
            for (std::size_t i = 0; i < s; ++i)
                acc += static_cast<u128>(y[i * n + c]) * hat[i * t + j];
            dst[c] = mj.reduce(acc);
        }
    });
    return out;
}

std::vector<RnsPolynomial>
decomposeDigits(const RnsPolynomial &a, std::size_t alpha)
{
    TFHE_ASSERT(alpha >= 1);
    std::size_t limbs = a.numLimbs();
    std::vector<RnsPolynomial> digits;
    for (std::size_t start = 0; start < limbs; start += alpha) {
        std::size_t stop = std::min(start + alpha, limbs);
        std::vector<std::size_t> idx(a.limbIndices().begin() + start,
                                     a.limbIndices().begin() + stop);
        RnsPolynomial d(a.tower(), idx, a.domain());
        for (std::size_t i = start; i < stop; ++i) {
            std::copy(a.limb(i), a.limb(i) + a.n(),
                      d.limb(i - start));
        }
        digits.push_back(std::move(d));
    }
    return digits;
}

RnsPolynomial
modUp(const RnsPolynomial &digit, std::size_t level_count)
{
    const RnsTower &tower = digit.tower();
    TFHE_ASSERT(digit.domain() == Domain::Coeff);

    // Union basis: active q-limbs then all special limbs.
    std::vector<std::size_t> target;
    for (std::size_t i = 0; i < level_count; ++i)
        target.push_back(i);
    for (std::size_t k = 0; k < tower.numP(); ++k)
        target.push_back(tower.specialIndex(k));

    // Limbs outside the digit get converted values.
    std::vector<std::size_t> others;
    for (std::size_t idx : target) {
        if (std::find(digit.limbIndices().begin(),
                      digit.limbIndices().end(), idx)
                == digit.limbIndices().end()) {
            others.push_back(idx);
        }
    }
    RnsPolynomial converted = fastBaseConv(digit, others);

    RnsPolynomial out(tower, target, Domain::Coeff);
    std::size_t n = digit.n();
    std::size_t oi = 0;
    for (std::size_t j = 0; j < target.size(); ++j) {
        auto it = std::find(digit.limbIndices().begin(),
                            digit.limbIndices().end(), target[j]);
        if (it != digit.limbIndices().end()) {
            std::size_t src = static_cast<std::size_t>(
                it - digit.limbIndices().begin());
            std::copy(digit.limb(src), digit.limb(src) + n, out.limb(j));
        } else {
            std::copy(converted.limb(oi), converted.limb(oi) + n,
                      out.limb(j));
            ++oi;
        }
    }
    return out;
}

RnsPolynomial
modDown(const RnsPolynomial &a)
{
    const RnsTower &tower = a.tower();
    TFHE_ASSERT(a.domain() == Domain::Coeff);
    std::size_t k = tower.numP();
    TFHE_ASSERT(a.numLimbs() > k, "nothing to drop");
    std::size_t ql = a.numLimbs() - k; // q-limbs in the result

    // The special-limb part of a.
    std::vector<std::size_t> p_idx(a.limbIndices().end() - k,
                                   a.limbIndices().end());
    for (std::size_t j = 0; j < k; ++j)
        TFHE_ASSERT(p_idx[j] >= tower.numQ(), "limb order violated");
    RnsPolynomial a_p(tower, p_idx, Domain::Coeff);
    std::size_t n = a.n();
    for (std::size_t j = 0; j < k; ++j)
        std::copy(a.limb(ql + j), a.limb(ql + j) + n, a_p.limb(j));

    // Convert a mod P onto the q-limbs, subtract, multiply by P^-1.
    std::vector<std::size_t> q_idx(a.limbIndices().begin(),
                                   a.limbIndices().begin() + ql);
    RnsPolynomial conv = fastBaseConv(a_p, q_idx);

    RnsPolynomial out(tower, q_idx, Domain::Coeff);
    ThreadPool::global().parallelFor(0, ql, [&](std::size_t j) {
        const Modulus &mod = tower.modulus(q_idx[j]);
        u64 pinv = tower.pInvModQ(q_idx[j]);
        u64 pinv_shoup = shoupPrecompute(pinv, mod.value());
        const u64 *pa = a.limb(j);
        const u64 *pc = conv.limb(j);
        u64 *po = out.limb(j);
        for (std::size_t c = 0; c < n; ++c) {
            po[c] = mulModShoup(mod.sub(pa[c], pc[c]), pinv, pinv_shoup,
                                mod.value());
        }
    });
    return out;
}

RnsPolynomial
rescaleByLastLimb(const RnsPolynomial &a)
{
    TFHE_ASSERT(a.domain() == Domain::Coeff);
    TFHE_ASSERT(a.numLimbs() >= 2, "cannot rescale a one-limb poly");
    const RnsTower &tower = a.tower();
    std::size_t last = a.numLimbs() - 1;
    std::size_t n = a.n();
    u64 q_last = tower.prime(a.limbIndex(last));
    const u64 *pl = a.limb(last);

    std::vector<std::size_t> q_idx(a.limbIndices().begin(),
                                   a.limbIndices().begin() + last);
    RnsPolynomial out(tower, q_idx, Domain::Coeff);
    ThreadPool::global().parallelFor(0, last, [&](std::size_t j) {
        const Modulus &mod = tower.modulus(q_idx[j]);
        u64 q = mod.value();
        u64 qlast_inv = mod.inv(q_last % q);
        u64 qi_shoup = shoupPrecompute(qlast_inv, q);
        const u64 *pa = a.limb(j);
        u64 *po = out.limb(j);
        for (std::size_t c = 0; c < n; ++c) {
            // Centered lift of the last-limb residue into [0, q).
            u64 v = pl[c];
            u64 lifted = v <= q_last / 2
                ? v % q
                : mod.sub(0, (q_last - v) % q);
            po[c] = mulModShoup(mod.sub(pa[c], lifted), qlast_inv,
                                qi_shoup, q);
        }
    });
    return out;
}

} // namespace tensorfhe::rns
