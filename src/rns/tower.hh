/**
 * @file
 * The RNS prime tower: the full chain of ciphertext primes
 * q_0 .. q_L plus the K special primes p_0 .. p_{K-1} of generalized
 * key-switching (paper SII-B), with one NTT context per prime.
 *
 * Flattened indexing convention used across the library:
 *   index i in [0, L]           -> ciphertext prime q_i
 *   index L+1+k, k in [0, K)    -> special prime p_k
 */

#ifndef TENSORFHE_RNS_TOWER_HH
#define TENSORFHE_RNS_TOWER_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "ntt/ntt.hh"

namespace tensorfhe::rns
{

/** Sizing knobs for the prime chain. */
struct TowerConfig
{
    std::size_t n = 0;      ///< polynomial degree N
    int levels = 0;         ///< L: maximum multiplicative level
    int special = 1;        ///< K: number of special primes
    int scaleBits = 25;     ///< size of q_1 .. q_L (approx. the scale)
    int firstBits = 30;     ///< size of q_0 (message headroom)
    int specialBits = 30;   ///< size of p_k
};

class RnsTower
{
  public:
    explicit RnsTower(const TowerConfig &cfg);

    std::size_t n() const { return cfg_.n; }
    const TowerConfig &config() const { return cfg_; }

    /** Number of ciphertext primes (L + 1). */
    std::size_t numQ() const { return static_cast<std::size_t>(cfg_.levels) + 1; }
    /** Number of special primes (K). */
    std::size_t numP() const { return static_cast<std::size_t>(cfg_.special); }
    /** Total primes in the tower. */
    std::size_t numTotal() const { return numQ() + numP(); }

    /** Flattened index of special prime k. */
    std::size_t specialIndex(std::size_t k) const { return numQ() + k; }

    u64 prime(std::size_t idx) const { return primes_[idx]; }
    const Modulus &modulus(std::size_t idx) const;
    const ntt::NttContext &nttContext(std::size_t idx) const
    {
        return *ntts_[idx];
    }

    /** Product of all special primes mod prime `idx` (P mod q_idx). */
    u64 pModQ(std::size_t idx) const { return pModQ_[idx]; }
    /** P^-1 mod q_idx. */
    u64 pInvModQ(std::size_t idx) const { return pInvModQ_[idx]; }

  private:
    TowerConfig cfg_;
    std::vector<u64> primes_;
    std::vector<std::unique_ptr<ntt::NttContext>> ntts_;
    std::vector<u64> pModQ_;
    std::vector<u64> pInvModQ_;
};

} // namespace tensorfhe::rns

#endif // TENSORFHE_RNS_TOWER_HH
