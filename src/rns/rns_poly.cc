#include "rns/rns_poly.hh"

#include <numeric>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"

namespace tensorfhe::rns
{

RnsPolynomial::RnsPolynomial(const RnsTower &tower,
                             std::vector<std::size_t> limbs, Domain domain)
    : tower_(&tower), limbIndices_(std::move(limbs)), domain_(domain)
{
    for (std::size_t idx : limbIndices_)
        TFHE_ASSERT(idx < tower.numTotal(), "limb index out of range");
    data_.assign(limbIndices_.size() * tower.n(), 0);
}

RnsPolynomial::RnsPolynomial(const RnsTower &tower,
                             std::vector<std::size_t> limbs, Domain domain,
                             std::vector<u64> storage)
    : tower_(&tower), limbIndices_(std::move(limbs)), domain_(domain),
      data_(std::move(storage))
{
    for (std::size_t idx : limbIndices_)
        TFHE_ASSERT(idx < tower.numTotal(), "limb index out of range");
    data_.assign(limbIndices_.size() * tower.n(), 0);
}

std::vector<u64>
RnsPolynomial::takeStorage()
{
    std::vector<u64> out = std::move(data_);
    data_.clear();
    limbIndices_.clear();
    return out;
}

RnsPolynomial
RnsPolynomial::zeros(const RnsTower &tower, std::size_t count,
                     Domain domain)
{
    std::vector<std::size_t> limbs(count);
    std::iota(limbs.begin(), limbs.end(), 0);
    return RnsPolynomial(tower, std::move(limbs), domain);
}

void
RnsPolynomial::dropLastLimbs(std::size_t count)
{
    TFHE_ASSERT(count <= numLimbs());
    limbIndices_.resize(limbIndices_.size() - count);
    data_.resize(limbIndices_.size() * n());
}

void
RnsPolynomial::truncateLimbs(std::size_t count)
{
    TFHE_ASSERT(count <= numLimbs());
    dropLastLimbs(numLimbs() - count);
}

void
RnsPolynomial::toEval(ntt::NttVariant v)
{
    if (domain_ == Domain::Eval)
        return;
    ThreadPool::global().parallelFor(0, numLimbs(), [&](std::size_t i) {
        tower_->nttContext(limbIndices_[i]).forward(limb(i), v);
    });
    domain_ = Domain::Eval;
}

void
RnsPolynomial::toCoeff(ntt::NttVariant v)
{
    if (domain_ == Domain::Coeff)
        return;
    ThreadPool::global().parallelFor(0, numLimbs(), [&](std::size_t i) {
        tower_->nttContext(limbIndices_[i]).inverse(limb(i), v);
    });
    domain_ = Domain::Coeff;
}

bool
RnsPolynomial::sameShape(const RnsPolynomial &other) const
{
    return tower_ == other.tower_ && limbIndices_ == other.limbIndices_
        && domain_ == other.domain_;
}

namespace
{

template <typename Fn>
void
elementwise(RnsPolynomial &a, const RnsPolynomial &b, KernelKind kind,
            Fn &&fn)
{
    TFHE_ASSERT(a.sameShape(b), "operand shape mismatch");
    ScopedKernelTimer timer(kind, a.numLimbs() * a.n());
    std::size_t n = a.n();
    ThreadPool::global().parallelFor(0, a.numLimbs(), [&](std::size_t i) {
        const Modulus &mod = a.limbModulus(i);
        u64 *pa = a.limb(i);
        const u64 *pb = b.limb(i);
        for (std::size_t j = 0; j < n; ++j)
            pa[j] = fn(mod, pa[j], pb[j]);
    });
}

} // namespace

void
hadaMultInPlace(RnsPolynomial &a, const RnsPolynomial &b)
{
    elementwise(a, b, KernelKind::HadaMult,
                [](const Modulus &m, u64 x, u64 y) { return m.mul(x, y); });
}

void
eleAddInPlace(RnsPolynomial &a, const RnsPolynomial &b)
{
    elementwise(a, b, KernelKind::EleAdd,
                [](const Modulus &m, u64 x, u64 y) { return m.add(x, y); });
}

void
eleSubInPlace(RnsPolynomial &a, const RnsPolynomial &b)
{
    elementwise(a, b, KernelKind::EleSub,
                [](const Modulus &m, u64 x, u64 y) { return m.sub(x, y); });
}

void
negateInPlace(RnsPolynomial &a)
{
    std::size_t n = a.n();
    for (std::size_t i = 0; i < a.numLimbs(); ++i) {
        const Modulus &mod = a.limbModulus(i);
        u64 *p = a.limb(i);
        for (std::size_t j = 0; j < n; ++j)
            p[j] = mod.neg(p[j]);
    }
}

void
mulScalarInPlace(RnsPolynomial &a, const std::vector<u64> &scalars)
{
    TFHE_ASSERT(scalars.size() == a.numLimbs());
    std::size_t n = a.n();
    for (std::size_t i = 0; i < a.numLimbs(); ++i) {
        const Modulus &mod = a.limbModulus(i);
        u64 s = scalars[i];
        u64 s_shoup = shoupPrecompute(s, mod.value());
        u64 *p = a.limb(i);
        for (std::size_t j = 0; j < n; ++j)
            p[j] = mulModShoup(p[j], s, s_shoup, mod.value());
    }
}

void
mulAccumulate(RnsPolynomial &acc, const RnsPolynomial &b,
              const RnsPolynomial &c)
{
    TFHE_ASSERT(acc.sameShape(b) && b.sameShape(c), "shape mismatch");
    ScopedKernelTimer timer(KernelKind::HadaMult,
                            acc.numLimbs() * acc.n());
    std::size_t n = acc.n();
    ThreadPool::global().parallelFor(0, acc.numLimbs(),
                                     [&](std::size_t i) {
        const Modulus &mod = acc.limbModulus(i);
        u64 *pa = acc.limb(i);
        const u64 *pb = b.limb(i);
        const u64 *pc = c.limb(i);
        for (std::size_t j = 0; j < n; ++j)
            pa[j] = mod.add(pa[j], mod.mul(pb[j], pc[j]));
    });
}

RnsPolynomial
sampleUniform(const RnsTower &tower, const std::vector<std::size_t> &limbs,
              Domain domain, Rng &rng)
{
    RnsPolynomial out(tower, limbs, domain);
    for (std::size_t i = 0; i < out.numLimbs(); ++i) {
        u64 q = out.limbModulus(i).value();
        u64 *p = out.limb(i);
        for (std::size_t j = 0; j < out.n(); ++j)
            p[j] = rng.uniform(q);
    }
    return out;
}

RnsPolynomial
liftSigned(const RnsTower &tower, const std::vector<std::size_t> &limbs,
           const std::vector<s64> &coeffs)
{
    TFHE_ASSERT(coeffs.size() == tower.n());
    RnsPolynomial out(tower, limbs, Domain::Coeff);
    for (std::size_t i = 0; i < out.numLimbs(); ++i) {
        u64 q = out.limbModulus(i).value();
        u64 *p = out.limb(i);
        for (std::size_t j = 0; j < out.n(); ++j) {
            s64 c = coeffs[j];
            p[j] = c >= 0 ? static_cast<u64>(c) % q
                          : q - (static_cast<u64>(-c) % q);
            if (p[j] == q)
                p[j] = 0;
        }
    }
    return out;
}

RnsPolynomial
restrictToLimbs(const RnsPolynomial &a,
                const std::vector<std::size_t> &limbs)
{
    RnsPolynomial out(a.tower(), limbs, a.domain());
    for (std::size_t i = 0; i < limbs.size(); ++i) {
        TFHE_ASSERT(a.limbIndex(limbs[i]) == limbs[i]);
        std::copy(a.limb(limbs[i]), a.limb(limbs[i]) + a.n(),
                  out.limb(i));
    }
    return out;
}

void
toEvalBatch(const std::vector<RnsPolynomial *> &polys, ntt::NttVariant v,
            ThreadPool *pool)
{
    std::vector<ntt::NttJob> jobs;
    for (RnsPolynomial *p : polys) {
        if (p->domain() == Domain::Eval)
            continue;
        for (std::size_t i = 0; i < p->numLimbs(); ++i)
            jobs.push_back({&p->tower().nttContext(p->limbIndex(i)),
                            p->limb(i)});
    }
    ntt::forwardBatch(jobs, v, pool);
    for (RnsPolynomial *p : polys)
        p->setDomain(Domain::Eval);
}

void
toCoeffBatch(const std::vector<RnsPolynomial *> &polys, ntt::NttVariant v,
             ThreadPool *pool)
{
    std::vector<ntt::NttJob> jobs;
    for (RnsPolynomial *p : polys) {
        if (p->domain() == Domain::Coeff)
            continue;
        for (std::size_t i = 0; i < p->numLimbs(); ++i)
            jobs.push_back({&p->tower().nttContext(p->limbIndex(i)),
                            p->limb(i)});
    }
    ntt::inverseBatch(jobs, v, pool);
    for (RnsPolynomial *p : polys)
        p->setDomain(Domain::Coeff);
}

std::vector<RnsPolynomial>
applyAutomorphismBatch(const std::vector<const RnsPolynomial *> &as,
                       u64 galois, ThreadPool *pool)
{
    std::size_t batch = as.size();
    if (batch == 0)
        return {};
    std::vector<RnsPolynomial> out;
    out.reserve(batch);
    std::vector<RnsPolynomial *> out_ptrs(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        out.emplace_back(as[b]->tower(), as[b]->limbIndices(),
                         as[b]->domain());
        out_ptrs[b] = &out[b];
    }
    applyAutomorphismBatchInto(as, galois, out_ptrs.data(), pool);
    return out;
}

void
applyAutomorphismBatchInto(const std::vector<const RnsPolynomial *> &as,
                           u64 galois, RnsPolynomial *const *outs,
                           ThreadPool *pool)
{
    std::size_t batch = as.size();
    if (batch == 0)
        return;
    const RnsPolynomial &front = *as[0];
    std::size_t n = front.n();
    u64 m = 2 * n;
    TFHE_ASSERT(galois % 2 == 1 && galois < m, "bad Galois element");

    std::vector<RnsPolynomial *> out_view(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        TFHE_ASSERT(as[b]->domain() == front.domain()
                        && as[b]->n() == n
                        && as[b]->numLimbs() == front.numLimbs(),
                    "batched automorphism requires a uniform shape");
        TFHE_ASSERT(outs[b]->numLimbs() == as[b]->numLimbs()
                        && outs[b]->domain() == as[b]->domain(),
                    "automorphism output not preshaped to its input");
        out_view[b] = outs[b];
    }
    auto &out = out_view;

    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    if (front.domain() == Domain::Eval) {
        ScopedKernelTimer timer(KernelKind::FrobeniusMap,
                                batch * front.numLimbs() * n);
        // The FrobeniusMap permutation is shared by the whole batch.
        std::vector<std::size_t> pi(n);
        for (std::size_t j = 0; j < n; ++j)
            pi[j] = ((galois * (2 * j + 1)) % m - 1) / 2;
        tp.parallelFor2D(batch, front.numLimbs(),
                         [&](std::size_t b, std::size_t i) {
            const u64 *src = as[b]->limb(i);
            u64 *dst = out[b]->limb(i);
            for (std::size_t j = 0; j < n; ++j)
                dst[j] = src[pi[j]];
        });
        return;
    }

    // Coefficient domain: the destination index and the sign flip are
    // also slot-independent.
    std::vector<std::size_t> dst_idx(n);
    std::vector<u8> flip(n);
    for (std::size_t j = 0; j < n; ++j) {
        u64 e = (static_cast<u64>(j) * galois) % m;
        dst_idx[j] = e < n ? e : e - n;
        flip[j] = e < n ? 0 : 1;
    }
    tp.parallelFor2D(batch, front.numLimbs(),
                     [&](std::size_t b, std::size_t i) {
        const Modulus &mod = as[b]->limbModulus(i);
        const u64 *src = as[b]->limb(i);
        u64 *dst = out[b]->limb(i);
        for (std::size_t j = 0; j < n; ++j)
            dst[dst_idx[j]] = flip[j] ? mod.neg(src[j]) : src[j];
    });
}

RnsPolynomial
applyAutomorphism(const RnsPolynomial &a, u64 galois)
{
    std::size_t n = a.n();
    u64 m = 2 * n;
    TFHE_ASSERT(galois % 2 == 1 && galois < m, "bad Galois element");
    RnsPolynomial out(a.tower(), a.limbIndices(), a.domain());

    if (a.domain() == Domain::Eval) {
        // FrobeniusMap kernel (paper SIV-A): pure slot permutation.
        ScopedKernelTimer timer(KernelKind::FrobeniusMap,
                                a.numLimbs() * n);
        std::vector<std::size_t> pi(n);
        for (std::size_t j = 0; j < n; ++j)
            pi[j] = ((galois * (2 * j + 1)) % m - 1) / 2;
        for (std::size_t i = 0; i < a.numLimbs(); ++i) {
            const u64 *src = a.limb(i);
            u64 *dst = out.limb(i);
            for (std::size_t j = 0; j < n; ++j)
                dst[j] = src[pi[j]];
        }
        return out;
    }

    // Coefficient domain: X^j -> X^(j*galois mod 2N) with sign flips
    // for wraps past N.
    for (std::size_t i = 0; i < a.numLimbs(); ++i) {
        const Modulus &mod = a.limbModulus(i);
        const u64 *src = a.limb(i);
        u64 *dst = out.limb(i);
        for (std::size_t j = 0; j < n; ++j) {
            u64 e = (static_cast<u64>(j) * galois) % m;
            if (e < n)
                dst[e] = src[j];
            else
                dst[e - n] = mod.neg(src[j]);
        }
    }
    return out;
}

} // namespace tensorfhe::rns
