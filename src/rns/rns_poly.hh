/**
 * @file
 * RNS polynomial: L' residue limbs of N coefficients each, living on
 * a subset of the tower's primes, in either coefficient or evaluation
 * (NTT) representation.
 *
 * The elementwise kernels on RnsPolynomial are exactly the reusable
 * kernels of the paper's hierarchical CKKS reconstruction (Table II):
 * Hada-Mult, Ele-Add, Ele-Sub, plus the NTT/INTT domain moves. They
 * are instrumented through KernelStats for the breakdown figures.
 */

#ifndef TENSORFHE_RNS_RNS_POLY_HH
#define TENSORFHE_RNS_RNS_POLY_HH

#include <vector>

#include "common/rng.hh"
#include "ntt/ntt.hh"
#include "rns/tower.hh"

namespace tensorfhe::rns
{

/** Representation domain of a polynomial. */
enum class Domain
{
    Coeff, ///< coefficient (power) basis
    Eval   ///< NTT point-value basis, natural order
};

class RnsPolynomial
{
  public:
    RnsPolynomial() = default;

    /** Zero polynomial over the given tower limbs. */
    RnsPolynomial(const RnsTower &tower, std::vector<std::size_t> limbs,
                  Domain domain);

    /**
     * Zero polynomial reusing `storage` as the coefficient buffer:
     * when its capacity already covers limbs*N the construction makes
     * no allocator call. This is the exec::Workspace recycling hook.
     */
    RnsPolynomial(const RnsTower &tower, std::vector<std::size_t> limbs,
                  Domain domain, std::vector<u64> storage);

    /**
     * Steal the coefficient buffer (for return to an arena), leaving
     * this polynomial empty.
     */
    std::vector<u64> takeStorage();

    /** Zero polynomial over limbs [0, count) of the q-chain. */
    static RnsPolynomial zeros(const RnsTower &tower, std::size_t count,
                               Domain domain);

    const RnsTower &tower() const { return *tower_; }
    std::size_t n() const { return tower_->n(); }
    std::size_t numLimbs() const { return limbIndices_.size(); }
    const std::vector<std::size_t> &limbIndices() const
    {
        return limbIndices_;
    }
    std::size_t limbIndex(std::size_t i) const { return limbIndices_[i]; }
    Domain domain() const { return domain_; }
    void setDomain(Domain d) { domain_ = d; } // caller moves the data

    u64 *limb(std::size_t i) { return data_.data() + i * n(); }
    const u64 *limb(std::size_t i) const { return data_.data() + i * n(); }

    const Modulus &limbModulus(std::size_t i) const
    {
        return tower_->modulus(limbIndices_[i]);
    }

    /** Drop the last `count` limbs (used by RESCALE and ModDown). */
    void dropLastLimbs(std::size_t count);

    /** Keep only the first `count` limbs. */
    void truncateLimbs(std::size_t count);

    /** Move every limb to Eval domain (no-op if already there). */
    void toEval(ntt::NttVariant v = ntt::NttVariant::Butterfly);

    /** Move every limb to Coeff domain (no-op if already there). */
    void toCoeff(ntt::NttVariant v = ntt::NttVariant::Butterfly);

    bool sameShape(const RnsPolynomial &other) const;

  private:
    const RnsTower *tower_ = nullptr;
    std::vector<std::size_t> limbIndices_;
    std::vector<u64> data_; // limb-major
    Domain domain_ = Domain::Coeff;
};

/** c[i] = a[i] * b[i] per limb (Hada-Mult kernel). Domains must match. */
void hadaMultInPlace(RnsPolynomial &a, const RnsPolynomial &b);

/** a += b per limb (Ele-Add kernel). */
void eleAddInPlace(RnsPolynomial &a, const RnsPolynomial &b);

/** a -= b per limb (Ele-Sub kernel). */
void eleSubInPlace(RnsPolynomial &a, const RnsPolynomial &b);

/** a = -a. */
void negateInPlace(RnsPolynomial &a);

/** a[limb i] *= scalar[i] (scalars already reduced per limb). */
void mulScalarInPlace(RnsPolynomial &a, const std::vector<u64> &scalars);

/** Fused a += b * c (keyswitch inner product accumulate). */
void mulAccumulate(RnsPolynomial &acc, const RnsPolynomial &b,
                   const RnsPolynomial &c);

/** Uniform random polynomial over the given limbs. */
RnsPolynomial sampleUniform(const RnsTower &tower,
                            const std::vector<std::size_t> &limbs,
                            Domain domain, Rng &rng);

/**
 * Spread small signed coefficients (ternary secret / Gaussian error)
 * into every limb, in Coeff domain.
 */
RnsPolynomial liftSigned(const RnsTower &tower,
                         const std::vector<std::size_t> &limbs,
                         const std::vector<s64> &coeffs);

/**
 * Apply the Galois automorphism X -> X^galois to a polynomial.
 *
 * In Coeff domain this permutes coefficients with sign flips; in Eval
 * domain it is the pure permutation the paper calls the FrobeniusMap
 * kernel: out[j] = in[pi(j)] with pi(j) = ((galois*(2j+1) mod 2N)-1)/2.
 */
RnsPolynomial applyAutomorphism(const RnsPolynomial &a, u64 galois);

/** Copy of `a` restricted to the given tower limb indices (which must
    be present in `a` at matching positions). */
RnsPolynomial restrictToLimbs(const RnsPolynomial &a,
                              const std::vector<std::size_t> &limbs);

/*
 * Batched counterparts used by the parallel batched execution engine:
 * the (poly x limb) iteration space is flattened into one work-queue
 * dispatch instead of one pool round-trip per polynomial. Bit-identical
 * to per-polynomial calls.
 */

/** Move every polynomial to Eval domain in one batched NTT dispatch. */
void toEvalBatch(const std::vector<RnsPolynomial *> &polys,
                 ntt::NttVariant v = ntt::NttVariant::Butterfly,
                 ThreadPool *pool = nullptr);

/** Move every polynomial to Coeff domain in one batched dispatch. */
void toCoeffBatch(const std::vector<RnsPolynomial *> &polys,
                  ntt::NttVariant v = ntt::NttVariant::Butterfly,
                  ThreadPool *pool = nullptr);

/** Apply one Galois automorphism to every polynomial; the slot
    permutation is computed once and shared across the batch. */
std::vector<RnsPolynomial>
applyAutomorphismBatch(const std::vector<const RnsPolynomial *> &as,
                       u64 galois, ThreadPool *pool = nullptr);

/** applyAutomorphismBatch writing into caller-provided outputs
    (preshaped to each input's limb set and domain) — the
    exec::Workspace hook for the per-rotation FrobeniusMap. Outputs
    must not alias the inputs. Bit-identical to applyAutomorphismBatch. */
void applyAutomorphismBatchInto(
    const std::vector<const RnsPolynomial *> &as, u64 galois,
    RnsPolynomial *const *outs, ThreadPool *pool = nullptr);

} // namespace tensorfhe::rns

#endif // TENSORFHE_RNS_RNS_POLY_HH
