/**
 * @file
 * Ciphertext integrity guards: the detection half of the fault story
 * (src/fault injects, these catch).
 *
 * validateCt() is the structural check — every residue limb must be
 * < its prime q_i, c0/c1 must agree on shape/domain, the scale must
 * be a positive finite double — and it returns a per-chunk FNV-1a
 * checksum computed in the SAME pass over the limbs, so paranoid
 * callers pay one memory sweep for both. A residue >= q_i is exactly
 * what a high-bit memory flip produces; a low-bit flip keeps the
 * residue in range and only the checksum can see it.
 *
 * The graph executor's paranoid mode (graph/executor.hh) wires these
 * in at node boundaries: every produced value is validated against
 * its compiled ValueMeta (level count and scale were propagated at
 * compile time with the evaluators' exact arithmetic) and
 * checksummed; every consumed value is re-checksummed against the
 * stored digest. Detected corruption raises IntegrityError with the
 * site and node attached — never a silently wrong logit.
 */

#ifndef TENSORFHE_RESILIENCE_INTEGRITY_HH
#define TENSORFHE_RESILIENCE_INTEGRITY_HH

#include "ckks/ciphertext.hh"
#include "common/errors.hh"

namespace tensorfhe::resilience
{

/**
 * Structural validation + checksum in one pass over the limbs.
 * @throws IntegrityError (with `site`/`node`) on any violation.
 * @returns the chunk checksum (see ctChecksum).
 */
u64 validateCt(const ckks::Ciphertext &ct, const char *site,
               std::size_t node = kNoErrorNode);

/** Checksum only — no validation (checkpoint digests use this). */
u64 ctChecksum(const ckks::Ciphertext &ct);

/**
 * Check a ciphertext against its compiled metadata: exact level
 * count, scale within the evaluators' 1e-6 relative tolerance.
 * @throws IntegrityError on drift.
 */
void checkCtMeta(const ckks::Ciphertext &ct, std::size_t level_count,
                 double scale, const char *site,
                 std::size_t node = kNoErrorNode);

} // namespace tensorfhe::resilience

#endif // TENSORFHE_RESILIENCE_INTEGRITY_HH
