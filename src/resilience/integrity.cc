#include "resilience/integrity.hh"

#include <cmath>
#include <cstring>
#include <vector>

#include "common/thread_pool.hh"

namespace tensorfhe::resilience
{

namespace
{

constexpr u64 kFnvOffset = 0xcbf29ce484222325ull;
constexpr u64 kFnvPrime = 0x100000001b3ull;

inline u64
fnv1a(u64 h, u64 v)
{
    return (h ^ v) * kFnvPrime;
}

/** One limb's 4-lane FNV-1a hash + range scan. Four independent
    lanes keep the 64-bit multiplies pipelined instead of chained (a
    single chained FNV costs one multiply latency per element); `bad`
    is set when any residue is >= q. */
u64
hashLimb(const u64 *limb, std::size_t n, u64 q, u64 &bad)
{
    u64 l0 = kFnvOffset, l1 = kFnvOffset + 1, l2 = kFnvOffset + 2,
        l3 = kFnvOffset + 3;
    u64 b = 0;
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        u64 v0 = limb[k], v1 = limb[k + 1], v2 = limb[k + 2],
            v3 = limb[k + 3];
        l0 = fnv1a(l0, v0);
        l1 = fnv1a(l1, v1);
        l2 = fnv1a(l2, v2);
        l3 = fnv1a(l3, v3);
        b |= (v0 >= q) | (v1 >= q) | (v2 >= q) | (v3 >= q);
    }
    for (; k < n; ++k) {
        u64 v = limb[k];
        l0 = fnv1a(l0, v);
        b |= v >= q ? u64(1) : u64(0);
    }
    bad = b;
    return fnv1a(fnv1a(fnv1a(l0, l1), l2), l3);
}

/**
 * Hash the limb data; when `scan` is set, also range-check every
 * residue and report the first violation. Limbs hash independently
 * (sharded over the kernel thread pool when the component is large,
 * as the deep-CNN values around the bootstrap are) and fold into the
 * running hash in limb order, so the digest is deterministic and
 * thread-count independent. The digest is internal — never persisted
 * across versions — so its exact value is free to change.
 */
u64
hashComponent(const rns::RnsPolynomial &p, u64 h, bool scan,
              const char *site, std::size_t node, const char *which)
{
    std::size_t limbs = p.numLimbs();
    std::size_t n = limbs == 0 ? 0 : p.n();
    std::vector<u64> lh(limbs), lbad(limbs);
    auto one = [&](std::size_t i) {
        lh[i] = hashLimb(p.limb(i), n, p.limbModulus(i).value(),
                         lbad[i]);
    };
    // Worth sharding only when the sweep dwarfs the dispatch cost.
    if (limbs > 1 && limbs * n >= (std::size_t(1) << 15))
        ThreadPool::global().parallelFor(0, limbs, one);
    else
        for (std::size_t i = 0; i < limbs; ++i)
            one(i);
    for (std::size_t i = 0; i < limbs; ++i) {
        h = fnv1a(h, lh[i]);
        if (scan && lbad[i])
            throw IntegrityError(
                site,
                strCat(which, " limb ", i, " holds a residue >= q_i (",
                       p.limbModulus(i).value(), ")"),
                node);
    }
    return h;
}

u64
hashMeta(const ckks::Ciphertext &ct, u64 h)
{
    h = fnv1a(h, static_cast<u64>(ct.c0.numLimbs()));
    for (std::size_t idx : ct.c0.limbIndices())
        h = fnv1a(h, static_cast<u64>(idx));
    u64 scale_bits;
    static_assert(sizeof(scale_bits) == sizeof(ct.scale));
    std::memcpy(&scale_bits, &ct.scale, sizeof(scale_bits));
    return fnv1a(h, scale_bits);
}

} // namespace

u64
validateCt(const ckks::Ciphertext &ct, const char *site,
           std::size_t node)
{
    if (ct.c0.numLimbs() == 0 || ct.c1.numLimbs() == 0)
        throw IntegrityError(site, "empty ciphertext component", node);
    if (ct.c0.numLimbs() != ct.c1.numLimbs()
        || ct.c0.limbIndices() != ct.c1.limbIndices())
        throw IntegrityError(
            site,
            strCat("c0/c1 limb sets diverge (", ct.c0.numLimbs(),
                   " vs ", ct.c1.numLimbs(), " limbs)"),
            node);
    if (ct.c0.domain() != ct.c1.domain())
        throw IntegrityError(site, "c0/c1 domains diverge", node);
    if (!(ct.scale > 0.0) || !std::isfinite(ct.scale))
        throw IntegrityError(
            site, strCat("scale is not positive finite: ", ct.scale),
            node);
    u64 h = hashMeta(ct, kFnvOffset);
    h = hashComponent(ct.c0, h, true, site, node, "c0");
    h = hashComponent(ct.c1, h, true, site, node, "c1");
    return h;
}

u64
ctChecksum(const ckks::Ciphertext &ct)
{
    u64 h = hashMeta(ct, kFnvOffset);
    h = hashComponent(ct.c0, h, false, nullptr, kNoErrorNode, nullptr);
    h = hashComponent(ct.c1, h, false, nullptr, kNoErrorNode, nullptr);
    return h;
}

void
checkCtMeta(const ckks::Ciphertext &ct, std::size_t level_count,
            double scale, const char *site, std::size_t node)
{
    if (ct.levelCount() != level_count)
        throw IntegrityError(
            site,
            strCat("level count ", ct.levelCount(),
                   " diverges from compiled meta ", level_count),
            node);
    if (std::abs(ct.scale - scale) > 1e-6 * scale)
        throw IntegrityError(
            site,
            strCat("scale ", ct.scale,
                   " diverges from compiled meta ", scale),
            node);
}

} // namespace tensorfhe::resilience
