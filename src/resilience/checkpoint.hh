/**
 * @file
 * Graph-execution checkpoints: periodic snapshots of the live value
 * set at scheduler-chosen cut positions, so a failed run can resume
 * by re-executing only the nodes downstream of the last cut instead
 * of the whole graph (deep CNN with a mid-network bootstrap and
 * multi-step LSTMs are exactly the runs long enough to care).
 *
 * A cut's live set is every value already produced whose last
 * consumer (or graph-output liveness) lies beyond the cut — the SSA
 * frontier. chooseCutPoints() picks, inside every `every`-node
 * window of the schedule, the position whose live footprint
 * (ciphertext chunk count) is smallest, so checkpoints are taken
 * where they are cheapest to copy. Each checkpointed value carries a
 * per-chunk checksum; resumeFrom() re-verifies them, so a corrupted
 * checkpoint raises IntegrityError instead of resuming into garbage.
 *
 * Resume is bit-identical to straight-through execution: the copies
 * are exact, the kernels deterministic (tests/fault compares raw
 * residue limbs on the CNN, deep-CNN and LSTM graphs).
 */

#ifndef TENSORFHE_RESILIENCE_CHECKPOINT_HH
#define TENSORFHE_RESILIENCE_CHECKPOINT_HH

#include "graph/schedule.hh"

namespace tensorfhe::resilience
{

struct Checkpoint
{
    /** Position in Schedule::order the resumed run starts from. */
    std::size_t resumeIndex = 0;
    /** Live values at the cut, parallel arrays. */
    std::vector<graph::ValueId> valueIds;
    std::vector<graph::Cts> values;
    /** Per value, one digest per ciphertext chunk. */
    std::vector<std::vector<u64>> checksums;
    /** Identity guard: node count of the graph that wrote this. */
    std::size_t graphNodes = 0;

    bool empty() const { return graphNodes == 0; }
};

/**
 * Scheduler-chosen cut set: one position per `every`-node window of
 * the live schedule, at the locally smallest live footprint.
 * Positions are indices into sched.order; a checkpoint at position p
 * is taken AFTER the node at p executed. Cuts before the last Input
 * node are excluded (resume re-binds no caller inputs; the live set
 * itself carries input values that are still needed).
 */
std::vector<std::size_t> chooseCutPoints(const graph::Graph &g,
                                         const graph::Schedule &sched,
                                         std::size_t every);

/**
 * Last-use position of every value under `sched` (the executor and
 * the cut chooser share this liveness analysis). Graph outputs and
 * values read by later nodes report the position of their final
 * reader; outputs report one past the end.
 */
std::vector<std::size_t> valueLastUse(const graph::Graph &g,
                                      const graph::Schedule &sched);

} // namespace tensorfhe::resilience

#endif // TENSORFHE_RESILIENCE_CHECKPOINT_HH
