#include "resilience/checkpoint.hh"

namespace tensorfhe::resilience
{

std::vector<std::size_t>
valueLastUse(const graph::Graph &g, const graph::Schedule &sched)
{
    std::vector<std::size_t> last(g.values.size(), 0);
    for (std::size_t pos = 0; pos < sched.order.size(); ++pos)
        for (graph::ValueId v : g.nodes[sched.order[pos]].inputs)
            last[v] = std::max(last[v], pos);
    for (graph::ValueId v : g.outputs)
        last[v] = sched.order.size();
    return last;
}

std::vector<std::size_t>
chooseCutPoints(const graph::Graph &g, const graph::Schedule &sched,
                std::size_t every)
{
    std::vector<std::size_t> cuts;
    if (every == 0 || sched.order.size() <= every)
        return cuts;

    auto last = valueLastUse(g, sched);
    // Producer position of every value (inputs bind at their Input
    // node's position).
    std::vector<std::size_t> produced(g.values.size(),
                                      sched.order.size());
    std::size_t last_input = 0;
    for (std::size_t pos = 0; pos < sched.order.size(); ++pos) {
        const graph::Node &n = g.nodes[sched.order[pos]];
        if (n.kind == graph::NodeKind::Input)
            last_input = pos;
        for (graph::ValueId v : n.outputs)
            produced[v] = pos;
    }

    // Live footprint (chunk count) after each position.
    std::vector<std::size_t> foot(sched.order.size(), 0);
    for (graph::ValueId v = 0; v < g.values.size(); ++v) {
        if (produced[v] >= sched.order.size())
            continue;
        std::size_t from = produced[v];
        std::size_t to = std::min(last[v], sched.order.size());
        for (std::size_t pos = from; pos < to; ++pos)
            foot[pos] += g.values[v].chunkCount;
    }

    // One cut per window, at the window's smallest footprint. The
    // final window is skipped: a checkpoint after the last node
    // would snapshot work there is no one left to resume.
    const std::size_t none = sched.order.size();
    for (std::size_t start = every - 1;
         start + 1 < sched.order.size(); start += every) {
        std::size_t stop =
            std::min(start + every, sched.order.size() - 1);
        std::size_t best = none;
        for (std::size_t pos = start; pos < stop; ++pos) {
            if (pos <= last_input)
                continue;
            if (best == none || foot[pos] < foot[best])
                best = pos;
        }
        if (best != none)
            cuts.push_back(best);
    }
    return cuts;
}

} // namespace tensorfhe::resilience
