/**
 * @file
 * Process-wide resilience counters — the fourth counter island
 * (after KernelStats, EvalOpStats and the Workspace arena stats),
 * unified with the rest behind trace::MetricsRegistry. The resilient
 * graph executor bumps these as it recovers: per-run numbers stay on
 * ExecResult; these accumulate across runs so a long-lived serving
 * process can export "how often have we actually retried" without
 * threading every ExecResult to the metrics sink.
 */

#ifndef TENSORFHE_RESILIENCE_COUNTERS_HH
#define TENSORFHE_RESILIENCE_COUNTERS_HH

#include <atomic>

#include "common/types.hh"

namespace tensorfhe::resilience
{

class Counters
{
  public:
    static Counters &
    instance()
    {
        static Counters c;
        return c;
    }

    std::atomic<u64> retries{0};           ///< node re-executions
    std::atomic<u64> transientFaults{0};   ///< TransientFault caught
    std::atomic<u64> integrityFailures{0}; ///< IntegrityError caught
    std::atomic<u64> checkpointsTaken{0};
    std::atomic<u64> checkpointsResumed{0};

    void
    reset()
    {
        retries.store(0, std::memory_order_relaxed);
        transientFaults.store(0, std::memory_order_relaxed);
        integrityFailures.store(0, std::memory_order_relaxed);
        checkpointsTaken.store(0, std::memory_order_relaxed);
        checkpointsResumed.store(0, std::memory_order_relaxed);
    }

  private:
    Counters() = default;
};

inline void
bump(std::atomic<u64> &c, u64 n = 1)
{
    c.fetch_add(n, std::memory_order_relaxed);
}

} // namespace tensorfhe::resilience

#endif // TENSORFHE_RESILIENCE_COUNTERS_HH
