/**
 * @file
 * Retry policy for the resilient graph executor. A node that raises
 * TransientFault (or IntegrityError on its own freshly produced
 * output — e.g. an at-rest flip caught by the boundary guard) can be
 * re-executed verbatim: the graph is SSA, its input values are still
 * live, and the kernels are deterministic, so a successful retry is
 * bit-identical to an uninterrupted run (tests/fault asserts this on
 * raw limbs).
 */

#ifndef TENSORFHE_RESILIENCE_RETRY_HH
#define TENSORFHE_RESILIENCE_RETRY_HH

#include <chrono>
#include <thread>

namespace tensorfhe::resilience
{

struct RetryPolicy
{
    /** Total attempts per node (1 = fail fast, no retry). */
    int maxAttempts = 1;
    /** Sleep before retry k is base * multiplier^(k-1). */
    std::chrono::microseconds backoffBase{0};
    double backoffMultiplier = 2.0;
    /** Also retry IntegrityError raised while validating the node's
        own output (a corrupted STORED input never repairs itself, so
        input-verification failures are surfaced regardless). */
    bool retryIntegrity = true;
};

/** Sleep out the backoff before attempt `attempt` (2-based: the
    first re-execution is attempt 2). */
inline void
backoff(const RetryPolicy &p, int attempt)
{
    if (p.backoffBase.count() <= 0 || attempt < 2)
        return;
    auto delay = p.backoffBase;
    for (int i = 2; i < attempt; ++i)
        delay = std::chrono::microseconds(static_cast<long long>(
            static_cast<double>(delay.count()) * p.backoffMultiplier));
    std::this_thread::sleep_for(delay);
}

} // namespace tensorfhe::resilience

#endif // TENSORFHE_RESILIENCE_RETRY_HH
