/**
 * @file
 * Published numbers from the paper's evaluation tables, quoted for
 * side-by-side printing in the benches. The paper itself collects
 * competitor numbers "directly from the literature" (SV); we do the
 * same, clearly labeled as published values, never as measurements.
 *
 * Units follow the paper: Table VI in milliseconds per batch-128
 * operation group; Table VII/X in seconds; Table VIII in ops/second;
 * Table XI in OPs/W and J/iteration.
 */

#ifndef TENSORFHE_PERF_PAPER_DATA_HH
#define TENSORFHE_PERF_PAPER_DATA_HH

#include <array>
#include <string_view>

namespace tensorfhe::perf::paper
{

/** Table VI: operation delays (ms). -1 = not reported. */
struct OpDelayRow
{
    std::string_view system;
    double hmult, hrotate, rescale, hadd, cmult;
};

inline constexpr std::array<OpDelayRow, 7> kTable6 = {{
    {"CPU [33]", 338000.0, 330000.0, 18611.0, 3609.0, 3356.0},
    {"PrivFT [1]", 7153.0, -1.0, 208.0, 24.0, 21.0},
    {"100x [33]", 2227.0, 2154.0, 81.0, 26.0, 22.0},
    {"TensorFHE-NT", 2124.0, 2111.0, 35.0, 6.0, 7.7},
    {"TensorFHE-CO", 1651.2, 1523.2, 9.2, 6.0, 7.7},
    {"TensorFHE(V100)", 1296.6, 1254.4, 15.4, 10.2, 11.5},
    {"TensorFHE(A100)", 851.0, 852.0, 7.7, 6.0, 7.7},
}};

/** Table VII: Bootstrap execution time (seconds), batch 128. */
struct BootstrapRow
{
    std::string_view system;
    double seconds;
};

inline constexpr std::array<BootstrapRow, 6> kTable7 = {{
    {"CPU [33]", 10168.0},
    {"GPGPU baseline [33]", 54904.0},
    {"100x [33]", 42016.0},
    {"TensorFHE-NT", 76731.0},
    {"TensorFHE-CO", 70762.0},
    {"TensorFHE", 32058.0},
}};

/** Table VIII: throughput (ops/s) vs HEAX, sets A/B/C. */
struct HeaxRow
{
    std::string_view metric;
    double cpu, heax, tensorfhe;
};

inline constexpr std::array<HeaxRow, 9> kTable8 = {{
    {"NTT/s SetA", 7222, 195313, 910134},
    {"NTT/s SetB", 3437, 90144, 449974},
    {"NTT/s SetC", 1631, 41853, 209337},
    {"INTT/s SetA", 7568, 195313, 913267},
    {"INTT/s SetB", 3539, 90144, 449084},
    {"INTT/s SetC", 1659, 41853, 209178},
    {"HMULT/s SetA", 420, 97656, 88048},
    {"HMULT/s SetB", 84, 22536, 27564},
    {"HMULT/s SetC", 15, 2616, 3825},
}};

/** Table X: full workload execution time (seconds). -1 = n/a. */
struct WorkloadRow
{
    std::string_view system;
    double resnet20, lr, lstm, packedBoot;
};

inline constexpr std::array<WorkloadRow, 7> kTable10 = {{
    {"CPU [58]", 88320.0, 22784.0, 27488.0, 550.4},
    {"F1+ [57]", 172.3, 40.9, 82.3, 1.8},
    {"CraterLake [58]", 15.9, 7.6, 4.4, 0.1},
    {"BTS [38]", 122.2, 1.8, -1.0, -1.0},
    {"ARK [35]", 18.8, 0.49, -1.0, -1.0},
    {"100x* [33]", 602.9, 49.6, -1.0, 36.9},
    {"TensorFHE", 316.1, 14.1, 123.1, 13.5},
}};

/** Table XI: energy efficiency. */
struct EnergyOpsRow
{
    std::string_view op;
    double opsPerWatt;
};

inline constexpr std::array<EnergyOpsRow, 5> kTable11Ops = {{
    {"HMULT", 0.57},
    {"HROTATE", 0.57},
    {"RESCALE", 66.67},
    {"HADD", 81.30},
    {"CMULT", 66.67},
}};

struct EnergyWorkloadRow
{
    std::string_view system;
    double resnet20, lr, lstm, packedBoot; ///< J/iteration, -1 = n/a
};

inline constexpr std::array<EnergyWorkloadRow, 3> kTable11Workloads = {{
    {"ARK [35]", 32.5, 19.8, -1.0, -1.0},
    {"CraterLake [58]", 79.7, 38.1, 44.2, 1.3},
    {"TensorFHE", 1320.0, 58.27, 1015.3, 111.3},
}};

/** Fig. 4 (paper): NTT total stall ~43.2%, RAW ~20.9% of cycles. */
inline constexpr double kFig4NttStallFraction = 0.432;
inline constexpr double kFig4NttRawFraction = 0.209;

/** Fig. 10: TensorFHE-CO reduces RAW by 18.1pp, long-latency by
 *  10.8pp, +1.2% compute, 32.3% faster NTT overall. */
inline constexpr double kFig10RawReduction = 0.181;
inline constexpr double kFig10LongLatencyReduction = 0.108;
inline constexpr double kFig10OverallNttGain = 0.323;

/** Table IX: GPGPU occupancy with batching. */
struct OccupancyRow
{
    std::string_view op;
    double occupancy;
};

inline constexpr std::array<OccupancyRow, 5> kTable9 = {{
    {"HMULT", 0.903},
    {"HROTATE", 0.901},
    {"RESCALE", 0.889},
    {"HADD", 0.853},
    {"CMULT", 0.881},
}};

} // namespace tensorfhe::perf::paper

#endif // TENSORFHE_PERF_PAPER_DATA_HH
