#include "perf/cost_model.hh"

#include <algorithm>
#include <cmath>

namespace tensorfhe::perf
{

StrideChoice
CostModel::chooseBsgsStride(std::size_t level_count,
                            const std::vector<std::size_t> &diag_idx,
                            std::size_t slots,
                            bool restrict_to_root_pattern) const
{
    auto root = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(slots))));
    std::vector<std::size_t> candidates;
    candidates.push_back(root);
    for (std::size_t g = 1; g < slots; g <<= 1)
        if (g > root)
            candidates.push_back(g);
    candidates.push_back(slots);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    StrideChoice best;
    double best_w = -1;
    for (std::size_t g : candidates) {
        std::vector<std::size_t> babies, giants;
        for (std::size_t d : diag_idx) {
            if (d % g != 0)
                babies.push_back(d % g);
            if (d / g != 0)
                giants.push_back(d / g * g);
        }
        auto uniq = [](std::vector<std::size_t> &v) {
            std::sort(v.begin(), v.end());
            v.erase(std::unique(v.begin(), v.end()), v.end());
        };
        uniq(babies);
        uniq(giants);
        if (restrict_to_root_pattern && g != root) {
            // Key-pattern containment: every step this stride
            // rotates by must already exist in the root-based key
            // grant (analytic pre-generated bundles cover exactly
            // that pattern).
            bool covered = true;
            for (std::size_t b : babies)
                covered = covered && b < root;
            for (std::size_t k : giants)
                covered = covered && k % root == 0;
            if (!covered)
                continue;
        }
        KernelCost c = matvec(level_count, diag_idx.size(),
                              babies.size(), giants.size());
        double w = work(c);
        if (best_w < 0 || w < best_w) {
            best_w = w;
            best = {g, babies.size(), giants.size(), c};
        }
    }
    return best;
}

} // namespace tensorfhe::perf
