/**
 * @file
 * Device timing model: converts KernelCost work vectors into seconds
 * on a GPGPU device model (roofline over DRAM bandwidth, CUDA-core
 * integer throughput and TCU INT8 throughput, plus per-launch
 * overhead), with utilization factors calibrated once against the
 * paper's published A100 numbers (see EXPERIMENTS.md).
 */

#ifndef TENSORFHE_PERF_DEVICE_TIME_HH
#define TENSORFHE_PERF_DEVICE_TIME_HH

#include "gpu/device.hh"
#include "gpu/occupancy.hh"
#include "perf/cost.hh"

namespace tensorfhe::perf
{

struct Calibration
{
    double coreUtilization = 0.55; ///< achieved / peak integer IPC
    double bwUtilization = 0.65;   ///< achieved / peak DRAM bandwidth
    double tcuUtilization = 0.65;  ///< achieved / peak TCU MACs
    double launchOverheadSec = 3.0e-6;
};

class DeviceTimeModel
{
  public:
    explicit DeviceTimeModel(const gpu::DeviceModel &dev,
                             Calibration cal = {})
        : dev_(dev), cal_(cal)
    {}

    const gpu::DeviceModel &device() const { return dev_; }

    /**
     * Wall time of `batch` independent instances of `cost` executed
     * together. Batching amortizes launches and raises occupancy
     * (paper SIV-D); `occupancy` scales the compute rooflines.
     */
    double seconds(const KernelCost &cost, std::size_t batch = 1,
                   double occupancy = -1.0) const;

    /** Operations per second at the given batch size. */
    double
    throughput(const KernelCost &cost, std::size_t batch = 1) const
    {
        return static_cast<double>(batch) / seconds(cost, batch);
    }

  private:
    gpu::DeviceModel dev_;
    Calibration cal_;
};

} // namespace tensorfhe::perf

#endif // TENSORFHE_PERF_DEVICE_TIME_HH
