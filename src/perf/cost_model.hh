/**
 * @file
 * Queryable, level-parameterized cost model — the planner-facing
 * facade over the free functions in perf/cost.hh.
 *
 * Every entry prices an operation at an EXPLICIT level count, never
 * at "the context's current level": the global execution planner
 * (src/plan) asks "what would this layer cost if its input arrived
 * at L limbs?" for every candidate L, so the same entry must be
 * evaluable anywhere on the ladder. The model also owns the BSGS
 * giant-stride decision (chooseBsgsStride) so that the planner's
 * predicted stride and boot::LinearTransformPlan's compiled stride
 * are one procedure — a plan is costed with exactly the schedule
 * execution will run.
 */

#ifndef TENSORFHE_PERF_COST_MODEL_HH
#define TENSORFHE_PERF_COST_MODEL_HH

#include <vector>

#include "perf/cost.hh"

namespace tensorfhe::perf
{

/** A chosen BSGS stride and the population it induces. */
struct StrideChoice
{
    std::size_t g = 0;     ///< giant stride
    std::size_t baby = 0;  ///< distinct nonzero baby steps
    std::size_t giant = 0; ///< distinct nonzero giant steps
    KernelCost cost;       ///< matvec cost at the queried level
};

class CostModel
{
  public:
    explicit CostModel(ckks::CkksParams p) : p_(std::move(p)) {}

    const ckks::CkksParams &
    params() const
    {
        return p_;
    }

    /**
     * Scalarize a KernelCost for comparisons: CUDA-core ops, TCU
     * MACs at 8 per core-op-equivalent, and DRAM bytes. The single
     * work() definition every argmin in this repository uses
     * (hoistedFoldWins, the stride chooser, the planner DP).
     */
    static double
    work(const KernelCost &c)
    {
        return c.coreOps + c.tcuMacs / 8.0 + c.bytes;
    }

    KernelCost
    op(OpKind op, std::size_t level_count) const
    {
        return opCost(op, p_, level_count);
    }

    KernelCost
    keySwitch(std::size_t level_count) const
    {
        return keySwitchCost(p_, level_count);
    }

    KernelCost
    matvec(std::size_t level_count, std::size_t diagonals,
           std::size_t baby, std::size_t giant) const
    {
        return matvecBsgsCost(p_, level_count, diagonals, baby,
                              giant);
    }

    KernelCost
    blockMatvec(std::size_t level_count, std::size_t blocks,
                std::size_t diagonals, std::size_t baby,
                std::size_t giant) const
    {
        return blockMatvecBsgsCost(p_, level_count, blocks, diagonals,
                                   baby, giant);
    }

    KernelCost
    polyActivation(std::size_t level_count, std::size_t powers,
                   std::size_t terms) const
    {
        return polyActivationCost(p_, level_count, powers, terms);
    }

    /** m-element rotate-fold under the schedule the executor would
        pick at this level (perf::hoistedFoldWins). */
    KernelCost
    rotateFold(std::size_t level_count, std::size_t m) const
    {
        return rotateFoldCost(p_, level_count, m,
                              hoistedFoldWins(p_, level_count, m));
    }

    /** Stage-honest bootstrap price (perf::bootstrapStagedCost). */
    KernelCost
    bootstrap(std::size_t input_lc, std::size_t raised_lc,
              std::size_t output_lc, std::size_t slots,
              std::size_t taylor_terms, std::size_t doublings) const
    {
        return bootstrapStagedCost(p_, input_lc, raised_lc, output_lc,
                                   slots, taylor_terms, doublings);
    }

    /**
     * Pick the BSGS giant stride for a diagonal population at an
     * explicit level. Candidates are the classic root stride,
     * powers of two above it, and `slots` itself (the all-baby
     * schedule: every diagonal rides the single hoisted head, zero
     * giant ModDowns). With `restrict_to_root_pattern` set, a
     * non-root stride must keep every rotation step inside the
     * root-based key grant (babies < root, giants multiples of
     * root) — required when keys were pre-generated analytically;
     * an on-demand ckks::KeyStore lifts the restriction and lets
     * the truly cheapest stride win. Ties keep the smaller stride.
     */
    StrideChoice chooseBsgsStride(std::size_t level_count,
                                  const std::vector<std::size_t> &diag_idx,
                                  std::size_t slots,
                                  bool restrict_to_root_pattern) const;

  private:
    ckks::CkksParams p_;
};

} // namespace tensorfhe::perf

#endif // TENSORFHE_PERF_COST_MODEL_HH
