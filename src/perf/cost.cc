#include "perf/cost.hh"

#include <cmath>

#include "common/logging.hh"

namespace tensorfhe::perf
{

KernelCost
nttCost(std::size_t n, std::size_t limbs, ntt::NttVariant variant)
{
    double dn = static_cast<double>(n);
    double dl = static_cast<double>(limbs);
    KernelCost c;
    c.launches = 1;
    double logn = std::log2(dn);
    switch (variant) {
      case ntt::NttVariant::Reference:
        c.coreOps = dl * dn * dn * kOpsPerModMul;
        c.bytes = dl * dn * dn * kBytesPerResidue;
        break;
      case ntt::NttVariant::Butterfly: {
        // N/2 log2 N butterflies, each a division-based modulo (~15
        // ops: the GPU has no modular arithmetic unit, paper SIII-C)
        // plus adds. The stall inflation factor folds in the RAW /
        // long-latency serialization the pipeline simulator measures
        // (Fig. 4: 43% outright stalls plus dependent-issue slack),
        // calibrated so the A100 model lands on Table VI's NT row.
        constexpr double kModOps = 15.0;
        constexpr double kStallInflation = 4.0;
        c.coreOps = dl * (dn / 2) * logn * (kModOps + 3.0)
            * kStallInflation;
        c.bytes = dl * dn * kBytesPerResidue * 2 * logn / 4;
        break;
      }
      case ntt::NttVariant::Gemm: {
        double n1 = std::exp2(std::ceil(logn / 2));
        double n2 = dn / n1;
        // Three GEMMs: one IMAD per MAC (64-bit accumulate), one
        // deferred modulo per output element (paper SIV-B). Dense
        // GEMMs issue near peak (Fig. 10: stalls mostly gone).
        double macs = n1 * n2 * n1 + n1 * n2 + n2 * n2 * n1;
        c.coreOps = dl * (macs * 1.0 + dn * 15.0);
        c.bytes = dl * (dn * 6 + n1 * n1 + n2 * n2) * kBytesPerResidue;
        c.launches = 3;
        break;
      }
      case ntt::NttVariant::Tensor: {
        double n1 = std::exp2(std::ceil(logn / 2));
        double n2 = dn / n1;
        // 16 u8-GEMMs per big GEMM on the TCUs; segmentation, fusion,
        // Hadamard and final modulo stay on CUDA cores.
        c.tcuMacs = dl * 16.0 * (n1 * n2 * n1 + n2 * n2 * n1);
        c.coreOps = dl * dn
            * (4.0 /*segment*/ + 32.0 /*fuse 16 partials, twice*/
               + 2 * kOpsPerModMul);
        // Segment planes and partial products stay on chip (smem/L2,
        // paper Fig. 8 stages chain in place); DRAM sees the operand,
        // the staged intermediates once, and the twiddle tiles.
        c.bytes = dl * (dn * 6 + n1 * n1 + n2 * n2) * kBytesPerResidue;
        c.launches = 5; // the five-stage workflow of paper Fig. 8
        break;
      }
    }
    return c;
}

KernelCost
hadaMultCost(std::size_t n, std::size_t limbs)
{
    double e = static_cast<double>(n) * static_cast<double>(limbs);
    return {3 * e * kBytesPerResidue, e * kOpsPerModMul, 0, 1};
}

KernelCost
eleAddCost(std::size_t n, std::size_t limbs)
{
    double e = static_cast<double>(n) * static_cast<double>(limbs);
    return {3 * e * kBytesPerResidue, e * kOpsPerModAdd, 0, 1};
}

KernelCost
frobeniusCost(std::size_t n, std::size_t limbs)
{
    double e = static_cast<double>(n) * static_cast<double>(limbs);
    // Pure permutation: memory-bound.
    return {2 * e * kBytesPerResidue, 0.5 * e, 0, 1};
}

KernelCost
convCost(std::size_t n, std::size_t src_limbs, std::size_t dst_limbs)
{
    double dn = static_cast<double>(n);
    double s = static_cast<double>(src_limbs);
    double t = static_cast<double>(dst_limbs);
    KernelCost c;
    // y_i = a_i * hatInv_i, then t accumulations of s products each.
    c.coreOps = dn * (s * kOpsPerModMul + s * t * (2.0 + 0.5));
    c.bytes = dn * (s + t) * kBytesPerResidue;
    c.launches = 1;
    return c;
}

KernelCost
keySwitchHoistCost(const ckks::CkksParams &p, std::size_t level_count)
{
    std::size_t k = static_cast<std::size_t>(p.special);
    std::size_t alpha = p.alpha();
    std::size_t digits = (level_count + alpha - 1) / alpha;
    std::size_t union_limbs = level_count + k;

    KernelCost c;
    // Dcomp input to coefficient domain.
    c += nttCost(p.n, level_count, p.nttVariant);
    for (std::size_t j = 0; j < digits; ++j) {
        std::size_t dsz = std::min(alpha, level_count - j * alpha);
        c += convCost(p.n, dsz, union_limbs - dsz); // ModUp
        c += nttCost(p.n, union_limbs, p.nttVariant);
    }
    return c;
}

KernelCost
keySwitchTailCost(const ckks::CkksParams &p, std::size_t level_count)
{
    std::size_t k = static_cast<std::size_t>(p.special);
    std::size_t alpha = p.alpha();
    std::size_t digits = (level_count + alpha - 1) / alpha;
    std::size_t union_limbs = level_count + k;

    KernelCost c;
    for (std::size_t j = 0; j < digits; ++j) {
        // Fused inner-product accumulate (mulAccumulate kernel): the
        // two accumulators live in registers across the digit loop,
        // so DRAM sees only the two operand reads per accumulator.
        double e = static_cast<double>(p.n) * union_limbs;
        c += KernelCost{2 * 2 * e * kBytesPerResidue,
                        2 * e * (kOpsPerModMul + kOpsPerModAdd), 0, 2};
    }
    // ModDown both accumulators.
    c += 2 * nttCost(p.n, union_limbs, p.nttVariant);
    c += 2 * convCost(p.n, k, level_count);
    c += 2 * eleAddCost(p.n, level_count);
    c += 2 * nttCost(p.n, level_count, p.nttVariant);
    return c;
}

KernelCost
keySwitchCost(const ckks::CkksParams &p, std::size_t level_count)
{
    return keySwitchHoistCost(p, level_count)
        + keySwitchTailCost(p, level_count);
}

KernelCost
rotateHoistedCost(const ckks::CkksParams &p, std::size_t level_count,
                  std::size_t rotations)
{
    std::size_t k = static_cast<std::size_t>(p.special);
    std::size_t alpha = p.alpha();
    std::size_t digits = (level_count + alpha - 1) / alpha;
    std::size_t union_limbs = level_count + k;

    KernelCost c = keySwitchHoistCost(p, level_count);
    KernelCost per_rotation =
        frobeniusCost(p.n, digits * union_limbs) // hoisted digits
        + keySwitchTailCost(p, level_count)
        + frobeniusCost(p.n, level_count) // c0
        + eleAddCost(p.n, level_count);
    c += static_cast<double>(rotations) * per_rotation;
    return c;
}

namespace
{

/**
 * The inner-product-only ("raw") key-switch tail of the
 * double-hoisted path: the per-digit fused mul-accumulate on the
 * union basis, with NO ModDown and no domain moves — those are
 * deferred to the giant steps / the final ModDown.
 */
KernelCost
rawTailCost(const ckks::CkksParams &p, std::size_t level_count)
{
    std::size_t k = static_cast<std::size_t>(p.special);
    std::size_t alpha = p.alpha();
    std::size_t digits = (level_count + alpha - 1) / alpha;
    std::size_t union_limbs = level_count + k;
    KernelCost c;
    for (std::size_t j = 0; j < digits; ++j) {
        double e = static_cast<double>(p.n) * union_limbs;
        c += KernelCost{2 * 2 * e * kBytesPerResidue,
                        2 * e * (kOpsPerModMul + kOpsPerModAdd), 0, 2};
    }
    return c;
}

/** keySwitchHoistCost for a Coeff-domain input: the Dcomp INTT is
    skipped, leaving the per-digit Conv + union-basis NTT work. */
KernelCost
hoistFromCoeffCost(const ckks::CkksParams &p, std::size_t level_count)
{
    std::size_t k = static_cast<std::size_t>(p.special);
    std::size_t alpha = p.alpha();
    std::size_t digits = (level_count + alpha - 1) / alpha;
    std::size_t union_limbs = level_count + k;
    KernelCost c;
    for (std::size_t j = 0; j < digits; ++j) {
        std::size_t dsz = std::min(alpha, level_count - j * alpha);
        c += convCost(p.n, dsz, union_limbs - dsz); // ModUp
        c += nttCost(p.n, union_limbs, p.nttVariant);
    }
    return c;
}

/** One ModDown of a single polynomial (c1-only giant-step variant):
    INTT of the union basis, the p->q Conv, and the P^-1 fixup. */
KernelCost
modDownOneCost(const ckks::CkksParams &p, std::size_t level_count)
{
    std::size_t k = static_cast<std::size_t>(p.special);
    std::size_t union_limbs = level_count + k;
    KernelCost c = nttCost(p.n, union_limbs, p.nttVariant);
    c += convCost(p.n, k, level_count);
    c += hadaMultCost(p.n, level_count); // sub + P^-1 Shoup multiply
    return c;
}

} // namespace

KernelCost
matvecBsgsCost(const ckks::CkksParams &p, std::size_t level_count,
               std::size_t diagonals, std::size_t baby,
               std::size_t giant)
{
    return blockMatvecBsgsCost(p, level_count, baby > 0 ? 1 : 0,
                               diagonals, baby, giant);
}

KernelCost
blockMatvecBsgsCost(const ckks::CkksParams &p, std::size_t level_count,
                    std::size_t blocks, std::size_t diagonals,
                    std::size_t baby, std::size_t giant)
{
    std::size_t k = static_cast<std::size_t>(p.special);
    std::size_t alpha = p.alpha();
    std::size_t digits = (level_count + alpha - 1) / alpha;
    std::size_t union_limbs = level_count + k;

    // Double-hoisted dataflow (boot::LinearTransformPlan through
    // exec::Dispatcher::applyBsgs / applyBsgsSum):
    //  one head-1 per input block, then per baby step a digit
    //  FrobeniusMap + raw tail + c0 permutation + P-lift (ModDown
    //  deferred);
    KernelCost c;
    c += static_cast<double>(blocks)
        * keySwitchHoistCost(p, level_count);
    KernelCost per_baby = frobeniusCost(p.n, digits * union_limbs)
        + rawTailCost(p, level_count)
        + frobeniusCost(p.n, level_count)   // c0 permutation
        + hadaMultCost(p.n, level_count);   // P-lift accumulate
    c += static_cast<double>(baby) * per_baby;

    //  per diagonal: CMULT + HADD fused on the extended basis (both
    //  components);
    c += static_cast<double>(diagonals)
        * (2 * hadaMultCost(p.n, union_limbs)
           + 2 * eleAddCost(p.n, union_limbs));

    //  per giant step: one c1-only ModDown, its own hoisted head
    //  (head-2, Coeff-domain input so the Dcomp INTT is skipped), a
    //  digit FrobeniusMap + raw tail, the QP c0 permutation, and the
    //  global-accumulator adds;
    KernelCost per_giant = modDownOneCost(p, level_count)
        + hoistFromCoeffCost(p, level_count)
        + frobeniusCost(p.n, digits * union_limbs)
        + rawTailCost(p, level_count)
        + frobeniusCost(p.n, union_limbs)
        + 3 * eleAddCost(p.n, union_limbs);
    c += static_cast<double>(giant) * per_giant;

    //  one final ModDown pair (back to the q-basis Eval domain) and
    //  the closing RESCALE.
    c += 2 * modDownOneCost(p, level_count);
    c += 2 * nttCost(p.n, level_count, p.nttVariant);
    c += opCost(OpKind::Rescale, p, level_count);
    return c;
}

KernelCost
bsgsLinearTransformCost(const ckks::CkksParams &p,
                        std::size_t level_count, std::size_t slots)
{
    auto g = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(slots))));
    std::size_t n2 = (slots + g - 1) / g;
    // The fully-populated instance of the double-hoisted matvec at
    // the classic root stride (the plan may rebalance g further).
    return matvecBsgsCost(p, level_count, slots, g - 1, n2 - 1);
}

namespace
{

/** One Taylor + double-angle sine evaluation priced at `lc` (mirrors
    boot::sineModeledOps; see bootstrapCost for the ladder shape). */
KernelCost
sineEvalCost(const ckks::CkksParams &p, std::size_t lc,
             std::size_t taylor_terms, std::size_t doublings)
{
    double terms = static_cast<double>(taylor_terms);
    double d = static_cast<double>(doublings);
    double hmults = terms + 2 * d - 1;
    double cmults = 2 * terms - 1;
    double hadds = 2 * terms + d - 3;
    KernelCost sine;
    sine += hmults * opCost(OpKind::HMult, p, lc);
    sine += cmults * opCost(OpKind::CMult, p, lc);
    sine += hadds * opCost(OpKind::HAdd, p, lc);
    sine += (hmults + cmults) * opCost(OpKind::Rescale, p, lc);
    return sine;
}

/** Fused CoeffToSlot split pair at `lc`: plain + conjugate branches
    double the diagonal population and add g conjugate-composed tails
    (incl. the b = 0 conjugation) off the SAME head — giant + 2
    conversions each, no standalone conjugation keyswitch. */
KernelCost
coeffToSlotPairCost(const ckks::CkksParams &p, std::size_t lc,
                    std::size_t slots)
{
    auto g = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(slots))));
    std::size_t n2 = (slots + g - 1) / g;
    return 2.0 * matvecBsgsCost(p, lc, 2 * slots, 2 * g - 1, n2 - 1);
}

/** Recombine at `lc`: two CMULTs, one HADD, one RESCALE. */
KernelCost
recombineCost(const ckks::CkksParams &p, std::size_t lc)
{
    KernelCost c = 2.0 * opCost(OpKind::CMult, p, lc);
    c += opCost(OpKind::HAdd, p, lc);
    c += opCost(OpKind::Rescale, p, lc);
    return c;
}

} // namespace

KernelCost
bootstrapCost(const ckks::CkksParams &p, std::size_t level_count,
              std::size_t slots, std::size_t taylor_terms,
              std::size_t doublings)
{
    // SlotToCoeff: one fully-populated double-hoisted transform.
    KernelCost c = bsgsLinearTransformCost(p, level_count, slots);
    c += coeffToSlotPairCost(p, level_count, slots);
    // Two sine evaluations (mirrors boot::sineModeledOps): the
    // Taylor ladder, coefficient steerings, odd product and the
    // double-angle chain, each HMULT relinearizing once.
    c += 2.0
        * sineEvalCost(p, level_count, taylor_terms, doublings);
    c += recombineCost(p, level_count);
    return c;
}

KernelCost
bootstrapStagedCost(const ckks::CkksParams &p, std::size_t input_lc,
                    std::size_t raised_lc, std::size_t output_lc,
                    std::size_t slots, std::size_t taylor_terms,
                    std::size_t doublings)
{
    TFHE_ASSERT(input_lc >= 2);
    TFHE_ASSERT(raised_lc > output_lc);
    // SlotToCoeff runs before the ModRaise, on the input tower — the
    // only stage whose price moves with bootstrap placement.
    KernelCost c = bsgsLinearTransformCost(p, input_lc, slots);
    // CoeffToSlot pair on the freshly raised tower.
    c += coeffToSlotPairCost(p, raised_lc, slots);
    // The sine ladders descend from raised_lc - 1 (C2S consumed one
    // level) toward the refreshed output; bill them at their entry
    // level (a conservative upper bound on the descending ladder).
    c += 2.0
        * sineEvalCost(p, raised_lc - 1, taylor_terms, doublings);
    // Recombine closes just above the refreshed output level.
    c += recombineCost(p, output_lc + 1);
    return c;
}

bool
hoistedFoldWins(const ckks::CkksParams &p, std::size_t level_count,
                std::size_t m)
{
    // Exactly the argmin of rotateFoldCost over the two schedules,
    // so the decision can never pick the one the model prices
    // higher.
    auto work = [](const KernelCost &c) {
        return c.coreOps + c.tcuMacs / 8.0 + c.bytes;
    };
    return work(rotateFoldCost(p, level_count, m, true))
        < work(rotateFoldCost(p, level_count, m, false));
}

KernelCost
rotateFoldCost(const ckks::CkksParams &p, std::size_t level_count,
               std::size_t m, bool hoisted)
{
    if (hoisted) {
        KernelCost c = rotateHoistedCost(p, level_count, m - 1);
        c += static_cast<double>(m - 1)
            * opCost(OpKind::HAdd, p, level_count);
        return c;
    }
    double rounds = std::ceil(std::log2(static_cast<double>(m)));
    return rounds
        * (opCost(OpKind::HRotate, p, level_count)
           + opCost(OpKind::HAdd, p, level_count));
}

KernelCost
polyActivationCost(const ckks::CkksParams &p, std::size_t level_count,
                   std::size_t powers, std::size_t terms)
{
    KernelCost c = static_cast<double>(powers)
        * (opCost(OpKind::HMult, p, level_count)
           + opCost(OpKind::Rescale, p, level_count));
    c += static_cast<double>(terms)
        * (opCost(OpKind::CMult, p, level_count)
           + opCost(OpKind::Rescale, p, level_count));
    c += static_cast<double>(terms)
        * opCost(OpKind::HAdd, p, level_count);
    return c;
}

const char *
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::HMult: return "HMULT";
      case OpKind::CMult: return "CMULT";
      case OpKind::HAdd: return "HADD";
      case OpKind::HRotate: return "HROTATE";
      case OpKind::Rescale: return "RESCALE";
      case OpKind::Conjugate: return "CONJ";
      default: TFHE_ASSERT(false); return "?";
    }
}

KernelCost
opCost(OpKind op, const ckks::CkksParams &p, std::size_t level_count)
{
    std::size_t lc = level_count;
    switch (op) {
      case OpKind::HAdd:
        return 2 * eleAddCost(p.n, lc);
      case OpKind::CMult:
        return 2 * hadaMultCost(p.n, lc);
      case OpKind::HMult: {
        KernelCost c = 4 * hadaMultCost(p.n, lc)
            + 3 * eleAddCost(p.n, lc);
        c += keySwitchCost(p, lc);
        return c;
      }
      case OpKind::HRotate:
      case OpKind::Conjugate: {
        KernelCost c = 2 * frobeniusCost(p.n, lc)
            + eleAddCost(p.n, lc);
        c += keySwitchCost(p, lc);
        return c;
      }
      case OpKind::Rescale: {
        // Alg. 6: INTT all limbs + scalar fix + NTT on lc-1, x2 polys.
        KernelCost c = 2 * nttCost(p.n, lc, p.nttVariant);
        c += 2 * nttCost(p.n, lc - 1, p.nttVariant);
        c += 2 * eleAddCost(p.n, lc - 1);
        return c;
      }
    }
    TFHE_ASSERT(false);
    return {};
}

double
nttShare(OpKind op, const ckks::CkksParams &p, std::size_t level_count)
{
    KernelCost total = opCost(op, p, level_count);
    // Rebuild only the NTT contributions of the composition.
    KernelCost nc;
    std::size_t k = static_cast<std::size_t>(p.special);
    std::size_t alpha = p.alpha();
    std::size_t lc = level_count;
    std::size_t digits = (lc + alpha - 1) / alpha;
    switch (op) {
      case OpKind::HMult:
      case OpKind::HRotate:
      case OpKind::Conjugate:
        nc += nttCost(p.n, lc, p.nttVariant);
        nc += static_cast<double>(digits)
            * nttCost(p.n, lc + k, p.nttVariant);
        nc += 2 * nttCost(p.n, lc + k, p.nttVariant);
        nc += 2 * nttCost(p.n, lc, p.nttVariant);
        break;
      case OpKind::Rescale:
        nc += 2 * nttCost(p.n, lc, p.nttVariant);
        nc += 2 * nttCost(p.n, lc - 1, p.nttVariant);
        break;
      default:
        return 0.0;
    }
    double t = total.coreOps + total.tcuMacs / 8.0;
    double nn = nc.coreOps + nc.tcuMacs / 8.0;
    return t == 0 ? 0.0 : nn / t;
}

} // namespace tensorfhe::perf
